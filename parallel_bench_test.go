package repro

// Benchmarks for the parallel preparation subsystem. Prepare latency on
// multi-bag shapes is dominated by independent bag materialisations, so
// WithParallelism(n) at GOMAXPROCS >= 4 should show a >= 2x speedup of
// parallel over sequential on the bowtie and the 5-cycle fan below
// (compare the sequential/parallel sub-benchmark pairs). On a single
// core the two coincide — the parallel path degrades to the sequential
// driver with identical output either way.
//
//	go test -bench 'BenchmarkPrepare(Bowtie|FiveCycle)' -benchtime 3x .

import (
	"testing"

	"repro/internal/workload"
)

// benchBowtie builds a bowtie (two triangles sharing A) over a graph
// sized so bag materialisation dominates prepare time.
func benchBowtie(n int) *Query {
	g := workload.RandomGraph(n/10, n, workload.UniformWeights(), 17)
	q := NewQuery()
	for i, vs := range [][]string{
		{"A", "B"}, {"B", "C"}, {"C", "A"}, {"A", "D"}, {"D", "E"}, {"E", "A"},
	} {
		q.Rel("E"+string(rune('1'+i)), vs, g.Edges.Tuples, g.Edges.Weights)
	}
	return q
}

// benchFiveCycle builds a 5-cycle, routed to the fhtw-2 fan plan with
// three independent bags.
func benchFiveCycle(n int) *Query {
	g := workload.RandomGraph(n/10, n, workload.UniformWeights(), 17)
	q := NewQuery()
	for i, vs := range [][]string{
		{"A", "B"}, {"B", "C"}, {"C", "D"}, {"D", "E"}, {"E", "A"},
	} {
		q.Rel("E"+string(rune('1'+i)), vs, g.Edges.Tuples, g.Edges.Weights)
	}
	return q
}

// benchPrepare measures the full first-run prepare path — bag
// materialisation + tree compilation for cyclic shapes, plan build +
// T-DP instantiation for acyclic ones — at the given parallelism. Each
// iteration compiles a fresh handle so the per-ranking cache never
// short-circuits the work being measured.
func benchPrepare(b *testing.B, mk func(int) *Query, n, workers int) {
	b.Helper()
	q := mk(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := Compile(q, WithParallelism(workers))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.TopK(1); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAcyclicStar builds a wide acyclic star (8 relations sharing a
// hub), the shape whose level-synchronized T-DP instantiation the
// parallel acyclic prepare path fans out best on.
func benchAcyclicStar(n int) *Query {
	inst := workload.Star(8, n, n/20+1, workload.UniformWeights(), 19)
	q := NewQuery()
	for i, r := range inst.Rels {
		q.Rel(r.Name, inst.H.Edges[i].Vars, r.Tuples, r.Weights)
	}
	return q
}

func BenchmarkPrepareBowtieSequential(b *testing.B) { benchPrepare(b, benchBowtie, 3000, 1) }
func BenchmarkPrepareBowtieParallel(b *testing.B)   { benchPrepare(b, benchBowtie, 3000, 0) }

func BenchmarkPrepareFiveCycleSequential(b *testing.B) { benchPrepare(b, benchFiveCycle, 2000, 1) }
func BenchmarkPrepareFiveCycleParallel(b *testing.B)   { benchPrepare(b, benchFiveCycle, 2000, 0) }

func BenchmarkPrepareAcyclicStarSequential(b *testing.B) { benchPrepare(b, benchAcyclicStar, 20000, 1) }
func BenchmarkPrepareAcyclicStarParallel(b *testing.B)   { benchPrepare(b, benchAcyclicStar, 20000, 0) }
