package repro

// Benchmarks for the parallel preparation subsystem. Prepare latency on
// multi-bag shapes is dominated by independent bag materialisations, so
// WithParallelism(n) at GOMAXPROCS >= 4 should show a >= 2x speedup of
// parallel over sequential on the bowtie and the 5-cycle fan below
// (compare the sequential/parallel sub-benchmark pairs). On a single
// core the two coincide — the parallel path degrades to the sequential
// driver with identical output either way.
//
//	go test -bench 'BenchmarkPrepare(Bowtie|FiveCycle)' -benchtime 3x .

import (
	"context"
	"testing"

	"repro/internal/ranking"
	"repro/internal/relation"
	"repro/internal/wcoj"
	"repro/internal/workload"
)

// benchBowtie builds a bowtie (two triangles sharing A) over a graph
// sized so bag materialisation dominates prepare time.
func benchBowtie(n int) *Query {
	g := workload.RandomGraph(n/10, n, workload.UniformWeights(), 17)
	q := NewQuery()
	for i, vs := range [][]string{
		{"A", "B"}, {"B", "C"}, {"C", "A"}, {"A", "D"}, {"D", "E"}, {"E", "A"},
	} {
		q.Rel("E"+string(rune('1'+i)), vs, g.Edges.Tuples, g.Edges.Weights)
	}
	return q
}

// benchFiveCycle builds a 5-cycle, routed to the fhtw-2 fan plan with
// three independent bags.
func benchFiveCycle(n int) *Query {
	g := workload.RandomGraph(n/10, n, workload.UniformWeights(), 17)
	q := NewQuery()
	for i, vs := range [][]string{
		{"A", "B"}, {"B", "C"}, {"C", "D"}, {"D", "E"}, {"E", "A"},
	} {
		q.Rel("E"+string(rune('1'+i)), vs, g.Edges.Tuples, g.Edges.Weights)
	}
	return q
}

// benchPrepare measures the full first-run prepare path — bag
// materialisation + tree compilation for cyclic shapes, plan build +
// T-DP instantiation for acyclic ones — at the given parallelism. Each
// iteration compiles a fresh handle so the per-ranking cache never
// short-circuits the work being measured.
func benchPrepare(b *testing.B, mk func(int) *Query, n, workers int) {
	b.Helper()
	q := mk(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := Compile(q, WithParallelism(workers))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.TopK(1); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAcyclicStar builds a wide acyclic star (8 relations sharing a
// hub), the shape whose level-synchronized T-DP instantiation the
// parallel acyclic prepare path fans out best on.
func benchAcyclicStar(n int) *Query {
	inst := workload.Star(8, n, n/20+1, workload.UniformWeights(), 19)
	q := NewQuery()
	for i, r := range inst.Rels {
		q.Rel(r.Name, inst.H.Edges[i].Vars, r.Tuples, r.Weights)
	}
	return q
}

func BenchmarkPrepareBowtieSequential(b *testing.B) { benchPrepare(b, benchBowtie, 3000, 1) }
func BenchmarkPrepareBowtieParallel(b *testing.B)   { benchPrepare(b, benchBowtie, 3000, 0) }

func BenchmarkPrepareFiveCycleSequential(b *testing.B) { benchPrepare(b, benchFiveCycle, 2000, 1) }
func BenchmarkPrepareFiveCycleParallel(b *testing.B)   { benchPrepare(b, benchFiveCycle, 2000, 0) }

func BenchmarkPrepareAcyclicStarSequential(b *testing.B) { benchPrepare(b, benchAcyclicStar, 20000, 1) }
func BenchmarkPrepareAcyclicStarParallel(b *testing.B)   { benchPrepare(b, benchAcyclicStar, 20000, 0) }

// --- Skew guardrail -------------------------------------------------
//
// The heavy-hitter pathology the skew-aware partitioner exists for:
// a triangle join over a hub graph, where one first-variable value
// owns the bulk of the work. Legacy first-variable chunking
// (MaterializeParallelChunked) necessarily pins that value whole onto
// one worker, so its wall-clock approaches sequential; the skew-aware
// planner (MaterializeParallel) subdivides it at the second variable.
// The guardrail: SkewAware must beat FirstVarChunked on this fixture.
//
//	go test -bench 'BenchmarkSkewTriangle' -benchtime 3x .

// benchSkewAtoms builds triangle atoms over a three-layer rotor graph:
// hub 0 → every left vertex, complete bipartite left → right, every
// right vertex → 0. Each triangle is one rotation of (0, left, right),
// so the join has 3·m·k answers and the single value A=0 owns a full
// third of all work — far past any per-task budget — while the m+k
// light values share the rest. Enough answers per input row that join
// work, not trie sorting, dominates.
func benchSkewAtoms(m, k int) []wcoj.Atom {
	mk := func(name string) *relation.Relation {
		r := relation.New(name, "src", "dst")
		add := func(a, b int64) { r.AddWeighted(float64(a)+float64(b)/1000, a, b) }
		for l := int64(1); l <= int64(m); l++ {
			add(0, l)
			for rt := int64(m + 1); rt <= int64(m+k); rt++ {
				add(l, rt)
			}
		}
		for rt := int64(m + 1); rt <= int64(m+k); rt++ {
			add(rt, 0)
		}
		return r
	}
	return []wcoj.Atom{
		{Rel: mk("R"), Vars: []string{"A", "B"}},
		{Rel: mk("S"), Vars: []string{"B", "C"}},
		{Rel: mk("T"), Vars: []string{"C", "A"}},
	}
}

func benchSkewTriangle(b *testing.B, strategy func(context.Context, []wcoj.Atom, []string, ranking.Aggregate, int) (*relation.Relation, *wcoj.Instr, error)) {
	b.Helper()
	atoms := benchSkewAtoms(300, 60)
	order := []string{"A", "B", "C"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := strategy(context.Background(), atoms, order, ranking.SumCost{}, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSkewTaskShares is the machine-independent half of the guardrail:
// wall-clock on a multi-core box is bounded below by the largest single
// task's share of the join work, and on the rotor fixture the hub value
// A=0 owns a third of it. Equal-count first-variable chunking cannot
// split a single value, so its critical share stays pinned near 1/3
// whatever the worker count; the skew-aware planner must land well
// under that. (The wall-clock benchmarks above only show the gap when
// GOMAXPROCS > 1 — this assertion holds everywhere.)
func TestSkewTaskShares(t *testing.T) {
	atoms := benchSkewAtoms(300, 60)
	chunked, skewAware, err := wcoj.TaskShares(atoms, []string{"A", "B", "C"}, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 32 chunks over ~361 first-variable values: perfect balance would
	// be ~0.03 per chunk, but the chunk holding the hub owns over a
	// quarter of all work (a third of the emits, diluted by the light
	// values' seek overhead).
	if chunked < 0.25 {
		t.Errorf("chunked max task share = %.3f, want >= 0.25 (hub pinned whole)", chunked)
	}
	if skewAware >= chunked/2 {
		t.Errorf("skew-aware max task share = %.3f, want < half of chunked %.3f", skewAware, chunked)
	}
}

func BenchmarkSkewTriangleSkewAware(b *testing.B) {
	benchSkewTriangle(b, wcoj.MaterializeParallel)
}

func BenchmarkSkewTriangleFirstVarChunked(b *testing.B) {
	benchSkewTriangle(b, wcoj.MaterializeParallelChunked)
}

func BenchmarkSkewTriangleSequential(b *testing.B) {
	benchSkewTriangle(b, func(_ context.Context, atoms []wcoj.Atom, order []string, agg ranking.Aggregate, _ int) (*relation.Relation, *wcoj.Instr, error) {
		return wcoj.Materialize(atoms, order, agg)
	})
}
