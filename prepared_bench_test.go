package repro

// Benchmarks for the prepare-once / execute-many split: re-running a
// Prepared query must skip hypergraph analysis, join-tree planning, and
// index/grouping construction, so prepared re-execution is measurably
// faster than the one-shot TopK path that redoes all of it per call.

import (
	"testing"

	"repro/internal/workload"
)

func benchQuery(b *testing.B) *Query {
	inst := workload.Path(4, 4000, 4000/5+1, workload.UniformWeights(), 7)
	q := NewQuery()
	for i, r := range inst.Rels {
		q.Rel(r.Name, inst.H.Edges[i].Vars, r.Tuples, r.Weights)
	}
	return q
}

// BenchmarkOneShotTopK compiles from scratch on every call — the old
// facade behavior.
func BenchmarkOneShotTopK(b *testing.B) {
	q := benchQuery(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.TopK(SumCost, Lazy, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreparedTopK compiles once and re-executes the prepared
// plan, varying k across calls the way a serving workload would.
func BenchmarkPreparedTopK(b *testing.B) {
	p, err := Compile(benchQuery(b))
	if err != nil {
		b.Fatal(err)
	}
	// Warm the per-ranking cache so the loop measures steady-state
	// request latency.
	if _, err := p.TopK(1); err != nil {
		b.Fatal(err)
	}
	ks := []int{1, 10, 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.TopK(ks[i%len(ks)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreparedRunVariants re-executes one prepared plan across
// algorithm variants — the plan (reduction, grouping, π) is shared; only
// the per-run iterator state differs.
func BenchmarkPreparedRunVariants(b *testing.B) {
	p, err := Compile(benchQuery(b))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.TopK(1); err != nil {
		b.Fatal(err)
	}
	variants := []Variant{Lazy, Eager, Take2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.TopK(10, WithVariant(variants[i%len(variants)])); err != nil {
			b.Fatal(err)
		}
	}
}
