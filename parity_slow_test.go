//go:build slow

package repro

import (
	"fmt"
	"testing"

	"repro/internal/workload"
)

// The wide parity corpus: run with `go test -tags slow -run Slow`.
// Larger queries, more seeds, and several worker counts per instance.
func TestRandomizedParitySlow(t *testing.T) {
	parityCorpus(t, 30, 5, 32, 9, 8)
}

func TestRandomizedParityWorkerSweepSlow(t *testing.T) {
	for seed := 200; seed < 210; seed++ {
		zipfS := 0.0
		if seed%2 == 1 {
			zipfS = 1.3
		}
		inst := workload.RandomCQ(5, 28, 8, zipfS,
			workload.UniformWeights(), uint64(seed))
		for _, workers := range []int{2, 3, 5, 16} {
			t.Run(fmt.Sprintf("seed=%d/workers=%d", seed, workers), func(t *testing.T) {
				parityCase(t, inst, workers)
			})
		}
	}
}
