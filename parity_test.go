package repro

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/ranking"
	"repro/internal/workload"
)

// The randomized parity harness: seeded random queries (acyclic trees,
// cycles, chorded cycles — workload.RandomCQ) with optionally
// Zipf-skewed data, evaluated three ways per aggregate:
//
//   - sequential (WithParallelism(1)),
//   - skew-aware parallel (WithParallelism(8)), which must be
//     bit-identical to sequential — same tuples, same weights, same
//     order, and
//   - a per-relation brute-force backtracker, matched as a multiset of
//     (output tuple, weight) with 1e-9 weight tolerance since the
//     engine may combine weights in a different order.
//
// A small corpus runs in the default test suite;
// parity_slow_test.go (-tags slow) widens it.

var parityAggregates = []struct {
	name string
	agg  ranking.Aggregate
}{
	{"SumCost", SumCost},
	{"SumBenefit", SumBenefit},
	{"MaxCost", MaxCost},
	{"MinBenefit", MinBenefit},
	{"ProductCost", ProductCost},
}

// bruteGroups backtracks over per-relation tuples and groups the
// aggregated weights of every join answer by its projected output
// tuple (ascending within each group).
func bruteGroups(inst *workload.Instance, outAttrs []string, agg ranking.Aggregate) map[string][]float64 {
	binding := map[string]Value{}
	groups := map[string][]float64{}
	var rec func(i int, w float64)
	rec = func(i int, w float64) {
		if i == len(inst.H.Edges) {
			key := ""
			for _, a := range outAttrs {
				key += fmt.Sprintf("%d,", binding[a])
			}
			groups[key] = append(groups[key], w)
			return
		}
		e := inst.H.Edges[i]
		r := inst.Rels[i]
	tuples:
		for ti, t := range r.Tuples {
			var bound []string
			for c, v := range e.Vars {
				if bv, ok := binding[v]; ok {
					if bv != t[c] {
						for _, b := range bound {
							delete(binding, b)
						}
						continue tuples
					}
				} else {
					binding[v] = t[c]
					bound = append(bound, v)
				}
			}
			rec(i+1, agg.Combine(w, r.Weights[ti]))
			for _, b := range bound {
				delete(binding, b)
			}
		}
	}
	rec(0, agg.Identity())
	for _, ws := range groups {
		sort.Float64s(ws)
	}
	return groups
}

// engineGroups shapes a result slice like bruteGroups' output.
func engineGroups(results []Result) map[string][]float64 {
	groups := map[string][]float64{}
	for _, r := range results {
		key := ""
		for _, v := range r.Tuple {
			key += fmt.Sprintf("%d,", v)
		}
		groups[key] = append(groups[key], r.Weight)
	}
	for _, ws := range groups {
		sort.Float64s(ws)
	}
	return groups
}

// parityCase checks one generated instance across all five aggregates.
func parityCase(t *testing.T, inst *workload.Instance, workers int) {
	t.Helper()
	q := instanceQuery(inst)
	seqP, err := Compile(q, WithParallelism(1))
	if err != nil {
		t.Fatalf("compile sequential: %v", err)
	}
	parP, err := Compile(q, WithParallelism(workers))
	if err != nil {
		t.Fatalf("compile parallel: %v", err)
	}
	for _, a := range parityAggregates {
		seq, err := seqP.TopK(0, WithRanking(a.agg), WithParallelism(1))
		if err != nil {
			t.Fatalf("%s sequential run: %v", a.name, err)
		}
		par, err := parP.TopK(0, WithRanking(a.agg), WithParallelism(workers))
		if err != nil {
			t.Fatalf("%s parallel run: %v", a.name, err)
		}

		// Skew-aware parallel ≡ sequential, bit for bit.
		if len(par) != len(seq) {
			t.Fatalf("%s: parallel returned %d results, sequential %d", a.name, len(par), len(seq))
		}
		for i := range seq {
			if par[i].Weight != seq[i].Weight {
				t.Fatalf("%s result %d: parallel weight %v, sequential %v", a.name, i, par[i].Weight, seq[i].Weight)
			}
			for c := range seq[i].Tuple {
				if par[i].Tuple[c] != seq[i].Tuple[c] {
					t.Fatalf("%s result %d: parallel tuple %v, sequential %v", a.name, i, par[i].Tuple, seq[i].Tuple)
				}
			}
		}

		// Sequential ≡ brute force as a (tuple, weight) multiset.
		want := bruteGroups(inst, seqP.OutAttrs(), a.agg)
		got := engineGroups(seq)
		if len(got) != len(want) {
			t.Fatalf("%s: engine produced %d distinct tuples, brute force %d", a.name, len(got), len(want))
		}
		for key, ww := range want {
			gw, ok := got[key]
			if !ok {
				t.Fatalf("%s: brute-force tuple %s missing from engine output", a.name, key)
			}
			if len(gw) != len(ww) {
				t.Fatalf("%s tuple %s: engine multiplicity %d, brute force %d", a.name, key, len(gw), len(ww))
			}
			for i := range ww {
				if math.Abs(gw[i]-ww[i]) > 1e-9 {
					t.Fatalf("%s tuple %s weight %d: engine %v, brute force %v", a.name, key, i, gw[i], ww[i])
				}
			}
		}
	}
}

// parityCorpus runs seeds 0..n-1, alternating uniform and Zipf-skewed
// data so both the light-only and the heavy/light execution paths are
// exercised.
func parityCorpus(t *testing.T, seeds, nRels, tuplesPerRel, domain, workers int) {
	t.Helper()
	for seed := 0; seed < seeds; seed++ {
		zipfS := 0.0
		if seed%2 == 1 {
			zipfS = 1.2
		}
		inst := workload.RandomCQ(nRels, tuplesPerRel, domain, zipfS,
			workload.UniformWeights(), uint64(seed))
		t.Run(fmt.Sprintf("seed=%d/rels=%d", seed, len(inst.H.Edges)), func(t *testing.T) {
			parityCase(t, inst, workers)
		})
	}
}

func TestRandomizedParity(t *testing.T) {
	parityCorpus(t, 10, 5, 24, 8, 8)
}

// TestRandomizedParitySkewed leans fully on the Zipf knob with a hotter
// exponent and a smaller domain, so every seed has genuine heavy
// hitters.
func TestRandomizedParitySkewed(t *testing.T) {
	for seed := 100; seed < 106; seed++ {
		inst := workload.RandomCQ(4, 30, 6, 1.6,
			workload.UniformWeights(), uint64(seed))
		t.Run(fmt.Sprintf("seed=%d/rels=%d", seed, len(inst.H.Edges)), func(t *testing.T) {
			parityCase(t, inst, 4)
		})
	}
}
