package repro

// One benchmark per experiment table (E1–E12 in DESIGN.md): running
// `go test -bench=.` regenerates every measured quantity at benchmark
// scale. The cmd/anyk-bench binary prints the full tables; these
// benchmarks time the same code paths under testing.B so allocations
// and scaling are tracked by standard tooling.

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/dp"
	"repro/internal/experiments"
	"repro/internal/hypergraph"
	"repro/internal/join"
	"repro/internal/ranking"
	"repro/internal/relation"
	"repro/internal/topk"
	"repro/internal/wcoj"
	"repro/internal/workload"
	"repro/internal/yannakakis"
)

var sumAgg = ranking.SumCost{}

// --- E1: triangle, binary plan vs WCOJ on the AGM-hard instance ---

func benchTriangleBinary(b *testing.B, n int) {
	inst := workload.HardTriangle(n, workload.UniformWeights(), 1)
	rels := renameAll(inst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		join.NewPlan(sumAgg, rels...).Execute()
	}
}

func benchTriangleGJ(b *testing.B, n int) {
	inst := workload.HardTriangle(n, workload.UniformWeights(), 1)
	atoms := instAtoms(inst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := wcoj.Materialize(atoms, inst.H.Vars(), sumAgg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1TriangleBinary_n1000(b *testing.B) { benchTriangleBinary(b, 1000) }
func BenchmarkE1TriangleBinary_n2000(b *testing.B) { benchTriangleBinary(b, 2000) }
func BenchmarkE1TriangleWCOJ_n1000(b *testing.B)   { benchTriangleGJ(b, 1000) }
func BenchmarkE1TriangleWCOJ_n2000(b *testing.B)   { benchTriangleGJ(b, 2000) }

// --- E2: Boolean 4-cycle on the hub instance ---

func benchFourCycleBooleanBinary(b *testing.B, n int) {
	inst := workload.FourCycleHub(n, workload.UniformWeights(), 1)
	rels := renameAll(inst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		join.NewPlan(sumAgg, rels...).Execute()
	}
}

func benchFourCycleBooleanSubmodular(b *testing.B, n int) {
	inst := workload.FourCycleHub(n, workload.UniformWeights(), 1)
	var rels [4]*relation.Relation
	copy(rels[:], inst.Rels)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, _, err := decomp.FourCycleSubmodular(context.Background(), rels, sumAgg, core.Lazy)
		if err != nil {
			b.Fatal(err)
		}
		it.Next()
	}
}

func BenchmarkE2FourCycleBinary_n1000(b *testing.B)     { benchFourCycleBooleanBinary(b, 1000) }
func BenchmarkE2FourCycleBinary_n2000(b *testing.B)     { benchFourCycleBooleanBinary(b, 2000) }
func BenchmarkE2FourCycleSubmodular_n1000(b *testing.B) { benchFourCycleBooleanSubmodular(b, 1000) }
func BenchmarkE2FourCycleSubmodular_n2000(b *testing.B) { benchFourCycleBooleanSubmodular(b, 2000) }

// --- E3: Yannakakis vs binary on skewed acyclic path ---

func e3Instance(n int) *yannakakis.Query {
	r1 := relation.New("R1", "X", "Y")
	r2 := relation.New("R2", "X", "Y")
	r3 := relation.New("R3", "X", "Y")
	for i := 0; i < n; i++ {
		v := relation.Value(i)
		r1.AddWeighted(0, v, 0)
		r2.AddWeighted(0, 0, v)
		r3.AddWeighted(0, relation.Value(n)+7, v)
	}
	q, err := yannakakis.NewQuery(hypergraph.Path(3), []*relation.Relation{r1, r2, r3})
	if err != nil {
		panic(err)
	}
	return q
}

func BenchmarkE3Yannakakis_n4000(b *testing.B) {
	q := e3Instance(4000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Evaluate(sumAgg)
	}
}

func BenchmarkE3BinaryPlan_n4000(b *testing.B) {
	q := e3Instance(4000)
	rels := renameQ(q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		join.NewPlan(sumAgg, rels...).Execute()
	}
}

// --- E4: TA / FA / NRA access behaviour ---

func benchTopkAlgo(b *testing.B, corr workload.Correlation, algo string) {
	lists := wsToLists(workload.Lists(2, 20000, corr, 42))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		switch algo {
		case "TA":
			topk.TA(lists, 10, topk.SumAgg{})
		case "FA":
			topk.FA(lists, 10, topk.SumAgg{})
		case "NRA":
			topk.NRA(lists, 10)
		case "Brute":
			topk.BruteForce(lists, 10, topk.SumAgg{})
		}
	}
}

func BenchmarkE4TACorrelated(b *testing.B)  { benchTopkAlgo(b, workload.Correlated, "TA") }
func BenchmarkE4TAAntiCorr(b *testing.B)    { benchTopkAlgo(b, workload.AntiCorrelated, "TA") }
func BenchmarkE4FACorrelated(b *testing.B)  { benchTopkAlgo(b, workload.Correlated, "FA") }
func BenchmarkE4NRACorrelated(b *testing.B) { benchTopkAlgo(b, workload.Correlated, "NRA") }
func BenchmarkE4BruteForce(b *testing.B)    { benchTopkAlgo(b, workload.Correlated, "Brute") }

// --- E5: rank join friendly vs adversarial ---

func benchRankJoin(b *testing.B, adversarial bool) {
	n := 20000
	r := relation.New("R", "A", "B")
	s := relation.New("S", "B", "C")
	for i := 0; i < n; i++ {
		w := 1 - float64(i)/float64(n)
		r.AddWeighted(w, relation.Value(i), relation.Value(i))
		key := relation.Value(i)
		if adversarial {
			key = relation.Value(n - 1 - i)
		}
		s.AddWeighted(w, key, relation.Value(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := topk.NewHRJN(topk.NewScan(r), topk.NewScan(s))
		topk.TopK(op, 1)
	}
}

func BenchmarkE5RankJoinFriendly(b *testing.B)    { benchRankJoin(b, false) }
func BenchmarkE5RankJoinAdversarial(b *testing.B) { benchRankJoin(b, true) }

// --- E6/E7/E8: any-k variants ---

func benchAnyK(b *testing.B, inst *workload.Instance, v core.Variant, k int) {
	q, err := yannakakis.NewQuery(inst.H, inst.Rels)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := dp.Build(q, sumAgg)
		if err != nil {
			b.Fatal(err)
		}
		it, err := core.New(context.Background(), t, v)
		if err != nil {
			b.Fatal(err)
		}
		core.Collect(it, k)
	}
}

func pathInst(n int) *workload.Instance {
	return workload.Path(4, n, n/5+1, workload.UniformWeights(), 7)
}

func BenchmarkE6PathLazyTop1000(b *testing.B)  { benchAnyK(b, pathInst(4000), core.Lazy, 1000) }
func BenchmarkE6PathEagerTop1000(b *testing.B) { benchAnyK(b, pathInst(4000), core.Eager, 1000) }
func BenchmarkE6PathQuickTop1000(b *testing.B) { benchAnyK(b, pathInst(4000), core.Quick, 1000) }
func BenchmarkE6PathAllTop1000(b *testing.B)   { benchAnyK(b, pathInst(4000), core.All, 1000) }
func BenchmarkE6PathTake2Top1000(b *testing.B) { benchAnyK(b, pathInst(4000), core.Take2, 1000) }
func BenchmarkE6PathRecTop1000(b *testing.B)   { benchAnyK(b, pathInst(4000), core.Rec, 1000) }
func BenchmarkE6PathBatchTop1000(b *testing.B) { benchAnyK(b, pathInst(4000), core.Batch, 1000) }

func BenchmarkE7PathL6LazyFull(b *testing.B) {
	benchAnyK(b, workload.Path(6, 500, 500/3+1, workload.UniformWeights(), 13), core.Lazy, 0)
}

func BenchmarkE7PathL6RecFull(b *testing.B) {
	benchAnyK(b, workload.Path(6, 500, 500/3+1, workload.UniformWeights(), 13), core.Rec, 0)
}

func BenchmarkE7PathL6BatchFull(b *testing.B) {
	benchAnyK(b, workload.Path(6, 500, 500/3+1, workload.UniformWeights(), 13), core.Batch, 0)
}

func starInst(n int) *workload.Instance {
	return workload.Star(3, n, n/5+1, workload.UniformWeights(), 11)
}

func BenchmarkE8StarLazyTop1000(b *testing.B) { benchAnyK(b, starInst(4000), core.Lazy, 1000) }
func BenchmarkE8StarRecTop1000(b *testing.B)  { benchAnyK(b, starInst(4000), core.Rec, 1000) }

// --- E9: top-k lightest 4-cycles ---

func benchLightestCycles(b *testing.B, n, k int, batch bool) {
	g := workload.SkewedGraph(n/4+1, n, 1.2, workload.UniformWeights(), 3)
	var rels [4]*relation.Relation
	for i := range rels {
		rels[i] = g.Edges
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if batch {
			it, _, err := decomp.FourCycleSingleTree(context.Background(), rels, sumAgg, core.Batch)
			if err != nil {
				b.Fatal(err)
			}
			for {
				if _, ok := it.Next(); !ok {
					break
				}
			}
		} else {
			it, _, err := decomp.FourCycleSubmodular(context.Background(), rels, sumAgg, core.Lazy)
			if err != nil {
				b.Fatal(err)
			}
			core.Collect(it, k)
		}
	}
}

func BenchmarkE9LightestCyclesAnyK_n4000(b *testing.B)  { benchLightestCycles(b, 4000, 100, false) }
func BenchmarkE9LightestCyclesBatch_n4000(b *testing.B) { benchLightestCycles(b, 4000, 100, true) }

// --- E10: AGM machinery ---

func BenchmarkE10FractionalEdgeCover(b *testing.B) {
	c4 := hypergraph.Cycle(4)
	for i := 0; i < b.N; i++ {
		if _, _, err := c4.FractionalEdgeCover(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E11: crossover ---

func BenchmarkE11LazyTop1(b *testing.B)   { benchAnyK(b, pathInst(2000), core.Lazy, 1) }
func BenchmarkE11LazyTop10k(b *testing.B) { benchAnyK(b, pathInst(2000), core.Lazy, 10000) }
func BenchmarkE11BatchAny(b *testing.B)   { benchAnyK(b, pathInst(2000), core.Batch, 1) }

// --- E12: ranking functions ---

func benchAnyKAgg(b *testing.B, agg ranking.Aggregate) {
	inst := pathInst(2000)
	q, err := yannakakis.NewQuery(inst.H, inst.Rels)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := dp.Build(q, agg)
		if err != nil {
			b.Fatal(err)
		}
		it, err := core.New(context.Background(), t, core.Lazy)
		if err != nil {
			b.Fatal(err)
		}
		core.Collect(it, 1000)
	}
}

func BenchmarkE12RankSum(b *testing.B)     { benchAnyKAgg(b, ranking.SumCost{}) }
func BenchmarkE12RankMax(b *testing.B)     { benchAnyKAgg(b, ranking.MaxCost{}) }
func BenchmarkE12RankSumDesc(b *testing.B) { benchAnyKAgg(b, ranking.SumBenefit{}) }

// --- harness sanity: the experiment tables themselves ---

func BenchmarkHarnessE10Table(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E10(200)
	}
}

// --- helpers ---

func renameAll(inst *workload.Instance) []*relation.Relation {
	out := make([]*relation.Relation, len(inst.Rels))
	for i, r := range inst.Rels {
		nr := relation.New(r.Name, inst.H.Edges[i].Vars...)
		nr.Tuples = r.Tuples
		nr.Weights = r.Weights
		out[i] = nr
	}
	return out
}

func renameQ(q *yannakakis.Query) []*relation.Relation {
	out := make([]*relation.Relation, len(q.Rels))
	for i, r := range q.Rels {
		nr := relation.New(r.Name, q.H.Edges[i].Vars...)
		nr.Tuples = r.Tuples
		nr.Weights = r.Weights
		out[i] = nr
	}
	return out
}

func instAtoms(inst *workload.Instance) []wcoj.Atom {
	atoms := make([]wcoj.Atom, len(inst.Rels))
	for i, r := range inst.Rels {
		atoms[i] = wcoj.Atom{Rel: r, Vars: inst.H.Edges[i].Vars}
	}
	return atoms
}

func wsToLists(ws []*workload.ScoredList) []*topk.List {
	out := make([]*topk.List, len(ws))
	for i, w := range ws {
		l, err := topk.NewList(w.IDs, w.Grades)
		if err != nil {
			panic(err)
		}
		out[i] = l
	}
	return out
}

// --- E13: Lawler delay ablation ---

func BenchmarkE13NaiveLawlerTop100(b *testing.B) {
	inst := pathInst(1000)
	q, err := yannakakis.NewQuery(inst.H, inst.Rels)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := dp.Build(q, sumAgg)
		if err != nil {
			b.Fatal(err)
		}
		core.Collect(core.NewNaiveLawler(context.Background(), t), 100)
	}
}

func BenchmarkE13LazyTop100(b *testing.B) {
	benchAnyK(b, pathInst(1000), core.Lazy, 100)
}
