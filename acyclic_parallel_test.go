package repro

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/parallel"
	"repro/internal/ranking"
	"repro/internal/workload"
)

// starQuery builds a 6-relation acyclic star — the widest join-tree
// level the facade-level parallel Instantiate tests fan out on.
func starQuery() *Query {
	inst := workload.Star(6, 300, 15, workload.UniformWeights(), 23)
	q := NewQuery()
	for i, r := range inst.Rels {
		q.Rel(r.Name, inst.H.Edges[i].Vars, r.Tuples, r.Weights)
	}
	return q
}

// withThreshold runs fn with the default-parallelism size threshold
// pinned, restoring the measured default afterwards.
func withThreshold(t *testing.T, n int, fn func()) {
	t.Helper()
	old := prepareParallelThreshold
	prepareParallelThreshold = n
	defer func() { prepareParallelThreshold = old }()
	fn()
}

// TestAcyclicParallelPrepareBitIdentical checks the facade contract on
// the acyclic path for worker counts {1, 2, GOMAXPROCS}: identical
// tuples, weights, and enumeration order across several ranking
// functions (the star's full result set is combinatorially large, so
// the order check drains the top 400 and the totals are compared via
// the counting pass), plus a full drain on a small path query.
func TestAcyclicParallelPrepareBitIdentical(t *testing.T) {
	const k = 400
	for _, agg := range []ranking.Aggregate{SumCost, MaxCost, SumBenefit, ProductCost} {
		seq, err := Compile(starQuery(), WithParallelism(1))
		if err != nil {
			t.Fatal(err)
		}
		want, err := seq.TopK(k, WithRanking(agg))
		if err != nil {
			t.Fatal(err)
		}
		wantCount, err := seq.Count()
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
			par, err := Compile(starQuery(), WithParallelism(workers))
			if err != nil {
				t.Fatal(err)
			}
			got, err := par.TopK(k, WithRanking(agg))
			if err != nil {
				t.Fatal(err)
			}
			assertSameResults(t, agg.Name(), got, want)
			gotCount, err := par.Count()
			if err != nil {
				t.Fatal(err)
			}
			if gotCount != wantCount {
				t.Fatalf("w=%d: Count %d != %d", workers, gotCount, wantCount)
			}
		}
	}

	// Small path instance: full drain, every rank compared.
	mk := prepCases()["acyclic"]
	seq, err := Compile(mk(), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := seq.TopK(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		par, err := Compile(mk(), WithParallelism(workers))
		if err != nil {
			t.Fatal(err)
		}
		got, err := par.TopK(0)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, "path-full-drain", got, want)
	}
}

// TestDefaultParallelismThreshold checks the resolution rule: an unset
// WithParallelism resolves to GOMAXPROCS at or above the size threshold
// and to the sequential path below it, an explicit option always wins,
// and both default paths produce identical results.
func TestDefaultParallelismThreshold(t *testing.T) {
	var want []Result
	withThreshold(t, 1, func() { // everything clears the threshold
		p, err := Compile(starQuery())
		if err != nil {
			t.Fatal(err)
		}
		if got := p.prepareWorkers(runConfig{}, p.state.Load().estTuples); got != parallel.Degree(0) {
			t.Fatalf("above threshold: workers = %d, want GOMAXPROCS = %d", got, parallel.Degree(0))
		}
		if want, err = p.TopK(300); err != nil {
			t.Fatal(err)
		}
	})
	withThreshold(t, math.MaxInt, func() { // nothing clears it
		p, err := Compile(starQuery())
		if err != nil {
			t.Fatal(err)
		}
		if got := p.prepareWorkers(runConfig{}, p.state.Load().estTuples); got != 1 {
			t.Fatalf("below threshold: workers = %d, want 1", got)
		}
		got, err := p.TopK(300)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, "threshold-default", got, want)

		// Explicit parallelism overrides the threshold in both directions.
		if got := p.prepareWorkers(runConfig{workers: 3, workersSet: true}, p.state.Load().estTuples); got != 3 {
			t.Fatalf("explicit run override: workers = %d, want 3", got)
		}
		pc, err := Compile(starQuery(), WithParallelism(2))
		if err != nil {
			t.Fatal(err)
		}
		if got := pc.prepareWorkers(runConfig{}, pc.state.Load().estTuples); got != 2 {
			t.Fatalf("explicit compile default: workers = %d, want 2", got)
		}
	})
}

// cdCtx reports cancellation after Err has been consulted a fixed
// number of times — deterministic mid-Instantiate cancellation at the
// facade level.
type cdCtx struct {
	context.Context
	remaining atomic.Int64
}

func (c *cdCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestAcyclicCanceledInstantiateNotCached: cancelling the first Run on
// an acyclic query — which triggers the per-aggregate Instantiate —
// must fail that Run with ctx.Err() and must not poison the
// per-aggregate cache: the next Run rebuilds and succeeds. Covers both
// a pre-canceled context and a countdown context that cancels
// mid-Instantiate, at sequential and parallel worker counts.
// TestAcyclicCanceledCompile: WithContext passed to Compile covers the
// acyclic plan build (full reduction + grouping) itself.
func TestAcyclicCanceledCompile(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Compile(starQuery(), WithContext(ctx)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled Compile: got %v, want context.Canceled", err)
	}
	mid := &cdCtx{Context: context.Background()}
	mid.remaining.Store(2)
	if _, err := Compile(starQuery(), WithContext(mid), WithParallelism(4)); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-build Compile cancel: got %v, want context.Canceled", err)
	}
	if _, err := Compile(starQuery()); err != nil {
		t.Fatalf("healthy Compile after canceled ones: %v", err)
	}
}

func TestAcyclicCanceledInstantiateNotCached(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p, err := Compile(starQuery(), WithParallelism(workers))
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := p.Run(WithContext(ctx)); !errors.Is(err, context.Canceled) {
			t.Fatalf("w=%d: pre-canceled first run: got %v, want context.Canceled", workers, err)
		}
		res, err := p.TopK(5)
		if err != nil {
			t.Fatalf("w=%d: run after canceled prepare: %v", workers, err)
		}
		if len(res) == 0 {
			t.Fatalf("w=%d: run after canceled prepare returned no results", workers)
		}

		// Mid-Instantiate: a fresh aggregate forces a new build; the
		// countdown lets a few node tasks through before cancelling.
		mid := &cdCtx{Context: context.Background()}
		mid.remaining.Store(2)
		if _, err := p.Run(WithRanking(MaxCost), WithContext(mid)); !errors.Is(err, context.Canceled) {
			t.Fatalf("w=%d: mid-Instantiate cancel: got %v, want context.Canceled", workers, err)
		}
		if _, err := p.TopK(5, WithRanking(MaxCost)); err != nil {
			t.Fatalf("w=%d: run after mid-Instantiate cancel: %v", workers, err)
		}
	}
}

// TestAcyclicConcurrentRunsAcrossAggregates exercises one Prepared
// handle from many goroutines with different ranking functions — each
// first Run races to instantiate its own aggregate's T-DP — and checks
// every result stream against the sequential reference. A canceled
// countdown run races the healthy ones and must not fail them. The
// whole test repeats squeezed onto one P, mirroring the CI GOMAXPROCS
// matrix.
func TestAcyclicConcurrentRunsAcrossAggregates(t *testing.T) {
	aggs := []ranking.Aggregate{SumCost, MaxCost, SumBenefit, ProductCost}
	want := make(map[string][]Result)
	for _, agg := range aggs {
		seq, err := Compile(starQuery(), WithParallelism(1))
		if err != nil {
			t.Fatal(err)
		}
		w, err := seq.TopK(8, WithRanking(agg))
		if err != nil {
			t.Fatal(err)
		}
		want[agg.Name()] = w
	}
	run := func(t *testing.T) {
		p, err := Compile(starQuery(), WithParallelism(4))
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, 20)
		for g := 0; g < 16; g++ {
			agg := aggs[g%len(aggs)]
			wg.Add(1)
			go func() {
				defer wg.Done()
				got, err := p.TopK(8, WithRanking(agg))
				if err != nil {
					errs <- err
					return
				}
				w := want[agg.Name()]
				if len(got) != len(w) {
					errs <- errors.New(agg.Name() + ": result count mismatch")
					return
				}
				for i := range got {
					if got[i].Weight != w[i].Weight {
						errs <- errors.New(agg.Name() + ": weight mismatch")
						return
					}
				}
			}()
		}
		// One canceled run racing the healthy ones: allowed to fail only
		// with context.Canceled, and must not fail anyone else.
		wg.Add(1)
		go func() {
			defer wg.Done()
			mid := &cdCtx{Context: context.Background()}
			mid.remaining.Store(3)
			if _, err := p.TopK(1, WithRanking(MinBenefit), WithContext(mid)); err != nil && !errors.Is(err, context.Canceled) {
				errs <- err
			}
		}()
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
	t.Run("gomaxprocs=default", run)
	t.Run("gomaxprocs=1", func(t *testing.T) {
		old := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(old)
		run(t)
	})
}
