// Package repro is a from-scratch Go implementation of the systems
// surveyed and unified in "Optimal Join Algorithms Meet Top-k"
// (Tziavelis, Gatterbauer, Riedewald — SIGMOD 2020): classic top-k
// middleware (TA/FA/NRA, rank join), (worst-case) optimal join
// algorithms (Yannakakis, Generic-Join, Leapfrog Triejoin, AGM bounds,
// width-based decompositions), and — the centre piece — any-k ranked
// enumeration over join queries.
//
// This file is the high-level facade: declare a query (a hypergraph
// over weighted relations), compile it once, then execute it as many
// times as you like with per-call options:
//
//	q := repro.NewQuery().
//		Rel("R", []string{"A", "B"}, rTuples, rWeights).
//		Rel("S", []string{"B", "C"}, sTuples, sWeights)
//	p, err := repro.Compile(q) // hypergraph analysis + planning, once
//	it, err := p.Run(repro.WithRanking(repro.SumCost), repro.WithK(10))
//	defer it.Close()
//	for {
//		res, ok := it.Next()
//		if !ok { break }
//		fmt.Println(res.Tuple, res.Weight)
//	}
//	if err := it.Err(); err != nil { ... } // closed / canceled / clean drain
//
// Prepared handles are safe for concurrent Run calls, so one Compile
// can serve many top-k requests with different k, ranking functions
// (WithRanking), algorithm variants (WithVariant), and cancellation
// contexts (WithContext). The prepare phase runs on a bounded worker
// pool by default — level-synchronized T-DP instantiation for acyclic
// queries, decomposition-bag materialisation for cyclic ones, both
// bit-identical to sequential output (see docs/ARCHITECTURE.md);
// inputs below a size threshold stay sequential, and WithParallelism
// pins an explicit worker count (1 forces sequential). The one-shot
// helpers Ranked, TopK, Count and IsEmpty remain as thin wrappers that
// compile and execute in one step.
//
// Acyclic queries run directly on the tree-based dynamic program.
// Cyclic cycle queries of any length (in either edge orientation) are
// decomposed automatically: a Generic-Join bag for the triangle, the
// submodular-width three-tree union for the 4-cycle, and the generic
// fhtw-2 fan plan for longer cycles. Every other cyclic shape — K4,
// bowtie, star-with-chord, cliques, fused triangles, arbitrary
// hypergraphs with higher-arity atoms — compiles through the generic
// GHD planner: a generalized hypertree decomposition is searched
// (exhaustive vertex-elimination orders for small queries, min-degree /
// min-fill greedy orders for larger ones, scored by the maximum
// fractional edge cover over the bags), each bag is materialised with
// Generic-Join, and the acyclic bag tree feeds the same any-k
// machinery. See internal/hypergraph.Decompose and internal/decomp
// PrepareGHD for the width heuristics and per-bag weight charging.
//
// Execution is observable per phase: when the context passed via
// WithContext carries an internal/obs trace recorder (the serving
// layer installs one per request), Compile, Run, Sample, and
// ApplyDelta record a span tree — decompose, cost-model, reduce,
// per-bag materialize, instantiate, enumerate with first-/k'th-result
// marks, per-node delta reuse decisions — that anykd surfaces at
// /v1/traces/{id}. Library callers that install no recorder pay
// nothing: the span plumbing is allocation-free in that case.
package repro

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/hypergraph"
	"repro/internal/ranking"
	"repro/internal/relation"
)

// Value is a domain value (attributes are integer-encoded; use
// relation.Dictionary in cmd tools for string data).
type Value = relation.Value

// Tuple is a sequence of values.
type Tuple = relation.Tuple

// Result is one join result in ranking order.
type Result = core.Result

// Iterator yields join results in ranking order. Pull with Next until
// it reports false, then check Err: nil after a clean drain, ErrClosed
// after an early Close, or the context's error after cancellation.
// Always Close iterators you do not drain; Close is idempotent.
type Iterator = core.Iterator

// Variant selects the enumeration algorithm.
type Variant = core.Variant

// Re-exported algorithm variants. See internal/core for semantics.
const (
	Eager = core.Eager
	Lazy  = core.Lazy
	Quick = core.Quick
	All   = core.All
	Take2 = core.Take2
	Rec   = core.Rec
	Batch = core.Batch
)

// Ranking functions.
var (
	// SumCost ranks by ascending sum of weights (lightest first).
	SumCost ranking.Aggregate = ranking.SumCost{}
	// SumBenefit ranks by descending sum of weights (heaviest first).
	SumBenefit ranking.Aggregate = ranking.SumBenefit{}
	// MaxCost ranks by ascending maximum weight (bottleneck).
	MaxCost ranking.Aggregate = ranking.MaxCost{}
	// MinBenefit ranks by descending minimum weight.
	MinBenefit ranking.Aggregate = ranking.MinBenefit{}
	// ProductCost ranks by ascending product of positive weights.
	ProductCost ranking.Aggregate = ranking.ProductCost{}
)

// Query is a join query under construction: one atom per relation, each
// binding the relation's columns to named query variables.
type Query struct {
	edges []hypergraph.Edge
	rels  []*relation.Relation
	err   error
}

// NewQuery returns an empty query builder.
func NewQuery() *Query { return &Query{} }

// Rel adds a relation atom. vars names the query variable bound to each
// column; tuples[i] has weight weights[i] (weights may be nil = all 0).
// Relation names must be unique across the query (self-joins repeat the
// data under distinct names), and the variables within one atom must be
// distinct (express R(A,A) by filtering the tuples beforehand).
func (q *Query) Rel(name string, vars []string, tuples []Tuple, weights []float64) *Query {
	if q.err != nil {
		return q
	}
	for _, e := range q.edges {
		if e.Name == name {
			q.err = fmt.Errorf("repro: duplicate relation name %q (self-joins must use distinct names per atom)", name)
			return q
		}
	}
	seen := make(map[string]bool, len(vars))
	for _, v := range vars {
		if seen[v] {
			q.err = fmt.Errorf("repro: relation %s repeats variable %s within one atom (pre-filter the tuples to express equality)", name, v)
			return q
		}
		seen[v] = true
	}
	r := relation.New(name, vars...)
	for i, t := range tuples {
		w := 0.0
		if weights != nil {
			if i >= len(weights) {
				q.err = fmt.Errorf("repro: relation %s has %d tuples but %d weights", name, len(tuples), len(weights))
				return q
			}
			w = weights[i]
		}
		if len(t) != len(vars) {
			q.err = fmt.Errorf("repro: relation %s tuple %d has arity %d, want %d", name, i, len(t), len(vars))
			return q
		}
		r.AddTuple(t, w)
	}
	q.edges = append(q.edges, hypergraph.Edge{Name: name, Vars: vars})
	q.rels = append(q.rels, r)
	return q
}

// OutAttrs reports the output schema the iterators of this query will
// use, computed from the query structure alone (no data is touched, so
// it is cheap even on large relations): for acyclic queries the query
// variables in join-tree preorder; for cycle queries of any length the
// query variables in the order the cycle is walked (starting from the
// first declared atom's first variable — the positions the canonical
// cycle decompositions enumerate); and for every other cyclic shape
// (compiled through the generic GHD planner) the query variables in
// sorted order. Prepared.OutAttrs reports the same schema from a
// compiled handle.
func (q *Query) OutAttrs() ([]string, error) {
	if q.err != nil {
		return nil, q.err
	}
	if len(q.rels) == 0 {
		return nil, fmt.Errorf("repro: empty query")
	}
	h := hypergraph.New(q.edges...)
	if tree, ok := h.BuildJoinTree(); ok {
		seen := map[string]bool{}
		var attrs []string
		for _, u := range tree.Order {
			for _, v := range h.Edges[u].Vars {
				if !seen[v] {
					seen[v] = true
					attrs = append(attrs, v)
				}
			}
		}
		return attrs, nil
	}
	if order, flip, ok := q.matchCycleShape(); ok {
		return cycleWalkVars(q.edges, order, flip), nil
	}
	return decomp.GHDAttrs(q.edges), nil
}

// cycleWalkVars names the canonical cycle output positions A0..A_{l-1}
// with the query's own variables in walk order: position i is the
// source variable of the i-th edge along the walk matchCycleShape
// found, which is exactly the column the cycle decompositions emit
// there — so iterators stream tuples labeled with the user's names
// instead of the engine's canonical placeholders.
func cycleWalkVars(edges []hypergraph.Edge, order []int, flip []bool) []string {
	out := make([]string, len(order))
	for i, ei := range order {
		if flip[i] {
			out[i] = edges[ei].Vars[1]
		} else {
			out[i] = edges[ei].Vars[0]
		}
	}
	return out
}

// Fingerprint returns a stable identifier of the query's *shape*: a
// hex-encoded SHA-256 over the canonical form of the atom multiset,
// where each atom is rendered as its arity plus the query variables it
// binds in declaration position order, and the rendered atoms are
// sorted lexicographically. The fingerprint is therefore independent of
// the order the Rel calls declared the atoms, of the relation names,
// and of the data (tuples and weights) — but sensitive to arities and
// to the variable pattern, i.e. which positions of which atoms share a
// variable. Variable names are part of the pattern: renaming variables
// consistently produces a different fingerprint (no graph-isomorphism
// canonicalisation is attempted, so equal fingerprints always mean
// structurally identical queries — the safe direction for a cache key).
//
// It is the natural key for caching compiled plans across requests: two
// queries with equal fingerprints over the same relations (in any
// declaration order) compile to interchangeable plans. The serving
// layer (internal/server) combines it with dataset identities and the
// ranking function to key its prepared-plan registry.
func (q *Query) Fingerprint() (string, error) {
	if q.err != nil {
		return "", q.err
	}
	if len(q.edges) == 0 {
		return "", fmt.Errorf("repro: empty query")
	}
	atoms := make([]string, len(q.edges))
	for i, e := range q.edges {
		// Length-prefixed rendering (arity, then "len.name" per variable)
		// is injective for arbitrary variable names — no separator a name
		// could contain can smuggle one shape into another's canonical
		// form, so distinct shapes cannot collide before hashing.
		var b strings.Builder
		fmt.Fprintf(&b, "%d:", len(e.Vars))
		for _, v := range e.Vars {
			fmt.Fprintf(&b, "%d.%s,", len(v), v)
		}
		atoms[i] = b.String()
	}
	sort.Strings(atoms)
	h := sha256.Sum256([]byte(strings.Join(atoms, ";")))
	return hex.EncodeToString(h[:]), nil
}

// Ranked compiles the query and returns a ranked-enumeration iterator —
// the one-shot form of Compile + Run. Acyclic queries use the T-DP
// any-k machinery directly; triangles, 4-cycles, and longer cycles are
// decomposed automatically, and every other cyclic shape compiles
// through the generic GHD planner. For repeated execution over the same
// data, Compile once and Run many times instead.
func (q *Query) Ranked(agg ranking.Aggregate, v Variant) (Iterator, error) {
	p, err := Compile(q)
	if err != nil {
		return nil, err
	}
	return p.Run(WithRanking(agg), WithVariant(v))
}

// TopK runs Ranked and collects the first k results.
func (q *Query) TopK(agg ranking.Aggregate, v Variant, k int) ([]Result, error) {
	p, err := Compile(q)
	if err != nil {
		return nil, err
	}
	return p.TopK(k, WithRanking(agg), WithVariant(v))
}

// matchCycle detects whether the query is a variable-renaming of the
// l-cycle R1(A0,A1), ..., Rl(A_{l-1},A0) with edges in *either*
// orientation, and returns the relations reordered — and, where an edge
// was declared against the walk direction, column-flipped — to the
// canonical orientation the cycle decompositions expect.
func (q *Query) matchCycle() (int, []*relation.Relation, bool) {
	order, flip, ok := q.matchCycleShape()
	if !ok {
		return 0, nil, false
	}
	rels := make([]*relation.Relation, len(order))
	for i, ei := range order {
		if flip[i] {
			rels[i] = flipBinary(q.rels[ei])
		} else {
			rels[i] = q.rels[ei]
		}
	}
	return len(order), rels, true
}

// matchCycleShape is the data-free half of matchCycle: it walks the
// query structure only (so OutAttrs stays cheap on large relations) and
// reports the edge order around the cycle plus which edges oppose the
// walk direction.
func (q *Query) matchCycleShape() (order []int, flip []bool, ok bool) {
	l := len(q.edges)
	if l < 3 {
		return nil, nil, false
	}
	// A genuine l-cycle is a set of l binary edges over exactly l
	// distinct variables, each occurring in exactly two edges. (Without
	// the occurrence check, shapes like the bowtie — which admit a
	// closed walk through every edge — would be misclassified.)
	occ := make(map[string]int)
	for _, e := range q.edges {
		if len(e.Vars) != 2 || e.Vars[0] == e.Vars[1] {
			return nil, nil, false
		}
		occ[e.Vars[0]]++
		occ[e.Vars[1]]++
	}
	if len(occ) != l {
		return nil, nil, false
	}
	for _, c := range occ {
		if c != 2 {
			return nil, nil, false
		}
	}
	// Walk the cycle undirected: start at edge 0 as declared, then at
	// each step take the unused edge containing the current variable,
	// flipping it when its columns oppose the walk direction.
	used := make([]bool, l)
	order = []int{0}
	flip = []bool{false}
	used[0] = true
	cur := q.edges[0].Vars[1]
	for len(order) < l {
		found, flipped := -1, false
		for i, e := range q.edges {
			if used[i] {
				continue
			}
			if e.Vars[0] == cur {
				found, flipped = i, false
				break
			}
			if e.Vars[1] == cur {
				found, flipped = i, true
				break
			}
		}
		if found < 0 {
			return nil, nil, false
		}
		used[found] = true
		order = append(order, found)
		flip = append(flip, flipped)
		if flipped {
			cur = q.edges[found].Vars[0]
		} else {
			cur = q.edges[found].Vars[1]
		}
	}
	if cur != q.edges[0].Vars[0] {
		return nil, nil, false
	}
	return order, flip, true
}

// flipBinary returns a copy of the binary relation with its two columns
// (and attribute names) swapped.
func flipBinary(r *relation.Relation) *relation.Relation {
	out := relation.New(r.Name, r.Attrs[1], r.Attrs[0])
	out.Tuples = make([]relation.Tuple, len(r.Tuples))
	out.Weights = append([]float64(nil), r.Weights...)
	for i, t := range r.Tuples {
		out.Tuples[i] = relation.Tuple{t[1], t[0]}
	}
	return out
}

// Count returns the number of join results without materialising them.
// Acyclic queries use the counting pass over the join tree (O(n) after
// reduction); supported cyclic shapes enumerate through the ranked
// iterator, which still avoids materialising the full output at once.
func (q *Query) Count() (int, error) {
	p, err := Compile(q)
	if err != nil {
		return 0, err
	}
	return p.Count()
}

// IsEmpty answers the Boolean query "does the join have any result?"
// with early termination (§1 of the tutorial).
func (q *Query) IsEmpty() (bool, error) {
	p, err := Compile(q)
	if err != nil {
		return false, err
	}
	return p.IsEmpty()
}
