package repro

import (
	"context"
	"encoding/binary"
	"fmt"
	"strconv"
	"time"

	"repro/internal/decomp"
	"repro/internal/dp"
	"repro/internal/hypergraph"
	"repro/internal/obs"
	"repro/internal/ranking"
	"repro/internal/relation"
	"repro/internal/yannakakis"
)

// Delta is one batch of changes to a single query atom (relation).
// Within a Delta, Delete applies before Append: every existing row
// whose values equal some Delete tuple is removed (all duplicates, on
// values only — weights are not consulted), then the Append rows are
// added in order with their AppendWeights (nil means all-zero weights).
// Multiple Deltas addressing the same atom in one ApplyDelta call apply
// in slice order, each seeing its predecessors' effect.
type Delta struct {
	// Rel names the query atom the batch targets (the relation name
	// passed to Query.Rel).
	Rel string
	// Append rows must match the atom's arity.
	Append []Tuple
	// AppendWeights, when non-nil, must have one weight per Append row.
	AppendWeights []float64
	// Delete rows must match the atom's arity.
	Delete []Tuple
}

// ApplyDelta advances the handle to a new data epoch reflecting the
// given per-relation append/delete batches, patching the prepared
// artefacts incrementally instead of recompiling: the acyclic join
// tree re-runs semi-joins, regrouping, and π recomputation only along
// the paths the delta actually reached (clean subtrees alias the old
// epoch's reduced relations outright);
// GHD plans re-materialise only bags with a changed input; the cycle
// shapes re-derive their canonical relations and re-prepare. Every
// ranking function that was already built stays built — its patched
// artefact is seeded into the new epoch — so warm callers never see a
// cold prepare after a delta. Results after ApplyDelta are
// bit-identical to a cold Compile on the updated data.
//
// Honors WithContext and WithParallelism for the patch work; other run
// options are ignored. On error nothing changes: the handle keeps
// serving its current epoch. A call whose batches change no rows (all
// deletes miss, no appends) is a no-op and does not advance the epoch.
//
// Concurrent Runs are safe: they enumerate either entirely the old or
// entirely the new epoch. ApplyDelta calls serialise with each other.
func (p *Prepared) ApplyDelta(deltas []Delta, opts ...RunOption) error {
	//anykvet:allow ctxplumb -- documented option default; callers attach cancellation via WithContext
	cfg := runConfig{ctx: context.Background()}
	for _, o := range opts {
		o(&cfg)
	}
	p.deltaMu.Lock()
	defer p.deltaMu.Unlock()
	old := p.state.Load()

	idxOf := make(map[string]int, len(p.srcEdges))
	for i, e := range p.srcEdges {
		idxOf[e.Name] = i
	}
	for _, d := range deltas {
		i, ok := idxOf[d.Rel]
		if !ok {
			return fmt.Errorf("repro: delta targets unknown relation %q", d.Rel)
		}
		arity := len(p.srcEdges[i].Vars)
		for _, t := range d.Append {
			if len(t) != arity {
				return fmt.Errorf("repro: delta append to %s has arity %d, want %d", d.Rel, len(t), arity)
			}
		}
		for _, t := range d.Delete {
			if len(t) != arity {
				return fmt.Errorf("repro: delta delete from %s has arity %d, want %d", d.Rel, len(t), arity)
			}
		}
		if d.AppendWeights != nil && len(d.AppendWeights) != len(d.Append) {
			return fmt.Errorf("repro: delta to %s has %d append rows but %d weights", d.Rel, len(d.Append), len(d.AppendWeights))
		}
	}

	start := time.Now()
	var deltaSpan *obs.Span
	cfg.ctx, deltaSpan = obs.StartSpan(cfg.ctx, "apply-delta")
	defer deltaSpan.End()
	newRels := append([]*relation.Relation(nil), old.srcRels...)
	changed := make([]bool, len(newRels))
	var appended, deleted int64
	for _, d := range deltas {
		i := idxOf[d.Rel]
		r, del := applyRelDelta(newRels[i], d)
		if del == 0 && len(d.Append) == 0 {
			continue
		}
		newRels[i] = r
		changed[i] = true
		deleted += int64(del)
		appended += int64(len(d.Append))
		deltaSpan.Event("changed:" + d.Rel)
	}
	anyChanged := false
	for _, c := range changed {
		anyChanged = anyChanged || c
	}
	if !anyChanged {
		return nil
	}

	inputTuples := 0
	for _, r := range newRels {
		inputTuples += r.Len()
	}
	st := &planState{
		epoch:   old.epoch + 1,
		srcRels: newRels,
	}
	var bagsReused, bagsRebuilt, nodesReused, nodesRecomputed int64

	switch p.kind {
	case kindAcyclic:
		h := hypergraph.New(p.srcEdges...)
		yq, err := yannakakis.NewQuery(h, newRels)
		if err != nil {
			return err
		}
		workers := p.prepareWorkers(cfg, inputTuples)
		plan, dst, err := dp.NewPlanDelta(yq, old.plan, changed, dp.WithContext(cfg.ctx), dp.WithWorkers(workers))
		if err != nil {
			return err
		}
		st.yq = yq
		st.plan = plan
		st.solutions = plan.NumSolutions()
		st.estTuples = plan.TotalTuples()
		nodesReused += int64(dst.Nodes - dst.Regrouped)
		for agg, oldT := range old.tdps.built() {
			t, rec, err := plan.InstantiateDelta(agg, oldT, dst.Changed, dp.WithContext(cfg.ctx), dp.WithWorkers(workers))
			if err != nil {
				return err
			}
			st.tdps.seed(agg, t)
			nodesRecomputed += int64(rec)
			nodesReused += int64(dst.Nodes - rec)
		}
	case kindTriangle, kindFourCycle, kindLongCycle:
		// The canonical cycle plans are single- (or few-)bag shapes whose
		// bags all contain every input relation, so any delta invalidates
		// every bag: re-derive the walk-ordered relations and re-prepare
		// each built ranking outright.
		st.cycleRels = cycleRelsFor(newRels, p.cycleOrder, p.cycleFlip)
		st.solutions = -1
		st.estTuples = inputTuples
		workers := p.prepareWorkers(cfg, inputTuples)
		for agg := range old.decomps.built() {
			d, err := p.buildDecomp(st, agg, cfg.ctx, workers)
			if err != nil {
				return err
			}
			st.decomps.seed(agg, d)
			for _, tree := range d.Stats.BagSizes {
				bagsRebuilt += int64(len(tree))
			}
		}
	case kindGeneric:
		st.solutions = -1
		st.estTuples = inputTuples
		workers := p.prepareWorkers(cfg, inputTuples)
		opts := p.decompOpts(cfg.ctx, workers)
		for agg, oldD := range old.decomps.built() {
			d, dst, err := decomp.PrepareGHDDelta(oldD, p.srcEdges, newRels, agg, changed, opts...)
			if err != nil {
				// The incremental path refuses shapes it cannot diff (e.g. a
				// plan built before any delta memo existed); fall back to a
				// cold bag materialisation rather than failing the delta.
				d, err = p.buildDecomp(st, agg, cfg.ctx, workers)
				if err != nil {
					return err
				}
				st.decomps.seed(agg, d)
				for _, tree := range d.Stats.BagSizes {
					bagsRebuilt += int64(len(tree))
				}
				continue
			}
			st.decomps.seed(agg, d)
			bagsRebuilt += int64(dst.BagsRebuilt)
			bagsReused += int64(dst.Bags - dst.BagsRebuilt)
			nodesRecomputed += int64(dst.TreeRecomputed)
			nodesReused += int64(dst.TreeNodes - dst.TreeRecomputed)
		}
	}

	if deltaSpan != nil {
		deltaSpan.SetAttr("epoch", strconv.FormatInt(st.epoch, 10))
		deltaSpan.SetAttr("appended", strconv.FormatInt(appended, 10))
		deltaSpan.SetAttr("deleted", strconv.FormatInt(deleted, 10))
		deltaSpan.SetAttr("bags_reused", strconv.FormatInt(bagsReused, 10))
		deltaSpan.SetAttr("bags_rebuilt", strconv.FormatInt(bagsRebuilt, 10))
		deltaSpan.SetAttr("nodes_reused", strconv.FormatInt(nodesReused, 10))
		deltaSpan.SetAttr("nodes_recomputed", strconv.FormatInt(nodesRecomputed, 10))
	}
	p.state.Store(st)
	p.deltasApplied.Add(1)
	p.deltaAppendedRows.Add(appended)
	p.deltaDeletedRows.Add(deleted)
	p.deltaBagsReused.Add(bagsReused)
	p.deltaBagsRebuilt.Add(bagsRebuilt)
	p.deltaNodesReused.Add(nodesReused)
	p.deltaNodesRecomputed.Add(nodesRecomputed)
	p.lastDeltaNs.Store(time.Since(start).Nanoseconds())
	return nil
}

// applyRelDelta returns r with d applied (deletes, then appends) plus
// the number of rows the deletes removed. r itself is never mutated —
// epochs share relations, so updates must copy.
func applyRelDelta(r *relation.Relation, d Delta) (*relation.Relation, int) {
	out := relation.New(r.Name, r.Attrs...)
	removed := 0
	if len(d.Delete) > 0 {
		kill := make(map[string]bool, len(d.Delete))
		for _, t := range d.Delete {
			kill[tupleKey(t)] = true
		}
		for i, t := range r.Tuples {
			if kill[tupleKey(t)] {
				removed++
				continue
			}
			out.AddTuple(t, r.Weights[i])
		}
	} else {
		for i, t := range r.Tuples {
			out.AddTuple(t, r.Weights[i])
		}
	}
	for i, t := range d.Append {
		w := 0.0
		if d.AppendWeights != nil {
			w = d.AppendWeights[i]
		}
		out.AddTuple(append(Tuple(nil), t...), w)
	}
	return out, removed
}

// tupleKey encodes a tuple's values as a fixed-width byte string for
// exact-match delete lookups.
func tupleKey(t relation.Tuple) string {
	b := make([]byte, 8*len(t))
	for i, v := range t {
		binary.LittleEndian.PutUint64(b[i*8:], uint64(v))
	}
	return string(b)
}

// cycleRelsFor re-derives the canonical walk-ordered (and, where the
// declaration runs against the walk, column-flipped) cycle relations
// from fresh data, mirroring what matchCycle produced at Compile time.
func cycleRelsFor(rels []*relation.Relation, order []int, flip []bool) []*relation.Relation {
	out := make([]*relation.Relation, len(order))
	for i, ei := range order {
		if flip[i] {
			out[i] = flipBinary(rels[ei])
		} else {
			out[i] = rels[ei]
		}
	}
	return out
}

// builtRankings lists the ranking functions whose artefacts are built
// on the current epoch — the set a delta keeps warm.
func (p *Prepared) builtRankings() []ranking.Aggregate {
	s := p.state.Load()
	var out []ranking.Aggregate
	if p.kind == kindAcyclic {
		for agg := range s.tdps.built() {
			out = append(out, agg)
		}
	} else {
		for agg := range s.decomps.built() {
			out = append(out, agg)
		}
	}
	return out
}
