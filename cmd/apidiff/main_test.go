package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestExportedAPIMatchesGolden makes plain `go test ./...` enforce the
// API guard, not just the dedicated CI job: the exported surface of
// package repro must match the committed api/repro.api. A deliberate
// API change regenerates the golden in the same commit:
//
//	go run ./cmd/apidiff -write
func TestExportedAPIMatchesGolden(t *testing.T) {
	root := filepath.Join("..", "..")
	dump, err := DumpDir(root)
	if err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join(root, "api", "repro.api")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (go run ./cmd/apidiff -write): %v", err)
	}
	if diff := Diff(string(want), dump); diff != "" {
		t.Fatalf("exported API of package repro differs from api/repro.api:\n%s\ndeclare the change by regenerating the golden: go run ./cmd/apidiff -write", diff)
	}
}

// TestDumpIsDeterministic pins that two dumps of the same tree are
// byte-identical (sorted, deduplicated) — the property the golden diff
// relies on.
func TestDumpIsDeterministic(t *testing.T) {
	root := filepath.Join("..", "..")
	a, err := DumpDir(root)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DumpDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("DumpDir is not deterministic")
	}
}
