// Command apidiff guards the exported API surface of package repro.
//
// It renders the package's exported declarations — funcs, methods on
// exported types, types (with exported struct fields and interface
// methods only), consts, and vars — into a sorted, one-line-per-item
// textual dump, and compares it against the committed golden file
// api/repro.api:
//
//	go run ./cmd/apidiff -check   # fail when the surface drifted (CI)
//	go run ./cmd/apidiff -write   # regenerate the golden after a
//	                              # deliberate, reviewed API change
//
// The golden file is the declaration mechanism: any change to the
// exported surface — a removed function, a changed signature, an option
// moving to a new type — fails CI until the same commit regenerates
// api/repro.api, which makes the change (and its full extent) visible
// in review. The dump is purely syntactic (go/parser, no type
// checking), so it runs in milliseconds and needs no build cache.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	var (
		dir    = flag.String("dir", ".", "directory of the package to dump")
		golden = flag.String("golden", "api/repro.api", "golden API file, relative to -dir")
		write  = flag.Bool("write", false, "regenerate the golden file")
		check  = flag.Bool("check", true, "fail when the surface differs from the golden")
	)
	flag.Parse()

	dump, err := DumpDir(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apidiff:", err)
		os.Exit(2)
	}
	path := filepath.Join(*dir, *golden)
	if *write {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "apidiff:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(path, []byte(dump), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "apidiff:", err)
			os.Exit(2)
		}
		fmt.Printf("apidiff: wrote %s (%d declarations)\n", path, strings.Count(dump, "\n"))
		return
	}
	if !*check {
		fmt.Print(dump)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apidiff: no golden file %s (run with -write to create it): %v\n", path, err)
		os.Exit(1)
	}
	if diff := Diff(string(want), dump); diff != "" {
		fmt.Fprintf(os.Stderr, "apidiff: exported API of %s differs from %s:\n%s", *dir, path, diff)
		fmt.Fprintf(os.Stderr, "\nIf this change is intentional, declare it by regenerating the golden:\n\tgo run ./cmd/apidiff -write\nand commit the updated %s alongside the code change.\n", *golden)
		os.Exit(1)
	}
	fmt.Printf("apidiff: %s matches %s\n", *dir, path)
}

// DumpDir renders the exported API of the (non-test) Go files in dir as
// a sorted newline-terminated list, one declaration per line.
func DumpDir(dir string) (string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.SkipObjectResolution)
	if err != nil {
		return "", err
	}
	var lines []string
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") || pkg.Name == "main" {
			continue
		}
		for _, f := range pkg.Files {
			lines = append(lines, dumpFile(fset, f)...)
		}
	}
	sort.Strings(lines)
	// A declaration split across files (e.g. paired const blocks) can
	// repeat; the surface is a set.
	lines = dedupe(lines)
	return strings.Join(lines, "\n") + "\n", nil
}

func dedupe(lines []string) []string {
	out := lines[:0]
	for i, l := range lines {
		if i == 0 || l != lines[i-1] {
			out = append(out, l)
		}
	}
	return out
}

var spaceRe = regexp.MustCompile(`\s+`)

// render prints an AST node on one normalized line.
func render(fset *token.FileSet, n any) string {
	var b strings.Builder
	printer.Fprint(&b, fset, n)
	return spaceRe.ReplaceAllString(b.String(), " ")
}

func dumpFile(fset *token.FileSet, f *ast.File) []string {
	var lines []string
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			if d.Recv != nil && !exportedReceiver(d.Recv) {
				continue
			}
			fd := *d
			fd.Body = nil
			fd.Doc = nil
			lines = append(lines, render(fset, &fd))
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if !sp.Name.IsExported() {
						continue
					}
					lines = append(lines, renderType(fset, sp))
				case *ast.ValueSpec:
					kw := "var"
					if d.Tok == token.CONST {
						kw = "const"
					}
					for _, name := range sp.Names {
						if !name.IsExported() {
							continue
						}
						line := kw + " " + name.Name
						if sp.Type != nil {
							line += " " + render(fset, sp.Type)
						}
						lines = append(lines, line)
					}
				}
			}
		}
	}
	return lines
}

// exportedReceiver reports whether a method's receiver base type is
// exported — methods on unexported types are not API (promoted methods
// through exported embeddings are a type-checker-level nicety this
// syntactic guard deliberately skips).
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) != 1 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// renderType prints a type declaration, trimming struct and interface
// bodies to their exported members — unexported fields and methods can
// change freely without being an API break.
func renderType(fset *token.FileSet, sp *ast.TypeSpec) string {
	assign := " "
	if sp.Assign.IsValid() {
		assign = " = "
	}
	switch t := sp.Type.(type) {
	case *ast.StructType:
		var fields []string
		for _, f := range t.Fields.List {
			if len(f.Names) == 0 { // embedded
				if exportedEmbedded(f.Type) {
					fields = append(fields, render(fset, f.Type))
				}
				continue
			}
			var names []string
			for _, n := range f.Names {
				if n.IsExported() {
					names = append(names, n.Name)
				}
			}
			if len(names) > 0 {
				fields = append(fields, strings.Join(names, ", ")+" "+render(fset, f.Type))
			}
		}
		return "type " + sp.Name.Name + assign + "struct { " + strings.Join(fields, "; ") + " }"
	case *ast.InterfaceType:
		var methods []string
		for _, m := range t.Methods.List {
			if len(m.Names) == 0 { // embedded interface
				methods = append(methods, render(fset, m.Type))
				continue
			}
			for _, n := range m.Names {
				if n.IsExported() {
					methods = append(methods, n.Name+strings.TrimPrefix(render(fset, m.Type), "func"))
				}
			}
		}
		return "type " + sp.Name.Name + assign + "interface { " + strings.Join(methods, "; ") + " }"
	default:
		return "type " + sp.Name.Name + assign + render(fset, sp.Type)
	}
}

func exportedEmbedded(t ast.Expr) bool {
	switch tt := t.(type) {
	case *ast.StarExpr:
		return exportedEmbedded(tt.X)
	case *ast.Ident:
		return tt.IsExported()
	case *ast.SelectorExpr:
		return tt.Sel.IsExported()
	default:
		return false
	}
}

// Diff reports line-level additions and removals between two sorted
// dumps (a set diff — order carries no meaning in the surface).
func Diff(want, got string) string {
	w := splitSet(want)
	g := splitSet(got)
	var b strings.Builder
	var keys []string
	for k := range w {
		keys = append(keys, k)
	}
	for k := range g {
		if !w[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		switch {
		case w[k] && !g[k]:
			fmt.Fprintf(&b, "  - %s\n", k)
		case !w[k] && g[k]:
			fmt.Fprintf(&b, "  + %s\n", k)
		}
	}
	return b.String()
}

func splitSet(s string) map[string]bool {
	m := make(map[string]bool)
	for _, l := range strings.Split(s, "\n") {
		if l = strings.TrimSpace(l); l != "" {
			m[l] = true
		}
	}
	return m
}
