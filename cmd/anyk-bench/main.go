// Command anyk-bench regenerates the experiment tables of the
// reproduction (E1–E12 in DESIGN.md / EXPERIMENTS.md).
//
// Usage:
//
//	anyk-bench                 # run every experiment at default scale
//	anyk-bench -exp E6         # run one experiment
//	anyk-bench -exp E6 -scale small
//	anyk-bench -benchjson anyk # write machine-readable BENCH_anyk.json
//	anyk-bench -benchjson anyk -parallel 4  # 4 prepare workers
//
// Scales: small (seconds, CI-friendly), default (tens of seconds),
// large (minutes — closest to paper-scale shapes).
//
// The -benchjson mode records the perf trajectory: it compiles a path
// query once with the prepared facade, runs every any-k variant off the
// shared plan, and writes BENCH_<name>.json with per-variant
// time-to-first-result, time-to-k, and total enumeration time in
// nanoseconds, plus a timestamp — one snapshot per commit, so the
// perf trajectory accumulates in version control. It also times the
// cyclic prepare path (GHD bag materialisation for a bowtie query)
// twice — sequentially and with -parallel workers
// (repro.WithParallelism) — so each snapshot records the
// sequential-vs-parallel prepare ratio on the machine that produced it.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro"
	"repro/internal/experiments"
	"repro/internal/parallel"
	"repro/internal/ranking"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/wcoj"
	"repro/internal/workload"
)

type scaleCfg struct {
	e1ns, e2ns, e3ns []int
	e4n              int
	e4ks             []int
	e5n              int
	e5ks             []int
	e6ns             []int
	e6k              int
	e7n              int
	e8ns             []int
	e8k              int
	e9ns             []int
	e9k              int
	e10n             int
	e11n             int
	e11ks            []int
	e12n             int
	e13ns            []int
	e13k             int
	e14n             int
	e15ns            []int
}

var scales = map[string]scaleCfg{
	"small": {
		e1ns: []int{200, 400, 800},
		e2ns: []int{200, 400, 800},
		e3ns: []int{500, 1000, 2000},
		e4n:  2000, e4ks: []int{1, 10, 100},
		e5n: 2000, e5ks: []int{1, 10},
		e6ns: []int{500, 1000}, e6k: 100,
		e7n:  300,
		e8ns: []int{500, 1000}, e8k: 100,
		e9ns: []int{1000, 2000}, e9k: 100,
		e10n: 400,
		e11n: 500, e11ks: []int{1, 10, 100, 1000, 10000},
		e12n:  500,
		e13ns: []int{200, 400}, e13k: 100,
		e14n:  500,
		e15ns: []int{500, 1000, 2000},
	},
	"default": {
		e1ns: []int{500, 1000, 2000, 4000},
		e2ns: []int{500, 1000, 2000, 4000},
		e3ns: []int{1000, 2000, 4000, 8000},
		e4n:  20000, e4ks: []int{1, 10, 100, 1000},
		e5n: 20000, e5ks: []int{1, 10, 100},
		e6ns: []int{1000, 2000, 4000}, e6k: 1000,
		e7n:  1000,
		e8ns: []int{1000, 2000, 4000}, e8k: 1000,
		e9ns: []int{2000, 4000, 8000}, e9k: 1000,
		e10n: 1000,
		e11n: 1000, e11ks: []int{1, 10, 100, 1000, 10000, 100000},
		e12n:  1000,
		e13ns: []int{500, 1000, 2000}, e13k: 200,
		e14n:  1000,
		e15ns: []int{1000, 2000, 4000, 8000},
	},
	"large": {
		e1ns: []int{1000, 2000, 4000, 8000, 16000},
		e2ns: []int{1000, 2000, 4000, 8000},
		e3ns: []int{2000, 4000, 8000, 16000},
		e4n:  100000, e4ks: []int{1, 10, 100, 1000},
		e5n: 100000, e5ks: []int{1, 10, 100},
		e6ns: []int{2000, 4000, 8000, 16000}, e6k: 1000,
		e7n:  3000,
		e8ns: []int{2000, 4000, 8000, 16000}, e8k: 1000,
		e9ns: []int{4000, 8000, 16000}, e9k: 1000,
		e10n: 2000,
		e11n: 2000, e11ks: []int{1, 10, 100, 1000, 10000, 100000, 1000000},
		e12n:  2000,
		e13ns: []int{1000, 2000, 4000}, e13k: 200,
		e14n:  2000,
		e15ns: []int{2000, 4000, 8000, 16000},
	},
}

func main() {
	exp := flag.String("exp", "all", "experiment to run: E1..E15 or 'all'")
	scale := flag.String("scale", "default", "workload scale: small, default, large")
	asCSV := flag.Bool("csv", false, "emit comma-separated values instead of aligned tables")
	benchJSON := flag.String("benchjson", "", "write BENCH_<name>.json with per-variant TTF/TTK/total and exit")
	par := flag.Int("parallel", 0, "prepare workers for the -benchjson parallel measurement (<= 0 selects GOMAXPROCS)")
	serve := flag.Bool("serve", false, "with -benchjson: also measure the anykd serving layer end-to-end and record serve_topk_qps")
	flag.Parse()
	// Ctrl-C cancels the in-flight experiment's enumeration instead of
	// killing the process mid-table.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		// After the first signal has canceled ctx, unregister so a
		// second Ctrl-C kills the process the default way.
		<-ctx.Done()
		stop()
	}()
	// The experiment helpers panic on iterator errors; when the error is
	// this cancellation, exit with the conventional interrupt status
	// instead of a stack trace.
	defer func() {
		if r := recover(); r != nil {
			if ctx.Err() != nil {
				fmt.Fprintln(os.Stderr, "anyk-bench: interrupted")
				os.Exit(130)
			}
			panic(r)
		}
	}()
	render := func(t *stats.Table) string {
		if *asCSV {
			return t.CSV()
		}
		return t.String()
	}

	cfg, ok := scales[*scale]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scale %q (small, default, large)\n", *scale)
		os.Exit(2)
	}

	if *benchJSON != "" {
		path, err := writeBenchJSON(*benchJSON, *scale, cfg, *par, *serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
		return
	}

	runners := map[string]func() *stats.Table{
		"E1":  func() *stats.Table { return experiments.E1(cfg.e1ns) },
		"E2":  func() *stats.Table { return experiments.E2(ctx, cfg.e2ns) },
		"E3":  func() *stats.Table { return experiments.E3(cfg.e3ns) },
		"E4":  func() *stats.Table { return experiments.E4(cfg.e4n, cfg.e4ks) },
		"E5":  func() *stats.Table { return experiments.E5(cfg.e5n, cfg.e5ks) },
		"E6":  func() *stats.Table { return experiments.E6(ctx, cfg.e6ns, cfg.e6k) },
		"E7":  func() *stats.Table { return experiments.E7(ctx, cfg.e7n) },
		"E8":  func() *stats.Table { return experiments.E8(ctx, cfg.e8ns, cfg.e8k) },
		"E9":  func() *stats.Table { return experiments.E9(ctx, cfg.e9ns, cfg.e9k) },
		"E10": func() *stats.Table { return experiments.E10(cfg.e10n) },
		"E11": func() *stats.Table { return experiments.E11(ctx, cfg.e11n, cfg.e11ks) },
		"E12": func() *stats.Table { return experiments.E12(ctx, cfg.e12n) },
		"E13": func() *stats.Table { return experiments.E13(ctx, cfg.e13ns, cfg.e13k) },
		"E14": func() *stats.Table { return experiments.E14(ctx, cfg.e14n) },
		"E15": func() *stats.Table { return experiments.E15(cfg.e15ns) },
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15"}

	want := strings.ToUpper(*exp)
	if want == "ALL" {
		for _, name := range order {
			fmt.Println(render(runners[name]()))
		}
		return
	}
	run, ok := runners[want]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (E1..E15 or all)\n", *exp)
		os.Exit(2)
	}
	fmt.Println(render(run()))
}

// benchVariant is one per-variant measurement in BENCH_<name>.json.
// Durations are nanoseconds so the file diffs numerically.
type benchVariant struct {
	Variant string `json:"variant"`
	Results int    `json:"results"`
	TTFNs   int64  `json:"ttf_ns"`
	TTKNs   int64  `json:"ttk_ns"`
	TotalNs int64  `json:"total_ns"`
}

type benchReport struct {
	Name      string         `json:"name"`
	Scale     string         `json:"scale"`
	Query     string         `json:"query"`
	N         int            `json:"n"`
	K         int            `json:"k"`
	CompileNs int64          `json:"compile_ns"`
	Timestamp string         `json:"timestamp"`
	Variants  []benchVariant `json:"variants"`

	// Prepare path: the bowtie's GHD bags materialised sequentially vs
	// with PrepareWorkers workers (repro.WithParallelism). The ratio
	// prepare_seq_ns / prepare_par_ns is the machine's prepare speedup.
	PrepareShape   string `json:"prepare_shape"`
	PrepareN       int    `json:"prepare_n"`
	PrepareWorkers int    `json:"prepare_workers"`
	PrepareSeqNs   int64  `json:"prepare_seq_ns"`
	PrepareParNs   int64  `json:"prepare_par_ns"`

	// Acyclic prepare path: a wide star's T-DP instantiated sequentially
	// vs with PrepareWorkers workers (level-synchronized π pass). The
	// ratio acyclic_prepare_seq_ns / acyclic_prepare_par_ns is the
	// machine's acyclic prepare speedup; CI diffs both pairs against the
	// base branch and warns on regressions.
	AcyclicPrepareShape string `json:"acyclic_prepare_shape"`
	AcyclicPrepareN     int    `json:"acyclic_prepare_n"`
	AcyclicPrepareSeqNs int64  `json:"acyclic_prepare_seq_ns"`
	AcyclicPrepareParNs int64  `json:"acyclic_prepare_par_ns"`

	// Cost-based planner: the Zipf-skewed chorded 5-cycle prepared with
	// statistics disabled (the structural heuristic) vs the default
	// catalog-backed cost model, same fresh-handle best-of-three timing
	// as the pairs above. The bench verifies both plans return identical
	// top-k answers before recording anything, so the speedup is never a
	// wrong-answer artifact. The materialised totals and decomposition
	// strings record *why* the costed plan wins; CI diffs the timing pair
	// and warns when the optimized prepare is slower than the heuristic.
	OptShape          string `json:"opt_shape"`
	OptN              int    `json:"opt_n"`
	HeurPrepareNs     int64  `json:"heur_prepare_ns"`
	OptPrepareNs      int64  `json:"opt_prepare_ns"`
	HeurMaterialized  int    `json:"heur_materialized"`
	OptMaterialized   int    `json:"opt_materialized"`
	HeurDecomposition string `json:"heur_decomposition"`
	OptDecomposition  string `json:"opt_decomposition"`

	// Skew-aware partitioning, on/off, on the heavy-hitter fixture (a
	// triangle over a hub graph where one first-variable value owns a
	// third of the join). Three wall-times — sequential, legacy
	// first-variable chunking, skew-aware heavy/light — plus the
	// machine-independent record: each strategy's largest single-task
	// share of total join work (wcoj.TaskShares). Wall-clock gaps only
	// appear at GOMAXPROCS > 1; the share pair is what CI diffs, since
	// multi-core wall-clock is bounded below by the critical share
	// (speedup <= 1/share).
	SkewShape           string  `json:"skew_shape"`
	SkewWorkers         int     `json:"skew_workers"`
	SkewSeqNs           int64   `json:"skew_seq_ns"`
	SkewChunkedNs       int64   `json:"skew_chunked_ns"`
	SkewAwareNs         int64   `json:"skew_aware_ns"`
	SkewChunkedMaxShare float64 `json:"skew_chunked_max_share"`
	SkewAwareMaxShare   float64 `json:"skew_aware_max_share"`

	// Uniform answer sampling (Prepared.Sample) on the same pinned
	// SkewedChordedCycle query the optimizer pair runs on. The AGM bound
	// there is ~4 decades above the true cardinality, so the rejection
	// walk accepts rarely and the seeded run is expected to exhaust its
	// trial budget (sample_exhausted) — which is exactly the regime
	// worth recording: trials_per_sec is the machine's walk throughput,
	// samples_per_sec the accepted-answer yield, and
	// sample_est_cardinality the unbiased estimate those trials buy.
	SampleShape        string  `json:"sample_shape"`
	SampleN            int     `json:"sample_n"`
	SampleAccepted     int     `json:"sample_accepted"`
	SampleTrials       int64   `json:"sample_trials"`
	SampleNs           int64   `json:"sample_ns"`
	SamplesPerSec      float64 `json:"samples_per_sec"`
	SampleTrialsPerSec float64 `json:"sample_trials_per_sec"`
	SampleAGMBound     float64 `json:"sample_agm_bound"`
	SampleEstCard      float64 `json:"sample_est_cardinality"`
	SampleExhausted    bool    `json:"sample_exhausted"`

	// Incremental deltas vs cold re-preparation, on a path join with the
	// delta landing on one end relation: a small append+delete batch
	// lands on a warm handle through Prepared.ApplyDelta
	// (delta_apply_ns — semi-joins, regrouping, and π recomputation
	// re-run only along the changed paths), against the full cold path
	// on the updated data — Compile plus the first ranked run
	// (cold_prepare_ns), which is what a serving layer without deltas
	// pays on every data change. The bench verifies the patched handle
	// and the cold handle agree on the full top-k answer before
	// recording anything. delta_nodes_reused / delta_nodes_recomputed
	// (and the bag counters on GHD shapes) record *why* the delta is
	// cheap.
	DeltaShape           string `json:"delta_shape"`
	DeltaAppendRows      int    `json:"delta_append_rows"`
	DeltaDeleteRows      int    `json:"delta_delete_rows"`
	DeltaApplyNs         int64  `json:"delta_apply_ns"`
	ColdPrepareNs        int64  `json:"cold_prepare_ns"`
	DeltaBagsReused      int64  `json:"delta_bags_reused"`
	DeltaBagsRebuilt     int64  `json:"delta_bags_rebuilt"`
	DeltaNodesReused     int64  `json:"delta_nodes_reused"`
	DeltaNodesRecomputed int64  `json:"delta_nodes_recomputed"`

	// Serving layer (-serve): warm top-k throughput through the full
	// HTTP stack — internal/server with its plan registry, admission
	// control, and NDJSON streaming — measured with ServeClients
	// concurrent clients issuing ServeRequests total requests against a
	// warm plan. serve_topk_qps is the end-to-end requests/second.
	ServeTopKQPS   float64 `json:"serve_topk_qps,omitempty"`
	ServeRequests  int     `json:"serve_requests,omitempty"`
	ServeClients   int     `json:"serve_clients,omitempty"`
	ServeK         int     `json:"serve_k,omitempty"`
	ServeCacheHits int64   `json:"serve_cache_hits,omitempty"`
	// The same QPS run with Config.DisableObservability (no tracing, no
	// per-request metrics middleware) — the uninstrumented baseline; the
	// overhead percentage is (noobs − obs)/noobs · 100, the figure the CI
	// diff gate holds under 2%.
	ServeTopKQPSNoObs   float64 `json:"serve_topk_qps_noobs,omitempty"`
	ServeObsOverheadPct float64 `json:"serve_obs_overhead_pct"`
	// After the QPS run, one PATCH delta lands on a dataset and one more
	// warm request follows: serve_patch_warm records whether the plan
	// registry kept the entry warm across the delta (X-Plan-Cache: hit —
	// the tentpole claim, end to end), serve_patch_ns the PATCH
	// round-trip including plan propagation.
	ServePatchWarm bool  `json:"serve_patch_warm,omitempty"`
	ServePatchNs   int64 `json:"serve_patch_ns,omitempty"`
}

// bowtieBench builds the bowtie query (two triangles sharing A — a
// two-bag GHD with intra-bag Generic-Join work) over n random edges.
func bowtieBench(n int) *repro.Query {
	g := workload.RandomGraph(n/10, n, workload.UniformWeights(), 17)
	q := repro.NewQuery()
	for i, vs := range [][]string{
		{"A", "B"}, {"B", "C"}, {"C", "A"}, {"A", "D"}, {"D", "E"}, {"E", "A"},
	} {
		q.Rel(fmt.Sprintf("E%d", i+1), vs, g.Edges.Tuples, g.Edges.Weights)
	}
	return q
}

// starBench builds a wide acyclic star query (8 relations sharing a
// hub variable, so 7 join-tree leaves sit on one level) over n tuples
// per relation — the shape whose T-DP instantiation the parallel
// acyclic prepare path fans out best on.
func starBench(n int) *repro.Query {
	inst := workload.Star(8, n, n/20+1, workload.UniformWeights(), 19)
	q := repro.NewQuery()
	for i, r := range inst.Rels {
		q.Rel(r.Name, inst.H.Edges[i].Vars, r.Tuples, r.Weights)
	}
	return q
}

// chordedBench builds the Zipf-skewed chorded 5-cycle
// (workload.SkewedChordedCycle) the optimizer on/off comparison runs
// on. The fixture is pinned — same size, skew, and seed at every
// -scale — so the heur/opt prepare pair diffs comparably across
// snapshots.
func chordedBench() *repro.Query {
	inst := workload.SkewedChordedCycle(2000, 200, 5, 1.1, workload.UniformWeights(), 42)
	q := repro.NewQuery()
	for i, r := range inst.Rels {
		q.Rel(r.Name, inst.H.Edges[i].Vars, r.Tuples, r.Weights)
	}
	return q
}

// hubTriangleAtoms builds triangle atoms over a three-layer rotor graph
// — hub 0 → every left vertex, complete bipartite left → right, every
// right vertex → 0 — so each of the 3·m·k triangle answers is one
// rotation of (0, left, right) and the single value A=0 owns a third of
// the join. This is the heavy-hitter fixture of the skew guardrail in
// parallel_bench_test.go, duplicated here because the bench binary
// cannot import test files.
func hubTriangleAtoms(m, k int) []wcoj.Atom {
	mk := func(name string) *relation.Relation {
		r := relation.New(name, "src", "dst")
		add := func(a, b int64) { r.AddWeighted(float64(a)+float64(b)/1000, a, b) }
		for l := int64(1); l <= int64(m); l++ {
			add(0, l)
			for rt := int64(m + 1); rt <= int64(m+k); rt++ {
				add(l, rt)
			}
		}
		for rt := int64(m + 1); rt <= int64(m+k); rt++ {
			add(rt, 0)
		}
		return r
	}
	return []wcoj.Atom{
		{Rel: mk("R"), Vars: []string{"A", "B"}},
		{Rel: mk("S"), Vars: []string{"B", "C"}},
		{Rel: mk("T"), Vars: []string{"C", "A"}},
	}
}

// measureMaterialize reports the best of three runs of one wcoj
// materialisation strategy on the fixture.
func measureMaterialize(run func() error) (time.Duration, error) {
	var best time.Duration
	for i := 0; i < 3; i++ {
		start := time.Now()
		if err := run(); err != nil {
			return 0, err
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// measurePrepare times the first-run prepare path (for cyclic queries
// decomposition bag materialisation + tree compilation, for acyclic
// ones the T-DP instantiation) under the given compile options. The
// Compile call — whose GHD structure search is sequential either way,
// and which for acyclic queries builds the aggregate-independent plan —
// stays outside the timer, and the best of three fresh-handle samples
// is reported so the recorded ratios reflect the per-ranking prepare
// work rather than one-off cache or GC noise.
func measurePrepare(q *repro.Query, opts ...repro.CompileOption) (time.Duration, error) {
	var best time.Duration
	for i := 0; i < 3; i++ {
		p, err := repro.Compile(q, opts...)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		if _, err := p.TopK(1); err != nil {
			return 0, err
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// measureServe stands up the serving layer in-process (the same
// internal/server an anykd binary runs), registers the path workload's
// relations as datasets and a query over them, warms the plan with one
// request, then hammers /topk with `clients` concurrent clients for
// `requests` total requests. It returns the end-to-end QPS and the
// plan-registry hit count (which must account for every warm request —
// zero re-preparation is the serving layer's core claim). Afterwards
// one PATCH delta lands on the first dataset and one more request
// follows: patchWarm reports whether the registry entry survived the
// delta (X-Plan-Cache: hit), patchNs the PATCH round-trip.
func measureServe(inst *workload.Instance, k, clients, requests int, disableObs bool) (qps float64, cacheHits int64, patchWarm bool, patchNs int64, err error) {
	s := server.New(server.Config{MaxInflight: clients * 2, DisableObservability: disableObs})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	post := func(url string, payload any) error {
		b, err := json.Marshal(payload)
		if err != nil {
			return err
		}
		resp, err := http.Post(url, "application/json", bytes.NewReader(b))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST %s: status %d", url, resp.StatusCode)
		}
		return nil
	}
	atoms := make([]map[string]any, len(inst.Rels))
	for i, r := range inst.Rels {
		dsName := fmt.Sprintf("serve_r%d", i)
		if err := post(ts.URL+"/v1/datasets/"+dsName, map[string]any{
			"tuples": r.Tuples, "weights": r.Weights,
		}); err != nil {
			return 0, 0, false, 0, err
		}
		atoms[i] = map[string]any{"dataset": dsName, "vars": inst.H.Edges[i].Vars}
	}
	if err := post(ts.URL+"/v1/queries/serve_path", map[string]any{"atoms": atoms}); err != nil {
		return 0, 0, false, 0, err
	}

	topkURL := fmt.Sprintf("%s/v1/query/serve_path/topk?k=%d", ts.URL, k)
	get := func() error {
		resp, err := http.Get(topkURL)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET topk: status %d", resp.StatusCode)
		}
		return nil
	}
	if err := get(); err != nil { // cold request builds + warms the plan
		return 0, 0, false, 0, err
	}

	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	per := requests / clients
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := get(); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	if err := <-errCh; err != nil {
		return 0, 0, false, 0, err
	}

	// Read the registry hit count back through the public stats surface.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		return 0, 0, false, 0, err
	}
	defer resp.Body.Close()
	var st struct {
		Registry struct {
			Hits int64 `json:"hits"`
		} `json:"registry"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, 0, false, 0, err
	}
	qps = float64(per*clients) / elapsed.Seconds()
	cacheHits = st.Registry.Hits

	// One PATCH delta on the first dataset — then the next warm request
	// must still be a registry hit: the plan was advanced in place, not
	// dropped and recompiled.
	patchPayload, err := json.Marshal(map[string]any{
		"append": []any{[]any{1, 2}}, "append_weights": []float64{0.5},
	})
	if err != nil {
		return 0, 0, false, 0, err
	}
	patchStart := time.Now()
	req, err := http.NewRequest(http.MethodPatch, ts.URL+"/v1/datasets/serve_r0", bytes.NewReader(patchPayload))
	if err != nil {
		return 0, 0, false, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	presp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, 0, false, 0, err
	}
	io.Copy(io.Discard, presp.Body)
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		return 0, 0, false, 0, fmt.Errorf("PATCH serve_r0: status %d", presp.StatusCode)
	}
	patchNs = time.Since(patchStart).Nanoseconds()
	wresp, err := http.Get(topkURL)
	if err != nil {
		return 0, 0, false, 0, err
	}
	io.Copy(io.Discard, wresp.Body)
	wresp.Body.Close()
	if wresp.StatusCode != http.StatusOK {
		return 0, 0, false, 0, fmt.Errorf("post-patch topk: status %d", wresp.StatusCode)
	}
	patchWarm = wresp.Header.Get("X-Plan-Cache") == "hit"
	return qps, cacheHits, patchWarm, patchNs, nil
}

// writeBenchJSON compiles a 4-relation path query once and measures
// every any-k variant off the shared prepared plan: time-to-first,
// time-to-k, and total enumeration time. It then measures the cyclic
// prepare path sequentially and with `workers` workers, and (with
// -serve) the serving layer's warm top-k throughput.
func writeBenchJSON(name, scale string, cfg scaleCfg, workers int, serve bool) (string, error) {
	n := cfg.e6ns[len(cfg.e6ns)-1]
	k := cfg.e6k
	inst := workload.Path(4, n, n/5+1, workload.UniformWeights(), 42)
	q := repro.NewQuery()
	for i, r := range inst.Rels {
		q.Rel(r.Name, inst.H.Edges[i].Vars, r.Tuples, r.Weights)
	}
	compileStart := time.Now()
	p, err := repro.Compile(q)
	if err != nil {
		return "", err
	}
	// First TopK instantiates and caches the per-ranking plan; include
	// it in compile time so the variant loop measures steady state.
	if _, err := p.TopK(1); err != nil {
		return "", err
	}
	compile := time.Since(compileStart)

	report := benchReport{
		Name:      name,
		Scale:     scale,
		Query:     inst.H.String(),
		N:         n,
		K:         k,
		CompileNs: compile.Nanoseconds(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	for _, v := range []repro.Variant{repro.Eager, repro.Lazy, repro.Quick, repro.All, repro.Take2, repro.Rec, repro.Batch} {
		// Start the clock before Run so variants that front-load work
		// (Batch materialises at construction) pay it in TTF.
		rec := stats.NewDelayRecorder()
		it, err := p.Run(repro.WithVariant(v))
		if err != nil {
			return "", err
		}
		count := 0
		for {
			if _, ok := it.Next(); !ok {
				break
			}
			rec.Mark()
			count++
		}
		it.Close()
		if err := it.Err(); err != nil {
			return "", err
		}
		report.Variants = append(report.Variants, benchVariant{
			Variant: string(v),
			Results: count,
			TTFNs:   rec.TTF().Nanoseconds(),
			TTKNs:   rec.TTK(k).Nanoseconds(),
			TotalNs: rec.TTL().Nanoseconds(),
		})
	}

	prepN := cfg.e6ns[len(cfg.e6ns)-1]
	bq := bowtieBench(prepN)
	seq, err := measurePrepare(bq, repro.WithParallelism(1))
	if err != nil {
		return "", err
	}
	workers = parallel.Degree(workers)
	parT, err := measurePrepare(bq, repro.WithParallelism(workers))
	if err != nil {
		return "", err
	}
	report.PrepareShape = "bowtie"
	report.PrepareN = prepN
	report.PrepareWorkers = workers
	report.PrepareSeqNs = seq.Nanoseconds()
	report.PrepareParNs = parT.Nanoseconds()

	// Acyclic prepare: the same sequential-vs-parallel pair for the
	// star's T-DP instantiation (scaled up — the linear π pass needs a
	// larger input than the width-bounded cyclic materialisation to be
	// measurable).
	acycN := prepN * 8
	aq := starBench(acycN)
	acycSeq, err := measurePrepare(aq, repro.WithParallelism(1))
	if err != nil {
		return "", err
	}
	acycPar, err := measurePrepare(aq, repro.WithParallelism(workers))
	if err != nil {
		return "", err
	}
	report.AcyclicPrepareShape = "star8"
	report.AcyclicPrepareN = acycN
	report.AcyclicPrepareSeqNs = acycSeq.Nanoseconds()
	report.AcyclicPrepareParNs = acycPar.Nanoseconds()

	// Cost-based planner: the same chorded-cycle query prepared with the
	// structural heuristic (repro.WithStatistics(nil)) and with the
	// default catalog-backed cost model. Before timing, one verification
	// pass checks the two plans agree on the full top-k answer — a
	// costed plan that answered differently would make the recorded
	// speedup meaningless — and reads back each plan's materialisation
	// totals and decomposition through PlanStats.
	cq := chordedBench()
	ph, err := repro.Compile(cq, repro.WithStatistics(nil))
	if err != nil {
		return "", err
	}
	po, err := repro.Compile(cq)
	if err != nil {
		return "", err
	}
	rh, err := ph.TopK(k)
	if err != nil {
		return "", err
	}
	ro, err := po.TopK(k)
	if err != nil {
		return "", err
	}
	if len(rh) != len(ro) {
		return "", fmt.Errorf("optimizer check: heuristic plan returned %d results, costed plan %d", len(rh), len(ro))
	}
	for i := range rh {
		if d := rh[i].Weight - ro[i].Weight; d > 1e-9 || d < -1e-9 {
			return "", fmt.Errorf("optimizer check: result %d weight differs: heuristic %g vs costed %g", i, rh[i].Weight, ro[i].Weight)
		}
	}
	heurT, err := measurePrepare(cq, repro.WithStatistics(nil))
	if err != nil {
		return "", err
	}
	optT, err := measurePrepare(cq)
	if err != nil {
		return "", err
	}
	sh, so := ph.PlanStats(), po.PlanStats()
	report.OptShape = "chorded5"
	report.OptN = 2000
	report.HeurPrepareNs = heurT.Nanoseconds()
	report.OptPrepareNs = optT.Nanoseconds()
	report.HeurMaterialized = sh.Rankings[0].TotalMaterialized
	report.OptMaterialized = so.Rankings[0].TotalMaterialized
	report.HeurDecomposition = sh.Decomposition
	report.OptDecomposition = so.Decomposition

	// Skew on/off on the heavy-hitter fixture: sequential, legacy
	// first-variable chunking, and skew-aware heavy/light wall times,
	// plus each parallel strategy's critical task share.
	skewAtoms := hubTriangleAtoms(300, 60)
	skewOrder := []string{"A", "B", "C"}
	skewSeq, err := measureMaterialize(func() error {
		_, _, err := wcoj.Materialize(skewAtoms, skewOrder, ranking.SumCost{})
		return err
	})
	if err != nil {
		return "", err
	}
	skewChunked, err := measureMaterialize(func() error {
		_, _, err := wcoj.MaterializeParallelChunked(context.Background(), skewAtoms, skewOrder, ranking.SumCost{}, workers)
		return err
	})
	if err != nil {
		return "", err
	}
	skewAware, err := measureMaterialize(func() error {
		_, _, err := wcoj.MaterializeParallel(context.Background(), skewAtoms, skewOrder, ranking.SumCost{}, workers)
		return err
	})
	if err != nil {
		return "", err
	}
	chunkedShare, awareShare, err := wcoj.TaskShares(skewAtoms, skewOrder, workers, nil)
	if err != nil {
		return "", err
	}
	report.SkewShape = "hub_triangle"
	report.SkewWorkers = workers
	report.SkewSeqNs = skewSeq.Nanoseconds()
	report.SkewChunkedNs = skewChunked.Nanoseconds()
	report.SkewAwareNs = skewAware.Nanoseconds()
	report.SkewChunkedMaxShare = chunkedShare
	report.SkewAwareMaxShare = awareShare

	// Sampling throughput on the already-compiled chorded-cycle plan:
	// seeded, so consecutive snapshots draw identical answer streams.
	// ErrTrialBudget is the expected outcome on this loose-bound query
	// (recorded, not fatal) — the samples collected and the estimate
	// remain valid.
	const sampleN = 200
	sampleStart := time.Now()
	samples, err := po.Sample(sampleN, repro.WithSeed(7))
	if err != nil && !errors.Is(err, repro.ErrTrialBudget) {
		return "", fmt.Errorf("sample: %w", err)
	}
	sampleDur := time.Since(sampleStart)
	sampleStats := po.PlanStats()
	report.SampleShape = "chorded5"
	report.SampleN = sampleN
	report.SampleAccepted = len(samples)
	report.SampleTrials = sampleStats.SampleTrials
	report.SampleNs = sampleDur.Nanoseconds()
	report.SamplesPerSec = float64(len(samples)) / sampleDur.Seconds()
	report.SampleTrialsPerSec = float64(sampleStats.SampleTrials) / sampleDur.Seconds()
	report.SampleAGMBound = sampleStats.AGMBound
	report.SampleEstCard = sampleStats.EstCardinality
	report.SampleExhausted = errors.Is(err, repro.ErrTrialBudget)

	// Incremental delta vs cold re-prepare. Three fresh warm handles each
	// take the same batch (best-of-three), against best-of-three full
	// cold paths (Compile + first ranked run) on the post-delta data.
	// The fixture is an 8-relation path join with the delta landing on
	// one end: the changed-path reducer re-runs semi-joins, regrouping,
	// and π recomputation only around that end, while the cold side pays
	// the full pipeline on every relation.
	cinst := workload.Path(8, cfg.e4n, cfg.e4n/5+1, workload.UniformWeights(), 42)
	const deltaAppend, deltaDelete = 16, 8
	drng := rand.New(rand.NewSource(99))
	deltaRel := len(cinst.Rels) - 1
	target := cinst.Rels[deltaRel]
	deltaBatch := []repro.Delta{{Rel: target.Name}}
	for i := 0; i < deltaAppend; i++ {
		t := make(repro.Tuple, len(cinst.H.Edges[deltaRel].Vars))
		for c := range t {
			t[c] = repro.Value(drng.Intn(200))
		}
		deltaBatch[0].Append = append(deltaBatch[0].Append, t)
		deltaBatch[0].AppendWeights = append(deltaBatch[0].AppendWeights, drng.Float64())
	}
	for i := 0; i < deltaDelete; i++ {
		deltaBatch[0].Delete = append(deltaBatch[0].Delete, target.Tuples[drng.Intn(len(target.Tuples))])
	}
	mkDeltaQuery := func(relT []repro.Tuple, relW []float64) *repro.Query {
		q := repro.NewQuery()
		for i, r := range cinst.Rels {
			ts, ws := r.Tuples, r.Weights
			if i == deltaRel {
				ts, ws = relT, relW
			}
			q.Rel(r.Name, cinst.H.Edges[i].Vars, ts, ws)
		}
		return q
	}
	// Mirror relation 0 after the batch, for the cold side.
	kill := make(map[string]bool, deltaDelete)
	for _, t := range deltaBatch[0].Delete {
		kill[fmt.Sprint(t)] = true
	}
	var newT []repro.Tuple
	var newW []float64
	for i, t := range target.Tuples {
		if !kill[fmt.Sprint(t)] {
			newT = append(newT, t)
			newW = append(newW, target.Weights[i])
		}
	}
	newT = append(newT, deltaBatch[0].Append...)
	newW = append(newW, deltaBatch[0].AppendWeights...)

	var deltaBest, coldBest time.Duration
	var patchedP, coldP *repro.Prepared
	for i := 0; i < 3; i++ {
		pd, err := repro.Compile(mkDeltaQuery(target.Tuples, target.Weights))
		if err != nil {
			return "", err
		}
		if _, err := pd.TopK(1); err != nil { // warm before the delta
			return "", err
		}
		start := time.Now()
		if err := pd.ApplyDelta(deltaBatch); err != nil {
			return "", fmt.Errorf("delta: %w", err)
		}
		if d := time.Since(start); deltaBest == 0 || d < deltaBest {
			deltaBest = d
		}
		patchedP = pd
	}
	for i := 0; i < 3; i++ {
		start := time.Now()
		pc, err := repro.Compile(mkDeltaQuery(newT, newW))
		if err != nil {
			return "", err
		}
		if _, err := pc.TopK(1); err != nil {
			return "", err
		}
		if d := time.Since(start); coldBest == 0 || d < coldBest {
			coldBest = d
		}
		coldP = pc
	}
	// The patched and cold handles must agree on the full top-k answer
	// (tolerance compare: cost-based planning may legally choose a
	// different bag structure on each side).
	rdlt, err := patchedP.TopK(k)
	if err != nil {
		return "", err
	}
	rcold, err := coldP.TopK(k)
	if err != nil {
		return "", err
	}
	if len(rdlt) != len(rcold) {
		return "", fmt.Errorf("delta check: patched handle returned %d results, cold %d", len(rdlt), len(rcold))
	}
	for i := range rdlt {
		if d := rdlt[i].Weight - rcold[i].Weight; d > 1e-9 || d < -1e-9 {
			return "", fmt.Errorf("delta check: result %d weight differs: patched %g vs cold %g", i, rdlt[i].Weight, rcold[i].Weight)
		}
	}
	dps := patchedP.PlanStats()
	report.DeltaShape = "path8"
	report.DeltaAppendRows = deltaAppend
	report.DeltaDeleteRows = deltaDelete
	report.DeltaApplyNs = deltaBest.Nanoseconds()
	report.ColdPrepareNs = coldBest.Nanoseconds()
	report.DeltaBagsReused = dps.DeltaBagsReused
	report.DeltaBagsRebuilt = dps.DeltaBagsRebuilt
	report.DeltaNodesReused = dps.DeltaNodesReused
	report.DeltaNodesRecomputed = dps.DeltaNodesRecomputed

	if serve {
		// k=100 so per-request enumeration dominates fixed HTTP cost —
		// at tiny k the in-process benchmark client's own CPU share
		// (same GOMAXPROCS pool) is what moves, not the server.
		clients, requests, serveK := 4, 800, 100
		// Five interleaved rounds per mode, medians compared: a single
		// sub-second burst on a shared CI core sees ±20% scheduling
		// noise, far above the 2% observability budget being judged;
		// interleaving cancels drift (thermal, GC, neighbours) that
		// back-to-back passes would bake into the comparison.
		var obsQ, noObsQ []float64
		var cacheHits, patchNs int64
		var patchWarm bool
		for round := 0; round < 5; round++ {
			q, hits, warm, pns, err := measureServe(inst, serveK, clients, requests, false)
			if err != nil {
				return "", fmt.Errorf("serve: %w", err)
			}
			obsQ = append(obsQ, q)
			if round == 0 {
				cacheHits, patchWarm, patchNs = hits, warm, pns
			}
			// Same pass with observability stripped: the uninstrumented
			// baseline the ≤2% overhead budget is measured against.
			qn, _, _, _, err := measureServe(inst, serveK, clients, requests, true)
			if err != nil {
				return "", fmt.Errorf("serve (no obs): %w", err)
			}
			noObsQ = append(noObsQ, qn)
		}
		sort.Float64s(obsQ)
		sort.Float64s(noObsQ)
		qps, qpsNoObs := obsQ[len(obsQ)/2], noObsQ[len(noObsQ)/2]
		report.ServeTopKQPS = qps
		report.ServeRequests = requests
		report.ServeClients = clients
		report.ServeK = serveK
		report.ServeCacheHits = cacheHits
		report.ServePatchWarm = patchWarm
		report.ServePatchNs = patchNs
		report.ServeTopKQPSNoObs = qpsNoObs
		if qpsNoObs > 0 {
			report.ServeObsOverheadPct = (qpsNoObs - qps) / qpsNoObs * 100
		}
	}

	path := fmt.Sprintf("BENCH_%s.json", name)
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}
