// Command anyk-bench regenerates the experiment tables of the
// reproduction (E1–E12 in DESIGN.md / EXPERIMENTS.md).
//
// Usage:
//
//	anyk-bench                 # run every experiment at default scale
//	anyk-bench -exp E6         # run one experiment
//	anyk-bench -exp E6 -scale small
//
// Scales: small (seconds, CI-friendly), default (tens of seconds),
// large (minutes — closest to paper-scale shapes).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/stats"
)

type scaleCfg struct {
	e1ns, e2ns, e3ns []int
	e4n              int
	e4ks             []int
	e5n              int
	e5ks             []int
	e6ns             []int
	e6k              int
	e7n              int
	e8ns             []int
	e8k              int
	e9ns             []int
	e9k              int
	e10n             int
	e11n             int
	e11ks            []int
	e12n             int
	e13ns            []int
	e13k             int
	e14n             int
	e15ns            []int
}

var scales = map[string]scaleCfg{
	"small": {
		e1ns: []int{200, 400, 800},
		e2ns: []int{200, 400, 800},
		e3ns: []int{500, 1000, 2000},
		e4n:  2000, e4ks: []int{1, 10, 100},
		e5n: 2000, e5ks: []int{1, 10},
		e6ns: []int{500, 1000}, e6k: 100,
		e7n:  300,
		e8ns: []int{500, 1000}, e8k: 100,
		e9ns: []int{1000, 2000}, e9k: 100,
		e10n: 400,
		e11n: 500, e11ks: []int{1, 10, 100, 1000, 10000},
		e12n:  500,
		e13ns: []int{200, 400}, e13k: 100,
		e14n:  500,
		e15ns: []int{500, 1000, 2000},
	},
	"default": {
		e1ns: []int{500, 1000, 2000, 4000},
		e2ns: []int{500, 1000, 2000, 4000},
		e3ns: []int{1000, 2000, 4000, 8000},
		e4n:  20000, e4ks: []int{1, 10, 100, 1000},
		e5n: 20000, e5ks: []int{1, 10, 100},
		e6ns: []int{1000, 2000, 4000}, e6k: 1000,
		e7n:  1000,
		e8ns: []int{1000, 2000, 4000}, e8k: 1000,
		e9ns: []int{2000, 4000, 8000}, e9k: 1000,
		e10n: 1000,
		e11n: 1000, e11ks: []int{1, 10, 100, 1000, 10000, 100000},
		e12n:  1000,
		e13ns: []int{500, 1000, 2000}, e13k: 200,
		e14n:  1000,
		e15ns: []int{1000, 2000, 4000, 8000},
	},
	"large": {
		e1ns: []int{1000, 2000, 4000, 8000, 16000},
		e2ns: []int{1000, 2000, 4000, 8000},
		e3ns: []int{2000, 4000, 8000, 16000},
		e4n:  100000, e4ks: []int{1, 10, 100, 1000},
		e5n: 100000, e5ks: []int{1, 10, 100},
		e6ns: []int{2000, 4000, 8000, 16000}, e6k: 1000,
		e7n:  3000,
		e8ns: []int{2000, 4000, 8000, 16000}, e8k: 1000,
		e9ns: []int{4000, 8000, 16000}, e9k: 1000,
		e10n: 2000,
		e11n: 2000, e11ks: []int{1, 10, 100, 1000, 10000, 100000, 1000000},
		e12n:  2000,
		e13ns: []int{1000, 2000, 4000}, e13k: 200,
		e14n:  2000,
		e15ns: []int{2000, 4000, 8000, 16000},
	},
}

func main() {
	exp := flag.String("exp", "all", "experiment to run: E1..E15 or 'all'")
	scale := flag.String("scale", "default", "workload scale: small, default, large")
	asCSV := flag.Bool("csv", false, "emit comma-separated values instead of aligned tables")
	flag.Parse()
	render := func(t *stats.Table) string {
		if *asCSV {
			return t.CSV()
		}
		return t.String()
	}

	cfg, ok := scales[*scale]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scale %q (small, default, large)\n", *scale)
		os.Exit(2)
	}

	runners := map[string]func() *stats.Table{
		"E1":  func() *stats.Table { return experiments.E1(cfg.e1ns) },
		"E2":  func() *stats.Table { return experiments.E2(cfg.e2ns) },
		"E3":  func() *stats.Table { return experiments.E3(cfg.e3ns) },
		"E4":  func() *stats.Table { return experiments.E4(cfg.e4n, cfg.e4ks) },
		"E5":  func() *stats.Table { return experiments.E5(cfg.e5n, cfg.e5ks) },
		"E6":  func() *stats.Table { return experiments.E6(cfg.e6ns, cfg.e6k) },
		"E7":  func() *stats.Table { return experiments.E7(cfg.e7n) },
		"E8":  func() *stats.Table { return experiments.E8(cfg.e8ns, cfg.e8k) },
		"E9":  func() *stats.Table { return experiments.E9(cfg.e9ns, cfg.e9k) },
		"E10": func() *stats.Table { return experiments.E10(cfg.e10n) },
		"E11": func() *stats.Table { return experiments.E11(cfg.e11n, cfg.e11ks) },
		"E12": func() *stats.Table { return experiments.E12(cfg.e12n) },
		"E13": func() *stats.Table { return experiments.E13(cfg.e13ns, cfg.e13k) },
		"E14": func() *stats.Table { return experiments.E14(cfg.e14n) },
		"E15": func() *stats.Table { return experiments.E15(cfg.e15ns) },
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15"}

	want := strings.ToUpper(*exp)
	if want == "ALL" {
		for _, name := range order {
			fmt.Println(render(runners[name]()))
		}
		return
	}
	run, ok := runners[want]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (E1..E15 or all)\n", *exp)
		os.Exit(2)
	}
	fmt.Println(render(run()))
}
