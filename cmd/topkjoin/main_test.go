package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunBasicJoin(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-k", "3", "-rank", "sum", "-variant", "Lazy",
		"-rel", "Legs1:Src,Hub:testdata/legs1.csv",
		"-rel", "Legs2:Hub,Dst:testdata/legs2.csv",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 { // header + 3 results
		t.Fatalf("output lines = %d:\n%s", len(lines), s)
	}
	// Cheapest itinerary: providence→nyc→paris = 95+380 = 475.
	if !strings.Contains(lines[1], "providence") || !strings.Contains(lines[1], "paris") || !strings.Contains(lines[1], "475") {
		t.Errorf("top result wrong: %s", lines[1])
	}
	// Strings must decode back, not appear as codes.
	if strings.Contains(s, "1099511627776") {
		t.Error("dictionary codes leaked into output")
	}
}

func TestRunAllResults(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-k", "0",
		"-rel", "Legs1:Src,Hub:testdata/legs1.csv",
		"-rel", "Legs2:Hub,Dst:testdata/legs2.csv",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	// 5 join results: boston→nyc×2, boston→chicago×1, providence→nyc×2.
	if len(lines) != 6 {
		t.Fatalf("output lines = %d, want 6 (header + 5)", len(lines))
	}
}

func TestRunVariants(t *testing.T) {
	for _, v := range []string{"Eager", "Rec", "Batch"} {
		var out bytes.Buffer
		err := run([]string{
			"-k", "1", "-variant", v,
			"-rel", "Legs1:Src,Hub:testdata/legs1.csv",
			"-rel", "Legs2:Hub,Dst:testdata/legs2.csv",
		}, &out)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if !strings.Contains(out.String(), "providence") {
			t.Errorf("%s: wrong top result:\n%s", v, out.String())
		}
	}
}

func TestRunGHDShape(t *testing.T) {
	// Two fused triangles (K4 minus an edge) — a shape only the generic
	// GHD planner accepts. The graph holds exactly two matches with
	// weights 15 (A=1,B=2,C=3,D=4) and 19.
	var out bytes.Buffer
	err := run([]string{
		"-k", "0", "-rank", "sum",
		"-rel", "R1:A,B:testdata/edges.csv",
		"-rel", "R2:B,C:testdata/edges.csv",
		"-rel", "R3:C,A:testdata/edges.csv",
		"-rel", "R4:B,D:testdata/edges.csv",
		"-rel", "R5:D,C:testdata/edges.csv",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("output lines = %d, want 3 (header + 2 results):\n%s", len(lines), out.String())
	}
	if lines[0] != "rank\tA\tB\tC\tD\tweight" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1\t1\t2\t3\t4\t15") {
		t.Errorf("top fused-triangle result = %q, want 1 1 2 3 4 15", lines[1])
	}
}

func TestRunFlippedCycle(t *testing.T) {
	// A triangle declared with one edge orientation flipped: R2 binds
	// (C,B) instead of (B,C). The matcher must re-orient it, not reject.
	var out bytes.Buffer
	err := run([]string{
		"-k", "1", "-rank", "sum",
		"-rel", "R1:A,B:testdata/edges.csv",
		"-rel", "R2:C,B:testdata/edges.csv",
		"-rel", "R3:C,A:testdata/edges.csv",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("output lines = %d, want 2:\n%s", len(lines), out.String())
	}
	// Lightest match: A=4, B=3, C=2 with weight 5+2+4 = 11.
	if !strings.HasSuffix(lines[1], "11") {
		t.Errorf("top flipped-triangle weight = %q, want 11", lines[1])
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                                  // no relations
		{"-rel", "bad-spec"},                // malformed spec
		{"-rel", "R:A,B:testdata/nope.csv"}, // missing file
		{"-rel", "R:A:testdata/legs1.csv"},  // arity mismatch
		{"-rank", "bogus", "-rel", "R:A,B:testdata/legs1.csv"}, // bad rank
	}
	for i, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRunBadVariant(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-variant", "Nope",
		"-rel", "Legs1:Src,Hub:testdata/legs1.csv",
		"-rel", "Legs2:Hub,Dst:testdata/legs2.csv",
	}, &out)
	if err == nil {
		t.Error("unknown variant should error")
	}
}
