// Command topkjoin runs a ranked (top-k) join query over CSV files —
// the library's algorithms on user data rather than synthetic
// workloads.
//
// Each -rel flag declares one atom as NAME:VAR1,VAR2,...:FILE.csv; the
// CSV's header row is ignored for naming (the VARs bind its columns in
// order) and its last column is read as the tuple weight. Non-numeric
// values are dictionary-encoded consistently across files and decoded
// back in the output.
//
//	topkjoin -k 5 -rank sum -variant Lazy \
//	    -rel 'Legs1:Src,Hub:legs1.csv' \
//	    -rel 'Legs2:Hub,Dst:legs2.csv'
//
// Every full conjunctive query shape is supported: acyclic queries and
// cycles of any length (in either edge orientation) use their canonical
// plans, and all other cyclic shapes — cliques, bowties, fused
// triangles, queries with higher-arity atoms — compile through the
// generic hypertree-decomposition planner (see the repro package
// documentation for the decomposition used per shape).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
	"repro/internal/ranking"
	"repro/internal/relation"
)

type relFlag []string

func (r *relFlag) String() string { return strings.Join(*r, " ") }
func (r *relFlag) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topkjoin:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("topkjoin", flag.ContinueOnError)
	var rels relFlag
	fs.Var(&rels, "rel", "atom spec NAME:VAR1,VAR2,...:FILE.csv (repeatable)")
	k := fs.Int("k", 10, "number of results (0 = all)")
	rank := fs.String("rank", "sum", "ranking: sum, sum-desc, max, min-desc, product")
	variant := fs.String("variant", "Lazy", "algorithm: Eager, Lazy, Quick, All, Take2, Rec, Batch")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(rels) == 0 {
		return fmt.Errorf("at least one -rel is required")
	}

	agg, err := aggByName(*rank)
	if err != nil {
		return err
	}

	dict := relation.NewDictionary()
	q := repro.NewQuery()
	// varTypes tracks, per query variable, whether any bound column is
	// numeric and whether any is dictionary-encoded; a variable with
	// both never joins (columns are typed per file), so warn.
	type colTypes struct{ numeric, dict bool }
	varTypes := map[string]*colTypes{}
	for _, spec := range rels {
		parts := strings.SplitN(spec, ":", 3)
		if len(parts) != 3 {
			return fmt.Errorf("bad -rel %q, want NAME:VARS:FILE", spec)
		}
		name, varSpec, file := parts[0], parts[1], parts[2]
		vars := strings.Split(varSpec, ",")
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		rel, err := relation.ReadCSV(f, name, true, dict)
		f.Close()
		if err != nil {
			return err
		}
		if rel.Arity() != len(vars) {
			return fmt.Errorf("relation %s: %d CSV value columns but %d variables", name, rel.Arity(), len(vars))
		}
		for c, v := range vars {
			t := varTypes[v]
			if t == nil {
				t = &colTypes{}
				varTypes[v] = t
			}
			for _, tp := range rel.Tuples {
				if tp[c] >= relation.DictBase {
					t.dict = true
				} else {
					t.numeric = true
				}
				break // whole-column typing: the first row decides
			}
		}
		q.Rel(name, vars, rel.Tuples, rel.Weights)
	}
	for v, t := range varTypes {
		if t.numeric && t.dict {
			fmt.Fprintf(os.Stderr, "topkjoin: warning: variable %s binds a numeric column in one file and a string column in another; columns are typed per file, so these values never join\n", v)
		}
	}

	p, err := repro.Compile(q)
	if err != nil {
		return err
	}
	it, err := p.Run(
		repro.WithRanking(agg),
		repro.WithVariant(repro.Variant(*variant)),
		repro.WithK(*k),
	)
	if err != nil {
		return err
	}
	defer it.Close()
	fmt.Fprintf(out, "rank\t%s\tweight\n", strings.Join(p.OutAttrs(), "\t"))
	count := 0
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		count++
		cells := make([]string, len(r.Tuple))
		for i, v := range r.Tuple {
			if s := dict.String(v); s != "" {
				cells[i] = s
			} else {
				cells[i] = fmt.Sprintf("%d", v)
			}
		}
		fmt.Fprintf(out, "%d\t%s\t%g\n", count, strings.Join(cells, "\t"), r.Weight)
	}
	if err := it.Err(); err != nil {
		return err
	}
	if count == 0 {
		fmt.Fprintln(out, "(no results)")
	}
	return nil
}

func aggByName(name string) (ranking.Aggregate, error) {
	switch name {
	case "sum":
		return ranking.SumCost{}, nil
	case "sum-desc":
		return ranking.SumBenefit{}, nil
	case "max":
		return ranking.MaxCost{}, nil
	case "min-desc":
		return ranking.MinBenefit{}, nil
	case "product":
		return ranking.ProductCost{}, nil
	}
	return nil, fmt.Errorf("unknown ranking %q", name)
}
