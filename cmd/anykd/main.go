// Command anykd serves ranked top-k join queries over HTTP — the
// serving layer of the reproduction (internal/server) as a standalone
// daemon.
//
// Quickstart:
//
//	anykd -addr :8080 &
//	curl -X POST -H 'Content-Type: text/csv' --data-binary @edges.csv \
//	    'http://localhost:8080/v1/datasets/edges?weights=true'
//	curl -X POST -H 'Content-Type: application/json' \
//	    -d '{"atoms":[{"dataset":"edges","vars":["A","B"]},{"dataset":"edges","vars":["B","C"]}]}' \
//	    http://localhost:8080/v1/queries/hops2
//	curl 'http://localhost:8080/v1/query/hops2/topk?k=5&agg=sum&variant=Lazy'
//	curl 'http://localhost:8080/v1/query/hops2/sample?n=5&seed=1'
//
// Results stream as NDJSON in ranking order with a trailing
// {"done":true,"count":N} line. /sample instead streams n uniform
// random answers (no ranking, no enumeration — an AGM rejection walk
// over the compiled tries) with a trailer carrying an unbiased
// est_cardinality; /v1/stats surfaces plan-registry
// hit/miss counters, admission state, and per-plan statistics. SIGINT
// or SIGTERM triggers a graceful shutdown: new streams are refused,
// in-flight enumerations drain within -grace, stragglers are canceled.
//
// Observability: GET /metrics exposes Prometheus text metrics (request
// counts and latencies, per-ranking TTF/TT(k) histograms, plan-cache
// and delta counters, Go runtime series); every /topk, /sample, and
// dataset PATCH records a phase-level trace retrievable via the
// response's X-Trace-Id header at GET /v1/traces/{id}; -access-log
// writes one JSON line per request; -slow-query logs any request over
// the threshold with its trace id. -admin-addr starts a second,
// operator-only listener with net/http/pprof under /debug/pprof/ plus
// a /metrics alias — bind it to loopback, never the public address.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxInflight := flag.Int("max-inflight", 64, "max concurrent enumerations before /topk returns 429")
	timeout := flag.Duration("timeout", 10*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 60*time.Second, "cap on client-requested ?timeout=")
	maxBody := flag.Int64("max-body-bytes", 64<<20, "max dataset/query upload size")
	maxK := flag.Int("max-k", 0, "cap on ?k= (0 = unlimited)")
	registryCap := flag.Int("registry-cap", 128, "max resident prepared plans")
	registryShards := flag.Int("registry-shards", 8, "plan-registry shards")
	grace := flag.Duration("grace", 15*time.Second, "graceful-shutdown drain window")
	adminAddr := flag.String("admin-addr", "", "operator-only listen address for pprof + /metrics (empty = off; bind to loopback)")
	rateLimit := flag.Float64("rate-limit", 0, "per-query token-bucket rate for /topk and /sample in requests/second (0 = off)")
	traceCap := flag.Int("trace-cap", 64, "recorded request traces kept for GET /v1/traces/{id}")
	slowQuery := flag.Duration("slow-query", 0, "log requests at or above this duration with their trace id (0 = off)")
	accessLog := flag.Bool("access-log", false, "write one JSON access-log line per request to stderr")
	flag.Parse()

	cfg := server.Config{
		MaxInflight:        *maxInflight,
		DefaultTimeout:     *timeout,
		MaxTimeout:         *maxTimeout,
		MaxBodyBytes:       *maxBody,
		MaxK:               *maxK,
		RegistryCapacity:   *registryCap,
		RegistryShards:     *registryShards,
		RateLimit:          *rateLimit,
		TraceCapacity:      *traceCap,
		SlowQueryThreshold: *slowQuery,
		SlowQueryLog:       os.Stderr,
	}
	if *accessLog {
		cfg.AccessLog = os.Stderr
	}
	s := server.New(cfg)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	var admin *http.Server
	if *adminAddr != "" {
		admin = &http.Server{
			Addr:              *adminAddr,
			Handler:           s.AdminHandler(),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			log.Printf("anykd admin (pprof, metrics) listening on %s", *adminAddr)
			if err := admin.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("anykd admin: %v", err)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("anykd listening on %s (max-inflight %d, registry %d plans / %d shards)",
			*addr, *maxInflight, *registryCap, *registryShards)
		errCh <- hs.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		log.Fatalf("anykd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("anykd: shutting down (draining up to %v)", *grace)
	shCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := s.Shutdown(shCtx); err != nil {
		log.Printf("anykd: streams cut after grace period: %v", err)
	}
	if err := hs.Shutdown(shCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("anykd: http shutdown: %v", err)
	}
	if admin != nil {
		admin.Shutdown(shCtx)
	}
	log.Print("anykd: bye")
	os.Exit(0)
}
