// Command anykd serves ranked top-k join queries over HTTP — the
// serving layer of the reproduction (internal/server) as a standalone
// daemon.
//
// Quickstart:
//
//	anykd -addr :8080 &
//	curl -X POST -H 'Content-Type: text/csv' --data-binary @edges.csv \
//	    'http://localhost:8080/v1/datasets/edges?weights=true'
//	curl -X POST -H 'Content-Type: application/json' \
//	    -d '{"atoms":[{"dataset":"edges","vars":["A","B"]},{"dataset":"edges","vars":["B","C"]}]}' \
//	    http://localhost:8080/v1/queries/hops2
//	curl 'http://localhost:8080/v1/query/hops2/topk?k=5&agg=sum&variant=Lazy'
//	curl 'http://localhost:8080/v1/query/hops2/sample?n=5&seed=1'
//
// Results stream as NDJSON in ranking order with a trailing
// {"done":true,"count":N} line. /sample instead streams n uniform
// random answers (no ranking, no enumeration — an AGM rejection walk
// over the compiled tries) with a trailer carrying an unbiased
// est_cardinality; /v1/stats surfaces plan-registry
// hit/miss counters, admission state, and per-plan statistics. SIGINT
// or SIGTERM triggers a graceful shutdown: new streams are refused,
// in-flight enumerations drain within -grace, stragglers are canceled.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxInflight := flag.Int("max-inflight", 64, "max concurrent enumerations before /topk returns 429")
	timeout := flag.Duration("timeout", 10*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 60*time.Second, "cap on client-requested ?timeout=")
	maxBody := flag.Int64("max-body-bytes", 64<<20, "max dataset/query upload size")
	maxK := flag.Int("max-k", 0, "cap on ?k= (0 = unlimited)")
	registryCap := flag.Int("registry-cap", 128, "max resident prepared plans")
	registryShards := flag.Int("registry-shards", 8, "plan-registry shards")
	grace := flag.Duration("grace", 15*time.Second, "graceful-shutdown drain window")
	flag.Parse()

	s := server.New(server.Config{
		MaxInflight:      *maxInflight,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		MaxBodyBytes:     *maxBody,
		MaxK:             *maxK,
		RegistryCapacity: *registryCap,
		RegistryShards:   *registryShards,
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("anykd listening on %s (max-inflight %d, registry %d plans / %d shards)",
			*addr, *maxInflight, *registryCap, *registryShards)
		errCh <- hs.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		log.Fatalf("anykd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("anykd: shutting down (draining up to %v)", *grace)
	shCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := s.Shutdown(shCtx); err != nil {
		log.Printf("anykd: streams cut after grace period: %v", err)
	}
	if err := hs.Shutdown(shCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("anykd: http shutdown: %v", err)
	}
	log.Print("anykd: bye")
	os.Exit(0)
}
