package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"repro/internal/server"
)

// TestSmokeGolden mirrors the CI smoke job byte for byte: it posts
// testdata/smoke_edges.csv and testdata/smoke_query.json against a
// fresh server and asserts the streamed top-k equals
// testdata/smoke_topk.golden — the same three files the workflow drives
// through the compiled binary with curl, so the golden can never drift
// from what CI checks.
func TestSmokeGolden(t *testing.T) {
	s := server.New(server.Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	csvBody, err := os.Open("testdata/smoke_edges.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer csvBody.Close()
	req, _ := http.NewRequest("POST", ts.URL+"/v1/datasets/edges?weights=true", csvBody)
	req.Header.Set("Content-Type", "text/csv")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("dataset upload: status %d", resp.StatusCode)
	}

	queryBody, err := os.Open("testdata/smoke_query.json")
	if err != nil {
		t.Fatal(err)
	}
	defer queryBody.Close()
	req, _ = http.NewRequest("POST", ts.URL+"/v1/queries/hops2", queryBody)
	req.Header.Set("Content-Type", "application/json")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("query registration: status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/query/hops2/topk?k=5&agg=sum&variant=Lazy")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// The golden's tuple order follows the query's output schema (the
	// join-tree preorder, not atom declaration order).
	if attrs := resp.Header.Get("X-Out-Attrs"); attrs != "B,C,A" {
		t.Fatalf("X-Out-Attrs = %q, want B,C,A", attrs)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/smoke_topk.golden")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("top-k stream diverges from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}

	// The sampling endpoint over the same registered query: equal seeds
	// must stream identical answer lines (the trailer's trials/accepts
	// counters are cumulative across calls and are excluded).
	sample1 := getSampleAnswers(t, ts.URL)
	sample2 := getSampleAnswers(t, ts.URL)
	if sample1 != sample2 {
		t.Fatalf("seeded /sample streams diverge:\n%s\nvs:\n%s", sample1, sample2)
	}
}

func getSampleAnswers(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/v1/query/hops2/sample?n=5&seed=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/sample: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) != 6 || !strings.Contains(lines[5], `"done":true`) {
		t.Fatalf("/sample: want 5 answers + done trailer, got:\n%s", body)
	}
	return strings.Join(lines[:5], "\n")
}
