package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

// vetConfig mirrors the JSON config the go command hands a vet tool
// (one file per package, path ending in .cfg). Field names follow the
// de-facto protocol established by cmd/go and x/tools' unitchecker.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnitchecker analyzes the single package described by cfgFile under
// the go vet driver protocol: diagnostics go to stderr in file:line:col
// form with exit status 2; a (fact-free) .vetx output is always written
// so the go command can cache the result.
func runUnitchecker(cfgFile string, active []*analysis.Analyzer) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("parse %s: %v", cfgFile, err))
	}

	// This suite exports no cross-package facts; an empty vetx file
	// satisfies the protocol for both VetxOnly (deps) and full runs.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fatal(err)
		}
	}
	if cfg.VetxOnly {
		return
	}

	pkg, err := analysis.LoadConfig(cfg.ImportPath, cfg.GoFiles, cfg.ImportMap, cfg.PackageFile)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatal(err)
	}
	diags := analysis.RunAnalyzers(pkg, active)
	if len(diags) == 0 {
		return
	}
	for _, d := range diags {
		// The driver prefixes the analyzed package itself; keep the
		// message single-line for it.
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, strings.ReplaceAll(d.Message, "\n", " "))
	}
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "anyk-vet:", err)
	os.Exit(1)
}
