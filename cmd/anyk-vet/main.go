// Command anyk-vet is the project's static-analysis multichecker. It
// machine-enforces the invariants the ranked-enumeration guarantees
// rest on (see docs/ARCHITECTURE.md, "Enforced invariants"):
//
//	mapdeterminism  no order-sensitive accumulation over map ranges in
//	                planner packages
//	lifecycle       iterators are closed and their Err consulted
//	ctxplumb        no detached contexts in library code
//	lockdiscipline  no mutex copies, no Lock without Unlock
//
// Standalone:
//
//	go run ./cmd/anyk-vet ./...
//
// As a vet tool (also covers test-variant packages; test files
// themselves are skipped by every analyzer):
//
//	go build -o /tmp/anyk-vet ./cmd/anyk-vet
//	go vet -vettool=/tmp/anyk-vet ./...
//
// Individual analyzers can be toggled with -<name>=false. Findings are
// suppressed per-site with a justified annotation:
//
//	//anykvet:allow <analyzer> -- <reason>
//
// Exit status: 0 when clean, 1 on findings (standalone), 2 on findings
// (vet protocol), non-zero on load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	versionFlag := flag.String("V", "", "print version and exit (go vet protocol)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags as JSON and exit (go vet protocol)")
	enabled := map[string]*bool{}
	for _, a := range analysis.Suite() {
		enabled[a.Name] = flag.Bool(a.Name, true, "enable the "+a.Name+" analyzer")
	}
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: anyk-vet [flags] [package pattern ...]\n\n")
		for _, a := range analysis.Suite() {
			fmt.Fprintf(flag.CommandLine.Output(), "%s: %s\n\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *versionFlag != "" {
		// The go command caches vet results keyed on this string.
		fmt.Printf("anyk-vet version v1.0.0\n")
		return
	}
	if *flagsFlag {
		printFlagsJSON()
		return
	}

	var active []*analysis.Analyzer
	for _, a := range analysis.Suite() {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnitchecker(args[0], active)
		return
	}

	if len(args) == 0 {
		args = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", args...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "anyk-vet:", err)
		os.Exit(2)
	}
	found := false
	for _, pkg := range pkgs {
		for _, d := range analysis.RunAnalyzers(pkg, active) {
			fmt.Println(d)
			found = true
		}
	}
	if found {
		os.Exit(1)
	}
}

// printFlagsJSON emits the flag description list the go command
// requests (via -flags) before driving a vet tool.
func printFlagsJSON() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		if f.Name == "V" || f.Name == "flags" {
			return
		}
		isBool := false
		if b, ok := f.Value.(interface{ IsBoolFlag() bool }); ok {
			isBool = b.IsBoolFlag()
		}
		out = append(out, jsonFlag{Name: f.Name, Bool: isBool, Usage: f.Usage})
	})
	fmt.Print("[")
	for i, f := range out {
		if i > 0 {
			fmt.Print(",")
		}
		fmt.Printf("{%q:%q,%q:%v,%q:%q}", "Name", f.Name, "Bool", f.Bool, "Usage", f.Usage)
	}
	fmt.Println("]")
}
