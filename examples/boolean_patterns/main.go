// Boolean and counting pattern queries (§1 and Part 2 of the tutorial):
// "is there any 4-cycle?" and "how many triangles?" answered without
// materialising results, plus FAQ-style semiring aggregates over a join
// tree — the O(n) alternatives to full evaluation.
package main

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/hypergraph"
	"repro/internal/relation"
	"repro/internal/workload"
	"repro/internal/yannakakis"
)

func main() {
	// A directed hub graph: every pairwise join is quadratic, yet there
	// is no directed 4-cycle at all (the E2 separator instance).
	inst := workload.FourCycleHub(4000, workload.UniformWeights(), 7)
	edges := inst.Rels[0]
	fmt.Printf("hub graph: %d edges\n", edges.Len())

	q := repro.NewQuery().
		Rel("E1", []string{"A", "B"}, edges.Tuples, edges.Weights).
		Rel("E2", []string{"B", "C"}, edges.Tuples, edges.Weights).
		Rel("E3", []string{"C", "D"}, edges.Tuples, edges.Weights).
		Rel("E4", []string{"D", "A"}, edges.Tuples, edges.Weights)

	start := time.Now()
	empty, err := q.IsEmpty()
	if err != nil {
		panic(err)
	}
	fmt.Printf("any directed 4-cycle? %v  (answered in %v — binary plans need seconds here)\n",
		!empty, time.Since(start))

	// Counting over an acyclic query without materialising: a 3-path
	// over a random graph, counted by the semiring pass.
	g := workload.RandomGraph(2000, 20000, workload.UniformWeights(), 3)
	h := hypergraph.Path(3)
	rels := []*relation.Relation{g.Edges, g.Edges, g.Edges}
	yq, err := yannakakis.NewQuery(h, rels)
	if err != nil {
		panic(err)
	}
	start = time.Now()
	count := yq.AnnotatedEval(yannakakis.CountingSemiring(), func(_, _ int, _ float64) float64 { return 1 })
	fmt.Printf("3-edge paths in the random graph: %.0f  (counted in %v, zero results materialised)\n",
		count, time.Since(start))

	start = time.Now()
	best := yq.AnnotatedEval(yannakakis.MinTropicalSemiring(), nil)
	fmt.Printf("lightest 3-edge path weight: %.4f  (min-sum semiring, %v)\n", best, time.Since(start))

	// Cross-check with ranked enumeration: the first any-k result must
	// match the semiring optimum.
	q2 := repro.NewQuery().
		Rel("E1", []string{"A", "B"}, g.Edges.Tuples, g.Edges.Weights).
		Rel("E2", []string{"B", "C"}, g.Edges.Tuples, g.Edges.Weights).
		Rel("E3", []string{"C", "D"}, g.Edges.Tuples, g.Edges.Weights)
	top, err := q2.TopK(repro.SumCost, repro.Lazy, 1)
	if err != nil {
		panic(err)
	}
	if len(top) > 0 {
		fmt.Printf("any-k top-1 weight agrees: %.4f\n", top[0].Weight)
	}
}
