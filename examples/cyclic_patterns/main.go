// Cyclic pattern search beyond simple cycles — the generic GHD planner
// in action: the facade compiles *any* cyclic query shape (bowtie, K4,
// fused triangles, ...) by searching for a generalized hypertree
// decomposition, materialising each bag with Generic-Join, and running
// ranked any-k enumeration over the acyclic bag tree.
//
// The program searches one weighted random graph for the k lightest
// bowties (two triangles pinched at a shared vertex) and the k lightest
// 4-cliques, printing the decomposition the planner chose for each.
package main

import (
	"flag"
	"fmt"
	"time"

	"repro"
	"repro/internal/workload"
)

func main() {
	edges := flag.Int("edges", 3000, "number of edges in the random graph")
	vertices := flag.Int("vertices", 300, "number of vertices")
	k := flag.Int("k", 5, "how many lightest patterns to report")
	seed := flag.Uint64("seed", 42, "graph seed")
	flag.Parse()

	g := workload.SkewedGraph(*vertices, *edges, 1.2, workload.UniformWeights(), *seed)
	fmt.Printf("graph: %d edges, %d vertices\n\n", *edges, *vertices)

	type atom struct {
		name string
		vars []string
	}
	shapes := []struct {
		name  string
		atoms []atom
	}{
		{"bowtie (triangles sharing vertex A)", []atom{
			{"R1", []string{"A", "B"}}, {"R2", []string{"B", "C"}}, {"R3", []string{"C", "A"}},
			{"R4", []string{"A", "D"}}, {"R5", []string{"D", "E"}}, {"R6", []string{"E", "A"}},
		}},
		{"K4 (4-clique)", []atom{
			{"R1", []string{"A", "B"}}, {"R2", []string{"A", "C"}}, {"R3", []string{"A", "D"}},
			{"R4", []string{"B", "C"}}, {"R5", []string{"B", "D"}}, {"R6", []string{"C", "D"}},
		}},
	}

	for _, shape := range shapes {
		q := repro.NewQuery()
		for _, a := range shape.atoms {
			q.Rel(a.name, a.vars, g.Edges.Tuples, g.Edges.Weights)
		}
		start := time.Now()
		p, err := repro.Compile(q) // GHD search + planning, once
		if err != nil {
			panic(err)
		}
		it, err := p.Run(repro.WithRanking(repro.SumCost), repro.WithK(*k))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s — output schema %v\n", shape.name, p.OutAttrs())
		found := 0
		for {
			r, ok := it.Next()
			if !ok {
				break
			}
			found++
			fmt.Printf("  #%-2d %v  weight %.4f  (t=%v)\n", found, r.Tuple, r.Weight, time.Since(start))
		}
		if err := it.Err(); err != nil {
			panic(err)
		}
		it.Close()
		if found == 0 {
			fmt.Println("  (no matches in this graph — try more edges)")
		}
		fmt.Println()
	}
}
