// Classic top-k join (Part 1 of the tutorial): find the best
// hotel/restaurant pairs in the same city, ranking by the sum of their
// review scores. Two strategies are contrasted:
//
//  1. Rank join (HRJN): pull from the two score-sorted inputs and stop
//     once the corner bound proves the top-k are found.
//  2. The Threshold Algorithm on the "top-k selection" view: per-city
//     best scores as ranked lists (illustrating TA's narrower join type).
package main

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/topk"
	"repro/internal/workload"
)

func main() {
	cities := []string{"boston", "portland", "seattle", "nyc", "austin", "denver"}
	dict := relation.NewDictionary()
	rng := workload.NewRand(7)

	// Hotels(city, hotelID) and Restaurants(city, restID), scored 0..1.
	hotels := relation.New("Hotels", "City", "Hotel")
	rests := relation.New("Restaurants", "City", "Rest")
	for i := 0; i < 60; i++ {
		city := dict.Code(cities[rng.Intn(len(cities))])
		hotels.AddWeighted(rng.Float64(), city, relation.Value(1000+i))
		city2 := dict.Code(cities[rng.Intn(len(cities))])
		rests.AddWeighted(rng.Float64(), city2, relation.Value(2000+i))
	}

	// Strategy 1: rank join over score-sorted scans.
	op := NewRankJoin(hotels, rests)
	fmt.Println("top-5 hotel/restaurant pairs by combined score (rank join):")
	results := topk.TopK(op, 5)
	for i, r := range results {
		fmt.Printf("  #%d  city=%-9s hotel=%d rest=%d  score=%.3f\n",
			i+1, dict.String(r.Tuple[0]), r.Tuple[1], r.Tuple[2], r.Score)
	}
	fmt.Printf("rank-join work: pulled %d tuples, buffered %d joined candidates (queue high-water %d)\n\n",
		op.Stats.PulledLeft+op.Stats.PulledRight, op.Stats.Joined, op.Stats.MaxQueue)

	// Strategy 2: TA over per-city best-score lists (top-k selection).
	// Each "object" is a city; list 1 ranks cities by their best hotel,
	// list 2 by their best restaurant.
	bestHotel := bestPerCity(hotels)
	bestRest := bestPerCity(rests)
	l1 := toList(bestHotel)
	l2 := toList(bestRest)
	got, stats := topk.TA([]*topk.List{l1, l2}, 3, topk.SumAgg{})
	fmt.Println("top-3 cities by best-hotel + best-restaurant (Threshold Algorithm):")
	for i, c := range got {
		fmt.Printf("  #%d  %-9s score=%.3f\n", i+1, dict.String(relation.Value(c.ID)), c.Score)
	}
	fmt.Printf("TA work: %d sorted + %d random accesses\n", stats.Sorted, stats.Random)
}

// NewRankJoin wires two relations into an HRJN operator.
func NewRankJoin(l, r *relation.Relation) *topk.HRJN {
	return topk.NewHRJN(topk.NewScan(l), topk.NewScan(r))
}

func bestPerCity(r *relation.Relation) map[int]float64 {
	best := make(map[int]float64)
	for i, t := range r.Tuples {
		city := int(t[0])
		if w := r.Weights[i]; w > best[city] {
			best[city] = w
		}
	}
	return best
}

func toList(best map[int]float64) *topk.List {
	var ids []int
	for id := range best {
		ids = append(ids, id)
	}
	// Sort descending by score.
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if best[ids[j]] > best[ids[i]] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	grades := make([]float64, len(ids))
	for i, id := range ids {
		grades[i] = best[id]
	}
	l, err := topk.NewList(ids, grades)
	if err != nil {
		panic(err)
	}
	return l
}
