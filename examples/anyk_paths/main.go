// Ranked path enumeration: compare the any-k variants (Part 3 of the
// tutorial) live on a 4-hop path query, reporting time-to-first,
// time-to-k and time-to-last per variant — a miniature of the
// companion paper's empirical study.
package main

import (
	"context"
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/ranking"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/yannakakis"
)

func main() {
	n := flag.Int("n", 2000, "tuples per relation")
	l := flag.Int("l", 4, "path length (relations)")
	k := flag.Int("k", 1000, "checkpoint k")
	flag.Parse()

	inst := workload.Path(*l, *n, *n/5+1, workload.UniformWeights(), 42)
	fmt.Printf("path query: %s, n=%d per relation\n\n", inst.H, *n)

	table := stats.NewTable("any-k variants", "variant", "results", "TTF", fmt.Sprintf("TT(%d)", *k), "TTL", "max_delay")
	for _, v := range core.Variants() {
		rec := stats.NewDelayRecorder()
		q, err := yannakakis.NewQuery(inst.H, inst.Rels)
		if err != nil {
			panic(err)
		}
		t, err := dp.Build(q, ranking.SumCost{})
		if err != nil {
			panic(err)
		}
		it, err := core.New(context.Background(), t, v)
		if err != nil {
			panic(err)
		}
		count := 0
		for {
			if _, ok := it.Next(); !ok {
				break
			}
			rec.Mark()
			count++
		}
		it.Close()
		table.Add(string(v), count, rec.TTF(), rec.TTK(*k), rec.TTL(), rec.MaxDelay())
	}
	fmt.Println(table)

	// Show the top-3 results for one variant, proving the interface.
	q, _ := yannakakis.NewQuery(inst.H, inst.Rels)
	t, _ := dp.Build(q, ranking.SumCost{})
	it, _ := core.New(context.Background(), t, core.Lazy)
	defer it.Close()
	fmt.Println("three best join results (lightest paths):")
	for i := 0; i < 3; i++ {
		r, ok := it.Next()
		if !ok {
			break
		}
		fmt.Printf("  #%d  %v  weight %.4f\n", i+1, r.Tuple, r.Weight)
	}
}
