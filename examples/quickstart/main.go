// Quickstart: declare a two-relation join query, rank results by total
// weight, and pull the top results one at a time — the any-k interface
// of Part 3 of the tutorial.
package main

import (
	"fmt"

	"repro"
)

func main() {
	// A toy flight network: R lists legs Boston→hub with prices; S lists
	// legs hub→destination. We want the cheapest connecting itineraries,
	// best first, without computing the full join.
	legs1 := []repro.Tuple{
		{1, 10}, // Boston(1) → NYC(10)
		{1, 11}, // Boston(1) → Chicago(11)
		{2, 10}, // Providence(2) → NYC(10)
	}
	prices1 := []float64{120, 180, 95}
	legs2 := []repro.Tuple{
		{10, 100}, // NYC → London(100)
		{10, 101}, // NYC → Paris(101)
		{11, 100}, // Chicago → London
	}
	prices2 := []float64{450, 380, 420}

	q := repro.NewQuery().
		Rel("Leg1", []string{"Src", "Hub"}, legs1, prices1).
		Rel("Leg2", []string{"Hub", "Dst"}, legs2, prices2)

	attrs, err := q.OutAttrs()
	if err != nil {
		panic(err)
	}
	fmt.Printf("itinerary schema: %v\n", attrs)

	it, err := q.Ranked(repro.SumCost, repro.Lazy)
	if err != nil {
		panic(err)
	}
	fmt.Println("cheapest itineraries, best first:")
	rank := 1
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		fmt.Printf("  #%d  %v  total $%.0f\n", rank, r.Tuple, r.Weight)
		rank++
	}
}
