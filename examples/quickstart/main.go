// Quickstart: declare a two-relation join query, compile it once, and
// execute it repeatedly with different k and ranking options — the
// prepare-once / execute-many interface over the any-k machinery of
// Part 3 of the tutorial.
package main

import (
	"fmt"

	"repro"
)

func main() {
	// A toy flight network: R lists legs Boston→hub with prices; S lists
	// legs hub→destination. We want the cheapest connecting itineraries,
	// best first, without computing the full join.
	legs1 := []repro.Tuple{
		{1, 10}, // Boston(1) → NYC(10)
		{1, 11}, // Boston(1) → Chicago(11)
		{2, 10}, // Providence(2) → NYC(10)
	}
	prices1 := []float64{120, 180, 95}
	legs2 := []repro.Tuple{
		{10, 100}, // NYC → London(100)
		{10, 101}, // NYC → Paris(101)
		{11, 100}, // Chicago → London
	}
	prices2 := []float64{450, 380, 420}

	q := repro.NewQuery().
		Rel("Leg1", []string{"Src", "Hub"}, legs1, prices1).
		Rel("Leg2", []string{"Hub", "Dst"}, legs2, prices2)

	// Compile once: hypergraph analysis, join-tree planning, and the
	// reduction/grouping passes all happen here, not per request.
	p, err := repro.Compile(q)
	if err != nil {
		panic(err)
	}
	fmt.Printf("itinerary schema: %v\n", p.OutAttrs())

	// Execute: pull results lazily in ranking order. Close is idempotent
	// and safe to defer; Err reports why enumeration stopped early.
	it, err := p.Run(repro.WithRanking(repro.SumCost), repro.WithVariant(repro.Lazy))
	if err != nil {
		panic(err)
	}
	defer it.Close()
	fmt.Println("cheapest itineraries, best first:")
	rank := 1
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		fmt.Printf("  #%d  %v  total $%.0f\n", rank, r.Tuple, r.Weight)
		rank++
	}
	if err := it.Err(); err != nil {
		panic(err)
	}

	// The same compiled plan serves further requests — different k,
	// different ranking — without re-planning.
	best, err := p.TopK(1, repro.WithRanking(repro.MaxCost))
	if err != nil {
		panic(err)
	}
	fmt.Printf("itinerary with the cheapest most-expensive leg: %v (bottleneck $%.0f)\n",
		best[0].Tuple, best[0].Weight)
}
