// Lightest 4-cycles — the running example of the tutorial's
// introduction: given a graph with weighted edges (lower weight = more
// important), return the k most important 4-cycles without materialising
// all O(n²) of them.
//
// The query is the 4-way self-join of the edge relation with equality
// on adjacent endpoints; evaluation uses the submodular-width (1.5)
// decomposition with ranked enumeration (Lazy any-k) and falls back to
// comparing against the batch baseline to show the gap.
package main

import (
	"context"

	"flag"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/ranking"
	"repro/internal/relation"
	"repro/internal/workload"
)

func main() {
	edges := flag.Int("edges", 5000, "number of edges in the random graph")
	vertices := flag.Int("vertices", 1200, "number of vertices")
	k := flag.Int("k", 10, "how many lightest 4-cycles to report")
	seed := flag.Uint64("seed", 42, "graph seed")
	flag.Parse()

	g := workload.SkewedGraph(*vertices, *edges, 1.2, workload.UniformWeights(), *seed)
	var rels [4]*relation.Relation
	for i := range rels {
		rels[i] = g.Edges
	}
	agg := ranking.SumCost{}

	start := time.Now()
	it, st, err := decomp.FourCycleSubmodular(context.Background(), rels, agg, core.Lazy)
	if err != nil {
		panic(err)
	}
	defer it.Close()
	prep := time.Since(start)
	fmt.Printf("graph: %d edges, %d vertices; heavy B values: %d, heavy D values: %d\n",
		*edges, *vertices, st.HeavyB, st.HeavyD)
	fmt.Printf("decomposition bags (per tree, per bag): %v  (total %d tuples, O(n^1.5) guaranteed)\n",
		st.BagSizes, st.TotalMaterialized)
	fmt.Printf("preprocessing: %v\n\n", prep)

	fmt.Printf("top-%d lightest 4-cycles (A→B→C→D→A):\n", *k)
	found := 0
	for found < *k {
		r, ok := it.Next()
		if !ok {
			break
		}
		found++
		fmt.Printf("  #%-3d cycle %v  weight %.4f  (t=%v)\n", found, r.Tuple, r.Weight, time.Since(start))
	}
	if found == 0 {
		fmt.Println("  (no 4-cycles in this graph — try more edges)")
		return
	}

	// Contrast with the batch baseline: materialise every 4-cycle via the
	// single-tree plan and sort.
	bstart := time.Now()
	itB, stB, err := decomp.FourCycleSingleTree(context.Background(), rels, agg, core.Batch)
	if err != nil {
		panic(err)
	}
	defer itB.Close()
	total := 0
	for {
		if _, ok := itB.Next(); !ok {
			break
		}
		total++
	}
	fmt.Printf("\nbatch baseline: %d total 4-cycles via single-tree plan (%d bag tuples) in %v\n",
		total, stB.TotalMaterialized, time.Since(bstart))
}
