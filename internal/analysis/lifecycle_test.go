package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestLifecycle(t *testing.T) {
	analysistest.Run(t, analysis.Lifecycle, "fixtures/lifecycleuse")
}
