package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestCtxPlumb(t *testing.T) {
	analysistest.Run(t, analysis.CtxPlumb, "fixtures/ctxlib")
}

// TestCtxPlumbExemptsCommands checks that packages under a cmd/ path
// segment — composition roots — are skipped wholesale.
func TestCtxPlumbExemptsCommands(t *testing.T) {
	analysistest.Run(t, analysis.CtxPlumb, "fixtures/cmd/tool")
}
