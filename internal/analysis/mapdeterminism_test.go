package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestMapDeterminism(t *testing.T) {
	analysistest.Run(t, analysis.MapDeterminism, "fixtures/decomp")
}

// TestMapDeterminismIgnoresNonPlannerPackages checks the scoping: the
// same patterns outside planner packages draw no findings.
func TestMapDeterminismIgnoresNonPlannerPackages(t *testing.T) {
	analysistest.Run(t, analysis.MapDeterminism, "fixtures/serverish")
}
