package analysis

import (
	"go/ast"
	"go/types"
)

// Lifecycle flags iterator leaks: a core-lifecycle value (any type
// whose method set has both Close() error and Err() error — the
// contract core.Lifecycle provides by embedding) that is produced and
// then dropped without Close, ownership transfer, or escape, and
// Next loops that never consult Err().
var Lifecycle = &Analyzer{
	Name: "lifecycle",
	Doc: "flags call sites where a returned iterator-lifecycle value (Close() error + Err() error) " +
		"is discarded or used without ever being closed, returned, or handed off, and for-loops over " +
		"Next() whose function never consults Err() — silently swallowing cancellation and early-Close errors",
	Run: runLifecycle,
}

func runLifecycle(pass *Pass) {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkLifecycleFunc(pass, fn)
			return true
		})
	}
}

func checkLifecycleFunc(pass *Pass, fn *ast.FuncDecl) {
	// funcLit bodies are visited as part of fn; that is deliberate — a
	// closure may legitimately close an iterator its enclosing function
	// produced, and vice versa.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				checkDroppedLifecycleResult(pass, call)
			}
		case *ast.AssignStmt:
			checkLifecycleAssign(pass, fn, n)
		case *ast.ForStmt:
			checkNextLoop(pass, fn, n)
		}
		return true
	})
}

// checkDroppedLifecycleResult flags a bare call statement that drops a
// lifecycle result on the floor.
func checkDroppedLifecycleResult(pass *Pass, call *ast.CallExpr) {
	for _, t := range callResultTypes(pass, call) {
		if isLifecycleType(t) {
			pass.Reportf(call.Pos(), "result of type %s is dropped without Close: the iterator's resources and error state leak; assign it and Close it (directly, deferred, or via OnRelease) or annotate //anykvet:allow lifecycle -- <reason>", types.TypeString(t, types.RelativeTo(pass.Pkg)))
			return
		}
	}
}

// checkLifecycleAssign inspects `x, err := produce(...)` and flags x
// when it is a lifecycle value that is then used only locally (Next /
// Value / Err) but never closed, returned, stored, or passed on.
func checkLifecycleAssign(pass *Pass, fn *ast.FuncDecl, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	results := callResultTypes(pass, call)
	if len(results) != len(as.Lhs) {
		return
	}
	for i, lhs := range as.Lhs {
		if !isLifecycleType(results[i]) {
			continue
		}
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue // field/index destination: stored, owner elsewhere
		}
		if id.Name == "_" {
			pass.Reportf(as.Pos(), "lifecycle value of type %s is assigned to _ without Close: the iterator's resources leak; close it or annotate //anykvet:allow lifecycle -- <reason>", types.TypeString(results[i], types.RelativeTo(pass.Pkg)))
			continue
		}
		obj := pass.ObjectOf(id)
		if obj == nil {
			continue
		}
		if !lifecycleDischarged(pass, fn, as, obj) {
			pass.Reportf(as.Pos(), "iterator %q (type %s) escapes %s without a Close: close it (directly, deferred, or via OnRelease), return it, or annotate //anykvet:allow lifecycle -- <reason>", id.Name, types.TypeString(results[i], types.RelativeTo(pass.Pkg)), fn.Name.Name)
		}
	}
}

// lifecycleDischarged reports whether obj's Close obligation is
// discharged somewhere in fn after the assignment: a Close call on it,
// a return of it, an assignment of it into another variable, field, or
// index (ownership transfer), or its use as a call argument (handed
// off, including closures registered with OnRelease).
func lifecycleDischarged(pass *Pass, fn *ast.FuncDecl, as *ast.AssignStmt, obj types.Object) bool {
	discharged := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if discharged || n == nil || n.Pos() < as.End() {
			return !discharged
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if recv, ok := sel.X.(*ast.Ident); ok && pass.ObjectOf(recv) == obj && sel.Sel.Name == "Close" {
					discharged = true
					return false
				}
			}
			for _, arg := range n.Args {
				if usesIdentObj(pass, arg, obj) {
					discharged = true
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if usesIdentObj(pass, res, obj) {
					discharged = true
					return false
				}
			}
		case *ast.AssignStmt:
			if n == as {
				return true
			}
			for _, rhs := range n.Rhs {
				// A method call on the iterator (it.Next(), it.Err())
				// is consumption, not ownership transfer — only storing
				// the value itself counts.
				if storesIdentObj(pass, rhs, obj) {
					discharged = true
					return false
				}
			}
			for _, lhs := range n.Lhs {
				// Re-assignment through a field/index stores it.
				if _, isIdent := lhs.(*ast.Ident); !isIdent && usesIdentObj(pass, lhs, obj) {
					discharged = true
					return false
				}
			}
		case *ast.CompositeLit:
			if usesIdentObj(pass, n, obj) {
				discharged = true
				return false
			}
		}
		return true
	})
	return discharged
}

// checkNextLoop flags `for it.Next() { … }` when the surrounding
// function never consults it.Err(): exhaustion, cancellation, and
// early Close all end the loop identically, so skipping Err silently
// turns an interrupted enumeration into a seemingly complete one.
func checkNextLoop(pass *Pass, fn *ast.FuncDecl, loop *ast.ForStmt) {
	if loop.Cond == nil {
		return
	}
	var recvObj types.Object
	var recvName string
	ast.Inspect(loop.Cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Next" || len(call.Args) != 0 {
			return true
		}
		recv, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if t := pass.TypeOf(sel.X); isLifecycleType(t) {
			recvObj = pass.ObjectOf(recv)
			recvName = recv.Name
		}
		return true
	})
	if recvObj == nil {
		return
	}
	errConsulted := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Err" {
			return true
		}
		if recv, ok := sel.X.(*ast.Ident); ok && pass.ObjectOf(recv) == recvObj {
			errConsulted = true
			return false
		}
		return true
	})
	// Handing the iterator onward after the loop also discharges the
	// obligation: the new owner is responsible for Err.
	if !errConsulted && !identEscapesAfter(pass, fn, loop, recvObj) {
		pass.Reportf(loop.Pos(), "loop over %s.Next() but %s never consults %s.Err(): cancellation and early Close would end the loop looking like clean exhaustion; check Err after the loop or annotate //anykvet:allow lifecycle -- <reason>", recvName, fn.Name.Name, recvName)
	}
}

// storesIdentObj reports whether e stores obj's value somewhere —
// a direct alias, address-of, or composite literal — as opposed to
// merely calling a method on it. Call expressions are not descended
// into: argument hand-offs are credited by the CallExpr case.
func storesIdentObj(pass *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, isCall := n.(*ast.CallExpr); isCall {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// identEscapesAfter reports whether obj is returned or passed to a call
// after node — ownership moved on, so the local function is off the
// hook.
func identEscapesAfter(pass *Pass, fn *ast.FuncDecl, node ast.Node, obj types.Object) bool {
	escaped := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if escaped || n == nil || n.Pos() < node.End() {
			return !escaped
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if usesIdentObj(pass, res, obj) {
					escaped = true
				}
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if usesIdentObj(pass, arg, obj) {
					escaped = true
				}
			}
		}
		return !escaped
	})
	return escaped
}

// callResultTypes returns the result types of a call expression.
func callResultTypes(pass *Pass, call *ast.CallExpr) []types.Type {
	t := pass.TypeOf(call)
	if t == nil {
		return nil
	}
	if tuple, ok := t.(*types.Tuple); ok {
		out := make([]types.Type, tuple.Len())
		for i := 0; i < tuple.Len(); i++ {
			out[i] = tuple.At(i).Type()
		}
		return out
	}
	return []types.Type{t}
}
