package analysis_test

import (
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/analysis"
)

// TestRepositoryIsVetClean runs the full suite over the repository
// itself — the same check CI's anyk-vet step enforces — so a freshly
// introduced violation fails the unit tests too, with the diagnostic
// in the failure message.
func TestRepositoryIsVetClean(t *testing.T) {
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate source file")
	}
	root := filepath.Join(filepath.Dir(thisFile), "..", "..")
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	suite := analysis.Suite()
	for _, pkg := range pkgs {
		for _, d := range analysis.RunAnalyzers(pkg, suite) {
			t.Errorf("%s", d)
		}
	}
}
