package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockDiscipline flags two mutex-hygiene bugs: copying a value whose
// type (transitively) contains a sync.Mutex or sync.RWMutex — the copy
// silently forks the lock, so the two copies no longer exclude each
// other — and Lock/RLock calls with no matching Unlock/RUnlock in the
// same function.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc: "flags by-value copies of structs containing sync.Mutex/RWMutex (assignments, call arguments, " +
		"range values, value-receiver method calls) and Lock/RLock calls whose function has no matching " +
		"Unlock/RUnlock (direct or deferred) on the same receiver",
	Run: runLockDiscipline,
}

func runLockDiscipline(pass *Pass) {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkLockCopyAssign(pass, n)
			case *ast.RangeStmt:
				checkLockCopyRange(pass, n)
			case *ast.CallExpr:
				checkLockCopyCall(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkLockPairing(pass, n)
				}
			}
			return true
		})
	}
}

// copiesValue reports whether evaluating e yields a fresh copy of an
// existing lock-containing value: reads of variables, fields, elements,
// or pointer dereferences. Composite literals and call results are
// fresh values, not copies of a live lock.
func copiesValue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	case *ast.ParenExpr:
		return copiesValue(e.X)
	}
	return false
}

func checkLockCopyAssign(pass *Pass, as *ast.AssignStmt) {
	for i := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		rhs := as.Rhs[i]
		if !copiesValue(rhs) {
			continue
		}
		if t := pass.TypeOf(rhs); containsLock(t) {
			pass.Reportf(as.Pos(), "assignment copies a value of type %s containing a sync mutex: the copy's lock is independent of the original's, so they no longer exclude each other; use a pointer", types.TypeString(pass.TypeOf(rhs), types.RelativeTo(pass.Pkg)))
		}
	}
}

func checkLockCopyRange(pass *Pass, rs *ast.RangeStmt) {
	if rs.Value == nil {
		return
	}
	if t := pass.TypeOf(rs.Value); containsLock(t) {
		pass.Reportf(rs.Pos(), "range copies elements of type %s containing a sync mutex into the loop variable; range over indices and take pointers instead", types.TypeString(pass.TypeOf(rs.Value), types.RelativeTo(pass.Pkg)))
	}
}

func checkLockCopyCall(pass *Pass, call *ast.CallExpr) {
	for _, arg := range call.Args {
		if !copiesValue(arg) {
			continue
		}
		if t := pass.TypeOf(arg); containsLock(t) {
			pass.Reportf(arg.Pos(), "call passes a value of type %s containing a sync mutex by value; pass a pointer", types.TypeString(t, types.RelativeTo(pass.Pkg)))
		}
	}
	// A method call through a value receiver copies the receiver too.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if s := pass.TypesInfo.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
			if f, ok := s.Obj().(*types.Func); ok {
				sig := f.Type().(*types.Signature)
				if recv := sig.Recv(); recv != nil {
					if _, isPtr := recv.Type().(*types.Pointer); !isPtr && containsLock(recv.Type()) {
						pass.Reportf(call.Pos(), "method %s has a value receiver of type %s containing a sync mutex: every call locks a throwaway copy; give it a pointer receiver", f.Name(), types.TypeString(recv.Type(), types.RelativeTo(pass.Pkg)))
					}
				}
			}
		}
	}
}

// containsLock reports whether t transitively contains a sync.Mutex or
// sync.RWMutex by value.
func containsLock(t types.Type) bool {
	return containsLockSeen(t, make(map[types.Type]bool))
}

func containsLockSeen(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && (obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
		return containsLockSeen(named.Underlying(), seen)
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockSeen(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockSeen(u.Elem(), seen)
	}
	return false
}

// lockCall describes one mutex Lock/RLock/Unlock/RUnlock call, keyed by
// the printed receiver expression so lc.mu.Lock() pairs with a deferred
// lc.mu.Unlock().
type lockCall struct {
	recv string
	pos  token.Pos
}

// checkLockPairing flags Lock/RLock calls with no same-function
// Unlock/RUnlock on the same receiver.
func checkLockPairing(pass *Pass, fn *ast.FuncDecl) {
	acquired := map[string][]lockCall{} // method name -> calls
	released := map[string]map[string]bool{}
	record := func(call *ast.CallExpr) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || len(call.Args) != 0 {
			return
		}
		name := sel.Sel.Name
		switch name {
		case "Lock", "RLock", "Unlock", "RUnlock":
		default:
			return
		}
		if !isSyncMutexMethod(pass, sel) {
			return
		}
		recv := types.ExprString(sel.X)
		switch name {
		case "Lock", "RLock":
			acquired[name] = append(acquired[name], lockCall{recv: recv, pos: call.Pos()})
		default:
			if released[name] == nil {
				released[name] = map[string]bool{}
			}
			released[name][recv] = true
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			record(call)
		}
		return true
	})
	pairs := map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}
	for acq, rel := range pairs {
		for _, c := range acquired[acq] {
			if !released[rel][c.recv] {
				pass.Reportf(c.pos, "%s.%s() with no %s on %q anywhere in %s: an early return or panic leaves the mutex held forever; add defer %s.%s() or annotate //anykvet:allow lockdiscipline -- <reason>", c.recv, acq, rel, c.recv, fn.Name.Name, c.recv, rel)
			}
		}
	}
}

// isSyncMutexMethod reports whether sel resolves to a method of
// sync.Mutex or sync.RWMutex (directly or promoted through embedding).
func isSyncMutexMethod(pass *Pass, sel *ast.SelectorExpr) bool {
	s := pass.TypesInfo.Selections[sel]
	if s == nil {
		return false
	}
	f, ok := s.Obj().(*types.Func)
	if !ok {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && (obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}
