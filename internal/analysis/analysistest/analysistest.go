// Package analysistest runs analyzers against golden fixture packages
// and matches their findings against `// want` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// alone.
//
// Fixtures live under internal/analysis/testdata/src — a self-contained
// module (module path "fixtures") the go tool ignores from the parent
// module (testdata directories are never matched by package patterns)
// but which compiles on its own, so fixtures are loaded exactly like
// real packages.
//
// Expectation syntax, on the line the diagnostic must point at:
//
//	code() // want "regexp"
//	code() // want "first" "second"
//
// Every diagnostic must match a want on its line, and every want must
// be matched by a diagnostic; anything unmatched fails the test.
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads the fixture package pkgPath (e.g. "fixtures/decomp") from
// internal/analysis/testdata/src and checks a's findings against the
// fixture's want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	pkgs, err := analysis.Load(fixtureDir(t), pkgPath)
	if err != nil {
		t.Fatalf("load %s: %v", pkgPath, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("load %s: got %d packages, want 1", pkgPath, len(pkgs))
	}
	pkg := pkgs[0]
	diags := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})

	wants := collectWants(t, pkg)
	for _, d := range diags {
		key := posKey(d.Pos)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("no diagnostic at %s matching %q", key, w.re)
			}
		}
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// wantRe matches one or more quoted regexps after a `// want` marker.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

var wantArgRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// collectWants scans every fixture file for want comments, keyed by
// file:line.
func collectWants(t *testing.T, pkg *analysis.Package) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := posKey(pos)
				for _, arg := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(arg[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, arg[1], err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}

func posKey(pos token.Position) string {
	return filepath.Base(pos.Filename) + ":" + itoa(pos.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// fixtureDir locates internal/analysis/testdata/src relative to this
// source file, so tests work from any package directory.
func fixtureDir(t *testing.T) string {
	t.Helper()
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate analysistest source file")
	}
	dir := filepath.Join(filepath.Dir(thisFile), "..", "testdata", "src")
	if !strings.HasSuffix(filepath.ToSlash(dir), "internal/analysis/testdata/src") {
		t.Fatalf("unexpected fixture dir %s", dir)
	}
	return dir
}
