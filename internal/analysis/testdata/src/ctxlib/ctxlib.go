// Package ctxlib is a ctxplumb golden fixture: a library package, so
// raw root contexts and context-free goroutine spawns are flagged.
package ctxlib

import "context"

// Detached mints its own root context instead of accepting one.
func Detached() context.Context {
	return context.Background() // want "context.Background.. in a library package"
}

// Todo reaches for TODO instead of plumbing.
func Todo() context.Context {
	return context.TODO() // want "context.TODO.. in a library package"
}

// AllowedDetach is a justified detach, mirroring the server's
// annotated detached-build path.
func AllowedDetach() context.Context {
	//anykvet:allow ctxplumb -- fixture-sanctioned root: models the server's detached-build path
	return context.Background()
}

// Plumbed accepts its context from the caller; clean.
func Plumbed(ctx context.Context) context.Context {
	return ctx
}

// Spawn starts a goroutine with no context anywhere in reach.
func Spawn(done chan struct{}) {
	go func() { // want "spawns a goroutine with no context.Context in reach"
		close(done)
	}()
}

// SpawnCtx accepts a context its goroutine can observe; clean.
func SpawnCtx(ctx context.Context, done chan struct{}) {
	go func() {
		<-ctx.Done()
		close(done)
	}()
}

// spawnUnexported is unexported: internal helpers are their exported
// callers' responsibility. No finding.
func spawnUnexported(done chan struct{}) {
	go func() {
		close(done)
	}()
}

var _ = spawnUnexported
