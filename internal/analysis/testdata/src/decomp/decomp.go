// Package decomp is a mapdeterminism golden fixture: its import path
// ends in a planner-package segment, so order-sensitive accumulation
// under raw map ranges is flagged here.
package decomp

import (
	"sort"
	"strings"
)

// UnsortedAppend collects map keys without sorting afterwards — the
// classic non-deterministic accumulation.
func UnsortedAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to .out. under map iteration"
	}
	return out
}

// SortedAppend mirrors the repo's collect-then-sort idiom; no finding.
func SortedAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// JoinKeys concatenates under map iteration: the result string differs
// run to run.
func JoinKeys(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want "string built from map iteration"
	}
	return s
}

// BuildString does the same through a strings.Builder.
func BuildString(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want "string built from map iteration"
	}
	return b.String()
}

// PickCheapest selects by cost alone: equal-cost candidates resolve by
// map randomization.
func PickCheapest(costs map[string]float64) string {
	best := ""
	bestCost := 0.0
	first := true
	for k, c := range costs {
		if first || c < bestCost { // want "without a tie-break on the map key"
			best = k
			bestCost = c
			first = false
		}
	}
	return best
}

// PickCheapestStable breaks cost ties on the map key; deterministic,
// no finding.
func PickCheapestStable(costs map[string]float64) string {
	best := ""
	bestCost := 0.0
	first := true
	for k, c := range costs {
		if first || c < bestCost || (c == bestCost && k < best) {
			best = k
			bestCost = c
			first = false
		}
	}
	return best
}

// Allowed demonstrates a justified per-site suppression.
func Allowed(m map[string]int) []string {
	var keys []string
	for k := range m {
		//anykvet:allow mapdeterminism -- feeds a symmetric count; element order is irrelevant
		keys = append(keys, k)
	}
	return keys
}

// MissingReason carries an annotation without a justification: the
// annotation itself is reported and does not suppress the finding.
func MissingReason(m map[string]int) []string {
	var keys []string
	for k := range m {
		//anykvet:allow mapdeterminism // want "missing its justification"
		keys = append(keys, k) // want "append to .keys. under map iteration"
	}
	return keys
}
