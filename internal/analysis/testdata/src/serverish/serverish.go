// Package serverish is a mapdeterminism negative fixture: the same
// accumulation patterns in a non-planner package draw no findings —
// the analyzer is scoped to the packages that decide plan shape.
package serverish

// Keys collects map keys without sorting; outside planner packages
// that is the caller's business.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Join concatenates under map iteration; likewise unflagged here.
func Join(m map[string]int) string {
	s := ""
	for k := range m {
		s += k
	}
	return s
}
