// Package main is the ctxplumb exemption fixture: under a cmd/ path
// segment the package is a composition root, where minting the root
// context is the point. Nothing here is flagged.
package main

import "context"

func main() {
	ctx := context.Background()
	Run(ctx)
}

// Run spawns without a visible context requirement of its own; exempt
// packages are skipped wholesale.
func Run(ctx context.Context) {
	done := make(chan struct{})
	go func() {
		<-ctx.Done()
		close(done)
	}()
}
