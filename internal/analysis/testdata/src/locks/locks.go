// Package locks is a lockdiscipline golden fixture.
package locks

import "sync"

// Counter guards its count with a by-value mutex.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Snapshot has a value receiver: every call locks a throwaway copy.
func (c Counter) Snapshot() int { return c.n }

// ByValueCopy copies the counter — and with it the lock.
func ByValueCopy(c *Counter) int {
	snapshot := *c // want "copies a value of type Counter containing a sync mutex"
	return snapshot.n
}

// PassByValue hands the counter to a function by value.
func PassByValue(c Counter) int {
	return readCount(c) // want "passes a value of type Counter containing a sync mutex by value"
}

func readCount(c Counter) int { return c.n }

// CallValueReceiver invokes the value-receiver method.
func CallValueReceiver(c *Counter) int {
	return c.Snapshot() // want "value receiver of type Counter containing a sync mutex"
}

// UsePointer shares the counter through a pointer; clean.
func UsePointer(c *Counter) int {
	return usePtr(c)
}

func usePtr(c *Counter) int { return c.n }

// LockNoUnlock acquires and forgets: an early return or panic would
// leave the mutex held forever.
func LockNoUnlock(c *Counter) {
	c.mu.Lock() // want "with no Unlock"
	c.n++
}

// LockDeferUnlock is the canonical pairing; clean.
func LockDeferUnlock(c *Counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Table guards lookups with an RWMutex.
type Table struct {
	mu sync.RWMutex
	m  map[string]int
}

// Get pairs RLock with a deferred RUnlock; clean.
func (t *Table) Get(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

// Peek takes a read lock and never releases it.
func (t *Table) Peek(k string) int {
	t.mu.RLock() // want "with no RUnlock"
	return t.m[k]
}

// RangeCopies iterates a slice of counters by value, copying each lock
// into the loop variable.
func RangeCopies(cs []Counter) int {
	total := 0
	for _, c := range cs { // want "range copies elements of type Counter"
		total += c.n
	}
	return total
}

// RangeIndices addresses elements through the index; clean.
func RangeIndices(cs []Counter) int {
	total := 0
	for i := range cs {
		total += cs[i].n
	}
	return total
}
