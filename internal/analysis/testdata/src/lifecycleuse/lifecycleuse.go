// Package lifecycleuse is a lifecycle golden fixture. Iter carries the
// core-lifecycle contract the analyzer keys on: both Close() error and
// Err() error in its method set.
package lifecycleuse

// Iter is a minimal iterator with the lifecycle contract.
type Iter struct{ closed bool }

func (it *Iter) Next() bool   { return false }
func (it *Iter) Value() int   { return 0 }
func (it *Iter) Err() error   { return nil }
func (it *Iter) Close() error { it.closed = true; return nil }

// New produces a lifecycle value the caller must close.
func New() *Iter { return &Iter{} }

// Dropped discards the produced iterator on the floor.
func Dropped() {
	New() // want "dropped without Close"
}

// Discarded assigns the iterator to the blank identifier.
func Discarded() {
	_ = New() // want "assigned to _ without Close"
}

// Leaked drains the iterator and checks Err but never closes it.
func Leaked() int {
	it := New() // want "escapes Leaked without a Close"
	n := 0
	for it.Next() {
		n += it.Value()
	}
	if err := it.Err(); err != nil {
		return -1
	}
	return n
}

// Closed defers the Close and consults Err; clean.
func Closed() int {
	it := New()
	defer it.Close()
	n := 0
	for it.Next() {
		n += it.Value()
	}
	if err := it.Err(); err != nil {
		return -1
	}
	return n
}

// Returned hands the iterator to the caller, who then owns Close.
func Returned() *Iter {
	it := New()
	return it
}

// Handed passes the iterator on; the consumer owns it.
func Handed() {
	it := New()
	consume(it)
}

func consume(it *Iter) {
	defer it.Close()
	for it.Next() {
	}
	if it.Err() != nil {
		return
	}
}

// DrainNoErr closes the iterator but never consults Err, so a canceled
// enumeration would look like clean exhaustion.
func DrainNoErr(it *Iter) int {
	defer it.Close()
	n := 0
	for it.Next() { // want "never consults it.Err"
		n++
	}
	return n
}
