package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listEntry is the subset of `go list -json` output the loader needs.
type listEntry struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
}

// Load resolves patterns with the go tool from dir, type-checks every
// matched (non-dependency) package against compiled export data, and
// returns them sorted by import path.
//
// It shells out to `go list -deps -export -json`, which also produces
// the export data of every dependency — the same information a `go
// vet -vettool` config provides — so analyzers behave identically in
// standalone and vettool runs. Test files are not loaded; the suite
// checks non-test code only.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,Standard,DepOnly,GoFiles",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []listEntry
	dec := json.NewDecoder(&stdout)
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if !e.DepOnly && !e.Standard {
			targets = append(targets, e)
		}
	}

	fset := token.NewFileSet()
	imp := exportDataImporter(fset, exports)
	var pkgs []*Package
	for _, e := range targets {
		files := make([]string, len(e.GoFiles))
		for i, f := range e.GoFiles {
			files[i] = filepath.Join(e.Dir, f)
		}
		pkg, err := typeCheck(fset, imp, e.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkg.Dir = e.Dir
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadConfig type-checks the single package described by a `go vet
// -vettool` unitchecker config, resolving imports from the compiled
// package files the go command already built.
func LoadConfig(importPath string, goFiles []string, importMap, packageFile map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	exports := make(map[string]string, len(packageFile))
	for path, file := range packageFile {
		exports[path] = file
	}
	// The vet config names imports by source path and maps them to
	// canonical paths; make both spellings resolvable.
	for src, canonical := range importMap {
		if file, ok := packageFile[canonical]; ok {
			exports[src] = file
		}
	}
	imp := exportDataImporter(fset, exports)
	return typeCheck(fset, imp, importPath, goFiles)
}

// exportDataImporter returns a gc-export-data importer reading from the
// given importpath -> file map.
func exportDataImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func typeCheck(fset *token.FileSet, imp types.Importer, importPath string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}
