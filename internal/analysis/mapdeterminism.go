package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// plannerPackages are the packages whose code decides plan shape, cost,
// or output order. Go randomizes map iteration order, so any
// order-sensitive accumulation over a raw map range in these packages
// can silently break Decompose/ChooseOrder tie-breaking and the
// bit-identical parallel-prepare guarantee.
var plannerPackages = map[string]bool{
	"hypergraph": true,
	"catalog":    true,
	"decomp":     true,
	"dp":         true,
	"wcoj":       true,
}

// MapDeterminism flags order-sensitive accumulation over map iteration
// in planning/ordering packages.
var MapDeterminism = &Analyzer{
	Name: "mapdeterminism",
	Doc: "flags `for … range` over a map in planner packages (hypergraph, catalog, decomp, dp, wcoj) " +
		"whose body appends to an outer slice that is never sorted afterwards, builds a string, or " +
		"drives a cost comparison with no tie-break on the map key — all of which make plan shape " +
		"or output order depend on Go's randomized map iteration",
	Run: runMapDeterminism,
}

func runMapDeterminism(pass *Pass) {
	segs := pkgPathSegments(pass.Pkg.Path())
	if !plannerPackages[segs[len(segs)-1]] {
		return
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkFuncMapRanges(pass, fn)
			return true
		})
	}
}

func checkFuncMapRanges(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, fn, rs)
		return true
	})
}

// checkMapRangeBody inspects one `for … range m` body for
// order-sensitive sinks.
func checkMapRangeBody(pass *Pass, fn *ast.FuncDecl, rs *ast.RangeStmt) {
	keyObj := rangeVarObj(pass, rs.Key)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// Nested ranges get their own visit from checkFuncMapRanges;
			// their sinks should not be double-attributed to the outer
			// loop. Nested sinks are still order-tainted by the outer
			// map, but the inner report position is the more precise one.
			if n != rs {
				t := pass.TypeOf(n.X)
				if t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						return false
					}
				}
			}
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, fn, rs, n)
		case *ast.CallExpr:
			checkMapRangeStringCall(pass, rs, n)
		case *ast.IfStmt:
			checkMapRangeComparison(pass, rs, keyObj, n)
		}
		return true
	})
}

func checkMapRangeAssign(pass *Pass, fn *ast.FuncDecl, rs *ast.RangeStmt, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := pass.ObjectOf(id)
		if obj == nil || !declaredOutside(obj, rs) {
			continue
		}
		if i < len(as.Rhs) || len(as.Rhs) == 1 {
			rhs := as.Rhs[min(i, len(as.Rhs)-1)]
			// s = append(s, …) into an outer slice.
			if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
				if !sortedAfter(pass, fn, rs, obj) {
					pass.Reportf(as.Pos(), "append to %q under map iteration makes its element order depend on map randomization; sort %q afterwards, or iterate sorted keys, or annotate //anykvet:allow mapdeterminism -- <reason>", id.Name, id.Name)
				}
				continue
			}
		}
		// s += … / s = s + … string building on an outer string.
		if t := pass.TypeOf(id); t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				if as.Tok == token.ADD_ASSIGN || (as.Tok == token.ASSIGN && usesIdentObj(pass, as.Rhs[min(i, len(as.Rhs)-1)], obj)) {
					pass.Reportf(as.Pos(), "string built from map iteration is non-deterministic: concatenation into %q under a map range; iterate sorted keys or annotate //anykvet:allow mapdeterminism -- <reason>", id.Name)
				}
			}
		}
	}
}

// checkMapRangeStringCall flags WriteString-style building into an
// outer strings.Builder or bytes.Buffer.
func checkMapRangeStringCall(pass *Pass, rs *ast.RangeStmt, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	switch sel.Sel.Name {
	case "WriteString", "WriteByte", "WriteRune", "Write":
	default:
		return
	}
	recv, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.ObjectOf(recv)
	if obj == nil || !declaredOutside(obj, rs) {
		return
	}
	t := obj.Type()
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if named, ok := t.(*types.Named); ok {
		tn := named.Obj()
		if tn.Pkg() != nil && ((tn.Pkg().Path() == "strings" && tn.Name() == "Builder") ||
			(tn.Pkg().Path() == "bytes" && tn.Name() == "Buffer")) {
			pass.Reportf(call.Pos(), "string built from map iteration is non-deterministic: %s.%s under a map range; iterate sorted keys or annotate //anykvet:allow mapdeterminism -- <reason>", recv.Name, sel.Sel.Name)
		}
	}
}

// checkMapRangeComparison flags argmin/argmax selection driven by map
// iteration order: an if whose condition compares with < / > / <= / >=
// and whose branch writes a variable declared outside the loop, with no
// reference to the map key in the condition (a key-based tie-break is
// what makes such a selection deterministic).
func checkMapRangeComparison(pass *Pass, rs *ast.RangeStmt, keyObj types.Object, ifs *ast.IfStmt) {
	if !hasOrderComparison(ifs.Cond) {
		return
	}
	if keyObj != nil && usesIdentObj(pass, ifs.Cond, keyObj) {
		return // tie-broken on the key: deterministic
	}
	writesOuter := false
	var outerName string
	ast.Inspect(ifs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				if obj := pass.ObjectOf(id); obj != nil && declaredOutside(obj, rs) {
					writesOuter = true
					outerName = id.Name
				}
			}
		}
		return true
	})
	if writesOuter {
		pass.Reportf(ifs.Pos(), "cost comparison under map iteration selects %q without a tie-break on the map key: equal-cost candidates resolve by map randomization; compare the key on ties, iterate sorted keys, or annotate //anykvet:allow mapdeterminism -- <reason>", outerName)
	}
}

func hasOrderComparison(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if be, ok := n.(*ast.BinaryExpr); ok {
			switch be.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
				found = true
			}
		}
		return !found
	})
	return found
}

// sortedAfter reports whether obj is passed to a sort.* or slices.Sort*
// call after the range statement in the same function — the canonical
// collect-keys-then-sort pattern.
func sortedAfter(pass *Pass, fn *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.ObjectOf(pkgID).(*types.PkgName)
		if !ok {
			return true
		}
		switch pkgName.Imported().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if usesIdentObj(pass, arg, obj) {
				found = true
			}
		}
		return !found
	})
	return found
}

// rangeVarObj resolves a range key/value expression to its object.
func rangeVarObj(pass *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return pass.ObjectOf(id)
}

// declaredOutside reports whether obj was declared before the range
// statement (i.e. outside the loop body and its key/value vars).
func declaredOutside(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() < rs.Pos()
}

func usesIdentObj(pass *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}
