package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, analysis.LockDiscipline, "fixtures/locks")
}
