package analysis

import (
	"go/ast"
	"go/types"
)

// CtxPlumb flags context-plumbing gaps in library packages: raw
// context.Background()/TODO() calls (which detach work from caller
// cancellation — the server's deadline, disconnect, and shutdown
// machinery all rely on ctx reaching the leaves), and exported
// functions that spawn goroutines without any context in reach.
var CtxPlumb = &Analyzer{
	Name: "ctxplumb",
	Doc: "flags context.Background()/context.TODO() in library packages (allowed in cmd/, examples/, " +
		"tests, and explicitly annotated sites such as the server's detached-build path) and exported " +
		"functions that spawn goroutines without accepting or referencing a context.Context",
	Run: runCtxPlumb,
}

func runCtxPlumb(pass *Pass) {
	if ctxExemptPackage(pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkRawContext(pass, n)
			case *ast.FuncDecl:
				checkGoroutineWithoutCtx(pass, n)
			}
			return true
		})
	}
}

// ctxExemptPackage reports whether the package is a binary or example —
// the composition roots where creating a root context is the point.
func ctxExemptPackage(path string) bool {
	for _, seg := range pkgPathSegments(path) {
		if seg == "cmd" || seg == "examples" {
			return true
		}
	}
	return false
}

// checkRawContext flags context.Background() and context.TODO() calls.
func checkRawContext(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.ObjectOf(pkgID).(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "context" {
		return
	}
	pass.Reportf(call.Pos(), "context.%s() in a library package detaches this path from caller cancellation (deadlines, disconnects, shutdown); accept a ctx from the caller or annotate //anykvet:allow ctxplumb -- <reason>", sel.Sel.Name)
}

// checkGoroutineWithoutCtx flags exported functions that start
// goroutines while no context.Context is in sight — neither a
// parameter nor any ctx-typed value the body references (a stored
// base context on the receiver counts).
func checkGoroutineWithoutCtx(pass *Pass, fn *ast.FuncDecl) {
	if fn.Body == nil || !fn.Name.IsExported() {
		return
	}
	var goStmt *ast.GoStmt
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok && goStmt == nil {
			goStmt = g
		}
		return goStmt == nil
	})
	if goStmt == nil {
		return
	}
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			if isContextType(pass.TypeOf(field.Type)) {
				return
			}
		}
	}
	ctxInReach := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && isContextType(pass.TypeOf(e)) {
			ctxInReach = true
		}
		return !ctxInReach
	})
	if !ctxInReach {
		pass.Reportf(goStmt.Pos(), "exported %s spawns a goroutine with no context.Context in reach: the goroutine cannot be canceled by callers; accept a ctx parameter or annotate //anykvet:allow ctxplumb -- <reason>", fn.Name.Name)
	}
}
