// Package analysis is the project-specific static-analysis suite
// behind cmd/anyk-vet. It machine-enforces the hand-maintained
// conventions the repo's correctness guarantees rest on — deterministic
// planning, iterator lifecycle discipline, context plumbing, and lock
// hygiene — as described per analyzer in docs/ARCHITECTURE.md
// ("Enforced invariants").
//
// The framework deliberately mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic) but is
// built on the standard library alone: packages are loaded either via
// `go list -export` (see Load) or from a `go vet -vettool` unitchecker
// config, and analyzers see one type-checked package at a time.
//
// # Suppressions
//
// Every analyzer honors an allow annotation on the flagged line or the
// line directly above it:
//
//	//anykvet:allow <analyzer> -- <justification>
//
// The justification is mandatory: an annotation without one is itself
// reported. Suppressions are per-site by design — there is no
// file-level or package-level opt-out, so every exception to an
// invariant is visible and justified where it happens.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //anykvet:allow annotations.
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// Run applies the analyzer to one package and reports findings via
	// pass.Report.
	Run func(*Pass)
}

// A Pass presents one type-checked package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags  *[]Diagnostic
	allows map[string]map[int][]allowMark // filename -> line -> annotations
}

// A Diagnostic is one finding, positioned inside the analyzed package.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Suite returns every analyzer of the anyk-vet multichecker, sorted by
// name.
func Suite() []*Analyzer {
	s := []*Analyzer{
		CtxPlumb,
		Lifecycle,
		LockDiscipline,
		MapDeterminism,
	}
	sort.Slice(s, func(i, j int) bool { return s[i].Name < s[j].Name })
	return s
}

// RunAnalyzers applies every analyzer in as to one loaded package and
// returns the findings sorted by position.
func RunAnalyzers(pkg *Package, as []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range as {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			diags:     &diags,
		}
		pass.buildAllows()
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// Reportf records a finding at pos unless an //anykvet:allow annotation
// for this analyzer covers the position's line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allowed(position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// ObjectOf resolves an identifier to its object (definition or use), or
// nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return p.TypesInfo.Uses[id]
}

// InTestFile reports whether pos lies in a _test.go file. Analyzers
// skip test files: the standalone loader never presents them, but the
// unitchecker path (go vet) does, and the two modes must agree.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// allowRe matches //anykvet:allow annotations. The analyzer name is
// mandatory; everything after “--” is the justification. A trailing
// `// …` chunk (the golden fixtures' want markers) is not part of the
// justification.
var allowRe = regexp.MustCompile(`^//anykvet:allow\s+([a-z]+)\s*(?:--\s*(.*?))?\s*(?://.*)?$`)

type allowMark struct {
	analyzer string
	reason   string
	pos      token.Pos
}

// buildAllows indexes every //anykvet:allow comment by file and line,
// and reports annotations that are missing their justification.
func (p *Pass) buildAllows() {
	p.allows = make(map[string]map[int][]allowMark)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				mark := allowMark{analyzer: m[1], reason: strings.TrimSpace(m[2]), pos: c.Pos()}
				position := p.Fset.Position(c.Pos())
				byLine := p.allows[position.Filename]
				if byLine == nil {
					byLine = make(map[int][]allowMark)
					p.allows[position.Filename] = byLine
				}
				byLine[position.Line] = append(byLine[position.Line], mark)
				if mark.analyzer == p.Analyzer.Name && mark.reason == "" {
					*p.diags = append(*p.diags, Diagnostic{
						Pos:      position,
						Analyzer: p.Analyzer.Name,
						Message:  "allow annotation is missing its justification: write //anykvet:allow " + mark.analyzer + " -- <reason>",
					})
				}
			}
		}
	}
}

// allowed reports whether an annotation for the current analyzer covers
// position (same line or the line directly above).
func (p *Pass) allowed(position token.Position) bool {
	byLine := p.allows[position.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{position.Line, position.Line - 1} {
		for _, m := range byLine[line] {
			if m.analyzer == p.Analyzer.Name && m.reason != "" {
				return true
			}
		}
	}
	return false
}

// hasMethod reports whether t's method set (through a pointer, for
// addressable receivers) contains a niladic method named name returning
// exactly (error) when wantErr, or anything otherwise.
func hasMethod(t types.Type, name string, wantErr bool) bool {
	ms := types.NewMethodSet(t)
	if _, ok := t.Underlying().(*types.Interface); !ok {
		if _, isPtr := t.(*types.Pointer); !isPtr {
			ms = types.NewMethodSet(types.NewPointer(t))
		}
	}
	for i := 0; i < ms.Len(); i++ {
		f, ok := ms.At(i).Obj().(*types.Func)
		if !ok || f.Name() != name {
			continue
		}
		sig, ok := f.Type().(*types.Signature)
		if !ok || sig.Params().Len() != 0 {
			continue
		}
		if !wantErr {
			return true
		}
		if sig.Results().Len() == 1 && sig.Results().At(0).Type().String() == "error" {
			return true
		}
	}
	return false
}

// isLifecycleType reports whether t is an iterator-lifecycle value: its
// method set carries both Close() error and Err() error, the contract
// core.Lifecycle provides by embedding.
func isLifecycleType(t types.Type) bool {
	if t == nil {
		return false
	}
	if basic, ok := t.Underlying().(*types.Basic); ok && basic.Kind() == types.Invalid {
		return false
	}
	return hasMethod(t, "Close", true) && hasMethod(t, "Err", true)
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// pkgPathSegments splits an import path into its slash segments.
func pkgPathSegments(path string) []string { return strings.Split(path, "/") }
