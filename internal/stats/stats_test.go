package stats

import (
	"strings"
	"testing"
	"time"
)

func TestDelayRecorderMetrics(t *testing.T) {
	d := NewDelayRecorder()
	d.marks = []time.Duration{10 * time.Millisecond, 30 * time.Millisecond, 100 * time.Millisecond}
	if d.Count() != 3 {
		t.Fatalf("Count = %d", d.Count())
	}
	if d.TTF() != 10*time.Millisecond {
		t.Errorf("TTF = %v", d.TTF())
	}
	if d.TTK(2) != 30*time.Millisecond {
		t.Errorf("TTK(2) = %v", d.TTK(2))
	}
	if d.TTL() != 100*time.Millisecond {
		t.Errorf("TTL = %v", d.TTL())
	}
	if d.MaxDelay() != 70*time.Millisecond {
		t.Errorf("MaxDelay = %v, want 70ms", d.MaxDelay())
	}
}

func TestDelayRecorderEmpty(t *testing.T) {
	d := NewDelayRecorder()
	if d.TTF() != 0 || d.TTL() != 0 || d.MaxDelay() != 0 {
		t.Error("empty recorder metrics should be zero")
	}
	if d.TTK(0) != 0 || d.TTK(5) != 0 {
		t.Error("out-of-range TTK should be zero")
	}
}

func TestDelayRecorderMark(t *testing.T) {
	d := NewDelayRecorder()
	d.Reserve(10)
	d.Mark()
	d.Mark()
	if d.Count() != 2 {
		t.Fatalf("Count = %d", d.Count())
	}
	if d.TTK(2) < d.TTK(1) {
		t.Error("marks must be non-decreasing")
	}
}

func TestTimer(t *testing.T) {
	timer := StartTimer()
	if timer.Elapsed() < 0 {
		t.Error("elapsed must be non-negative")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "algo", "n", "time")
	tb.Add("Lazy", 1000, 1500*time.Microsecond)
	tb.Add("Batch", 1000, 2*time.Second)
	s := tb.String()
	if !strings.Contains(s, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(s, "Lazy") || !strings.Contains(s, "Batch") {
		t.Error("missing rows")
	}
	if !strings.Contains(s, "1.50ms") {
		t.Errorf("duration formatting: %s", s)
	}
	if !strings.Contains(s, "2.000s") {
		t.Errorf("seconds formatting: %s", s)
	}
	// Columns aligned: header line and separator have same width.
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) < 4 {
		t.Fatalf("table too short:\n%s", s)
	}
	if len(lines[1]) != len(lines[2]) && len(lines[2]) == 0 {
		t.Error("separator misaligned")
	}
}

func TestFormatCellVariants(t *testing.T) {
	if got := formatCell(0.123456789); got != "0.1235" {
		t.Errorf("float fmt = %q", got)
	}
	if got := formatCell(time.Duration(0)); got != "-" {
		t.Errorf("zero duration = %q", got)
	}
	if got := formatCell(500 * time.Nanosecond); got != "500ns" {
		t.Errorf("ns fmt = %q", got)
	}
	if got := formatCell(12500 * time.Nanosecond); got != "12.5µs" {
		t.Errorf("µs fmt = %q", got)
	}
	if got := formatCell("x"); got != "x" {
		t.Errorf("string fmt = %q", got)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.Add("x", 1)
	tb.Add("needs,quote", 2)
	csv := tb.CSV()
	want := "a,b\nx,1\n\"needs,quote\",2\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestTableCSVEscapesQuotes(t *testing.T) {
	tb := NewTable("", "v")
	tb.Add(`say "hi"`)
	if got := tb.CSV(); got != "v\n\"say \"\"hi\"\"\"\n" {
		t.Fatalf("CSV = %q", got)
	}
}
