// Package stats provides the measurement utilities the experiment
// harness uses: wall-clock timers, per-result delay recorders for the
// any-k metrics (time-to-first, time-to-k-th, time-to-last, maximum
// delay), and plain-text result tables.
//
// It measures experiment *runs*. Statistics about the *data* —
// per-column distinct counts, heavy hitters, and the cost model the
// planner consumes — live in internal/catalog.
package stats

import (
	"fmt"
	"strings"
	"time"
)

// Timer measures elapsed wall-clock time.
type Timer struct{ start time.Time }

// StartTimer returns a running timer.
func StartTimer() Timer { return Timer{start: time.Now()} }

// Elapsed reports the time since the timer started.
func (t Timer) Elapsed() time.Duration { return time.Since(t.start) }

// DelayRecorder captures the timestamp of every emitted result relative
// to a start point. It backs the TTF/TTK/TTL metrics of Part 3.
type DelayRecorder struct {
	start time.Time
	marks []time.Duration
}

// NewDelayRecorder starts recording now.
func NewDelayRecorder() *DelayRecorder {
	return &DelayRecorder{start: time.Now()}
}

// Reserve pre-allocates capacity for n marks so recording does not skew
// delays with allocation pauses.
func (d *DelayRecorder) Reserve(n int) {
	if cap(d.marks) < n {
		marks := make([]time.Duration, len(d.marks), n)
		copy(marks, d.marks)
		d.marks = marks
	}
}

// Mark records that one result was emitted.
func (d *DelayRecorder) Mark() {
	d.marks = append(d.marks, time.Since(d.start))
}

// Count reports the number of results recorded.
func (d *DelayRecorder) Count() int { return len(d.marks) }

// TTF is the time to the first result (0 if none).
func (d *DelayRecorder) TTF() time.Duration { return d.TTK(1) }

// TTK is the time to the k-th result (0 if fewer than k results).
func (d *DelayRecorder) TTK(k int) time.Duration {
	if k <= 0 || k > len(d.marks) {
		return 0
	}
	return d.marks[k-1]
}

// TTL is the time to the last result (0 if none).
func (d *DelayRecorder) TTL() time.Duration { return d.TTK(len(d.marks)) }

// MaxDelay is the largest gap between consecutive results (including the
// gap from start to the first result).
func (d *DelayRecorder) MaxDelay() time.Duration {
	var max, prev time.Duration
	for _, m := range d.marks {
		if gap := m - prev; gap > max {
			max = gap
		}
		prev = m
	}
	return max
}

// Table is a simple aligned text table for experiment output.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; cells are formatted with %v (durations and floats
// get compact forms).
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.Rows = append(t.Rows, row)
}

func formatCell(c interface{}) string {
	switch v := c.(type) {
	case time.Duration:
		return formatDuration(v)
	case float64:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%v", v)
	}
}

func formatDuration(d time.Duration) string {
	switch {
	case d == 0:
		return "-"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header + rows),
// suitable for piping into plotting tools.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Headers)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}
