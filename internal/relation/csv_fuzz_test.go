package relation

// FuzzReadCSV drives arbitrary bytes through the CSV ingestion path —
// the one parser in the engine that consumes wire data directly (the
// serving layer's dataset uploads). Beyond not panicking, every
// accepted parse must produce a structurally sound relation, and
// all-numeric relations must survive a WriteCSV→ReadCSV round trip
// unchanged — the persistence contract the CLI tools rely on.
//
//	go test -fuzz FuzzReadCSV -fuzztime 30s ./internal/relation

import (
	"bytes"
	"math"
	"testing"
)

func FuzzReadCSV(f *testing.F) {
	f.Add([]byte("a,b,weight\n1,2,0.5\n3,4,1\n"), true, false)
	f.Add([]byte("a,b\n1,2\n"), false, false)
	f.Add([]byte("city,pop\nparis,7\nnice,x\n"), false, true)
	f.Add([]byte("a\n\"unterminated\n"), true, true)
	f.Add([]byte("a,weight\n1099511627776,1\n"), true, true) // 2^40 collides with dict codes
	f.Fuzz(func(t *testing.T, data []byte, weightCol, useDict bool) {
		var dict *Dictionary
		if useDict {
			dict = NewDictionary()
		}
		rel, err := ReadCSV(bytes.NewReader(data), "fz", weightCol, dict)
		if err != nil {
			return
		}
		if len(rel.Tuples) != len(rel.Weights) {
			t.Fatalf("%d tuples but %d weights", len(rel.Tuples), len(rel.Weights))
		}
		for i, tp := range rel.Tuples {
			if len(tp) != len(rel.Attrs) {
				t.Fatalf("tuple %d has %d values, relation has %d attributes", i, len(tp), len(rel.Attrs))
			}
		}
		if dict != nil {
			return // encoded values round-trip through the dictionary, not CSV
		}
		// No dictionary means every column parsed as integers; writing the
		// relation back out and re-reading it must reproduce it exactly.
		var buf bytes.Buffer
		if err := WriteCSV(&buf, rel); err != nil {
			t.Fatalf("WriteCSV on accepted relation: %v", err)
		}
		back, err := ReadCSV(&buf, "fz", true, nil)
		if err != nil {
			t.Fatalf("re-read of written CSV: %v", err)
		}
		if len(back.Tuples) != len(rel.Tuples) {
			t.Fatalf("round trip changed cardinality: %d -> %d", len(rel.Tuples), len(back.Tuples))
		}
		for i := range rel.Tuples {
			if back.Weights[i] != rel.Weights[i] &&
				!(math.IsNaN(back.Weights[i]) && math.IsNaN(rel.Weights[i])) {
				t.Fatalf("round trip changed weight %d: %v -> %v", i, rel.Weights[i], back.Weights[i])
			}
			for j := range rel.Tuples[i] {
				if back.Tuples[i][j] != rel.Tuples[i][j] {
					t.Fatalf("round trip changed tuple %d: %v -> %v", i, rel.Tuples[i], back.Tuples[i])
				}
			}
		}
	})
}
