package relation

import (
	"bytes"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddAndLen(t *testing.T) {
	r := New("R", "A", "B")
	r.AddWeighted(1.5, 1, 2)
	r.AddWeighted(2.5, 3, 4)
	if r.Len() != 2 || r.Arity() != 2 {
		t.Fatalf("Len=%d Arity=%d, want 2,2", r.Len(), r.Arity())
	}
	if r.Weights[0] != 1.5 || r.Tuples[1][1] != 4 {
		t.Fatal("stored values wrong")
	}
}

func TestAddArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on arity mismatch")
		}
	}()
	r := New("R", "A", "B")
	r.Add(1)
}

func TestAttrIndex(t *testing.T) {
	r := New("R", "A", "B", "C")
	if r.AttrIndex("B") != 1 {
		t.Errorf("AttrIndex(B) = %d, want 1", r.AttrIndex("B"))
	}
	if r.AttrIndex("Z") != -1 {
		t.Errorf("AttrIndex(Z) = %d, want -1", r.AttrIndex("Z"))
	}
	if _, err := r.AttrIndexes([]string{"A", "Z"}); err == nil {
		t.Error("AttrIndexes with unknown attr should fail")
	}
}

func TestSharedAttrs(t *testing.T) {
	r := New("R", "A", "B", "C")
	s := New("S", "B", "D", "A")
	got := r.SharedAttrs(s)
	if len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("SharedAttrs = %v, want [A B]", got)
	}
}

func TestProject(t *testing.T) {
	r := New("R", "A", "B", "C")
	r.AddWeighted(1, 10, 20, 30)
	r.AddWeighted(2, 11, 21, 31)
	p, err := r.Project("C", "A")
	if err != nil {
		t.Fatal(err)
	}
	if p.Arity() != 2 || p.Tuples[0][0] != 30 || p.Tuples[0][1] != 10 {
		t.Fatalf("Project wrong: %v", p.Tuples)
	}
	if p.Weights[1] != 2 {
		t.Error("Project lost weights")
	}
	if _, err := r.Project("Z"); err == nil {
		t.Error("Project unknown attr should fail")
	}
}

func TestSelect(t *testing.T) {
	r := New("R", "A")
	for i := Value(0); i < 10; i++ {
		r.AddWeighted(float64(i), i)
	}
	s := r.Select(func(tp Tuple, w float64) bool { return tp[0]%2 == 0 })
	if s.Len() != 5 {
		t.Fatalf("Select len = %d, want 5", s.Len())
	}
}

func TestSortByWeight(t *testing.T) {
	r := New("R", "A")
	r.AddWeighted(3, 1)
	r.AddWeighted(1, 2)
	r.AddWeighted(2, 3)
	r.SortByWeight()
	if r.Weights[0] != 1 || r.Weights[2] != 3 {
		t.Fatalf("SortByWeight order = %v", r.Weights)
	}
	if r.Tuples[0][0] != 2 {
		t.Error("tuples not permuted with weights")
	}
}

func TestSortByCols(t *testing.T) {
	r := New("R", "A", "B")
	r.AddWeighted(1, 2, 9)
	r.AddWeighted(2, 1, 8)
	r.AddWeighted(3, 2, 7)
	if err := r.SortByCols("A", "B"); err != nil {
		t.Fatal(err)
	}
	want := [][2]Value{{1, 8}, {2, 7}, {2, 9}}
	for i, w := range want {
		if r.Tuples[i][0] != w[0] || r.Tuples[i][1] != w[1] {
			t.Fatalf("row %d = %v, want %v", i, r.Tuples[i], w)
		}
	}
}

func TestDedupKeepsLightest(t *testing.T) {
	r := New("R", "A", "B")
	r.AddWeighted(5, 1, 1)
	r.AddWeighted(3, 1, 1)
	r.AddWeighted(4, 2, 2)
	r.AddWeighted(4, 1, 1)
	r.Dedup()
	if r.Len() != 2 {
		t.Fatalf("Dedup len = %d, want 2", r.Len())
	}
	for i, tp := range r.Tuples {
		if tp[0] == 1 && r.Weights[i] != 3 {
			t.Errorf("dedup kept weight %g for (1,1), want 3", r.Weights[i])
		}
	}
}

func TestEqualAsSet(t *testing.T) {
	a := New("A", "X")
	b := New("B", "X")
	a.AddWeighted(1, 7)
	a.AddWeighted(2, 8)
	b.AddWeighted(2, 8)
	b.AddWeighted(1, 7)
	if !a.EqualAsSet(b) {
		t.Error("permuted relations should be set-equal")
	}
	b.AddWeighted(3, 9)
	if a.EqualAsSet(b) {
		t.Error("different cardinalities should not be equal")
	}
	c := New("C", "Y")
	if a.EqualAsSet(c) {
		t.Error("different schemas should not be equal")
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := New("R", "A")
	r.AddWeighted(1, 42)
	c := r.Clone()
	c.Tuples[0][0] = 99
	c.Weights[0] = 9
	if r.Tuples[0][0] != 42 || r.Weights[0] != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestStringTruncates(t *testing.T) {
	r := New("R", "A")
	for i := Value(0); i < 30; i++ {
		r.Add(i)
	}
	s := r.String()
	if !strings.Contains(s, "more") {
		t.Error("String should truncate long relations")
	}
}

func TestAppendKeyOrderPreserving(t *testing.T) {
	f := func(a, b int64) bool {
		ka := AppendKey(nil, []Value{a})
		kb := AppendKey(nil, []Value{b})
		return (a < b) == (bytes.Compare(ka, kb) < 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAppendKeyInjective(t *testing.T) {
	f := func(a1, a2, b1, b2 int64) bool {
		ka := AppendKey(nil, []Value{a1, a2})
		kb := AppendKey(nil, []Value{b1, b2})
		return bytes.Equal(ka, kb) == (a1 == b1 && a2 == b2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIndexSingleColumn(t *testing.T) {
	r := New("R", "A", "B")
	r.Add(1, 10)
	r.Add(2, 20)
	r.Add(1, 11)
	ix, err := NewIndex(r, "A")
	if err != nil {
		t.Fatal(err)
	}
	rows := ix.Lookup([]Value{1})
	if len(rows) != 2 {
		t.Fatalf("Lookup(1) = %v, want 2 rows", rows)
	}
	if len(ix.Lookup([]Value{3})) != 0 {
		t.Error("Lookup(3) should be empty")
	}
	if ix.Keys() != 2 {
		t.Errorf("Keys = %d, want 2", ix.Keys())
	}
	if ix.MaxFanout() != 2 {
		t.Errorf("MaxFanout = %d, want 2", ix.MaxFanout())
	}
}

func TestIndexMultiColumn(t *testing.T) {
	r := New("R", "A", "B", "C")
	r.Add(1, 10, 100)
	r.Add(1, 10, 101)
	r.Add(1, 11, 102)
	ix, err := NewIndex(r, "A", "B")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ix.Lookup([]Value{1, 10})); got != 2 {
		t.Fatalf("Lookup(1,10) rows = %d, want 2", got)
	}
	if got := len(ix.LookupTuple(Tuple{1, 11, 999})); got != 1 {
		t.Fatalf("LookupTuple rows = %d, want 1", got)
	}
	if ix.Keys() != 2 {
		t.Errorf("Keys = %d, want 2", ix.Keys())
	}
}

func TestIndexZeroColumns(t *testing.T) {
	r := New("R", "A")
	r.Add(1)
	r.Add(2)
	ix, err := NewIndex(r)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ix.Lookup(nil)); got != 2 {
		t.Fatalf("zero-col Lookup = %d rows, want 2", got)
	}
}

func TestIndexUnknownAttr(t *testing.T) {
	r := New("R", "A")
	if _, err := NewIndex(r, "Z"); err == nil {
		t.Error("NewIndex on unknown attr should fail")
	}
}

// Property: index lookups return exactly the rows with matching values.
func TestIndexMatchesScanProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		r := New("R", "A")
		for _, v := range vals {
			r.Add(Value(v % 16))
		}
		ix := MustIndex(r, "A")
		for key := Value(0); key < 16; key++ {
			var want []int32
			for i, tp := range r.Tuples {
				if tp[0] == key {
					want = append(want, int32(i))
				}
			}
			got := ix.Lookup([]Value{key})
			if len(got) != len(want) {
				return false
			}
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDictionaryRoundTrip(t *testing.T) {
	d := NewDictionary()
	a := d.Code("boston")
	b := d.Code("portland")
	if a2 := d.Code("boston"); a2 != a {
		t.Error("Code not stable")
	}
	if d.String(b) != "portland" {
		t.Errorf("String(%d) = %q", b, d.String(b))
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
	if _, ok := d.Lookup("seattle"); ok {
		t.Error("Lookup of unseen string should fail")
	}
	if d.String(99) != "" {
		t.Error("String out of range should be empty")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := New("R", "A", "B")
	r.AddWeighted(1.5, 1, 2)
	r.AddWeighted(2.25, 3, 4)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "R", true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.EqualAsSet(got) {
		t.Fatalf("round trip mismatch:\n%v\n%v", r, got)
	}
}

func TestCSVWithDictionary(t *testing.T) {
	in := "city,score\nboston,1.5\nportland,2.5\nboston,3.5\n"
	d := NewDictionary()
	r, err := ReadCSV(strings.NewReader(in), "cities", true, d)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if r.Tuples[0][0] != r.Tuples[2][0] {
		t.Error("same string should map to same code")
	}
	if d.String(r.Tuples[1][0]) != "portland" {
		t.Error("dictionary decode failed")
	}
}

func TestCSVMixedColumnEncodedConsistently(t *testing.T) {
	// A column holding a numeric-looking cell and a string cell must be
	// dictionary-encoded as a whole; cell-by-cell typing would give "7" a
	// numeric code and "abc" a dictionary code, and the two relations
	// below would never join on their shared values.
	d := NewDictionary()
	r, err := ReadCSV(strings.NewReader("k,w\n7,1\nabc,2\n"), "R", true, d)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ReadCSV(strings.NewReader("k,w\nabc,3\n7,4\n"), "S", true, d)
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range []*Relation{r, s} {
		for i, tp := range rel.Tuples {
			if tp[0] < DictBase {
				t.Fatalf("%s row %d: mixed column cell encoded numerically (%d)", rel.Name, i, tp[0])
			}
		}
	}
	if r.Tuples[0][0] != s.Tuples[1][0] {
		t.Error(`"7" must get the same dictionary code in both relations`)
	}
	if r.Tuples[1][0] != s.Tuples[0][0] {
		t.Error(`"abc" must get the same dictionary code in both relations`)
	}
	if r.Tuples[0][0] == r.Tuples[1][0] {
		t.Error(`"7" and "abc" must get distinct codes`)
	}

	// A fully numeric column stays numerically encoded even when another
	// column of the same file is a string column.
	m, err := ReadCSV(strings.NewReader("a,b,w\n1,x,0\n2,7,0\n"), "M", true, d)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tuples[0][0] != 1 || m.Tuples[1][0] != 2 {
		t.Errorf("numeric column re-encoded: %v", m.Tuples)
	}
	if m.Tuples[0][1] < DictBase || m.Tuples[1][1] < DictBase {
		t.Errorf("mixed column not dictionary-encoded: %v", m.Tuples)
	}

	// In a string column, "07" and "7" are distinct values (numeric
	// cell-by-cell parsing used to conflate them).
	n, err := ReadCSV(strings.NewReader("k,w\n07,0\n7,0\nz,0\n"), "N", true, d)
	if err != nil {
		t.Fatal(err)
	}
	if n.Tuples[0][0] == n.Tuples[1][0] {
		t.Error(`"07" and "7" must stay distinct in a string column`)
	}

	// Mixed column without a dictionary still fails with guidance.
	if _, err := ReadCSV(strings.NewReader("k,w\n7,1\nabc,2\n"), "R", true, nil); err == nil {
		t.Error("mixed column without dictionary should fail")
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), "R", false, nil); err == nil {
		t.Error("empty CSV should fail")
	}
	if _, err := ReadCSV(strings.NewReader("a,w\nx,1\n"), "R", true, nil); err == nil {
		t.Error("non-numeric without dictionary should fail")
	}
	if _, err := ReadCSV(strings.NewReader("a,w\n1,notafloat\n"), "R", true, nil); err == nil {
		t.Error("bad weight should fail")
	}
	if _, err := ReadCSV(strings.NewReader("w\n1\n"), "R", true, nil); err == nil {
		t.Error("weight-only schema should fail")
	}
}

func TestTotalWeight(t *testing.T) {
	r := New("R", "A")
	r.AddWeighted(1, 1)
	r.AddWeighted(2, 2)
	if r.TotalWeight() != 3 {
		t.Errorf("TotalWeight = %g, want 3", r.TotalWeight())
	}
}

func BenchmarkIndexBuildSingle(b *testing.B) {
	r := New("R", "A", "B")
	for i := 0; i < 100000; i++ {
		r.Add(Value(i%1000), Value(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MustIndex(r, "A")
	}
}

func BenchmarkIndexLookup(b *testing.B) {
	r := New("R", "A", "B")
	for i := 0; i < 100000; i++ {
		r.Add(Value(i%1000), Value(i))
	}
	ix := MustIndex(r, "A")
	key := []Value{500}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Lookup(key)
	}
}
