// Package relation implements the weighted relational substrate the rest
// of the library builds on: schemas, tuples over an integer domain,
// weighted relations, and the hash indexes used by join algorithms.
//
// Tuples carry a weight (the input to the ranking function); the weight
// of a join result is the aggregate of the weights of its constituent
// input tuples, matching the cost model of the tutorial's Part 3.
package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Value is a domain value. All attributes share the integer domain;
// command-line tools map external strings through a Dictionary.
type Value = int64

// Tuple is a sequence of values aligned with a relation's attributes.
type Tuple []Value

// Relation is a named, weighted relation. Tuples[i] has weight
// Weights[i]. Relations are bags (duplicates allowed) unless deduplicated
// explicitly.
type Relation struct {
	Name    string
	Attrs   []string
	Tuples  []Tuple
	Weights []float64
}

// New returns an empty relation with the given name and attributes.
func New(name string, attrs ...string) *Relation {
	return &Relation{Name: name, Attrs: append([]string(nil), attrs...)}
}

// Add appends a tuple with weight 0. It panics if the arity mismatches.
func (r *Relation) Add(vals ...Value) {
	r.AddWeighted(0, vals...)
}

// AddWeighted appends a tuple with the given weight. It panics if the
// arity mismatches, which always indicates a programming error.
func (r *Relation) AddWeighted(weight float64, vals ...Value) {
	if len(vals) != len(r.Attrs) {
		panic(fmt.Sprintf("relation %s: tuple arity %d != schema arity %d", r.Name, len(vals), len(r.Attrs)))
	}
	t := make(Tuple, len(vals))
	copy(t, vals)
	r.Tuples = append(r.Tuples, t)
	r.Weights = append(r.Weights, weight)
}

// AddTuple appends t (without copying) with the given weight.
func (r *Relation) AddTuple(t Tuple, weight float64) {
	if len(t) != len(r.Attrs) {
		panic(fmt.Sprintf("relation %s: tuple arity %d != schema arity %d", r.Name, len(t), len(r.Attrs)))
	}
	r.Tuples = append(r.Tuples, t)
	r.Weights = append(r.Weights, weight)
}

// Len reports the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Arity reports the number of attributes.
func (r *Relation) Arity() int { return len(r.Attrs) }

// AttrIndex returns the position of attr in the schema, or -1.
func (r *Relation) AttrIndex(attr string) int {
	for i, a := range r.Attrs {
		if a == attr {
			return i
		}
	}
	return -1
}

// AttrIndexes maps attribute names to positions. It returns an error for
// unknown attributes.
func (r *Relation) AttrIndexes(attrs []string) ([]int, error) {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		j := r.AttrIndex(a)
		if j < 0 {
			return nil, fmt.Errorf("relation %s: unknown attribute %q", r.Name, a)
		}
		idx[i] = j
	}
	return idx, nil
}

// HasAttr reports whether attr is in the schema.
func (r *Relation) HasAttr(attr string) bool { return r.AttrIndex(attr) >= 0 }

// SharedAttrs returns the attribute names present in both relations, in
// r's schema order.
func (r *Relation) SharedAttrs(other *Relation) []string {
	var shared []string
	for _, a := range r.Attrs {
		if other.HasAttr(a) {
			shared = append(shared, a)
		}
	}
	return shared
}

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	c := &Relation{
		Name:    r.Name,
		Attrs:   append([]string(nil), r.Attrs...),
		Tuples:  make([]Tuple, len(r.Tuples)),
		Weights: append([]float64(nil), r.Weights...),
	}
	for i, t := range r.Tuples {
		c.Tuples[i] = append(Tuple(nil), t...)
	}
	return c
}

// Project returns a new relation restricted to the given attributes
// (duplicates preserved; weights carried over).
func (r *Relation) Project(attrs ...string) (*Relation, error) {
	idx, err := r.AttrIndexes(attrs)
	if err != nil {
		return nil, err
	}
	out := New(r.Name+"_proj", attrs...)
	out.Tuples = make([]Tuple, 0, len(r.Tuples))
	out.Weights = make([]float64, 0, len(r.Tuples))
	for i, t := range r.Tuples {
		nt := make(Tuple, len(idx))
		for j, c := range idx {
			nt[j] = t[c]
		}
		out.Tuples = append(out.Tuples, nt)
		out.Weights = append(out.Weights, r.Weights[i])
	}
	return out, nil
}

// Select returns a new relation containing the tuples for which keep
// returns true. Tuples are shared, not copied.
func (r *Relation) Select(keep func(t Tuple, w float64) bool) *Relation {
	out := New(r.Name+"_sel", r.Attrs...)
	for i, t := range r.Tuples {
		if keep(t, r.Weights[i]) {
			out.Tuples = append(out.Tuples, t)
			out.Weights = append(out.Weights, r.Weights[i])
		}
	}
	return out
}

// SortByWeight sorts tuples by ascending weight (stable).
func (r *Relation) SortByWeight() {
	r.sortBy(func(i, j int) bool { return r.Weights[i] < r.Weights[j] })
}

// SortByCols sorts tuples lexicographically by the given attributes,
// breaking ties by weight.
func (r *Relation) SortByCols(attrs ...string) error {
	idx, err := r.AttrIndexes(attrs)
	if err != nil {
		return err
	}
	r.sortBy(func(i, j int) bool {
		a, b := r.Tuples[i], r.Tuples[j]
		for _, c := range idx {
			if a[c] != b[c] {
				return a[c] < b[c]
			}
		}
		return r.Weights[i] < r.Weights[j]
	})
	return nil
}

// sortBy sorts tuples and weights together with the given less on row
// indices.
func (r *Relation) sortBy(less func(i, j int) bool) {
	rows := make([]int, len(r.Tuples))
	for i := range rows {
		rows[i] = i
	}
	sort.SliceStable(rows, func(i, j int) bool { return less(rows[i], rows[j]) })
	nt := make([]Tuple, len(rows))
	nw := make([]float64, len(rows))
	for i, row := range rows {
		nt[i] = r.Tuples[row]
		nw[i] = r.Weights[row]
	}
	r.Tuples, r.Weights = nt, nw
}

// Dedup removes duplicate tuples, keeping the lightest weight for each
// distinct tuple. The relation is sorted by columns afterwards.
func (r *Relation) Dedup() {
	if len(r.Tuples) == 0 {
		return
	}
	best := make(map[string]int, len(r.Tuples))
	var buf []byte
	order := make([]int, 0, len(r.Tuples))
	for i, t := range r.Tuples {
		buf = AppendKey(buf[:0], t)
		k := string(buf)
		if j, ok := best[k]; ok {
			if r.Weights[i] < r.Weights[j] {
				best[k] = i
			}
		} else {
			best[k] = i
			order = append(order, i)
		}
	}
	nt := make([]Tuple, 0, len(best))
	nw := make([]float64, 0, len(best))
	for _, first := range order {
		buf = AppendKey(buf[:0], r.Tuples[first])
		i := best[string(buf)]
		nt = append(nt, r.Tuples[i])
		nw = append(nw, r.Weights[i])
	}
	r.Tuples, r.Weights = nt, nw
}

// EqualAsSet reports whether two relations contain the same set of
// (tuple, weight) pairs, ignoring order and name. Schemas must match.
func (r *Relation) EqualAsSet(other *Relation) bool {
	if len(r.Attrs) != len(other.Attrs) {
		return false
	}
	for i := range r.Attrs {
		if r.Attrs[i] != other.Attrs[i] {
			return false
		}
	}
	if len(r.Tuples) != len(other.Tuples) {
		return false
	}
	count := make(map[string]int, len(r.Tuples))
	var buf []byte
	for i, t := range r.Tuples {
		buf = AppendKey(buf[:0], t)
		buf = appendFloatKey(buf, r.Weights[i])
		count[string(buf)]++
	}
	for i, t := range other.Tuples {
		buf = AppendKey(buf[:0], t)
		buf = appendFloatKey(buf, other.Weights[i])
		count[string(buf)]--
		if count[string(buf)] < 0 {
			return false
		}
	}
	return true
}

// TotalWeight returns the sum of all tuple weights.
func (r *Relation) TotalWeight() float64 {
	var s float64
	for _, w := range r.Weights {
		s += w
	}
	return s
}

// String renders the relation as a small table (for tests and examples).
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s) [%d tuples]\n", r.Name, strings.Join(r.Attrs, ","), len(r.Tuples))
	n := len(r.Tuples)
	const maxRows = 20
	for i := 0; i < n && i < maxRows; i++ {
		fmt.Fprintf(&b, "  %v w=%g\n", []Value(r.Tuples[i]), r.Weights[i])
	}
	if n > maxRows {
		fmt.Fprintf(&b, "  ... (%d more)\n", n-maxRows)
	}
	return b.String()
}
