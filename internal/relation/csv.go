package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Dictionary maps external string values to integer codes so that
// string-keyed data (e.g. city names in the rank-join example) can flow
// through the integer-domain engine. Codes start at DictBase so they
// never collide with ordinary numeric CSV values, which makes decoding
// mixed outputs unambiguous.
type Dictionary struct {
	toCode map[string]Value
	toStr  []string
}

// DictBase is the first code a Dictionary assigns.
const DictBase Value = 1 << 40

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{toCode: make(map[string]Value)}
}

// Code returns the code for s, assigning the next code on first sight.
func (d *Dictionary) Code(s string) Value {
	if c, ok := d.toCode[s]; ok {
		return c
	}
	c := DictBase + Value(len(d.toStr))
	d.toCode[s] = c
	d.toStr = append(d.toStr, s)
	return c
}

// Lookup returns the code for s and whether it exists.
func (d *Dictionary) Lookup(s string) (Value, bool) {
	c, ok := d.toCode[s]
	return c, ok
}

// String returns the string for code c, or "" if out of range.
func (d *Dictionary) String(c Value) string {
	s, _ := d.Decode(c)
	return s
}

// Decode returns the string for c when c is a code this dictionary
// assigned, with ok=false for ordinary numeric values (or codes it
// never assigned). Unlike String it distinguishes an encoded empty
// string from "not a dictionary code", which the serving layer needs
// when rendering mixed numeric/string output tuples.
func (d *Dictionary) Decode(c Value) (string, bool) {
	idx := c - DictBase
	if idx < 0 || int(idx) >= len(d.toStr) {
		return "", false
	}
	return d.toStr[idx], true
}

// Len reports the number of distinct strings.
func (d *Dictionary) Len() int { return len(d.toStr) }

// ReadCSV reads a relation from CSV. The first row is the header; the
// last column is parsed as the float64 weight when weightCol is true,
// otherwise all columns are values and weights default to 0.
//
// Value columns are typed per *column*, not per cell: a column is
// numeric only when every one of its cells parses as an integer;
// otherwise the whole column is dictionary-encoded through dict (which
// may be shared across relations). This keeps encodings consistent
// within a column — a column holding "7" on one row and "abc" on the
// next is treated as a string column throughout, so its "7" joins with
// "7" in other string columns (and the strings "07" and "7" stay
// distinct) instead of silently mixing numeric and dictionary codes
// that never match.
//
// Typing is per relation: a column that is all-numeric in one file
// stays numeric there even when the matching column of another file is
// mixed (and therefore string-typed), in which case the two never join.
// When an attribute holds strings in any file, make sure it is
// non-numeric (or quoted consistently) in every file that joins on it.
func ReadCSV(r io.Reader, name string, weightCol bool, dict *Dictionary) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("relation %s: %w", name, err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("relation %s: empty CSV", name)
	}
	header := rows[0]
	nattrs := len(header)
	if weightCol {
		nattrs--
		if nattrs < 1 {
			return nil, fmt.Errorf("relation %s: need at least one value column", name)
		}
	}
	for ln, row := range rows[1:] {
		if len(row) != len(header) {
			return nil, fmt.Errorf("relation %s line %d: got %d fields, want %d", name, ln+2, len(row), len(header))
		}
	}
	// First pass: a column is numeric iff every data cell parses.
	numeric := make([]bool, nattrs)
	for i := range numeric {
		numeric[i] = true
	}
	for _, row := range rows[1:] {
		for i := 0; i < nattrs; i++ {
			if !numeric[i] {
				continue
			}
			if _, err := strconv.ParseInt(row[i], 10, 64); err != nil {
				numeric[i] = false
			}
		}
	}
	rel := New(name, header[:nattrs]...)
	for ln, row := range rows[1:] {
		t := make(Tuple, nattrs)
		for i := 0; i < nattrs; i++ {
			if numeric[i] {
				v, err := strconv.ParseInt(row[i], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("relation %s line %d: bad numeric value %q: %w", name, ln+2, row[i], err)
				}
				// With a dictionary in play, raw integers at or above
				// DictBase would be indistinguishable from string codes
				// (Decode would render them as unrelated strings), so the
				// numeric domain is capped below the code space.
				if dict != nil && v >= DictBase {
					return nil, fmt.Errorf("relation %s line %d: integer value %d collides with the dictionary code space (numeric values must be < 2^40)", name, ln+2, v)
				}
				t[i] = v
			} else if dict != nil {
				t[i] = dict.Code(row[i])
			} else {
				return nil, fmt.Errorf("relation %s line %d: non-numeric value %q without dictionary", name, ln+2, row[i])
			}
		}
		w := 0.0
		if weightCol {
			w, err = strconv.ParseFloat(row[nattrs], 64)
			if err != nil {
				return nil, fmt.Errorf("relation %s line %d: bad weight %q: %w", name, ln+2, row[nattrs], err)
			}
		}
		rel.AddTuple(t, w)
	}
	return rel, nil
}

// WriteCSV writes the relation as CSV with a trailing "weight" column.
func WriteCSV(w io.Writer, r *Relation) error {
	cw := csv.NewWriter(w)
	header := append(append([]string(nil), r.Attrs...), "weight")
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(r.Attrs)+1)
	for i, t := range r.Tuples {
		for j, v := range t {
			row[j] = strconv.FormatInt(v, 10)
		}
		row[len(r.Attrs)] = strconv.FormatFloat(r.Weights[i], 'g', -1, 64)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
