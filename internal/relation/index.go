package relation

import (
	"fmt"
	"math"
)

// AppendKey appends the binary encoding of vals to buf and returns the
// extended buffer. The encoding is fixed-width (8 bytes per value,
// big-endian with the sign bit flipped) so that byte-wise comparison of
// keys equals lexicographic comparison of value vectors.
func AppendKey(buf []byte, vals []Value) []byte {
	for _, v := range vals {
		u := uint64(v) ^ (1 << 63) // order-preserving for signed values
		buf = append(buf,
			byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
			byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
	}
	return buf
}

// appendFloatKey appends an order-irrelevant encoding of a float64 used
// only for equality testing.
func appendFloatKey(buf []byte, f float64) []byte {
	u := floatBits(f)
	return append(buf,
		byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}

// Index is a hash index over one or more columns of a relation, mapping
// each distinct key to the row numbers holding it. A single-column index
// uses a direct value map (the common case in graph workloads); wider
// keys use the binary encoding from AppendKey.
type Index struct {
	rel    *Relation
	cols   []int
	single map[Value][]int32  // non-nil iff len(cols) == 1
	multi  map[string][]int32 // non-nil iff len(cols) != 1
}

// NewIndex builds a hash index on the given attributes of r in O(|r|).
// An index on zero attributes maps the empty key to every row.
func NewIndex(r *Relation, attrs ...string) (*Index, error) {
	cols, err := r.AttrIndexes(attrs)
	if err != nil {
		return nil, err
	}
	ix := &Index{rel: r, cols: cols}
	if len(cols) == 1 {
		c := cols[0]
		ix.single = make(map[Value][]int32, len(r.Tuples))
		for i, t := range r.Tuples {
			ix.single[t[c]] = append(ix.single[t[c]], int32(i))
		}
		return ix, nil
	}
	ix.multi = make(map[string][]int32, len(r.Tuples))
	var buf []byte
	key := make([]Value, len(cols))
	for i, t := range r.Tuples {
		for j, c := range cols {
			key[j] = t[c]
		}
		buf = AppendKey(buf[:0], key)
		ix.multi[string(buf)] = append(ix.multi[string(buf)], int32(i))
	}
	return ix, nil
}

// MustIndex is NewIndex that panics on schema errors (for internal use
// where attributes are known valid).
func MustIndex(r *Relation, attrs ...string) *Index {
	ix, err := NewIndex(r, attrs...)
	if err != nil {
		panic(err)
	}
	return ix
}

// Relation returns the indexed relation.
func (ix *Index) Relation() *Relation { return ix.rel }

// Cols returns the indexed column positions.
func (ix *Index) Cols() []int { return ix.cols }

// Lookup returns the rows whose indexed columns equal key. The returned
// slice is shared; callers must not mutate it.
func (ix *Index) Lookup(key []Value) []int32 {
	if len(key) != len(ix.cols) {
		panic(fmt.Sprintf("index lookup arity %d != %d", len(key), len(ix.cols)))
	}
	if ix.single != nil {
		return ix.single[key[0]]
	}
	var buf [64]byte
	b := AppendKey(buf[:0], key)
	return ix.multi[string(b)]
}

// LookupTuple extracts the key columns from t (a tuple of the indexed
// relation's schema shape is not required: cols are positions in the
// *indexed* relation, so t must be a tuple of the indexed relation) and
// returns matching rows.
func (ix *Index) LookupTuple(t Tuple) []int32 {
	if ix.single != nil {
		return ix.single[t[ix.cols[0]]]
	}
	var buf [64]byte
	b := buf[:0]
	key := make([]Value, len(ix.cols))
	for j, c := range ix.cols {
		key[j] = t[c]
	}
	b = AppendKey(b, key)
	return ix.multi[string(b)]
}

// Keys returns the number of distinct keys.
func (ix *Index) Keys() int {
	if ix.single != nil {
		return len(ix.single)
	}
	return len(ix.multi)
}

// MaxFanout returns the largest number of rows sharing one key (the
// maximum degree), used by heavy/light decompositions and tests.
func (ix *Index) MaxFanout() int {
	max := 0
	if ix.single != nil {
		for _, rows := range ix.single {
			if len(rows) > max {
				max = len(rows)
			}
		}
		return max
	}
	for _, rows := range ix.multi {
		if len(rows) > max {
			max = len(rows)
		}
	}
	return max
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
