package relation

// ColumnSummary holds the per-column facts a single ingest-time scan can
// collect without sketches: the value range and whether the column has
// any values at all. The statistics catalog (internal/catalog) layers
// distinct-count and heavy-hitter sketches on top of these.
type ColumnSummary struct {
	Min, Max Value
	// NonEmpty is false for a column of an empty relation, in which case
	// Min and Max are meaningless zeros.
	NonEmpty bool
}

// ColumnSummaries scans the relation once and returns the min/max
// summary of every column, aligned with Attrs.
func (r *Relation) ColumnSummaries() []ColumnSummary {
	out := make([]ColumnSummary, r.Arity())
	for _, t := range r.Tuples {
		for c, v := range t {
			s := &out[c]
			if !s.NonEmpty {
				s.Min, s.Max, s.NonEmpty = v, v, true
				continue
			}
			if v < s.Min {
				s.Min = v
			}
			if v > s.Max {
				s.Max = v
			}
		}
	}
	return out
}
