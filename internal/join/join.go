// Package join implements the classic "two relations at a time" join
// operators that database optimizers favor: hash join, sort-merge join,
// semi-join, and left-deep plans built from them. Plans are instrumented
// to count intermediate-result tuples, because the whole point of §3 of
// the tutorial is that on cyclic queries these plans materialise
// intermediate results asymptotically larger than the final output.
package join

import (
	"fmt"

	"repro/internal/ranking"
	"repro/internal/relation"
)

// Stats records the work a plan execution performed.
type Stats struct {
	// IntermediateTuples is the total number of tuples materialised in
	// intermediate results (the final output is not counted).
	IntermediateTuples int
	// MaxIntermediate is the largest single intermediate result.
	MaxIntermediate int
	// OutputTuples is the size of the final result.
	OutputTuples int
	// ProbeSteps counts hash probes plus emitted matches (RAM-model work).
	ProbeSteps int
}

// outputSchema returns the natural-join schema: l's attributes followed
// by r's attributes that are not shared, plus the column mapping for r.
func outputSchema(l, r *relation.Relation) (attrs []string, rKeep []int) {
	attrs = append(attrs, l.Attrs...)
	for i, a := range r.Attrs {
		if !l.HasAttr(a) {
			attrs = append(attrs, a)
			rKeep = append(rKeep, i)
		}
	}
	return attrs, rKeep
}

// HashJoin computes the natural join of l and r on all shared attributes,
// combining tuple weights with agg. With no shared attributes it degrades
// to the cartesian product. Stats (may be nil) accumulates probe work.
func HashJoin(l, r *relation.Relation, agg ranking.Aggregate, stats *Stats) *relation.Relation {
	shared := l.SharedAttrs(r)
	attrs, rKeep := outputSchema(l, r)
	out := relation.New(l.Name+"⋈"+r.Name, attrs...)

	if len(shared) == 0 {
		for i, lt := range l.Tuples {
			for j, rt := range r.Tuples {
				emit(out, lt, rt, rKeep, agg.Combine(l.Weights[i], r.Weights[j]))
			}
		}
		if stats != nil {
			stats.ProbeSteps += l.Len() * r.Len()
		}
		return out
	}

	rIdx := relation.MustIndex(r, shared...)
	lCols, err := l.AttrIndexes(shared)
	if err != nil {
		panic(err) // shared attrs come from l's schema; cannot fail
	}
	key := make([]relation.Value, len(lCols))
	for i, lt := range l.Tuples {
		for k, c := range lCols {
			key[k] = lt[c]
		}
		rows := rIdx.Lookup(key)
		if stats != nil {
			stats.ProbeSteps += 1 + len(rows)
		}
		for _, j := range rows {
			emit(out, lt, r.Tuples[j], rKeep, agg.Combine(l.Weights[i], r.Weights[j]))
		}
	}
	return out
}

// MergeJoin computes the same natural join as HashJoin using sort-merge.
// Both inputs are copied and sorted on the shared attributes.
func MergeJoin(l, r *relation.Relation, agg ranking.Aggregate) *relation.Relation {
	shared := l.SharedAttrs(r)
	if len(shared) == 0 {
		return HashJoin(l, r, agg, nil) // cartesian; sorting buys nothing
	}
	ls := l.Clone()
	rs := r.Clone()
	if err := ls.SortByCols(shared...); err != nil {
		panic(err)
	}
	if err := rs.SortByCols(shared...); err != nil {
		panic(err)
	}
	lCols, _ := ls.AttrIndexes(shared)
	rCols, _ := rs.AttrIndexes(shared)
	attrs, rKeep := outputSchema(l, r)
	out := relation.New(l.Name+"⋈"+r.Name, attrs...)

	cmp := func(a relation.Tuple, b relation.Tuple) int {
		for k := range shared {
			av, bv := a[lCols[k]], b[rCols[k]]
			if av != bv {
				if av < bv {
					return -1
				}
				return 1
			}
		}
		return 0
	}

	i, j := 0, 0
	for i < ls.Len() && j < rs.Len() {
		c := cmp(ls.Tuples[i], rs.Tuples[j])
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			// Find the equal-key blocks on both sides.
			iEnd := i + 1
			for iEnd < ls.Len() && cmp(ls.Tuples[iEnd], rs.Tuples[j]) == 0 {
				iEnd++
			}
			jEnd := j + 1
			for jEnd < rs.Len() && cmp(ls.Tuples[i], rs.Tuples[jEnd]) == 0 {
				jEnd++
			}
			for a := i; a < iEnd; a++ {
				for b := j; b < jEnd; b++ {
					emit(out, ls.Tuples[a], rs.Tuples[b], rKeep, agg.Combine(ls.Weights[a], rs.Weights[b]))
				}
			}
			i, j = iEnd, jEnd
		}
	}
	return out
}

func emit(out *relation.Relation, lt, rt relation.Tuple, rKeep []int, w float64) {
	t := make(relation.Tuple, 0, len(lt)+len(rKeep))
	t = append(t, lt...)
	for _, c := range rKeep {
		t = append(t, rt[c])
	}
	out.AddTuple(t, w)
}

// SemiJoin returns the tuples of l that join with at least one tuple of
// r on the shared attributes (weights unchanged). With no shared
// attributes, the result is l itself when r is non-empty, else empty.
func SemiJoin(l, r *relation.Relation) *relation.Relation {
	shared := l.SharedAttrs(r)
	out := relation.New(l.Name, l.Attrs...)
	if len(shared) == 0 {
		if r.Len() > 0 {
			out.Tuples = append(out.Tuples, l.Tuples...)
			out.Weights = append(out.Weights, l.Weights...)
		}
		return out
	}
	rIdx := relation.MustIndex(r, shared...)
	lCols, _ := l.AttrIndexes(shared)
	key := make([]relation.Value, len(lCols))
	for i, lt := range l.Tuples {
		for k, c := range lCols {
			key[k] = lt[c]
		}
		if len(rIdx.Lookup(key)) > 0 {
			out.Tuples = append(out.Tuples, lt)
			out.Weights = append(out.Weights, l.Weights[i])
		}
	}
	return out
}

// Plan is a left-deep binary join plan: ((R1 ⋈ R2) ⋈ R3) ⋈ ...
type Plan struct {
	Rels []*relation.Relation
	Agg  ranking.Aggregate
}

// NewPlan builds a left-deep plan joining rels in order with agg.
func NewPlan(agg ranking.Aggregate, rels ...*relation.Relation) *Plan {
	return &Plan{Rels: rels, Agg: agg}
}

// Execute runs the plan with hash joins and returns the result along with
// intermediate-result statistics.
func (p *Plan) Execute() (*relation.Relation, *Stats) {
	stats := &Stats{}
	if len(p.Rels) == 0 {
		return relation.New("empty"), stats
	}
	acc := p.Rels[0]
	for i := 1; i < len(p.Rels); i++ {
		acc = HashJoin(acc, p.Rels[i], p.Agg, stats)
		if i < len(p.Rels)-1 {
			stats.IntermediateTuples += acc.Len()
			if acc.Len() > stats.MaxIntermediate {
				stats.MaxIntermediate = acc.Len()
			}
		}
	}
	stats.OutputTuples = acc.Len()
	return acc, stats
}

// BestOfAllOrders executes the plan for every permutation of the input
// relations and returns the result of the order with the smallest
// maximum intermediate, along with that order's stats. This implements
// the "no matter the join order" argument of §3: even the best binary
// plan blows up on the hard triangle instance. Exponential in the number
// of relations; intended for ≤ 6 relations.
func BestOfAllOrders(agg ranking.Aggregate, rels ...*relation.Relation) (*relation.Relation, *Stats, []int) {
	n := len(rels)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var (
		bestRes   *relation.Relation
		bestStats *Stats
		bestOrder []int
	)
	permute(perm, 0, func(order []int) {
		ordered := make([]*relation.Relation, n)
		for i, oi := range order {
			ordered[i] = rels[oi]
		}
		res, stats := NewPlan(agg, ordered...).Execute()
		if bestStats == nil || stats.MaxIntermediate < bestStats.MaxIntermediate {
			bestRes, bestStats = res, stats
			bestOrder = append([]int(nil), order...)
		}
	})
	return bestRes, bestStats, bestOrder
}

func permute(p []int, k int, visit func([]int)) {
	if k == len(p) {
		visit(p)
		return
	}
	for i := k; i < len(p); i++ {
		p[k], p[i] = p[i], p[k]
		permute(p, k+1, visit)
		p[k], p[i] = p[i], p[k]
	}
}

// SortedByWeight returns a copy of r sorted ascending by weight — the
// "join then sort" step of the batch top-k baseline.
func SortedByWeight(r *relation.Relation) *relation.Relation {
	c := r.Clone()
	c.SortByWeight()
	return c
}

// ValidateDisjointSchemas returns an error if two relations share an
// attribute name but are intended to be independent (used by tests
// constructing cartesian scenarios).
func ValidateDisjointSchemas(l, r *relation.Relation) error {
	if shared := l.SharedAttrs(r); len(shared) > 0 {
		return fmt.Errorf("join: schemas unexpectedly share %v", shared)
	}
	return nil
}
