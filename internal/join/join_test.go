package join

import (
	"testing"
	"testing/quick"

	"repro/internal/ranking"
	"repro/internal/relation"
)

var sum = ranking.SumCost{}

func rel(name string, attrs []string, rows [][]relation.Value, weights []float64) *relation.Relation {
	r := relation.New(name, attrs...)
	for i, row := range rows {
		w := 0.0
		if weights != nil {
			w = weights[i]
		}
		r.AddWeighted(w, row...)
	}
	return r
}

func TestHashJoinBasic(t *testing.T) {
	r := rel("R", []string{"A", "B"}, [][]relation.Value{{1, 10}, {2, 20}}, []float64{1, 2})
	s := rel("S", []string{"B", "C"}, [][]relation.Value{{10, 100}, {10, 101}, {30, 300}}, []float64{5, 6, 7})
	out := HashJoin(r, s, sum, nil)
	if out.Len() != 2 {
		t.Fatalf("join size = %d, want 2", out.Len())
	}
	if len(out.Attrs) != 3 || out.Attrs[0] != "A" || out.Attrs[1] != "B" || out.Attrs[2] != "C" {
		t.Fatalf("schema = %v", out.Attrs)
	}
	// (1,10,100) w=6 and (1,10,101) w=7.
	for i, tp := range out.Tuples {
		if tp[0] != 1 || tp[1] != 10 {
			t.Errorf("row %d = %v", i, tp)
		}
	}
	if out.Weights[0]+out.Weights[1] != 13 {
		t.Errorf("weights = %v, want sum 13", out.Weights)
	}
}

func TestHashJoinMultiAttr(t *testing.T) {
	r := rel("R", []string{"A", "B"}, [][]relation.Value{{1, 2}, {1, 3}}, nil)
	s := rel("S", []string{"A", "B", "C"}, [][]relation.Value{{1, 2, 9}, {1, 3, 8}, {1, 4, 7}}, nil)
	out := HashJoin(r, s, sum, nil)
	if out.Len() != 2 {
		t.Fatalf("join size = %d, want 2", out.Len())
	}
	if len(out.Attrs) != 3 {
		t.Fatalf("schema = %v, want [A B C]", out.Attrs)
	}
}

func TestHashJoinCartesian(t *testing.T) {
	r := rel("R", []string{"A"}, [][]relation.Value{{1}, {2}}, []float64{1, 2})
	s := rel("S", []string{"B"}, [][]relation.Value{{10}, {20}, {30}}, []float64{1, 1, 1})
	var stats Stats
	out := HashJoin(r, s, sum, &stats)
	if out.Len() != 6 {
		t.Fatalf("cartesian size = %d, want 6", out.Len())
	}
	if stats.ProbeSteps != 6 {
		t.Errorf("ProbeSteps = %d, want 6", stats.ProbeSteps)
	}
}

func TestHashJoinEmptyInput(t *testing.T) {
	r := rel("R", []string{"A", "B"}, nil, nil)
	s := rel("S", []string{"B", "C"}, [][]relation.Value{{1, 2}}, nil)
	if out := HashJoin(r, s, sum, nil); out.Len() != 0 {
		t.Error("join with empty left should be empty")
	}
	if out := HashJoin(s, r, sum, nil); out.Len() != 0 {
		t.Error("join with empty right should be empty")
	}
}

func TestMergeJoinMatchesHashJoin(t *testing.T) {
	r := rel("R", []string{"A", "B"}, [][]relation.Value{{1, 10}, {2, 10}, {3, 20}, {4, 30}}, []float64{1, 2, 3, 4})
	s := rel("S", []string{"B", "C"}, [][]relation.Value{{10, 1}, {10, 2}, {20, 3}, {40, 4}}, []float64{5, 6, 7, 8})
	hj := HashJoin(r, s, sum, nil)
	mj := MergeJoin(r, s, sum)
	if !hj.EqualAsSet(mj) {
		t.Fatalf("hash join and merge join differ:\n%v\n%v", hj, mj)
	}
}

// Property: hash join and merge join agree on random inputs.
func TestJoinEquivalenceProperty(t *testing.T) {
	f := func(rRows, sRows []uint8) bool {
		r := relation.New("R", "A", "B")
		for i, v := range rRows {
			r.AddWeighted(float64(i), relation.Value(v%8), relation.Value(v%5))
		}
		s := relation.New("S", "B", "C")
		for i, v := range sRows {
			s.AddWeighted(float64(i), relation.Value(v%5), relation.Value(v%7))
		}
		return HashJoin(r, s, sum, nil).EqualAsSet(MergeJoin(r, s, sum))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: |R ⋈ S| equals the sum over keys of |R_key|·|S_key|.
func TestJoinCardinalityProperty(t *testing.T) {
	f := func(rRows, sRows []uint8) bool {
		r := relation.New("R", "A", "B")
		for _, v := range rRows {
			r.Add(relation.Value(v), relation.Value(v%6))
		}
		s := relation.New("S", "B", "C")
		for _, v := range sRows {
			s.Add(relation.Value(v%6), relation.Value(v))
		}
		want := 0
		rc := make(map[relation.Value]int)
		for _, tp := range r.Tuples {
			rc[tp[1]]++
		}
		for _, tp := range s.Tuples {
			want += rc[tp[0]]
		}
		return HashJoin(r, s, sum, nil).Len() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSemiJoin(t *testing.T) {
	r := rel("R", []string{"A", "B"}, [][]relation.Value{{1, 10}, {2, 20}, {3, 30}}, []float64{1, 2, 3})
	s := rel("S", []string{"B", "C"}, [][]relation.Value{{10, 1}, {30, 2}}, nil)
	out := SemiJoin(r, s)
	if out.Len() != 2 {
		t.Fatalf("semijoin size = %d, want 2", out.Len())
	}
	if out.Tuples[0][0] != 1 || out.Tuples[1][0] != 3 {
		t.Errorf("semijoin rows = %v", out.Tuples)
	}
	if out.Weights[1] != 3 {
		t.Error("semijoin should preserve weights")
	}
	if len(out.Attrs) != 2 {
		t.Error("semijoin should preserve schema")
	}
}

func TestSemiJoinNoSharedAttrs(t *testing.T) {
	r := rel("R", []string{"A"}, [][]relation.Value{{1}}, nil)
	s := rel("S", []string{"B"}, [][]relation.Value{{9}}, nil)
	if out := SemiJoin(r, s); out.Len() != 1 {
		t.Error("semijoin with non-empty unrelated relation keeps all tuples")
	}
	empty := rel("E", []string{"B"}, nil, nil)
	if out := SemiJoin(r, empty); out.Len() != 0 {
		t.Error("semijoin with empty unrelated relation is empty")
	}
}

func TestPlanExecuteChain(t *testing.T) {
	// Path: R(A,B) ⋈ S(B,C) ⋈ T(C,D).
	r := rel("R", []string{"A", "B"}, [][]relation.Value{{1, 2}}, []float64{1})
	s := rel("S", []string{"B", "C"}, [][]relation.Value{{2, 3}}, []float64{2})
	u := rel("T", []string{"C", "D"}, [][]relation.Value{{3, 4}}, []float64{4})
	res, stats := NewPlan(sum, r, s, u).Execute()
	if res.Len() != 1 {
		t.Fatalf("result size = %d, want 1", res.Len())
	}
	if res.Weights[0] != 7 {
		t.Errorf("weight = %g, want 7", res.Weights[0])
	}
	if stats.OutputTuples != 1 || stats.IntermediateTuples != 1 || stats.MaxIntermediate != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestPlanEmptyAndSingle(t *testing.T) {
	res, _ := NewPlan(sum).Execute()
	if res.Len() != 0 {
		t.Error("empty plan should return empty relation")
	}
	r := rel("R", []string{"A"}, [][]relation.Value{{1}}, nil)
	res, stats := NewPlan(sum, r).Execute()
	if res.Len() != 1 || stats.IntermediateTuples != 0 {
		t.Error("single-relation plan is identity")
	}
}

// The AGM-hard triangle instance from §3: every binary order produces a
// quadratic intermediate even though the output is linear.
func TestTriangleHardInstanceBlowup(t *testing.T) {
	n := 100
	r := relation.New("R", "A", "B")
	s := relation.New("S", "B", "C")
	u := relation.New("T", "C", "A")
	for i := 1; i <= n/2; i++ {
		r.Add(relation.Value(i), 1)
		r.Add(1, relation.Value(i))
		s.Add(relation.Value(i), 1)
		s.Add(1, relation.Value(i))
		u.Add(relation.Value(i), 1)
		u.Add(1, relation.Value(i))
	}
	_, stats, _ := BestOfAllOrders(sum, r, s, u)
	// Every pairwise join contains the (i,1,j) grid of size (n/2)².
	wantMin := (n / 2) * (n / 2)
	if stats.MaxIntermediate < wantMin {
		t.Errorf("best-order max intermediate = %d, want >= %d", stats.MaxIntermediate, wantMin)
	}
}

func TestBestOfAllOrdersPrefersGoodOrder(t *testing.T) {
	// Chain where joining in the given order is cheap but one order is
	// catastrophic: R tiny, S huge fanout.
	r := rel("R", []string{"A", "B"}, [][]relation.Value{{1, 1}}, nil)
	s := relation.New("S", "B", "C")
	u := relation.New("T", "C", "D")
	for i := 0; i < 100; i++ {
		s.Add(relation.Value(i%3), relation.Value(i))
		u.Add(relation.Value(i), relation.Value(i))
	}
	_, stats, order := BestOfAllOrders(sum, r, s, u)
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	// Best order starts from the selective R.
	if order[0] != 0 {
		t.Errorf("best order = %v, want leading 0", order)
	}
	if stats.MaxIntermediate > 40 {
		t.Errorf("best-order max intermediate = %d, unexpectedly large", stats.MaxIntermediate)
	}
}

func TestSortedByWeight(t *testing.T) {
	r := rel("R", []string{"A"}, [][]relation.Value{{1}, {2}, {3}}, []float64{3, 1, 2})
	s := SortedByWeight(r)
	if s.Weights[0] != 1 || s.Weights[2] != 3 {
		t.Errorf("sorted weights = %v", s.Weights)
	}
	if r.Weights[0] != 3 {
		t.Error("SortedByWeight must not mutate input")
	}
}

func TestValidateDisjointSchemas(t *testing.T) {
	r := relation.New("R", "A")
	s := relation.New("S", "A")
	if err := ValidateDisjointSchemas(r, s); err == nil {
		t.Error("shared attribute should be rejected")
	}
	u := relation.New("T", "B")
	if err := ValidateDisjointSchemas(r, u); err != nil {
		t.Errorf("disjoint schemas rejected: %v", err)
	}
}

func TestMaxCostWeightCombination(t *testing.T) {
	r := rel("R", []string{"A", "B"}, [][]relation.Value{{1, 2}}, []float64{5})
	s := rel("S", []string{"B", "C"}, [][]relation.Value{{2, 3}}, []float64{3})
	out := HashJoin(r, s, ranking.MaxCost{}, nil)
	if out.Weights[0] != 5 {
		t.Errorf("max-combined weight = %g, want 5", out.Weights[0])
	}
}

func BenchmarkHashJoin(b *testing.B) {
	r := relation.New("R", "A", "B")
	s := relation.New("S", "B", "C")
	for i := 0; i < 10000; i++ {
		r.Add(relation.Value(i), relation.Value(i%100))
		s.Add(relation.Value(i%100), relation.Value(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HashJoin(r, s, sum, nil)
	}
}

func TestMergeJoinMultiAttrShared(t *testing.T) {
	r := rel("R", []string{"A", "B", "C"}, [][]relation.Value{
		{1, 2, 3}, {1, 2, 4}, {5, 6, 7},
	}, []float64{1, 2, 3})
	s := rel("S", []string{"B", "C", "D"}, [][]relation.Value{
		{2, 3, 9}, {2, 4, 8}, {2, 5, 7},
	}, []float64{4, 5, 6})
	hj := HashJoin(r, s, sum, nil)
	mj := MergeJoin(r, s, sum)
	if hj.Len() != 2 {
		t.Fatalf("join size = %d, want 2", hj.Len())
	}
	if !hj.EqualAsSet(mj) {
		t.Fatal("hash and merge join disagree on multi-attribute keys")
	}
}

func TestMergeJoinDoesNotMutateInputs(t *testing.T) {
	r := rel("R", []string{"A", "B"}, [][]relation.Value{{3, 1}, {1, 2}}, []float64{0, 0})
	s := rel("S", []string{"B", "C"}, [][]relation.Value{{2, 5}, {1, 6}}, []float64{0, 0})
	MergeJoin(r, s, sum)
	if r.Tuples[0][0] != 3 || s.Tuples[0][0] != 2 {
		t.Fatal("MergeJoin reordered its inputs")
	}
}
