package catalog

import (
	"math"
	"math/bits"
	"sort"
)

const (
	// exactDistinctLimit is the set size below which DistinctCounter
	// stays exact; past it the counter degrades to HyperLogLog registers
	// (constant memory, ~1.6% standard error at hllP = 12).
	exactDistinctLimit = 1 << 12
	hllP               = 12 // 2^12 registers
)

// DistinctCounter estimates the number of distinct values in a stream.
// Small streams are counted exactly in a hash set; once the set exceeds
// exactDistinctLimit the counter converts to a HyperLogLog sketch and
// stays within constant memory however long the stream runs.
type DistinctCounter struct {
	exact map[int64]struct{} // nil once the counter degraded to HLL
	regs  []uint8
}

// NewDistinctCounter returns an empty counter.
func NewDistinctCounter() *DistinctCounter {
	return &DistinctCounter{exact: make(map[int64]struct{})}
}

// Add observes one value.
func (d *DistinctCounter) Add(v int64) {
	if d.exact != nil {
		d.exact[v] = struct{}{}
		if len(d.exact) <= exactDistinctLimit {
			return
		}
		// Degrade: replay the exact set into fresh HLL registers.
		d.regs = make([]uint8, 1<<hllP)
		for u := range d.exact {
			d.observe(hash64(uint64(u)))
		}
		d.exact = nil
		return
	}
	d.observe(hash64(uint64(v)))
}

func (d *DistinctCounter) observe(h uint64) {
	idx := h >> (64 - hllP)
	// The injected low bit bounds the rank at 64-hllP+1 so an all-zero
	// suffix cannot overflow the register width.
	rest := h<<hllP | 1<<(hllP-1)
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if rank > d.regs[idx] {
		d.regs[idx] = rank
	}
}

// Exact reports whether Estimate is an exact count.
func (d *DistinctCounter) Exact() bool { return d.exact != nil }

// Clone returns an independent copy of the counter.
func (d *DistinctCounter) Clone() *DistinctCounter {
	c := &DistinctCounter{}
	if d.exact != nil {
		c.exact = make(map[int64]struct{}, len(d.exact))
		for v := range d.exact {
			c.exact[v] = struct{}{}
		}
	}
	if d.regs != nil {
		c.regs = make([]uint8, len(d.regs))
		copy(c.regs, d.regs)
	}
	return c
}

// Merge folds another counter into d so that d estimates the distinct
// count of the union of both streams. Exact sets union (degrading past
// the limit exactly as Add does); HyperLogLog registers merge by
// taking the per-register maximum, which is lossless for HLL. Merging
// is destructive on d and leaves o untouched.
func (d *DistinctCounter) Merge(o *DistinctCounter) {
	if o.exact != nil {
		// Replaying o's exact values through Add handles every receiver
		// state: set union while d is exact, HLL observation after.
		for v := range o.exact {
			d.Add(v)
		}
		return
	}
	if d.exact != nil {
		// Degrade d to HLL registers so the register-wise max applies.
		d.regs = make([]uint8, 1<<hllP)
		for v := range d.exact {
			d.observe(hash64(uint64(v)))
		}
		d.exact = nil
	}
	for i, r := range o.regs {
		if r > d.regs[i] {
			d.regs[i] = r
		}
	}
}

// Estimate returns the distinct count: exact below the limit, the
// HyperLogLog estimate (with the standard linear-counting small-range
// correction) beyond it.
func (d *DistinctCounter) Estimate() float64 {
	if d.exact != nil {
		return float64(len(d.exact))
	}
	m := float64(len(d.regs))
	sum := 0.0
	zeros := 0
	for _, r := range d.regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	est := alpha * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		est = m * math.Log(m/float64(zeros))
	}
	return est
}

// hash64 is the splitmix64 finalizer — the same mixer the workload
// generators use, applied here as a stateless hash.
func hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HeavyHit is one (value, count) entry of a Misra–Gries summary. Count
// is a lower bound on the value's true frequency, undercounting by at
// most streamLength/k.
type HeavyHit struct {
	Value int64
	Count int
}

// MisraGries is the Misra–Gries heavy-hitter summary with k counters:
// every value whose true frequency exceeds Total()/k is guaranteed to
// survive in the summary (no false negatives above the threshold), and
// each surviving counter underestimates its value's frequency by at
// most Total()/k.
type MisraGries struct {
	k      int
	counts map[int64]int
	n      int
}

// NewMisraGries returns a summary with k counters (k is clamped to ≥ 2).
func NewMisraGries(k int) *MisraGries {
	if k < 2 {
		k = 2
	}
	return &MisraGries{k: k, counts: make(map[int64]int, k)}
}

// Add observes one value.
func (m *MisraGries) Add(v int64) {
	m.n++
	if c, ok := m.counts[v]; ok {
		m.counts[v] = c + 1
		return
	}
	if len(m.counts) < m.k-1 {
		m.counts[v] = 1
		return
	}
	// All counters occupied: decrement everyone, dropping zeros. Each
	// such event removes k units paid for by k prior arrivals, so the
	// total work stays linear in the stream length.
	for u, c := range m.counts {
		if c == 1 {
			delete(m.counts, u)
		} else {
			m.counts[u] = c - 1
		}
	}
}

// Total returns the observed stream length.
func (m *MisraGries) Total() int { return m.n }

// Clone returns an independent copy of the summary.
func (m *MisraGries) Clone() *MisraGries {
	c := &MisraGries{k: m.k, n: m.n, counts: make(map[int64]int, len(m.counts))}
	for v, cnt := range m.counts {
		c.counts[v] = cnt
	}
	return c
}

// Merge folds another summary into m using the standard mergeable-
// summaries construction (Agarwal et al.): counters for the same value
// add, then if more than k-1 counters survive, every counter is reduced
// by the k-th largest count and non-positive counters are dropped. The
// merged summary keeps the Misra–Gries guarantee (undercount at most
// Total()/k) for the combined stream. Destructive on m; o is untouched.
func (m *MisraGries) Merge(o *MisraGries) {
	for v, c := range o.counts {
		m.counts[v] += c
	}
	m.n += o.n
	if len(m.counts) <= m.k-1 {
		return
	}
	all := make([]int, 0, len(m.counts))
	for _, c := range m.counts {
		all = append(all, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(all)))
	// Subtracting a uniform threshold keeps the survivor set independent
	// of map iteration order: exactly the counters strictly above the
	// k-th largest count remain.
	t := all[m.k-1]
	for v, c := range m.counts {
		if c-t <= 0 {
			delete(m.counts, v)
		} else {
			m.counts[v] = c - t
		}
	}
}

// K returns the summary's counter budget.
func (m *MisraGries) K() int { return m.k }

// Count returns the summary's counter for v (0 when v was evicted or
// never seen) — a lower bound on v's true frequency.
func (m *MisraGries) Count(v int64) int { return m.counts[v] }

// Entries returns the surviving (value, lower-bound count) pairs sorted
// by descending count, ties by ascending value.
func (m *MisraGries) Entries() []HeavyHit {
	out := make([]HeavyHit, 0, len(m.counts))
	for v, c := range m.counts {
		out = append(out, HeavyHit{Value: v, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	return out
}
