// Package catalog is the statistics catalog and cost model behind
// cost-based planning. It collects cheap per-relation/per-column
// statistics — cardinalities, distinct counts (exact below a threshold,
// HyperLogLog beyond), min/max ranges, and Misra–Gries heavy-hitter
// summaries — and exposes a cost model that estimates the size of
// joining any subset of the query variables from those statistics,
// capped by the AGM bound. The decomposition search
// (hypergraph.DecomposeCosted) and the Generic-Join variable-order
// search (ChooseOrder) consume the model through small interfaces, and
// the facade's Compile wires it in by default via WithStatistics.
//
// Not to be confused with internal/stats, which measures experiment
// *runs* (timers, delay recorders, result tables); this package
// summarises the *data*.
package catalog

import (
	"sync"

	"repro/internal/relation"
)

// heavyK is the Misra–Gries counter budget per column: values with
// frequency above rows/heavyK are guaranteed to appear in the summary.
const heavyK = 64

// ColumnStats summarises one column of a relation.
type ColumnStats struct {
	// Min/Max are the value range; meaningless when the relation is
	// empty (NonEmpty false).
	Min, Max relation.Value
	NonEmpty bool
	// Distinct estimates the number of distinct values; DistinctExact
	// reports whether it is an exact count rather than an HLL estimate.
	Distinct      float64
	DistinctExact bool
	// Heavy lists the surviving Misra–Gries entries (descending count);
	// each Count lower-bounds the value's true frequency by at most
	// HeavyTotal/heavyK. HeavyTotal is the scanned row count.
	Heavy      []HeavyHit
	HeavyTotal int

	// dc/mg are the live sketches the derived fields above were read
	// from. Collect retains them so statistics for append deltas merge
	// (HLL register max, Misra–Gries counter union) instead of forcing a
	// rescan; they are nil for hand-constructed ColumnStats, in which
	// case MergeAppend reports that a recollection is required.
	dc *DistinctCounter
	mg *MisraGries
}

// RelationStats summarises one relation: its cardinality plus per-column
// statistics aligned with the relation's attributes.
type RelationStats struct {
	Rows int
	Cols []ColumnStats
}

// Collect scans a relation once per column and returns its statistics.
func Collect(r *relation.Relation) *RelationStats {
	st := &RelationStats{Rows: r.Len(), Cols: make([]ColumnStats, r.Arity())}
	sums := r.ColumnSummaries()
	for c := range st.Cols {
		dc := NewDistinctCounter()
		mg := NewMisraGries(heavyK)
		for _, t := range r.Tuples {
			dc.Add(int64(t[c]))
			mg.Add(int64(t[c]))
		}
		st.Cols[c] = ColumnStats{
			Min:           sums[c].Min,
			Max:           sums[c].Max,
			NonEmpty:      sums[c].NonEmpty,
			Distinct:      dc.Estimate(),
			DistinctExact: dc.Exact(),
			Heavy:         mg.Entries(),
			HeavyTotal:    mg.Total(),
			dc:            dc,
			mg:            mg,
		}
	}
	return st
}

// Mergeable reports whether s retains live sketches in every column, so
// MergeAppend with it can succeed. Statistics from Collect are
// mergeable; hand-constructed ones are not.
func (s *RelationStats) Mergeable() bool {
	for i := range s.Cols {
		if s.Cols[i].dc == nil || s.Cols[i].mg == nil {
			return false
		}
	}
	return true
}

// MergeAppend returns new statistics describing s's relation after
// appending the rows summarised by delta: row counts add, min/max
// ranges widen, distinct counters and heavy-hitter summaries merge
// sketch-wise (HLL register max / Misra–Gries counter union). Neither
// input is mutated. It reports false — and the caller must Collect from
// scratch — when the arities differ or either side lacks live sketches
// (hand-constructed stats). Deletions cannot be merged at all: sketches
// are insert-only, so delta statistics apply to appends only.
func (s *RelationStats) MergeAppend(delta *RelationStats) (*RelationStats, bool) {
	if len(s.Cols) != len(delta.Cols) || !s.Mergeable() || !delta.Mergeable() {
		return nil, false
	}
	out := &RelationStats{Rows: s.Rows + delta.Rows, Cols: make([]ColumnStats, len(s.Cols))}
	for c := range s.Cols {
		a, b := &s.Cols[c], &delta.Cols[c]
		dc := a.dc.Clone()
		dc.Merge(b.dc)
		mg := a.mg.Clone()
		mg.Merge(b.mg)
		col := ColumnStats{
			Min:           a.Min,
			Max:           a.Max,
			NonEmpty:      a.NonEmpty || b.NonEmpty,
			Distinct:      dc.Estimate(),
			DistinctExact: dc.Exact(),
			Heavy:         mg.Entries(),
			HeavyTotal:    mg.Total(),
			dc:            dc,
			mg:            mg,
		}
		if !a.NonEmpty {
			col.Min, col.Max = b.Min, b.Max
		} else if b.NonEmpty {
			if b.Min < col.Min {
				col.Min = b.Min
			}
			if b.Max > col.Max {
				col.Max = b.Max
			}
		}
		out.Cols[c] = col
	}
	return out, true
}

// Catalog maps relation (dataset) names to versioned statistics. Putting
// a name at any version replaces the previous entry, so re-registering a
// dataset at a bumped version invalidates its stale statistics
// atomically. Safe for concurrent use.
type Catalog struct {
	mu      sync.RWMutex
	entries map[string]catEntry
}

type catEntry struct {
	version int
	st      *RelationStats
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{entries: make(map[string]catEntry)}
}

// Put stores (replacing any prior version) the statistics for name.
func (c *Catalog) Put(name string, version int, st *RelationStats) {
	c.mu.Lock()
	c.entries[name] = catEntry{version: version, st: st}
	c.mu.Unlock()
}

// Get returns the current statistics and version for name.
func (c *Catalog) Get(name string) (*RelationStats, int, bool) {
	c.mu.RLock()
	e, ok := c.entries[name]
	c.mu.RUnlock()
	if !ok {
		return nil, 0, false
	}
	return e.st, e.version, true
}

// GetVersion returns the statistics for name only if the stored entry
// matches the requested version — the lookup callers use to reject
// statistics that predate a dataset re-registration.
func (c *Catalog) GetVersion(name string, version int) (*RelationStats, bool) {
	c.mu.RLock()
	e, ok := c.entries[name]
	c.mu.RUnlock()
	if !ok || e.version != version {
		return nil, false
	}
	return e.st, true
}

// Len returns the number of catalogued relations.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}
