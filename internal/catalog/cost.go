package catalog

import (
	"math"
	"sort"

	"repro/internal/hypergraph"
	"repro/internal/relation"
)

// maxAGMCapVars bounds the bag sizes for which BagCost additionally
// solves the AGM log-weighted cover LP to cap the chain estimate. The
// LP is exact worst-case information but costs a simplex solve per
// call; beyond this many variables the chain estimate stands alone so
// the beam searches stay cheap.
const maxAGMCapVars = 8

// CostModel estimates join sizes for one query from per-relation
// statistics. It implements hypergraph.BagCoster, so the decomposition
// search can rank candidate bags by estimated materialization cost, and
// drives the Generic-Join variable-order search (Order/ChooseOrder).
type CostModel struct {
	h     *hypergraph.Hypergraph
	edges []hypergraph.Edge
	stats []*RelationStats // aligned with edges
	sizes []float64        // max(1, rows) per edge: AGM-cap input
	empty bool             // some input relation is empty → every join is empty
}

// NewCostModel builds a cost model for the query given by edges, whose
// relations align with rels. Statistics come from the catalog when it
// holds an entry under the edge's name with matching arity; otherwise
// they are collected on the spot from the aligned relation. When some
// edge has neither (no catalog entry and a nil relation), no model can
// be built and NewCostModel returns nil — callers fall back to the
// structural heuristics.
func NewCostModel(edges []hypergraph.Edge, rels []*relation.Relation, cat *Catalog) *CostModel {
	m := &CostModel{
		h:     hypergraph.New(edges...),
		edges: edges,
		stats: make([]*RelationStats, len(edges)),
		sizes: make([]float64, len(edges)),
	}
	for i, e := range edges {
		var st *RelationStats
		if cat != nil {
			if s, _, ok := cat.Get(e.Name); ok && len(s.Cols) == len(e.Vars) {
				st = s
			}
		}
		if st == nil && i < len(rels) && rels[i] != nil {
			st = Collect(rels[i])
		}
		if st == nil || len(st.Cols) != len(e.Vars) {
			return nil
		}
		m.stats[i] = st
		m.sizes[i] = math.Max(1, float64(st.Rows))
		if st.Rows == 0 {
			m.empty = true
		}
	}
	return m
}

// EstimateVars estimates the size of the join of all input relations
// projected to the given variable set, by the textbook chain formula:
// the product over touching atoms of their projected size (capped by
// the product of the projected columns' distinct counts), times a
// selectivity per shared variable. The per-variable selectivity is
// distinct-count based (keep the smallest side, divide by the rest);
// for a variable shared by exactly two atoms the Misra–Gries summaries
// refine it, crediting heavy×heavy matches explicitly — on skewed data
// this is where the estimate diverges from the uniform assumption and
// the optimizer earns its keep.
func (m *CostModel) EstimateVars(vars []string) float64 {
	if len(vars) == 0 {
		return 1
	}
	if m.empty {
		return 0
	}
	set := make(map[string]bool, len(vars))
	for _, v := range vars {
		set[v] = true
	}
	// occ[v] lists (edge, column) of every atom containing v within the
	// set; column is the first matching one when an atom repeats v.
	type colRef struct{ e, c int }
	occ := make(map[string][]colRef, len(set))
	est := 1.0
	touching := false
	for ei, e := range m.edges {
		proj := 1.0
		seen := make(map[string]bool, len(e.Vars))
		for ci, v := range e.Vars {
			if !set[v] || seen[v] {
				continue
			}
			seen[v] = true
			occ[v] = append(occ[v], colRef{e: ei, c: ci})
			proj *= math.Max(1, m.stats[ei].Cols[ci].Distinct)
		}
		if len(seen) == 0 {
			continue
		}
		touching = true
		if rows := float64(m.stats[ei].Rows); proj > rows {
			proj = rows
		}
		est *= proj
	}
	if !touching {
		return 1
	}
	// Deterministic variable iteration (the product is commutative, but
	// bit-stable estimates keep plan choices reproducible).
	shared := make([]string, 0, len(occ))
	for v := range occ {
		if len(occ[v]) >= 2 {
			shared = append(shared, v)
		}
	}
	sort.Strings(shared)
	for _, v := range shared {
		refs := occ[v]
		if len(refs) == 2 {
			est *= m.pairSelectivity(refs[0].e, refs[0].c, refs[1].e, refs[1].c)
			continue
		}
		// Distinct-count selectivity: keep the smallest domain, divide
		// by every other side's distinct count.
		dmin, prod := math.Inf(1), 1.0
		for _, r := range refs {
			d := math.Max(1, m.stats[r.e].Cols[r.c].Distinct)
			prod *= d
			if d < dmin {
				dmin = d
			}
		}
		est *= dmin / prod
	}
	return est
}

// pairSelectivity estimates the join selectivity of one variable shared
// by exactly two atoms. With heavy-hitter summaries on both sides the
// expected match count is computed piecewise — heavy×heavy pairs
// exactly (lower-bound counts), heavy×residual at the residual mean
// frequency, residual×residual uniformly — otherwise it falls back to
// the uniform 1/max(d1,d2).
func (m *CostModel) pairSelectivity(e1, c1, e2, c2 int) float64 {
	s1, s2 := &m.stats[e1].Cols[c1], &m.stats[e2].Cols[c2]
	r1, r2 := float64(m.stats[e1].Rows), float64(m.stats[e2].Rows)
	d1, d2 := math.Max(1, s1.Distinct), math.Max(1, s2.Distinct)
	if len(s1.Heavy) == 0 || len(s2.Heavy) == 0 {
		return 1 / math.Max(d1, d2)
	}
	h2 := make(map[int64]float64, len(s2.Heavy))
	heavySum2 := 0.0
	for _, hh := range s2.Heavy {
		h2[hh.Value] = float64(hh.Count)
		heavySum2 += float64(hh.Count)
	}
	heavySum1 := 0.0
	for _, hh := range s1.Heavy {
		heavySum1 += float64(hh.Count)
	}
	resid1 := math.Max(0, r1-heavySum1)
	resid2 := math.Max(0, r2-heavySum2)
	dResid1 := math.Max(1, d1-float64(len(s1.Heavy)))
	dResid2 := math.Max(1, d2-float64(len(s2.Heavy)))
	mean1 := resid1 / dResid1
	mean2 := resid2 / dResid2
	matches := 0.0
	for _, hh := range s1.Heavy {
		if c, ok := h2[hh.Value]; ok {
			matches += float64(hh.Count) * c
			delete(h2, hh.Value)
		} else {
			matches += float64(hh.Count) * mean2
		}
	}
	for _, c := range h2 {
		matches += c * mean1
	}
	matches += resid1 * resid2 / math.Max(dResid1, dResid2)
	sel := matches / (r1 * r2)
	if sel > 1 {
		sel = 1
	}
	return sel
}

// BagCost estimates the cost of materializing one bag: the chain
// estimate of the join projected to the bag's variables, capped by the
// AGM worst-case bound for small bags. It implements
// hypergraph.BagCoster.
func (m *CostModel) BagCost(bag []string) float64 {
	est := m.EstimateVars(bag)
	if len(bag) <= maxAGMCapVars {
		if b, err := m.h.AGMBoundOf(bag, m.sizes); err == nil && b < est {
			est = b
		}
	}
	return est
}

// EstimateOutput estimates the full join's output cardinality.
func (m *CostModel) EstimateOutput() float64 {
	return m.EstimateVars(m.h.Vars())
}

// HeavyValues returns the heavy-hitter values recorded for variable x
// across the relations containing x, for use as skew hints by the
// parallel executor (wcoj.SkewHints): a value frequent in any base
// relation tends to own a disproportionate join subtree. Only sketch
// entries whose surviving count still clears the Misra–Gries guarantee
// threshold (rows/heavyK) qualify — entries below it may be noise from
// the counter pool. The result is sorted ascending and deduplicated;
// it is empty when no column of x shows qualifying hitters.
func (m *CostModel) HeavyValues(x string) []int64 {
	var vals []int64
	for ei, e := range m.edges {
		for ci, v := range e.Vars {
			if v != x {
				continue
			}
			cs := &m.stats[ei].Cols[ci]
			for _, hh := range cs.Heavy {
				if hh.Count*heavyK >= cs.HeavyTotal {
					vals = append(vals, hh.Value)
				}
			}
		}
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
	out := vals[:0]
	for i, v := range vals {
		if i == 0 || v != vals[i-1] {
			out = append(out, v)
		}
	}
	return out
}
