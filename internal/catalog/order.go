package catalog

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/hypergraph"
	"repro/internal/relation"
	"repro/internal/wcoj"
)

const (
	// maxOrderDPVars bounds the exact subset-DP variable-order search
	// (2^n subset estimates); larger queries use the greedy beam.
	maxOrderDPVars = 12
	// orderBeamWidth is the beam kept by the greedy order search.
	orderBeamWidth = 4
)

// Order returns a low-cost Generic-Join variable order over the model's
// full variable set: the order minimizing the summed size estimates of
// its prefixes — the intermediate relations Generic-Join effectively
// explores while extending one variable at a time. Up to maxOrderDPVars
// variables the minimum is exact (Selinger-style subset DP, exploiting
// that a prefix's estimated size depends only on its variable *set*);
// beyond that a width-orderBeamWidth greedy beam approximates it.
func (m *CostModel) Order() []string {
	vars := m.h.Vars()
	if len(vars) <= 1 {
		return vars
	}
	if len(vars) <= maxOrderDPVars {
		return m.orderDP(vars)
	}
	return m.orderBeam(vars)
}

func (m *CostModel) orderDP(vars []string) []string {
	n := len(vars)
	full := 1<<n - 1
	// size[S] is the estimated size of the join projected to subset S —
	// order-independent, so each subset is estimated once.
	size := make([]float64, full+1)
	buf := make([]string, 0, n)
	for S := 1; S <= full; S++ {
		buf = buf[:0]
		for v := 0; v < n; v++ {
			if S&(1<<v) != 0 {
				buf = append(buf, vars[v])
			}
		}
		size[S] = m.EstimateVars(buf)
	}
	// dp[S] = size[S] + min over last-added v of dp[S \ {v}]; choice
	// records the arg-min (smallest index on ties → deterministic).
	dp := make([]float64, full+1)
	choice := make([]int, full+1)
	for S := 1; S <= full; S++ {
		best, bestV := math.Inf(1), -1
		for v := 0; v < n; v++ {
			if S&(1<<v) == 0 {
				continue
			}
			if c := dp[S^1<<v]; c < best {
				best, bestV = c, v
			}
		}
		dp[S] = best + size[S]
		choice[S] = bestV
	}
	order := make([]string, n)
	for S, i := full, n-1; S != 0; i-- {
		v := choice[S]
		order[i] = vars[v]
		S ^= 1 << v
	}
	return order
}

func (m *CostModel) orderBeam(vars []string) []string {
	type state struct {
		order []string
		used  map[string]bool
		cost  float64
	}
	states := []*state{{used: make(map[string]bool)}}
	prefix := make([]string, 0, len(vars))
	for step := 0; step < len(vars); step++ {
		var next []*state
		for _, s := range states {
			for _, v := range vars {
				if s.used[v] {
					continue
				}
				prefix = append(prefix[:0], s.order...)
				prefix = append(prefix, v)
				used := make(map[string]bool, len(s.used)+1)
				for u := range s.used {
					used[u] = true
				}
				used[v] = true
				next = append(next, &state{
					order: append(append([]string(nil), s.order...), v),
					used:  used,
					cost:  s.cost + m.EstimateVars(prefix),
				})
			}
		}
		sort.Slice(next, func(i, j int) bool {
			if next[i].cost != next[j].cost {
				return next[i].cost < next[j].cost
			}
			return strings.Join(next[i].order, ",") < strings.Join(next[j].order, ",")
		})
		if len(next) > orderBeamWidth {
			next = next[:orderBeamWidth]
		}
		states = next
	}
	return states[0].order
}

// ChooseOrder picks a Generic-Join variable order for one bag's atoms by
// building a throwaway cost model over exactly those atoms (statistics
// collected from the bag's actual — possibly filtered and projected —
// input relations) and running the order search. It has the signature
// the decomposition layer's WithOrderChooser hook expects; an error
// (e.g. an atom whose relation is missing) makes the caller fall back
// to the structural wcoj.SuggestOrder heuristic.
func ChooseOrder(atoms []wcoj.Atom) ([]string, error) {
	edges := make([]hypergraph.Edge, len(atoms))
	rels := make([]*relation.Relation, len(atoms))
	for i, a := range atoms {
		edges[i] = hypergraph.Edge{Name: fmt.Sprintf("a%d", i), Vars: a.Vars}
		rels[i] = a.Rel
	}
	m := NewCostModel(edges, rels, nil)
	if m == nil {
		return nil, fmt.Errorf("catalog: no statistics available for bag atoms")
	}
	return m.Order(), nil
}
