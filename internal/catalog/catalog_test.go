package catalog

import (
	"math"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/relation"
	"repro/internal/wcoj"
	"repro/internal/workload"
)

// TestMisraGriesNoFalseNegatives pins the summary's guarantee: every
// value whose true frequency exceeds n/k survives, and its counter
// undercounts by at most n/k. Exercised on a Zipf-skewed stream where
// a handful of hubs dominate.
func TestMisraGriesNoFalseNegatives(t *testing.T) {
	rng := workload.NewRand(11)
	z := workload.NewZipf(rng, 1.2, 10000)
	mg := NewMisraGries(heavyK)
	truth := make(map[int64]int)
	for i := 0; i < 200000; i++ {
		v := int64(z.Next())
		truth[v]++
		mg.Add(v)
	}
	if mg.Total() != 200000 {
		t.Fatalf("Total = %d, want 200000", mg.Total())
	}
	slack := mg.Total() / mg.K()
	heavies := 0
	for v, f := range truth {
		c := mg.Count(v)
		if c > f {
			t.Fatalf("counter for %d overcounts: %d > true %d", v, c, f)
		}
		if f > slack {
			heavies++
			if c == 0 {
				t.Fatalf("false negative: value %d has frequency %d > n/k = %d but no counter", v, f, slack)
			}
			if f-c > slack {
				t.Fatalf("counter for %d undercounts by %d, bound is %d", v, f-c, slack)
			}
		}
	}
	if heavies == 0 {
		t.Fatal("stream produced no heavy hitters — the test exercises nothing")
	}
	// Entries are sorted by descending count and mirror the counters.
	entries := mg.Entries()
	for i := 1; i < len(entries); i++ {
		if entries[i].Count > entries[i-1].Count {
			t.Fatalf("Entries not sorted: %v before %v", entries[i-1], entries[i])
		}
	}
}

// TestDistinctCounterExactSmall: below the conversion threshold the
// counter is exact, whatever the duplication pattern.
func TestDistinctCounterExactSmall(t *testing.T) {
	d := NewDistinctCounter()
	for round := 0; round < 50; round++ { // duplicate-heavy: 50 copies each
		for v := int64(0); v < 1000; v++ {
			d.Add(v)
		}
	}
	if !d.Exact() {
		t.Fatal("counter degraded below the exact threshold")
	}
	if got := d.Estimate(); got != 1000 {
		t.Fatalf("Estimate = %g, want exactly 1000", got)
	}
}

// TestDistinctCounterErrorBounds drives the counter past the exact
// threshold on adversarial inputs — sequential values (worst case for
// weak hashes), duplicate-heavy streams, and huge sparse values — and
// checks the estimate stays within 5% (3× the theoretical 1.6%
// standard error at 4096 registers).
func TestDistinctCounterErrorBounds(t *testing.T) {
	cases := []struct {
		name string
		feed func(d *DistinctCounter)
		want float64
	}{
		{"sequential", func(d *DistinctCounter) {
			for v := int64(0); v < 100000; v++ {
				d.Add(v)
			}
		}, 100000},
		{"duplicate-heavy", func(d *DistinctCounter) {
			for round := 0; round < 20; round++ {
				for v := int64(0); v < 30000; v++ {
					d.Add(v)
				}
			}
		}, 30000},
		{"sparse-huge", func(d *DistinctCounter) {
			for v := int64(0); v < 50000; v++ {
				d.Add(v * 1000003)
			}
		}, 50000},
	}
	for _, tc := range cases {
		d := NewDistinctCounter()
		tc.feed(d)
		if d.Exact() {
			t.Fatalf("%s: counter did not degrade past %d values", tc.name, exactDistinctLimit)
		}
		got := d.Estimate()
		if rel := math.Abs(got-tc.want) / tc.want; rel > 0.05 {
			t.Fatalf("%s: estimate %g for %g distinct, relative error %.3f > 0.05", tc.name, got, tc.want, rel)
		}
	}
}

// TestCatalogVersioning pins the invalidation contract: Put replaces,
// Get returns the current entry, and GetVersion rejects entries whose
// stored version differs from the requested one (how the server's
// versioned snapshots shut out stale statistics).
func TestCatalogVersioning(t *testing.T) {
	c := New()
	r1 := relation.New("R", "X", "Y")
	r1.Add(1, 2)
	st1 := Collect(r1)
	c.Put("R", 1, st1)

	if got, v, ok := c.Get("R"); !ok || v != 1 || got != st1 {
		t.Fatalf("Get after first Put = (%v, %d, %v)", got, v, ok)
	}
	if _, ok := c.GetVersion("R", 2); ok {
		t.Fatal("GetVersion(2) matched a version-1 entry")
	}

	// Re-registration at a bumped version replaces the entry.
	r2 := relation.New("R", "X", "Y")
	r2.Add(1, 2)
	r2.Add(3, 4)
	st2 := Collect(r2)
	c.Put("R", 2, st2)
	if got, v, _ := c.Get("R"); v != 2 || got != st2 {
		t.Fatalf("Get after re-registration = (%v, %d), want version-2 stats", got, v)
	}
	if _, ok := c.GetVersion("R", 1); ok {
		t.Fatal("GetVersion(1) still matches after the version-2 Put — stale stats survived invalidation")
	}
	if st, ok := c.GetVersion("R", 2); !ok || st != st2 {
		t.Fatal("GetVersion(2) does not return the fresh stats")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after replacing one name", c.Len())
	}
}

// TestCollectStats sanity-checks one Collect pass end to end.
func TestCollectStats(t *testing.T) {
	r := relation.New("R", "X", "Y")
	for i := 0; i < 100; i++ {
		r.Add(relation.Value(i%10), 7) // X: 10 distinct; Y: constant 7
	}
	st := Collect(r)
	if st.Rows != 100 || len(st.Cols) != 2 {
		t.Fatalf("Rows/Cols = %d/%d", st.Rows, len(st.Cols))
	}
	x, y := st.Cols[0], st.Cols[1]
	if !x.DistinctExact || x.Distinct != 10 || x.Min != 0 || x.Max != 9 {
		t.Fatalf("X stats: %+v", x)
	}
	if y.Distinct != 1 || y.Min != 7 || y.Max != 7 {
		t.Fatalf("Y stats: %+v", y)
	}
	if len(y.Heavy) != 1 || y.Heavy[0].Value != 7 || y.Heavy[0].Count != 100 {
		t.Fatalf("Y heavy hitters: %+v", y.Heavy)
	}
}

// TestCostModelSkewSensitivity: with identical cardinalities, the model
// must cost a join over a skewed shared column higher than one over a
// uniform column — the heavy-hitter refinement at work.
func TestCostModelSkewSensitivity(t *testing.T) {
	mk := func(name string, s float64, seed uint64) *relation.Relation {
		return workload.ZipfRelation(name, 5000, 500, s, 0, workload.UniformWeights(), seed)
	}
	edges := []hypergraph.Edge{hypergraph.E("R1", "B", "A"), hypergraph.E("R2", "B", "C")}
	uniform := NewCostModel(edges, []*relation.Relation{mk("R1", 0, 1), mk("R2", 0, 2)}, nil)
	skewed := NewCostModel(edges, []*relation.Relation{mk("R1", 1.2, 1), mk("R2", 1.2, 2)}, nil)
	if uniform == nil || skewed == nil {
		t.Fatal("cost model construction failed")
	}
	vars := []string{"A", "B", "C"}
	eu, es := uniform.EstimateVars(vars), skewed.EstimateVars(vars)
	if es <= eu {
		t.Fatalf("skewed join estimated at %g, uniform at %g — heavy hitters not reflected", es, eu)
	}
}

// TestChooseOrderValid: the chosen order covers exactly the atoms'
// variables, whatever atom shapes are thrown at it.
func TestChooseOrderValid(t *testing.T) {
	inst := workload.SkewedChordedCycle(100, 50, 3, 1.1, workload.UniformWeights(), 5)
	atoms := make([]wcoj.Atom, len(inst.H.Edges))
	for i, e := range inst.H.Edges {
		atoms[i] = wcoj.Atom{Rel: inst.Rels[i], Vars: e.Vars}
	}
	order, err := ChooseOrder(atoms)
	if err != nil {
		t.Fatal(err)
	}
	want := inst.H.Vars()
	if len(order) != len(want) {
		t.Fatalf("order %v over vars %v", order, want)
	}
	seen := make(map[string]bool)
	for _, v := range order {
		seen[v] = true
	}
	for _, v := range want {
		if !seen[v] {
			t.Fatalf("order %v misses %s", order, v)
		}
	}
}
