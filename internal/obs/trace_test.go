package obs

import (
	"context"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	ctx, tr := NewTrace(context.Background(), "abc123", time.Now())
	cctx, compile := StartSpan(ctx, "compile")
	_, dec := StartSpan(cctx, "decompose")
	dec.SetAttr("shape", "acyclic")
	dec.End()
	_, cost := StartSpan(cctx, "cost-model")
	cost.End()
	compile.End()
	rctx, run := StartSpan(ctx, "run")
	run.Event("first-result")
	_, enum := StartSpan(rctx, "enumerate")
	enum.End()
	run.End()
	tr.Finish(time.Now())

	j := tr.Snapshot()
	if j.TraceID != "abc123" {
		t.Fatalf("trace id = %q", j.TraceID)
	}
	if len(j.Spans) != 2 {
		t.Fatalf("roots = %d, want 2", len(j.Spans))
	}
	c := j.Spans[0]
	if c.Name != "compile" || len(c.Children) != 2 {
		t.Fatalf("compile span wrong: %+v", c)
	}
	if c.Children[0].Name != "decompose" || c.Children[0].Attrs["shape"] != "acyclic" {
		t.Fatalf("decompose child wrong: %+v", c.Children[0])
	}
	r := j.Spans[1]
	if r.Name != "run" || len(r.Events) != 1 || r.Events[0].Name != "first-result" {
		t.Fatalf("run span wrong: %+v", r)
	}
	// Children are contained within parents, spans within the trace.
	for _, s := range j.Spans {
		if s.StartNs < 0 || s.StartNs+s.DurationNs > j.DurationNs {
			t.Fatalf("span %s [%d,+%d] outside trace duration %d", s.Name, s.StartNs, s.DurationNs, j.DurationNs)
		}
		for _, ch := range s.Children {
			if ch.StartNs < s.StartNs || ch.StartNs+ch.DurationNs > s.StartNs+s.DurationNs {
				t.Fatalf("child %s outside parent %s", ch.Name, s.Name)
			}
		}
	}
}

func TestNoTraceIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "anything")
	if s != nil {
		t.Fatal("span without trace should be nil")
	}
	if ctx2 != ctx {
		t.Fatal("context should pass through unchanged")
	}
	// All methods safe on nil.
	s.End()
	s.SetAttr("k", "v")
	s.Event("e")
	var tr *Trace
	tr.Finish(time.Now())
	if got := TraceFrom(ctx); got != nil {
		t.Fatal("TraceFrom on bare ctx should be nil")
	}
	if got := TraceFrom(nil); got != nil { //nolint:staticcheck // nil-safety contract
		t.Fatal("TraceFrom(nil) should be nil")
	}
}

func TestStartSpanZeroAllocWithoutTrace(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		c, s := StartSpan(ctx, "phase")
		s.End()
		_ = c
	})
	if allocs != 0 {
		t.Fatalf("StartSpan without recorder allocated %v times/op, want 0", allocs)
	}
}

func TestAdopt(t *testing.T) {
	src, tr := NewTrace(context.Background(), "id1", time.Now())
	src2, parent := StartSpan(src, "request")
	// A detached context (e.g. the server's base context).
	detached := Adopt(context.Background(), src2)
	_, child := StartSpan(detached, "detached-build")
	child.End()
	parent.End()
	tr.Finish(time.Now())
	j := tr.Snapshot()
	if len(j.Spans) != 1 || len(j.Spans[0].Children) != 1 {
		t.Fatalf("adopted span not nested under request: %+v", j.Spans)
	}
	if j.Spans[0].Children[0].Name != "detached-build" {
		t.Fatalf("child = %q", j.Spans[0].Children[0].Name)
	}
	// Adopt with no trace on src is identity.
	base := context.Background()
	if got := Adopt(base, context.Background()); got != base {
		t.Fatal("Adopt without source trace should return dst unchanged")
	}
}

func TestEndIdempotentAndConcurrent(t *testing.T) {
	ctx, tr := NewTrace(context.Background(), "id2", time.Now())
	_, s := StartSpan(ctx, "stream")
	done := make(chan struct{})
	go func() { s.End(); close(done) }()
	s.End()
	<-done
	s.End()
	tr.Finish(time.Now())
	if j := tr.Snapshot(); j.Spans[0].DurationNs < 0 {
		t.Fatalf("negative duration after concurrent End: %+v", j.Spans[0])
	}
}

func TestFinishClosesOpenSpans(t *testing.T) {
	ctx, tr := NewTrace(context.Background(), "id3", time.Now())
	c1, _ := StartSpan(ctx, "outer")
	StartSpan(c1, "inner-left-open")
	time.Sleep(time.Millisecond)
	tr.Finish(time.Now())
	j := tr.Snapshot()
	in := j.Spans[0].Children[0]
	if in.DurationNs <= 0 {
		t.Fatalf("open span not closed by Finish: %+v", in)
	}
	if in.StartNs+in.DurationNs > j.DurationNs {
		t.Fatalf("finished span exceeds trace duration")
	}
}

func TestTraceStoreRing(t *testing.T) {
	ts := NewTraceStore(2)
	mk := func(id string) *Trace {
		_, tr := NewTrace(context.Background(), id, time.Now())
		return tr
	}
	a, b, c := mk("a"), mk("b"), mk("c")
	ts.Add(a)
	ts.Add(b)
	if ts.Len() != 2 || ts.Get("a") != a || ts.Get("b") != b {
		t.Fatal("store missing fresh traces")
	}
	ts.Add(c) // evicts a
	if ts.Get("a") != nil {
		t.Fatal("oldest trace not evicted")
	}
	if ts.Get("b") != b || ts.Get("c") != c {
		t.Fatal("surviving traces lost")
	}
	ts.Add(nil) // no-op
	if ts.Len() != 2 {
		t.Fatalf("len = %d after nil Add, want 2", ts.Len())
	}
}

func TestNewID(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewID()
		if len(id) != 16 {
			t.Fatalf("id %q not 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestSnapshotWhileRecording(t *testing.T) {
	ctx, tr := NewTrace(context.Background(), "live", time.Now())
	_, s := StartSpan(ctx, "open")
	j := tr.Snapshot() // span still open
	if len(j.Spans) != 1 || j.Spans[0].DurationNs < 0 {
		t.Fatalf("live snapshot wrong: %+v", j.Spans)
	}
	s.End()
}

func BenchmarkStartSpanNoTrace(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := StartSpan(ctx, "phase")
		s.End()
	}
}
