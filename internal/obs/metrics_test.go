package obs

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "Requests.")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name + labels returns the same instance.
	if c2 := r.Counter("reqs_total", "Requests."); c2 != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("inflight", "In-flight.")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestLabeledSeriesAreDistinct(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits_total", "Hits.", L("endpoint", "topk"))
	b := r.Counter("hits_total", "Hits.", L("endpoint", "sample"))
	if a == b {
		t.Fatal("different label values shared a series")
	}
	a.Add(2)
	b.Add(3)
	if a.Value() != 2 || b.Value() != 3 {
		t.Fatalf("label isolation broken: %d, %d", a.Value(), b.Value())
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "X.")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as gauge did not panic")
		}
	}()
	r.Gauge("x_total", "X.")
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2, 3} {
		h.Observe(v)
	}
	// Cumulative: le=0.01 -> 2 (0.005, 0.01 inclusive), le=0.1 -> 3,
	// le=1 -> 4, +Inf -> 6.
	want := []int64{2, 3, 4, 6}
	got := h.Snapshot()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if math.Abs(h.Sum()-5.565) > 1e-9 {
		t.Fatalf("sum = %g, want 5.565", h.Sum())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(DefDurationBuckets)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%100) / 1000)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	cum := h.Snapshot()
	if cum[len(cum)-1] != workers*per {
		t.Fatalf("+Inf bucket = %d, want %d", cum[len(cum)-1], workers*per)
	}
}

// expositionLine matches one sample line of the Prometheus text format.
var expositionLine = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.e+-]+|\+Inf|-Inf|NaN)$`)

// labelPair matches one k="v" pair inside a label set.
var labelPair = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$`)

// parseExposition validates every line of a text-format payload and
// returns sample values keyed by full series name (with labels).
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	typeOf := map[string]string{}
	var lastHelp, lastType string
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			lastHelp = name
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, typ := parts[0], parts[1]
			if name != lastHelp {
				t.Fatalf("line %d: TYPE for %s does not follow its HELP (last HELP %s)", ln+1, name, lastHelp)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: invalid TYPE %q", ln+1, typ)
			}
			if _, dup := typeOf[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			typeOf[name] = typ
			lastType = name
		case line == "":
			t.Fatalf("line %d: blank line in exposition", ln+1)
		default:
			m := expositionLine.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed sample: %q", ln+1, line)
			}
			name, labels, valStr := m[1], m[2], m[3]
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
				"_bucket"), "_sum"), "_count")
			if typeOf[base] == "" && typeOf[name] == "" {
				t.Fatalf("line %d: sample %s before its TYPE", ln+1, name)
			}
			if base != lastType && name != lastType {
				t.Fatalf("line %d: sample %s outside its family block (%s)", ln+1, name, lastType)
			}
			if labels != "" {
				inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
				for _, pair := range splitLabelPairs(inner) {
					if !labelPair.MatchString(pair) {
						t.Fatalf("line %d: malformed label pair %q", ln+1, pair)
					}
				}
			}
			var v float64
			switch valStr {
			case "+Inf":
				v = math.Inf(1)
			case "-Inf":
				v = math.Inf(-1)
			case "NaN":
				v = math.NaN()
			default:
				var err error
				v, err = strconv.ParseFloat(valStr, 64)
				if err != nil {
					t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
				}
			}
			samples[name+labels] = v
		}
	}
	return samples
}

// splitLabelPairs splits `a="b",c="d"` on commas outside quotes.
func splitLabelPairs(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote, escaped := false, false
	for _, r := range s {
		switch {
		case escaped:
			escaped = false
			cur.WriteRune(r)
		case r == '\\':
			escaped = true
			cur.WriteRune(r)
		case r == '"':
			inQuote = !inQuote
			cur.WriteRune(r)
		case r == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

func TestWritePrometheusConformance(t *testing.T) {
	r := NewRegistry()
	r.Counter("anykd_requests_total", "Total requests.", L("endpoint", "topk")).Add(3)
	r.Counter("anykd_requests_total", "Total requests.", L("endpoint", "sample")).Add(1)
	r.Gauge("anykd_inflight", "In-flight requests.").Set(2)
	h := r.Histogram("anykd_ttf_seconds", "Time to first result.",
		[]float64{0.001, 0.01, 0.1}, L("agg", "sum"))
	h.Observe(0.0005)
	h.Observe(0.05)
	r.GaugeFunc("go_goroutines", "Goroutines.", func() float64 { return 12 })
	r.CounterFunc("derived_total", "Derived.", func() float64 { return 99 })
	// A label value that needs escaping.
	r.Counter("esc_total", `Help with \ backslash and
newline.`, L("q", `pa"th\n`)).Inc()
	RegisterRuntime(r)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, sb.String())

	checks := map[string]float64{
		`anykd_requests_total{endpoint="topk"}`:          3,
		`anykd_requests_total{endpoint="sample"}`:        1,
		`anykd_inflight`:                                 2,
		`anykd_ttf_seconds_bucket{agg="sum",le="0.001"}`: 1,
		`anykd_ttf_seconds_bucket{agg="sum",le="0.01"}`:  1,
		`anykd_ttf_seconds_bucket{agg="sum",le="0.1"}`:   2,
		`anykd_ttf_seconds_bucket{agg="sum",le="+Inf"}`:  2,
		`anykd_ttf_seconds_count{agg="sum"}`:             2,
		`go_goroutines`:                                  12,
		`derived_total`:                                  99,
	}
	for k, want := range checks {
		got, ok := samples[k]
		if !ok {
			t.Errorf("missing series %s\nfull output:\n%s", k, sb.String())
			continue
		}
		if got != want {
			t.Errorf("%s = %g, want %g", k, got, want)
		}
	}
	if v := samples[`anykd_ttf_seconds_sum{agg="sum"}`]; math.Abs(v-0.0505) > 1e-9 {
		t.Errorf("histogram sum = %g, want 0.0505", v)
	}
	// Runtime series present.
	for _, name := range []string{"go_heap_alloc_bytes", "go_gc_cycles_total", "go_gc_pause_seconds_total"} {
		if _, ok := samples[name]; !ok {
			t.Errorf("missing runtime series %s", name)
		}
	}
}

func TestWritePrometheusDeterministicOrder(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		r.Counter("b_total", "B.").Inc()
		r.Counter("a_total", "A.", L("x", "1")).Inc()
		r.Counter("a_total", "A.", L("x", "2")).Inc()
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	first := build()
	for i := 0; i < 5; i++ {
		if got := build(); got != first {
			t.Fatalf("non-deterministic output:\n%s\nvs\n%s", first, got)
		}
	}
	// Registration order preserved: b before a.
	if strings.Index(first, "b_total") > strings.Index(first, "a_total") {
		t.Fatalf("families not in registration order:\n%s", first)
	}
}

func TestCounterRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total", "Race.")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	// Scrape concurrently with the increments.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:           "0",
		1.5:         "1.5",
		math.Inf(1): "+Inf",
	}
	for v, want := range cases {
		if got := formatValue(v); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
	if got := formatValue(math.NaN()); got != "NaN" {
		t.Errorf("formatValue(NaN) = %q", got)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "Bench.")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
	_ = fmt.Sprint(c.Value())
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DefDurationBuckets)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(float64(i%1000) / 10000)
			i++
		}
	})
}
