package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// ctx keys are pointers so context lookups compare by identity and the
// no-trace path stays allocation-free (interface conversion of a
// pointer does not allocate).
var (
	traceCtxKey = new(int)
	spanCtxKey  = new(int)
)

// Trace is one recorded request or operation: a tree of timed spans.
// All mutation goes through the trace mutex — tracing is opt-in and
// per-request, so the lock is never on a hot library path; code that
// runs without a recorder never reaches it.
type Trace struct {
	ID    string
	Start time.Time

	mu    sync.Mutex
	end   time.Time
	roots []*Span
}

// Span is one timed phase within a trace. A nil *Span is valid and all
// its methods are no-ops — StartSpan returns nil when no recorder is
// installed, so call sites need no conditionals.
type Span struct {
	Name     string
	Attrs    []Label
	Events   []Event
	Children []*Span

	trace  *Trace
	start  time.Time
	end    time.Time
	closed atomic.Bool
}

// Event is a point-in-time mark within a span (e.g. "first-result").
type Event struct {
	Name string
	At   time.Time
}

// NewID returns a random 16-hex-digit trace id.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; degrade to a
		// fixed id rather than panicking in a serving path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// NewTrace installs a fresh trace recorder with the given id on ctx and
// returns the derived context plus the trace. now is the trace start.
func NewTrace(ctx context.Context, id string, now time.Time) (context.Context, *Trace) {
	t := &Trace{ID: id, Start: now}
	return context.WithValue(ctx, traceCtxKey, t), t
}

// TraceFrom returns the trace installed on ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceCtxKey).(*Trace)
	return t
}

// Adopt copies the trace recorder (and current span position) from src
// onto dst, for work that must run on a detached context — e.g. a plan
// build bounded by the server's base context rather than the request —
// while still reporting into the request's trace.
func Adopt(dst, src context.Context) context.Context {
	t := TraceFrom(src)
	if t == nil {
		return dst
	}
	dst = context.WithValue(dst, traceCtxKey, t)
	if s, _ := src.Value(spanCtxKey).(*Span); s != nil {
		dst = context.WithValue(dst, spanCtxKey, s)
	}
	return dst
}

// StartSpan opens a span under the current span (or as a root) if ctx
// carries a trace, returning the derived context and the span. Without
// a trace — the default for every library-only caller — it returns
// (ctx, nil) and performs no allocation.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil {
		return ctx, nil
	}
	t, _ := ctx.Value(traceCtxKey).(*Trace)
	if t == nil {
		return ctx, nil
	}
	s := &Span{Name: name, trace: t, start: time.Now()}
	t.mu.Lock()
	if parent, _ := ctx.Value(spanCtxKey).(*Span); parent != nil {
		parent.Children = append(parent.Children, s)
	} else {
		t.roots = append(t.roots, s)
	}
	t.mu.Unlock()
	return context.WithValue(ctx, spanCtxKey, s), s
}

// End closes the span. Idempotent and safe to call concurrently (a
// stream's watchdog may race its consumer); the first call wins.
func (s *Span) End() {
	if s == nil || !s.closed.CompareAndSwap(false, true) {
		return
	}
	now := time.Now()
	s.trace.mu.Lock()
	s.end = now
	s.trace.mu.Unlock()
}

// SetAttr attaches a key/value attribute to the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	s.Attrs = append(s.Attrs, Label{Key: key, Value: value})
	s.trace.mu.Unlock()
}

// Event records a point-in-time mark on the span.
func (s *Span) Event(name string) {
	if s == nil {
		return
	}
	now := time.Now()
	s.trace.mu.Lock()
	s.Events = append(s.Events, Event{Name: name, At: now})
	s.trace.mu.Unlock()
}

// Finish marks the trace complete (usually at end of request), closing
// any spans left open.
func (t *Trace) Finish(now time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.end = now
	var closeOpen func(s *Span)
	closeOpen = func(s *Span) {
		if s.closed.CompareAndSwap(false, true) {
			s.end = now
		} else if s.end.IsZero() {
			// A concurrent End won the CAS but has not stored its time
			// yet; it will, under this same mutex, after us.
			s.end = now
		}
		for _, c := range s.Children {
			closeOpen(c)
		}
	}
	for _, r := range t.roots {
		closeOpen(r)
	}
	t.mu.Unlock()
}

// SpanJSON is one node of the serialised span tree. Times are
// nanosecond offsets from the trace start, so the tree is stable
// against wall-clock formatting.
type SpanJSON struct {
	Name       string            `json:"name"`
	StartNs    int64             `json:"start_ns"`
	DurationNs int64             `json:"duration_ns"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Events     []EventJSON       `json:"events,omitempty"`
	Children   []*SpanJSON       `json:"children,omitempty"`
}

// EventJSON is a serialised point-in-time mark.
type EventJSON struct {
	Name string `json:"name"`
	AtNs int64  `json:"at_ns"`
}

// TraceJSON is the serialised form of a whole trace, as returned by
// GET /v1/traces/{id}.
type TraceJSON struct {
	TraceID     string      `json:"trace_id"`
	StartUnixNs int64       `json:"start_unix_ns"`
	DurationNs  int64       `json:"duration_ns"`
	Spans       []*SpanJSON `json:"spans"`
}

// Snapshot renders the trace as its JSON form. Safe to call while
// spans are still being recorded; open spans report duration up to the
// snapshot instant.
func (t *Trace) Snapshot() *TraceJSON {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.end
	if end.IsZero() {
		end = now
	}
	out := &TraceJSON{
		TraceID:     t.ID,
		StartUnixNs: t.Start.UnixNano(),
		DurationNs:  end.Sub(t.Start).Nanoseconds(),
	}
	var conv func(s *Span) *SpanJSON
	conv = func(s *Span) *SpanJSON {
		se := s.end
		if se.IsZero() {
			se = now
		}
		j := &SpanJSON{
			Name:       s.Name,
			StartNs:    s.start.Sub(t.Start).Nanoseconds(),
			DurationNs: se.Sub(s.start).Nanoseconds(),
		}
		if len(s.Attrs) > 0 {
			j.Attrs = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				j.Attrs[a.Key] = a.Value
			}
		}
		for _, e := range s.Events {
			j.Events = append(j.Events, EventJSON{Name: e.Name, AtNs: e.At.Sub(t.Start).Nanoseconds()})
		}
		for _, c := range s.Children {
			j.Children = append(j.Children, conv(c))
		}
		return j
	}
	for _, r := range t.roots {
		out.Spans = append(out.Spans, conv(r))
	}
	return out
}

// TraceStore is a fixed-capacity ring buffer of finished traces keyed
// by id — the backing store for GET /v1/traces/{id}. Adding beyond
// capacity evicts the oldest entry.
type TraceStore struct {
	mu   sync.Mutex
	cap  int
	ring []*Trace
	next int
	byID map[string]*Trace
}

// NewTraceStore returns a store holding up to capacity traces
// (minimum 1).
func NewTraceStore(capacity int) *TraceStore {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceStore{
		cap:  capacity,
		ring: make([]*Trace, capacity),
		byID: make(map[string]*Trace, capacity),
	}
}

// Add inserts a trace, evicting the oldest when full.
func (ts *TraceStore) Add(t *Trace) {
	if t == nil {
		return
	}
	ts.mu.Lock()
	if old := ts.ring[ts.next]; old != nil {
		delete(ts.byID, old.ID)
	}
	ts.ring[ts.next] = t
	ts.byID[t.ID] = t
	ts.next = (ts.next + 1) % ts.cap
	ts.mu.Unlock()
}

// Get returns the trace with the given id, or nil.
func (ts *TraceStore) Get(id string) *Trace {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.byID[id]
}

// Len returns the number of stored traces.
func (ts *TraceStore) Len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.byID)
}
