package obs

import (
	"runtime"
	"sync"
	"time"
)

// memSampler caches runtime.ReadMemStats results so scrapes don't pay
// a stop-the-world per series: the first GaugeFunc read in a scrape
// refreshes the snapshot, the rest within ttl reuse it.
type memSampler struct {
	mu   sync.Mutex
	at   time.Time
	ttl  time.Duration
	stat runtime.MemStats
}

func (m *memSampler) get() *runtime.MemStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if time.Since(m.at) > m.ttl {
		runtime.ReadMemStats(&m.stat)
		m.at = time.Now()
	}
	return &m.stat
}

// RegisterRuntime registers the Go runtime series (goroutines, heap,
// GC) on r. Heap and GC values come from a shared MemStats snapshot
// refreshed at most once per second.
func RegisterRuntime(r *Registry) {
	ms := &memSampler{ttl: time.Second}
	r.GaugeFunc("go_goroutines", "Number of live goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.", func() float64 {
		return float64(ms.get().HeapAlloc)
	})
	r.GaugeFunc("go_heap_objects", "Number of allocated heap objects.", func() float64 {
		return float64(ms.get().HeapObjects)
	})
	r.CounterFunc("go_gc_cycles_total", "Completed GC cycles.", func() float64 {
		return float64(ms.get().NumGC)
	})
	r.CounterFunc("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", func() float64 {
		return float64(ms.get().PauseTotalNs) / 1e9
	})
}
