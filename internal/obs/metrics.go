// Package obs is the stdlib-only observability layer of the
// reproduction: lock-free metric primitives with a Prometheus
// text-exposition writer, and a lightweight span recorder threaded
// through context.Context.
//
// Metrics. A Registry holds counters, gauges, and fixed-bucket
// histograms, each optionally labeled. Hot-path updates are single
// atomic operations (histograms add one CAS for the float sum), so
// instrumenting a streaming loop costs nanoseconds and never takes a
// lock; the registry mutex is touched only at registration and scrape
// time. WritePrometheus renders the whole registry in the Prometheus
// text exposition format (version 0.0.4), which is what the serving
// layer's GET /metrics returns.
//
// Tracing. NewTrace installs a recorder on a context; StartSpan then
// opens one timed span per engine phase (decompose, reduce,
// materialize, instantiate, enumerate, ...) wherever that context
// flows. When no recorder is installed — every library-only caller —
// StartSpan returns a nil span whose methods are no-ops, and the whole
// plumbing allocates nothing, so un-traced execution pays a single
// context lookup per phase. Finished traces go into a TraceStore ring
// buffer, which backs the serving layer's GET /v1/traces/{id}.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension: a key/value pair rendered into the
// series' label set.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing counter. The zero value is
// ready to use; Add with a negative delta is a programming error the
// type does not guard against.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the exposition to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// atomicFloat is a float64 updated with CAS — the histogram sum.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) Value() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram is a fixed-bucket histogram. Observe is lock-free: one
// atomic add into the bucket, one into the total count, one CAS loop
// for the float sum. Buckets are cumulative only at exposition time —
// internally each slot counts its own interval, so concurrent Observe
// calls never contend beyond the hardware atomics.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf is implicit
	counts []atomic.Int64
	total  atomic.Int64
	sum    atomicFloat
}

// NewHistogram returns an unregistered histogram with the given
// ascending upper bounds (the +Inf bucket is implicit). Most callers
// want Registry.Histogram instead.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v; the last slot is +Inf.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Snapshot returns the cumulative per-bucket counts aligned with
// Bounds() plus the +Inf bucket as the final entry.
func (h *Histogram) Snapshot() []int64 {
	out := make([]int64, len(h.counts))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// Bounds returns the configured upper bounds (without +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// DefDurationBuckets are the default latency buckets in seconds,
// spanning 100µs to 10s — wide enough for both per-result delays and
// whole-request times.
var DefDurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// series is one labeled instance of a metric family.
type series struct {
	labels []Label
	// exactly one of these is set
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
	counterFunc func() float64
	gaugeFunc   func() float64
}

// family is one metric name with its help text, type, and series.
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	order  []string
	series map[string]*series
}

// Registry is a set of metric families. The zero value is not usable;
// call NewRegistry. Registration is get-or-create: asking for the same
// name and label set twice returns the same metric, so instrumented
// code can resolve its series once and hold the pointer. Registering
// one name with two different types panics — a programming error.
type Registry struct {
	mu       sync.Mutex
	order    []string
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Key + "\x00" + l.Value
	}
	return strings.Join(parts, "\x01")
}

// getSeries returns (creating if needed) the series for name+labels,
// enforcing one type per family.
func (r *Registry) getSeries(name, help, typ string, labels []Label, make_ func() *series) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: map[string]*series{}}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.typ, typ))
	}
	key := labelKey(labels)
	s, ok := f.series[key]
	if !ok {
		s = make_()
		s.labels = append([]Label(nil), labels...)
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter returns the counter for name+labels, registering it on first
// use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.getSeries(name, help, "counter", labels, func() *series {
		return &series{counter: &Counter{}}
	})
	return s.counter
}

// Gauge returns the gauge for name+labels, registering it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.getSeries(name, help, "gauge", labels, func() *series {
		return &series{gauge: &Gauge{}}
	})
	return s.gauge
}

// Histogram returns the histogram for name+labels with the given upper
// bounds, registering it on first use (the bounds of an existing series
// win).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.getSeries(name, help, "histogram", labels, func() *series {
		return &series{hist: NewHistogram(bounds)}
	})
	return s.hist
}

// CounterFunc registers a counter whose value is read from f at scrape
// time — for counters another subsystem already maintains.
func (r *Registry) CounterFunc(name, help string, f func() float64, labels ...Label) {
	r.getSeries(name, help, "counter", labels, func() *series {
		return &series{counterFunc: f}
	})
}

// GaugeFunc registers a gauge whose value is read from f at scrape
// time.
func (r *Registry) GaugeFunc(name, help string, f func() float64, labels ...Label) {
	r.getSeries(name, help, "gauge", labels, func() *series {
		return &series{gaugeFunc: f}
	})
}

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// escapeHelp escapes a HELP string per the text exposition format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// renderLabels renders a label set (plus an optional extra label, used
// for histogram le) as {k="v",...}; empty sets render as "".
func renderLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, escapeLabel(l.Value))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// formatValue renders a sample value; Prometheus accepts Go's shortest
// float representation, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0")
}

// WritePrometheus renders every registered family in the Prometheus
// text exposition format: families in registration order, one HELP and
// TYPE comment per family, then each series' samples (histograms expand
// into cumulative _bucket lines plus _sum and _count). The write
// snapshots each metric with its own atomic loads; a scrape concurrent
// with updates sees per-series values that are each internally
// consistent.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	type famSnap struct {
		f      *family
		series []*series
	}
	fams := make([]famSnap, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		fs := famSnap{f: f}
		for _, key := range f.order {
			fs.series = append(fs.series, f.series[key])
		}
		fams = append(fams, fs)
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, fs := range fams {
		f := fs.f
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range fs.series {
			switch {
			case s.counter != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, renderLabels(s.labels), s.counter.Value())
			case s.counterFunc != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(s.labels), formatValue(s.counterFunc()))
			case s.gauge != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, renderLabels(s.labels), s.gauge.Value())
			case s.gaugeFunc != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(s.labels), formatValue(s.gaugeFunc()))
			case s.hist != nil:
				cum := s.hist.Snapshot()
				for i, bound := range s.hist.Bounds() {
					fmt.Fprintf(&b, "%s_bucket%s %d\n",
						f.name, renderLabels(s.labels, L("le", formatValue(bound))), cum[i])
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n",
					f.name, renderLabels(s.labels, L("le", "+Inf")), cum[len(cum)-1])
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, renderLabels(s.labels), formatValue(s.hist.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, renderLabels(s.labels), s.hist.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
