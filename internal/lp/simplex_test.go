package lp

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

// Triangle query fractional edge cover: three edges {A,B},{B,C},{C,A};
// constraints per vertex. Optimal cover is 1/2 each, value 3/2.
func TestTriangleEdgeCover(t *testing.T) {
	c := []float64{1, 1, 1}
	a := [][]float64{
		{1, 0, 1}, // A covered by e1, e3
		{1, 1, 0}, // B
		{0, 1, 1}, // C
	}
	b := []float64{1, 1, 1}
	sol, err := SolveCovering(c, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Value, 1.5) {
		t.Fatalf("triangle ρ* = %g, want 1.5", sol.Value)
	}
	for i, x := range sol.X {
		if !approx(x, 0.5) {
			t.Errorf("x[%d] = %g, want 0.5", i, x)
		}
	}
}

// 4-cycle: edges {A,B},{B,C},{C,D},{D,A}; ρ* = 2 (x = 1/2 each or two
// opposite edges at 1).
func TestFourCycleEdgeCover(t *testing.T) {
	c := []float64{1, 1, 1, 1}
	a := [][]float64{
		{1, 0, 0, 1}, // A
		{1, 1, 0, 0}, // B
		{0, 1, 1, 0}, // C
		{0, 0, 1, 1}, // D
	}
	b := []float64{1, 1, 1, 1}
	sol, err := SolveCovering(c, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Value, 2) {
		t.Fatalf("4-cycle ρ* = %g, want 2", sol.Value)
	}
}

// Path query R(A,B), S(B,C): ρ* = 2 (both edges needed: A only in R, C
// only in S).
func TestPathEdgeCover(t *testing.T) {
	c := []float64{1, 1}
	a := [][]float64{
		{1, 0}, // A
		{1, 1}, // B
		{0, 1}, // C
	}
	b := []float64{1, 1, 1}
	sol, err := SolveCovering(c, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Value, 2) {
		t.Fatalf("path ρ* = %g, want 2", sol.Value)
	}
}

// Star query R1(A,B1), R2(A,B2), R3(A,B3): every Bi needs its own edge,
// so ρ* = 3.
func TestStarEdgeCover(t *testing.T) {
	c := []float64{1, 1, 1}
	a := [][]float64{
		{1, 1, 1}, // A
		{1, 0, 0}, // B1
		{0, 1, 0}, // B2
		{0, 0, 1}, // B3
	}
	b := []float64{1, 1, 1, 1}
	sol, err := SolveCovering(c, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Value, 3) {
		t.Fatalf("star ρ* = %g, want 3", sol.Value)
	}
}

// Weighted objective: AGM with different relation sizes. Triangle with
// |R|=n, |S|=n, |T|=1: cover should put weight on the cheap edge.
// Minimize x1·log(n) + x2·log(n) + x3·0 — optimal is x3=1 (covers C and
// A), x1=1 covers B... constraints: A: x1+x3≥1, B: x1+x2≥1, C: x2+x3≥1.
// With costs (1,1,0): optimum x3=1, then A,C covered; B needs x1+x2≥1 at
// cost 1. Total 1.
func TestWeightedCover(t *testing.T) {
	c := []float64{1, 1, 0}
	a := [][]float64{
		{1, 0, 1},
		{1, 1, 0},
		{0, 1, 1},
	}
	b := []float64{1, 1, 1}
	sol, err := SolveCovering(c, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Value, 1) {
		t.Fatalf("weighted cover = %g, want 1", sol.Value)
	}
}

func TestInfeasible(t *testing.T) {
	// 0·x ≥ 1 is infeasible.
	_, err := SolveCovering([]float64{1}, [][]float64{{0}}, []float64{1})
	if err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestNoConstraints(t *testing.T) {
	sol, err := SolveCovering([]float64{5, 7}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value != 0 || sol.X[0] != 0 || sol.X[1] != 0 {
		t.Fatalf("unconstrained minimum should be x=0, got %v", sol)
	}
}

func TestDimensionErrors(t *testing.T) {
	if _, err := SolveCovering([]float64{1}, [][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("mismatched b length should fail")
	}
	if _, err := SolveCovering([]float64{1}, [][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("mismatched row length should fail")
	}
	if _, err := SolveCovering([]float64{1}, [][]float64{{1}}, []float64{-1}); err == nil {
		t.Error("negative b should fail")
	}
}

func TestRedundantConstraint(t *testing.T) {
	// Same constraint twice; still fine.
	c := []float64{1}
	a := [][]float64{{1}, {1}}
	b := []float64{1, 1}
	sol, err := SolveCovering(c, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Value, 1) {
		t.Fatalf("value = %g, want 1", sol.Value)
	}
}

func TestZeroRHSConstraint(t *testing.T) {
	// x ≥ 0 constraint with b=0 is trivially satisfied at x=0.
	sol, err := SolveCovering([]float64{1}, [][]float64{{1}}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Value, 0) {
		t.Fatalf("value = %g, want 0", sol.Value)
	}
}

// Property: for random feasible covering problems, the solution is
// feasible and no single coordinate descent move improves it (local
// optimality certificate; full optimality is checked on the known cases
// above).
func TestSolutionFeasibleProperty(t *testing.T) {
	f := func(seed uint32) bool {
		rnd := seed
		next := func() float64 {
			rnd = rnd*1664525 + 1013904223
			return float64(rnd%1000)/1000 + 0.1
		}
		n, m := 3, 4
		c := make([]float64, n)
		for j := range c {
			c[j] = next()
		}
		a := make([][]float64, m)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				if rnd = rnd*1664525 + 1013904223; rnd%3 == 0 {
					a[i][j] = next()
				}
			}
		}
		// Ensure feasibility: add a dense row of ones? No — ensure every
		// row has at least one positive entry.
		for i := range a {
			hasPos := false
			for _, v := range a[i] {
				if v > 0 {
					hasPos = true
				}
			}
			if !hasPos {
				a[i][0] = 1
			}
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = next()
		}
		sol, err := SolveCovering(c, a, b)
		if err != nil {
			return false
		}
		// Feasibility.
		for i := 0; i < m; i++ {
			lhs := 0.0
			for j := 0; j < n; j++ {
				lhs += a[i][j] * sol.X[j]
			}
			if lhs < b[i]-1e-6 {
				return false
			}
		}
		// Objective consistency.
		obj := 0.0
		for j := 0; j < n; j++ {
			if sol.X[j] < -1e-9 {
				return false
			}
			obj += c[j] * sol.X[j]
		}
		return math.Abs(obj-sol.Value) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: scaling the objective scales the optimum.
func TestObjectiveScalingProperty(t *testing.T) {
	a := [][]float64{{1, 0, 1}, {1, 1, 0}, {0, 1, 1}}
	b := []float64{1, 1, 1}
	f := func(scaleRaw uint8) bool {
		scale := float64(scaleRaw%10) + 1
		c1 := []float64{1, 1, 1}
		c2 := []float64{scale, scale, scale}
		s1, err1 := SolveCovering(c1, a, b)
		s2, err2 := SolveCovering(c2, a, b)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(s2.Value-scale*s1.Value) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
