// Package lp implements a small dense two-phase simplex solver for linear
// programs of the covering form
//
//	minimize    c·x
//	subject to  A·x ≥ b,  x ≥ 0
//
// which is exactly the shape of the fractional-edge-cover LP behind the
// AGM bound (§3 of the tutorial): one variable per hyperedge, one
// covering constraint per query variable. Problems in this module are
// tiny (a handful of variables and constraints), so a dense tableau with
// Bland's anti-cycling rule is simple and robust.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// ErrInfeasible is returned when no x ≥ 0 satisfies A·x ≥ b.
var ErrInfeasible = errors.New("lp: infeasible")

// ErrUnbounded is returned when the objective can decrease without bound.
var ErrUnbounded = errors.New("lp: unbounded")

const eps = 1e-9

// Solution holds an optimal solution of a covering LP.
type Solution struct {
	X     []float64 // optimal variable assignment
	Value float64   // optimal objective c·X
}

// SolveCovering minimizes c·x subject to A·x ≥ b, x ≥ 0. All entries of b
// must be ≥ 0 (true for covering problems). A has one row per constraint.
func SolveCovering(c []float64, a [][]float64, b []float64) (*Solution, error) {
	n := len(c)
	m := len(a)
	if len(b) != m {
		return nil, fmt.Errorf("lp: %d constraint rows but %d right-hand sides", m, len(b))
	}
	for i, row := range a {
		if len(row) != n {
			return nil, fmt.Errorf("lp: row %d has %d coefficients, want %d", i, len(row), n)
		}
		if b[i] < 0 {
			return nil, fmt.Errorf("lp: negative right-hand side b[%d]=%g not supported", i, b[i])
		}
	}
	if m == 0 {
		return &Solution{X: make([]float64, n), Value: 0}, nil
	}

	// Tableau columns: n original, m surplus, m artificial, 1 RHS.
	// Row equations: A·x − s + art = b.
	cols := n + 2*m + 1
	tab := make([][]float64, m)
	basis := make([]int, m)
	for i := 0; i < m; i++ {
		tab[i] = make([]float64, cols)
		copy(tab[i], a[i])
		tab[i][n+i] = -1      // surplus
		tab[i][n+m+i] = 1     // artificial
		tab[i][cols-1] = b[i] // RHS (≥ 0 by precondition)
		basis[i] = n + m + i  // artificials start basic
	}

	// Phase 1: minimize the sum of artificials.
	phase1 := make([]float64, cols-1)
	for i := 0; i < m; i++ {
		phase1[n+m+i] = 1
	}
	obj, err := iterate(tab, basis, phase1, cols, -1)
	if err != nil {
		return nil, err
	}
	if obj > eps {
		return nil, ErrInfeasible
	}
	// Drive any remaining (degenerate, zero-valued) artificials out of the
	// basis so phase 2 cannot reactivate them.
	for i := 0; i < m; i++ {
		if basis[i] < n+m {
			continue
		}
		pivoted := false
		for j := 0; j < n+m; j++ {
			if math.Abs(tab[i][j]) > eps {
				pivot(tab, basis, i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Entire row is zero: the constraint is redundant; leave the
			// artificial basic at value zero. Forbid it from re-entering
			// by keeping it out of the phase-2 pricing below.
			continue
		}
	}

	// Phase 2: minimize the true objective, artificial columns frozen.
	phase2 := make([]float64, cols-1)
	copy(phase2, c)
	val, err := iterate(tab, basis, phase2, cols, n+m)
	if err != nil {
		return nil, err
	}
	x := make([]float64, n)
	for i, bi := range basis {
		if bi < n {
			x[bi] = tab[i][cols-1]
		}
	}
	return &Solution{X: x, Value: val}, nil
}

// iterate runs primal simplex on the tableau until optimal, minimizing
// cost. Columns with index ≥ colLimit are excluded from pricing when
// colLimit ≥ 0. It returns the objective value.
func iterate(tab [][]float64, basis []int, cost []float64, cols, colLimit int) (float64, error) {
	m := len(tab)
	limit := len(cost)
	if colLimit >= 0 && colLimit < limit {
		limit = colLimit
	}
	// Reduced costs are computed directly: r_j = c_j − Σ_i c_{basis[i]}·tab[i][j].
	for iterCount := 0; ; iterCount++ {
		if iterCount > 10000 {
			return 0, errors.New("lp: iteration limit exceeded (cycling?)")
		}
		// Bland's rule: entering column = smallest index with r_j < -eps.
		enter := -1
		for j := 0; j < limit; j++ {
			r := cost[j]
			for i := 0; i < m; i++ {
				if cb := cost[basis[i]]; cb != 0 {
					r -= cb * tab[i][j]
				}
			}
			if r < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			// Optimal: objective = Σ c_basis · RHS.
			obj := 0.0
			for i := 0; i < m; i++ {
				if cb := cost[basis[i]]; cb != 0 {
					obj += cb * tab[i][cols-1]
				}
			}
			return obj, nil
		}
		// Leaving row: min ratio RHS/coeff over positive coefficients,
		// ties broken by smallest basis index (Bland).
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if tab[i][enter] > eps {
				ratio := tab[i][cols-1] / tab[i][enter]
				if ratio < bestRatio-eps || (math.Abs(ratio-bestRatio) <= eps && (leave < 0 || basis[i] < basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return 0, ErrUnbounded
		}
		pivot(tab, basis, leave, enter)
	}
}

// pivot makes column enter basic in row leave.
func pivot(tab [][]float64, basis []int, leave, enter int) {
	m := len(tab)
	cols := len(tab[0])
	p := tab[leave][enter]
	for j := 0; j < cols; j++ {
		tab[leave][j] /= p
	}
	for i := 0; i < m; i++ {
		if i == leave {
			continue
		}
		f := tab[i][enter]
		if f == 0 {
			continue
		}
		for j := 0; j < cols; j++ {
			tab[i][j] -= f * tab[leave][j]
		}
	}
	basis[leave] = enter
}
