package hypergraph

// FuzzDecompose exercises the GHD search on generator-driven query
// shapes — connected and disconnected, acyclic and cyclic, with
// repeated variables and duplicate edges — and checks the structural
// contract every accepted decomposition documents: each edge fully
// contained in at least one bag, Contains consistent with Bags, no bag
// subsumed by another, and a deterministic result (the facade caches
// plans under the assumption that equal queries decompose equally).
//
//	go test -fuzz FuzzDecompose -fuzztime 30s ./internal/hypergraph

import (
	"fmt"
	"reflect"
	"testing"
)

// fuzzEdges decodes fuzz bytes into up to five edges over the variable
// pool A..H — small enough that the exhaustive elimination search runs
// on most inputs, large enough to cross the greedy threshold when many
// distinct variables appear.
func fuzzEdges(data []byte) []Edge {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	nEdges := 1 + int(next()%5)
	edges := make([]Edge, 0, nEdges)
	for i := 0; i < nEdges; i++ {
		arity := 1 + int(next()%3)
		vars := make([]string, 0, arity)
		for j := 0; j < arity; j++ {
			vars = append(vars, string(rune('A'+next()%8)))
		}
		edges = append(edges, E(fmt.Sprintf("R%d", i+1), vars...))
	}
	return edges
}

func FuzzDecompose(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("\x02\x01\x00\x01\x01\x01\x01\x02"))         // 2-path
	f.Add([]byte("\x02\x01\x00\x01\x01\x01\x02\x01\x02\x00")) // triangle
	f.Add([]byte("\x04\x01\x00\x07\x01\x02\x03\x01\x04\x05")) // disconnected
	f.Fuzz(func(t *testing.T, data []byte) {
		edges := fuzzEdges(data)
		h := New(edges...)
		d, err := h.Decompose()
		if err != nil {
			t.Fatalf("Decompose failed on non-empty hypergraph %v: %v", h, err)
		}
		if len(d.Bags) == 0 || len(d.Contains) != len(d.Bags) {
			t.Fatalf("malformed decomposition %v for %v", d, h)
		}
		inBag := func(bag []string, vars []string) bool {
			set := make(map[string]bool, len(bag))
			for _, v := range bag {
				set[v] = true
			}
			for _, v := range vars {
				if !set[v] {
					return false
				}
			}
			return true
		}
		covered := make([]bool, len(edges))
		for bi, contains := range d.Contains {
			for _, ei := range contains {
				if ei < 0 || ei >= len(edges) {
					t.Fatalf("Contains[%d] references edge %d of %d", bi, ei, len(edges))
				}
				if !inBag(d.Bags[bi], edges[ei].Vars) {
					t.Fatalf("bag %v listed as containing edge %v but does not cover it", d.Bags[bi], edges[ei])
				}
				covered[ei] = true
			}
		}
		for ei, ok := range covered {
			if !ok {
				t.Fatalf("edge %v not contained in any bag of %v", edges[ei], d)
			}
		}
		for i := range d.Bags {
			for j := range d.Bags {
				if i != j && inBag(d.Bags[j], d.Bags[i]) {
					t.Fatalf("bag %v subsumed by bag %v — bags must be maximal", d.Bags[i], d.Bags[j])
				}
			}
		}
		// Same hypergraph, same decomposition: the search must be
		// deterministic for plan caching to be sound.
		d2, err := New(edges...).Decompose()
		if err != nil || !reflect.DeepEqual(d, d2) {
			t.Fatalf("Decompose is nondeterministic:\n%v\nvs\n%v (err %v)", d, d2, err)
		}
	})
}
