package hypergraph

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/lp"
)

// Decomposition is a generalized hypertree decomposition of the query
// hypergraph: a set of variable bags whose own hypergraph is α-acyclic,
// such that every query edge is fully contained in at least one bag.
// Evaluating each bag (a join of the relations it contains) and then
// running any acyclic-query algorithm over the bags computes the
// original cyclic query.
type Decomposition struct {
	// Bags are the variable sets, each sorted. Bags are maximal (no bag
	// is a subset of another) and listed in a deterministic order.
	Bags [][]string
	// Contains[b] lists the indices of edges e with Vars(e) ⊆ Bags[b],
	// ascending. Every edge index appears in at least one bag.
	Contains [][]int
	// Width is the width estimate that selected this decomposition: the
	// maximum over bags of the fractional edge cover number of the bag's
	// variables (edges may cover a bag variable from outside the bag, so
	// this estimates the fractional hypertree width, not the bag's exact
	// materialised size).
	Width float64
	// EstBagSizes holds the coster's per-bag materialization estimates,
	// aligned with Bags. Nil when the decomposition was chosen purely
	// structurally (DecomposeCosted with a nil coster / Decompose).
	EstBagSizes []float64
	// EstCost is the total estimated materialization cost (the sum of
	// EstBagSizes); 0 when the decomposition was chosen structurally.
	EstCost float64
}

// BagCoster estimates the cost of materializing one candidate bag (the
// join of the query's relations projected to the bag's variables). It
// is implemented by catalog.CostModel; defining the interface here lets
// the decomposition search consume data statistics without importing
// the catalog package.
type BagCoster interface {
	BagCost(bag []string) float64
}

// String renders the decomposition as {A,B,C} {A,C,D} (width w).
func (d *Decomposition) String() string {
	parts := make([]string, len(d.Bags))
	for i, b := range d.Bags {
		parts[i] = "{" + strings.Join(b, ",") + "}"
	}
	return fmt.Sprintf("%s (width %.3g)", strings.Join(parts, " "), d.Width)
}

// maxExhaustiveVars bounds the exhaustive elimination-order search: up
// to this many variables every permutation is tried (at most 7! = 5040
// candidate orders, which collapse to far fewer distinct bag sets and
// are deduplicated before the width LP runs).
const maxExhaustiveVars = 7

// Decompose searches for a low-width generalized hypertree decomposition
// of the hypergraph. Candidate decompositions come from vertex
// elimination orders — every permutation for small queries, min-degree
// and min-fill greedy orders for larger ones — scored by the maximum
// fractional edge cover over their bags; ties prefer fewer bags, then
// smaller bags. The trivial single-bag decomposition (all variables in
// one bag, evaluated by one Generic-Join) is always a candidate, so
// Decompose succeeds for every connected or disconnected query shape.
func (h *Hypergraph) Decompose() (*Decomposition, error) {
	return h.DecomposeCosted(nil)
}

// decompBeamWidth bounds the costed beam search over elimination orders
// used by DecomposeCosted on queries too large for exhaustive
// enumeration.
const decompBeamWidth = 4

// DecomposeCosted is Decompose with an optional data-aware bag coster.
// A nil coster reproduces the structural search exactly. With a coster,
// candidates are ranked by total estimated bag materialization cost
// (Σ coster.BagCost(bag)) — the structural criteria only break
// near-ties — and, for queries beyond the exhaustive range, a beam
// search over elimination orders guided by the coster contributes extra
// candidates. The winning decomposition then carries the coster's
// per-bag estimates in EstBagSizes/EstCost.
func (h *Hypergraph) DecomposeCosted(coster BagCoster) (*Decomposition, error) {
	if len(h.Edges) == 0 {
		return nil, fmt.Errorf("hypergraph: cannot decompose an empty hypergraph")
	}
	vars := h.Vars()

	// Collect candidate bag sets, deduplicated by canonical key.
	candidates := make(map[string][][]string)
	add := func(bags [][]string) {
		candidates[bagsKey(bags)] = bags
	}

	// The trivial fallback: one bag holding every variable.
	add([][]string{append([]string(nil), vars...)})

	if len(vars) <= maxExhaustiveVars {
		permute(vars, func(order []string) {
			add(h.eliminationBags(order))
		})
	} else {
		add(h.eliminationBags(h.greedyOrder(false)))
		add(h.eliminationBags(h.greedyOrder(true)))
		if coster != nil {
			for _, bags := range h.beamEliminationBags(coster, decompBeamWidth) {
				add(bags)
			}
		}
	}

	// Score candidates; deterministic iteration via sorted keys.
	keys := make([]string, 0, len(candidates))
	for k := range candidates {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var best *Decomposition
	bestCost := 0.0
	for _, k := range keys {
		bags := candidates[k]
		width, err := h.maxBagCover(bags)
		if err != nil {
			continue // LP failure on one candidate is not fatal
		}
		cand := &Decomposition{Bags: bags, Width: width}
		if coster == nil {
			if best == nil || better(cand, best) {
				best = cand
			}
			continue
		}
		cost := totalBagCost(coster, bags)
		if best == nil || costedBetter(cand, cost, best, bestCost) {
			best, bestCost = cand, cost
		}
	}
	if best == nil {
		return nil, fmt.Errorf("hypergraph: decomposition search failed for %s", h)
	}
	// A disconnected query (cartesian product of components) yields a
	// disconnected bag set, which the T-DP layer rejects (no join tree
	// without cartesian tree edges). Merge the smallest bag of each
	// component into one union bag so the cross product happens inside
	// a single Generic-Join bag instead. Note the union bag joins the
	// components' *bag contents* (which may be partial joins larger
	// than each component's output), so this fallback trades
	// materialisation cost for accepting the shape at all — fine for
	// the rare disconnected query, not a width-optimal plan.
	if merged := connectBags(best.Bags); len(merged) != len(best.Bags) {
		w, err := h.maxBagCover(merged)
		if err != nil {
			return nil, err
		}
		best = &Decomposition{Bags: merged, Width: w}
	}
	if coster != nil {
		best.EstBagSizes = make([]float64, len(best.Bags))
		best.EstCost = 0
		for i, b := range best.Bags {
			best.EstBagSizes[i] = coster.BagCost(b)
			best.EstCost += best.EstBagSizes[i]
		}
	}
	best.Contains = h.containment(best.Bags)
	for ei := range h.Edges {
		found := false
		for _, c := range best.Contains {
			for _, e := range c {
				if e == ei {
					found = true
				}
			}
		}
		if !found {
			return nil, fmt.Errorf("hypergraph: edge %s not contained in any bag of %s", h.Edges[ei].Name, best)
		}
	}
	return best, nil
}

// better reports whether candidate a beats b: lower width, then fewer
// bags, then smaller total bag size.
func better(a, b *Decomposition) bool {
	const eps = 1e-9
	if a.Width < b.Width-eps {
		return true
	}
	if a.Width > b.Width+eps {
		return false
	}
	if len(a.Bags) != len(b.Bags) {
		return len(a.Bags) < len(b.Bags)
	}
	return totalBagVars(a.Bags) < totalBagVars(b.Bags)
}

func totalBagVars(bags [][]string) int {
	n := 0
	for _, b := range bags {
		n += len(b)
	}
	return n
}

// costedBetter ranks candidate a (estimated cost ca) against b (cost
// cb): a clearly cheaper candidate wins; within a relative epsilon the
// structural criteria of better() decide, keeping the choice
// deterministic when estimates coincide.
func costedBetter(a *Decomposition, ca float64, b *Decomposition, cb float64) bool {
	tol := 1e-6 * (1 + math.Max(ca, cb))
	if ca < cb-tol {
		return true
	}
	if ca > cb+tol {
		return false
	}
	return better(a, b)
}

// totalBagCost sums the coster's estimate over a candidate's bags.
func totalBagCost(coster BagCoster, bags [][]string) float64 {
	c := 0.0
	for _, b := range bags {
		c += coster.BagCost(b)
	}
	return c
}

// beamEliminationBags beam-searches vertex elimination orders, scoring
// a partial order by the accumulated estimated cost of the bags it has
// created, and returns the bag sets of the surviving orders. It
// complements the min-degree/min-fill candidates on queries too large
// for exhaustive permutation.
func (h *Hypergraph) beamEliminationBags(coster BagCoster, width int) [][][]string {
	type state struct {
		order []string
		adj   map[string]map[string]bool
		cost  float64
	}
	vars := h.Vars()
	states := []*state{{adj: h.primalAdjacency()}}
	for step := 0; step < len(vars); step++ {
		var next []*state
		for _, s := range states {
			for v, nbrs := range s.adj {
				bag := make([]string, 0, len(nbrs)+1)
				bag = append(bag, v)
				for u := range nbrs {
					bag = append(bag, u)
				}
				sort.Strings(bag)
				next = append(next, &state{
					order: append(append([]string(nil), s.order...), v),
					adj:   eliminateClone(s.adj, v),
					cost:  s.cost + coster.BagCost(bag),
				})
			}
		}
		// Deterministic despite map iteration: sort expansions by cost,
		// ties by the order string.
		sort.Slice(next, func(i, j int) bool {
			if next[i].cost != next[j].cost {
				return next[i].cost < next[j].cost
			}
			return strings.Join(next[i].order, ",") < strings.Join(next[j].order, ",")
		})
		if len(next) > width {
			next = next[:width]
		}
		states = next
	}
	out := make([][][]string, 0, len(states))
	for _, s := range states {
		out = append(out, h.eliminationBags(s.order))
	}
	return out
}

// eliminateClone returns a copy of adj with v eliminated: v removed and
// its neighbours pairwise connected (fill edges). The input is not
// modified.
func eliminateClone(adj map[string]map[string]bool, v string) map[string]map[string]bool {
	nbrs := adj[v]
	out := make(map[string]map[string]bool, len(adj)-1)
	for u, m := range adj {
		if u == v {
			continue
		}
		cm := make(map[string]bool, len(m)+len(nbrs))
		for w := range m {
			if w != v {
				cm[w] = true
			}
		}
		out[u] = cm
	}
	for u := range nbrs {
		for w := range nbrs {
			if u != w {
				out[u][w] = true
			}
		}
	}
	return out
}

// eliminationBags builds the tree-decomposition bags induced by a vertex
// elimination order: each eliminated variable's bag is the variable plus
// its current neighbours in the (progressively filled-in) primal graph.
// Non-maximal bags are dropped. The resulting bag hypergraph is always
// α-acyclic, and every query edge lies inside the bag of its
// first-eliminated variable.
func (h *Hypergraph) eliminationBags(order []string) [][]string {
	adj := h.primalAdjacency()
	var bags [][]string
	for _, v := range order {
		nbrs := adj[v]
		bag := make([]string, 0, len(nbrs)+1)
		bag = append(bag, v)
		for u := range nbrs {
			bag = append(bag, u)
		}
		sort.Strings(bag)
		bags = append(bags, bag)
		// Remove v; connect its neighbours pairwise (fill edges).
		for u := range nbrs {
			delete(adj[u], v)
			for w := range nbrs {
				if u != w {
					adj[u][w] = true
				}
			}
		}
		delete(adj, v)
	}
	return pruneSubsetBags(bags)
}

// primalAdjacency builds the primal (Gaifman) graph: two variables are
// adjacent iff some edge contains both.
func (h *Hypergraph) primalAdjacency() map[string]map[string]bool {
	adj := make(map[string]map[string]bool)
	for _, v := range h.Vars() {
		adj[v] = make(map[string]bool)
	}
	for _, e := range h.Edges {
		for _, u := range e.Vars {
			for _, w := range e.Vars {
				if u != w {
					adj[u][w] = true
				}
			}
		}
	}
	return adj
}

// greedyOrder produces a vertex elimination order with the min-degree
// (minFill=false) or min-fill (minFill=true) heuristic, breaking ties
// alphabetically for determinism.
func (h *Hypergraph) greedyOrder(minFill bool) []string {
	adj := h.primalAdjacency()
	remaining := h.Vars()
	var order []string
	for len(remaining) > 0 {
		bestIdx, bestScore := -1, 0
		for i, v := range remaining {
			var score int
			if minFill {
				score = fillCount(adj, v)
			} else {
				score = len(adj[v])
			}
			if bestIdx < 0 || score < bestScore {
				bestIdx, bestScore = i, score
			}
		}
		v := remaining[bestIdx]
		order = append(order, v)
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		nbrs := adj[v]
		for u := range nbrs {
			delete(adj[u], v)
			for w := range nbrs {
				if u != w {
					adj[u][w] = true
				}
			}
		}
		delete(adj, v)
	}
	return order
}

// fillCount counts the missing edges among v's neighbours — the fill
// edges eliminating v would introduce.
func fillCount(adj map[string]map[string]bool, v string) int {
	nbrs := make([]string, 0, len(adj[v]))
	for u := range adj[v] {
		//anykvet:allow mapdeterminism -- nbrs only feeds the symmetric missing-edge count below; n is identical for every element order
		nbrs = append(nbrs, u)
	}
	n := 0
	for i := 0; i < len(nbrs); i++ {
		for j := i + 1; j < len(nbrs); j++ {
			if !adj[nbrs[i]][nbrs[j]] {
				n++
			}
		}
	}
	return n
}

// pruneSubsetBags removes bags contained in another bag (and exact
// duplicates), preserving first-occurrence order.
func pruneSubsetBags(bags [][]string) [][]string {
	var out [][]string
	for i, b := range bags {
		dominated := false
		for j, other := range bags {
			if i == j {
				continue
			}
			if subset(b, other) && (len(b) < len(other) || j < i) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, b)
		}
	}
	return out
}

// connectBags merges the smallest bag of every connected component of
// the bag hypergraph (bags adjacent iff they share a variable) into one
// union bag, so the final bag set is connected. Connected inputs come
// back unchanged.
func connectBags(bags [][]string) [][]string {
	n := len(bags)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if comp[x] != x {
			comp[x] = find(comp[x])
		}
		return comp[x]
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if len(intersect(bags[i], bags[j])) > 0 {
				comp[find(i)] = find(j)
			}
		}
	}
	// Smallest bag per component, in deterministic order.
	smallest := make(map[int]int)
	var roots []int
	for i := 0; i < n; i++ {
		r := find(i)
		s, ok := smallest[r]
		if !ok {
			smallest[r] = i
			roots = append(roots, r)
			continue
		}
		if len(bags[i]) < len(bags[s]) {
			smallest[r] = i
		}
	}
	if len(roots) <= 1 {
		return bags
	}
	mergedSet := make(map[string]bool)
	drop := make(map[int]bool)
	for _, r := range roots {
		i := smallest[r]
		drop[i] = true
		for _, v := range bags[i] {
			mergedSet[v] = true
		}
	}
	union := make([]string, 0, len(mergedSet))
	for v := range mergedSet {
		union = append(union, v)
	}
	sort.Strings(union)
	out := [][]string{union}
	for i, b := range bags {
		if !drop[i] {
			out = append(out, b)
		}
	}
	return pruneSubsetBags(out)
}

// intersect returns the sorted common elements of two sorted slices.
func intersect(a, b []string) []string {
	var out []string
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// subset reports a ⊆ b for sorted string slices.
func subset(a, b []string) bool {
	if len(a) > len(b) {
		return false
	}
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j >= len(b) || b[j] != x {
			return false
		}
	}
	return true
}

// maxBagCover returns the maximum fractional edge cover number over the
// bags, covering each bag's variables with all query edges (an edge
// covers the bag variables it contains, even when it extends outside the
// bag).
func (h *Hypergraph) maxBagCover(bags [][]string) (float64, error) {
	width := 0.0
	for _, bag := range bags {
		_, rho, err := h.FractionalCoverOf(bag)
		if err != nil {
			return 0, err
		}
		if rho > width {
			width = rho
		}
	}
	return width, nil
}

// FractionalCoverOf solves the fractional edge cover LP restricted to
// the given variables (each of which must occur in some edge): minimise
// Σ x_e subject to Σ_{e ∋ v} x_e ≥ 1 for every v in vars. It returns
// the per-edge weights and the cover number.
func (h *Hypergraph) FractionalCoverOf(vars []string) ([]float64, float64, error) {
	return h.weightedCoverOf(vars, func(int) float64 { return 1 })
}

// weightedCoverOf is weightedCover restricted to a subset of variables.
func (h *Hypergraph) weightedCoverOf(vars []string, cost func(int) float64) ([]float64, float64, error) {
	n := len(h.Edges)
	c := make([]float64, n)
	for i := range c {
		c[i] = cost(i)
	}
	a := make([][]float64, len(vars))
	b := make([]float64, len(vars))
	for vi, v := range vars {
		a[vi] = make([]float64, n)
		for ei, e := range h.Edges {
			for _, ev := range e.Vars {
				if ev == v {
					a[vi][ei] = 1
					break
				}
			}
		}
		b[vi] = 1
	}
	sol, err := lp.SolveCovering(c, a, b)
	if err != nil {
		return nil, 0, fmt.Errorf("hypergraph %s: %w", h, err)
	}
	return sol.X, sol.Value, nil
}

// containment computes Contains for the given bags.
func (h *Hypergraph) containment(bags [][]string) [][]int {
	out := make([][]int, len(bags))
	for bi, bag := range bags {
		set := make(map[string]bool, len(bag))
		for _, v := range bag {
			set[v] = true
		}
		for ei, e := range h.Edges {
			inside := true
			for _, v := range e.Vars {
				if !set[v] {
					inside = false
					break
				}
			}
			if inside {
				out[bi] = append(out[bi], ei)
			}
		}
	}
	return out
}

// bagsKey canonicalises a bag set (sorted bags, sorted set) for
// deduplication.
func bagsKey(bags [][]string) string {
	keys := make([]string, len(bags))
	for i, b := range bags {
		keys[i] = strings.Join(b, ",")
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

// permute calls f with every permutation of xs (xs is reused across
// calls; f must not retain it).
func permute(xs []string, f func([]string)) {
	buf := append([]string(nil), xs...)
	var rec func(k int)
	rec = func(k int) {
		if k == len(buf) {
			f(buf)
			return
		}
		for i := k; i < len(buf); i++ {
			buf[k], buf[i] = buf[i], buf[k]
			rec(k + 1)
			buf[k], buf[i] = buf[i], buf[k]
		}
	}
	rec(0)
}
