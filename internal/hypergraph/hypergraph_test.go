package hypergraph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPathIsAcyclic(t *testing.T) {
	for l := 1; l <= 8; l++ {
		h := Path(l)
		if !h.IsAcyclic() {
			t.Errorf("Path(%d) should be acyclic", l)
		}
	}
}

func TestStarIsAcyclic(t *testing.T) {
	for l := 1; l <= 8; l++ {
		if !Star(l).IsAcyclic() {
			t.Errorf("Star(%d) should be acyclic", l)
		}
	}
}

func TestCycleIsCyclic(t *testing.T) {
	for l := 3; l <= 8; l++ {
		if Cycle(l).IsAcyclic() {
			t.Errorf("Cycle(%d) should be cyclic", l)
		}
	}
}

func TestCycleTwoIsAcyclic(t *testing.T) {
	// R1(A0,A1), R2(A1,A0) — same variable set, acyclic.
	if !Cycle(2).IsAcyclic() {
		t.Error("Cycle(2) should be acyclic (two edges on the same var pair)")
	}
}

func TestSingleEdgeAcyclic(t *testing.T) {
	h := New(E("R", "A", "B", "C"))
	tree, ok := h.BuildJoinTree()
	if !ok {
		t.Fatal("single edge should be acyclic")
	}
	if tree.Root != 0 || tree.Parent[0] != -1 {
		t.Error("single edge should be its own root")
	}
}

func TestEmptyHypergraph(t *testing.T) {
	h := New()
	if _, ok := h.BuildJoinTree(); ok {
		t.Error("empty hypergraph has no join tree")
	}
}

func TestJoinTreeRunningIntersection(t *testing.T) {
	for _, h := range []*Hypergraph{
		Path(2), Path(5), Star(4),
		New(E("R", "A", "B"), E("S", "B", "C"), E("T", "B", "D"), E("U", "D", "E")),
		New(E("R", "A", "B", "C"), E("S", "B", "C"), E("T", "C", "D")),
	} {
		tree, ok := h.BuildJoinTree()
		if !ok {
			t.Fatalf("%s should be acyclic", h)
		}
		if v := h.VerifyRunningIntersection(tree); v != "" {
			t.Errorf("%s: running intersection violated at %q", h, v)
		}
	}
}

func TestJoinTreeOrderIsPreorder(t *testing.T) {
	h := Star(5)
	tree, ok := h.BuildJoinTree()
	if !ok {
		t.Fatal("star should be acyclic")
	}
	if len(tree.Order) != len(h.Edges) {
		t.Fatalf("Order covers %d nodes, want %d", len(tree.Order), len(h.Edges))
	}
	pos := make(map[int]int)
	for i, u := range tree.Order {
		pos[u] = i
	}
	for u, p := range tree.Parent {
		if p >= 0 && pos[p] >= pos[u] {
			t.Errorf("parent %d does not precede child %d in Order", p, u)
		}
	}
}

func TestVerifyRunningIntersectionDetectsViolation(t *testing.T) {
	// Hand-build an invalid tree for Path(3): R1(A0,A1) R2(A1,A2) R3(A2,A3)
	// with R1 and R3 adjacent — A1 and A2 both violate somewhere.
	h := Path(3)
	bad := &JoinTree{
		Root:     0,
		Parent:   []int{-1, 2, 0},
		Children: [][]int{{2}, {}, {1}},
	}
	bad.Order = []int{0, 2, 1}
	if v := h.VerifyRunningIntersection(bad); v == "" {
		t.Error("invalid tree should violate running intersection")
	}
}

func TestTriangleEdgeCoverNumber(t *testing.T) {
	_, rho, err := Cycle(3).FractionalEdgeCover()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-1.5) > 1e-6 {
		t.Fatalf("triangle ρ* = %g, want 1.5", rho)
	}
}

func TestCycleEdgeCoverNumbers(t *testing.T) {
	// ρ*(C_l) = l/2 for all cycles.
	for l := 3; l <= 7; l++ {
		_, rho, err := Cycle(l).FractionalEdgeCover()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rho-float64(l)/2) > 1e-6 {
			t.Errorf("C%d ρ* = %g, want %g", l, rho, float64(l)/2)
		}
	}
}

func TestPathEdgeCoverNumbers(t *testing.T) {
	// ρ*(Path_l) = ⌈(l+1)/2⌉: endpoints force their edges; alternating.
	want := map[int]float64{1: 1, 2: 2, 3: 2, 4: 3, 5: 3, 6: 4}
	for l, w := range want {
		_, rho, err := Path(l).FractionalEdgeCover()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rho-w) > 1e-6 {
			t.Errorf("Path(%d) ρ* = %g, want %g", l, rho, w)
		}
	}
}

func TestAGMTriangle(t *testing.T) {
	h := Cycle(3)
	n := 10000.0
	bound, err := h.AGMBound([]float64{n, n, n})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(n, 1.5)
	if math.Abs(bound-want)/want > 1e-6 {
		t.Fatalf("AGM(triangle, n=%g) = %g, want %g", n, bound, want)
	}
}

func TestAGMFourCycle(t *testing.T) {
	h := Cycle(4)
	n := 1000.0
	bound, err := h.AGMBound([]float64{n, n, n, n})
	if err != nil {
		t.Fatal(err)
	}
	want := n * n
	if math.Abs(bound-want)/want > 1e-6 {
		t.Fatalf("AGM(C4) = %g, want %g", bound, want)
	}
}

func TestAGMAsymmetricSizes(t *testing.T) {
	// Triangle with one tiny relation: bound = sqrt(n·n·1)·... the LP
	// puts weight 1 on the two large edges or uses the cheap edge fully.
	h := Cycle(3)
	n := 10000.0
	bound, err := h.AGMBound([]float64{n, n, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Cover: x3=1 (cost 0) covers A2,A0... vars of edge3 = (A2,A0);
	// remaining A1 needs x1 or x2 = 1 → bound = n.
	if math.Abs(bound-n)/n > 1e-6 {
		t.Fatalf("AGM asymmetric = %g, want %g", bound, n)
	}
}

func TestAGMZeroSize(t *testing.T) {
	bound, err := Cycle(3).AGMBound([]float64{10, 10, 0})
	if err != nil || bound != 0 {
		t.Fatalf("AGM with empty relation = %g,%v, want 0,nil", bound, err)
	}
}

func TestAGMErrors(t *testing.T) {
	if _, err := Cycle(3).AGMBound([]float64{10, 10}); err == nil {
		t.Error("wrong size count should fail")
	}
	if _, err := Cycle(3).AGMBound([]float64{10, 10, 0.5}); err == nil {
		t.Error("fractional size < 1 should fail")
	}
}

func TestVarsSortedDistinct(t *testing.T) {
	h := New(E("R", "B", "A"), E("S", "A", "C"))
	vars := h.Vars()
	want := []string{"A", "B", "C"}
	if len(vars) != 3 {
		t.Fatalf("Vars = %v", vars)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", vars, want)
		}
	}
}

func TestStringFormat(t *testing.T) {
	h := Path(2)
	s := h.String()
	if s != "Q :- R1(A0,A1), R2(A1,A2)" {
		t.Errorf("String = %q", s)
	}
}

// Property: random acyclic-by-construction hypergraphs (random trees of
// edges sharing one var with their parent) are recognised as acyclic and
// produce valid join trees.
func TestRandomTreeQueriesAcyclicProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rnd := uint32(seed) + 1
		next := func(n int) int {
			rnd = rnd*1664525 + 1013904223
			return int(rnd>>8) % n
		}
		k := next(6) + 2 // 2..7 edges
		h := &Hypergraph{}
		h.Edges = append(h.Edges, E("R0", "V0", "V1"))
		varCount := 2
		for i := 1; i < k; i++ {
			// Attach to a random existing edge, sharing one of its vars.
			p := h.Edges[next(len(h.Edges))]
			shared := p.Vars[next(len(p.Vars))]
			fresh := "V" + string(rune('0'+varCount%10)) + string(rune('a'+varCount/10))
			varCount++
			h.Edges = append(h.Edges, Edge{Name: "R" + string(rune('0'+i)), Vars: []string{shared, fresh}})
		}
		tree, ok := h.BuildJoinTree()
		if !ok {
			return false
		}
		return h.VerifyRunningIntersection(tree) == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: AGM bound is monotone in relation sizes.
func TestAGMMonotoneProperty(t *testing.T) {
	h := Cycle(3)
	f := func(a, b, c uint16, grow uint8) bool {
		s1 := []float64{float64(a%1000) + 1, float64(b%1000) + 1, float64(c%1000) + 1}
		s2 := []float64{s1[0] + float64(grow), s1[1], s1[2]}
		b1, err1 := h.AGMBound(s1)
		b2, err2 := h.AGMBound(s2)
		if err1 != nil || err2 != nil {
			return false
		}
		return b2 >= b1-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestContainedEdgeIsEar(t *testing.T) {
	// S's vars ⊆ R's vars: S must become R's child.
	h := New(E("R", "A", "B", "C"), E("S", "B", "C"))
	tree, ok := h.BuildJoinTree()
	if !ok {
		t.Fatal("contained edge should be acyclic")
	}
	if v := h.VerifyRunningIntersection(tree); v != "" {
		t.Fatalf("running intersection violated at %s", v)
	}
}

func TestDuplicateEdgesAcyclic(t *testing.T) {
	h := New(E("R1", "A", "B"), E("R2", "A", "B"), E("R3", "A", "B"))
	if !h.IsAcyclic() {
		t.Fatal("duplicate var-set edges are acyclic (each is an ear of another)")
	}
}

func TestIsolatedVariableEdge(t *testing.T) {
	// An edge with entirely private vars attached via no shared var is
	// GYO-acyclic (shared set empty ⊆ any witness) — the cartesian case
	// dp.Build later rejects.
	h := New(E("R", "A", "B"), E("S", "C", "D"))
	if !h.IsAcyclic() {
		t.Fatal("disconnected hypergraph is GYO-acyclic by convention")
	}
}
