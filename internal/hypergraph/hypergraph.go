// Package hypergraph models join queries as hypergraphs: one hyperedge
// per relation atom, one vertex per query variable. It provides the GYO
// acyclicity test with join-tree extraction, running-intersection
// verification, the fractional-edge-cover LP behind the AGM bound
// (Part 3 of the tutorial, PAPER.md), and the generalized-hypertree-
// decomposition search (Decompose) that the facade's generic cyclic
// planner compiles through: vertex-elimination orders scored by the
// maximum fractional edge cover over the bags, exhaustive for small
// queries and min-degree/min-fill greedy beyond.
package hypergraph

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/lp"
)

// Edge is a hyperedge: a named relation atom over a set of variables.
type Edge struct {
	Name string
	Vars []string
}

// Hypergraph is a join-query hypergraph.
type Hypergraph struct {
	Edges []Edge
}

// New builds a hypergraph from edges.
func New(edges ...Edge) *Hypergraph {
	return &Hypergraph{Edges: edges}
}

// E is shorthand for constructing an Edge.
func E(name string, vars ...string) Edge { return Edge{Name: name, Vars: vars} }

// Vars returns the sorted distinct variables of the hypergraph.
func (h *Hypergraph) Vars() []string {
	seen := make(map[string]bool)
	var out []string
	for _, e := range h.Edges {
		for _, v := range e.Vars {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Strings(out)
	return out
}

// String renders the hypergraph as Q :- R1(A,B), R2(B,C), ...
func (h *Hypergraph) String() string {
	var parts []string
	for _, e := range h.Edges {
		parts = append(parts, fmt.Sprintf("%s(%s)", e.Name, strings.Join(e.Vars, ",")))
	}
	return "Q :- " + strings.Join(parts, ", ")
}

// JoinTree is a join tree over the hypergraph's edges: node i corresponds
// to Edges[i]. Parent[Root] = -1. A valid join tree satisfies the
// running-intersection property (see VerifyRunningIntersection).
type JoinTree struct {
	Root     int
	Parent   []int
	Children [][]int
	// Order is a DFS preorder of nodes starting at Root, so every node's
	// parent precedes it. Algorithms that serialise the tree use it.
	Order []int
}

// IsAcyclic reports whether the hypergraph is α-acyclic (GYO).
func (h *Hypergraph) IsAcyclic() bool {
	_, ok := h.BuildJoinTree()
	return ok
}

// BuildJoinTree runs the GYO ear-removal algorithm. It returns a join
// tree and true when the hypergraph is α-acyclic; otherwise nil, false.
func (h *Hypergraph) BuildJoinTree() (*JoinTree, bool) {
	n := len(h.Edges)
	if n == 0 {
		return nil, false
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	removed := make([]bool, n)
	remaining := n

	varSets := make([]map[string]bool, n)
	for i, e := range h.Edges {
		varSets[i] = make(map[string]bool, len(e.Vars))
		for _, v := range e.Vars {
			varSets[i][v] = true
		}
	}

	for remaining > 1 {
		progress := false
		for i := 0; i < n && remaining > 1; i++ {
			if removed[i] {
				continue
			}
			// Vars of i shared with any other remaining edge. Sorted so
			// the slice is deterministic regardless of map iteration
			// order (it currently only feeds order-insensitive
			// containment checks, but the GYO ear order must never
			// silently become schedule-dependent).
			shared := make([]string, 0, len(varSets[i]))
			for v := range varSets[i] {
				for j := 0; j < n; j++ {
					if j != i && !removed[j] && varSets[j][v] {
						shared = append(shared, v)
						break
					}
				}
			}
			sort.Strings(shared)
			// Find a witness edge containing all shared vars.
			for j := 0; j < n; j++ {
				if j == i || removed[j] {
					continue
				}
				contains := true
				for _, v := range shared {
					if !varSets[j][v] {
						contains = false
						break
					}
				}
				if contains {
					parent[i] = j
					removed[i] = true
					remaining--
					progress = true
					break
				}
			}
		}
		if !progress {
			return nil, false // GYO stuck: cyclic
		}
	}

	// The single remaining edge is the root.
	root := -1
	for i := 0; i < n; i++ {
		if !removed[i] {
			root = i
			break
		}
	}
	children := make([][]int, n)
	for i, p := range parent {
		if p >= 0 {
			children[p] = append(children[p], i)
		}
	}
	t := &JoinTree{Root: root, Parent: parent, Children: children}
	t.Order = t.dfsOrder()
	return t, true
}

// Levels partitions the tree nodes by depth: Levels()[0] is [Root],
// Levels()[d] holds every node d edges below it, each level in Order
// (preorder) sequence. Nodes within one level are pairwise unrelated —
// no ancestor/descendant pairs — which is what makes level-synchronized
// parallel sweeps (the full reducer's semi-joins, the T-DP's bottom-up
// π pass) safe: a level only reads state written by deeper or shallower
// levels, never by its own.
func (t *JoinTree) Levels() [][]int {
	depth := make([]int, len(t.Parent))
	var levels [][]int
	for _, u := range t.Order {
		d := 0
		if p := t.Parent[u]; p >= 0 {
			d = depth[p] + 1
		}
		depth[u] = d
		if d == len(levels) {
			levels = append(levels, nil)
		}
		levels[d] = append(levels[d], u)
	}
	return levels
}

func (t *JoinTree) dfsOrder() []int {
	order := make([]int, 0, len(t.Parent))
	var visit func(int)
	visit = func(u int) {
		order = append(order, u)
		for _, c := range t.Children[u] {
			visit(c)
		}
	}
	visit(t.Root)
	return order
}

// VerifyRunningIntersection checks that for every variable, the tree
// nodes whose edges contain it form a connected subtree. It returns the
// first violating variable, or "" when valid.
func (h *Hypergraph) VerifyRunningIntersection(t *JoinTree) string {
	for _, v := range h.Vars() {
		// Nodes containing v.
		var nodes []int
		has := make(map[int]bool)
		for i, e := range h.Edges {
			for _, ev := range e.Vars {
				if ev == v {
					nodes = append(nodes, i)
					has[i] = true
					break
				}
			}
		}
		if len(nodes) <= 1 {
			continue
		}
		// Connected iff every node in the set except one has a parent
		// chain that reaches another set member only through set members.
		// Equivalently: the set members minus the "highest" one must each
		// have their tree parent also in the set.
		countWithParentInSet := 0
		for _, u := range nodes {
			if p := t.Parent[u]; p >= 0 && has[p] {
				countWithParentInSet++
			}
		}
		if countWithParentInSet != len(nodes)-1 {
			return v
		}
	}
	return ""
}

// FractionalEdgeCover solves the fractional-edge-cover LP with unit costs
// and returns the per-edge weights and the cover number ρ*.
func (h *Hypergraph) FractionalEdgeCover() ([]float64, float64, error) {
	return h.weightedCover(func(int) float64 { return 1 })
}

// AGMBound returns the Atserias–Grohe–Marx bound ∏ |R_e|^{x*_e} on the
// output size of the join, given the cardinality of each edge's relation
// (aligned with h.Edges). Every size must be ≥ 1; a relation of size 0
// makes the join empty, reported as bound 0.
func (h *Hypergraph) AGMBound(sizes []float64) (float64, error) {
	_, bound, err := h.AGMCover(sizes)
	return bound, err
}

// AGMCover returns the fractional edge cover x* minimizing the AGM
// bound ∏ |R_e|^{x_e} for the given relation sizes (aligned with
// h.Edges), together with the bound itself. The weights satisfy
// Σ_{e∋v} x_e ≥ 1 for every variable v, which is what the sampling
// random walk (internal/sample) needs for its per-prefix upper bounds
// to telescope via the generalized Hölder inequality. Every size must
// be ≥ 1; a relation of size 0 makes the join empty, reported as a nil
// cover with bound 0.
func (h *Hypergraph) AGMCover(sizes []float64) ([]float64, float64, error) {
	if len(sizes) != len(h.Edges) {
		return nil, 0, fmt.Errorf("hypergraph: %d sizes for %d edges", len(sizes), len(h.Edges))
	}
	for _, s := range sizes {
		if s == 0 {
			return nil, 0, nil
		}
		if s < 1 {
			return nil, 0, fmt.Errorf("hypergraph: relation size %g < 1", s)
		}
	}
	x, _, err := h.weightedCover(func(i int) float64 { return math.Log(sizes[i]) })
	if err != nil {
		return nil, 0, err
	}
	logBound := 0.0
	for i, xi := range x {
		logBound += xi * math.Log(sizes[i])
	}
	return x, math.Exp(logBound), nil
}

// AGMBoundOf is AGMBound restricted to a subset of the variables: the
// bound ∏ |R_e|^{x*_e} on the size of the join projected to vars, where
// x* is the minimum log-weighted fractional cover of vars only. Sizes
// align with h.Edges and must be ≥ 1 (a size-0 relation reports 0).
func (h *Hypergraph) AGMBoundOf(vars []string, sizes []float64) (float64, error) {
	if len(sizes) != len(h.Edges) {
		return 0, fmt.Errorf("hypergraph: %d sizes for %d edges", len(sizes), len(h.Edges))
	}
	for _, s := range sizes {
		if s == 0 {
			return 0, nil
		}
		if s < 1 {
			return 0, fmt.Errorf("hypergraph: relation size %g < 1", s)
		}
	}
	x, _, err := h.weightedCoverOf(vars, func(i int) float64 { return math.Log(sizes[i]) })
	if err != nil {
		return 0, err
	}
	logBound := 0.0
	for i, xi := range x {
		logBound += xi * math.Log(sizes[i])
	}
	return math.Exp(logBound), nil
}

// weightedCover minimizes Σ cost(e)·x_e subject to covering every
// variable.
func (h *Hypergraph) weightedCover(cost func(int) float64) ([]float64, float64, error) {
	vars := h.Vars()
	n := len(h.Edges)
	c := make([]float64, n)
	for i := range c {
		c[i] = cost(i)
	}
	a := make([][]float64, len(vars))
	b := make([]float64, len(vars))
	for vi, v := range vars {
		a[vi] = make([]float64, n)
		for ei, e := range h.Edges {
			for _, ev := range e.Vars {
				if ev == v {
					a[vi][ei] = 1
					break
				}
			}
		}
		b[vi] = 1
	}
	sol, err := lp.SolveCovering(c, a, b)
	if err != nil {
		return nil, 0, fmt.Errorf("hypergraph %s: %w", h, err)
	}
	return sol.X, sol.Value, nil
}

// Path returns the hypergraph of the l-relation path query
// R1(A0,A1), R2(A1,A2), ..., Rl(A_{l-1},A_l).
func Path(l int) *Hypergraph {
	h := &Hypergraph{}
	for i := 1; i <= l; i++ {
		h.Edges = append(h.Edges, E(fmt.Sprintf("R%d", i), attr(i-1), attr(i)))
	}
	return h
}

// Star returns the hypergraph of the l-relation star query
// R1(A0,A1), R2(A0,A2), ..., Rl(A0,Al).
func Star(l int) *Hypergraph {
	h := &Hypergraph{}
	for i := 1; i <= l; i++ {
		h.Edges = append(h.Edges, E(fmt.Sprintf("R%d", i), attr(0), attr(i)))
	}
	return h
}

// Cycle returns the hypergraph of the l-relation cycle query
// R1(A0,A1), ..., Rl(A_{l-1},A0). Cycle(3) is the triangle.
func Cycle(l int) *Hypergraph {
	h := &Hypergraph{}
	for i := 1; i <= l; i++ {
		h.Edges = append(h.Edges, E(fmt.Sprintf("R%d", i), attr(i-1), attr(i%l)))
	}
	return h
}

func attr(i int) string { return fmt.Sprintf("A%d", i) }
