package hypergraph

import (
	"fmt"
	"testing"
)

// checkDecomposition validates the structural invariants every
// decomposition must satisfy: bag hypergraph acyclic, every edge
// contained in some bag, Contains consistent.
func checkDecomposition(t *testing.T, h *Hypergraph, d *Decomposition) {
	t.Helper()
	bagEdges := make([]Edge, len(d.Bags))
	for i, b := range d.Bags {
		bagEdges[i] = Edge{Name: fmt.Sprintf("G%d", i), Vars: b}
	}
	bh := New(bagEdges...)
	tree, ok := bh.BuildJoinTree()
	if !ok {
		t.Fatalf("bag hypergraph of %s is not acyclic", d)
	}
	if v := bh.VerifyRunningIntersection(tree); v != "" {
		t.Fatalf("bag tree of %s violates running intersection at %s", d, v)
	}
	if len(d.Contains) != len(d.Bags) {
		t.Fatalf("Contains has %d entries for %d bags", len(d.Contains), len(d.Bags))
	}
	covered := make([]bool, len(h.Edges))
	for bi, edges := range d.Contains {
		set := make(map[string]bool)
		for _, v := range d.Bags[bi] {
			set[v] = true
		}
		for _, ei := range edges {
			for _, v := range h.Edges[ei].Vars {
				if !set[v] {
					t.Fatalf("edge %s listed in bag %v but not contained", h.Edges[ei].Name, d.Bags[bi])
				}
			}
			covered[ei] = true
		}
	}
	for ei, ok := range covered {
		if !ok {
			t.Fatalf("edge %s not contained in any bag of %s", h.Edges[ei].Name, d)
		}
	}
}

func TestDecomposeTriangle(t *testing.T) {
	h := Cycle(3)
	d, err := h.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	checkDecomposition(t, h, d)
	if len(d.Bags) != 1 || len(d.Bags[0]) != 3 {
		t.Fatalf("triangle should decompose to one 3-var bag, got %s", d)
	}
	if d.Width < 1.49 || d.Width > 1.51 {
		t.Errorf("triangle width = %g, want 1.5", d.Width)
	}
}

func TestDecomposeCycles(t *testing.T) {
	for l := 4; l <= 8; l++ {
		h := Cycle(l)
		d, err := h.Decompose()
		if err != nil {
			t.Fatalf("C%d: %v", l, err)
		}
		checkDecomposition(t, h, d)
		// An l-cycle has fhtw ≤ 2; the search must do at least that well.
		if d.Width > 2+1e-9 {
			t.Errorf("C%d width = %g, want <= 2", l, d.Width)
		}
	}
}

func TestDecomposeClique(t *testing.T) {
	// K4: 6 edges over 4 vars; fractional cover of all vars is 2.
	h := New(
		E("R1", "A", "B"), E("R2", "A", "C"), E("R3", "A", "D"),
		E("R4", "B", "C"), E("R5", "B", "D"), E("R6", "C", "D"),
	)
	d, err := h.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	checkDecomposition(t, h, d)
	if d.Width > 2+1e-9 {
		t.Errorf("K4 width = %g, want <= 2 (AGM of the single bag)", d.Width)
	}
}

func TestDecomposeBowtie(t *testing.T) {
	// Two triangles sharing vertex A: bags {A,B,C} and {A,D,E} are optimal.
	h := New(
		E("R1", "A", "B"), E("R2", "B", "C"), E("R3", "C", "A"),
		E("R4", "A", "D"), E("R5", "D", "E"), E("R6", "E", "A"),
	)
	d, err := h.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	checkDecomposition(t, h, d)
	if len(d.Bags) != 2 {
		t.Fatalf("bowtie should split into two triangle bags, got %s", d)
	}
	if d.Width > 1.5+1e-9 {
		t.Errorf("bowtie width = %g, want 1.5", d.Width)
	}
}

func TestDecomposeStarWithChord(t *testing.T) {
	// Star A-B, A-C, A-D plus chord B-C: triangle {A,B,C} + bag {A,D}.
	h := New(E("R1", "A", "B"), E("R2", "A", "C"), E("R3", "A", "D"), E("R4", "B", "C"))
	d, err := h.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	checkDecomposition(t, h, d)
	if d.Width > 1.5+1e-9 {
		t.Errorf("star-with-chord width = %g, want <= 1.5", d.Width)
	}
}

func TestDecomposeAcyclic(t *testing.T) {
	// Decompose also works on acyclic shapes (the facade never calls it
	// for them, but the invariants must hold).
	h := Path(4)
	d, err := h.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	checkDecomposition(t, h, d)
	if d.Width > 1+1e-9 {
		t.Errorf("path width = %g, want 1", d.Width)
	}
}

func TestDecomposeLargeFallsBackToGreedy(t *testing.T) {
	// A 10-cycle has more vars than the exhaustive cap; greedy orders
	// must still find a width-2 decomposition.
	h := Cycle(10)
	d, err := h.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	checkDecomposition(t, h, d)
	if d.Width > 2+1e-9 {
		t.Errorf("C10 width = %g, want <= 2", d.Width)
	}
}

func TestDecomposeDisconnected(t *testing.T) {
	// Two disjoint triangles: a cartesian product of two bags.
	h := New(
		E("R1", "A", "B"), E("R2", "B", "C"), E("R3", "C", "A"),
		E("S1", "X", "Y"), E("S2", "Y", "Z"), E("S3", "Z", "X"),
	)
	d, err := h.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	checkDecomposition(t, h, d)
}

func TestFractionalCoverOf(t *testing.T) {
	h := Cycle(4)
	_, rho, err := h.FractionalCoverOf([]string{"A0", "A1"})
	if err != nil {
		t.Fatal(err)
	}
	if rho > 1+1e-9 {
		t.Errorf("cover of one edge's vars = %g, want 1", rho)
	}
	_, rho, err = h.FractionalCoverOf(h.Vars())
	if err != nil {
		t.Fatal(err)
	}
	if rho < 2-1e-9 || rho > 2+1e-9 {
		t.Errorf("cover of all C4 vars = %g, want 2", rho)
	}
}
