package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro"
	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/relation"
)

// datasetPatch is the JSON body of PATCH /v1/datasets/{name}: rows to
// delete (matched by value, all duplicates removed) and rows to append,
// in that order. Cells follow the dataset upload rules (integral
// numbers or strings).
type datasetPatch struct {
	Append        []json.RawMessage `json:"append"`
	AppendWeights []float64         `json:"append_weights"`
	Delete        []json.RawMessage `json:"delete"`
}

// handleDatasetPatch is the incremental-update endpoint: it installs a
// new immutable snapshot of the dataset (bumped version) built from the
// current one by removing the deleted rows and adding the appended
// ones, derives the new snapshot's statistics by sketch merge when the
// batch is append-only (HLL register max / Misra–Gries counter union —
// no rescan of the existing rows) and by recollection otherwise, and
// then patches every compiled plan in the registry that referenced the
// previous version in place via Prepared.ApplyDelta, re-keying the warm
// registry entries to the new version so they keep serving with zero
// preparation.
//
// Bodies are JSON (datasetPatch) or CSV (Content-Type text/csv) with
// ?mode=append (default; columns follow the upload rules, including
// the trailing weight column unless ?weights=false) or ?mode=delete
// (value columns only by default — deletes match values, not weights).
func (s *Server) handleDatasetPatch(w http.ResponseWriter, r *http.Request) {
	s.met.queryRequests.Inc()
	name := r.PathValue("name")
	if !nameRe.MatchString(name) {
		httpError(w, http.StatusBadRequest, errInvalidArgument, "invalid dataset name %q", name)
		return
	}
	s.mu.RLock()
	old := s.datasets[name]
	s.mu.RUnlock()
	if old == nil {
		httpError(w, http.StatusNotFound, errNotFound, "unknown dataset %q", name)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	appendT, appendW, deleteT, err := s.readPatch(old, r)
	if err != nil {
		httpError(w, http.StatusBadRequest, errInvalidArgument, "dataset %s: %v", name, err)
		return
	}
	if len(appendT) == 0 && len(deleteT) == 0 {
		httpError(w, http.StatusBadRequest, errInvalidArgument, "dataset %s: empty delta (nothing to append or delete)", name)
		return
	}

	tuples, weights, removed := applyDatasetDelta(old, deleteT, appendT, appendW)
	if removed == 0 && len(appendT) == 0 {
		// Every delete missed: the data is unchanged, so the snapshot,
		// its version, and every compiled plan stay exactly as they are.
		writeJSON(w, map[string]any{
			"name": name, "rows": len(old.tuples), "arity": old.arity, "version": old.version,
			"appended": 0, "deleted": 0,
			"stats_version": old.statsVersion, "epoch": old.epoch, "plans_patched": 0,
		})
		return
	}

	// Statistics: append-only batches merge into the previous snapshot's
	// sketches without rescanning existing rows; anything with an
	// effective delete recollects (sketches are insert-only).
	statsHow := "recollected"
	var st *catalog.RelationStats
	if removed == 0 && old.stats != nil {
		deltaStats := catalog.Collect(&relation.Relation{Name: name, Attrs: old.attrs, Tuples: appendT, Weights: appendW})
		if merged, ok := old.stats.MergeAppend(deltaStats); ok {
			st, statsHow = merged, "merged"
		}
	}
	if st == nil {
		st = catalog.Collect(&relation.Relation{Name: name, Attrs: old.attrs, Tuples: tuples, Weights: weights})
	}

	ds := &dataset{
		name: name, version: old.version + 1, arity: old.arity, attrs: old.attrs,
		tuples: tuples, weights: weights, stats: st,
		statsVersion: old.statsVersion + 1, epoch: old.epoch + 1,
	}
	s.mu.Lock()
	if s.datasets[name] != old {
		s.mu.Unlock()
		httpError(w, http.StatusConflict, errConflict, "dataset %s was updated concurrently; retry the delta against the new version", name)
		return
	}
	s.datasets[name] = ds
	s.mu.Unlock()
	s.met.patches.Inc()

	patched := s.propagateDelta(r.Context(), name, old.version, ds.version, deleteT, appendT, appendW)
	s.met.plansPatched.Add(int64(patched))
	writeJSON(w, map[string]any{
		"name": name, "rows": len(ds.tuples), "arity": ds.arity, "version": ds.version,
		"appended": len(appendT), "deleted": removed,
		"stats": statsHow, "stats_version": ds.statsVersion, "epoch": ds.epoch,
		"plans_patched": patched,
	})
}

// readPatch parses a PATCH body (JSON or CSV) against the dataset's
// arity, returning appends (with weights — zero-filled when omitted)
// and deletes.
func (s *Server) readPatch(ds *dataset, r *http.Request) (appendT []relation.Tuple, appendW []float64, deleteT []relation.Tuple, err error) {
	if strings.HasPrefix(r.Header.Get("Content-Type"), "text/csv") {
		mode := r.URL.Query().Get("mode")
		if mode == "" {
			mode = "append"
		}
		// Append rows carry a trailing weight column by default (like
		// uploads); delete rows are value-only by default — deletes match
		// values, never weights.
		weightCol := mode == "append"
		if v := r.URL.Query().Get("weights"); v != "" {
			b, perr := strconv.ParseBool(v)
			if perr != nil {
				return nil, nil, nil, fmt.Errorf("bad weights param %q", v)
			}
			weightCol = b
		}
		local := relation.NewDictionary()
		rel, rerr := relation.ReadCSV(r.Body, ds.name, weightCol, local)
		if rerr != nil {
			return nil, nil, nil, rerr
		}
		if len(rel.Attrs) != ds.arity {
			return nil, nil, nil, fmt.Errorf("delta arity %d, want %d", len(rel.Attrs), ds.arity)
		}
		s.mergeDict(local, rel.Tuples)
		switch mode {
		case "append":
			return rel.Tuples, rel.Weights, nil, nil
		case "delete":
			return nil, nil, rel.Tuples, nil
		default:
			return nil, nil, nil, fmt.Errorf("bad mode %q (append or delete)", mode)
		}
	}
	var body datasetPatch
	dec := json.NewDecoder(r.Body)
	dec.UseNumber()
	if err := dec.Decode(&body); err != nil {
		return nil, nil, nil, err
	}
	if body.AppendWeights != nil && len(body.AppendWeights) != len(body.Append) {
		return nil, nil, nil, fmt.Errorf("%d append rows but %d weights", len(body.Append), len(body.AppendWeights))
	}
	local := relation.NewDictionary()
	appendT, _, err = parseJSONTuples(body.Append, ds.arity, local)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("append: %v", err)
	}
	deleteT, _, err = parseJSONTuples(body.Delete, ds.arity, local)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("delete: %v", err)
	}
	s.mergeDict(local, appendT)
	s.mergeDict(local, deleteT)
	appendW = body.AppendWeights
	if appendW == nil {
		appendW = make([]float64, len(appendT))
	}
	return appendT, appendW, deleteT, nil
}

// applyDatasetDelta builds the new snapshot's rows: current rows minus
// every row matching a delete tuple (by value), plus the appends. The
// old slices are never mutated — snapshots are immutable.
func applyDatasetDelta(old *dataset, deleteT, appendT []relation.Tuple, appendW []float64) ([]relation.Tuple, []float64, int) {
	tuples := make([]relation.Tuple, 0, len(old.tuples)+len(appendT))
	weights := make([]float64, 0, len(old.weights)+len(appendT))
	removed := 0
	if len(deleteT) > 0 {
		kill := make(map[string]bool, len(deleteT))
		for _, t := range deleteT {
			kill[patchTupleKey(t)] = true
		}
		for i, t := range old.tuples {
			if kill[patchTupleKey(t)] {
				removed++
				continue
			}
			tuples = append(tuples, t)
			weights = append(weights, old.weights[i])
		}
	} else {
		tuples = append(tuples, old.tuples...)
		weights = append(weights, old.weights...)
	}
	tuples = append(tuples, appendT...)
	weights = append(weights, appendW...)
	return tuples, weights, removed
}

func patchTupleKey(t relation.Tuple) string {
	b := make([]byte, 8*len(t))
	for i, v := range t {
		binary.LittleEndian.PutUint64(b[i*8:], uint64(v))
	}
	return string(b)
}

// propagateDelta patches every compiled handle in the registry whose
// dataKey binds (dsName, oldVer): the handle's prepared state advances
// one epoch via ApplyDelta (incremental plan patching), and its
// registry entries — the compile-level entry plus each warm per-ranking
// plan entry — move to the new-version key, so requests arriving after
// the PATCH hit them warm. Handles that fail to patch are dropped and
// rebuild cold on next use. Returns the number of handles patched in
// place.
//
// Key reachability: requests always derive their dataKey from the
// *current* dataset versions, so an entry this sweep misses (a racing
// PATCH, an in-flight build publishing under the old key) is merely
// unreachable and ages out of the LRU — it can never serve stale data
// under a live key.
func (s *Server) propagateDelta(ctx context.Context, dsName string, oldVer, newVer int, deleteT, appendT []relation.Tuple, appendW []float64) int {
	oldBind := fmt.Sprintf("%s@%d(", dsName, oldVer)
	patched := 0
	s.reg.compiles.eachMeta(func(key string, p *repro.Prepared, meta any) {
		qd, _ := meta.(*queryDef)
		if qd == nil || !keyHasBind(key, oldBind) {
			return
		}
		var deltas []repro.Delta
		for i, a := range qd.atoms {
			if a.Dataset != dsName {
				continue
			}
			deltas = append(deltas, repro.Delta{
				Rel:           fmt.Sprintf("%s#%d", a.Dataset, i),
				Append:        appendT,
				AppendWeights: appendW,
				Delete:        deleteT,
			})
		}
		if len(deltas) == 0 {
			return
		}
		newKey := rewriteDataKey(key, dsName, oldVer, newVer)
		// Patch under the server's lifetime (like plan builds), but keep
		// the PATCH request's trace so the per-plan apply-delta spans land
		// in it.
		bctx, bcancel := context.WithTimeout(s.baseCtx, s.cfg.MaxTimeout)
		err := p.ApplyDelta(deltas, repro.WithContext(obs.Adopt(bctx, ctx)))
		bcancel()
		if err != nil {
			// Drop the stale entries outright: the next request under the
			// new key compiles cold against the new snapshot.
			s.reg.compiles.take(key)
			for aggName := range aggByName {
				s.reg.shard(planKey(key, aggName)).take(planKey(key, aggName))
			}
			return
		}
		s.reg.rekeyCompile(key, newKey, qd)
		for aggName := range aggByName {
			s.reg.rekeyPlan(planKey(key, aggName), planKey(newKey, aggName))
		}
		patched++
	})
	return patched
}

// keyHasBind reports whether a dataKey's binds section contains the
// given "name@version(" prefix at a bind boundary. Dataset names are
// nameRe-restricted (no '|', ',', '@', or '('), so boundary-anchored
// prefix matching is unambiguous.
func keyHasBind(key, bind string) bool {
	for i := 0; i+len(bind) <= len(key); i++ {
		if (i == 0 || key[i-1] == '|' || key[i-1] == ',') && strings.HasPrefix(key[i:], bind) {
			return true
		}
	}
	return false
}

// rewriteDataKey rewrites every (dsName, oldVer) bind in a dataKey to
// newVer and re-sorts the binds section, reproducing exactly the key
// dataKey() would compute for the new versions — the bind multiset is
// sorted, and a version bump can change a bind's sort position.
func rewriteDataKey(key, dsName string, oldVer, newVer int) string {
	// key = fingerprint | bind,bind,... | outAttrs. Binds and outAttrs
	// contain no '|' (nameRe), the fingerprint may contain anything, so
	// split from the right.
	last := strings.LastIndexByte(key, '|')
	if last < 0 {
		return key
	}
	mid := strings.LastIndexByte(key[:last], '|')
	if mid < 0 {
		return key
	}
	binds := strings.Split(key[mid+1:last], ",")
	oldBind := fmt.Sprintf("%s@%d(", dsName, oldVer)
	newBind := fmt.Sprintf("%s@%d(", dsName, newVer)
	for i, b := range binds {
		if strings.HasPrefix(b, oldBind) {
			binds[i] = newBind + b[len(oldBind):]
		}
	}
	sort.Strings(binds)
	return key[:mid+1] + strings.Join(binds, ",") + key[last:]
}
