package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// scrape fetches /metrics and returns the body, failing on transport or
// status errors.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

var sampleLineRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.eE+-]+|\+Inf|-Inf|NaN)$`)

// TestMetricsEndpoint drives real traffic and checks that /metrics is
// well-formed exposition text covering the request, latency, plan-cache,
// delta, and runtime series the dashboard expects.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerPath(t, ts.URL)

	// Cold then warm topk, a sample, and a dataset delta.
	for i := 0; i < 2; i++ {
		resp, lines := streamTopK(t, ts.URL+"/v1/query/paths/topk?k=3")
		if resp.StatusCode != 200 || len(lines) != 4 {
			t.Fatalf("topk run %d: status %d, %d lines", i, resp.StatusCode, len(lines))
		}
	}
	if resp, err := http.Get(ts.URL + "/v1/query/paths/sample?n=2&seed=7"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, body := doJSON(t, "PATCH", ts.URL+"/v1/datasets/r1", map[string]any{
		"append": []any{[]any{3, 10}}, "append_weights": []float64{9},
	})
	mustStatus(t, resp, body, 200)

	text := scrape(t, ts.URL)
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !sampleLineRe.MatchString(line) {
			t.Fatalf("malformed exposition line %d: %q", ln+1, line)
		}
	}
	for _, want := range []string{
		`anykd_query_requests_total `,
		`anykd_http_requests_total{endpoint="topk"} 2`,
		`anykd_http_responses_total{endpoint="topk",class="2xx"} 2`,
		`anykd_http_request_duration_seconds_bucket{endpoint="topk",le="+Inf"} 2`,
		`anykd_ttf_seconds_bucket{agg="sum",le="+Inf"} 2`,
		`anykd_ttk_seconds_count{agg="sum"} 2`,
		`anykd_prepare_seconds_count{cache="hit"} `,
		`anykd_prepare_seconds_count{cache="miss"} `,
		`anykd_plan_cache_hits_total `,
		`anykd_plan_cache_misses_total `,
		`anykd_plan_cache_size `,
		`anykd_rows_streamed_total `,
		`anykd_dataset_patches_total 1`,
		`anykd_plans_patched_total 1`,
		`anykd_inflight_enumerations 0`,
		`go_goroutines `,
		`go_heap_alloc_bytes `,
		`go_gc_pause_seconds_total `,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// getTrace fetches one recorded trace by id.
func getTrace(t *testing.T, base, id string) *obs.TraceJSON {
	t.Helper()
	resp, err := http.Get(base + "/v1/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("trace %s: status %d", id, resp.StatusCode)
	}
	var tj obs.TraceJSON
	if err := json.NewDecoder(resp.Body).Decode(&tj); err != nil {
		t.Fatal(err)
	}
	return &tj
}

// TestTraceEndpointAcyclic checks the X-Trace-Id round trip: a cold
// /topk records a span tree reachable at /v1/traces/{id} whose phases
// nest within the request wall time.
func TestTraceEndpointAcyclic(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerPath(t, ts.URL)

	start := time.Now()
	resp, err := http.Get(ts.URL + "/v1/query/paths/topk?k=2")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	wall := time.Since(start)
	id := resp.Header.Get("X-Trace-Id")
	if id == "" {
		t.Fatal("no X-Trace-Id header on /topk response")
	}

	tj := getTrace(t, ts.URL, id)
	if tj.TraceID != id {
		t.Fatalf("trace id %q, want %q", tj.TraceID, id)
	}
	names := map[string]int{}
	var walk func([]*obs.SpanJSON)
	walk = func(spans []*obs.SpanJSON) {
		for _, sp := range spans {
			names[sp.Name]++
			if sp.StartNs < 0 || sp.StartNs+sp.DurationNs > tj.DurationNs {
				t.Errorf("span %s [%d,+%d] exceeds trace duration %d", sp.Name, sp.StartNs, sp.DurationNs, tj.DurationNs)
			}
			walk(sp.Children)
		}
	}
	walk(tj.Spans)
	for _, want := range []string{"compile", "plan-build", "reduce", "prepare", "instantiate", "enumerate"} {
		if names[want] == 0 {
			t.Errorf("cold acyclic /topk trace missing span %q (got %v)", want, names)
		}
	}
	// The recorded trace must fit inside the observed request wall time
	// (generous slack for the Finish timestamp landing after the body).
	if got := time.Duration(tj.DurationNs); got > wall+time.Second {
		t.Errorf("trace duration %v exceeds request wall time %v", got, wall)
	}

	// Unknown ids are a 404 with the standard envelope.
	r404, err := http.Get(ts.URL + "/v1/traces/doesnotexist")
	if err != nil {
		t.Fatal(err)
	}
	defer r404.Body.Close()
	if r404.StatusCode != 404 {
		t.Fatalf("unknown trace id: status %d", r404.StatusCode)
	}
	var eb errorBody
	if err := json.NewDecoder(r404.Body).Decode(&eb); err != nil || eb.Error.Code != errNotFound {
		t.Fatalf("unknown trace envelope = %+v (err %v)", eb, err)
	}
}

// TestTraceEndpointCyclic is the cyclic-shape counterpart: a triangle
// query's trace shows the generic-join materialisation with bag labels.
func TestTraceEndpointCyclic(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var tuples []any
	var weights []float64
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			if a != b {
				tuples = append(tuples, []any{a, b})
				weights = append(weights, float64(a+b))
			}
		}
	}
	resp, body := doJSON(t, "POST", ts.URL+"/v1/datasets/e", map[string]any{"tuples": tuples, "weights": weights})
	mustStatus(t, resp, body, 200)
	resp, body = doJSON(t, "POST", ts.URL+"/v1/queries/tri", map[string]any{
		"atoms": []any{
			map[string]any{"dataset": "e", "vars": []string{"A", "B"}},
			map[string]any{"dataset": "e", "vars": []string{"B", "C"}},
			map[string]any{"dataset": "e", "vars": []string{"C", "A"}},
		},
	})
	mustStatus(t, resp, body, 200)

	r, err := http.Get(ts.URL + "/v1/query/tri/topk?k=3")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	tj := getTrace(t, ts.URL, r.Header.Get("X-Trace-Id"))

	var mat *obs.SpanJSON
	names := map[string]int{}
	var walk func([]*obs.SpanJSON)
	walk = func(spans []*obs.SpanJSON) {
		for _, sp := range spans {
			names[sp.Name]++
			if sp.Name == "materialize" && mat == nil {
				mat = sp
			}
			walk(sp.Children)
		}
	}
	walk(tj.Spans)
	for _, want := range []string{"compile", "prepare", "materialize", "generic-join", "enumerate"} {
		if names[want] == 0 {
			t.Errorf("cyclic /topk trace missing span %q (got %v)", want, names)
		}
	}
	if mat != nil && mat.Attrs["bag"] == "" {
		t.Errorf("materialize span has no bag label: %+v", mat.Attrs)
	}
}

// TestAccessLogAndRequestID checks the structured access log line and
// the X-Request-ID round trip, including the error envelope's
// request_id field.
func TestAccessLogAndRequestID(t *testing.T) {
	var buf syncBuffer
	_, ts := newTestServer(t, Config{AccessLog: &buf})
	registerPath(t, ts.URL)

	req, err := http.NewRequest("GET", ts.URL+"/v1/query/paths/topk?k=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "client-chose-this.1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-chose-this.1" {
		t.Fatalf("X-Request-ID echo = %q", got)
	}

	// An error response (unknown query) generates an id and echoes it in
	// the envelope.
	eresp, err := http.Get(ts.URL + "/v1/query/nosuch/topk")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	var eb errorBody
	if err := json.NewDecoder(eresp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eresp.StatusCode != 404 || eb.Error.RequestID == "" {
		t.Fatalf("error envelope missing request_id: status %d, %+v", eresp.StatusCode, eb)
	}
	if got := eresp.Header.Get("X-Request-ID"); got != eb.Error.RequestID {
		t.Fatalf("envelope request_id %q != header %q", eb.Error.RequestID, got)
	}

	var found bool
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("access log line %q not JSON: %v", sc.Text(), err)
		}
		if line["path"] != "/v1/query/paths/topk" {
			continue
		}
		found = true
		if line["method"] != "GET" || line["status"] != float64(200) {
			t.Errorf("access line method/status wrong: %v", line)
		}
		if line["request_id"] != "client-chose-this.1" {
			t.Errorf("access line request_id = %v", line["request_id"])
		}
		if line["trace_id"] == "" || line["trace_id"] == nil {
			t.Errorf("access line missing trace_id: %v", line)
		}
		if line["plan_cache"] != "miss" {
			t.Errorf("access line plan_cache = %v, want miss", line["plan_cache"])
		}
		if b, ok := line["bytes"].(float64); !ok || b <= 0 {
			t.Errorf("access line bytes = %v", line["bytes"])
		}
		if d, ok := line["duration_ms"].(float64); !ok || d < 0 {
			t.Errorf("access line duration_ms = %v", line["duration_ms"])
		}
	}
	if !found {
		t.Fatalf("no access log line for the topk request; log:\n%s", buf.String())
	}
}

// syncBuffer is a bytes.Buffer safe for concurrent handler writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSlowQueryLog: with a zero threshold every request is "slow", so
// the warn line with the trace id must appear.
func TestSlowQueryLog(t *testing.T) {
	var buf syncBuffer
	_, ts := newTestServer(t, Config{SlowQueryThreshold: time.Nanosecond, SlowQueryLog: &buf})
	registerPath(t, ts.URL)
	resp, err := http.Get(ts.URL + "/v1/query/paths/topk?k=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	var found bool
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		if line["msg"] == "slow-query" && line["path"] == "/v1/query/paths/topk" {
			found = true
			if line["trace_id"] == "" || line["trace_id"] == nil {
				t.Errorf("slow-query line missing trace_id: %v", line)
			}
		}
	}
	if !found {
		t.Fatalf("no slow-query line; log:\n%s", buf.String())
	}
}

// TestRateLimit checks the per-query token bucket: burst 1 at 0.1 qps
// admits exactly one request, refuses the second with the rate-limit
// envelope, and counts both outcomes in /metrics.
func TestRateLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{RateLimit: 0.1})
	registerPath(t, ts.URL)

	resp, lines := streamTopK(t, ts.URL+"/v1/query/paths/topk?k=1")
	if resp.StatusCode != 200 || len(lines) != 2 {
		t.Fatalf("first request: status %d, %d lines", resp.StatusCode, len(lines))
	}
	resp2, err := http.Get(ts.URL + "/v1/query/paths/topk?k=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429", resp2.StatusCode)
	}
	if ra := resp2.Header.Get("Retry-After"); ra != "10" {
		t.Errorf("Retry-After = %q, want 10 (1/0.1qps)", ra)
	}
	var eb errorBody
	if err := json.NewDecoder(resp2.Body).Decode(&eb); err != nil || eb.Error.Code != errRateLimited {
		t.Fatalf("rate-limit envelope = %+v (err %v)", eb, err)
	}

	// Sampling shares the same bucket.
	resp3, err := http.Get(ts.URL + "/v1/query/paths/sample?n=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("sample under limit: status %d, want 429", resp3.StatusCode)
	}

	text := scrape(t, ts.URL)
	for _, want := range []string{
		`anykd_ratelimit_accepted_total{query="paths"} 1`,
		`anykd_ratelimit_limited_total{query="paths"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// fakeClock is a deterministic monotonic clock: every reading advances
// by step.
type fakeClock struct {
	mu   sync.Mutex
	at   time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.at = c.at.Add(c.step)
	return c.at
}

// TestTTFTTKFakeClock pins the TTF/TT(k) histogram semantics with a
// stepped fake clock: TTF is observed once per streaming request, TT(k)
// only when the stream actually reaches k results, and both measure
// forward from request start (TTK ≥ TTF).
func TestTTFTTKFakeClock(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	clk := &fakeClock{at: time.Unix(1000, 0), step: time.Second}
	s.now = clk.now
	registerPath(t, ts.URL)

	// k=3 ≤ 5 results: both TTF and TTK observe.
	resp, lines := streamTopK(t, ts.URL+"/v1/query/paths/topk?k=3")
	if resp.StatusCode != 200 || len(lines) != 4 {
		t.Fatalf("status %d, %d lines", resp.StatusCode, len(lines))
	}
	ttf, ttk := s.met.ttf["sum"], s.met.ttk["sum"]
	if ttf.Count() != 1 || ttk.Count() != 1 {
		t.Fatalf("ttf count %d, ttk count %d, want 1,1", ttf.Count(), ttk.Count())
	}
	// The stepped clock makes the observations exact multiples of the
	// step: TTF spans start→first result, TTK start→3rd result, so both
	// are positive whole seconds with TTK strictly later.
	if ttf.Sum() <= 0 || ttk.Sum() <= ttf.Sum() {
		t.Fatalf("ttf sum %v, ttk sum %v: want 0 < ttf < ttk", ttf.Sum(), ttk.Sum())
	}
	if ttf.Sum() != float64(int(ttf.Sum())) || ttk.Sum() != float64(int(ttk.Sum())) {
		t.Fatalf("observations not whole fake-clock steps: ttf %v ttk %v", ttf.Sum(), ttk.Sum())
	}

	// k=10 > 5 results: the stream exhausts before the k'th result, so
	// TTK must NOT observe while TTF does.
	resp, lines = streamTopK(t, ts.URL+"/v1/query/paths/topk?k=10")
	if resp.StatusCode != 200 || len(lines) != 6 {
		t.Fatalf("k=10: status %d, %d lines", resp.StatusCode, len(lines))
	}
	if ttf.Count() != 2 {
		t.Fatalf("ttf count %d after short stream, want 2", ttf.Count())
	}
	if ttk.Count() != 1 {
		t.Fatalf("ttk count %d after short stream, want still 1", ttk.Count())
	}
}

// TestStatsCountersRace hammers the obs-backed stats counters from
// every direction at once — topk streams, /v1/stats reads, /metrics
// scrapes — so `go test -race` checks the whole read/write surface.
func TestStatsCountersRace(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerPath(t, ts.URL)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				resp, err := http.Get(ts.URL + "/v1/query/paths/topk?k=2")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				resp, err := http.Get(ts.URL + "/v1/stats")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	// The query-request counter agrees between /v1/stats and /metrics.
	_, stats := doJSON(t, "GET", ts.URL+"/v1/stats", nil)
	reqs, _ := stats["requests"].(float64)
	if reqs < 40 {
		t.Fatalf("stats requests = %v, want >= 40", reqs)
	}
	if !strings.Contains(scrape(t, ts.URL), fmt.Sprintf("anykd_query_requests_total %d", int(reqs))) {
		t.Errorf("/metrics and /v1/stats disagree on query requests (%v)", reqs)
	}
}

// TestAdminHandlerAndGoroutineLeak mounts the admin mux (pprof +
// metrics), exercises it alongside query traffic, and asserts the
// whole stack winds down without leaking goroutines.
func TestAdminHandlerAndGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()

	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	admin := httptest.NewServer(s.AdminHandler())
	registerPath(t, ts.URL)

	for _, path := range []string{"/debug/pprof/cmdline", "/metrics"} {
		resp, err := http.Get(admin.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("admin %s: status %d", path, resp.StatusCode)
		}
	}
	if !strings.Contains(func() string {
		resp, err := http.Get(admin.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}(), "go_goroutines") {
		t.Error("admin /metrics missing runtime series")
	}
	resp, err := http.Get(ts.URL + "/v1/query/paths/topk?k=2")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	ts.Close()
	admin.Close()
	s.Close()
	http.DefaultClient.CloseIdleConnections()
	waitFor(t, "goroutines to drain after shutdown", func() bool {
		return runtime.NumGoroutine() <= base+3
	})
}

// TestDisableObservability: the baseline mode serves identical results
// with no trace header and no access log.
func TestDisableObservability(t *testing.T) {
	var buf syncBuffer
	_, ts := newTestServer(t, Config{DisableObservability: true, AccessLog: &buf})
	registerPath(t, ts.URL)
	resp, lines := streamTopK(t, ts.URL+"/v1/query/paths/topk?k=3")
	if resp.StatusCode != 200 || len(lines) != 4 {
		t.Fatalf("status %d, %d lines", resp.StatusCode, len(lines))
	}
	if got := resp.Header.Get("X-Trace-Id"); got != "" {
		t.Errorf("X-Trace-Id present in disabled mode: %q", got)
	}
	wantWeights := []float64{2, 3, 5}
	for i, w := range wantWeights {
		if lines[i].Weight == nil || *lines[i].Weight != w {
			t.Fatalf("line %d weight = %v, want %v (results must not depend on instrumentation)", i, lines[i].Weight, w)
		}
	}
	if buf.String() != "" {
		t.Errorf("access log written in disabled mode: %q", buf.String())
	}
}
