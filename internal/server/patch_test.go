package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

// errCode extracts the machine-readable code from an error envelope.
func errCode(t *testing.T, body map[string]any) string {
	t.Helper()
	env, ok := body["error"].(map[string]any)
	if !ok {
		t.Fatalf("response is not an error envelope: %v", body)
	}
	code, _ := env["code"].(string)
	if code == "" {
		t.Fatalf("error envelope has no code: %v", body)
	}
	if msg, _ := env["message"].(string); msg == "" {
		t.Fatalf("error envelope has no message: %v", body)
	}
	return code
}

// TestDatasetPatchWarmPlans is the serving-layer acceptance test for
// deltas: a PATCH advances the dataset snapshot AND the warm compiled
// plan in place, so the next request is a registry hit (zero
// preparation) that serves the updated data.
func TestDatasetPatchWarmPlans(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	registerPath(t, ts.URL)

	// Warm the sum plan: cold miss, then hit.
	resp, _ := streamTopK(t, ts.URL+"/v1/query/paths/topk?k=3&agg=sum")
	if got := resp.Header.Get("X-Plan-Cache"); got != "miss" {
		t.Fatalf("cold request X-Plan-Cache = %q, want miss", got)
	}

	// Delete (10,101) (killing join results with weight 2 and 3) and
	// append (10,102) with weight 0.5 (creating results 1.5 and 2.5).
	resp2, body := doJSON(t, "PATCH", ts.URL+"/v1/datasets/r2", map[string]any{
		"delete":         []any{[]any{10, 101}},
		"append":         []any{[]any{10, 102}},
		"append_weights": []float64{0.5},
	})
	mustStatus(t, resp2, body, 200)
	if body["version"] != float64(2) || body["epoch"] != float64(2) || body["stats_version"] != float64(2) {
		t.Fatalf("patch response versions = %v", body)
	}
	if body["appended"] != float64(1) || body["deleted"] != float64(1) {
		t.Fatalf("patch response counts = %v", body)
	}
	if body["stats"] != "recollected" { // the batch has an effective delete
		t.Fatalf("stats = %v, want recollected", body["stats"])
	}
	if body["plans_patched"] != float64(1) {
		t.Fatalf("plans_patched = %v, want 1", body["plans_patched"])
	}

	// The warm entry survived the delta under the new-version key: hit,
	// and the stream reflects the patched data bit-for-bit.
	resp3, lines := streamTopK(t, ts.URL+"/v1/query/paths/topk?k=3&agg=sum")
	if got := resp3.Header.Get("X-Plan-Cache"); got != "hit" {
		t.Fatalf("post-patch X-Plan-Cache = %q, want hit (warm plan dropped)", got)
	}
	wantWeights := []float64{1.5, 2.5, 5}
	if len(lines) != 4 {
		t.Fatalf("post-patch stream has %d lines: %+v", len(lines), lines)
	}
	for i, w := range wantWeights {
		if lines[i].Weight == nil || *lines[i].Weight != w {
			t.Fatalf("post-patch line %d weight = %v, want %v", i, lines[i].Weight, w)
		}
	}

	// Dataset listing reports the bumped stats generation and epoch.
	respL, bodyL := doJSON(t, "GET", ts.URL+"/v1/datasets", nil)
	mustStatus(t, respL, bodyL, 200)
	found := false
	for _, d := range bodyL["datasets"].([]any) {
		ds := d.(map[string]any)
		if ds["name"] == "r2" {
			found = true
			if ds["version"] != float64(2) || ds["stats_version"] != float64(2) || ds["epoch"] != float64(2) {
				t.Fatalf("listed r2 = %v", ds)
			}
		} else if ds["epoch"] != float64(1) {
			t.Fatalf("unpatched dataset %v should be at epoch 1", ds)
		}
	}
	if !found {
		t.Fatalf("r2 missing from listing: %v", bodyL)
	}

	// /v1/stats counts the delta and the patched handle, and the resident
	// plan's own stats expose its advanced epoch.
	if got := s.met.patches.Value(); got != 1 {
		t.Fatalf("patches counter = %d", got)
	}
	respS, bodyS := doJSON(t, "GET", ts.URL+"/v1/stats", nil)
	mustStatus(t, respS, bodyS, 200)
	if bodyS["patches"] != float64(1) || bodyS["plans_patched"] != float64(1) {
		t.Fatalf("stats patches = %v plans_patched = %v", bodyS["patches"], bodyS["plans_patched"])
	}
	plans := bodyS["plans"].([]any)
	if len(plans) == 0 {
		t.Fatal("no resident plans after patch")
	}
	for _, pl := range plans {
		st := pl.(map[string]any)["plan"].(map[string]any)
		if st["epoch"] != float64(2) || st["deltas_applied"] != float64(1) {
			t.Fatalf("resident plan stats = %v, want epoch 2 with 1 delta", st)
		}
	}
}

// TestDatasetPatchAppendOnlyMergesStats pins the sketch-merge fast
// path: a pure append derives the new snapshot's statistics by merging
// the delta's sketches into the previous ones, no rescan.
func TestDatasetPatchAppendOnlyMergesStats(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerPath(t, ts.URL)

	resp, body := doJSON(t, "PATCH", ts.URL+"/v1/datasets/r1", map[string]any{
		"append": []any{[]any{3, 12}, []any{3, 13}},
	})
	mustStatus(t, resp, body, 200)
	if body["stats"] != "merged" {
		t.Fatalf("append-only stats = %v, want merged", body["stats"])
	}
	if body["appended"] != float64(2) || body["deleted"] != float64(0) {
		t.Fatalf("counts = %v", body)
	}

	// Deletes that all miss leave the snapshot (and every version) alone.
	resp2, body2 := doJSON(t, "PATCH", ts.URL+"/v1/datasets/r1", map[string]any{
		"delete": []any{[]any{99, 99}},
	})
	mustStatus(t, resp2, body2, 200)
	if body2["version"] != float64(2) || body2["epoch"] != float64(2) || body2["deleted"] != float64(0) {
		t.Fatalf("no-op patch response = %v", body2)
	}
}

// TestDatasetPatchCSV covers the CSV body modes: ?mode=append parses
// like an upload (trailing weight column), ?mode=delete parses value
// columns only.
func TestDatasetPatchCSV(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerPath(t, ts.URL)

	do := func(query, csv string) (*http.Response, map[string]any) {
		t.Helper()
		req, err := http.NewRequest("PATCH", ts.URL+"/v1/datasets/r2"+query, bytes.NewReader([]byte(csv)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "text/csv")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
		return resp, out
	}

	resp, body := do("", "b,c,w\n10,103,7\n")
	mustStatus(t, resp, body, 200)
	if body["appended"] != float64(1) || body["rows"] != float64(4) {
		t.Fatalf("CSV append response = %v", body)
	}
	resp2, body2 := do("?mode=delete", "b,c\n10,103\n")
	mustStatus(t, resp2, body2, 200)
	if body2["deleted"] != float64(1) || body2["rows"] != float64(3) {
		t.Fatalf("CSV delete response = %v", body2)
	}
	resp3, body3 := do("?mode=sideways", "b,c\n1,2\n")
	mustStatus(t, resp3, body3, 400)
	if code := errCode(t, body3); code != errInvalidArgument {
		t.Fatalf("bad mode code = %q", code)
	}
}

// TestDatasetPatchErrors pins the PATCH error contract and the unified
// error envelope's machine-readable codes.
func TestDatasetPatchErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerPath(t, ts.URL)

	cases := []struct {
		name   string
		url    string
		body   any
		status int
		code   string
	}{
		{"unknown dataset", "/v1/datasets/nope", map[string]any{"append": []any{[]any{1, 2}}}, 404, errNotFound},
		{"bad name", "/v1/datasets/no%20pe", nil, 400, errInvalidArgument},
		{"empty delta", "/v1/datasets/r1", map[string]any{}, 400, errInvalidArgument},
		{"arity mismatch", "/v1/datasets/r1", map[string]any{"append": []any{[]any{1, 2, 3}}}, 400, errInvalidArgument},
		{"weights mismatch", "/v1/datasets/r1", map[string]any{"append": []any{[]any{1, 2}}, "append_weights": []float64{1, 2}}, 400, errInvalidArgument},
	}
	for _, tc := range cases {
		resp, body := doJSON(t, "PATCH", ts.URL+tc.url, tc.body)
		if resp.StatusCode != tc.status {
			t.Fatalf("%s: status %d, want %d (%v)", tc.name, resp.StatusCode, tc.status, body)
		}
		if code := errCode(t, body); code != tc.code {
			t.Fatalf("%s: code %q, want %q", tc.name, code, tc.code)
		}
	}
	// Failed patches must not bump anything.
	_, bodyL := doJSON(t, "GET", ts.URL+"/v1/datasets", nil)
	for _, d := range bodyL["datasets"].([]any) {
		ds := d.(map[string]any)
		if ds["version"] != float64(1) || ds["epoch"] != float64(1) {
			t.Fatalf("failed patches changed dataset state: %v", ds)
		}
	}
}

// TestErrorEnvelopeAcrossEndpoints spot-checks that the other /v1
// handlers emit the same envelope with the right codes.
func TestErrorEnvelopeAcrossEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerPath(t, ts.URL)

	resp, body := doJSON(t, "GET", ts.URL+"/v1/query/nope/topk", nil)
	mustStatus(t, resp, body, 404)
	if code := errCode(t, body); code != errNotFound {
		t.Fatalf("unknown query code = %q", code)
	}
	resp, body = doJSON(t, "GET", ts.URL+"/v1/query/paths/topk?k=zero", nil)
	mustStatus(t, resp, body, 400)
	if code := errCode(t, body); code != errInvalidArgument {
		t.Fatalf("bad k code = %q", code)
	}
	resp, body = doJSON(t, "GET", ts.URL+"/v1/query/paths/sample?n=-1", nil)
	mustStatus(t, resp, body, 400)
	if code := errCode(t, body); code != errInvalidArgument {
		t.Fatalf("bad n code = %q", code)
	}
	resp, body = doJSON(t, "POST", ts.URL+"/v1/queries/bad", map[string]any{"atoms": []any{}})
	mustStatus(t, resp, body, 400)
	if code := errCode(t, body); code != errInvalidArgument {
		t.Fatalf("empty query code = %q", code)
	}
	resp, body = doJSON(t, "POST", ts.URL+"/v1/datasets/bad", map[string]any{"tuples": []any{}})
	mustStatus(t, resp, body, 400)
	if code := errCode(t, body); code != errInvalidArgument {
		t.Fatalf("empty dataset code = %q", code)
	}
}
