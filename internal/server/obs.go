package server

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// serverMetrics is the server's Prometheus surface: every counter,
// gauge, and histogram the handlers touch, pre-resolved at construction
// so the hot path never takes the registry lock. The /v1/stats counters
// live here too — one set of atomics serves both the JSON stats payload
// and the /metrics exposition.
type serverMetrics struct {
	reg *obs.Registry

	// The /v1/stats counters (also exported as anykd_* series).
	queryRequests  *obs.Counter
	rejected       *obs.Counter
	inflight       *obs.Gauge
	patches        *obs.Counter
	plansPatched   *obs.Counter
	rowsStreamed   *obs.Counter
	watchdogCloses *obs.Counter

	// Plan preparation latency (registry lookup + build) by cache
	// disposition: a hit measures singleflight join/lookup time, a miss
	// the full compile + instantiate.
	prepareHit  *obs.Histogram
	prepareMiss *obs.Histogram

	// The paper's latency metrics, per ranking function: time from
	// request start to the first streamed result (TTF) and to the k'th
	// (TT(k), observed only on streams that reach k results). Keyed by
	// aggregate name; read-only after construction, so lookups are
	// lock-free.
	ttf map[string]*obs.Histogram
	ttk map[string]*obs.Histogram
}

// newServerMetrics builds the metric surface against s (whose registry
// and stream fields the func-backed series read at scrape time).
func newServerMetrics(s *Server) *serverMetrics {
	r := obs.NewRegistry()
	m := &serverMetrics{reg: r}
	m.queryRequests = r.Counter("anykd_query_requests_total",
		"Query-path requests received (/topk, /sample, dataset PATCH).")
	m.rejected = r.Counter("anykd_admission_rejected_total",
		"Requests refused with 429 by admission control or per-query rate limits.")
	m.inflight = r.Gauge("anykd_inflight_enumerations",
		"Enumerations and sampling walks currently holding an admission slot.")
	m.patches = r.Counter("anykd_dataset_patches_total",
		"Dataset deltas applied via PATCH /v1/datasets/{name}.")
	m.plansPatched = r.Counter("anykd_plans_patched_total",
		"Warm registry handles advanced in place by dataset deltas.")
	m.rowsStreamed = r.Counter("anykd_rows_streamed_total",
		"NDJSON result rows streamed to clients.")
	m.watchdogCloses = r.Counter("anykd_watchdog_closes_total",
		"Iterators closed by the stream watchdog (disconnect, deadline, shutdown).")
	m.prepareHit = r.Histogram("anykd_prepare_seconds",
		"Plan registry lookup+build latency by cache disposition.",
		obs.DefDurationBuckets, obs.L("cache", "hit"))
	m.prepareMiss = r.Histogram("anykd_prepare_seconds",
		"Plan registry lookup+build latency by cache disposition.",
		obs.DefDurationBuckets, obs.L("cache", "miss"))

	m.ttf = make(map[string]*obs.Histogram, len(aggByName))
	m.ttk = make(map[string]*obs.Histogram, len(aggByName))
	aggs := make([]string, 0, len(aggByName))
	for name := range aggByName {
		aggs = append(aggs, name)
	}
	sort.Strings(aggs)
	for _, name := range aggs {
		m.ttf[name] = r.Histogram("anykd_ttf_seconds",
			"Time from request start to the first streamed result (TTF).",
			obs.DefDurationBuckets, obs.L("agg", name))
		m.ttk[name] = r.Histogram("anykd_ttk_seconds",
			"Time from request start to the k'th streamed result (TT(k)).",
			obs.DefDurationBuckets, obs.L("agg", name))
	}

	// Plan-registry series read the registry's own atomics at scrape
	// time, so the cache keeps exactly one source of truth.
	r.CounterFunc("anykd_plan_cache_hits_total",
		"Plan registry lookups that found the key resident (zero preparation).",
		func() float64 { return float64(s.reg.hits.Load()) })
	r.CounterFunc("anykd_plan_cache_misses_total",
		"Plan registry lookups that ran a build.",
		func() float64 { return float64(s.reg.misses.Load()) })
	r.CounterFunc("anykd_plan_cache_evictions_total",
		"Prepared plans dropped by the per-shard LRU bounds.",
		func() float64 { return float64(s.reg.evictions()) })
	r.GaugeFunc("anykd_plan_cache_size",
		"Prepared plans resident across all registry shards.",
		func() float64 { return float64(s.reg.size()) })
	r.GaugeFunc("anykd_active_streams",
		"Handlers currently registered with the stream group (includes drain bookkeeping).",
		func() float64 {
			s.streamMu.Lock()
			n := s.streams
			s.streamMu.Unlock()
			return float64(n)
		})
	obs.RegisterRuntime(r)
	return m
}

// statusWriter records the status code and body size flowing through a
// ResponseWriter for the access log and per-status metrics. Unwrap
// keeps http.NewResponseController (write deadlines) working, and the
// explicit Flush keeps the streaming handlers' Flusher assertion true.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// requestIDRe bounds what a client-supplied X-Request-ID may look like;
// anything else (including absence) gets a generated id. The bound
// keeps log lines and error envelopes injection-free.
var requestIDRe = regexp.MustCompile(`^[A-Za-z0-9._-]{1,128}$`)

// wrap is the per-endpoint observability middleware: request id
// generation/echo, trace creation (X-Trace-Id + ring buffer), request
// counters and latency histograms, the structured access log, and the
// slow-query log. Endpoint metric series are resolved once here, at
// route-registration time, so per-request work is lock-free. With
// Config.DisableObservability the handler is returned untouched — the
// uninstrumented baseline the overhead benchmark measures against.
func (s *Server) wrap(endpoint string, withTrace bool, h http.HandlerFunc) http.HandlerFunc {
	if s.cfg.DisableObservability {
		return h
	}
	reg := s.met.reg
	reqs := reg.Counter("anykd_http_requests_total",
		"HTTP requests by endpoint.", obs.L("endpoint", endpoint))
	dur := reg.Histogram("anykd_http_request_duration_seconds",
		"HTTP request latency by endpoint.", obs.DefDurationBuckets, obs.L("endpoint", endpoint))
	infl := reg.Gauge("anykd_http_inflight_requests",
		"HTTP requests currently being served by endpoint.", obs.L("endpoint", endpoint))
	var byClass [6]*obs.Counter
	for c := 1; c <= 5; c++ {
		byClass[c] = reg.Counter("anykd_http_responses_total",
			"HTTP responses by endpoint and status class.",
			obs.L("endpoint", endpoint), obs.L("class", fmt.Sprintf("%dxx", c)))
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := s.now()
		reqs.Inc()
		infl.Add(1)
		defer infl.Add(-1)

		// Header keys below are spelled in net/http canonical form so
		// Set/Get hit textproto's no-alloc fast path on this per-request
		// code; the wire form is identical either way.
		reqID := r.Header.Get("X-Request-Id")
		if reqID == "" || !requestIDRe.MatchString(reqID) {
			reqID = obs.NewID()
		}
		sw := &statusWriter{ResponseWriter: w}
		sw.Header().Set("X-Request-Id", reqID)

		var tr *obs.Trace
		if withTrace {
			var ctx context.Context
			ctx, tr = obs.NewTrace(r.Context(), obs.NewID(), start)
			sw.Header().Set("X-Trace-Id", tr.ID)
			r = r.WithContext(ctx)
		}

		h(sw, r)

		elapsed := s.now().Sub(start)
		dur.Observe(elapsed.Seconds())
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		if c := status / 100; c >= 1 && c <= 5 {
			byClass[c].Inc()
		}
		traceID := ""
		if tr != nil {
			tr.Finish(start.Add(elapsed))
			s.traces.Add(tr)
			traceID = tr.ID
		}
		if s.access != nil {
			s.access.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", status),
				slog.Int64("bytes", sw.bytes),
				slog.Float64("duration_ms", float64(elapsed)/float64(time.Millisecond)),
				slog.String("trace_id", traceID),
				slog.String("request_id", reqID),
				slog.String("plan_cache", sw.Header().Get("X-Plan-Cache")),
			)
		}
		if s.slow != nil && s.cfg.SlowQueryThreshold > 0 && elapsed >= s.cfg.SlowQueryThreshold {
			s.slow.LogAttrs(r.Context(), slog.LevelWarn, "slow-query",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", status),
				slog.Float64("duration_ms", float64(elapsed)/float64(time.Millisecond)),
				slog.Float64("threshold_ms", float64(s.cfg.SlowQueryThreshold)/float64(time.Millisecond)),
				slog.String("trace_id", traceID),
				slog.String("request_id", reqID),
			)
		}
	}
}

// tokenBucket is one per-query-name rate limiter: cfg.RateLimit tokens
// per second, bursting to max(1, RateLimit). The bucket's own counters
// were resolved when the bucket was created, so allow stays off the
// registry lock.
type tokenBucket struct {
	mu       sync.Mutex
	rate     float64
	burst    float64
	tokens   float64
	last     time.Time
	accepted *obs.Counter
	limited  *obs.Counter
}

func (b *tokenBucket) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.last.IsZero() {
		b.last = now
		b.tokens = b.burst
	}
	if el := now.Sub(b.last).Seconds(); el > 0 {
		b.tokens = math.Min(b.burst, b.tokens+el*b.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// allowQuery applies the per-query token bucket to one /topk or
// /sample request. Buckets are created lazily per registered query
// name (callers gate on resolveQuery first, so unknown names never
// grow the map).
func (s *Server) allowQuery(name string) bool {
	if s.cfg.RateLimit <= 0 {
		return true
	}
	s.limitMu.Lock()
	b := s.limiters[name]
	if b == nil {
		b = &tokenBucket{
			rate:  s.cfg.RateLimit,
			burst: math.Max(1, s.cfg.RateLimit),
			accepted: s.met.reg.Counter("anykd_ratelimit_accepted_total",
				"Requests admitted by the per-query rate limiter.", obs.L("query", name)),
			limited: s.met.reg.Counter("anykd_ratelimit_limited_total",
				"Requests refused with 429 by the per-query rate limiter.", obs.L("query", name)),
		}
		s.limiters[name] = b
	}
	s.limitMu.Unlock()
	if b.allow(s.now()) {
		b.accepted.Inc()
		return true
	}
	b.limited.Inc()
	return false
}

// rateRetryAfter is the Retry-After value for a rate-limited request:
// roughly one token's refill time, at least one second.
func (s *Server) rateRetryAfter() string {
	secs := 1
	if s.cfg.RateLimit > 0 {
		if n := int(math.Ceil(1 / s.cfg.RateLimit)); n > secs {
			secs = n
		}
	}
	return strconv.Itoa(secs)
}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format (also mounted on AdminHandler).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.reg.WritePrometheus(w)
}

// handleTrace serves GET /v1/traces/{id}: the recorded span tree of a
// recent request, addressed by the X-Trace-Id its response carried.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr := s.traces.Get(id)
	if tr == nil {
		httpError(w, http.StatusNotFound, errNotFound,
			"unknown trace %q (the ring keeps the most recent %d)", id, s.cfg.TraceCapacity)
		return
	}
	writeJSON(w, tr.Snapshot())
}

// AdminHandler returns the operator-only handler tree — net/http/pprof
// under /debug/pprof/ plus a /metrics alias — meant for a separate
// loopback listener (cmd/anykd's -admin-addr), never the public mux.
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}
