package server

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMidStreamDisconnectReleasesEverything is the satellite coverage
// for mid-stream cancellation: a client that disconnects during NDJSON
// streaming must release the iterator (via the watchdog's concurrent
// Close), free the admission slot, and leave no goroutines behind.
func TestMidStreamDisconnectReleasesEverything(t *testing.T) {
	s := New(Config{MaxInflight: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()
	registerBigPath(t, ts.URL)

	// Warm the plan so the disconnect exercises enumeration, and settle
	// the goroutine baseline after the HTTP keep-alive machinery spins
	// up.
	resp, err := http.Get(ts.URL + "/v1/query/big/topk?k=3")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	waitFor(t, "baseline idle", func() bool { return s.met.inflight.Value() == 0 })
	base := runtime.NumGoroutine()

	for trial := 0; trial < 5; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/query/big/topk?k=2000000&timeout=30s", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		br := bufio.NewReader(resp.Body)
		// Read a couple of lines so the disconnect is genuinely
		// mid-stream, then hang up.
		for i := 0; i < 2; i++ {
			if _, err := br.ReadString('\n'); err != nil {
				t.Fatalf("trial %d: stream died before disconnect: %v", trial, err)
			}
		}
		cancel()
		resp.Body.Close()

		// The admission slot must come back: with MaxInflight=1 the next
		// request only succeeds once the disconnected stream fully
		// released it.
		waitFor(t, "admission slot release", func() bool {
			r2, err := http.Get(ts.URL + "/v1/query/big/topk?k=1")
			if err != nil {
				return false
			}
			defer r2.Body.Close()
			io.Copy(io.Discard, r2.Body)
			return r2.StatusCode == http.StatusOK
		})
	}

	// No goroutine leaks: the watchdogs, handlers, and iterator
	// plumbing of all five aborted streams must be gone. Allow a little
	// slack for idle HTTP keep-alive conns.
	waitFor(t, "goroutines to settle", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= base+3
	})
}

// TestMidStreamDeadlineTrailer drives a slow consumer into the request
// deadline and checks the stream ends with an explanatory error trailer
// rather than a silent cut.
func TestMidStreamDeadlineTrailer(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()
	registerBigPath(t, ts.URL)

	resp, err := http.Get(ts.URL + "/v1/query/big/topk?k=2000000&timeout=250ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	last := lines[len(lines)-1]
	if !strings.Contains(last, "deadline") {
		t.Fatalf("final line %q does not mention the deadline (total %d lines)", last, len(lines))
	}
	waitFor(t, "inflight to drain", func() bool { return s.met.inflight.Value() == 0 })
}
