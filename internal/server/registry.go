package server

import (
	"container/list"
	"context"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"repro"
)

// sfCache is a singleflight LRU of prepared handles — the building
// block both registry layers share. A missing key is built by the first
// caller while every concurrent caller for the same key blocks on the
// entry's ready channel and receives the same result; failed (or
// canceled) builds are removed before ready closes, so they are never
// cached and the next request retries. The LRU bound evicts only
// entries whose build finished — in-flight builds are skipped (their
// builder and waiters hold references, and dropping them would only
// duplicate work).
type sfCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*sfEntry
	lru     *list.List // front = most recently used; values are *sfEntry

	evicted atomic.Int64
}

type sfEntry struct {
	key   string
	elem  *list.Element
	ready chan struct{} // closed when the build finished (either way)
	built atomic.Bool   // true once ready is closed with err == nil
	p     *repro.Prepared
	meta  any // opaque build payload (the compile cache stores the queryDef)
	err   error
}

func newSFCache(capacity int) *sfCache {
	if capacity < 1 {
		capacity = 1
	}
	return &sfCache{
		cap:     capacity,
		entries: make(map[string]*sfEntry),
		lru:     list.New(),
	}
}

// get returns the handle for key, building it with build on a miss;
// found reports whether the key was already resident (built or
// in-flight — either way the caller runs zero preparation itself).
// A waiter's own ctx can abandon the wait, but a finished build is
// preferred over a racing cancellation so a warm hit with an expired
// context still returns the plan (the run's own Next then reports the
// cancellation deterministically).
func (c *sfCache) get(ctx context.Context, key string, build func() (*repro.Prepared, error)) (p *repro.Prepared, found bool, err error) {
	p, _, found, err = c.getMeta(ctx, key, func() (*repro.Prepared, any, error) {
		p, err := build()
		return p, nil, err
	})
	return p, found, err
}

// getMeta is get for callers that attach an opaque payload to the
// entry alongside the handle (retrievable via eachMeta/take).
func (c *sfCache) getMeta(ctx context.Context, key string, build func() (*repro.Prepared, any, error)) (p *repro.Prepared, meta any, found bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		select {
		case <-e.ready:
		default:
			select {
			case <-e.ready:
			case <-ctx.Done():
				return nil, nil, true, ctx.Err()
			}
		}
		return e.p, e.meta, true, e.err
	}
	e := &sfEntry{key: key, ready: make(chan struct{})}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.mu.Unlock()

	e.p, e.meta, e.err = build()
	if e.err == nil {
		e.built.Store(true)
	}
	close(e.ready)
	c.mu.Lock()
	if e.err != nil {
		if c.entries[key] == e {
			delete(c.entries, key)
			c.lru.Remove(e.elem)
		}
	} else {
		for el := c.lru.Back(); el != nil && c.lru.Len() > c.cap; {
			prev := el.Prev()
			ev := el.Value.(*sfEntry)
			if ev.built.Load() {
				c.lru.Remove(el)
				delete(c.entries, ev.key)
				c.evicted.Add(1)
			}
			el = prev
		}
	}
	c.mu.Unlock()
	return e.p, e.meta, false, e.err
}

// take removes the built entry for key and returns its payload; false
// when the key is absent or its build is still in flight (an in-flight
// build cannot be moved — its builder publishes under the old key).
func (c *sfCache) take(key string) (*repro.Prepared, any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || !e.built.Load() {
		return nil, nil, false
	}
	delete(c.entries, key)
	c.lru.Remove(e.elem)
	return e.p, e.meta, true
}

// putBuilt inserts an already-built entry under key, evicting over
// capacity. When the key is already resident (a concurrent request
// built it fresh against the same data) the existing entry wins and
// putBuilt reports false — clobbering an in-flight build would orphan
// its waiters.
func (c *sfCache) putBuilt(key string, p *repro.Prepared, meta any) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return false
	}
	e := &sfEntry{key: key, ready: make(chan struct{}), p: p, meta: meta}
	e.built.Store(true)
	close(e.ready)
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	for el := c.lru.Back(); el != nil && c.lru.Len() > c.cap; {
		prev := el.Prev()
		ev := el.Value.(*sfEntry)
		if ev.built.Load() {
			c.lru.Remove(el)
			delete(c.entries, ev.key)
			c.evicted.Add(1)
		}
		el = prev
	}
	return true
}

// len reports the resident entry count.
func (c *sfCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// each calls f for every built resident entry. The entry list is
// snapshotted under the lock but f runs outside it, so an expensive
// callback (PlanStats walks plan structures) never blocks concurrent
// gets on this cache.
func (c *sfCache) each(f func(key string, p *repro.Prepared)) {
	c.eachMeta(func(key string, p *repro.Prepared, _ any) { f(key, p) })
}

// eachMeta is each with the entry's opaque payload.
func (c *sfCache) eachMeta(f func(key string, p *repro.Prepared, meta any)) {
	type kv struct {
		key  string
		p    *repro.Prepared
		meta any
	}
	c.mu.Lock()
	snap := make([]kv, 0, len(c.entries))
	for key, e := range c.entries {
		if e.built.Load() {
			snap = append(snap, kv{key, e.p, e.meta})
		}
	}
	c.mu.Unlock()
	for _, e := range snap {
		f(e.key, e.p, e.meta)
	}
}

// registry is the sharded prepared-plan cache at the heart of the
// serving layer. Fully prepared plans are keyed by (query-shape
// fingerprint, dataset bindings, ranking function) — see planKey — and
// live in one sfCache per shard, so a warm request does zero
// preparation and concurrent cold requests for one key run exactly one
// build, a singleflight on top of the per-handle onceCache the facade
// already maintains. One level deeper, the compiles cache shares the
// aggregate-independent repro.Compile across the per-ranking entries
// of a query (keyed by dataKey alone), so a query served under five
// rankings plans and reduces its shape once. Sharding by key hash
// keeps the plan-level lock fine-grained under concurrent load; the
// LRU bounds resident plans per shard.
type registry struct {
	shards   []*sfCache
	compiles *sfCache

	hits   atomic.Int64 // key found (built or joining an in-flight build)
	misses atomic.Int64 // key absent: this caller ran the build
}

// newRegistry creates a registry with `shards` plan shards and a total
// plan capacity of roughly `capacity`, distributed evenly (each shard
// holds at least one); the compile cache holds up to `capacity`
// handles.
func newRegistry(shards, capacity int) *registry {
	if shards < 1 {
		shards = 1
	}
	r := &registry{
		shards:   make([]*sfCache, shards),
		compiles: newSFCache(capacity),
	}
	for i := range r.shards {
		r.shards[i] = newSFCache(capacity / shards)
	}
	return r
}

func (r *registry) shard(key string) *sfCache {
	h := fnv.New32a()
	h.Write([]byte(key))
	return r.shards[h.Sum32()%uint32(len(r.shards))]
}

// get returns the plan for key, building it with build on a miss.
// A caller that finds the key resident — built or in-flight — and
// receives the plan counts as a hit, because it did zero preparation;
// every build attempt counts as a miss. Waiters that abandon the wait
// or inherit a failed build are not counted, so hits never exceed
// successfully served zero-preparation requests — the invariant the
// acceptance tests measure against.
func (r *registry) get(ctx context.Context, key string, build func() (*repro.Prepared, error)) (p *repro.Prepared, hit bool, err error) {
	p, hit, err = r.shard(key).get(ctx, key, build)
	switch {
	case !hit:
		r.misses.Add(1)
	case err == nil:
		r.hits.Add(1)
	}
	return p, hit, err
}

// rekeyPlan moves a built plan entry from oldKey to newKey (which may
// hash to a different shard) — how warm per-ranking entries survive a
// dataset delta: the underlying handle was patched in place by
// ApplyDelta, so only its registry address changes. Reports whether an
// entry actually moved. When newKey is already resident (a concurrent
// request compiled fresh against the patched data), the old entry is
// simply dropped — both handles serve identical results.
func (r *registry) rekeyPlan(oldKey, newKey string) bool {
	p, meta, ok := r.shard(oldKey).take(oldKey)
	if !ok {
		return false
	}
	return r.shard(newKey).putBuilt(newKey, p, meta)
}

// rekeyCompile is rekeyPlan for the compile-level cache.
func (r *registry) rekeyCompile(oldKey, newKey string, meta any) bool {
	p, _, ok := r.compiles.take(oldKey)
	if !ok {
		return false
	}
	return r.compiles.putBuilt(newKey, p, meta)
}

// evictions sums the plans dropped by the per-shard LRU bounds.
func (r *registry) evictions() int64 {
	n := int64(0)
	for _, sh := range r.shards {
		n += sh.evicted.Load()
	}
	return n
}

// size reports the number of resident plans across all shards.
func (r *registry) size() int {
	n := 0
	for _, sh := range r.shards {
		n += sh.len()
	}
	return n
}

// regPlan is one resident plan in a registry snapshot. Recost mirrors
// the plan's NeedsRecost flag at the top level so operators scanning
// /v1/stats spot misestimated plans without digging into each plan's
// estimator fields.
type regPlan struct {
	Key    string          `json:"key"`
	Plan   repro.PlanStats `json:"plan"`
	Recost bool            `json:"recost,omitempty"`
}

// snapshot lists the built resident plans sorted by key, for /v1/stats.
func (r *registry) snapshot() []regPlan {
	var out []regPlan
	for _, sh := range r.shards {
		sh.each(func(key string, p *repro.Prepared) {
			st := p.PlanStats()
			out = append(out, regPlan{Key: key, Plan: st, Recost: st.NeedsRecost})
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
