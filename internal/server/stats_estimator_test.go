package server

import (
	"encoding/json"
	"net/http"
	"testing"
)

// TestStatsEstimatorFields covers the /v1/stats estimator surface: a
// cyclic plan compiled through the per-dataset catalog reports
// cost_based with estimated-vs-actual bag sizes and an estimator error,
// and re-registering the dataset at a new version produces a fresh
// plan (new snapshot, new statistics) instead of reusing the stale one.
func TestStatsEstimatorFields(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	putEdges := func(tuples []any) {
		t.Helper()
		resp, body := doJSON(t, "POST", ts.URL+"/v1/datasets/edges", map[string]any{"tuples": tuples})
		mustStatus(t, resp, body, 200)
	}
	putEdges([]any{[]any{1, 2}, []any{2, 3}, []any{3, 1}, []any{2, 1}, []any{1, 3}, []any{3, 2}})
	resp, body := doJSON(t, "POST", ts.URL+"/v1/queries/tri", map[string]any{
		"atoms": []any{
			map[string]any{"dataset": "edges", "vars": []string{"A", "B"}},
			map[string]any{"dataset": "edges", "vars": []string{"B", "C"}},
			map[string]any{"dataset": "edges", "vars": []string{"C", "A"}},
		},
	})
	mustStatus(t, resp, body, 200)

	streamTopK(t, ts.URL+"/v1/query/tri/topk?k=1")
	stats := func() statsResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st statsResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	st := stats()
	if len(st.Plans) != 1 {
		t.Fatalf("plans = %d, want 1", len(st.Plans))
	}
	p := st.Plans[0].Plan
	if p.Kind != "triangle" {
		t.Fatalf("kind = %q, want triangle", p.Kind)
	}
	if !p.CostBased {
		t.Fatal("server-compiled plan is not cost-based — the catalog did not reach Compile")
	}
	if p.EstOutput <= 0 || len(p.EstBagSizes) != 1 {
		t.Fatalf("estimates missing: est_output=%g est_bag_sizes=%v", p.EstOutput, p.EstBagSizes)
	}
	if p.EstimatorError < 1 {
		t.Fatalf("estimator_error = %g after a built ranking, want >= 1", p.EstimatorError)
	}
	if st.Plans[0].Recost != p.NeedsRecost {
		t.Fatalf("registry recost flag %v does not mirror plan needs_recost %v", st.Plans[0].Recost, p.NeedsRecost)
	}

	// Re-register the dataset: the bumped version snapshot carries fresh
	// statistics, and the next run compiles a second plan against it —
	// the stale plan is never served for the new data.
	putEdges([]any{[]any{5, 6}, []any{6, 7}, []any{7, 5}})
	streamTopK(t, ts.URL+"/v1/query/tri/topk?k=1")
	st = stats()
	if len(st.Plans) != 2 {
		t.Fatalf("plans after re-registration = %d, want 2 (old snapshot + new)", len(st.Plans))
	}
	for i, rp := range st.Plans {
		if !rp.Plan.CostBased {
			t.Fatalf("plan %d lost cost-based planning after re-registration", i)
		}
	}
	if st.Plans[0].Key == st.Plans[1].Key {
		t.Fatal("re-registered dataset reused the old plan key — stale statistics would survive")
	}
}
