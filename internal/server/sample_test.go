package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"testing"
)

// streamSample fetches a /sample stream and parses the NDJSON lines.
func streamSample(t *testing.T, url string) (*http.Response, []sampleLine) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []sampleLine
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var l sampleLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp, lines
}

// TestSampleEndToEnd: every sampled line is one of the five path-join
// answers, the trailer carries a cardinality estimate, and the compile
// is shared with /topk (the warm /topk after sampling still hits the
// compile cache, sampling never enumerates).
func TestSampleEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerPath(t, ts.URL)

	resp, lines := streamSample(t, ts.URL+"/v1/query/paths/sample?n=40&seed=3")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", got)
	}
	if len(lines) < 2 {
		t.Fatalf("got %d lines, want samples + trailer", len(lines))
	}
	// The five answers of the registered 2-path fixture (see
	// registerPath) with their sum weights, in the query's output
	// schema order (B, C, A — the join-tree order the header reports).
	if got := resp.Header.Get("X-Out-Attrs"); got != "B,C,A" {
		t.Fatalf("X-Out-Attrs = %q, want B,C,A", got)
	}
	answers := map[string]float64{
		"[10 101 1]": 2, "[10 101 2]": 3, "[11 100 1]": 5,
		"[10 100 1]": 11, "[10 100 2]": 12,
	}
	body, trailer := lines[:len(lines)-1], lines[len(lines)-1]
	for _, l := range body {
		key := fmt.Sprint(tupleInts(l.Tuple))
		w, ok := answers[key]
		if !ok {
			t.Fatalf("sampled tuple %v is not a join answer", l.Tuple)
		}
		if l.Weight == nil || *l.Weight != w {
			t.Fatalf("sampled tuple %v weight %v, want %v", l.Tuple, l.Weight, w)
		}
	}
	if !trailer.Done || trailer.Count == nil || *trailer.Count != len(body) || trailer.Error != "" {
		t.Fatalf("trailer = %+v", trailer)
	}
	if trailer.AGM <= 0 || trailer.Trials <= 0 || trailer.EstCard <= 0 {
		t.Fatalf("trailer stats = %+v, want positive bound/trials/estimate", trailer)
	}
	// 40 requested from a 5-answer join with a generous default budget:
	// all 40 draws land.
	if len(body) != 40 {
		t.Fatalf("streamed %d samples, want 40", len(body))
	}

	// Same seed reproduces the same draws.
	_, again := streamSample(t, ts.URL+"/v1/query/paths/sample?n=40&seed=3")
	if len(again) != len(lines) {
		t.Fatalf("same seed drew %d lines, first run %d", len(again), len(lines))
	}
	for i := range body {
		if !reflect.DeepEqual(again[i].Tuple, body[i].Tuple) {
			t.Fatalf("same seed diverged at line %d: %v vs %v", i, again[i].Tuple, body[i].Tuple)
		}
	}

	// Sampling compiled the plan but ran no ranked preparation: the
	// first /topk still registry-misses (it joins the cached compile and
	// pays only the per-ranking warm-up).
	resp2, _ := streamTopK(t, ts.URL+"/v1/query/paths/topk?k=1")
	if got := resp2.Header.Get("X-Plan-Cache"); got != "miss" {
		t.Fatalf("first topk X-Plan-Cache = %q, want miss (sampling must not pre-run rankings)", got)
	}
}

// tupleInts normalises decoded JSON numbers for comparison.
func tupleInts(t []any) []int64 {
	out := make([]int64, len(t))
	for i, v := range t {
		if f, ok := v.(float64); ok {
			out[i] = int64(f)
		}
	}
	return out
}

// TestSampleBudgetExhausted: a query over disjoint datasets streams
// zero samples and a done trailer flagged budget_exhausted with a zero
// estimate.
func TestSampleBudgetExhausted(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := doJSON(t, "POST", ts.URL+"/v1/datasets/left", map[string]any{
		"tuples": []any{[]any{1, 2}, []any{3, 4}},
	})
	mustStatus(t, resp, body, 200)
	resp, body = doJSON(t, "POST", ts.URL+"/v1/datasets/right", map[string]any{
		"tuples": []any{[]any{5, 6}, []any{7, 8}},
	})
	mustStatus(t, resp, body, 200)
	resp, body = doJSON(t, "POST", ts.URL+"/v1/queries/disjoint", map[string]any{
		"atoms": []any{
			map[string]any{"dataset": "left", "vars": []string{"A", "B"}},
			map[string]any{"dataset": "right", "vars": []string{"B", "C"}},
		},
	})
	mustStatus(t, resp, body, 200)

	hresp, lines := streamSample(t, ts.URL+"/v1/query/disjoint/sample?n=5&seed=1")
	if hresp.StatusCode != 200 {
		t.Fatalf("status %d", hresp.StatusCode)
	}
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want bare trailer: %+v", len(lines), lines)
	}
	tr := lines[0]
	if !tr.Done || !tr.Exhausted || tr.Error != "" || tr.Count == nil || *tr.Count != 0 {
		t.Fatalf("trailer = %+v, want done+budget_exhausted with 0 samples", tr)
	}
	if tr.EstCard != 0 || tr.Trials <= 0 {
		t.Fatalf("trailer = %+v, want zero estimate from positive trials", tr)
	}
}

// TestSampleParamErrors covers the addressable client mistakes.
func TestSampleParamErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxK: 50})
	registerPath(t, ts.URL)
	for _, tc := range []struct {
		url  string
		code int
	}{
		{"/v1/query/paths/sample?n=0", http.StatusBadRequest},
		{"/v1/query/paths/sample?n=abc", http.StatusBadRequest},
		{"/v1/query/paths/sample?n=51", http.StatusBadRequest},
		{"/v1/query/paths/sample?seed=-1", http.StatusBadRequest},
		{"/v1/query/paths/sample?agg=median", http.StatusBadRequest},
		{"/v1/query/paths/sample?timeout=never", http.StatusBadRequest},
		{"/v1/query/nosuch/sample", http.StatusNotFound},
	} {
		resp, err := http.Get(ts.URL + tc.url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d", tc.url, resp.StatusCode, tc.code)
		}
	}
}
