package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro"
)

func compileTinyPlan(t testing.TB) func() (*repro.Prepared, error) {
	return func() (*repro.Prepared, error) {
		q := repro.NewQuery().
			Rel("R", []string{"A", "B"}, []repro.Tuple{{1, 2}}, []float64{1}).
			Rel("S", []string{"B", "C"}, []repro.Tuple{{2, 3}}, []float64{2})
		return repro.Compile(q)
	}
}

// TestRegistrySingleflight is the cold-burst half of the acceptance
// criterion: N concurrent requests for one cold key run exactly one
// build; everyone else joins it and counts as a hit.
func TestRegistrySingleflight(t *testing.T) {
	reg := newRegistry(4, 16)
	var builds atomic.Int64
	build := func() (*repro.Prepared, error) {
		builds.Add(1)
		return compileTinyPlan(t)()
	}
	const n = 64
	var wg sync.WaitGroup
	plans := make([]*repro.Prepared, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, _, err := reg.get(context.Background(), "k1", build)
			if err != nil {
				t.Error(err)
			}
			plans[i] = p
		}(i)
	}
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Fatalf("%d builds for one key under %d concurrent requests, want 1", got, n)
	}
	if reg.misses.Load() != 1 || reg.hits.Load() != n-1 {
		t.Fatalf("hits=%d misses=%d, want %d/1", reg.hits.Load(), reg.misses.Load(), n-1)
	}
	for i := 1; i < n; i++ {
		if plans[i] != plans[0] {
			t.Fatal("concurrent requests received different plan handles")
		}
	}
}

// TestRegistryFailedBuildNotCached: a build error must propagate to the
// caller (and any joiners) but the next request retries fresh.
func TestRegistryFailedBuildNotCached(t *testing.T) {
	reg := newRegistry(1, 4)
	boom := errors.New("boom")
	if _, _, err := reg.get(context.Background(), "k", func() (*repro.Prepared, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if reg.size() != 0 {
		t.Fatal("failed build left a cache entry")
	}
	p, hit, err := reg.get(context.Background(), "k", compileTinyPlan(t))
	if err != nil || hit || p == nil {
		t.Fatalf("retry after failed build: p=%v hit=%v err=%v", p, hit, err)
	}
}

// TestRegistryLRUEviction: capacity bounds resident plans, dropping the
// least recently used.
func TestRegistryLRUEviction(t *testing.T) {
	reg := newRegistry(1, 2)
	for i := 0; i < 3; i++ {
		if _, _, err := reg.get(context.Background(), fmt.Sprintf("k%d", i), compileTinyPlan(t)); err != nil {
			t.Fatal(err)
		}
	}
	if reg.size() != 2 {
		t.Fatalf("size = %d, want 2", reg.size())
	}
	if reg.evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", reg.evictions())
	}
	// k0 was evicted; k1 and k2 must still be warm.
	for _, k := range []string{"k1", "k2"} {
		if _, hit, _ := reg.get(context.Background(), k, compileTinyPlan(t)); !hit {
			t.Fatalf("%s evicted, want resident", k)
		}
	}
	if _, hit, _ := reg.get(context.Background(), "k0", compileTinyPlan(t)); hit {
		t.Fatal("k0 resident, want evicted")
	}
}

// TestRegistryLRURecency: touching an entry protects it from eviction.
func TestRegistryLRURecency(t *testing.T) {
	reg := newRegistry(1, 2)
	for _, k := range []string{"a", "b"} {
		if _, _, err := reg.get(context.Background(), k, compileTinyPlan(t)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so "b" is now least recently used.
	reg.get(context.Background(), "a", compileTinyPlan(t))
	reg.get(context.Background(), "c", compileTinyPlan(t))
	if _, hit, _ := reg.get(context.Background(), "a", compileTinyPlan(t)); !hit {
		t.Fatal("recently used entry was evicted")
	}
	if _, hit, _ := reg.get(context.Background(), "b", compileTinyPlan(t)); hit {
		t.Fatal("least recently used entry survived eviction")
	}
}

// TestRegistryJoinerCancel: a joiner whose context dies while a build is
// in flight unblocks with the context error; the build itself finishes
// and serves later requests.
func TestRegistryJoinerCancel(t *testing.T) {
	reg := newRegistry(1, 4)
	gate := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		reg.get(context.Background(), "k", func() (*repro.Prepared, error) {
			close(gate) // build is in flight
			<-release
			return compileTinyPlan(t)()
		})
	}()
	<-gate
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := reg.get(ctx, "k", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("joiner err = %v, want context.Canceled", err)
	}
	close(release)
	<-done
	if _, hit, err := reg.get(context.Background(), "k", nil); !hit || err != nil {
		t.Fatalf("after build: hit=%v err=%v, want warm hit", hit, err)
	}
}
