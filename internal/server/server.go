// Package server is the serving layer of the reproduction: an
// embeddable HTTP query service over the facade's prepare-once /
// execute-many API. Clients register named datasets (JSON tuples or
// CSV), register named queries binding those datasets to query
// variables, and stream ranked top-k results as NDJSON.
//
// The expensive half of every request — hypergraph analysis, T-DP or
// decomposition planning, per-ranking instantiation — is paid once per
// (query shape, dataset versions, ranking) and cached in a sharded LRU
// plan registry with singleflight build deduplication (see registry):
// under concurrent load a cold key triggers exactly one preparation and
// every warm request does zero preparation, going straight to the any-k
// enumeration whose per-result delay guarantees the streamed NDJSON
// inherits.
//
// Operational behaviour:
//
//   - Admission control: at most Config.MaxInflight enumerations run
//     concurrently; beyond that /topk returns 429 with Retry-After.
//   - Deadlines: every request gets Config.DefaultTimeout (clients may
//     lower — never raise past Config.MaxTimeout — via ?timeout=); the
//     deadline cancels the iterator mid-stream through the facade's
//     WithContext plumbing.
//   - Disconnects: a client going away cancels the request context; a
//     per-request watchdog additionally calls Iterator.Close
//     concurrently with the draining handler — safe since
//     core.Lifecycle serialises Close against Next — so the admission
//     slot and the iterator's resources are released promptly.
//   - Graceful shutdown: Shutdown stops admitting new streams, lets
//     in-flight enumerations drain within the caller's context, then
//     cancels the server base context (cutting any stragglers) and
//     waits for every handler to return.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/ranking"
	"repro/internal/relation"
)

// Config tunes a Server. The zero value selects the documented
// defaults.
type Config struct {
	// MaxInflight bounds concurrently running enumerations (the
	// admission-control semaphore). Default 64.
	MaxInflight int
	// DefaultTimeout is the per-request deadline when the client sends
	// no ?timeout=. Default 10s.
	DefaultTimeout time.Duration
	// MaxTimeout caps the client-requested ?timeout=. Default 60s.
	MaxTimeout time.Duration
	// MaxBodyBytes bounds dataset/query upload bodies. Default 64 MiB.
	MaxBodyBytes int64
	// MaxK caps ?k= (0 = unlimited). Default 0.
	MaxK int
	// RegistryCapacity bounds resident prepared plans across all
	// registry shards. Default 128.
	RegistryCapacity int
	// RegistryShards is the number of plan-registry shards. Default 8.
	RegistryShards int
	// RateLimit is the per-query-name token-bucket rate (requests per
	// second, bursting to max(1, RateLimit)) applied to /topk and
	// /sample. 0 disables rate limiting.
	RateLimit float64
	// TraceCapacity bounds the in-memory ring of recorded request
	// traces served by GET /v1/traces/{id}. Default 64.
	TraceCapacity int
	// SlowQueryThreshold, when positive, logs a structured slow-query
	// line (with the trace id) for any request at or above it.
	SlowQueryThreshold time.Duration
	// AccessLog, when non-nil, receives one JSON line per request
	// (log/slog). Nil disables access logging.
	AccessLog io.Writer
	// SlowQueryLog receives slow-query lines; nil falls back to the
	// AccessLog destination.
	SlowQueryLog io.Writer
	// DisableObservability strips the per-request middleware (tracing,
	// access logs, per-endpoint metrics) — the uninstrumented baseline
	// the overhead benchmark compares against. The /v1/stats counters
	// and the /metrics endpoint itself remain live.
	DisableObservability bool
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.RegistryCapacity <= 0 {
		c.RegistryCapacity = 128
	}
	if c.RegistryShards <= 0 {
		c.RegistryShards = 8
	}
	if c.TraceCapacity <= 0 {
		c.TraceCapacity = 64
	}
	return c
}

// Server is the query service. Create one with New, mount Handler on an
// http.Server (cmd/anykd does exactly that), and call Shutdown or Close
// when done.
type Server struct {
	cfg Config
	mux *http.ServeMux
	reg *registry
	sem chan struct{} // admission semaphore, buffered to MaxInflight

	baseCtx    context.Context // canceled to cut every in-flight stream
	cancelBase context.CancelFunc

	// Stream accounting. A plain counter under a mutex rather than a
	// WaitGroup: handlers may start concurrently with Shutdown's wait,
	// and WaitGroup panics when Add-from-zero races Wait. acquireStream
	// atomically refuses once draining is set; idle is created by the
	// first Shutdown and closed when the count reaches zero while
	// draining.
	streamMu   sync.Mutex
	draining   bool
	streams    int
	idle       chan struct{}
	idleClosed bool

	mu       sync.RWMutex
	datasets map[string]*dataset
	queries  map[string]*queryDef

	dictMu sync.RWMutex
	dict   *relation.Dictionary // shared across datasets so string joins line up

	// Observability: the metric surface (also backing /v1/stats), the
	// request-trace ring served by /v1/traces/{id}, the structured
	// loggers, and the per-query rate-limit buckets. now is the clock
	// every duration observation reads — a test seam for the TTF/TT(k)
	// histograms.
	met    *serverMetrics
	traces *obs.TraceStore
	access *slog.Logger
	slow   *slog.Logger
	now    func() time.Time

	limitMu  sync.Mutex
	limiters map[string]*tokenBucket
}

// dataset is an immutable registered relation instance. Re-registering
// a name installs a fresh dataset with a bumped version; plans compiled
// against the old version age out of the registry LRU.
type dataset struct {
	name    string
	version int
	arity   int
	attrs   []string // informational (CSV header or c0..cN-1)
	tuples  []relation.Tuple
	weights []float64
	// stats are the per-column statistics collected at registration (or
	// derived from the previous snapshot on a delta) and handed to every
	// Compile over this snapshot via the catalog. Like the rest of the
	// struct they are immutable: every update builds a fresh dataset
	// (bumped version) with its own statistics, so stale stats can never
	// plan a new snapshot.
	stats *catalog.RelationStats
	// statsVersion is the statistics generation for this name: bumped on
	// every registration and every delta, whether the stats were merged
	// sketch-wise (append-only delta) or recollected from scratch
	// (deletes, or unmergeable inputs).
	statsVersion int
	// epoch counts updates to this name since its last full upload: 1
	// at registration, +1 per applied PATCH delta.
	epoch int
}

// atomDef binds one dataset to query variables, one per atom.
type atomDef struct {
	Dataset string   `json:"dataset"`
	Vars    []string `json:"vars"`
}

// queryDef is a registered query: a shape over named datasets.
type queryDef struct {
	name        string
	atoms       []atomDef
	fingerprint string
	outAttrs    []string
}

// New returns a ready-to-mount Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	// The server's base context outlives any request on purpose: plan
	// builds run detached on it so a disconnecting winner cannot fail
	// the waiters sharing the build (bounded by MaxTimeout), and it is
	// canceled only by Shutdown.
	//anykvet:allow ctxplumb -- server-lifetime root context; detached-build path, canceled by Shutdown
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		mux:        http.NewServeMux(),
		reg:        newRegistry(cfg.RegistryShards, cfg.RegistryCapacity),
		sem:        make(chan struct{}, cfg.MaxInflight),
		baseCtx:    ctx,
		cancelBase: cancel,
		datasets:   make(map[string]*dataset),
		queries:    make(map[string]*queryDef),
		dict:       relation.NewDictionary(),
		now:        time.Now,
		limiters:   make(map[string]*tokenBucket),
	}
	s.met = newServerMetrics(s)
	s.traces = obs.NewTraceStore(cfg.TraceCapacity)
	if cfg.AccessLog != nil {
		s.access = slog.New(slog.NewJSONHandler(cfg.AccessLog, nil))
	}
	if slowW := cfg.SlowQueryLog; slowW != nil {
		s.slow = slog.New(slog.NewJSONHandler(slowW, nil))
	} else {
		s.slow = s.access
	}
	s.mux.HandleFunc("GET /healthz", s.wrap("healthz", false, s.handleHealthz))
	s.mux.HandleFunc("POST /v1/datasets/{name}", s.wrap("dataset_put", false, s.handleDatasetPut))
	s.mux.HandleFunc("PUT /v1/datasets/{name}", s.wrap("dataset_put", false, s.handleDatasetPut))
	s.mux.HandleFunc("PATCH /v1/datasets/{name}", s.wrap("dataset_patch", true, s.handleDatasetPatch))
	s.mux.HandleFunc("GET /v1/datasets", s.wrap("dataset_list", false, s.handleDatasetList))
	s.mux.HandleFunc("POST /v1/queries/{name}", s.wrap("query_put", false, s.handleQueryPut))
	s.mux.HandleFunc("PUT /v1/queries/{name}", s.wrap("query_put", false, s.handleQueryPut))
	s.mux.HandleFunc("GET /v1/queries", s.wrap("query_list", false, s.handleQueryList))
	s.mux.HandleFunc("GET /v1/query/{name}/topk", s.wrap("topk", true, s.handleTopK))
	s.mux.HandleFunc("GET /v1/query/{name}/sample", s.wrap("sample", true, s.handleSample))
	s.mux.HandleFunc("GET /v1/stats", s.wrap("stats", false, s.handleStats))
	s.mux.HandleFunc("GET /v1/traces/{id}", s.handleTrace)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the HTTP handler tree rooted at /.
func (s *Server) Handler() http.Handler { return s.mux }

// acquireStream registers one in-flight stream, refusing once the
// server is draining. Pair a true return with releaseStream.
func (s *Server) acquireStream() bool {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	if s.draining {
		return false
	}
	s.streams++
	return true
}

func (s *Server) releaseStream() {
	s.streamMu.Lock()
	s.streams--
	if s.streams == 0 && s.draining && s.idle != nil && !s.idleClosed {
		s.idleClosed = true
		close(s.idle)
	}
	s.streamMu.Unlock()
}

func (s *Server) isDraining() bool {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	return s.draining
}

// Shutdown gracefully stops the server: new /topk requests are refused
// with 503, in-flight streams drain until ctx expires, then the base
// context is canceled (which cancels every remaining iterator through
// WithContext) and Shutdown waits for the handlers to return. The
// HTTP listener itself is the caller's to close (http.Server.Shutdown).
// Shutdown is idempotent and safe to call concurrently.
func (s *Server) Shutdown(ctx context.Context) error {
	s.streamMu.Lock()
	s.draining = true
	if s.idle == nil {
		s.idle = make(chan struct{})
		if s.streams == 0 {
			s.idleClosed = true
			close(s.idle)
		}
	}
	idle := s.idle
	s.streamMu.Unlock()
	var err error
	select {
	case <-idle:
	case <-ctx.Done():
		err = ctx.Err()
	}
	// Cut any stragglers (no-op after a clean drain) and wait for them:
	// canceled iterators stop at their next Proceed, so this converges
	// within one result delay.
	s.cancelBase()
	<-idle
	return err
}

// Close is Shutdown with no grace period.
func (s *Server) Close() error {
	//anykvet:allow ctxplumb -- constructs an already-canceled context: zero grace, nothing to plumb
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Shutdown(ctx)
	return nil
}

var nameRe = regexp.MustCompile(`^[A-Za-z0-9_.-]{1,64}$`)

// writeGrace is how long past its deadline a stream may keep writing —
// enough to deliver the trailer line explaining the termination.
const writeGrace = 5 * time.Second

// cancelWriteGrace is the tighter write budget a canceled stream gets:
// once the request context is done (disconnect, deadline, shutdown)
// the watchdog shrinks the write deadline so a handler stalled on a
// non-reading client unblocks promptly while a live client can still
// receive the trailer.
const cancelWriteGrace = 2 * time.Second

// Machine-readable error codes: every non-2xx JSON response carries
// {"error": {"code": <one of these>, "message": <human text>}} so
// clients can branch without parsing prose. The NDJSON stream trailer's
// error field is unaffected — by then the HTTP status is long gone and
// the trailer is part of the result protocol, not the error envelope.
const (
	errInvalidArgument = "invalid_argument" // malformed name, parameter, or body
	errNotFound        = "not_found"        // unknown dataset or query
	errConflict        = "conflict"         // registered state disagrees (arity drift, concurrent update)
	errRateLimited     = "rate_limited"     // admission control refused the request
	errUnavailable     = "unavailable"      // server draining/shutting down
	errTimeout         = "timeout"          // preparation exceeded its deadline
	errInternal        = "internal"         // everything else
)

// errorBody is the unified error envelope of every /v1 endpoint.
// RequestID echoes the request's X-Request-ID (generated or
// client-supplied) so an error response correlates with the access log
// without the client having read the headers.
type errorBody struct {
	Error struct {
		Code      string `json:"code"`
		Message   string `json:"message"`
		RequestID string `json:"request_id,omitempty"`
	} `json:"error"`
}

func httpError(w http.ResponseWriter, status int, code string, format string, args ...any) {
	var body errorBody
	body.Error.Code = code
	body.Error.Message = fmt.Sprintf(format, args...)
	// The middleware stamped the id onto the response headers before the
	// handler ran; reading it back here spares every call site a
	// parameter.
	body.Error.RequestID = w.Header().Get("X-Request-Id")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(&body)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

// datasetUpload is the JSON form of a dataset body. Cells are JSON
// numbers (must be integral — the engine's domain is int64) or strings
// (dictionary-encoded server-wide, so string joins across datasets
// work).
type datasetUpload struct {
	Attrs     []string          `json:"attrs"`
	Weights   []float64         `json:"weights"`
	RawTuples []json.RawMessage `json:"tuples"`
}

func (s *Server) handleDatasetPut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !nameRe.MatchString(name) {
		httpError(w, http.StatusBadRequest, errInvalidArgument, "invalid dataset name %q", name)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	ct := r.Header.Get("Content-Type")
	var (
		ds  *dataset
		err error
	)
	if strings.HasPrefix(ct, "text/csv") {
		ds, err = s.readCSVDataset(name, r)
	} else {
		ds, err = s.readJSONDataset(name, r)
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, errInvalidArgument, "dataset %s: %v", name, err)
		return
	}
	// Collect planner statistics once per upload, outside the lock (one
	// linear scan per column; sketches keep it constant-memory).
	ds.stats = catalog.Collect(&relation.Relation{
		Name: name, Attrs: ds.attrs, Tuples: ds.tuples, Weights: ds.weights,
	})
	ds.epoch = 1
	s.mu.Lock()
	if old, ok := s.datasets[name]; ok {
		ds.version = old.version + 1
		ds.statsVersion = old.statsVersion + 1
	} else {
		ds.version = 1
		ds.statsVersion = 1
	}
	s.datasets[name] = ds
	s.mu.Unlock()
	writeJSON(w, map[string]any{
		"name": name, "rows": len(ds.tuples), "arity": ds.arity, "version": ds.version,
		"stats_version": ds.statsVersion, "epoch": ds.epoch,
	})
}

// readCSVDataset ingests a CSV body through relation.ReadCSV: first row
// is the header; ?weights=false treats every column as a value column
// (default true: the last column is the float weight). Column typing
// and dictionary encoding follow ReadCSV's whole-column rules. The
// body is parsed against a request-local dictionary so a slow, large
// upload never holds the shared dictionary lock that streaming
// handlers decode under; the local codes are remapped into the shared
// dictionary in one short critical section afterwards.
func (s *Server) readCSVDataset(name string, r *http.Request) (*dataset, error) {
	weightCol := true
	if v := r.URL.Query().Get("weights"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return nil, fmt.Errorf("bad weights param %q", v)
		}
		weightCol = b
	}
	local := relation.NewDictionary()
	rel, err := relation.ReadCSV(r.Body, name, weightCol, local)
	if err != nil {
		return nil, err
	}
	s.mergeDict(local, rel.Tuples)
	return &dataset{
		name:    name,
		arity:   len(rel.Attrs),
		attrs:   rel.Attrs,
		tuples:  rel.Tuples,
		weights: rel.Weights,
	}, nil
}

// mergeDict rewrites the codes a request-local dictionary assigned in
// tuples into the shared server dictionary, taking the shared lock for
// one short remap instead of once per parsed string. Both ingest paths
// reject raw integers at or above relation.DictBase, so every value in
// the code space here is a local code.
func (s *Server) mergeDict(local *relation.Dictionary, tuples []relation.Tuple) {
	if local.Len() == 0 {
		return
	}
	// Resolve already-known strings under the read lock first; the
	// write lock covers only genuinely new strings (typically none on a
	// re-upload), so streaming decodes stall as little as possible.
	remap := make([]relation.Value, local.Len())
	var misses []int
	s.dictMu.RLock()
	for i := range remap {
		str, _ := local.Decode(relation.DictBase + relation.Value(i))
		if c, ok := s.dict.Lookup(str); ok {
			remap[i] = c
		} else {
			misses = append(misses, i)
		}
	}
	s.dictMu.RUnlock()
	if len(misses) > 0 {
		s.dictMu.Lock()
		for _, i := range misses {
			str, _ := local.Decode(relation.DictBase + relation.Value(i))
			remap[i] = s.dict.Code(str)
		}
		s.dictMu.Unlock()
	}
	for _, t := range tuples {
		for j, v := range t {
			if v >= relation.DictBase {
				t[j] = remap[v-relation.DictBase]
			}
		}
	}
}

// parseJSONTuples decodes an array of JSON tuples (cells are integral
// numbers or strings — strings encode through the supplied dictionary).
// arity < 0 infers the arity from the first tuple; otherwise every
// tuple must match it. Returns the tuples and the (inferred) arity.
func parseJSONTuples(raws []json.RawMessage, arity int, local *relation.Dictionary) ([]relation.Tuple, int, error) {
	tuples := make([]relation.Tuple, len(raws))
	for i, raw := range raws {
		var cells []any
		d := json.NewDecoder(bytes.NewReader(raw))
		d.UseNumber()
		if err := d.Decode(&cells); err != nil {
			return nil, 0, fmt.Errorf("tuple %d: %v", i, err)
		}
		if arity < 0 {
			arity = len(cells)
			if arity == 0 {
				return nil, 0, fmt.Errorf("tuple %d is empty", i)
			}
		} else if len(cells) != arity {
			return nil, 0, fmt.Errorf("tuple %d has arity %d, want %d", i, len(cells), arity)
		}
		t := make(relation.Tuple, arity)
		for j, c := range cells {
			switch v := c.(type) {
			case json.Number:
				n, err := strconv.ParseInt(v.String(), 10, 64)
				if err != nil {
					return nil, 0, fmt.Errorf("tuple %d cell %d: value %v is not an integer (the engine's domain is int64; quote it to treat it as a string)", i, j, v)
				}
				// Integers in the dictionary code space would alias string
				// codes and decode as unrelated strings downstream.
				if n >= relation.DictBase {
					return nil, 0, fmt.Errorf("tuple %d cell %d: integer %d collides with the dictionary code space (numeric values must be < 2^40; quote it to treat it as a string)", i, j, n)
				}
				t[j] = n
			case string:
				t[j] = local.Code(v)
			default:
				return nil, 0, fmt.Errorf("tuple %d cell %d: unsupported value %v", i, j, c)
			}
		}
		tuples[i] = t
	}
	return tuples, arity, nil
}

func (s *Server) readJSONDataset(name string, r *http.Request) (*dataset, error) {
	var up datasetUpload
	dec := json.NewDecoder(r.Body)
	dec.UseNumber()
	if err := dec.Decode(&up); err != nil {
		return nil, err
	}
	if len(up.RawTuples) == 0 {
		return nil, fmt.Errorf("no tuples")
	}
	if up.Weights != nil && len(up.Weights) != len(up.RawTuples) {
		return nil, fmt.Errorf("%d tuples but %d weights", len(up.RawTuples), len(up.Weights))
	}
	// Strings encode through a request-local dictionary first (merged
	// into the shared one afterwards) so parsing a large body never
	// holds the lock streaming handlers decode under.
	local := relation.NewDictionary()
	tuples, arity, err := parseJSONTuples(up.RawTuples, -1, local)
	if err != nil {
		return nil, err
	}
	s.mergeDict(local, tuples)
	weights := up.Weights
	if weights == nil {
		weights = make([]float64, len(tuples))
	}
	attrs := up.Attrs
	if attrs == nil {
		attrs = make([]string, arity)
		for i := range attrs {
			attrs[i] = fmt.Sprintf("c%d", i)
		}
	} else if len(attrs) != arity {
		return nil, fmt.Errorf("%d attrs but arity %d", len(attrs), arity)
	}
	return &dataset{name: name, arity: arity, attrs: attrs, tuples: tuples, weights: weights}, nil
}

func (s *Server) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	type dsInfo struct {
		Name    string `json:"name"`
		Rows    int    `json:"rows"`
		Arity   int    `json:"arity"`
		Version int    `json:"version"`
		// StatsVersion is the statistics generation (bumped on every
		// upload and every delta); Epoch is the last-update epoch: 1 at
		// registration, +1 per applied PATCH delta.
		StatsVersion int `json:"stats_version"`
		Epoch        int `json:"epoch"`
	}
	out := make([]dsInfo, 0, len(s.datasets))
	for _, ds := range s.datasets {
		out = append(out, dsInfo{
			Name: ds.name, Rows: len(ds.tuples), Arity: ds.arity, Version: ds.version,
			StatsVersion: ds.statsVersion, Epoch: ds.epoch,
		})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, map[string]any{"datasets": out})
}

func (s *Server) handleQueryPut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !nameRe.MatchString(name) {
		httpError(w, http.StatusBadRequest, errInvalidArgument, "invalid query name %q", name)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var body struct {
		Atoms []atomDef `json:"atoms"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, errInvalidArgument, "query %s: %v", name, err)
		return
	}
	if len(body.Atoms) == 0 {
		httpError(w, http.StatusBadRequest, errInvalidArgument, "query %s: no atoms", name)
		return
	}
	for i, a := range body.Atoms {
		for _, v := range a.Vars {
			if !nameRe.MatchString(v) {
				httpError(w, http.StatusBadRequest, errInvalidArgument, "query %s atom %d: invalid variable name %q", name, i, v)
				return
			}
		}
	}
	s.mu.RLock()
	for i, a := range body.Atoms {
		ds, ok := s.datasets[a.Dataset]
		if !ok {
			s.mu.RUnlock()
			httpError(w, http.StatusBadRequest, errInvalidArgument, "query %s atom %d: unknown dataset %q", name, i, a.Dataset)
			return
		}
		if len(a.Vars) != ds.arity {
			s.mu.RUnlock()
			httpError(w, http.StatusBadRequest, errInvalidArgument, "query %s atom %d: %d vars but dataset %s has arity %d", name, i, len(a.Vars), a.Dataset, ds.arity)
			return
		}
	}
	s.mu.RUnlock()
	// Validate the shape (duplicate variables per atom, plannability) on
	// a data-free query: Fingerprint and OutAttrs only read structure.
	q := repro.NewQuery()
	for i, a := range body.Atoms {
		q.Rel(fmt.Sprintf("%s#%d", a.Dataset, i), a.Vars, nil, nil)
	}
	fp, err := q.Fingerprint()
	if err != nil {
		httpError(w, http.StatusBadRequest, errInvalidArgument, "query %s: %v", name, err)
		return
	}
	outAttrs, err := q.OutAttrs()
	if err != nil {
		httpError(w, http.StatusBadRequest, errInvalidArgument, "query %s: %v", name, err)
		return
	}
	qd := &queryDef{name: name, atoms: body.Atoms, fingerprint: fp, outAttrs: outAttrs}
	s.mu.Lock()
	s.queries[name] = qd
	s.mu.Unlock()
	writeJSON(w, map[string]any{"name": name, "fingerprint": fp, "out_attrs": outAttrs})
}

func (s *Server) handleQueryList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	type qInfo struct {
		Name        string    `json:"name"`
		Fingerprint string    `json:"fingerprint"`
		OutAttrs    []string  `json:"out_attrs"`
		Atoms       []atomDef `json:"atoms"`
	}
	out := make([]qInfo, 0, len(s.queries))
	for _, qd := range s.queries {
		out = append(out, qInfo{Name: qd.name, Fingerprint: qd.fingerprint, OutAttrs: qd.outAttrs, Atoms: qd.atoms})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, map[string]any{"queries": out})
}

// aggByName maps the ?agg= parameter to the facade's ranking functions,
// by their canonical Name().
var aggByName = map[string]ranking.Aggregate{
	repro.SumCost.Name():     repro.SumCost,
	repro.SumBenefit.Name():  repro.SumBenefit,
	repro.MaxCost.Name():     repro.MaxCost,
	repro.MinBenefit.Name():  repro.MinBenefit,
	repro.ProductCost.Name(): repro.ProductCost,
}

// variantByName maps the ?variant= parameter (case-insensitive) to the
// any-k algorithm variants.
var variantByName = func() map[string]repro.Variant {
	m := make(map[string]repro.Variant)
	for _, v := range core.Variants() {
		m[strings.ToLower(string(v))] = v
	}
	return m
}()

// dataKey identifies one query shape over exact dataset versions: the
// shape fingerprint, the sorted multiset of (dataset@version, vars)
// bindings (variable names are nameRe-validated at registration, so
// the separators are unambiguous), and the output schema. Two
// registered query names with the same shape over the same dataset
// versions share a dataKey — and therefore one compiled handle —
// only when their output column order also matches: for acyclic
// queries that order follows the join tree, which depends on atom
// declaration order, so two reorderings of the same atoms can emit
// differently-ordered tuples and must not alias each other's plans.
// Re-registering a dataset bumps its version and naturally invalidates
// by changing the key.
func dataKey(fp string, atoms []atomDef, versions []int, outAttrs []string) string {
	binds := make([]string, len(atoms))
	for i, a := range atoms {
		binds[i] = fmt.Sprintf("%s@%d(%s)", a.Dataset, versions[i], strings.Join(a.Vars, " "))
	}
	sort.Strings(binds)
	return fp + "|" + strings.Join(binds, ",") + "|" + strings.Join(outAttrs, " ")
}

// planKey is the registry key of one (dataKey, ranking): warm hits on
// it do zero preparation of any kind. Entries with the same dataKey
// and different rankings share the underlying Prepared handle through
// the registry's compileCache.
func planKey(dk, aggName string) string { return dk + "|" + aggName }

// topkLine is one streamed NDJSON line: a result, then a trailer with
// done or error set.
type topkLine struct {
	Tuple  []any    `json:"tuple,omitempty"`
	Weight *float64 `json:"weight,omitempty"`
	Done   bool     `json:"done,omitempty"`
	Count  *int     `json:"count,omitempty"`
	Error  string   `json:"error,omitempty"`
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	t0 := s.now()
	s.met.queryRequests.Inc()
	if s.isDraining() {
		httpError(w, http.StatusServiceUnavailable, errUnavailable, "server shutting down")
		return
	}
	name := r.PathValue("name")
	qry := r.URL.Query()

	k := 10
	if v := qry.Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, errInvalidArgument, "bad k %q", v)
			return
		}
		k = n
	}
	if s.cfg.MaxK > 0 && k > s.cfg.MaxK {
		httpError(w, http.StatusBadRequest, errInvalidArgument, "k %d exceeds maximum %d", k, s.cfg.MaxK)
		return
	}
	aggName := qry.Get("agg")
	if aggName == "" {
		aggName = repro.SumCost.Name()
	}
	agg, ok := aggByName[aggName]
	if !ok {
		httpError(w, http.StatusBadRequest, errInvalidArgument, "unknown agg %q (sum, sum-desc, max, min-desc, product)", aggName)
		return
	}
	variant := repro.Lazy
	if v := qry.Get("variant"); v != "" {
		variant, ok = variantByName[strings.ToLower(v)]
		if !ok {
			httpError(w, http.StatusBadRequest, errInvalidArgument, "unknown variant %q", v)
			return
		}
	}
	timeout := s.cfg.DefaultTimeout
	if v := qry.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			httpError(w, http.StatusBadRequest, errInvalidArgument, "bad timeout %q", v)
			return
		}
		timeout = d
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}

	qd, snap, versions, ok := s.resolveQuery(w, name)
	if !ok {
		return
	}

	// Per-query rate limit, then global admission control: reject
	// instead of queueing, so saturation is visible to clients (and
	// load balancers) immediately.
	if !s.allowQuery(name) {
		s.met.rejected.Inc()
		w.Header().Set("Retry-After", s.rateRetryAfter())
		httpError(w, http.StatusTooManyRequests, errRateLimited, "query %s exceeds its rate limit (%g/s)", name, s.cfg.RateLimit)
		return
	}
	select {
	case s.sem <- struct{}{}:
	default:
		s.met.rejected.Inc()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, errRateLimited, "too many in-flight enumerations (max %d)", s.cfg.MaxInflight)
		return
	}
	defer func() { <-s.sem }()
	// Joining the stream group re-checks draining atomically: either we
	// register before Shutdown flips it (and its drain covers us), or we
	// are refused here.
	if !s.acquireStream() {
		httpError(w, http.StatusServiceUnavailable, errUnavailable, "server shutting down")
		return
	}
	defer s.releaseStream()
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)

	// Request context: client disconnect + per-request deadline + server
	// shutdown all funnel into one cancellation the iterator observes.
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()

	dk := dataKey(qd.fingerprint, qd.atoms, versions, qd.outAttrs)
	prepStart := s.now()
	p, hit, err := s.reg.get(ctx, planKey(dk, aggName), func() (*repro.Prepared, error) {
		// Build under the server's lifetime (bounded by MaxTimeout), not
		// this request's context: the winner disconnecting or timing out
		// must not fail every healthy request waiting on the same build.
		// Adopt carries this request's trace onto the detached context so
		// a cold build's compile/prepare spans land in the request trace.
		bctx, bcancel := context.WithTimeout(s.baseCtx, s.cfg.MaxTimeout)
		defer bcancel()
		return s.buildPlan(obs.Adopt(bctx, ctx), dk, qd, snap, agg)
	})
	if hit {
		s.met.prepareHit.Observe(s.now().Sub(prepStart).Seconds())
	} else {
		s.met.prepareMiss.Observe(s.now().Sub(prepStart).Seconds())
	}
	if err != nil {
		status, code := http.StatusInternalServerError, errInternal
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			status, code = http.StatusGatewayTimeout, errTimeout
		}
		httpError(w, status, code, "prepare %s: %v", name, err)
		return
	}

	it, err := p.Run(
		repro.WithRanking(agg),
		repro.WithVariant(variant),
		repro.WithK(k),
		repro.WithContext(ctx),
	)
	if err != nil {
		httpError(w, http.StatusInternalServerError, errInternal, "run %s: %v", name, err)
		return
	}
	defer it.Close()
	rc := http.NewResponseController(w)
	// Bound stalled writes by the request deadline (plus a small grace
	// so the error trailer of an expired request can still flush): a
	// client that stops reading cannot pin the handler (and its
	// admission slot) much past its own timeout. Set before the
	// watchdog starts so its tighter cancellation deadline always wins,
	// and cleared on return (after the watchdog joins — LIFO defers) so
	// no deadline leaks onto the next keep-alive request on this
	// connection.
	defer rc.SetWriteDeadline(time.Time{})
	if dl, ok := ctx.Deadline(); ok {
		rc.SetWriteDeadline(dl.Add(writeGrace))
	}
	// Watchdog: on disconnect/deadline/shutdown, close the iterator
	// concurrently with the drain below — the core.Lifecycle audit makes
	// this safe — so resources and the admission slot free promptly even
	// if the handler is blocked writing to a dead connection. The
	// tightened write deadline additionally unblocks a handler stalled
	// in a write to a non-reading client (net.Conn deadlines are safe to
	// set concurrently with writes), which keeps graceful shutdown from
	// waiting out the full per-request write budget. The handler joins
	// the watchdog before returning: the ResponseWriter must not be
	// touched after ServeHTTP returns, or the deadline could land on a
	// recycled keep-alive connection.
	watchdogDone := make(chan struct{})
	watchdogExit := make(chan struct{})
	defer func() {
		close(watchdogDone)
		<-watchdogExit
	}()
	go func() {
		defer close(watchdogExit)
		select {
		case <-ctx.Done():
			s.met.watchdogCloses.Inc()
			it.Close()
			rc.SetWriteDeadline(time.Now().Add(cancelWriteGrace))
		case <-watchdogDone:
		}
	}()

	h := w.Header()
	h.Set("Content-Type", "application/x-ndjson")
	h.Set("X-Plan-Cache", map[bool]string{true: "hit", false: "miss"}[hit])
	h.Set("X-Query-Fingerprint", qd.fingerprint)
	h.Set("X-Out-Attrs", strings.Join(qd.outAttrs, ","))
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	count := 0
	defer func() { s.met.rowsStreamed.Add(int64(count)) }()
	ttfH, ttkH := s.met.ttf[aggName], s.met.ttk[aggName]
	for {
		res, ok := it.Next()
		if !ok {
			break
		}
		if count == 0 {
			ttfH.Observe(s.now().Sub(t0).Seconds())
		}
		line := topkLine{Tuple: s.decodeTuple(res.Tuple), Weight: &res.Weight}
		if err := enc.Encode(line); err != nil {
			// Client gone; the deferred Close releases everything.
			return
		}
		count++
		if count == k {
			ttkH.Observe(s.now().Sub(t0).Seconds())
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	trailer := topkLine{Count: &count}
	if err := it.Err(); err != nil {
		// The watchdog may have closed the iterator a beat before it
		// observed the cancellation itself; report the root cause.
		if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(err, repro.ErrClosed) {
			err = ctxErr
		}
		trailer.Error = err.Error()
	} else {
		trailer.Done = true
	}
	enc.Encode(trailer)
	if flusher != nil {
		flusher.Flush()
	}
}

// resolveQuery snapshots a registered query and the exact dataset
// versions it binds under one read lock, so the plan key and the build
// closure agree on the versions, and re-checks arities (re-registering
// a dataset may have changed one since the query was validated —
// surfaced as a client-addressable conflict instead of letting every
// request fail the compile with a 500). A false return means the
// response has already been written.
func (s *Server) resolveQuery(w http.ResponseWriter, name string) (*queryDef, []*dataset, []int, bool) {
	s.mu.RLock()
	qd, ok := s.queries[name]
	var (
		snap     []*dataset
		versions []int
	)
	if ok {
		snap = make([]*dataset, len(qd.atoms))
		versions = make([]int, len(qd.atoms))
		for i, a := range qd.atoms {
			ds := s.datasets[a.Dataset]
			if ds == nil {
				ok = false
				break
			}
			snap[i], versions[i] = ds, ds.version
		}
	}
	s.mu.RUnlock()
	if !ok {
		httpError(w, http.StatusNotFound, errNotFound, "unknown query %q (or a dataset it references was removed)", name)
		return nil, nil, nil, false
	}
	for i, a := range qd.atoms {
		if len(a.Vars) != snap[i].arity {
			httpError(w, http.StatusConflict, errConflict,
				"query %s atom %d binds %d vars but dataset %s is now version %d with arity %d; re-register the query",
				name, i, len(a.Vars), a.Dataset, snap[i].version, snap[i].arity)
			return nil, nil, nil, false
		}
	}
	return qd, snap, versions, true
}

// buildPlan builds one registry entry: the aggregate-independent
// Compile runs (or is joined) once per dataKey through the registry's
// compileCache, then one Run with the requested ranking forces that
// ranking's physical artefacts (T-DP instantiation or bag
// materialisation) into the shared handle's cache — so every later
// request on this (dataKey, ranking) — any k, any variant — does zero
// preparation, and a query served under several rankings still plans
// and reduces its shape exactly once. A canceled or failed build is
// never cached (both caches drop it) and the next request retries.
func (s *Server) buildPlan(ctx context.Context, dk string, qd *queryDef, snap []*dataset, agg ranking.Aggregate) (*repro.Prepared, error) {
	p, _, err := s.compileSnapshot(ctx, dk, qd, snap)
	if err != nil {
		return nil, err
	}
	it, err := p.Run(repro.WithRanking(agg), repro.WithContext(ctx), repro.WithK(1))
	if err != nil {
		return nil, err
	}
	it.Close()
	return p, nil
}

// compileSnapshot runs (or joins) the aggregate-independent
// repro.Compile of one dataKey through the registry's compileCache.
// /topk warms the result with one ranked Run per aggregate on top of
// this (buildPlan); /sample uses the compiled handle directly, since
// sampling must not trigger any enumeration or bag materialisation.
func (s *Server) compileSnapshot(ctx context.Context, dk string, qd *queryDef, snap []*dataset) (*repro.Prepared, bool, error) {
	// The queryDef rides along as the entry's meta payload so a dataset
	// delta can rebuild per-atom Delta batches for every resident handle
	// (propagateDelta) without a reverse index from keys to queries.
	p, _, hit, err := s.reg.compiles.getMeta(ctx, dk, func() (*repro.Prepared, any, error) {
		q := repro.NewQuery()
		// Hand Compile the registration-time statistics of the exact
		// dataset snapshot this plan binds to, keyed by atom name. A
		// re-registered dataset produces a new snapshot (and dataKey)
		// carrying its own fresh stats, so this catalog can never mix
		// statistics from a different version of the data.
		cat := catalog.New()
		for i, a := range qd.atoms {
			atomName := fmt.Sprintf("%s#%d", a.Dataset, i)
			q.Rel(atomName, a.Vars, snap[i].tuples, snap[i].weights)
			if snap[i].stats != nil {
				cat.Put(atomName, snap[i].version, snap[i].stats)
			}
		}
		p, err := repro.Compile(q, repro.WithContext(ctx), repro.WithStatistics(cat))
		return p, qd, err
	})
	return p, hit, err
}

// sampleLine is one streamed NDJSON line of /sample: an answer line,
// then a trailer carrying the handle's cumulative unbiased cardinality
// estimate (acceptance rate × AGM bound, across all sampling on this
// plan).
type sampleLine struct {
	Tuple   []any    `json:"tuple,omitempty"`
	Weight  *float64 `json:"weight,omitempty"`
	Done    bool     `json:"done,omitempty"`
	Count   *int     `json:"count,omitempty"`
	AGM     float64  `json:"agm_bound,omitempty"`
	EstCard float64  `json:"est_cardinality,omitempty"`
	Trials  int64    `json:"trials,omitempty"`
	Accepts int64    `json:"accepts,omitempty"`
	// Exhausted marks a short read: the rejection walk spent its trial
	// budget before drawing n answers (the join is empty or far smaller
	// than its AGM bound). The lines streamed before the trailer are
	// still uniform draws.
	Exhausted bool   `json:"budget_exhausted,omitempty"`
	Error     string `json:"error,omitempty"`
}

// handleSample serves GET /v1/query/{name}/sample?n=&seed=&agg=: up to
// n uniform random answers of the query as NDJSON, drawn by the AGM
// rejection walk over the compiled handle's tries — no enumeration, no
// per-ranking preparation, no bag materialisation. Weights aggregate
// one uniformly chosen witness row per atom under ?agg= (default sum);
// equal ?seed= values reproduce equal draws.
func (s *Server) handleSample(w http.ResponseWriter, r *http.Request) {
	s.met.queryRequests.Inc()
	if s.isDraining() {
		httpError(w, http.StatusServiceUnavailable, errUnavailable, "server shutting down")
		return
	}
	name := r.PathValue("name")
	qry := r.URL.Query()

	n := 10
	if v := qry.Get("n"); v != "" {
		x, err := strconv.Atoi(v)
		if err != nil || x < 1 {
			httpError(w, http.StatusBadRequest, errInvalidArgument, "bad n %q", v)
			return
		}
		n = x
	}
	if s.cfg.MaxK > 0 && n > s.cfg.MaxK {
		httpError(w, http.StatusBadRequest, errInvalidArgument, "n %d exceeds maximum %d", n, s.cfg.MaxK)
		return
	}
	aggName := qry.Get("agg")
	if aggName == "" {
		aggName = repro.SumCost.Name()
	}
	agg, ok := aggByName[aggName]
	if !ok {
		httpError(w, http.StatusBadRequest, errInvalidArgument, "unknown agg %q (sum, sum-desc, max, min-desc, product)", aggName)
		return
	}
	var (
		seed    uint64
		seedSet bool
	)
	if v := qry.Get("seed"); v != "" {
		x, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, errInvalidArgument, "bad seed %q", v)
			return
		}
		seed, seedSet = x, true
	}
	timeout := s.cfg.DefaultTimeout
	if v := qry.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			httpError(w, http.StatusBadRequest, errInvalidArgument, "bad timeout %q", v)
			return
		}
		timeout = d
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}

	qd, snap, versions, ok := s.resolveQuery(w, name)
	if !ok {
		return
	}

	// Per-query rate limit first, then the shared enumeration admission
	// semaphore: a rejection walk is cheaper than a ranked stream but
	// not free, and one shared bound keeps saturation behaviour
	// predictable.
	if !s.allowQuery(name) {
		s.met.rejected.Inc()
		w.Header().Set("Retry-After", s.rateRetryAfter())
		httpError(w, http.StatusTooManyRequests, errRateLimited, "query %s exceeds its rate limit (%g/s)", name, s.cfg.RateLimit)
		return
	}
	select {
	case s.sem <- struct{}{}:
	default:
		s.met.rejected.Inc()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, errRateLimited, "too many in-flight enumerations (max %d)", s.cfg.MaxInflight)
		return
	}
	defer func() { <-s.sem }()
	if !s.acquireStream() {
		httpError(w, http.StatusServiceUnavailable, errUnavailable, "server shutting down")
		return
	}
	defer s.releaseStream()
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()

	dk := dataKey(qd.fingerprint, qd.atoms, versions, qd.outAttrs)
	prepStart := s.now()
	p, hit, err := func() (*repro.Prepared, bool, error) {
		// Compile detached from this request (bounded by MaxTimeout) so
		// the winner disconnecting cannot fail waiters joining the build.
		// Adopt keeps the request's trace attached to the detached build.
		bctx, bcancel := context.WithTimeout(s.baseCtx, s.cfg.MaxTimeout)
		defer bcancel()
		return s.compileSnapshot(obs.Adopt(bctx, ctx), dk, qd, snap)
	}()
	if hit {
		s.met.prepareHit.Observe(s.now().Sub(prepStart).Seconds())
	} else {
		s.met.prepareMiss.Observe(s.now().Sub(prepStart).Seconds())
	}
	if err != nil {
		status, code := http.StatusInternalServerError, errInternal
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			status, code = http.StatusGatewayTimeout, errTimeout
		}
		httpError(w, status, code, "prepare %s: %v", name, err)
		return
	}

	opts := []repro.RunOption{repro.WithRanking(agg), repro.WithContext(ctx)}
	if seedSet {
		opts = append(opts, repro.WithSeed(seed))
	}
	samples, serr := p.Sample(n, opts...)

	rc := http.NewResponseController(w)
	defer rc.SetWriteDeadline(time.Time{})
	if dl, ok := ctx.Deadline(); ok {
		rc.SetWriteDeadline(dl.Add(writeGrace))
	}
	h := w.Header()
	h.Set("Content-Type", "application/x-ndjson")
	h.Set("X-Plan-Cache", map[bool]string{true: "hit", false: "miss"}[hit])
	h.Set("X-Query-Fingerprint", qd.fingerprint)
	h.Set("X-Out-Attrs", strings.Join(qd.outAttrs, ","))
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	count := 0
	defer func() { s.met.rowsStreamed.Add(int64(count)) }()
	for i := range samples {
		if err := enc.Encode(sampleLine{Tuple: s.decodeTuple(samples[i].Tuple), Weight: &samples[i].Weight}); err != nil {
			return
		}
		count++
	}
	st := p.PlanStats()
	trailer := sampleLine{
		Count:   &count,
		AGM:     st.AGMBound,
		EstCard: st.EstCardinality,
		Trials:  st.SampleTrials,
		Accepts: st.SampleAccepts,
	}
	switch {
	case serr == nil:
		trailer.Done = true
	case errors.Is(serr, repro.ErrTrialBudget):
		// A legitimate completion: the join has fewer answers than asked
		// for (relative to its bound). The estimate in the trailer says
		// how small.
		trailer.Done = true
		trailer.Exhausted = true
	default:
		trailer.Error = serr.Error()
	}
	enc.Encode(trailer)
	if flusher != nil {
		flusher.Flush()
	}
}

// decodeTuple renders an output tuple for NDJSON, mapping dictionary
// codes back to the strings the client uploaded.
func (s *Server) decodeTuple(t relation.Tuple) []any {
	out := make([]any, len(t))
	s.dictMu.RLock()
	for i, v := range t {
		if str, ok := s.dict.Decode(v); ok {
			out[i] = str
		} else {
			out[i] = v
		}
	}
	s.dictMu.RUnlock()
	return out
}

// statsResponse is the /v1/stats payload.
type statsResponse struct {
	Datasets int `json:"datasets"`
	Queries  int `json:"queries"`
	Registry struct {
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Evictions int64 `json:"evictions"`
		Size      int   `json:"size"`
		Capacity  int   `json:"capacity"`
		Shards    int   `json:"shards"`
	} `json:"registry"`
	Requests    int64 `json:"requests"`
	Rejected    int64 `json:"rejected"`
	Inflight    int64 `json:"inflight"`
	MaxInflight int   `json:"max_inflight"`
	// Patches counts applied dataset deltas (PATCH /v1/datasets/{name});
	// PlansPatched counts warm registry handles those deltas advanced in
	// place via ApplyDelta (each kept serving without a cold prepare).
	Patches      int64     `json:"patches"`
	PlansPatched int64     `json:"plans_patched"`
	Plans        []regPlan `json:"plans"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var resp statsResponse
	s.mu.RLock()
	resp.Datasets = len(s.datasets)
	resp.Queries = len(s.queries)
	s.mu.RUnlock()
	resp.Registry.Hits = s.reg.hits.Load()
	resp.Registry.Misses = s.reg.misses.Load()
	resp.Registry.Evictions = s.reg.evictions()
	resp.Registry.Size = s.reg.size()
	resp.Registry.Capacity = s.cfg.RegistryCapacity
	resp.Registry.Shards = s.cfg.RegistryShards
	resp.Requests = s.met.queryRequests.Value()
	resp.Rejected = s.met.rejected.Value()
	resp.Inflight = s.met.inflight.Value()
	resp.MaxInflight = s.cfg.MaxInflight
	resp.Patches = s.met.patches.Value()
	resp.PlansPatched = s.met.plansPatched.Value()
	resp.Plans = s.reg.snapshot()
	writeJSON(w, &resp)
}
