package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// benchServer builds a server with one registered dataset + query and a
// warmed plan, returning the handler for direct ServeHTTP calls — no
// TCP, so the benchmark isolates handler-path cost (the observability
// overhead budget) from network noise.
func benchServer(b *testing.B, cfg Config) http.Handler {
	b.Helper()
	s := New(cfg)
	b.Cleanup(func() { s.Close() })
	h := s.Handler()

	do := func(method, path, body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(method, path, nil)
		if body != "" {
			req = httptest.NewRequest(method, path, strings.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
		}
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != http.StatusOK {
			b.Fatalf("%s %s: status %d: %s", method, path, rw.Code, rw.Body.String())
		}
		return rw
	}
	tuples, weights := "[", "["
	for i := 0; i < 50; i++ {
		if i > 0 {
			tuples += ","
			weights += ","
		}
		tuples += fmt.Sprintf("[%d,%d]", i, i+1)
		weights += "1"
	}
	tuples += "]"
	weights += "]"
	do("POST", "/v1/datasets/e", `{"tuples":`+tuples+`,"weights":`+weights+`}`)
	do("POST", "/v1/queries/q", `{"atoms":[{"dataset":"e","vars":["A","B"]},{"dataset":"e","vars":["B","C"]}]}`)
	do("GET", "/v1/query/q/topk?k=10", "") // warm the plan
	return h
}

func benchWarmTopK(b *testing.B, cfg Config) {
	h := benchServer(b, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("GET", "/v1/query/q/topk?k=10", nil)
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != http.StatusOK {
			b.Fatalf("status %d", rw.Code)
		}
	}
}

func BenchmarkWarmTopKObs(b *testing.B)   { benchWarmTopK(b, Config{}) }
func BenchmarkWarmTopKNoObs(b *testing.B) { benchWarmTopK(b, Config{DisableObservability: true}) }
