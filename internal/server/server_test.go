package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func doJSON(t *testing.T, method, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatalf("%s %s: decoding response: %v", method, url, err)
	}
	return resp, out
}

func mustStatus(t *testing.T, resp *http.Response, body map[string]any, want int) {
	t.Helper()
	if resp.StatusCode != want {
		t.Fatalf("%s: status %d, want %d (body %v)", resp.Request.URL, resp.StatusCode, want, body)
	}
}

// registerPath registers two small relations and a 2-path query named
// "paths". Join results under sum: (1,10,101):2 (2,10,101):3
// (1,11,100):5 (1,10,100):11 (2,10,100):12.
func registerPath(t *testing.T, base string) {
	t.Helper()
	resp, body := doJSON(t, "POST", base+"/v1/datasets/r1", map[string]any{
		"tuples":  []any{[]any{1, 10}, []any{1, 11}, []any{2, 10}},
		"weights": []float64{1, 5, 2},
	})
	mustStatus(t, resp, body, 200)
	resp, body = doJSON(t, "POST", base+"/v1/datasets/r2", map[string]any{
		"tuples":  []any{[]any{10, 100}, []any{10, 101}, []any{11, 100}},
		"weights": []float64{10, 1, 0},
	})
	mustStatus(t, resp, body, 200)
	resp, body = doJSON(t, "POST", base+"/v1/queries/paths", map[string]any{
		"atoms": []any{
			map[string]any{"dataset": "r1", "vars": []string{"A", "B"}},
			map[string]any{"dataset": "r2", "vars": []string{"B", "C"}},
		},
	})
	mustStatus(t, resp, body, 200)
	if body["fingerprint"] == "" {
		t.Fatal("query registration did not return a fingerprint")
	}
}

// streamTopK fetches a topk stream and parses the NDJSON lines.
func streamTopK(t *testing.T, url string) (*http.Response, []topkLine) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []topkLine
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var l topkLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp, lines
}

func TestTopKEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerPath(t, ts.URL)

	resp, lines := streamTopK(t, ts.URL+"/v1/query/paths/topk?k=3&agg=sum&variant=Lazy")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", got)
	}
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 3 results + trailer: %+v", len(lines), lines)
	}
	wantWeights := []float64{2, 3, 5}
	for i, w := range wantWeights {
		if lines[i].Weight == nil || *lines[i].Weight != w {
			t.Fatalf("line %d weight = %v, want %v", i, lines[i].Weight, w)
		}
		if len(lines[i].Tuple) != 3 {
			t.Fatalf("line %d tuple = %v, want arity 3", i, lines[i].Tuple)
		}
	}
	tr := lines[3]
	if !tr.Done || tr.Count == nil || *tr.Count != 3 || tr.Error != "" {
		t.Fatalf("trailer = %+v, want done with count 3", tr)
	}

	// First request was a cold miss, the second identical one must hit.
	if got := resp.Header.Get("X-Plan-Cache"); got != "miss" {
		t.Fatalf("first request X-Plan-Cache = %q, want miss", got)
	}
	resp2, lines2 := streamTopK(t, ts.URL+"/v1/query/paths/topk?k=3")
	if got := resp2.Header.Get("X-Plan-Cache"); got != "hit" {
		t.Fatalf("second request X-Plan-Cache = %q, want hit", got)
	}
	if len(lines2) != 4 {
		t.Fatalf("warm request returned %d lines", len(lines2))
	}

	// Different k and variant reuse the same plan (same key).
	resp3, lines3 := streamTopK(t, ts.URL+"/v1/query/paths/topk?k=100&variant=Rec")
	if got := resp3.Header.Get("X-Plan-Cache"); got != "hit" {
		t.Fatalf("variant change X-Plan-Cache = %q, want hit", got)
	}
	if n := len(lines3); n != 6 { // all 5 results + trailer
		t.Fatalf("k=100 returned %d lines, want 6", n)
	}
	// A different ranking is a new key: cold once, then warm.
	resp4, _ := streamTopK(t, ts.URL+"/v1/query/paths/topk?agg=max")
	if got := resp4.Header.Get("X-Plan-Cache"); got != "miss" {
		t.Fatalf("new agg X-Plan-Cache = %q, want miss", got)
	}
}

// TestWarmHitsDoZeroPreparation is the acceptance criterion: under
// concurrent load on a warm key the registry reports hits only, the
// prepared handle is shared, and exactly one preparation ever ran.
func TestWarmHitsDoZeroPreparation(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 128})
	registerPath(t, ts.URL)

	// Cold burst: 32 concurrent requests race on an unbuilt key.
	const burst = 32
	var wg sync.WaitGroup
	errs := make(chan error, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/query/paths/topk?k=2")
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if m := s.reg.misses.Load(); m != 1 {
		t.Fatalf("cold burst ran %d preparations, want exactly 1", m)
	}
	if h := s.reg.hits.Load(); h != burst-1 {
		t.Fatalf("cold burst hits = %d, want %d", h, burst-1)
	}

	// Warm burst: all hits, zero new preparations.
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/query/paths/topk?k=2")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	if m := s.reg.misses.Load(); m != 1 {
		t.Fatalf("warm burst re-prepared: misses = %d, want still 1", m)
	}
	if h := s.reg.hits.Load(); h != 2*burst-1 {
		t.Fatalf("warm burst hits = %d, want %d", h, 2*burst-1)
	}
}

func TestCSVDatasetAndStringJoin(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	csv := "city,airport,w\nboston,BOS,1\nnyc,JFK,2\nnyc,LGA,3\n"
	req, _ := http.NewRequest("POST", ts.URL+"/v1/datasets/airports?weights=true", strings.NewReader(csv))
	req.Header.Set("Content-Type", "text/csv")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("CSV upload status %d", resp.StatusCode)
	}
	// A JSON dataset joining on the string column.
	r2, body := doJSON(t, "POST", ts.URL+"/v1/datasets/hotels", map[string]any{
		"tuples":  []any{[]any{"nyc", 5}, []any{"boston", 3}},
		"weights": []float64{10, 20},
	})
	mustStatus(t, r2, body, 200)
	r3, body := doJSON(t, "POST", ts.URL+"/v1/queries/trips", map[string]any{
		"atoms": []any{
			map[string]any{"dataset": "airports", "vars": []string{"City", "Airport"}},
			map[string]any{"dataset": "hotels", "vars": []string{"City", "Stars"}},
		},
	})
	mustStatus(t, r3, body, 200)
	_, lines := streamTopK(t, ts.URL+"/v1/query/trips/topk?k=10")
	if len(lines) != 4 { // 3 join results + trailer
		t.Fatalf("got %d lines: %+v", len(lines), lines)
	}
	// Dictionary codes must come back as the uploaded strings.
	found := false
	for _, l := range lines[:3] {
		for _, c := range l.Tuple {
			if c == "boston" || c == "nyc" || c == "BOS" || c == "JFK" || c == "LGA" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no decoded strings in output: %+v", lines[:3])
	}
}

func TestDatasetVersioningInvalidatesPlans(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	registerPath(t, ts.URL)
	_, lines := streamTopK(t, ts.URL+"/v1/query/paths/topk?k=1")
	if *lines[0].Weight != 2 {
		t.Fatalf("initial top-1 weight = %v", *lines[0].Weight)
	}
	// Replace r2 with different weights; the next request must see the
	// new data (new version = new plan key), not the cached plan.
	resp, body := doJSON(t, "POST", ts.URL+"/v1/datasets/r2", map[string]any{
		"tuples":  []any{[]any{10, 100}, []any{10, 101}, []any{11, 100}},
		"weights": []float64{0, 100, 100},
	})
	mustStatus(t, resp, body, 200)
	if v := body["version"].(float64); v != 2 {
		t.Fatalf("version = %v, want 2", v)
	}
	resp2, lines := streamTopK(t, ts.URL+"/v1/query/paths/topk?k=1")
	if got := resp2.Header.Get("X-Plan-Cache"); got != "miss" {
		t.Fatalf("after re-register X-Plan-Cache = %q, want miss", got)
	}
	if *lines[0].Weight != 1 { // (1,10) w=1 + (10,100) w=0
		t.Fatalf("top-1 weight after update = %v, want 1", *lines[0].Weight)
	}
	if s.reg.misses.Load() != 2 {
		t.Fatalf("misses = %d, want 2 (one per version)", s.reg.misses.Load())
	}
}

// TestArityChangeConflicts: re-registering a dataset with a different
// arity must turn requests on stale queries into a 409, not a 500.
func TestArityChangeConflicts(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerPath(t, ts.URL)
	resp, body := doJSON(t, "POST", ts.URL+"/v1/datasets/r2", map[string]any{
		"tuples": []any{[]any{10, 100, 7}},
	})
	mustStatus(t, resp, body, 200)
	r2, err := http.Get(ts.URL + "/v1/query/paths/topk?k=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusConflict {
		t.Fatalf("stale query after arity change: status %d, want 409", r2.StatusCode)
	}
	// Re-registering the query against the new shape recovers.
	resp, body = doJSON(t, "POST", ts.URL+"/v1/queries/paths", map[string]any{
		"atoms": []any{
			map[string]any{"dataset": "r1", "vars": []string{"A", "B"}},
			map[string]any{"dataset": "r2", "vars": []string{"B", "C", "D"}},
		},
	})
	mustStatus(t, resp, body, 200)
	_, lines := streamTopK(t, ts.URL+"/v1/query/paths/topk?k=1")
	if len(lines) != 2 || *lines[0].Weight != 1 {
		t.Fatalf("recovered query returned %+v", lines)
	}
}

func TestSharedPlansAcrossQueryNames(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	registerPath(t, ts.URL)
	// Same shape, same datasets, different name: shares the plan.
	resp, body := doJSON(t, "POST", ts.URL+"/v1/queries/paths2", map[string]any{
		"atoms": []any{
			map[string]any{"dataset": "r1", "vars": []string{"A", "B"}},
			map[string]any{"dataset": "r2", "vars": []string{"B", "C"}},
		},
	})
	mustStatus(t, resp, body, 200)
	streamTopK(t, ts.URL+"/v1/query/paths/topk?k=1")
	resp2, _ := streamTopK(t, ts.URL+"/v1/query/paths2/topk?k=1")
	if got := resp2.Header.Get("X-Plan-Cache"); got != "hit" {
		t.Fatalf("same-shape query X-Plan-Cache = %q, want hit", got)
	}
	if s.reg.misses.Load() != 1 {
		t.Fatalf("misses = %d, want 1 shared plan", s.reg.misses.Load())
	}
}

// TestCompileSharedAcrossRankings: per-ranking registry entries must
// share one compiled handle — visible because each resident plan's
// PlanStats lists every warmed ranking, not just its own key's.
func TestCompileSharedAcrossRankings(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	registerPath(t, ts.URL)
	streamTopK(t, ts.URL+"/v1/query/paths/topk?k=1&agg=sum")
	streamTopK(t, ts.URL+"/v1/query/paths/topk?k=1&agg=max")
	if m := s.reg.misses.Load(); m != 2 {
		t.Fatalf("misses = %d, want 2 (one per ranking key)", m)
	}
	plans := s.reg.snapshot()
	if len(plans) != 2 {
		t.Fatalf("%d resident plans, want 2", len(plans))
	}
	for _, p := range plans {
		var names []string
		for _, rk := range p.Plan.Rankings {
			names = append(names, rk.Ranking)
		}
		if len(names) != 2 || names[0] != "max" || names[1] != "sum" {
			t.Fatalf("plan %s rankings = %v, want the shared handle's [max sum]", p.Key, names)
		}
	}
}

// TestDictCodeSpaceRejected: integer values at or above the dictionary
// code base (2^40) would alias string codes; both ingest paths must
// refuse them.
func TestDictCodeSpaceRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := doJSON(t, "POST", ts.URL+"/v1/datasets/huge", map[string]any{
		"tuples": []any{[]any{int64(1) << 41, 2}},
	})
	if resp.StatusCode != 400 {
		t.Fatalf("JSON huge int: status %d (body %v), want 400", resp.StatusCode, body)
	}
	csv := "a,b\n2199023255552,1\n"
	req, _ := http.NewRequest("POST", ts.URL+"/v1/datasets/hugecsv?weights=false", strings.NewReader(csv))
	req.Header.Set("Content-Type", "text/csv")
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	if r2.StatusCode != 400 {
		t.Fatalf("CSV huge int: status %d, want 400", r2.StatusCode)
	}
}

// TestReorderedAtomsStreamTheirOwnSchema: atom declaration order
// drives the acyclic output column order, so two reorderings of one
// shape must never serve each other's cached plan with mislabeled
// columns — every response's tuples must match its own registration's
// out_attrs.
func TestReorderedAtomsStreamTheirOwnSchema(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerPath(t, ts.URL)
	resp, body := doJSON(t, "POST", ts.URL+"/v1/queries/rev", map[string]any{
		"atoms": []any{
			map[string]any{"dataset": "r2", "vars": []string{"B", "C"}},
			map[string]any{"dataset": "r1", "vars": []string{"A", "B"}},
		},
	})
	mustStatus(t, resp, body, 200)

	// The best solution is (A,B,C) = (1,10,101) with weight 2; each
	// query must stream it permuted to its own out_attrs.
	want := map[string]float64{"A": 1, "B": 10, "C": 101}
	for _, q := range []string{"paths", "rev"} {
		r2, err := http.Get(ts.URL + "/v1/query/" + q + "/topk?k=1")
		if err != nil {
			t.Fatal(err)
		}
		attrs := strings.Split(r2.Header.Get("X-Out-Attrs"), ",")
		sc := bufio.NewScanner(r2.Body)
		if !sc.Scan() {
			t.Fatalf("%s: empty stream", q)
		}
		var line topkLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r2.Body)
		r2.Body.Close()
		if len(line.Tuple) != len(attrs) {
			t.Fatalf("%s: tuple %v vs attrs %v", q, line.Tuple, attrs)
		}
		for i, a := range attrs {
			if got := line.Tuple[i].(float64); got != want[a] {
				t.Fatalf("%s: column %s = %v, want %v (attrs %v, tuple %v)", q, a, got, want[a], attrs, line.Tuple)
			}
		}
	}
}

func TestTopKParamErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxK: 100})
	registerPath(t, ts.URL)
	for _, tc := range []struct {
		url  string
		code int
	}{
		{"/v1/query/nope/topk", 404},
		{"/v1/query/paths/topk?k=0", 400},
		{"/v1/query/paths/topk?k=banana", 400},
		{"/v1/query/paths/topk?k=101", 400},
		{"/v1/query/paths/topk?agg=median", 400},
		{"/v1/query/paths/topk?variant=Bogus", 400},
		{"/v1/query/paths/topk?timeout=fast", 400},
	} {
		resp, err := http.Get(ts.URL + tc.url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Fatalf("%s: status %d, want %d", tc.url, resp.StatusCode, tc.code)
		}
	}
}

func TestDeadlineCancelsStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerPath(t, ts.URL)
	// Warm the plan so the deadline hits enumeration, not preparation.
	streamTopK(t, ts.URL+"/v1/query/paths/topk?k=1")
	_, lines := streamTopK(t, ts.URL+"/v1/query/paths/topk?k=5&timeout=1ns")
	last := lines[len(lines)-1]
	if last.Error == "" || !strings.Contains(last.Error, "deadline") {
		t.Fatalf("expected a deadline error trailer, got %+v", lines)
	}
}

func TestAdmissionControl429(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 1})
	registerBigPath(t, ts.URL)

	// Hold the only slot with a request whose body we don't drain.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/query/big/topk?k=1000000&timeout=30s", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil { // stream is live
		t.Fatal(err)
	}

	resp2, err := http.Get(ts.URL + "/v1/query/big/topk?k=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server returned %d, want 429", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if s.met.rejected.Value() != 1 {
		t.Fatalf("rejected = %d, want 1", s.met.rejected.Value())
	}

	// Releasing the slot (client disconnect) re-admits requests.
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp3, err := http.Get(ts.URL + "/v1/query/big/topk?k=1")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp3.Body)
		resp3.Body.Close()
		if resp3.StatusCode == 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never released: status %d", resp3.StatusCode)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// registerBigPath registers a 2-path with one million results (2000
// tuples per side, join-variable domain 4, so each of the 4 join values
// contributes 500×500 pairs): streams are tens of megabytes — far past
// any TCP/HTTP buffering — so a client that stops reading reliably
// write-blocks the handler mid-stream.
func registerBigPath(t *testing.T, base string) {
	t.Helper()
	const n = 2000
	var t1, t2 []any
	var w1, w2 []float64
	for i := 0; i < n; i++ {
		t1 = append(t1, []any{i, i % 4})
		w1 = append(w1, float64(i))
		t2 = append(t2, []any{i % 4, i})
		w2 = append(w2, float64(i)/2)
	}
	resp, body := doJSON(t, "POST", base+"/v1/datasets/b1", map[string]any{"tuples": t1, "weights": w1})
	mustStatus(t, resp, body, 200)
	resp, body = doJSON(t, "POST", base+"/v1/datasets/b2", map[string]any{"tuples": t2, "weights": w2})
	mustStatus(t, resp, body, 200)
	resp, body = doJSON(t, "POST", base+"/v1/queries/big", map[string]any{
		"atoms": []any{
			map[string]any{"dataset": "b1", "vars": []string{"A", "B"}},
			map[string]any{"dataset": "b2", "vars": []string{"B", "C"}},
		},
	})
	mustStatus(t, resp, body, 200)
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerPath(t, ts.URL)
	streamTopK(t, ts.URL+"/v1/query/paths/topk?k=2")
	streamTopK(t, ts.URL+"/v1/query/paths/topk?k=2")
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Datasets != 2 || st.Queries != 1 {
		t.Fatalf("datasets=%d queries=%d, want 2/1", st.Datasets, st.Queries)
	}
	if st.Registry.Misses != 1 || st.Registry.Hits != 1 || st.Registry.Size != 1 {
		t.Fatalf("registry stats %+v, want 1 miss, 1 hit, size 1", st.Registry)
	}
	if len(st.Plans) != 1 {
		t.Fatalf("plans = %+v, want 1", st.Plans)
	}
	p := st.Plans[0].Plan
	if p.Kind != "acyclic" || p.Solutions != 5 || len(p.Rankings) != 1 || p.Rankings[0].Ranking != "sum" {
		t.Fatalf("plan stats = %+v", p)
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	registerBigPath(t, ts.URL)
	resp, err := http.Get(ts.URL + "/v1/query/big/topk?k=2000000&timeout=30s")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	// Keep draining in the background so the handler is enumerating (not
	// write-blocked) when shutdown cancels the base context.
	drained := make(chan struct{})
	go func() {
		io.Copy(io.Discard, br)
		close(drained)
	}()
	// Shutdown with an immediate deadline: the in-flight stream is cut
	// via the base context, and Shutdown still waits for the handler.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	s.Shutdown(ctx)
	<-drained
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("Shutdown took %v", d)
	}
	// New streams are refused.
	resp2, err := http.Get(ts.URL + "/v1/query/big/topk?k=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown status %d, want 503", resp2.StatusCode)
	}
}

func TestDatasetValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name string
		body map[string]any
	}{
		{"empty", map[string]any{"tuples": []any{}}},
		{"ragged", map[string]any{"tuples": []any{[]any{1, 2}, []any{3}}}},
		{"floats", map[string]any{"tuples": []any{[]any{1.5, 2}}}},
		{"weightlen", map[string]any{"tuples": []any{[]any{1, 2}}, "weights": []float64{1, 2}}},
	} {
		resp, body := doJSON(t, "POST", ts.URL+"/v1/datasets/bad", tc.body)
		if resp.StatusCode != 400 {
			t.Fatalf("%s: status %d (body %v), want 400", tc.name, resp.StatusCode, body)
		}
	}
	// Bad query: repeated variable within an atom.
	resp, body := doJSON(t, "POST", ts.URL+"/v1/datasets/ok", map[string]any{"tuples": []any{[]any{1, 2}}})
	mustStatus(t, resp, body, 200)
	resp, _ = doJSON(t, "POST", ts.URL+"/v1/queries/bad", map[string]any{
		"atoms": []any{map[string]any{"dataset": "ok", "vars": []string{"A", "A"}}},
	})
	if resp.StatusCode != 400 {
		t.Fatalf("repeated-var query: status %d, want 400", resp.StatusCode)
	}
	// Arity mismatch.
	resp, _ = doJSON(t, "POST", ts.URL+"/v1/queries/bad2", map[string]any{
		"atoms": []any{map[string]any{"dataset": "ok", "vars": []string{"A", "B", "C"}}},
	})
	if resp.StatusCode != 400 {
		t.Fatalf("arity-mismatch query: status %d, want 400", resp.StatusCode)
	}
}

func TestCyclicQueryOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Triangle over one edge relation used three times.
	edges := []any{
		[]any{1, 2}, []any{2, 3}, []any{3, 1},
		[]any{2, 1}, []any{3, 2}, []any{1, 3},
	}
	w := []float64{1, 2, 3, 4, 5, 6}
	resp, body := doJSON(t, "POST", ts.URL+"/v1/datasets/e", map[string]any{"tuples": edges, "weights": w})
	mustStatus(t, resp, body, 200)
	resp, body = doJSON(t, "POST", ts.URL+"/v1/queries/tri", map[string]any{
		"atoms": []any{
			map[string]any{"dataset": "e", "vars": []string{"A", "B"}},
			map[string]any{"dataset": "e", "vars": []string{"B", "C"}},
			map[string]any{"dataset": "e", "vars": []string{"C", "A"}},
		},
	})
	mustStatus(t, resp, body, 200)
	_, lines := streamTopK(t, ts.URL+"/v1/query/tri/topk?k=2")
	if len(lines) != 3 {
		t.Fatalf("triangle returned %d lines: %+v", len(lines), lines)
	}
	if *lines[0].Weight != 6 { // 1+2+3 both ways round the lightest triangle
		t.Fatalf("lightest triangle weight = %v, want 6", *lines[0].Weight)
	}
}
