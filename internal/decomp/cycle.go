package decomp

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/ranking"
	"repro/internal/relation"
)

// CycleAttrs returns the canonical output schema of CycleSingleTree for
// an l-cycle: A0, A1, ..., A_{l-1}.
func CycleAttrs(l int) []string {
	attrs := make([]string, l)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("A%d", i)
	}
	return attrs
}

// PrepareCycleSingleTree compiles the l-cycle query
// R1(A0,A1) ⋈ R2(A1,A2) ⋈ ... ⋈ Rl(A_{l-1},A0) with the textbook
// fractional-hypertree-width-2 "fan" decomposition: l−2 bags
// B_i(A0, A_i, A_{i+1}), i = 1..l−2, arranged in a path join tree.
//
//	B_1     = R1 ⋈ R2                      (covers R1, R2)
//	B_i     = R_{i+1} × π_{A0}(R1)         (middle bags, 2 ≤ i ≤ l−3)
//	B_{l-2} = R_{l-1} ⋈ R_l                (covers R_{l-1}, R_l)
//
// Every bag is O(n·d) ≤ O(n²) where d is the number of distinct A0
// values — the Θ(n²) worst case being exactly why §3 calls single-tree
// plans suboptimal for cycles (submodular width is lower). For l = 3
// prefer TriangleAnyK and for l = 4 prefer FourCycleSubmodular; this
// plan still accepts those shapes for comparison experiments. Output
// tuples are ordered (A0,...,A_{l-1}).
func PrepareCycleSingleTree(rels []*relation.Relation, agg ranking.Aggregate, opts ...PrepareOption) (*Plan, error) {
	cfg := newPrepCfg(opts)
	l := len(rels)
	if l < 3 {
		return nil, fmt.Errorf("decomp: cycle needs at least 3 relations, got %d", l)
	}
	for i, r := range rels {
		if r.Arity() != 2 {
			return nil, fmt.Errorf("decomp: cycle relation %d has arity %d, want 2", i, r.Arity())
		}
	}
	named := make([]*relation.Relation, l)
	for i, r := range rels {
		named[i] = rename(r, fmt.Sprintf("R%d", i+1), fmt.Sprintf("A%d", i), fmt.Sprintf("A%d", (i+1)%l))
	}
	if l == 3 {
		// Two bags: B1 = R1⋈R2 over {A0,A1,A2}, B2 = R3 over {A2,A0}.
		b1, err := joinBags("B1", named[0], named[1], []string{"A0", "A1", "A2"}, agg)
		if err != nil {
			return nil, err
		}
		tp, err := prepareTree([]*relation.Relation{b1, named[2]}, agg, CycleAttrs(3))
		if err != nil {
			return nil, err
		}
		st := &Stats{BagSizes: [][]int{{b1.Len(), named[2].Len()}}, TotalMaterialized: b1.Len()}
		return &Plan{Stats: st, agg: agg, trees: []*treePlan{tp}}, nil
	}

	// The l−2 fan bags are mutually independent: B1 and B_{l-2} are hash
	// joins of adjacent cycle relations, and each middle bag extends one
	// relation by the distinct A0 values. One task per bag.
	tasks := make([]func() (*relation.Relation, error), 0, l-2)
	tasks = append(tasks, func() (*relation.Relation, error) {
		return joinBags("B1", named[0], named[1], []string{"A0", "A1", "A2"}, agg)
	})
	if l > 4 {
		// Distinct A0 values (from R1's first column), used to extend the
		// middle bags. Weight contribution is the aggregate identity so
		// each input tuple's weight still counts exactly once.
		a0 := distinctValues(named[0], "A0")
		for i := 2; i <= l-3; i++ {
			tasks = append(tasks, func() (*relation.Relation, error) {
				bag := relation.New(fmt.Sprintf("B%d", i),
					"A0", fmt.Sprintf("A%d", i), fmt.Sprintf("A%d", i+1))
				src := named[i] // R_{i+1}(A_i, A_{i+1})
				for ti, tp := range src.Tuples {
					for _, v0 := range a0 {
						bag.AddTuple(relation.Tuple{v0, tp[0], tp[1]}, src.Weights[ti])
					}
				}
				return bag, nil
			})
		}
	}
	tasks = append(tasks, func() (*relation.Relation, error) {
		return joinBags(fmt.Sprintf("B%d", l-2), named[l-2], named[l-1],
			[]string{"A0", fmt.Sprintf("A%d", l-2), fmt.Sprintf("A%d", l-1)}, agg)
	})
	bags, err := buildBags(cfg, tasks...)
	if err != nil {
		return nil, err
	}

	tp, err := prepareTree(bags, agg, CycleAttrs(l))
	if err != nil {
		return nil, err
	}
	st := &Stats{BagSizes: [][]int{make([]int, len(bags))}}
	for i, b := range bags {
		st.BagSizes[0][i] = b.Len()
		st.TotalMaterialized += b.Len()
	}
	return &Plan{Stats: st, agg: agg, trees: []*treePlan{tp}}, nil
}

// CycleSingleTree is the one-shot form of PrepareCycleSingleTree + Run.
// The context cancels the returned iterator.
func CycleSingleTree(ctx context.Context, rels []*relation.Relation, agg ranking.Aggregate, v core.Variant, opts ...PrepareOption) (core.Iterator, *Stats, error) {
	p, err := PrepareCycleSingleTree(rels, agg, opts...)
	if err != nil {
		return nil, nil, err
	}
	it, err := p.Run(ctx, v)
	if err != nil {
		return nil, nil, err
	}
	return it, p.Stats, nil
}

// distinctValues returns the sorted distinct values of one attribute.
func distinctValues(r *relation.Relation, attr string) []relation.Value {
	c := r.AttrIndex(attr)
	seen := make(map[relation.Value]bool)
	var out []relation.Value
	for _, t := range r.Tuples {
		if !seen[t[c]] {
			seen[t[c]] = true
			out = append(out, t[c])
		}
	}
	return out
}
