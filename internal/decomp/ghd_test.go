package decomp

import (
	"context"
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/ranking"
	"repro/internal/relation"
	"repro/internal/workload"
)

// bruteForce computes the full join of the atoms by backtracking over
// variable bindings, returning the result weights sorted into agg's
// ranking order. It is the trusted baseline the GHD plans are compared
// against.
func bruteForce(edges []hypergraph.Edge, rels []*relation.Relation, agg ranking.Aggregate) []float64 {
	binding := map[string]relation.Value{}
	var weights []float64
	var rec func(i int, w float64)
	rec = func(i int, w float64) {
		if i == len(edges) {
			weights = append(weights, w)
			return
		}
		e, r := edges[i], rels[i]
	tuples:
		for ti, t := range r.Tuples {
			bound := map[string]bool{}
			for c, v := range e.Vars {
				if bv, ok := binding[v]; ok {
					if bv != t[c] {
						for bv2 := range bound {
							delete(binding, bv2)
						}
						continue tuples
					}
				} else {
					binding[v] = t[c]
					bound[v] = true
				}
			}
			rec(i+1, agg.Combine(w, r.Weights[ti]))
			for v := range bound {
				delete(binding, v)
			}
		}
	}
	rec(0, agg.Identity())
	sort.Slice(weights, func(i, j int) bool { return agg.Less(weights[i], weights[j]) })
	return weights
}

// drain collects every result weight from the plan in order, checking
// ranking monotonicity along the way.
func drain(t *testing.T, p *Plan, agg ranking.Aggregate) []float64 {
	t.Helper()
	it, err := p.Run(context.Background(), core.Lazy)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var out []float64
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		if len(out) > 0 && agg.Less(r.Weight, out[len(out)-1]) {
			t.Fatalf("result %d (weight %g) ranked after better weight %g", len(out), r.Weight, out[len(out)-1])
		}
		out = append(out, r.Weight)
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func sameWeights(t *testing.T, got, want []float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, brute force has %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("%s: weight[%d] = %g, brute force %g", label, i, got[i], want[i])
		}
	}
}

// graphAtoms binds l copies of the graph's edge relation to the given
// variable pairs.
func graphAtoms(g *workload.Graph, pairs [][2]string) ([]hypergraph.Edge, []*relation.Relation) {
	edges := make([]hypergraph.Edge, len(pairs))
	rels := make([]*relation.Relation, len(pairs))
	for i, p := range pairs {
		edges[i] = hypergraph.E(nameFor(i), p[0], p[1])
		rels[i] = g.Edges
	}
	return edges, rels
}

func nameFor(i int) string { return fmt.Sprintf("R%d", i+1) }

var ghdShapes = map[string][][2]string{
	"K4": {
		{"A", "B"}, {"A", "C"}, {"A", "D"}, {"B", "C"}, {"B", "D"}, {"C", "D"},
	},
	"bowtie": {
		{"A", "B"}, {"B", "C"}, {"C", "A"}, {"A", "D"}, {"D", "E"}, {"E", "A"},
	},
	"star-with-chord": {
		{"A", "B"}, {"A", "C"}, {"A", "D"}, {"B", "C"},
	},
	"fused-triangles": { // two triangles sharing edge B-C (K4 minus an edge)
		{"A", "B"}, {"B", "C"}, {"C", "A"}, {"B", "D"}, {"D", "C"},
	},
	"5-clique": {
		{"A", "B"}, {"A", "C"}, {"A", "D"}, {"A", "E"}, {"B", "C"},
		{"B", "D"}, {"B", "E"}, {"C", "D"}, {"C", "E"}, {"D", "E"},
	},
}

func TestGHDParityAllShapes(t *testing.T) {
	g := workload.RandomGraph(8, 40, workload.UniformWeights(), 7)
	aggs := []ranking.Aggregate{
		ranking.SumCost{}, ranking.SumBenefit{}, ranking.MaxCost{},
		ranking.MinBenefit{}, ranking.ProductCost{},
	}
	for name, pairs := range ghdShapes {
		edges, rels := graphAtoms(g, pairs)
		for _, agg := range aggs {
			want := bruteForce(edges, rels, agg)
			p, err := PrepareGHD(edges, rels, agg)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, agg.Name(), err)
			}
			got := drain(t, p, agg)
			sameWeights(t, got, want, name+"/"+agg.Name())
		}
	}
}

func TestGHDParityHigherArity(t *testing.T) {
	// A cyclic query with a ternary atom: R(A,B,C), S(C,D), T(D,A).
	rng := workload.NewRand(11)
	r := relation.New("R", "x", "y", "z")
	s := relation.New("S", "x", "y")
	u := relation.New("T", "x", "y")
	for i := 0; i < 60; i++ {
		r.AddWeighted(rng.Float64(), relation.Value(rng.Intn(5)), relation.Value(rng.Intn(5)), relation.Value(rng.Intn(5)))
		s.AddWeighted(rng.Float64(), relation.Value(rng.Intn(5)), relation.Value(rng.Intn(5)))
		u.AddWeighted(rng.Float64(), relation.Value(rng.Intn(5)), relation.Value(rng.Intn(5)))
	}
	edges := []hypergraph.Edge{
		hypergraph.E("R", "A", "B", "C"),
		hypergraph.E("S", "C", "D"),
		hypergraph.E("T", "D", "A"),
	}
	rels := []*relation.Relation{r, s, u}
	agg := ranking.SumCost{}
	want := bruteForce(edges, rels, agg)
	p, err := PrepareGHD(edges, rels, agg)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, p, agg)
	sameWeights(t, got, want, "ternary-cycle")
	if len(got) == 0 {
		t.Skip("instance produced no results; weaken domain to make the test meaningful")
	}
}

func TestGHDWeightsNotDoubleCounted(t *testing.T) {
	// One single triangle, each relation holding exactly the one matching
	// tuple with weight 1: SumCost must report 3, not more — a relation
	// counted in two bags would inflate it.
	mk := func(name string, a, b relation.Value) *relation.Relation {
		r := relation.New(name, "x", "y")
		r.AddWeighted(1, a, b)
		return r
	}
	edges := []hypergraph.Edge{
		hypergraph.E("R1", "A", "B"), hypergraph.E("R2", "B", "C"), hypergraph.E("R3", "C", "A"),
	}
	rels := []*relation.Relation{mk("R1", 1, 2), mk("R2", 2, 3), mk("R3", 3, 1)}
	p, err := PrepareGHD(edges, rels, ranking.SumCost{})
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, p, ranking.SumCost{})
	if len(got) != 1 || math.Abs(got[0]-3) > 1e-9 {
		t.Fatalf("triangle weights = %v, want [3]", got)
	}
}

func TestGHDDuplicateMultiplicity(t *testing.T) {
	// Bag semantics: a duplicated input tuple doubles the result count,
	// but only through its charged bag.
	r1 := relation.New("R1", "x", "y")
	r1.AddWeighted(1, 1, 2)
	r1.AddWeighted(5, 1, 2) // duplicate tuple, different weight
	mk := func(name string, a, b relation.Value, w float64) *relation.Relation {
		r := relation.New(name, "x", "y")
		r.AddWeighted(w, a, b)
		return r
	}
	edges := []hypergraph.Edge{
		hypergraph.E("R1", "A", "B"), hypergraph.E("R2", "B", "C"), hypergraph.E("R3", "C", "A"),
	}
	rels := []*relation.Relation{r1, mk("R2", 2, 3, 1), mk("R3", 3, 1, 1)}
	agg := ranking.SumCost{}
	want := bruteForce(edges, rels, agg)
	p, err := PrepareGHD(edges, rels, agg)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, p, agg)
	sameWeights(t, got, want, "dup-multiplicity")
	if len(got) != 2 {
		t.Fatalf("expected 2 results (duplicate tuple), got %d", len(got))
	}
}

func TestGHDDisconnectedQuery(t *testing.T) {
	// Two disjoint triangles: the plan must produce the cartesian product.
	g := workload.RandomGraph(6, 18, workload.UniformWeights(), 3)
	pairs := [][2]string{
		{"A", "B"}, {"B", "C"}, {"C", "A"},
		{"X", "Y"}, {"Y", "Z"}, {"Z", "X"},
	}
	edges, rels := graphAtoms(g, pairs)
	agg := ranking.SumCost{}
	want := bruteForce(edges, rels, agg)
	p, err := PrepareGHD(edges, rels, agg)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, p, agg)
	sameWeights(t, got, want, "disconnected")
}

func TestGHDOutputSchema(t *testing.T) {
	edges := []hypergraph.Edge{
		hypergraph.E("R1", "A", "B"), hypergraph.E("R2", "B", "C"), hypergraph.E("R3", "C", "A"),
	}
	attrs := GHDAttrs(edges)
	if len(attrs) != 3 || attrs[0] != "A" || attrs[1] != "B" || attrs[2] != "C" {
		t.Fatalf("GHDAttrs = %v, want [A B C]", attrs)
	}
	mk := func(name string, a, b relation.Value) *relation.Relation {
		r := relation.New(name, "x", "y")
		r.AddWeighted(0, a, b)
		return r
	}
	rels := []*relation.Relation{mk("R1", 1, 2), mk("R2", 2, 3), mk("R3", 3, 1)}
	p, err := PrepareGHD(edges, rels, ranking.SumCost{})
	if err != nil {
		t.Fatal(err)
	}
	it, err := p.Run(context.Background(), core.Lazy)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	res, ok := it.Next()
	if !ok {
		t.Fatal("expected the one triangle")
	}
	wantTuple := relation.Tuple{1, 2, 3} // (A,B,C)
	for i := range wantTuple {
		if res.Tuple[i] != wantTuple[i] {
			t.Fatalf("tuple = %v, want %v (schema %v)", res.Tuple, wantTuple, attrs)
		}
	}
}

func TestGHDVariantsAgree(t *testing.T) {
	g := workload.RandomGraph(8, 40, workload.UniformWeights(), 9)
	edges, rels := graphAtoms(g, ghdShapes["fused-triangles"])
	agg := ranking.SumCost{}
	p, err := PrepareGHD(edges, rels, agg)
	if err != nil {
		t.Fatal(err)
	}
	var ref []float64
	for _, v := range []core.Variant{core.Eager, core.Lazy, core.Quick, core.All, core.Take2, core.Rec, core.Batch} {
		it, err := p.Run(context.Background(), v)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		var got []float64
		for {
			r, ok := it.Next()
			if !ok {
				break
			}
			got = append(got, r.Weight)
		}
		if err := it.Err(); err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		it.Close()
		if ref == nil {
			ref = got
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("%s: %d results, ref %d", v, len(got), len(ref))
		}
		for i := range got {
			if math.Abs(got[i]-ref[i]) > 1e-9 {
				t.Fatalf("%s: weight[%d] = %g, ref %g", v, i, got[i], ref[i])
			}
		}
	}
}
