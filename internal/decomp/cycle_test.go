package decomp

import (
	"context"

	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/wcoj"
	"repro/internal/workload"
)

// cycleReference materialises the l-cycle output with Generic-Join.
func cycleReference(rels []*relation.Relation) *relation.Relation {
	l := len(rels)
	atoms := make([]wcoj.Atom, l)
	for i, r := range rels {
		atoms[i] = wcoj.Atom{Rel: r, Vars: []string{
			fmt.Sprintf("A%d", i), fmt.Sprintf("A%d", (i+1)%l)}}
	}
	out, _, err := wcoj.Materialize(atoms, CycleAttrs(l), sum)
	if err != nil {
		panic(err)
	}
	out.SortByWeight()
	return out
}

func checkCycleAgainstReference(t *testing.T, rels []*relation.Relation, v core.Variant) {
	t.Helper()
	want := cycleReference(rels)
	it, _, err := CycleSingleTree(context.Background(), rels, sum, v)
	if err != nil {
		t.Fatal(err)
	}
	got := core.Collect(it, 0)
	if len(got) != want.Len() {
		t.Fatalf("l=%d: enumerated %d, reference %d", len(rels), len(got), want.Len())
	}
	gotRel := relation.New("got", CycleAttrs(len(rels))...)
	for i, r := range got {
		if math.Abs(r.Weight-want.Weights[i]) > 1e-9 {
			t.Fatalf("rank %d: weight %g vs %g", i, r.Weight, want.Weights[i])
		}
		gotRel.AddTuple(r.Tuple, 0)
	}
	wantRel := relation.New("want", CycleAttrs(len(rels))...)
	for _, tp := range want.Tuples {
		wantRel.AddTuple(tp, 0)
	}
	if !gotRel.EqualAsSet(wantRel) {
		t.Fatal("tuple multisets differ")
	}
}

func TestCycleSingleTreeLengths(t *testing.T) {
	for _, l := range []int{3, 4, 5, 6, 7} {
		g := workload.RandomGraph(10, 50, workload.UniformWeights(), uint64(l))
		rels := make([]*relation.Relation, l)
		for i := range rels {
			rels[i] = g.Edges
		}
		checkCycleAgainstReference(t, rels, core.Lazy)
	}
}

func TestCycleSingleTreeDistinctRelations(t *testing.T) {
	rels := make([]*relation.Relation, 5)
	for i := range rels {
		g := workload.RandomGraph(8, 40, workload.UniformWeights(), uint64(20+i))
		rels[i] = g.Edges
	}
	checkCycleAgainstReference(t, rels, core.Rec)
}

func TestCycleSingleTreeValidation(t *testing.T) {
	g := workload.RandomGraph(5, 10, workload.UniformWeights(), 1)
	if _, _, err := CycleSingleTree(context.Background(), []*relation.Relation{g.Edges, g.Edges}, sum, core.Lazy); err == nil {
		t.Error("l=2 should be rejected")
	}
	bad := relation.New("bad", "X", "Y", "Z")
	if _, _, err := CycleSingleTree(context.Background(), []*relation.Relation{g.Edges, g.Edges, bad}, sum, core.Lazy); err == nil {
		t.Error("arity-3 relation should be rejected")
	}
}

func TestCycleSingleTreeEmptyOutput(t *testing.T) {
	e := relation.New("E", "src", "dst")
	e.Add(1, 2)
	e.Add(2, 3) // no cycle
	rels := []*relation.Relation{e, e, e, e, e}
	it, _, err := CycleSingleTree(context.Background(), rels, sum, core.Lazy)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.Next(); ok {
		t.Error("acyclic edge set should yield no 5-cycles")
	}
}

// Property: the fan decomposition matches GJ for random C5 instances.
func TestCycleFanMatchesGJProperty(t *testing.T) {
	f := func(seed uint16) bool {
		g := workload.RandomGraph(7, 30, workload.UniformWeights(), uint64(seed))
		rels := make([]*relation.Relation, 5)
		for i := range rels {
			rels[i] = g.Edges
		}
		want := cycleReference(rels)
		it, _, err := CycleSingleTree(context.Background(), rels, sum, core.Take2)
		if err != nil {
			return false
		}
		got := core.Collect(it, 0)
		if len(got) != want.Len() {
			return false
		}
		for i := range got {
			if math.Abs(got[i].Weight-want.Weights[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestFourCycleFanEqualsSpecialised(t *testing.T) {
	g := workload.RandomGraph(10, 80, workload.UniformWeights(), 9)
	rels4 := [4]*relation.Relation{g.Edges, g.Edges, g.Edges, g.Edges}
	itSub, _, err := FourCycleSubmodular(context.Background(), rels4, sum, core.Lazy)
	if err != nil {
		t.Fatal(err)
	}
	itFan, _, err := CycleSingleTree(context.Background(), rels4[:], sum, core.Lazy)
	if err != nil {
		t.Fatal(err)
	}
	a := core.Collect(itSub, 0)
	b := core.Collect(itFan, 0)
	if len(a) != len(b) {
		t.Fatalf("submodular %d vs fan %d results", len(a), len(b))
	}
	for i := range a {
		if math.Abs(a[i].Weight-b[i].Weight) > 1e-9 {
			t.Fatalf("rank %d weight mismatch", i)
		}
	}
}
