package decomp

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/ranking"
	"repro/internal/relation"
	"repro/internal/workload"
)

// drainResults drains the plan's full enumeration, returning tuples and
// weights in emission order for exact (not approximate) comparison —
// the bit-identity contract of parallel preparation.
func drainResults(t *testing.T, p *Plan) []core.Result {
	t.Helper()
	it, err := p.Run(context.Background(), core.Lazy)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	out := core.Collect(it, 0)
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// assertSamePlan checks that two prepared plans are observationally
// identical: same Stats and the exact same result sequence (tuples and
// weights, in order).
func assertSamePlan(t *testing.T, label string, seq, par *Plan) {
	t.Helper()
	if !reflect.DeepEqual(seq.Stats, par.Stats) {
		t.Fatalf("%s: Stats differ:\nsequential %+v\nparallel   %+v", label, seq.Stats, par.Stats)
	}
	sr, pr := drainResults(t, seq), drainResults(t, par)
	if len(sr) != len(pr) {
		t.Fatalf("%s: %d results sequential, %d parallel", label, len(sr), len(pr))
	}
	for i := range sr {
		if sr[i].Weight != pr[i].Weight {
			t.Fatalf("%s: rank %d weight %v sequential, %v parallel", label, i, sr[i].Weight, pr[i].Weight)
		}
		if !reflect.DeepEqual(sr[i].Tuple, pr[i].Tuple) {
			t.Fatalf("%s: rank %d tuple %v sequential, %v parallel", label, i, sr[i].Tuple, pr[i].Tuple)
		}
	}
}

// TestPrepareGHDWithParallelDeterminism prepares every GHD fixture
// shape sequentially and with several worker counts; Stats and the full
// ranked output must be identical.
func TestPrepareGHDWithParallelDeterminism(t *testing.T) {
	g := workload.RandomGraph(9, 45, workload.UniformWeights(), 11)
	for name, pairs := range ghdShapes {
		edges, rels := graphAtoms(g, pairs)
		d, err := hypergraph.New(edges...).Decompose()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		seq, err := PrepareGHDWith(d, edges, rels, sum)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, workers := range []int{2, 4, 16} {
			par, err := PrepareGHDWith(d, edges, rels, sum, WithWorkers(workers))
			if err != nil {
				t.Fatalf("%s/workers=%d: %v", name, workers, err)
			}
			assertSamePlan(t, name, seq, par)
		}
	}
}

// TestCanonicalPreparesParallelDeterminism covers the canonical cyclic
// plans: triangle (intra-bag only), both 4-cycle plans, and the l-cycle
// fan for l = 5, 6.
func TestCanonicalPreparesParallelDeterminism(t *testing.T) {
	g := workload.RandomGraph(14, 160, workload.UniformWeights(), 3)
	par := []PrepareOption{WithWorkers(4)}

	var three [3]*relation.Relation
	for i := range three {
		three[i] = g.Edges
	}
	seqT, err := PrepareTriangle(three, sum)
	if err != nil {
		t.Fatal(err)
	}
	parT, err := PrepareTriangle(three, sum, par...)
	if err != nil {
		t.Fatal(err)
	}
	assertSamePlan(t, "triangle", seqT, parT)

	four := fourRels(g)
	seqS, err := PrepareFourCycleSubmodular(four, sum)
	if err != nil {
		t.Fatal(err)
	}
	parS, err := PrepareFourCycleSubmodular(four, sum, par...)
	if err != nil {
		t.Fatal(err)
	}
	assertSamePlan(t, "4-cycle-submodular", seqS, parS)

	seq1, err := PrepareFourCycleSingleTree(four, sum)
	if err != nil {
		t.Fatal(err)
	}
	par1, err := PrepareFourCycleSingleTree(four, sum, par...)
	if err != nil {
		t.Fatal(err)
	}
	assertSamePlan(t, "4-cycle-single-tree", seq1, par1)

	for _, l := range []int{5, 6} {
		rels := make([]*relation.Relation, l)
		for i := range rels {
			rels[i] = g.Edges
		}
		seqC, err := PrepareCycleSingleTree(rels, sum)
		if err != nil {
			t.Fatal(err)
		}
		parC, err := PrepareCycleSingleTree(rels, sum, par...)
		if err != nil {
			t.Fatal(err)
		}
		assertSamePlan(t, "cycle-fan", seqC, parC)
	}
}

// TestParallelDeterminismGOMAXPROCS1 re-runs a multi-bag parallel
// prepare with GOMAXPROCS pinned to 1: goroutines interleave on one P
// and the plan must still match.
func TestParallelDeterminismGOMAXPROCS1(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	g := workload.RandomGraph(10, 60, workload.UniformWeights(), 19)
	edges, rels := graphAtoms(g, ghdShapes["bowtie"])
	d, err := hypergraph.New(edges...).Decompose()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := PrepareGHDWith(d, edges, rels, sum)
	if err != nil {
		t.Fatal(err)
	}
	par, err := PrepareGHDWith(d, edges, rels, sum, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	assertSamePlan(t, "bowtie@GOMAXPROCS=1", seq, par)
}

// TestBagSizesPerBag pins the per-bag Stats layout: one inner slice per
// tree with one entry per bag, including shapes with more than two bags
// per tree (which the old fixed-pair layout misreported).
func TestBagSizesPerBag(t *testing.T) {
	g := workload.RandomGraph(12, 80, workload.UniformWeights(), 23)
	l := 6 // fan plan: l-2 = 4 bags in ONE tree
	rels := make([]*relation.Relation, l)
	for i := range rels {
		rels[i] = g.Edges
	}
	p, err := PrepareCycleSingleTree(rels, sum)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Stats.BagSizes) != 1 || len(p.Stats.BagSizes[0]) != l-2 {
		t.Fatalf("6-cycle fan BagSizes = %v, want one tree with %d bags", p.Stats.BagSizes, l-2)
	}
	total := 0
	for _, n := range p.Stats.BagSizes[0] {
		total += n
	}
	if total != p.Stats.TotalMaterialized {
		t.Fatalf("BagSizes sum %d != TotalMaterialized %d", total, p.Stats.TotalMaterialized)
	}

	var four [4]*relation.Relation
	for i := range four {
		four[i] = g.Edges
	}
	ps, err := PrepareFourCycleSubmodular(four, sum)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Stats.BagSizes) != 3 {
		t.Fatalf("submodular BagSizes = %v, want 3 trees", ps.Stats.BagSizes)
	}
	for ti, bs := range ps.Stats.BagSizes {
		if len(bs) != 2 {
			t.Fatalf("submodular tree %d has %d bag entries, want 2", ti, len(bs))
		}
	}
}

// countdownCtx reports cancellation after Err has been consulted a
// fixed number of times — deterministic mid-prepare cancellation.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func TestPrepareCancellation(t *testing.T) {
	g := workload.RandomGraph(10, 60, workload.UniformWeights(), 29)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	edges, rels := graphAtoms(g, ghdShapes["bowtie"])
	d, err := hypergraph.New(edges...).Decompose()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PrepareGHDWith(d, edges, rels, sum, WithContext(canceled), WithWorkers(4)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled GHD prepare: got %v, want context.Canceled", err)
	}

	// Mid-prepare: allow a few checks, then cancel between bag tasks.
	mid := &countdownCtx{Context: context.Background()}
	mid.remaining.Store(2)
	if _, err := PrepareGHDWith(d, edges, rels, sum, WithContext(mid), WithWorkers(4)); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-prepare GHD cancel: got %v, want context.Canceled", err)
	}

	rels5 := make([]*relation.Relation, 5)
	for i := range rels5 {
		rels5[i] = g.Edges
	}
	if _, err := PrepareCycleSingleTree(rels5, sum, WithContext(canceled), WithWorkers(2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled cycle prepare: got %v, want context.Canceled", err)
	}
	var four [4]*relation.Relation
	for i := range four {
		four[i] = g.Edges
	}
	if _, err := PrepareFourCycleSubmodular(four, sum, WithContext(canceled), WithWorkers(2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled submodular prepare: got %v, want context.Canceled", err)
	}
}

// TestParallelDeterminismAllAggregates spot-checks one multi-bag shape
// under every ranking aggregate.
func TestParallelDeterminismAllAggregates(t *testing.T) {
	g := workload.RandomGraph(9, 50, workload.UniformWeights(), 31)
	edges, rels := graphAtoms(g, ghdShapes["fused-triangles"])
	d, err := hypergraph.New(edges...).Decompose()
	if err != nil {
		t.Fatal(err)
	}
	for _, agg := range []ranking.Aggregate{ranking.SumCost{}, ranking.SumBenefit{}, ranking.MaxCost{}, ranking.MinBenefit{}, ranking.ProductCost{}} {
		seq, err := PrepareGHDWith(d, edges, rels, agg)
		if err != nil {
			t.Fatalf("%s: %v", agg.Name(), err)
		}
		par, err := PrepareGHDWith(d, edges, rels, agg, WithWorkers(3))
		if err != nil {
			t.Fatalf("%s: %v", agg.Name(), err)
		}
		assertSamePlan(t, agg.Name(), seq, par)
	}
}
