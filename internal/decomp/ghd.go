package decomp

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/dp"
	"repro/internal/hypergraph"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/ranking"
	"repro/internal/relation"
	"repro/internal/wcoj"
)

// PrepareGHD compiles an arbitrary full conjunctive query via a
// generalized hypertree decomposition: search for a low-width
// decomposition (hypergraph.Decompose), materialise every bag with
// Generic-Join, and hand the acyclic bag tree to the any-k T-DP
// machinery. It is the generic fallback behind the facade's canonical
// triangle/4-cycle/l-cycle fast paths and accepts every query shape.
//
// Output tuples use the canonical schema GHDAttrs(edges): all query
// variables in sorted order.
func PrepareGHD(edges []hypergraph.Edge, rels []*relation.Relation, agg ranking.Aggregate, opts ...PrepareOption) (*Plan, error) {
	h := hypergraph.New(edges...)
	d, err := h.Decompose()
	if err != nil {
		return nil, err
	}
	return PrepareGHDWith(d, edges, rels, agg, opts...)
}

// GHDAttrs is the canonical output schema of the GHD plans built from
// the given edges: the distinct query variables in sorted order.
func GHDAttrs(edges []hypergraph.Edge) []string {
	return hypergraph.New(edges...).Vars()
}

// PrepareGHDWith compiles the query over an already-computed
// decomposition (so a prepare-once facade can run the structural search
// a single time and rebuild only the per-aggregate bags).
//
// Each bag is materialised by wcoj.Materialize over three kinds of
// atoms:
//
//   - charged atoms: relations whose hyperedge is assigned to this bag.
//     Every relation is charged to exactly one bag (the first bag, in
//     decomposition order, that contains its variables), so its tuple
//     weights — and, under bag semantics, its duplicate multiplicities —
//     enter the ranking aggregate exactly once across the whole plan.
//   - filter atoms: relations contained in the bag but charged
//     elsewhere. They join with identity weights and deduplicated
//     tuples, so they prune the bag without re-counting weight or
//     multiplicity.
//   - projection atoms: when a bag variable (typically introduced by a
//     fill edge of the elimination order) is not covered by any
//     contained relation, the smallest relation holding that variable
//     contributes its deduplicated, identity-weighted projection onto
//     the bag — the same device PrepareCycleSingleTree uses for its
//     middle bags.
//
// Every relation's join predicate is enforced in its charged bag, and
// the bag tree's running-intersection property propagates it to the
// final result, so the ranked enumeration over the bag tree is exact.
//
// Bags are mutually independent, so WithWorkers(n) materialises them in
// parallel: the worker budget fans out over bags first and any
// remainder is spent inside each bag by partitioning the first variable
// of its Generic-Join order (wcoj.MaterializeParallel). The resulting
// plan — bag contents and order, join tree, Stats — is bit-identical to
// the sequential one: each bag lands in its decomposition-order slot
// and Stats are aggregated only after the barrier.
func PrepareGHDWith(d *hypergraph.Decomposition, edges []hypergraph.Edge, rels []*relation.Relation, agg ranking.Aggregate, opts ...PrepareOption) (*Plan, error) {
	cfg := newPrepCfg(opts)
	if len(edges) != len(rels) {
		return nil, fmt.Errorf("decomp: %d relations for %d hyperedges", len(rels), len(edges))
	}
	for i, e := range edges {
		if len(e.Vars) != rels[i].Arity() {
			return nil, fmt.Errorf("decomp: edge %s has %d vars but relation %s arity %d",
				e.Name, len(e.Vars), rels[i].Name, rels[i].Arity())
		}
	}

	// Rename every relation to its query variables.
	qrels := make([]*relation.Relation, len(rels))
	for i, r := range rels {
		qrels[i] = rename(r, edges[i].Name, edges[i].Vars...)
	}

	// Charge each edge to the first bag that contains it.
	charged := make([]int, len(edges))
	for i := range charged {
		charged[i] = -1
	}
	for bi, contained := range d.Contains {
		for _, ei := range contained {
			if charged[ei] < 0 {
				charged[ei] = bi
			}
		}
	}
	for ei, bi := range charged {
		if bi < 0 {
			return nil, fmt.Errorf("decomp: edge %s not contained in any bag of %s", edges[ei].Name, d)
		}
	}

	// Fan the worker budget over the independent bags first; leftover
	// parallelism splits the first variable inside each bag, with the
	// division remainder handed to the lowest-indexed bags so no
	// requested worker is dropped (4 workers over 3 bags: intra budgets
	// 2,1,1). Each task writes only its own slot, and Stats are derived
	// after the barrier.
	bagWorkers := cfg.workers
	if bagWorkers > len(d.Bags) {
		bagWorkers = len(d.Bags)
	}
	intraBase, intraRem := 1, 0
	if bagWorkers > 0 {
		intraBase = cfg.workers / bagWorkers
		intraRem = cfg.workers % bagWorkers
	}
	deps := make([][]int, len(d.Bags))
	bags := make([]*relation.Relation, len(d.Bags))
	err := parallel.ForEach(cfg.ctx, bagWorkers, len(d.Bags), func(bi int) error {
		bctx, bsp := obs.StartSpan(cfg.ctx, "materialize")
		bsp.SetAttr("bag", "G"+strconv.Itoa(bi))
		defer bsp.End()
		bagVars := d.Bags[bi]
		srcs, err := projectionSources(d, bi, bagVars, edges, qrels)
		if err != nil {
			return err
		}
		deps[bi] = append(append([]int(nil), d.Contains[bi]...), srcs...)
		atoms, err := bagAtoms(d, bi, bagVars, edges, qrels, charged, srcs, agg)
		if err != nil {
			return err
		}
		_, osp := obs.StartSpan(bctx, "join-order")
		order := cfg.chooseOrder(atoms)
		osp.End()
		if len(order) != len(bagVars) {
			return fmt.Errorf("decomp: bag %v atoms cover %d of %d variables", bagVars, len(order), len(bagVars))
		}
		intra := intraBase
		if bi < intraRem {
			intra++
		}
		bag, _, err := wcoj.MaterializeParallelHinted(bctx, atoms, order, agg, intra, cfg.hints)
		if err != nil {
			return err
		}
		bag.Name = fmt.Sprintf("G%d", bi)
		bsp.SetAttr("rows", strconv.Itoa(bag.Len()))
		bags[bi] = bag
		return nil
	})
	if err != nil {
		return nil, err
	}

	// The GHD plan is one tree with len(bags) bags: one inner BagSizes
	// slice, one entry per bag in decomposition order.
	st := ghdStats(bags)

	// GYO arranges the bags into a join tree. The bag set must be
	// connected (the T-DP layer rejects cartesian tree edges);
	// hypergraph.Decompose guarantees this by merging one bag per
	// component of a disconnected query, so hand-built decompositions
	// passed here must be connected too.
	tp, err := prepareTree(bags, agg, GHDAttrs(edges))
	if err != nil {
		return nil, err
	}
	memo := &ghdMemo{dec: d, deps: deps, bags: bags}
	return &Plan{Stats: st, agg: agg, trees: []*treePlan{tp}, ghd: memo}, nil
}

// ghdMemo records what PrepareGHDWith built: the decomposition, each
// bag's relation, and the edge indices each bag's materialisation read
// (charged relations, filters, and projection sources). PrepareGHDDelta
// compares the recorded dependencies against the post-delta ones to
// decide which bags must be re-materialised.
type ghdMemo struct {
	dec  *hypergraph.Decomposition
	deps [][]int
	bags []*relation.Relation
}

// DeltaStats reports the reuse a PrepareGHDDelta achieved.
type DeltaStats struct {
	// Bags is the decomposition size; BagsRebuilt counts the bags
	// re-materialised because an input relation changed (or the
	// size-dependent projection-source choice shifted).
	Bags, BagsRebuilt int
	// TreeNodes is the bag-tree size; TreeRegrouped / TreeRecomputed
	// count the nodes whose candidate grouping / π pass had to rerun.
	TreeNodes, TreeRegrouped, TreeRecomputed int
}

func ghdStats(bags []*relation.Relation) *Stats {
	st := &Stats{BagSizes: [][]int{make([]int, len(bags))}}
	for i, b := range bags {
		st.BagSizes[0][i] = b.Len()
		st.TotalMaterialized += b.Len()
	}
	return st
}

// PrepareGHDDelta recompiles a GHD plan after some relations received
// delta batches, reusing the old plan wherever possible: a bag is
// re-materialised only when one of the edges feeding it (charged,
// filter, or projection source) changed — flagged per edge index in
// changed — or when the post-delta relation sizes shift its
// projection-source choice; all other bags share the old epoch's
// relation. The bag tree is then patched with dp.NewPlanDelta /
// InstantiateDelta rather than rebuilt. old must come from
// PrepareGHDWith (or a previous PrepareGHDDelta) over the same
// decomposition, edges, and aggregate; rels are the post-delta
// relations in edge order. The result is bit-identical to a cold
// PrepareGHDWith over the same decomposition and the new relations.
func PrepareGHDDelta(old *Plan, edges []hypergraph.Edge, rels []*relation.Relation, agg ranking.Aggregate, changed []bool, opts ...PrepareOption) (*Plan, *DeltaStats, error) {
	if old == nil || old.ghd == nil || len(old.trees) != 1 {
		return nil, nil, fmt.Errorf("decomp: PrepareGHDDelta needs a plan built by PrepareGHDWith")
	}
	if len(changed) != len(edges) || len(edges) != len(rels) {
		return nil, nil, fmt.Errorf("decomp: %d relations / %d changed flags for %d hyperedges", len(rels), len(changed), len(edges))
	}
	cfg := newPrepCfg(opts)
	var sp *obs.Span
	cfg.ctx, sp = obs.StartSpan(cfg.ctx, "ghd-delta")
	defer sp.End()
	d := old.ghd.dec
	for i, e := range edges {
		if len(e.Vars) != rels[i].Arity() {
			return nil, nil, fmt.Errorf("decomp: edge %s has %d vars but relation %s arity %d",
				e.Name, len(e.Vars), rels[i].Name, rels[i].Arity())
		}
	}
	qrels := make([]*relation.Relation, len(rels))
	for i, r := range rels {
		qrels[i] = rename(r, edges[i].Name, edges[i].Vars...)
	}
	charged := make([]int, len(edges))
	for i := range charged {
		charged[i] = -1
	}
	for bi, contained := range d.Contains {
		for _, ei := range contained {
			if charged[ei] < 0 {
				charged[ei] = bi
			}
		}
	}

	// Decide per bag: the dependency set is recomputed under the new
	// sizes (a delta to one relation can steal another bag's
	// projection-source pick), then a bag is clean iff its dependencies
	// are the same edges as before and none of them changed.
	deps := make([][]int, len(d.Bags))
	var rebuild []int
	for bi, bagVars := range d.Bags {
		srcs, err := projectionSources(d, bi, bagVars, edges, qrels)
		if err != nil {
			return nil, nil, err
		}
		deps[bi] = append(append([]int(nil), d.Contains[bi]...), srcs...)
		clean := equalInts(deps[bi], old.ghd.deps[bi])
		if clean {
			for _, ei := range deps[bi] {
				if changed[ei] {
					clean = false
					break
				}
			}
		}
		if !clean {
			rebuild = append(rebuild, bi)
		}
	}

	bags := make([]*relation.Relation, len(d.Bags))
	for bi := range bags {
		bags[bi] = old.ghd.bags[bi]
	}
	bagWorkers := cfg.workers
	if bagWorkers > len(rebuild) {
		bagWorkers = len(rebuild)
	}
	intraBase, intraRem := 1, 0
	if bagWorkers > 0 {
		intraBase = cfg.workers / bagWorkers
		intraRem = cfg.workers % bagWorkers
	}
	err := parallel.ForEach(cfg.ctx, bagWorkers, len(rebuild), func(i int) error {
		bi := rebuild[i]
		bctx, bsp := obs.StartSpan(cfg.ctx, "materialize")
		bsp.SetAttr("bag", "G"+strconv.Itoa(bi))
		defer bsp.End()
		bagVars := d.Bags[bi]
		srcs := deps[bi][len(d.Contains[bi]):]
		atoms, err := bagAtoms(d, bi, bagVars, edges, qrels, charged, srcs, agg)
		if err != nil {
			return err
		}
		order := cfg.chooseOrder(atoms)
		if len(order) != len(bagVars) {
			return fmt.Errorf("decomp: bag %v atoms cover %d of %d variables", bagVars, len(order), len(bagVars))
		}
		intra := intraBase
		if i < intraRem {
			intra++
		}
		bag, _, err := wcoj.MaterializeParallelHinted(bctx, atoms, order, agg, intra, cfg.hints)
		if err != nil {
			return err
		}
		bag.Name = fmt.Sprintf("G%d", bi)
		bsp.SetAttr("rows", strconv.Itoa(bag.Len()))
		bags[bi] = bag
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	st := ghdStats(bags)
	q, err := bagQuery(bags)
	if err != nil {
		return nil, nil, err
	}
	dpOpts := []dp.Option{dp.WithContext(cfg.ctx), dp.WithWorkers(cfg.workers)}
	// A bag is "changed" iff it was re-materialised; the incremental
	// reducer still proves content-identical rebuilds clean.
	changedBags := make([]bool, len(bags))
	for _, bi := range rebuild {
		changedBags[bi] = true
	}
	plan, dst, err := dp.NewPlanDelta(q, old.trees[0].plan, changedBags, dpOpts...)
	if err != nil {
		return nil, nil, err
	}
	t, recomputed, err := plan.InstantiateDelta(agg, old.trees[0].t, dst.Changed, dpOpts...)
	if err != nil {
		return nil, nil, err
	}
	perm, err := canonPerm(t, GHDAttrs(edges))
	if err != nil {
		return nil, nil, err
	}
	ds := &DeltaStats{
		Bags: len(bags), BagsRebuilt: len(rebuild),
		TreeNodes: dst.Nodes, TreeRegrouped: dst.Regrouped, TreeRecomputed: recomputed,
	}
	sp.SetAttr("bags_rebuilt", strconv.Itoa(ds.BagsRebuilt))
	sp.SetAttr("bags_reused", strconv.Itoa(ds.Bags-ds.BagsRebuilt))
	memo := &ghdMemo{dec: d, deps: deps, bags: bags}
	return &Plan{Stats: st, agg: agg, trees: []*treePlan{{t: t, plan: plan, perm: perm}}, ghd: memo}, ds, nil
}

// equalInts reports element-wise equality.
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// projectionSources picks, for every bag variable not covered by a
// contained relation, the smallest relation holding it (ties broken by
// edge index). The choice depends only on the post-rename relation
// sizes, so the delta path can recompute it cheaply and compare against
// the recorded dependency set.
func projectionSources(d *hypergraph.Decomposition, bi int, bagVars []string, edges []hypergraph.Edge, qrels []*relation.Relation) ([]int, error) {
	covered := make(map[string]bool, len(bagVars))
	for _, ei := range d.Contains[bi] {
		for _, v := range edges[ei].Vars {
			covered[v] = true
		}
	}
	var srcs []int
	for _, v := range bagVars {
		if covered[v] {
			continue
		}
		best := -1
		for ei, e := range edges {
			holds := false
			for _, ev := range e.Vars {
				if ev == v {
					holds = true
					break
				}
			}
			if holds && (best < 0 || qrels[ei].Len() < qrels[best].Len()) {
				best = ei
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("decomp: bag variable %s not held by any relation", v)
		}
		srcs = append(srcs, best)
		for _, sv := range intersectSorted(edges[best].Vars, bagVars) {
			covered[sv] = true
		}
	}
	return srcs, nil
}

// bagAtoms assembles the Generic-Join atoms for one bag: charged
// relations, contained filters, and — for the precomputed projection
// sources (projectionSources, in order) — deduplicated identity-weight
// projections covering the otherwise-uncovered bag variables.
func bagAtoms(d *hypergraph.Decomposition, bi int, bagVars []string, edges []hypergraph.Edge, qrels []*relation.Relation, charged []int, srcs []int, agg ranking.Aggregate) ([]wcoj.Atom, error) {
	var atoms []wcoj.Atom
	for _, ei := range d.Contains[bi] {
		if charged[ei] == bi {
			atoms = append(atoms, wcoj.Atom{Rel: qrels[ei], Vars: edges[ei].Vars})
		} else {
			atoms = append(atoms, wcoj.Atom{Rel: filterCopy(qrels[ei], agg), Vars: edges[ei].Vars})
		}
	}
	for _, ei := range srcs {
		shared := intersectSorted(edges[ei].Vars, bagVars)
		proj, err := qrels[ei].Project(shared...)
		if err != nil {
			return nil, err
		}
		atoms = append(atoms, wcoj.Atom{Rel: filterCopy(proj, agg), Vars: shared})
	}
	return atoms, nil
}

// filterCopy returns a deduplicated, identity-weighted copy of r: a pure
// join filter that contributes no weight and exactly one row per
// distinct tuple.
func filterCopy(r *relation.Relation, agg ranking.Aggregate) *relation.Relation {
	out := relation.New(r.Name+"~", r.Attrs...)
	id := agg.Identity()
	out.Tuples = append([]relation.Tuple(nil), r.Tuples...)
	out.Weights = make([]float64, len(r.Tuples))
	for i := range out.Weights {
		out.Weights[i] = id
	}
	out.Dedup()
	return out
}

// intersectSorted returns the elements of a that occur in b, sorted.
func intersectSorted(a, b []string) []string {
	set := make(map[string]bool, len(b))
	for _, v := range b {
		set[v] = true
	}
	var out []string
	for _, v := range a {
		if set[v] {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}
