package decomp

import (
	"fmt"
	"sort"

	"repro/internal/hypergraph"
	"repro/internal/ranking"
	"repro/internal/relation"
	"repro/internal/wcoj"
)

// PrepareGHD compiles an arbitrary full conjunctive query via a
// generalized hypertree decomposition: search for a low-width
// decomposition (hypergraph.Decompose), materialise every bag with
// Generic-Join, and hand the acyclic bag tree to the any-k T-DP
// machinery. It is the generic fallback behind the facade's canonical
// triangle/4-cycle/l-cycle fast paths and accepts every query shape.
//
// Output tuples use the canonical schema GHDAttrs(edges): all query
// variables in sorted order.
func PrepareGHD(edges []hypergraph.Edge, rels []*relation.Relation, agg ranking.Aggregate) (*Plan, error) {
	h := hypergraph.New(edges...)
	d, err := h.Decompose()
	if err != nil {
		return nil, err
	}
	return PrepareGHDWith(d, edges, rels, agg)
}

// GHDAttrs is the canonical output schema of the GHD plans built from
// the given edges: the distinct query variables in sorted order.
func GHDAttrs(edges []hypergraph.Edge) []string {
	return hypergraph.New(edges...).Vars()
}

// PrepareGHDWith compiles the query over an already-computed
// decomposition (so a prepare-once facade can run the structural search
// a single time and rebuild only the per-aggregate bags).
//
// Each bag is materialised by wcoj.Materialize over three kinds of
// atoms:
//
//   - charged atoms: relations whose hyperedge is assigned to this bag.
//     Every relation is charged to exactly one bag (the first bag, in
//     decomposition order, that contains its variables), so its tuple
//     weights — and, under bag semantics, its duplicate multiplicities —
//     enter the ranking aggregate exactly once across the whole plan.
//   - filter atoms: relations contained in the bag but charged
//     elsewhere. They join with identity weights and deduplicated
//     tuples, so they prune the bag without re-counting weight or
//     multiplicity.
//   - projection atoms: when a bag variable (typically introduced by a
//     fill edge of the elimination order) is not covered by any
//     contained relation, the smallest relation holding that variable
//     contributes its deduplicated, identity-weighted projection onto
//     the bag — the same device PrepareCycleSingleTree uses for its
//     middle bags.
//
// Every relation's join predicate is enforced in its charged bag, and
// the bag tree's running-intersection property propagates it to the
// final result, so the ranked enumeration over the bag tree is exact.
func PrepareGHDWith(d *hypergraph.Decomposition, edges []hypergraph.Edge, rels []*relation.Relation, agg ranking.Aggregate) (*Plan, error) {
	if len(edges) != len(rels) {
		return nil, fmt.Errorf("decomp: %d relations for %d hyperedges", len(rels), len(edges))
	}
	for i, e := range edges {
		if len(e.Vars) != rels[i].Arity() {
			return nil, fmt.Errorf("decomp: edge %s has %d vars but relation %s arity %d",
				e.Name, len(e.Vars), rels[i].Name, rels[i].Arity())
		}
	}

	// Rename every relation to its query variables.
	qrels := make([]*relation.Relation, len(rels))
	for i, r := range rels {
		qrels[i] = rename(r, edges[i].Name, edges[i].Vars...)
	}

	// Charge each edge to the first bag that contains it.
	charged := make([]int, len(edges))
	for i := range charged {
		charged[i] = -1
	}
	for bi, contained := range d.Contains {
		for _, ei := range contained {
			if charged[ei] < 0 {
				charged[ei] = bi
			}
		}
	}
	for ei, bi := range charged {
		if bi < 0 {
			return nil, fmt.Errorf("decomp: edge %s not contained in any bag of %s", edges[ei].Name, d)
		}
	}

	bags := make([]*relation.Relation, len(d.Bags))
	st := &Stats{}
	for bi, bagVars := range d.Bags {
		atoms, err := bagAtoms(d, bi, bagVars, edges, qrels, charged, agg)
		if err != nil {
			return nil, err
		}
		order := wcoj.SuggestOrder(atoms)
		if len(order) != len(bagVars) {
			return nil, fmt.Errorf("decomp: bag %v atoms cover %d of %d variables", bagVars, len(order), len(bagVars))
		}
		bag, _, err := wcoj.Materialize(atoms, order, agg)
		if err != nil {
			return nil, err
		}
		bag.Name = fmt.Sprintf("G%d", bi)
		bags[bi] = bag
	}

	// The GHD plan is one tree with len(bags) bags, so the pairwise
	// BagSizes layout of the canonical cycle plans does not apply; the
	// flat TreeBags field carries the per-bag sizes instead.
	st.TreeBags = [][]int{make([]int, len(bags))}
	for i, b := range bags {
		st.TreeBags[0][i] = b.Len()
		st.TotalMaterialized += b.Len()
	}

	// GYO arranges the bags into a join tree. The bag set must be
	// connected (the T-DP layer rejects cartesian tree edges);
	// hypergraph.Decompose guarantees this by merging one bag per
	// component of a disconnected query, so hand-built decompositions
	// passed here must be connected too.
	tp, err := prepareTree(bags, agg, GHDAttrs(edges))
	if err != nil {
		return nil, err
	}
	return &Plan{Stats: st, agg: agg, trees: []*treePlan{tp}}, nil
}

// bagAtoms assembles the Generic-Join atoms for one bag: charged
// relations, contained filters, and projections for otherwise-uncovered
// bag variables.
func bagAtoms(d *hypergraph.Decomposition, bi int, bagVars []string, edges []hypergraph.Edge, qrels []*relation.Relation, charged []int, agg ranking.Aggregate) ([]wcoj.Atom, error) {
	covered := make(map[string]bool, len(bagVars))
	var atoms []wcoj.Atom
	for _, ei := range d.Contains[bi] {
		if charged[ei] == bi {
			atoms = append(atoms, wcoj.Atom{Rel: qrels[ei], Vars: edges[ei].Vars})
		} else {
			atoms = append(atoms, wcoj.Atom{Rel: filterCopy(qrels[ei], agg), Vars: edges[ei].Vars})
		}
		for _, v := range edges[ei].Vars {
			covered[v] = true
		}
	}
	for _, v := range bagVars {
		if covered[v] {
			continue
		}
		// Pick the smallest relation holding v and project it onto the bag.
		best := -1
		for ei, e := range edges {
			holds := false
			for _, ev := range e.Vars {
				if ev == v {
					holds = true
					break
				}
			}
			if holds && (best < 0 || qrels[ei].Len() < qrels[best].Len()) {
				best = ei
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("decomp: bag variable %s not held by any relation", v)
		}
		shared := intersectSorted(edges[best].Vars, bagVars)
		proj, err := qrels[best].Project(shared...)
		if err != nil {
			return nil, err
		}
		atoms = append(atoms, wcoj.Atom{Rel: filterCopy(proj, agg), Vars: shared})
		for _, sv := range shared {
			covered[sv] = true
		}
	}
	return atoms, nil
}

// filterCopy returns a deduplicated, identity-weighted copy of r: a pure
// join filter that contributes no weight and exactly one row per
// distinct tuple.
func filterCopy(r *relation.Relation, agg ranking.Aggregate) *relation.Relation {
	out := relation.New(r.Name+"~", r.Attrs...)
	id := agg.Identity()
	out.Tuples = append([]relation.Tuple(nil), r.Tuples...)
	out.Weights = make([]float64, len(r.Tuples))
	for i := range out.Weights {
		out.Weights[i] = id
	}
	out.Dedup()
	return out
}

// intersectSorted returns the elements of a that occur in b, sorted.
func intersectSorted(a, b []string) []string {
	set := make(map[string]bool, len(b))
	for _, v := range b {
		set[v] = true
	}
	var out []string
	for _, v := range a {
		if set[v] {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}
