package decomp

import (
	"context"

	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/ranking"
	"repro/internal/relation"
	"repro/internal/wcoj"
	"repro/internal/workload"
)

var sum = ranking.SumCost{}

// fourCycleReference materialises the 4-cycle output with Generic-Join
// (an independent implementation) and returns it sorted by weight.
func fourCycleReference(rels [4]*relation.Relation, agg ranking.Aggregate) *relation.Relation {
	atoms := []wcoj.Atom{
		{Rel: rels[0], Vars: []string{"A", "B"}},
		{Rel: rels[1], Vars: []string{"B", "C"}},
		{Rel: rels[2], Vars: []string{"C", "D"}},
		{Rel: rels[3], Vars: []string{"D", "A"}},
	}
	out, _, err := wcoj.Materialize(atoms, FourCycleAttrs, agg)
	if err != nil {
		panic(err)
	}
	out.SortByWeight()
	return out
}

func fourRels(g *workload.Graph) [4]*relation.Relation {
	var rels [4]*relation.Relation
	for i := range rels {
		rels[i] = g.Edges
	}
	return rels
}

func checkAgainstReference(t *testing.T, rels [4]*relation.Relation,
	mk func() (core.Iterator, *Stats, error)) *Stats {
	t.Helper()
	want := fourCycleReference(rels, sum)
	it, st, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	got := core.Collect(it, 0)
	if len(got) != want.Len() {
		t.Fatalf("enumerated %d results, reference has %d", len(got), want.Len())
	}
	gotRel := relation.New("got", FourCycleAttrs...)
	for i, r := range got {
		if math.Abs(r.Weight-want.Weights[i]) > 1e-9 {
			t.Fatalf("rank %d: weight %g, reference %g", i, r.Weight, want.Weights[i])
		}
		if i > 0 && r.Weight < got[i-1].Weight {
			t.Fatalf("weights not sorted at rank %d", i)
		}
		gotRel.AddTuple(r.Tuple, 0)
	}
	wantRel := relation.New("want", FourCycleAttrs...)
	for _, tp := range want.Tuples {
		wantRel.AddTuple(tp, 0)
	}
	if !gotRel.EqualAsSet(wantRel) {
		t.Fatal("tuple multisets differ from reference")
	}
	return st
}

func TestSubmodularMatchesReferenceRandom(t *testing.T) {
	g := workload.RandomGraph(12, 100, workload.UniformWeights(), 1)
	checkAgainstReference(t, fourRels(g), func() (core.Iterator, *Stats, error) {
		return FourCycleSubmodular(context.Background(), fourRels(g), sum, core.Lazy)
	})
}

func TestSingleTreeMatchesReferenceRandom(t *testing.T) {
	g := workload.RandomGraph(12, 100, workload.UniformWeights(), 2)
	checkAgainstReference(t, fourRels(g), func() (core.Iterator, *Stats, error) {
		return FourCycleSingleTree(context.Background(), fourRels(g), sum, core.Lazy)
	})
}

func TestSubmodularMatchesReferenceSkewed(t *testing.T) {
	// Skewed graphs produce heavy values, exercising all three trees.
	g := workload.SkewedGraph(30, 300, 1.4, workload.UniformWeights(), 3)
	st := checkAgainstReference(t, fourRels(g), func() (core.Iterator, *Stats, error) {
		return FourCycleSubmodular(context.Background(), fourRels(g), sum, core.Lazy)
	})
	if st.HeavyB == 0 {
		t.Log("warning: no heavy values; skew too mild to exercise T2/T3")
	}
}

func TestSubmodularDistinctRelations(t *testing.T) {
	// Four genuinely different relations (not a self-join).
	mk := func(seed uint64) *relation.Relation {
		g := workload.RandomGraph(10, 60, workload.UniformWeights(), seed)
		return g.Edges
	}
	rels := [4]*relation.Relation{mk(10), mk(11), mk(12), mk(13)}
	checkAgainstReference(t, rels, func() (core.Iterator, *Stats, error) {
		return FourCycleSubmodular(context.Background(), rels, sum, core.Lazy)
	})
}

// Property: submodular and single-tree agree on random instances across
// variants.
func TestSubmodularEqualsSingleTreeProperty(t *testing.T) {
	f := func(seed uint16, vIdx uint8) bool {
		variants := []core.Variant{core.Lazy, core.Eager, core.Rec, core.Take2}
		v := variants[int(vIdx)%len(variants)]
		g := workload.RandomGraph(8, 50, workload.UniformWeights(), uint64(seed))
		rels := fourRels(g)
		it1, _, err1 := FourCycleSubmodular(context.Background(), rels, sum, v)
		it2, _, err2 := FourCycleSingleTree(context.Background(), rels, sum, v)
		if err1 != nil || err2 != nil {
			return false
		}
		a := core.Collect(it1, 0)
		b := core.Collect(it2, 0)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if math.Abs(a[i].Weight-b[i].Weight) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// The §3 separation: on the hub instance the single-tree plan
// materialises Θ(n²) tuples while the submodular plan materialises
// almost nothing (the output is empty).
func TestHubInstanceSeparation(t *testing.T) {
	n := 400
	inst := workload.FourCycleHub(n, workload.UniformWeights(), 1)
	var rels [4]*relation.Relation
	copy(rels[:], inst.Rels)

	itSub, stSub, err := FourCycleSubmodular(context.Background(), rels, sum, core.Lazy)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := itSub.Next(); ok {
		t.Fatal("hub instance should have no 4-cycles")
	}
	itSingle, stSingle, err := FourCycleSingleTree(context.Background(), rels, sum, core.Lazy)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := itSingle.Next(); ok {
		t.Fatal("hub instance should have no 4-cycles (single tree)")
	}
	quad := (n / 2) * (n / 2)
	if stSingle.TotalMaterialized < quad {
		t.Errorf("single-tree materialised %d, expected >= %d", stSingle.TotalMaterialized, quad)
	}
	if stSub.TotalMaterialized > n {
		t.Errorf("submodular materialised %d, expected O(n)=%d on the hub instance", stSub.TotalMaterialized, n)
	}
}

// Submodular bags must respect the n^1.5 bound with slack even on skew.
func TestSubmodularBagBound(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		g := workload.SkewedGraph(80, 2000, 1.5, workload.UniformWeights(), seed)
		rels := fourRels(g)
		_, st, err := FourCycleSubmodular(context.Background(), rels, sum, core.Lazy)
		if err != nil {
			t.Fatal(err)
		}
		n := float64(g.Edges.Len())
		bound := int(4 * n * math.Sqrt(n))
		for ti, bs := range st.BagSizes {
			for _, n := range bs {
				if n > bound {
					t.Errorf("seed %d tree %d: bag sizes %v exceed 4·n^1.5 = %d", seed, ti, bs, bound)
				}
			}
		}
	}
}

func TestTriangleAnyKMatchesReference(t *testing.T) {
	g := workload.RandomGraph(15, 120, workload.UniformWeights(), 5)
	rels := [3]*relation.Relation{g.Edges, g.Edges, g.Edges}
	it, st, err := TriangleAnyK(context.Background(), rels, sum)
	if err != nil {
		t.Fatal(err)
	}
	got := core.Collect(it, 0)

	atoms := []wcoj.Atom{
		{Rel: g.Edges, Vars: []string{"A", "B"}},
		{Rel: g.Edges, Vars: []string{"B", "C"}},
		{Rel: g.Edges, Vars: []string{"C", "A"}},
	}
	want, _, err := wcoj.Materialize(atoms, TriangleAttrs, sum)
	if err != nil {
		t.Fatal(err)
	}
	want.SortByWeight()
	if len(got) != want.Len() {
		t.Fatalf("triangles: %d vs reference %d", len(got), want.Len())
	}
	for i, r := range got {
		if math.Abs(r.Weight-want.Weights[i]) > 1e-9 {
			t.Fatalf("rank %d: %g vs %g", i, r.Weight, want.Weights[i])
		}
	}
	if st.TotalMaterialized != want.Len() {
		t.Errorf("stats materialised %d, want %d", st.TotalMaterialized, want.Len())
	}
}

func TestTriangleAnyKEmpty(t *testing.T) {
	e := relation.New("E", "src", "dst")
	e.Add(1, 2)
	e.Add(2, 3) // no cycle back
	it, _, err := TriangleAnyK(context.Background(), [3]*relation.Relation{e, e, e}, sum)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.Next(); ok {
		t.Fatal("no triangles expected")
	}
}

// Top-k early termination: asking for 5 lightest 4-cycles must not
// enumerate everything (functional check: results equal the reference
// prefix).
func TestTopKPrefix(t *testing.T) {
	g := workload.RandomGraph(15, 200, workload.UniformWeights(), 7)
	rels := fourRels(g)
	want := fourCycleReference(rels, sum)
	if want.Len() < 10 {
		t.Skip("instance too small")
	}
	it, _, err := FourCycleSubmodular(context.Background(), rels, sum, core.Lazy)
	if err != nil {
		t.Fatal(err)
	}
	got := core.Collect(it, 5)
	for i := range got {
		if math.Abs(got[i].Weight-want.Weights[i]) > 1e-9 {
			t.Fatalf("top-%d weight %g, reference %g", i+1, got[i].Weight, want.Weights[i])
		}
	}
}

func BenchmarkSubmodularTop10(b *testing.B) {
	g := workload.SkewedGraph(200, 5000, 1.3, workload.UniformWeights(), 1)
	rels := fourRels(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, _, err := FourCycleSubmodular(context.Background(), rels, sum, core.Lazy)
		if err != nil {
			b.Fatal(err)
		}
		core.Collect(it, 10)
	}
}
