// Package decomp evaluates *cyclic* join queries by decomposing them
// into acyclic queries over materialised bags, then running any-k over
// each tree and merging the ranked streams (§3–§4 of the tutorial):
//
//   - Triangle: a single bag materialised by Generic-Join in O(n^1.5)
//     (the AGM bound), enumerated lazily in ranking order.
//   - FourCycleSingleTree: the fractional-hypertree-width-2 plan — two
//     bags R1⋈R2 and R3⋈R4, each up to Θ(n²). This is the plan the
//     tutorial says is *suboptimal*.
//   - FourCycleSubmodular: the submodular-width-1.5 plan — three trees
//     selected by the heaviness of the join values at B and D, with
//     every bag both sized and *computable* in O(n^1.5) (each bag join
//     drives from a filtered side and probes an index, so its cost is
//     input + output). The three cases partition the output, so the
//     ranked union needs no deduplication.
//
// Every Prepare* constructor accepts PrepareOptions: WithWorkers(n)
// materialises the plan's mutually independent bags on a bounded
// worker pool (bag-level fan-out first, leftover workers partitioning
// the first variable inside each Generic-Join bag via
// wcoj.MaterializeParallel), and WithContext(ctx) makes the prepare
// phase cancelable between bag tasks and partitions. Parallel prepares
// are bit-identical to sequential ones — same bag contents and order,
// same Stats — see docs/ARCHITECTURE.md for the invariants.
package decomp

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/heap"
	"repro/internal/hypergraph"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/ranking"
	"repro/internal/relation"
	"repro/internal/wcoj"
	"repro/internal/yannakakis"
)

// prepCfg collects the per-prepare options: how many workers materialise
// bags, which context can cancel the prepare phase, and an optional
// data-aware chooser for Generic-Join variable orders.
type prepCfg struct {
	ctx     context.Context
	workers int
	order   func([]wcoj.Atom) ([]string, error)
	hints   wcoj.SkewHints
}

// PrepareOption configures one Prepare* call. The defaults are fully
// sequential materialisation under context.Background().
type PrepareOption func(*prepCfg)

// WithWorkers sets how many workers materialise the plan's bags: the
// independent bags of a shape fan out first (one task per bag), and any
// leftover parallelism is spent inside each Generic-Join bag by
// partitioning the first variable of its order
// (wcoj.MaterializeParallel). n <= 0 selects GOMAXPROCS. Whatever the
// worker count, the prepared plan is bit-identical to the sequential
// one: same bag relations in the same order, same Stats.
func WithWorkers(n int) PrepareOption {
	return func(c *prepCfg) { c.workers = parallel.Degree(n) }
}

// WithContext attaches a cancellation context to the prepare phase.
// Cancellation is checked between bag tasks and between intra-bag
// partitions; a canceled prepare returns ctx.Err() and no plan.
func WithContext(ctx context.Context) PrepareOption {
	return func(c *prepCfg) { c.ctx = ctx }
}

// WithOrderChooser installs a data-aware Generic-Join variable-order
// chooser (e.g. catalog.ChooseOrder) consulted per bag by the GHD
// planner. The chooser must return an order over exactly the variables
// of the atoms it is given; when it errors or returns a different
// variable set, the bag silently falls back to the structural
// wcoj.SuggestOrder heuristic, so a chooser can never make a prepare
// fail. The per-bag order only affects materialisation cost, not
// results: bags are sorted into canonical attribute order before the
// join tree is built.
func WithOrderChooser(f func([]wcoj.Atom) ([]string, error)) PrepareOption {
	return func(c *prepCfg) { c.order = f }
}

// WithSkewHints installs catalog heavy-hitter hints (e.g. built from
// catalog.CostModel.HeavyValues) consulted by the intra-bag parallel
// materialisation: hinted values of a bag's first order variable are
// split heavy/light at a lower threshold, so one skewed value is
// subdivided across workers instead of pinned to one. Hints never
// change results or Stats — parallel prepares stay bit-identical to
// sequential ones — only the partition shapes.
func WithSkewHints(h wcoj.SkewHints) PrepareOption {
	return func(c *prepCfg) { c.hints = h }
}

// chooseOrder resolves one bag's variable order: the configured chooser
// when it yields a valid order over the atoms' variables, otherwise the
// structural heuristic.
func (c *prepCfg) chooseOrder(atoms []wcoj.Atom) []string {
	fallback := wcoj.SuggestOrder(atoms)
	if c.order == nil {
		return fallback
	}
	order, err := c.order(atoms)
	if err != nil || len(order) != len(fallback) {
		return fallback
	}
	want := make(map[string]bool, len(fallback))
	for _, v := range fallback {
		want[v] = true
	}
	for _, v := range order {
		if !want[v] {
			return fallback
		}
		delete(want, v)
	}
	return order
}

func newPrepCfg(opts []PrepareOption) prepCfg {
	//anykvet:allow ctxplumb -- documented option default; callers attach cancellation via WithContext
	cfg := prepCfg{ctx: context.Background(), workers: 1}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// buildBags materialises independent bags across cfg.workers workers.
// Slot i of the result is task i's bag, so bag order — and everything
// derived from it: join-tree construction, Stats — is deterministic;
// sizes must only be read after buildBags returns (the barrier).
func buildBags(cfg prepCfg, tasks ...func() (*relation.Relation, error)) ([]*relation.Relation, error) {
	bags := make([]*relation.Relation, len(tasks))
	err := parallel.ForEach(cfg.ctx, cfg.workers, len(tasks), func(i int) error {
		b, err := tasks[i]()
		bags[i] = b
		return err
	})
	if err != nil {
		return nil, err
	}
	return bags, nil
}

// Plan is a compiled decomposition: every bag is materialised and every
// tree's T-DP is built, so Run only has to spin up iterators. A Plan is
// bound to one ranking aggregate (bag weights combine under it) but is
// variant-agnostic and safe for concurrent Run calls — the prepared
// half of the facade's prepare-once / execute-many API.
type Plan struct {
	// Stats reports the decomposition work done at prepare time.
	Stats *Stats

	agg ranking.Aggregate
	// Exactly one of bag / trees is set: the triangle materialises a
	// single Generic-Join bag enumerated in sorted order; every other
	// shape unions one or more acyclic trees.
	bag   *relation.Relation
	trees []*treePlan
	// ghd memoises what PrepareGHDWith built so PrepareGHDDelta can
	// rebuild only the bags whose input relations changed; nil for the
	// canonical (triangle / 4-cycle / l-cycle) constructors.
	ghd *ghdMemo
}

// Run starts one ranked enumeration over the compiled decomposition.
// The context cancels the returned iterator (and, for multi-tree plans,
// the per-tree iterators under the merge). The variant selects the
// any-k algorithm for tree-based plans; the triangle's single sorted
// bag ignores it.
func (p *Plan) Run(ctx context.Context, v core.Variant) (core.Iterator, error) {
	if p.bag != nil {
		return newSortedIter(ctx, p.bag, p.agg), nil
	}
	its := make([]core.Iterator, len(p.trees))
	for i, tp := range p.trees {
		it, err := tp.run(ctx, v)
		if err != nil {
			return nil, err
		}
		its[i] = it
	}
	if len(its) == 1 {
		return its[0], nil
	}
	// The trees partition the output, so the ranked union needs no
	// deduplication.
	return core.Merge(ctx, p.agg, false, its...), nil
}

// Stats reports the decomposition work: what was materialised where.
// Parallel prepares (WithWorkers) aggregate Stats only after every bag
// task has finished, so the reported values are identical to a
// sequential prepare's.
type Stats struct {
	// BagSizes holds the materialised bag sizes: one inner slice per
	// tree of the plan, one entry per bag of that tree, in tree order.
	// (Earlier versions packed fixed [2]int pairs, which misreported
	// shapes with more than two bags per tree — the l-cycle fan plan and
	// GHD bag trees.)
	BagSizes [][]int
	// HeavyB and HeavyD count heavy join values.
	HeavyB, HeavyD int
	// TotalMaterialized sums all bag sizes.
	TotalMaterialized int
}

// FourCycleAttrs is the canonical output schema of the 4-cycle
// constructors: the iterators yield tuples ordered (A, B, C, D).
var FourCycleAttrs = []string{"A", "B", "C", "D"}

// TriangleAttrs is the canonical output schema of TriangleAnyK.
var TriangleAttrs = []string{"A", "B", "C"}

// PrepareTriangle compiles the triangle query R1(A,B) ⋈ R2(B,C) ⋈
// R3(C,A): all triangles are materialised with Generic-Join (O(n^1.5)
// by AGM); Run then enumerates them lazily in ranking order via an
// incremental heap — so time-to-first is O(n^1.5) and each further
// result costs O(log n), matching the claim of §1 for the 3-cycle.
func PrepareTriangle(rels [3]*relation.Relation, agg ranking.Aggregate, opts ...PrepareOption) (*Plan, error) {
	cfg := newPrepCfg(opts)
	atoms := []wcoj.Atom{
		{Rel: rels[0], Vars: []string{"A", "B"}},
		{Rel: rels[1], Vars: []string{"B", "C"}},
		{Rel: rels[2], Vars: []string{"C", "A"}},
	}
	// A single bag: all parallelism goes intra-bag, partitioning A.
	bctx, bsp := obs.StartSpan(cfg.ctx, "materialize")
	bsp.SetAttr("bag", "triangle")
	out, _, err := wcoj.MaterializeParallelHinted(bctx, atoms, TriangleAttrs, agg, cfg.workers, cfg.hints)
	bsp.End()
	if err != nil {
		return nil, err
	}
	st := &Stats{BagSizes: [][]int{{out.Len()}}, TotalMaterialized: out.Len()}
	return &Plan{Stats: st, agg: agg, bag: out}, nil
}

// TriangleAnyK is the one-shot form of PrepareTriangle + Run. The
// context cancels both preparation (pass WithContext for finer control)
// and the returned iterator.
func TriangleAnyK(ctx context.Context, rels [3]*relation.Relation, agg ranking.Aggregate, opts ...PrepareOption) (core.Iterator, *Stats, error) {
	p, err := PrepareTriangle(rels, agg, opts...)
	if err != nil {
		return nil, nil, err
	}
	it, err := p.Run(ctx, core.Lazy)
	if err != nil {
		return nil, nil, err
	}
	return it, p.Stats, nil
}

// sortedIter enumerates a materialised relation in weight order using an
// incremental heap sort (O(r) build, O(log r) per result).
type sortedIter struct {
	*core.Lifecycle
	rel *relation.Relation
	inc *heap.IncSort[int32]
	k   int
}

func newSortedIter(ctx context.Context, rel *relation.Relation, agg ranking.Aggregate) core.Iterator {
	rows := make([]int32, rel.Len())
	for i := range rows {
		rows[i] = int32(i)
	}
	return &sortedIter{
		Lifecycle: core.NewLifecycle(ctx),
		rel:       rel,
		inc:       heap.NewIncSort(func(a, b int32) bool { return agg.Less(rel.Weights[a], rel.Weights[b]) }, rows),
	}
}

func (s *sortedIter) Next() (core.Result, bool) {
	if !s.Proceed() {
		return core.Result{}, false
	}
	defer s.End()
	row, ok := s.inc.Get(s.k)
	if !ok {
		s.Exhaust()
		return core.Result{}, false
	}
	s.k++
	return core.Result{Tuple: s.rel.Tuples[row], Weight: s.rel.Weights[row]}, true
}

// projectIter reorders result tuples into a canonical attribute order.
// Err and Close delegate to the inner iterator.
type projectIter struct {
	inner core.Iterator
	perm  []int // output position i takes inner tuple[perm[i]]
}

func (p *projectIter) Next() (core.Result, bool) {
	r, ok := p.inner.Next()
	if !ok {
		return core.Result{}, false
	}
	out := make(relation.Tuple, len(p.perm))
	for i, c := range p.perm {
		out[i] = r.Tuple[c]
	}
	return core.Result{Tuple: out, Weight: r.Weight}, true
}

func (p *projectIter) Err() error   { return p.inner.Err() }
func (p *projectIter) Close() error { return p.inner.Close() }

// treePlan is one compiled acyclic tree of a decomposition: its T-DP,
// the aggregate-independent plan it was instantiated from (kept so a
// delta prepare can patch instead of rebuild), plus the permutation
// normalising output tuples to the canonical attribute order.
type treePlan struct {
	t    *dp.TDP
	plan *dp.Plan
	perm []int
}

// prepareTree builds the acyclic query over the given bags (GYO finds
// the join tree) and compiles its T-DP.
func prepareTree(bags []*relation.Relation, agg ranking.Aggregate, canonAttrs []string) (*treePlan, error) {
	q, err := bagQuery(bags)
	if err != nil {
		return nil, err
	}
	p, err := dp.NewPlan(q)
	if err != nil {
		return nil, err
	}
	t, err := p.Instantiate(agg)
	if err != nil {
		return nil, err
	}
	perm, err := canonPerm(t, canonAttrs)
	if err != nil {
		return nil, err
	}
	return &treePlan{t: t, plan: p, perm: perm}, nil
}

// bagQuery builds the acyclic query over materialised bags.
func bagQuery(bags []*relation.Relation) (*yannakakis.Query, error) {
	edges := make([]hypergraph.Edge, len(bags))
	for i, b := range bags {
		edges[i] = hypergraph.Edge{Name: b.Name, Vars: b.Attrs}
	}
	return yannakakis.NewQuery(hypergraph.New(edges...), bags)
}

// canonPerm maps the tree's output schema onto the canonical one.
func canonPerm(t *dp.TDP, canonAttrs []string) ([]int, error) {
	perm := make([]int, len(canonAttrs))
	for i, a := range canonAttrs {
		found := -1
		for j, b := range t.OutAttrs {
			if a == b {
				found = j
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("decomp: attribute %s missing from tree output %v", a, t.OutAttrs)
		}
		perm[i] = found
	}
	return perm, nil
}

// run starts one any-k enumeration over the tree's compiled T-DP.
func (tp *treePlan) run(ctx context.Context, v core.Variant) (core.Iterator, error) {
	it, err := core.New(ctx, tp.t, v)
	if err != nil {
		return nil, err
	}
	return &projectIter{inner: it, perm: tp.perm}, nil
}

// joinBags materialises the natural join of left and right (on their
// shared attribute names) by driving from left and probing a hash index
// on right — cost O(|left| + |output|). The output schema is outAttrs.
func joinBags(name string, left, right *relation.Relation, outAttrs []string, agg ranking.Aggregate) (*relation.Relation, error) {
	shared := left.SharedAttrs(right)
	if len(shared) == 0 {
		return nil, fmt.Errorf("decomp: bags %s/%s share no attributes", left.Name, right.Name)
	}
	ridx := relation.MustIndex(right, shared...)
	lCols, err := left.AttrIndexes(shared)
	if err != nil {
		return nil, err
	}
	type src struct {
		fromLeft bool
		col      int
	}
	srcs := make([]src, len(outAttrs))
	for i, a := range outAttrs {
		if c := left.AttrIndex(a); c >= 0 {
			srcs[i] = src{fromLeft: true, col: c}
		} else if c := right.AttrIndex(a); c >= 0 {
			srcs[i] = src{fromLeft: false, col: c}
		} else {
			return nil, fmt.Errorf("decomp: output attribute %s not found", a)
		}
	}
	out := relation.New(name, outAttrs...)
	key := make([]relation.Value, len(lCols))
	for li, lt := range left.Tuples {
		for k, c := range lCols {
			key[k] = lt[c]
		}
		for _, ri := range ridx.Lookup(key) {
			rt := right.Tuples[ri]
			tup := make(relation.Tuple, len(srcs))
			for i, s := range srcs {
				if s.fromLeft {
					tup[i] = lt[s.col]
				} else {
					tup[i] = rt[s.col]
				}
			}
			out.AddTuple(tup, agg.Combine(left.Weights[li], right.Weights[ri]))
		}
	}
	return out, nil
}

// rename returns a view of r with attributes renamed (tuples shared).
func rename(r *relation.Relation, name string, attrs ...string) *relation.Relation {
	out := relation.New(name, attrs...)
	out.Tuples = r.Tuples
	out.Weights = r.Weights
	return out
}

// PrepareFourCycleSingleTree compiles the 4-cycle query
// R1(A,B) ⋈ R2(B,C) ⋈ R3(C,D) ⋈ R4(D,A) with the fhtw-2 single-tree
// plan: bags W1(A,B,C) = R1⋈R2 and W2(A,C,D) = R3⋈R4, each up to Θ(n²).
// Output tuples are ordered (A,B,C,D).
func PrepareFourCycleSingleTree(rels [4]*relation.Relation, agg ranking.Aggregate, opts ...PrepareOption) (*Plan, error) {
	cfg := newPrepCfg(opts)
	r1 := rename(rels[0], "R1", "A", "B")
	r2 := rename(rels[1], "R2", "B", "C")
	r3 := rename(rels[2], "R3", "C", "D")
	r4 := rename(rels[3], "R4", "D", "A")
	bags, err := buildBags(cfg,
		func() (*relation.Relation, error) { return joinBags("W1", r1, r2, []string{"A", "B", "C"}, agg) },
		func() (*relation.Relation, error) { return joinBags("W2", r3, r4, []string{"A", "C", "D"}, agg) },
	)
	if err != nil {
		return nil, err
	}
	w1, w2 := bags[0], bags[1]
	tp, err := prepareTree([]*relation.Relation{w1, w2}, agg, FourCycleAttrs)
	if err != nil {
		return nil, err
	}
	st := &Stats{BagSizes: [][]int{{w1.Len(), w2.Len()}}, TotalMaterialized: w1.Len() + w2.Len()}
	return &Plan{Stats: st, agg: agg, trees: []*treePlan{tp}}, nil
}

// FourCycleSingleTree is the one-shot form of PrepareFourCycleSingleTree
// + Run. The context cancels the returned iterator.
func FourCycleSingleTree(ctx context.Context, rels [4]*relation.Relation, agg ranking.Aggregate, v core.Variant, opts ...PrepareOption) (core.Iterator, *Stats, error) {
	p, err := PrepareFourCycleSingleTree(rels, agg, opts...)
	if err != nil {
		return nil, nil, err
	}
	it, err := p.Run(ctx, v)
	if err != nil {
		return nil, nil, err
	}
	return it, p.Stats, nil
}

// PrepareFourCycleSubmodular compiles the same 4-cycle query with the
// submodular-width-1.5 plan. Let Δ2 = √|R2| and Δ4 = √|R4|; b is heavy
// iff its fanout in R2 exceeds Δ2, d heavy iff its fanout in R4 exceeds
// Δ4 (so at most √|R2| resp. √|R4| heavy values exist). Three disjoint
// cases, each an acyclic 2-bag tree whose bags are driven from the
// filtered side so that construction cost = input + output:
//
//	T1 (b light ∧ d light): W1(A,B,C) = R1 ⋈ σ_lightB R2   ≤ |R1|·Δ2
//	                        W2(A,C,D) = R3 ⋈ σ_lightD R4   ≤ |R3|·Δ4
//	T2 (b heavy):           V1(B,C,D) = σ_heavyB R2 ⋈ R3   ≤ √|R2|·|R3|
//	                        V2(A,B,D) = σ_heavyB R1 ⋈ R4   ≤ √|R2|·|R4|
//	T3 (b light ∧ d heavy): U1(D,A,B) = σ_heavyD R4 ⋈ σ_lightB R1
//	                        U2(B,C,D) = σ_heavyD R3' ⋈ σ_lightB R2
//
// where σ_heavyD R3' filters R3 tuples whose D value is heavy (per-heavy-d
// bound √|R4|·|R2|). The output predicates (heaviness of the result's b
// and d values) partition the 4-cycle output, so the ranked union of the
// three trees is exact without deduplication. Output tuples are ordered
// (A,B,C,D).
func PrepareFourCycleSubmodular(rels [4]*relation.Relation, agg ranking.Aggregate, opts ...PrepareOption) (*Plan, error) {
	cfg := newPrepCfg(opts)
	r1 := rename(rels[0], "R1", "A", "B")
	r2 := rename(rels[1], "R2", "B", "C")
	r3 := rename(rels[2], "R3", "C", "D")
	r4 := rename(rels[3], "R4", "D", "A")

	deg2 := fanout(r2, "B")
	deg4 := fanout(r4, "D")
	d2 := int(math.Sqrt(float64(r2.Len())))
	d4 := int(math.Sqrt(float64(r4.Len())))
	heavyB := func(b relation.Value) bool { return deg2[b] > d2 }
	heavyD := func(d relation.Value) bool { return deg4[d] > d4 }

	st := &Stats{}
	for b := range deg2 {
		if heavyB(b) {
			st.HeavyB++
		}
	}
	for d := range deg4 {
		if heavyD(d) {
			st.HeavyD++
		}
	}

	sel := func(r *relation.Relation, name string, col int, keep func(relation.Value) bool) *relation.Relation {
		out := r.Select(func(t relation.Tuple, _ float64) bool { return keep(t[col]) })
		out.Name = name
		return out
	}
	not := func(f func(relation.Value) bool) func(relation.Value) bool {
		return func(v relation.Value) bool { return !f(v) }
	}

	lightR2 := sel(r2, "R2l", 0, not(heavyB)) // B is column 0 of R2(B,C)
	heavyR2 := sel(r2, "R2h", 0, heavyB)
	lightR4 := sel(r4, "R4l", 0, not(heavyD)) // D is column 0 of R4(D,A)
	heavyR1 := sel(r1, "R1h", 1, heavyB)      // B is column 1 of R1(A,B)
	lightR1 := sel(r1, "R1l", 1, not(heavyB))
	heavyR4 := sel(r4, "R4h", 0, heavyD)
	heavyR3 := sel(r3, "R3h", 1, heavyD) // D is column 1 of R3(C,D)

	// The six bags of the three trees are independent of each other:
	//   T1 (b light ∧ d light): W1, W2
	//   T2 (b heavy):           V1(B,C,D) ⋈ V2(A,B,D) — share {B,D},
	//                           C only in V1, A only in V2: valid tree.
	//   T3 (b light ∧ d heavy): U1(D,A,B) ⋈ U2(B,C,D) — share {B,D},
	//                           A only in U1, C only in U2: valid tree.
	bags, err := buildBags(cfg,
		func() (*relation.Relation, error) { return joinBags("W1", r1, lightR2, []string{"A", "B", "C"}, agg) },
		func() (*relation.Relation, error) { return joinBags("W2", r3, lightR4, []string{"A", "C", "D"}, agg) },
		func() (*relation.Relation, error) { return joinBags("V1", heavyR2, r3, []string{"B", "C", "D"}, agg) },
		func() (*relation.Relation, error) { return joinBags("V2", heavyR1, r4, []string{"A", "B", "D"}, agg) },
		func() (*relation.Relation, error) {
			return joinBags("U1", heavyR4, lightR1, []string{"D", "A", "B"}, agg)
		},
		func() (*relation.Relation, error) {
			return joinBags("U2", heavyR3, lightR2, []string{"B", "C", "D"}, agg)
		},
	)
	if err != nil {
		return nil, err
	}
	trees := make([]*treePlan, 3)
	err = parallel.ForEach(cfg.ctx, cfg.workers, 3, func(ti int) error {
		tp, err := prepareTree([]*relation.Relation{bags[2*ti], bags[2*ti+1]}, agg, FourCycleAttrs)
		trees[ti] = tp
		return err
	})
	if err != nil {
		return nil, err
	}

	st.BagSizes = [][]int{
		{bags[0].Len(), bags[1].Len()},
		{bags[2].Len(), bags[3].Len()},
		{bags[4].Len(), bags[5].Len()},
	}
	for _, bs := range st.BagSizes {
		for _, n := range bs {
			st.TotalMaterialized += n
		}
	}
	return &Plan{Stats: st, agg: agg, trees: trees}, nil
}

// FourCycleSubmodular is the one-shot form of
// PrepareFourCycleSubmodular + Run. The context cancels the returned
// iterator.
func FourCycleSubmodular(ctx context.Context, rels [4]*relation.Relation, agg ranking.Aggregate, v core.Variant, opts ...PrepareOption) (core.Iterator, *Stats, error) {
	p, err := PrepareFourCycleSubmodular(rels, agg, opts...)
	if err != nil {
		return nil, nil, err
	}
	it, err := p.Run(ctx, v)
	if err != nil {
		return nil, nil, err
	}
	return it, p.Stats, nil
}

// fanout counts tuples per value of attr.
func fanout(r *relation.Relation, attr string) map[relation.Value]int {
	c := r.AttrIndex(attr)
	m := make(map[relation.Value]int)
	for _, t := range r.Tuples {
		m[t[c]]++
	}
	return m
}
