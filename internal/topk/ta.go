// Package topk implements the classic top-k middleware algorithms of
// Part 1 of the tutorial — Fagin's Algorithm (FA), the Threshold
// Algorithm (TA) and its no-random-access variant (NRA) — plus rank
// join (HRJN) operator trees for top-k join queries.
//
// Following the literature, this package uses the *benefit* convention:
// grades are non-negative, higher is better, and the aggregate is
// monotone increasing in every argument. Costs are counted in the
// middleware access model (sorted accesses + random accesses), the model
// in which TA is instance-optimal — and, for the RAM-model comparison
// the tutorial calls for, the operators also report the number of
// intermediate tuples they buffered.
package topk

import (
	"fmt"
	"sort"
)

// List is one ranked input: object IDs with grades, sorted by
// descending grade. Grades must be non-increasing.
type List struct {
	IDs    []int
	Grades []float64
}

// NewList validates and wraps a ranked list.
func NewList(ids []int, grades []float64) (*List, error) {
	if len(ids) != len(grades) {
		return nil, fmt.Errorf("topk: %d ids but %d grades", len(ids), len(grades))
	}
	for i := 1; i < len(grades); i++ {
		if grades[i] > grades[i-1] {
			return nil, fmt.Errorf("topk: list not sorted descending at rank %d", i)
		}
	}
	return &List{IDs: ids, Grades: grades}, nil
}

// ScoreAgg combines per-list grades into an object score. It must be
// monotone: increasing any grade must not decrease the score.
type ScoreAgg interface {
	Score(grades []float64) float64
	Name() string
}

// SumAgg scores objects by the sum of grades.
type SumAgg struct{}

// Score implements ScoreAgg.
func (SumAgg) Score(grades []float64) float64 {
	s := 0.0
	for _, g := range grades {
		s += g
	}
	return s
}

// Name implements ScoreAgg.
func (SumAgg) Name() string { return "sum" }

// MinAgg scores objects by their minimum grade.
type MinAgg struct{}

// Score implements ScoreAgg.
func (MinAgg) Score(grades []float64) float64 {
	if len(grades) == 0 {
		return 0
	}
	m := grades[0]
	for _, g := range grades[1:] {
		if g < m {
			m = g
		}
	}
	return m
}

// Name implements ScoreAgg.
func (MinAgg) Name() string { return "min" }

// Candidate is a scored object.
type Candidate struct {
	ID    int
	Score float64
}

// AccessStats counts middleware accesses (the cost model of §2) plus the
// buffered-object count (RAM-model footprint).
type AccessStats struct {
	Sorted   int // sorted accesses
	Random   int // random accesses
	Buffered int // max simultaneously buffered objects
}

// randomAccess looks up an object's grade in a list (grade 0 if absent,
// which keeps aggregates well-defined on partial lists).
type gradeIndex map[int]float64

func indexList(l *List) gradeIndex {
	m := make(gradeIndex, len(l.IDs))
	for i, id := range l.IDs {
		m[id] = l.Grades[i]
	}
	return m
}

// TA runs the Threshold Algorithm: round-robin sorted access, immediate
// random access to every other list for each new object, stopping as
// soon as k buffered objects score at least the threshold
// agg(last grades seen under sorted access). It returns the top-k
// candidates in descending score order.
func TA(lists []*List, k int, agg ScoreAgg) ([]Candidate, *AccessStats) {
	m := len(lists)
	stats := &AccessStats{}
	if m == 0 || k <= 0 {
		return nil, stats
	}
	idx := make([]gradeIndex, m)
	for i, l := range lists {
		idx[i] = indexList(l)
	}
	seen := make(map[int]bool)
	var top []Candidate // kept sorted descending, ≤ k entries
	last := make([]float64, m)
	for i := range last {
		if len(lists[i].Grades) > 0 {
			last[i] = lists[i].Grades[0]
		}
	}
	grades := make([]float64, m)
	depth := 0
	maxDepth := 0
	for _, l := range lists {
		if len(l.IDs) > maxDepth {
			maxDepth = len(l.IDs)
		}
	}
	for depth < maxDepth {
		for li, l := range lists {
			if depth >= len(l.IDs) {
				continue
			}
			stats.Sorted++
			id := l.IDs[depth]
			last[li] = l.Grades[depth]
			if seen[id] {
				continue
			}
			seen[id] = true
			for gi := range lists {
				if gi == li {
					grades[gi] = l.Grades[depth]
					continue
				}
				stats.Random++
				grades[gi] = idx[gi][id]
			}
			insertTop(&top, Candidate{ID: id, Score: agg.Score(grades)}, k)
		}
		if len(seen) > stats.Buffered {
			stats.Buffered = len(seen)
		}
		depth++
		threshold := agg.Score(last)
		if len(top) == k && top[k-1].Score >= threshold {
			break
		}
	}
	return top, stats
}

// FA runs Fagin's Algorithm: sorted access in parallel until at least k
// objects have been seen in *every* list, then random access to complete
// all seen objects. FA lacks TA's instance optimality: its stopping rule
// ignores grade values.
func FA(lists []*List, k int, agg ScoreAgg) ([]Candidate, *AccessStats) {
	m := len(lists)
	stats := &AccessStats{}
	if m == 0 || k <= 0 {
		return nil, stats
	}
	idx := make([]gradeIndex, m)
	for i, l := range lists {
		idx[i] = indexList(l)
	}
	seenIn := make(map[int]int) // object -> number of lists seen in
	seenAll := 0
	depth := 0
	maxDepth := 0
	for _, l := range lists {
		if len(l.IDs) > maxDepth {
			maxDepth = len(l.IDs)
		}
	}
	for depth < maxDepth && seenAll < k {
		for _, l := range lists {
			if depth >= len(l.IDs) {
				continue
			}
			stats.Sorted++
			id := l.IDs[depth]
			seenIn[id]++
			if seenIn[id] == m {
				seenAll++
			}
		}
		depth++
	}
	stats.Buffered = len(seenIn)
	// Random-access phase: complete every seen object.
	grades := make([]float64, m)
	var all []Candidate
	for id := range seenIn {
		for gi := range lists {
			stats.Random++
			grades[gi] = idx[gi][id]
		}
		all = append(all, Candidate{ID: id, Score: agg.Score(grades)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all, stats
}

// NRA runs the No-Random-Access algorithm: objects accumulate known
// grades through sorted access only; unknown grades are bounded by each
// list's last-seen grade. It stops when the k-th best lower bound is at
// least every other object's upper bound (including unseen objects). It
// returns the top-k by lower bound (which at termination equals the true
// score order for the winners). Sum aggregation only: upper/lower bounds
// require substituting per-list bounds, which is shaped here for sums.
func NRA(lists []*List, k int) ([]Candidate, *AccessStats) {
	m := len(lists)
	stats := &AccessStats{}
	if m == 0 || k <= 0 {
		return nil, stats
	}
	type objState struct {
		known  []float64
		seenIn []bool
		lower  float64
		nKnown int
	}
	objs := make(map[int]*objState)
	last := make([]float64, m)
	for i, l := range lists {
		if len(l.Grades) > 0 {
			last[i] = l.Grades[0]
		}
	}
	maxDepth := 0
	for _, l := range lists {
		if len(l.IDs) > maxDepth {
			maxDepth = len(l.IDs)
		}
	}
	upper := func(o *objState) float64 {
		u := o.lower
		for i := 0; i < m; i++ {
			if !o.seenIn[i] {
				u += last[i]
			}
		}
		return u
	}
	for depth := 0; depth < maxDepth; depth++ {
		for li, l := range lists {
			if depth >= len(l.IDs) {
				last[li] = 0
				continue
			}
			stats.Sorted++
			id := l.IDs[depth]
			last[li] = l.Grades[depth]
			o := objs[id]
			if o == nil {
				o = &objState{known: make([]float64, m), seenIn: make([]bool, m)}
				objs[id] = o
			}
			if !o.seenIn[li] {
				o.seenIn[li] = true
				o.known[li] = l.Grades[depth]
				o.lower += l.Grades[depth]
				o.nKnown++
			}
		}
		if len(objs) > stats.Buffered {
			stats.Buffered = len(objs)
		}
		// Termination: k-th best lower bound ≥ every other upper bound
		// and ≥ the unseen-object bound Σ last.
		if len(objs) < k {
			continue
		}
		var lowers []float64
		for _, o := range objs {
			lowers = append(lowers, o.lower)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(lowers)))
		kth := lowers[k-1]
		unseenBound := 0.0
		for _, g := range last {
			unseenBound += g
		}
		if kth < unseenBound {
			continue
		}
		ok := true
		count := 0
		for _, o := range objs {
			if o.lower >= kth {
				count++
				continue
			}
			if upper(o) > kth {
				ok = false
				break
			}
		}
		if ok && count >= k {
			var out []Candidate
			for id, o := range objs {
				out = append(out, Candidate{ID: id, Score: o.lower})
			}
			sort.Slice(out, func(i, j int) bool {
				if out[i].Score != out[j].Score {
					return out[i].Score > out[j].Score
				}
				return out[i].ID < out[j].ID
			})
			return out[:k], stats
		}
	}
	// Exhausted all lists: all grades known; lower bounds are exact.
	var out []Candidate
	for id, o := range objs {
		out = append(out, Candidate{ID: id, Score: o.lower})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, stats
}

// insertTop inserts c into the descending-sorted slice keeping ≤ k
// entries.
func insertTop(top *[]Candidate, c Candidate, k int) {
	s := *top
	pos := sort.Search(len(s), func(i int) bool {
		if s[i].Score != c.Score {
			return s[i].Score < c.Score
		}
		return s[i].ID > c.ID
	})
	s = append(s, Candidate{})
	copy(s[pos+1:], s[pos:])
	s[pos] = c
	if len(s) > k {
		s = s[:k]
	}
	*top = s
}

// BruteForce computes the exact top-k by scanning everything — the
// correctness oracle for tests and the "RAM-model baseline" of E4.
func BruteForce(lists []*List, k int, agg ScoreAgg) []Candidate {
	m := len(lists)
	idx := make([]gradeIndex, m)
	ids := make(map[int]bool)
	for i, l := range lists {
		idx[i] = indexList(l)
		for _, id := range l.IDs {
			ids[id] = true
		}
	}
	grades := make([]float64, m)
	var all []Candidate
	for id := range ids {
		for gi := range lists {
			grades[gi] = idx[gi][id]
		}
		all = append(all, Candidate{ID: id, Score: agg.Score(grades)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// TAApprox is the θ-approximation variant of the Threshold Algorithm
// from the same Fagin–Lotem–Naor paper (TA_θ): it stops as soon as k
// buffered objects score at least threshold/θ for θ > 1, trading a
// θ-approximation guarantee (every returned object's score is within a
// factor θ of the true top-k scores) for earlier termination. θ = 1
// degenerates to exact TA.
func TAApprox(lists []*List, k int, agg ScoreAgg, theta float64) ([]Candidate, *AccessStats) {
	if theta < 1 {
		theta = 1
	}
	m := len(lists)
	stats := &AccessStats{}
	if m == 0 || k <= 0 {
		return nil, stats
	}
	idx := make([]gradeIndex, m)
	for i, l := range lists {
		idx[i] = indexList(l)
	}
	seen := make(map[int]bool)
	var top []Candidate
	last := make([]float64, m)
	for i := range last {
		if len(lists[i].Grades) > 0 {
			last[i] = lists[i].Grades[0]
		}
	}
	grades := make([]float64, m)
	maxDepth := 0
	for _, l := range lists {
		if len(l.IDs) > maxDepth {
			maxDepth = len(l.IDs)
		}
	}
	for depth := 0; depth < maxDepth; depth++ {
		for li, l := range lists {
			if depth >= len(l.IDs) {
				continue
			}
			stats.Sorted++
			id := l.IDs[depth]
			last[li] = l.Grades[depth]
			if seen[id] {
				continue
			}
			seen[id] = true
			for gi := range lists {
				if gi == li {
					grades[gi] = l.Grades[depth]
					continue
				}
				stats.Random++
				grades[gi] = idx[gi][id]
			}
			insertTop(&top, Candidate{ID: id, Score: agg.Score(grades)}, k)
		}
		if len(seen) > stats.Buffered {
			stats.Buffered = len(seen)
		}
		if len(top) == k && top[k-1].Score >= agg.Score(last)/theta {
			break
		}
	}
	return top, stats
}
