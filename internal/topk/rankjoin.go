package topk

import (
	"math"

	"repro/internal/heap"
	"repro/internal/relation"
)

// ScoredIterator yields tuples in descending score order and exposes an
// upper bound on the score of anything it may yield in the future — the
// contract rank-join operators compose over (§2's HRJN family).
type ScoredIterator interface {
	// Next returns the next tuple and its score; ok=false when drained.
	Next() (t relation.Tuple, score float64, ok bool)
	// Bound is an upper bound on all future scores (-Inf when drained).
	Bound() float64
	// Attrs is the tuple schema.
	Attrs() []string
}

// Scan iterates a relation in descending weight order (the base access
// path of rank join: a pre-sorted input table).
type Scan struct {
	rel   *relation.Relation
	order []int32
	pos   int
}

// NewScan sorts the relation by descending weight and returns the scan.
func NewScan(rel *relation.Relation) *Scan {
	order := make([]int32, rel.Len())
	for i := range order {
		order[i] = int32(i)
	}
	// Descending by weight.
	h := heap.NewFromSlice(func(a, b int32) bool { return rel.Weights[a] > rel.Weights[b] }, order)
	sorted := make([]int32, 0, rel.Len())
	for {
		v, ok := h.Pop()
		if !ok {
			break
		}
		sorted = append(sorted, v)
	}
	return &Scan{rel: rel, order: sorted}
}

// Next implements ScoredIterator.
func (s *Scan) Next() (relation.Tuple, float64, bool) {
	if s.pos >= len(s.order) {
		return nil, 0, false
	}
	row := s.order[s.pos]
	s.pos++
	return s.rel.Tuples[row], s.rel.Weights[row], true
}

// Bound implements ScoredIterator.
func (s *Scan) Bound() float64 {
	if s.pos >= len(s.order) {
		return math.Inf(-1)
	}
	return s.rel.Weights[s.order[s.pos]]
}

// Attrs implements ScoredIterator.
func (s *Scan) Attrs() []string { return s.rel.Attrs }

// RankJoinStats counts the RAM-model footprint of a rank-join operator:
// the tutorial's §2 point is that these buffers can grow as large as a
// full join even when k is tiny.
type RankJoinStats struct {
	PulledLeft, PulledRight int
	// Joined counts result tuples formed and buffered in the output queue.
	Joined int
	// MaxQueue is the high-water mark of the output priority queue.
	MaxQueue int
}

// HRJN is the hash rank join operator: it pulls from whichever input has
// the higher bound, joins new tuples against the other side's hash
// table, buffers results in a priority queue, and emits a result only
// once its score is at least the corner-bound threshold. HRJN itself
// implements ScoredIterator, so operators compose into left-deep trees
// for multiway top-k joins (J*/HRJN* style).
type HRJN struct {
	left, right ScoredIterator
	attrs       []string
	shared      []string
	lCols       []int
	rCols       []int
	rKeep       []int

	lSeen, rSeen map[string][]scored
	firstL       float64
	firstR       float64
	startedL     bool
	startedR     bool
	pq           *heap.Heap[scored]
	pull         bool // false: pull left next on ties
	Stats        RankJoinStats
}

type scored struct {
	t relation.Tuple
	s float64
}

// NewHRJN builds a rank join of two scored inputs on their shared
// attributes (natural join; score of an output = sum of input scores).
func NewHRJN(left, right ScoredIterator) *HRJN {
	la, ra := left.Attrs(), right.Attrs()
	lrel := relation.New("", la...)
	rrel := relation.New("", ra...)
	shared := lrel.SharedAttrs(rrel)
	lCols, _ := lrel.AttrIndexes(shared)
	rCols, _ := rrel.AttrIndexes(shared)
	attrs := append([]string(nil), la...)
	var rKeep []int
	for i, a := range ra {
		if lrel.AttrIndex(a) < 0 {
			attrs = append(attrs, a)
			rKeep = append(rKeep, i)
		}
	}
	h := &HRJN{
		left: left, right: right,
		attrs: attrs, shared: shared,
		lCols: lCols, rCols: rCols, rKeep: rKeep,
		lSeen: make(map[string][]scored),
		rSeen: make(map[string][]scored),
	}
	h.pq = heap.New(func(a, b scored) bool { return a.s > b.s })
	return h
}

// Attrs implements ScoredIterator.
func (h *HRJN) Attrs() []string { return h.attrs }

// threshold is the HRJN corner bound: any future result must use a
// future tuple from one side joined with a (≤ first) tuple of the other.
func (h *HRJN) threshold() float64 {
	fl, fr := h.firstL, h.firstR
	if !h.startedL {
		fl = h.left.Bound()
	}
	if !h.startedR {
		fr = h.right.Bound()
	}
	a := h.left.Bound() + fr
	b := fl + h.right.Bound()
	return math.Max(a, b)
}

// Bound implements ScoredIterator.
func (h *HRJN) Bound() float64 {
	t := h.threshold()
	if top, ok := h.pq.Peek(); ok && top.s > t {
		return top.s
	}
	return t
}

func (h *HRJN) key(t relation.Tuple, cols []int) string {
	key := make([]relation.Value, len(cols))
	for i, c := range cols {
		key[i] = t[c]
	}
	return string(relation.AppendKey(nil, key))
}

// Next implements ScoredIterator: the classic HRJN loop.
func (h *HRJN) Next() (relation.Tuple, float64, bool) {
	for {
		if top, ok := h.pq.Peek(); ok && top.s >= h.threshold() {
			h.pq.Pop()
			return top.t, top.s, true
		}
		// Pull from the side with the larger bound (ties alternate).
		lb, rb := h.left.Bound(), h.right.Bound()
		if math.IsInf(lb, -1) && math.IsInf(rb, -1) {
			// Inputs drained: flush the queue.
			if top, ok := h.pq.Pop(); ok {
				return top.t, top.s, true
			}
			return nil, 0, false
		}
		fromLeft := lb > rb || (lb == rb && !h.pull)
		h.pull = !h.pull
		if fromLeft {
			t, s, ok := h.left.Next()
			if !ok {
				continue
			}
			h.Stats.PulledLeft++
			if !h.startedL {
				h.startedL, h.firstL = true, s
			}
			k := h.key(t, h.lCols)
			h.lSeen[k] = append(h.lSeen[k], scored{t: t, s: s})
			for _, r := range h.rSeen[k] {
				h.emit(t, s, r.t, r.s)
			}
		} else {
			t, s, ok := h.right.Next()
			if !ok {
				continue
			}
			h.Stats.PulledRight++
			if !h.startedR {
				h.startedR, h.firstR = true, s
			}
			k := h.key(t, h.rCols)
			h.rSeen[k] = append(h.rSeen[k], scored{t: t, s: s})
			for _, l := range h.lSeen[k] {
				h.emit(l.t, l.s, t, s)
			}
		}
	}
}

func (h *HRJN) emit(lt relation.Tuple, ls float64, rt relation.Tuple, rs float64) {
	out := make(relation.Tuple, 0, len(h.attrs))
	out = append(out, lt...)
	for _, c := range h.rKeep {
		out = append(out, rt[c])
	}
	h.pq.Push(scored{t: out, s: ls + rs})
	h.Stats.Joined++
	if h.pq.Len() > h.Stats.MaxQueue {
		h.Stats.MaxQueue = h.pq.Len()
	}
}

// RankJoinTree builds a left-deep HRJN tree over the relations (each
// scanned in descending weight order) and returns the root operator plus
// the per-operator stats for inspection.
func RankJoinTree(rels ...*relation.Relation) (*HRJN, []*HRJN) {
	if len(rels) < 2 {
		panic("topk: rank join needs at least two inputs")
	}
	var ops []*HRJN
	var cur ScoredIterator = NewScan(rels[0])
	for _, r := range rels[1:] {
		op := NewHRJN(cur, NewScan(r))
		ops = append(ops, op)
		cur = op
	}
	return ops[len(ops)-1], ops
}

// TopK drains up to k results from a scored iterator.
func TopK(it ScoredIterator, k int) []ScoredTuple {
	var out []ScoredTuple
	for len(out) < k {
		t, s, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, ScoredTuple{Tuple: t, Score: s})
	}
	return out
}

// ScoredTuple is a scored join result.
type ScoredTuple struct {
	Tuple relation.Tuple
	Score float64
}
