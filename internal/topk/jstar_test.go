package topk

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/relation"
	"repro/internal/workload"
)

func TestJStarBinaryBasic(t *testing.T) {
	r := weightedRel("R", []string{"A", "B"},
		[][]relation.Value{{1, 10}, {2, 20}}, []float64{0.9, 0.5})
	s := weightedRel("S", []string{"B", "C"},
		[][]relation.Value{{10, 100}, {20, 200}}, []float64{0.8, 0.7})
	j := NewJStar(r, s)
	res := TopK(j, 10)
	if len(res) != 2 {
		t.Fatalf("results = %d, want 2", len(res))
	}
	if math.Abs(res[0].Score-1.7) > 1e-9 || math.Abs(res[1].Score-1.2) > 1e-9 {
		t.Errorf("scores = %g, %g; want 1.7, 1.2", res[0].Score, res[1].Score)
	}
	if len(j.Attrs()) != 3 {
		t.Errorf("schema = %v", j.Attrs())
	}
}

func TestJStarMatchesBruteForceThreeWay(t *testing.T) {
	rng := workload.NewRand(21)
	mk := func(name, a1, a2 string) *relation.Relation {
		r := relation.New(name, a1, a2)
		for i := 0; i < 40; i++ {
			r.AddWeighted(rng.Float64(), relation.Value(rng.Intn(5)), relation.Value(rng.Intn(5)))
		}
		return r
	}
	rels := []*relation.Relation{mk("R", "A", "B"), mk("S", "B", "C"), mk("T", "C", "D")}
	want := bruteForceJoin(rels)
	j := NewJStar(rels...)
	got := TopK(j, len(want)+10)
	if len(got) != len(want) {
		t.Fatalf("J* yielded %d, brute force %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i].Score-want[i]) > 1e-9 {
			t.Fatalf("rank %d: J* %g != %g", i, got[i].Score, want[i])
		}
	}
}

func TestJStarAgreesWithHRJNProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := workload.NewRand(uint64(seed))
		mk := func(name, a1, a2 string) *relation.Relation {
			r := relation.New(name, a1, a2)
			n := rng.Intn(30) + 1
			for i := 0; i < n; i++ {
				r.AddWeighted(rng.Float64(), relation.Value(rng.Intn(4)), relation.Value(rng.Intn(4)))
			}
			return r
		}
		rels := []*relation.Relation{mk("R", "A", "B"), mk("S", "B", "C")}
		root, _ := RankJoinTree(rels[0], rels[1])
		want := TopK(root, 1<<30)
		j := NewJStar(rels...)
		got := TopK(j, 1<<30)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestJStarEmptyStream(t *testing.T) {
	r := relation.New("R", "A", "B")
	s := relation.New("S", "B", "C")
	s.AddWeighted(1, 1, 2)
	j := NewJStar(r, s)
	if res := TopK(j, 5); len(res) != 0 {
		t.Fatalf("empty input join yielded %d results", len(res))
	}
}

func TestJStarTopKEarlyStop(t *testing.T) {
	// Friendly instance: J* should expand few states for k=1.
	n := 2000
	r := relation.New("R", "A", "B")
	s := relation.New("S", "B", "C")
	for i := 0; i < n; i++ {
		w := 1 - float64(i)/float64(n)
		r.AddWeighted(w, relation.Value(i), relation.Value(i))
		s.AddWeighted(w, relation.Value(i), relation.Value(i))
	}
	j := NewJStar(r, s)
	res := TopK(j, 1)
	if len(res) != 1 {
		t.Fatal("no result")
	}
	if math.Abs(res[0].Score-2.0) > 1e-9 {
		t.Errorf("top score = %g, want 2.0", res[0].Score)
	}
	if j.Stats.Expanded > 50 {
		t.Errorf("J* expanded %d states for the friendly top-1, expected a handful", j.Stats.Expanded)
	}
}

func TestJStarDescendingOrder(t *testing.T) {
	rng := workload.NewRand(9)
	r := relation.New("R", "A", "B")
	s := relation.New("S", "B", "C")
	for i := 0; i < 50; i++ {
		r.AddWeighted(rng.Float64(), relation.Value(rng.Intn(6)), relation.Value(rng.Intn(6)))
		s.AddWeighted(rng.Float64(), relation.Value(rng.Intn(6)), relation.Value(rng.Intn(6)))
	}
	j := NewJStar(r, s)
	prev := math.Inf(1)
	for {
		_, sc, ok := j.Next()
		if !ok {
			break
		}
		if sc > prev+1e-12 {
			t.Fatalf("J* order violated: %g after %g", sc, prev)
		}
		prev = sc
	}
}
