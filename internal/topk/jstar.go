package topk

import (
	"math"

	"repro/internal/heap"
	"repro/internal/relation"
)

// JStar implements the J* multiway rank join (Natsev et al., cited in
// §2 of the tutorial): an A* search over partial join assignments. A
// search state binds one tuple in each of the first `level` streams and
// holds a cursor into stream `level`; its priority is an admissible
// upper bound — the scores already bound, plus the cursor tuple's
// score, plus every later stream's best score. Complete states pop in
// exact descending score order.
//
// Compared with an HRJN tree, J* never buffers join intermediates: its
// frontier holds partial assignments instead, trading hash-table memory
// for queue size. Inputs join naturally on shared attribute names; the
// output score is the sum of the matched tuples' weights.
type JStar struct {
	streams []*Scan
	attrs   []string
	// fill[i]: stream i's columns that introduce new output columns;
	// check[i]: stream i's columns that must agree with earlier streams.
	fill  [][]colMap
	check [][]colMap
	// restBest[i] = Σ_{j ≥ i} best score of stream j.
	restBest []float64
	pq       *heap.Heap[*jstarState]
	Stats    JStarStats
}

type colMap struct {
	streamCol int
	outCol    int
}

// JStarStats counts the search work.
type JStarStats struct {
	// Expanded counts popped states.
	Expanded int
	// MaxQueue is the frontier's high-water mark.
	MaxQueue int
}

// bindNode is one link of the bound-prefix chain: stream `stream` is
// bound to its tuple at sorted position `depth`.
type bindNode struct {
	parent *bindNode
	stream int
	depth  int
}

type jstarState struct {
	chain *bindNode // bound tuples for streams 0..level-1
	level int       // next stream to bind
	depth int       // cursor into stream `level`
	bound float64
}

// NewJStar builds the operator over the given relations.
func NewJStar(rels ...*relation.Relation) *JStar {
	j := &JStar{}
	var attrs []string
	attrIndex := func(a string) int {
		for i, x := range attrs {
			if x == a {
				return i
			}
		}
		return -1
	}
	for _, r := range rels {
		sc := NewScan(r)
		j.streams = append(j.streams, sc)
		var fills, checks []colMap
		for c, a := range r.Attrs {
			if oc := attrIndex(a); oc >= 0 {
				checks = append(checks, colMap{streamCol: c, outCol: oc})
			} else {
				attrs = append(attrs, a)
				fills = append(fills, colMap{streamCol: c, outCol: len(attrs) - 1})
			}
		}
		j.fill = append(j.fill, fills)
		j.check = append(j.check, checks)
	}
	j.attrs = attrs
	m := len(rels)
	j.restBest = make([]float64, m+1)
	for i := m - 1; i >= 0; i-- {
		top := 0.0
		if rels[i].Len() > 0 {
			top = j.scoreAt(i, 0)
		}
		j.restBest[i] = j.restBest[i+1] + top
	}
	j.pq = heap.New(func(a, b *jstarState) bool { return a.bound > b.bound })
	nonEmpty := m > 0
	for _, r := range rels {
		if r.Len() == 0 {
			nonEmpty = false
		}
	}
	if nonEmpty {
		j.pq.Push(&jstarState{level: 0, depth: 0, bound: j.restBest[0]})
	}
	return j
}

// scoreAt returns stream i's score at sorted position depth.
func (j *JStar) scoreAt(i, depth int) float64 {
	sc := j.streams[i]
	return sc.rel.Weights[sc.order[depth]]
}

// tupleAt returns stream i's tuple at sorted position depth.
func (j *JStar) tupleAt(i, depth int) relation.Tuple {
	sc := j.streams[i]
	return sc.rel.Tuples[sc.order[depth]]
}

// chainScore sums the bound tuples' scores.
func (j *JStar) chainScore(chain *bindNode) float64 {
	s := 0.0
	for n := chain; n != nil; n = n.parent {
		s += j.scoreAt(n.stream, n.depth)
	}
	return s
}

// bound computes the admissible upper bound of a state: bound prefix +
// cursor tuple + best of all later streams.
func (j *JStar) stateBound(chain *bindNode, level, depth int) float64 {
	if level < len(j.streams) && depth >= len(j.streams[level].order) {
		return math.Inf(-1)
	}
	s := j.chainScore(chain)
	if level < len(j.streams) {
		s += j.scoreAt(level, depth) + j.restBest[level+1]
	}
	return s
}

// Attrs returns the output schema.
func (j *JStar) Attrs() []string { return j.attrs }

// Bound returns an upper bound on all future scores (for composability
// with the ScoredIterator contract).
func (j *JStar) Bound() float64 {
	if top, ok := j.pq.Peek(); ok {
		return top.bound
	}
	return math.Inf(-1)
}

// Next returns the next join result in descending score order.
func (j *JStar) Next() (relation.Tuple, float64, bool) {
	for {
		st, ok := j.pq.Pop()
		if !ok {
			return nil, 0, false
		}
		j.Stats.Expanded++
		if st.level == len(j.streams) {
			out := make(relation.Tuple, len(j.attrs))
			for n := st.chain; n != nil; n = n.parent {
				tup := j.tupleAt(n.stream, n.depth)
				for _, fm := range j.fill[n.stream] {
					out[fm.outCol] = tup[fm.streamCol]
				}
			}
			return out, st.bound, true
		}
		// Successor 1: advance the cursor within stream `level`.
		if st.depth+1 < len(j.streams[st.level].order) {
			j.pq.Push(&jstarState{
				chain: st.chain, level: st.level, depth: st.depth + 1,
				bound: j.stateBound(st.chain, st.level, st.depth+1),
			})
		}
		// Successor 2: bind the cursor tuple if it joins with the prefix.
		if j.compatible(st.chain, st.level, st.depth) {
			chain := &bindNode{parent: st.chain, stream: st.level, depth: st.depth}
			j.pq.Push(&jstarState{
				chain: chain, level: st.level + 1, depth: 0,
				bound: j.stateBound(chain, st.level+1, 0),
			})
		}
		if j.pq.Len() > j.Stats.MaxQueue {
			j.Stats.MaxQueue = j.pq.Len()
		}
	}
}

// compatible checks that stream `level`'s tuple at `depth` agrees with
// the bound prefix on all shared output columns.
func (j *JStar) compatible(chain *bindNode, level, depth int) bool {
	if len(j.check[level]) == 0 {
		return true
	}
	tup := j.tupleAt(level, depth)
	for _, cm := range j.check[level] {
		v, ok := j.chainValue(chain, cm.outCol)
		if ok && v != tup[cm.streamCol] {
			return false
		}
	}
	return true
}

// chainValue finds the value of an output column within the bound chain.
func (j *JStar) chainValue(chain *bindNode, outCol int) (relation.Value, bool) {
	for n := chain; n != nil; n = n.parent {
		tup := j.tupleAt(n.stream, n.depth)
		for _, fm := range j.fill[n.stream] {
			if fm.outCol == outCol {
				return tup[fm.streamCol], true
			}
		}
	}
	return 0, false
}
