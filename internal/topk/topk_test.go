package topk

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/relation"
	"repro/internal/workload"
)

func toLists(ws []*workload.ScoredList) []*List {
	out := make([]*List, len(ws))
	for i, w := range ws {
		l, err := NewList(w.IDs, w.Grades)
		if err != nil {
			panic(err)
		}
		out[i] = l
	}
	return out
}

func candidatesEqual(a, b []Candidate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		// Scores must match; IDs may differ among exact ties.
		if math.Abs(a[i].Score-b[i].Score) > 1e-9 {
			return false
		}
	}
	return true
}

func TestNewListValidation(t *testing.T) {
	if _, err := NewList([]int{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := NewList([]int{1, 2}, []float64{0.1, 0.9}); err == nil {
		t.Error("ascending grades should fail")
	}
	if _, err := NewList([]int{1, 2}, []float64{0.9, 0.1}); err != nil {
		t.Errorf("valid list rejected: %v", err)
	}
}

func TestTAHandMade(t *testing.T) {
	// Two lists; object 1 is best overall.
	l1, _ := NewList([]int{1, 2, 3}, []float64{0.9, 0.8, 0.1})
	l2, _ := NewList([]int{1, 3, 2}, []float64{0.9, 0.5, 0.4})
	got, stats := TA([]*List{l1, l2}, 1, SumAgg{})
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("TA top-1 = %v, want object 1", got)
	}
	if got[0].Score != 1.8 {
		t.Errorf("score = %g, want 1.8", got[0].Score)
	}
	// TA should stop after depth 1: threshold after depth 1 = 0.9+0.9 =
	// 1.8 ≤ top score 1.8 → stop. 2 sorted accesses, 2 random.
	if stats.Sorted != 2 {
		t.Errorf("sorted accesses = %d, want 2", stats.Sorted)
	}
}

func TestTAMatchesBruteForce(t *testing.T) {
	for _, corr := range []workload.Correlation{workload.Independent, workload.Correlated, workload.AntiCorrelated} {
		lists := toLists(workload.Lists(3, 300, corr, 42))
		for _, k := range []int{1, 5, 20} {
			want := BruteForce(lists, k, SumAgg{})
			got, _ := TA(lists, k, SumAgg{})
			if !candidatesEqual(got, want) {
				t.Fatalf("corr=%v k=%d: TA %v != brute force %v", corr, k, got, want)
			}
		}
	}
}

func TestFAMatchesBruteForce(t *testing.T) {
	lists := toLists(workload.Lists(2, 200, workload.Independent, 7))
	for _, k := range []int{1, 5, 10} {
		want := BruteForce(lists, k, SumAgg{})
		got, _ := FA(lists, k, SumAgg{})
		if !candidatesEqual(got, want) {
			t.Fatalf("k=%d: FA %v != brute force %v", k, got, want)
		}
	}
}

func TestNRAMatchesBruteForce(t *testing.T) {
	for _, corr := range []workload.Correlation{workload.Independent, workload.Correlated} {
		lists := toLists(workload.Lists(2, 150, corr, 9))
		for _, k := range []int{1, 5} {
			want := BruteForce(lists, k, SumAgg{})
			got, _ := NRA(lists, k)
			if !candidatesEqual(got, want) {
				t.Fatalf("corr=%v k=%d: NRA %v != brute force %v", corr, k, got, want)
			}
		}
	}
}

func TestTAWithMinAgg(t *testing.T) {
	lists := toLists(workload.Lists(3, 200, workload.Independent, 3))
	want := BruteForce(lists, 5, MinAgg{})
	got, _ := TA(lists, 5, MinAgg{})
	if !candidatesEqual(got, want) {
		t.Fatalf("TA(min) %v != brute force %v", got, want)
	}
}

// Property: TA equals brute force on random lists.
func TestTACorrectnessProperty(t *testing.T) {
	f := func(seed uint16, kRaw, mRaw uint8) bool {
		m := int(mRaw)%3 + 2
		k := int(kRaw)%10 + 1
		lists := toLists(workload.Lists(m, 100, workload.Independent, uint64(seed)))
		want := BruteForce(lists, k, SumAgg{})
		got, _ := TA(lists, k, SumAgg{})
		return candidatesEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TA accesses far fewer tuples than FA on correlated inputs (its best
// case); the gap collapses on anti-correlated inputs (§2's tradeoff).
func TestTAvsFAAccessCounts(t *testing.T) {
	n := 2000
	corr := toLists(workload.Lists(2, n, workload.Correlated, 5))
	_, taCorr := TA(corr, 10, SumAgg{})
	_, faCorr := FA(corr, 10, SumAgg{})
	if taCorr.Sorted >= faCorr.Sorted+faCorr.Random {
		t.Errorf("correlated: TA total accesses %d not below FA %d",
			taCorr.Sorted+taCorr.Random, faCorr.Sorted+faCorr.Random)
	}
	if taCorr.Sorted > n/2 {
		t.Errorf("correlated: TA scanned %d of %d — should stop early", taCorr.Sorted, 2*n)
	}
	anti := toLists(workload.Lists(2, n, workload.AntiCorrelated, 5))
	_, taAnti := TA(anti, 10, SumAgg{})
	if taAnti.Sorted <= taCorr.Sorted {
		t.Errorf("anti-correlated TA accesses (%d) should exceed correlated (%d)",
			taAnti.Sorted, taCorr.Sorted)
	}
}

// The hidden-winner instance of §2: the best object is at the bottom of
// every list, so TA must descend almost everything — access-optimality
// does not protect against adversarial inputs.
func TestTAHiddenWinnerWorstCase(t *testing.T) {
	n := 500
	lists := toLists(workload.HiddenTopLists(2, n, 3))
	got, stats := TA(lists, 1, SumAgg{})
	want := BruteForce(lists, 1, SumAgg{})
	if !candidatesEqual(got, want) {
		t.Fatalf("TA %v != brute force %v", got, want)
	}
	if got[0].ID != n-1 {
		t.Fatalf("winner = %d, want hidden object %d", got[0].ID, n-1)
	}
	if stats.Sorted < n/2 {
		t.Errorf("TA stopped after %d sorted accesses; hidden winner should force a deep scan", stats.Sorted)
	}
}

func TestEdgeCases(t *testing.T) {
	if got, _ := TA(nil, 5, SumAgg{}); got != nil {
		t.Error("TA with no lists should return nothing")
	}
	l, _ := NewList([]int{1}, []float64{0.5})
	if got, _ := TA([]*List{l}, 0, SumAgg{}); got != nil {
		t.Error("TA with k=0 should return nothing")
	}
	// k larger than the number of objects.
	got, _ := TA([]*List{l}, 10, SumAgg{})
	if len(got) != 1 {
		t.Errorf("TA k>n returned %d", len(got))
	}
	got2, _ := FA([]*List{l}, 10, SumAgg{})
	if len(got2) != 1 {
		t.Errorf("FA k>n returned %d", len(got2))
	}
	got3, _ := NRA([]*List{l}, 10)
	if len(got3) != 1 {
		t.Errorf("NRA k>n returned %d", len(got3))
	}
}

// ---- rank join ----

func weightedRel(name string, attrs []string, rows [][]relation.Value, ws []float64) *relation.Relation {
	r := relation.New(name, attrs...)
	for i, row := range rows {
		r.AddWeighted(ws[i], row...)
	}
	return r
}

func TestScanDescending(t *testing.T) {
	r := weightedRel("R", []string{"A"}, [][]relation.Value{{1}, {2}, {3}}, []float64{0.5, 0.9, 0.1})
	s := NewScan(r)
	prev := math.Inf(1)
	count := 0
	for {
		_, sc, ok := s.Next()
		if !ok {
			break
		}
		if sc > prev {
			t.Fatal("scan not descending")
		}
		prev = sc
		count++
	}
	if count != 3 {
		t.Fatalf("scan yielded %d", count)
	}
	if !math.IsInf(s.Bound(), -1) {
		t.Error("drained scan bound should be -Inf")
	}
}

func TestHRJNBasic(t *testing.T) {
	// R(A,B) ⋈ S(B,C); scores are benefits.
	r := weightedRel("R", []string{"A", "B"},
		[][]relation.Value{{1, 10}, {2, 20}}, []float64{0.9, 0.5})
	s := weightedRel("S", []string{"B", "C"},
		[][]relation.Value{{10, 100}, {20, 200}}, []float64{0.8, 0.7})
	op := NewHRJN(NewScan(r), NewScan(s))
	res := TopK(op, 10)
	if len(res) != 2 {
		t.Fatalf("results = %d, want 2", len(res))
	}
	if math.Abs(res[0].Score-1.7) > 1e-9 { // 0.9+0.8
		t.Errorf("top score = %g, want 1.7", res[0].Score)
	}
	if math.Abs(res[1].Score-1.2) > 1e-9 { // 0.5+0.7
		t.Errorf("second score = %g, want 1.2", res[1].Score)
	}
}

// Reference top-k join: join everything, sort by total score descending.
func bruteForceJoin(rels []*relation.Relation) []float64 {
	cur := rels[0].Clone()
	for _, r := range rels[1:] {
		next := relation.New("j", append(append([]string{}, cur.Attrs...), diffAttrs(r, cur)...)...)
		ix := relation.MustIndex(r, cur.SharedAttrs(r)...)
		lCols, _ := cur.AttrIndexes(cur.SharedAttrs(r))
		key := make([]relation.Value, len(lCols))
		keep := keepCols(r, cur)
		for i, lt := range cur.Tuples {
			for k, c := range lCols {
				key[k] = lt[c]
			}
			for _, ri := range ix.Lookup(key) {
				tp := append(append(relation.Tuple{}, lt...), pick(r.Tuples[ri], keep)...)
				next.AddTuple(tp, cur.Weights[i]+r.Weights[ri])
			}
		}
		cur = next
	}
	ws := append([]float64(nil), cur.Weights...)
	// Descending.
	for i := 0; i < len(ws); i++ {
		for j := i + 1; j < len(ws); j++ {
			if ws[j] > ws[i] {
				ws[i], ws[j] = ws[j], ws[i]
			}
		}
	}
	return ws
}

func diffAttrs(r *relation.Relation, base *relation.Relation) []string {
	var out []string
	for _, a := range r.Attrs {
		if base.AttrIndex(a) < 0 {
			out = append(out, a)
		}
	}
	return out
}

func keepCols(r *relation.Relation, base *relation.Relation) []int {
	var out []int
	for i, a := range r.Attrs {
		if base.AttrIndex(a) < 0 {
			out = append(out, i)
		}
	}
	return out
}

func pick(t relation.Tuple, cols []int) relation.Tuple {
	out := make(relation.Tuple, len(cols))
	for i, c := range cols {
		out[i] = t[c]
	}
	return out
}

func TestHRJNMatchesBruteForce(t *testing.T) {
	rng := workload.NewRand(11)
	mk := func(name, a1, a2 string) *relation.Relation {
		r := relation.New(name, a1, a2)
		for i := 0; i < 60; i++ {
			r.AddWeighted(rng.Float64(), relation.Value(rng.Intn(6)), relation.Value(rng.Intn(6)))
		}
		return r
	}
	rels := []*relation.Relation{mk("R", "A", "B"), mk("S", "B", "C"), mk("T", "C", "D")}
	root, _ := RankJoinTree(rels...)
	want := bruteForceJoin(rels)
	got := TopK(root, len(want)+10)
	if len(got) != len(want) {
		t.Fatalf("HRJN yielded %d, brute force %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i].Score-want[i]) > 1e-9 {
			t.Fatalf("rank %d: HRJN %g != %g", i, got[i].Score, want[i])
		}
	}
}

// Property: HRJN emits in non-increasing score order and matches brute
// force on random binary joins.
func TestHRJNOrderProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := workload.NewRand(uint64(seed))
		mk := func(name, a1, a2 string) *relation.Relation {
			r := relation.New(name, a1, a2)
			n := rng.Intn(40) + 1
			for i := 0; i < n; i++ {
				r.AddWeighted(rng.Float64(), relation.Value(rng.Intn(5)), relation.Value(rng.Intn(5)))
			}
			return r
		}
		rels := []*relation.Relation{mk("R", "A", "B"), mk("S", "B", "C")}
		root, _ := RankJoinTree(rels...)
		want := bruteForceJoin(rels)
		got := TopK(root, len(want)+5)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if math.Abs(got[i].Score-want[i]) > 1e-9 {
				return false
			}
			if i > 0 && got[i].Score > got[i-1].Score+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Friendly case: top result comes from the tops of the inputs — HRJN
// stops early. Adversarial case: join partners sit at the bottom —
// HRJN buffers nearly everything (§2's worst case).
func TestHRJNDepthContrast(t *testing.T) {
	n := 500
	// Friendly: scores and join keys aligned: tuple i joins tuple i.
	rF := relation.New("R", "A", "B")
	sF := relation.New("S", "B", "C")
	for i := 0; i < n; i++ {
		w := 1 - float64(i)/float64(n)
		rF.AddWeighted(w, relation.Value(i), relation.Value(i))
		sF.AddWeighted(w, relation.Value(i), relation.Value(i))
	}
	opF := NewHRJN(NewScan(rF), NewScan(sF))
	TopK(opF, 1)
	friendlyPulls := opF.Stats.PulledLeft + opF.Stats.PulledRight

	// Adversarial: R's best tuples join S's worst tuples.
	rA := relation.New("R", "A", "B")
	sA := relation.New("S", "B", "C")
	for i := 0; i < n; i++ {
		w := 1 - float64(i)/float64(n)
		rA.AddWeighted(w, relation.Value(i), relation.Value(i))
		sA.AddWeighted(w, relation.Value(n-1-i), relation.Value(i))
	}
	opA := NewHRJN(NewScan(rA), NewScan(sA))
	TopK(opA, 1)
	adversePulls := opA.Stats.PulledLeft + opA.Stats.PulledRight

	if friendlyPulls > 20 {
		t.Errorf("friendly case pulled %d tuples, expected a handful", friendlyPulls)
	}
	if adversePulls < n/2 {
		t.Errorf("adversarial case pulled only %d of %d tuples", adversePulls, 2*n)
	}
}

func TestRankJoinTreePanicsOnSingle(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RankJoinTree(relation.New("R", "A"))
}

func TestHRJNEmptyInput(t *testing.T) {
	r := relation.New("R", "A", "B")
	s := relation.New("S", "B", "C")
	s.AddWeighted(1, 1, 2)
	op := NewHRJN(NewScan(r), NewScan(s))
	if res := TopK(op, 5); len(res) != 0 {
		t.Fatalf("join with empty input yielded %d", len(res))
	}
}

func TestTAApproxExactWhenThetaOne(t *testing.T) {
	lists := toLists(workload.Lists(2, 300, workload.Independent, 15))
	exact, _ := TA(lists, 5, SumAgg{})
	approx, _ := TAApprox(lists, 5, SumAgg{}, 1)
	if !candidatesEqual(exact, approx) {
		t.Fatal("TAApprox(θ=1) must equal TA")
	}
}

func TestTAApproxGuarantee(t *testing.T) {
	theta := 1.5
	for _, seed := range []uint64{1, 2, 3, 4} {
		lists := toLists(workload.Lists(2, 500, workload.AntiCorrelated, seed))
		k := 10
		want := BruteForce(lists, k, SumAgg{})
		got, _ := TAApprox(lists, k, SumAgg{}, theta)
		if len(got) != k {
			t.Fatalf("seed %d: %d results", seed, len(got))
		}
		// θ-approximation: each returned score ≥ true i-th score / θ.
		for i := range got {
			if got[i].Score < want[i].Score/theta-1e-9 {
				t.Fatalf("seed %d rank %d: score %g below %g/θ", seed, i, got[i].Score, want[i].Score)
			}
		}
	}
}

func TestTAApproxStopsEarlier(t *testing.T) {
	lists := toLists(workload.Lists(2, 5000, workload.AntiCorrelated, 9))
	_, exact := TA(lists, 10, SumAgg{})
	_, approx := TAApprox(lists, 10, SumAgg{}, 2)
	if approx.Sorted > exact.Sorted {
		t.Fatalf("TA_θ sorted accesses %d exceed exact TA's %d", approx.Sorted, exact.Sorted)
	}
	if approx.Sorted == exact.Sorted {
		t.Logf("warning: θ=2 did not stop earlier on this instance (ok but unexpected)")
	}
}

func TestTAApproxInvalidTheta(t *testing.T) {
	lists := toLists(workload.Lists(2, 100, workload.Independent, 3))
	exact, _ := TA(lists, 3, SumAgg{})
	got, _ := TAApprox(lists, 3, SumAgg{}, 0.5) // clamped to 1
	if !candidatesEqual(exact, got) {
		t.Fatal("θ<1 should clamp to exact TA")
	}
}
