// Package ranking defines the ranking functions supported by the
// ranked-enumeration algorithms. Following the framework the tutorial
// presents in Part 3 (and its companion paper formalises), a ranking
// function is an aggregate over per-tuple weights drawn from a selective
// dioid: a commutative monoid (Combine, Identity) equipped with a total
// order (Less) under which Combine is monotone:
//
//	Less(a, b) ⇒ !Less(Combine(b, c), Combine(a, c))
//
// Monotonicity is what lets dynamic programming push ranking below the
// join: the best extension of a partial solution is independent of the
// prefix it extends. SumCost (min-sum / tropical semiring), MaxCost
// (min-max / bottleneck), MinCost (max-min), and ProductCost all satisfy
// the laws; package tests check them with testing/quick.
package ranking

import "math"

// Aggregate combines per-tuple weights into a result weight and orders
// result weights. Implementations must be monotone monoids as described
// in the package comment.
type Aggregate interface {
	// Identity is the weight of the empty combination.
	Identity() float64
	// Combine merges two weights. It must be associative and commutative
	// with Identity as the neutral element.
	Combine(a, b float64) float64
	// Less reports whether a is strictly better (ranked earlier) than b.
	Less(a, b float64) bool
	// Name identifies the aggregate in reports.
	Name() string
}

// SumCost ranks results by ascending sum of weights (the tropical
// min-plus dioid). This is the ranking function of the tutorial's running
// example: the k *lightest* 4-cycles.
type SumCost struct{}

func (SumCost) Identity() float64            { return 0 }
func (SumCost) Combine(a, b float64) float64 { return a + b }
func (SumCost) Less(a, b float64) bool       { return a < b }
func (SumCost) Name() string                 { return "sum" }

// SumBenefit ranks results by descending sum of weights (max-plus), the
// convention of classic top-k middleware (higher grades are better).
type SumBenefit struct{}

func (SumBenefit) Identity() float64            { return 0 }
func (SumBenefit) Combine(a, b float64) float64 { return a + b }
func (SumBenefit) Less(a, b float64) bool       { return a > b }
func (SumBenefit) Name() string                 { return "sum-desc" }

// MaxCost ranks results by ascending maximum weight (bottleneck order).
type MaxCost struct{}

func (MaxCost) Identity() float64 { return negInf }
func (MaxCost) Combine(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
func (MaxCost) Less(a, b float64) bool { return a < b }
func (MaxCost) Name() string           { return "max" }

// MinBenefit ranks results by descending minimum weight: the best result
// maximises its weakest component.
type MinBenefit struct{}

func (MinBenefit) Identity() float64 { return posInf }
func (MinBenefit) Combine(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
func (MinBenefit) Less(a, b float64) bool { return a > b }
func (MinBenefit) Name() string           { return "min-desc" }

// ProductCost ranks by ascending product of strictly positive weights
// (e.g. joint probabilities). Weights must be > 0 for monotonicity.
type ProductCost struct{}

func (ProductCost) Identity() float64            { return 1 }
func (ProductCost) Combine(a, b float64) float64 { return a * b }
func (ProductCost) Less(a, b float64) bool       { return a < b }
func (ProductCost) Name() string                 { return "product" }

var (
	posInf = math.Inf(1)
	negInf = math.Inf(-1)
)
