package ranking

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func allAggregates() []Aggregate {
	return []Aggregate{SumCost{}, SumBenefit{}, MaxCost{}, MinBenefit{}, ProductCost{}}
}

// normalise maps arbitrary float64s into a safe positive range so that
// product stays monotone and finite.
func normalise(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 1
	}
	return 0.5 + math.Abs(math.Mod(x, 100)) // in [0.5, 100.5)
}

func TestIdentityLaw(t *testing.T) {
	for _, agg := range allAggregates() {
		agg := agg
		f := func(x float64) bool {
			v := normalise(x)
			return agg.Combine(v, agg.Identity()) == v &&
				agg.Combine(agg.Identity(), v) == v
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: identity law: %v", agg.Name(), err)
		}
	}
}

func TestCommutativity(t *testing.T) {
	for _, agg := range allAggregates() {
		agg := agg
		f := func(x, y float64) bool {
			a, b := normalise(x), normalise(y)
			return agg.Combine(a, b) == agg.Combine(b, a)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: commutativity: %v", agg.Name(), err)
		}
	}
}

func TestAssociativityUpToULP(t *testing.T) {
	for _, agg := range allAggregates() {
		agg := agg
		f := func(x, y, z float64) bool {
			a, b, c := normalise(x), normalise(y), normalise(z)
			l := agg.Combine(agg.Combine(a, b), c)
			r := agg.Combine(a, agg.Combine(b, c))
			if l == r {
				return true
			}
			// Float addition/multiplication are associative only up to
			// rounding; accept a tiny relative error.
			return math.Abs(l-r) <= 1e-9*math.Max(math.Abs(l), math.Abs(r))
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: associativity: %v", agg.Name(), err)
		}
	}
}

// Monotonicity: if a is better than b then combining both with the same c
// never makes a worse than b.
func TestMonotonicity(t *testing.T) {
	for _, agg := range allAggregates() {
		agg := agg
		f := func(x, y, z float64) bool {
			a, b, c := normalise(x), normalise(y), normalise(z)
			if !agg.Less(a, b) {
				a, b = b, a
			}
			if !agg.Less(a, b) { // equal after swap
				return true
			}
			return !agg.Less(agg.Combine(b, c), agg.Combine(a, c))
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: monotonicity: %v", agg.Name(), err)
		}
	}
}

func TestLessIsStrictTotalOrder(t *testing.T) {
	for _, agg := range allAggregates() {
		agg := agg
		f := func(x, y float64) bool {
			a, b := normalise(x), normalise(y)
			// Irreflexive and asymmetric; connected when unequal.
			if agg.Less(a, a) {
				return false
			}
			if agg.Less(a, b) && agg.Less(b, a) {
				return false
			}
			if a != b && !agg.Less(a, b) && !agg.Less(b, a) {
				return false
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: order laws: %v", agg.Name(), err)
		}
	}
}

func TestSumCostSemantics(t *testing.T) {
	agg := SumCost{}
	if got := agg.Combine(1.5, 2.5); got != 4.0 {
		t.Errorf("Combine = %v, want 4.0", got)
	}
	if !agg.Less(1, 2) || agg.Less(2, 1) {
		t.Error("Less should be ascending for SumCost")
	}
}

func TestSumBenefitSemantics(t *testing.T) {
	agg := SumBenefit{}
	if !agg.Less(5, 2) {
		t.Error("SumBenefit should rank larger sums earlier")
	}
}

func TestMaxCostSemantics(t *testing.T) {
	agg := MaxCost{}
	if got := agg.Combine(3, 7); got != 7 {
		t.Errorf("Combine = %v, want 7", got)
	}
	if got := agg.Combine(agg.Identity(), 5); got != 5 {
		t.Errorf("Combine with identity = %v, want 5", got)
	}
}

func TestMinBenefitSemantics(t *testing.T) {
	agg := MinBenefit{}
	if got := agg.Combine(3, 7); got != 3 {
		t.Errorf("Combine = %v, want 3", got)
	}
	if !agg.Less(5, 2) {
		t.Error("MinBenefit should rank larger minima earlier")
	}
}

func TestProductCostSemantics(t *testing.T) {
	agg := ProductCost{}
	if got := agg.Combine(2, 3); got != 6 {
		t.Errorf("Combine = %v, want 6", got)
	}
	if got := agg.Combine(agg.Identity(), 9); got != 9 {
		t.Errorf("identity combine = %v, want 9", got)
	}
}

func TestLexEncoderOrdersLexicographically(t *testing.T) {
	enc := LexEncoder{Base: 100, Stages: 3}
	if !enc.MaxExact() {
		t.Fatal("encoder range should be exact")
	}
	type vec [3]int64
	vecs := []vec{
		{0, 0, 0}, {0, 0, 99}, {0, 1, 0}, {1, 0, 0}, {1, 0, 1},
		{5, 99, 99}, {6, 0, 0}, {99, 99, 99}, {2, 50, 3}, {2, 50, 4},
	}
	weight := func(v vec) float64 {
		var w float64
		for s := 0; s < 3; s++ {
			w += enc.Encode(s, v[s])
		}
		return w
	}
	byWeight := append([]vec(nil), vecs...)
	sort.Slice(byWeight, func(i, j int) bool { return weight(byWeight[i]) < weight(byWeight[j]) })
	byLex := append([]vec(nil), vecs...)
	sort.Slice(byLex, func(i, j int) bool {
		a, b := byLex[i], byLex[j]
		for s := 0; s < 3; s++ {
			if a[s] != b[s] {
				return a[s] < b[s]
			}
		}
		return false
	})
	for i := range byWeight {
		if byWeight[i] != byLex[i] {
			t.Fatalf("rank %d: weight order %v != lex order %v", i, byWeight[i], byLex[i])
		}
	}
}

// Property: lex encoding preserves order for random in-range vectors.
func TestLexEncoderProperty(t *testing.T) {
	enc := LexEncoder{Base: 1000, Stages: 4}
	f := func(a0, a1, a2, a3, b0, b1, b2, b3 uint16) bool {
		av := [4]int64{int64(a0) % 1000, int64(a1) % 1000, int64(a2) % 1000, int64(a3) % 1000}
		bv := [4]int64{int64(b0) % 1000, int64(b1) % 1000, int64(b2) % 1000, int64(b3) % 1000}
		var aw, bw float64
		for s := 0; s < 4; s++ {
			aw += enc.Encode(s, av[s])
			bw += enc.Encode(s, bv[s])
		}
		lexLess := false
		lexEq := true
		for s := 0; s < 4; s++ {
			if av[s] != bv[s] {
				lexLess = av[s] < bv[s]
				lexEq = false
				break
			}
		}
		if lexEq {
			return aw == bw
		}
		return lexLess == (aw < bw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLexEncoderMaxExactBoundary(t *testing.T) {
	if (LexEncoder{Base: 1 << 20, Stages: 3}).MaxExact() {
		t.Error("2^60 range should not be exact")
	}
	if !(LexEncoder{Base: 1 << 10, Stages: 5}).MaxExact() {
		t.Error("2^50 range should be exact")
	}
}
