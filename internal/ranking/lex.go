package ranking

// Lexicographic ranking orders results by a sequence of attribute values
// rather than an aggregated weight. The tutorial (Part 3) highlights that
// lexicographic orders are a special case supported by the any-k
// framework: encode the per-stage attribute value into a weight whose
// positional magnitude dominates all later stages. Vector carries the
// exact representation used by tests to validate the encoding.

// LexEncoder packs per-stage integer keys into a single float64 weight so
// that SumCost over encoded weights sorts solutions lexicographically by
// (stage1 key, stage2 key, ...). It supports up to Stages stages with
// keys in [0, Base).
type LexEncoder struct {
	// Base is the exclusive upper bound for keys at every stage.
	Base int64
	// Stages is the number of stages being encoded.
	Stages int
}

// Encode returns the weight contribution of key at the given stage
// (0-based, stage 0 is most significant). Summing contributions across
// stages yields a total order identical to lexicographic order on the
// key vectors, provided every key is in [0, Base) and Base^Stages is
// exactly representable in float64 (Base^Stages < 2^53).
func (e LexEncoder) Encode(stage int, key int64) float64 {
	w := float64(key)
	for s := e.Stages - 1; s > stage; s-- {
		w *= float64(e.Base)
	}
	return w
}

// MaxExact reports whether the encoder's full range fits in float64's
// exact integer range (2^53), i.e. whether Encode is collision-free.
func (e LexEncoder) MaxExact() bool {
	limit := float64(1 << 53)
	total := 1.0
	for s := 0; s < e.Stages; s++ {
		total *= float64(e.Base)
		if total >= limit {
			return false
		}
	}
	return true
}
