// Package sample draws uniform random samples from the answers of a
// join query without enumerating them, following the top-down rejection
// walk of "A Simple Algorithm for Worst-Case Optimal Join and Sampling"
// (Capelli–Irwin–Meel) with the Chen–Yi style acceptance correction.
//
// The walk reuses the engine's implicit sorted-array tries
// (wcoj.Trie): at each variable position it distributes an AGM-style
// upper bound U(prefix) = ∏_a |I_a(prefix)|^{λ_a} over the candidate
// values, where I_a(prefix) is atom a's row interval compatible with
// the prefix and λ is a fractional edge cover of the query
// (hypergraph.AGMCover). Because Σ_{a∋x} λ_a ≥ 1 at every variable x,
// the generalized Hölder inequality gives Σ_v U(prefix·v) ≤ U(prefix),
// so the walk can pick value v with probability U(prefix·v)/U(prefix)
// and reject with the leftover mass. A completed walk reaches answer t
// with probability U(t)/U(root); accepting it with probability 1/U(t)
// makes every distinct answer equally likely — probability exactly
// 1/U(root) per trial — and the acceptance rate times U(root) is an
// unbiased estimate of the number of distinct answers.
//
// Sampling is over *distinct* variable assignments (set semantics).
// Under bag semantics a result's multiplicity is the product of its
// per-atom duplicate counts; the sampler reports each drawn assignment
// with the aggregated weight of one uniformly chosen witness row per
// atom, so duplicate-free inputs (the common case) see exactly the
// weights ranked enumeration would produce.
package sample

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/ranking"
	"repro/internal/relation"
	"repro/internal/wcoj"
)

// ErrTrialBudget reports that the rejection walk exhausted its trial
// budget before collecting the requested number of samples — expected
// when the join is empty or its answer count is far below the AGM
// bound. The samples gathered so far are still returned (and still
// uniform); the cardinality estimate remains valid.
var ErrTrialBudget = errors.New("sample: trial budget exhausted before n samples")

// coverTolerance is how far below 1 a variable's Σ λ_a coverage may
// fall before New rejects the cover instead of rescaling away LP
// round-off.
const coverTolerance = 1e-3

// Answer is one sampled join answer: the assignment aligned with the
// sampler's variable order and the aggregated weight of a uniformly
// chosen witness (one matching row per atom).
type Answer struct {
	Tuple  relation.Tuple
	Weight float64
}

// trieDepth locates one atom's cursor level for a variable position.
type trieDepth struct {
	trie  int
	depth int
}

// Sampler draws uniform samples from one query's answer set. Build it
// once (New sorts every atom); Sample may then be called concurrently —
// each call walks private cursor clones and the shared trial counters
// are atomic.
type Sampler struct {
	vars   []string
	tries  []*wcoj.Trie
	lambda []float64
	// byPos[p] lists the cursors participating at variable position p;
	// boundDepth[p][i] is cursor i's bound depth before position p.
	byPos      [][]trieDepth
	boundDepth [][]int
	bound      float64 // U(root)

	// MaxTrials caps the rejection walks per Sample call; 0 selects
	// 512·n + 4096, generous for any acceptance rate above ~1/512.
	MaxTrials int

	trials  atomic.Int64
	accepts atomic.Int64
}

// New builds a sampler over the query atoms with the given variable
// order and fractional edge cover λ (aligned with atoms, e.g. from
// hypergraph.AGMCover). Every variable must be covered with Σ λ_a ≥ 1;
// small LP round-off below 1 is repaired by scaling λ up, which only
// loosens the bound, never the uniformity guarantee.
func New(atoms []wcoj.Atom, varOrder []string, lambda []float64) (*Sampler, error) {
	if len(lambda) != len(atoms) {
		return nil, fmt.Errorf("sample: %d lambda weights for %d atoms", len(lambda), len(atoms))
	}
	s := &Sampler{
		vars:   varOrder,
		lambda: append([]float64(nil), lambda...),
		byPos:  make([][]trieDepth, len(varOrder)),
	}
	cover := make([]float64, len(varOrder))
	for ai, a := range atoms {
		if lambda[ai] < 0 {
			return nil, fmt.Errorf("sample: negative lambda %g for atom %s", lambda[ai], a.Rel.Name)
		}
		t, err := wcoj.NewTrie(a, varOrder)
		if err != nil {
			return nil, err
		}
		s.tries = append(s.tries, t)
		for d := 0; d < t.Depth(); d++ {
			p := t.GlobalPos(d)
			s.byPos[p] = append(s.byPos[p], trieDepth{trie: ai, depth: d})
			cover[p] += lambda[ai]
		}
	}
	minCover := math.Inf(1)
	for p, c := range cover {
		if len(s.byPos[p]) == 0 {
			return nil, fmt.Errorf("sample: variable %s not covered by any atom", varOrder[p])
		}
		if c < minCover {
			minCover = c
		}
	}
	if minCover < 1 {
		if minCover < 1-coverTolerance {
			return nil, fmt.Errorf("sample: lambda covers some variable only %.6f < 1", minCover)
		}
		for i := range s.lambda {
			s.lambda[i] /= minCover
		}
	}
	// boundDepth[p][i]: how many of cursor i's variables sit before
	// position p — the interval level that constrains it at p.
	s.boundDepth = make([][]int, len(varOrder)+1)
	for p := range s.boundDepth {
		s.boundDepth[p] = make([]int, len(s.tries))
		for i, t := range s.tries {
			d := 0
			for d < t.Depth() && t.GlobalPos(d) < p {
				d++
			}
			s.boundDepth[p][i] = d
		}
	}
	s.bound = 1
	for i, t := range s.tries {
		if t.Len(0) == 0 {
			s.bound = 0
			break
		}
		s.bound *= math.Pow(float64(t.Len(0)), s.lambda[i])
	}
	return s, nil
}

// Bound returns U(root), the AGM-style upper bound the rejection walk
// samples against. A bound of 0 means some input relation is empty.
func (s *Sampler) Bound() float64 { return s.bound }

// Vars returns the sampler's variable order; sampled tuples align with
// it.
func (s *Sampler) Vars() []string { return s.vars }

// Estimate returns the running unbiased estimate of the number of
// distinct answers — acceptance rate × U(root) — with the cumulative
// trial and accept counters behind it (across all Sample calls).
func (s *Sampler) Estimate() (est float64, trials, accepts int64) {
	trials = s.trials.Load()
	accepts = s.accepts.Load()
	if trials > 0 {
		est = float64(accepts) / float64(trials) * s.bound
	}
	return est, trials, accepts
}

// u computes U(prefix) before position p on the given cursors.
func (s *Sampler) u(tries []*wcoj.Trie, p int) float64 {
	u := 1.0
	for i, t := range tries {
		u *= math.Pow(float64(t.Len(s.boundDepth[p][i])), s.lambda[i])
	}
	return u
}

// trial runs one rejection walk on the given cursor clones.
func (s *Sampler) trial(tries []*wcoj.Trie, rng *rand, agg ranking.Aggregate, tuple relation.Tuple) (Answer, bool) {
	for p := range s.vars {
		parts := s.byPos[p]
		drv := parts[0]
		size := tries[drv.trie].Len(drv.depth)
		for _, td := range parts[1:] {
			if sz := tries[td.trie].Len(td.depth); sz < size {
				drv, size = td, sz
			}
		}
		uPrefix := s.u(tries, p)
		if uPrefix <= 0 {
			return Answer{}, false
		}
		r := rng.Float64() * uPrefix
		dt := tries[drv.trie]
		lo, hi := dt.Interval(drv.depth)
		chosen := false
		for row := lo; row < hi; {
			v := dt.ValueAt(row, drv.depth)
			ok := true
			for _, td := range parts {
				if !tries[td.trie].Narrow(td.depth, v) {
					ok = false
					break
				}
			}
			if ok {
				// U(prefix·v): the participating cursors shrink to their
				// narrowed intervals, everyone else is unchanged.
				uv := uPrefix
				for _, td := range parts {
					t := tries[td.trie]
					uv *= math.Pow(float64(t.Len(td.depth+1))/float64(t.Len(td.depth)), s.lambda[td.trie])
				}
				r -= uv
				if r < 0 {
					// The narrows for v are the last performed on every
					// participant, so the cursors already sit on v.
					tuple[p] = v
					chosen = true
					break
				}
			}
			row = dt.NextBlock(drv.depth, row)
		}
		if !chosen {
			return Answer{}, false // leftover mass U(prefix) − Σ U(prefix·v)
		}
	}
	// Accept with probability 1/U(full); U(full) ≥ 1 since every match
	// block is non-empty.
	uFull := s.u(tries, len(s.vars))
	if rng.Float64()*uFull >= 1 {
		return Answer{}, false
	}
	w := agg.Identity()
	for _, t := range tries {
		lo, hi := t.Interval(t.Depth())
		w = agg.Combine(w, t.RowWeight(lo+int32(rng.Intn(int(hi-lo)))))
	}
	out := make(relation.Tuple, len(tuple))
	copy(out, tuple)
	return Answer{Tuple: out, Weight: w}, true
}

// Sample draws up to n independent uniform samples of the query's
// answers, seeding the walk's RNG with seed (equal seeds reproduce
// equal draws). Weights aggregate witness rows under agg. When the
// trial budget runs out first, the samples collected so far are
// returned along with ErrTrialBudget; a canceled ctx returns the
// partial samples with ctx.Err(). Safe for concurrent use.
func (s *Sampler) Sample(ctx context.Context, n int, seed uint64, agg ranking.Aggregate) ([]Answer, error) {
	if n <= 0 || s.bound == 0 {
		return nil, nil
	}
	budget := s.MaxTrials
	if budget <= 0 {
		budget = 512*n + 4096
	}
	rng := newRand(seed)
	tries := make([]*wcoj.Trie, len(s.tries))
	for i, t := range s.tries {
		tries[i] = t.Clone()
	}
	tuple := make(relation.Tuple, len(s.vars))
	// Accepts cannot exceed the trial budget, and huge n (estimate-only
	// callers) must not preallocate proportionally.
	capHint := n
	if capHint > budget {
		capHint = budget
	}
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	out := make([]Answer, 0, capHint)
	for t := 0; t < budget && len(out) < n; t++ {
		if t%512 == 0 {
			if err := ctx.Err(); err != nil {
				return out, err
			}
		}
		s.trials.Add(1)
		if ans, ok := s.trial(tries, rng, agg, tuple); ok {
			s.accepts.Add(1)
			out = append(out, ans)
		}
	}
	if len(out) < n {
		return out, ErrTrialBudget
	}
	return out, nil
}

// rand is a splitmix64 generator — tiny, seedable, and independent of
// math/rand so sampling streams are reproducible across Go versions.
type rand struct{ state uint64 }

func newRand(seed uint64) *rand { return &rand{state: seed} }

func (r *rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw from [0, 1).
func (r *rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform draw from [0, n); n must be > 0.
func (r *rand) Intn(n int) int {
	return int(r.Uint64() % uint64(n))
}
