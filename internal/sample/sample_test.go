package sample

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/ranking"
	"repro/internal/relation"
	"repro/internal/wcoj"
)

// buildSampler assembles atoms, the AGM cover, and the sampler for a
// query given as (name, vars) edges over rels.
func buildSampler(t *testing.T, rels []*relation.Relation, vars [][]string) (*Sampler, []wcoj.Atom, []string) {
	t.Helper()
	edges := make([]hypergraph.Edge, len(rels))
	atoms := make([]wcoj.Atom, len(rels))
	sizes := make([]float64, len(rels))
	for i, r := range rels {
		edges[i] = hypergraph.Edge{Name: r.Name, Vars: vars[i]}
		atoms[i] = wcoj.Atom{Rel: r, Vars: vars[i]}
		sizes[i] = math.Max(1, float64(r.Len()))
	}
	h := hypergraph.New(edges...)
	lambda, _, err := h.AGMCover(sizes)
	if err != nil {
		t.Fatalf("AGMCover: %v", err)
	}
	order := wcoj.SuggestOrder(atoms)
	s, err := New(atoms, order, lambda)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s, atoms, order
}

// answerSet materializes the full join and indexes tuple → weight.
func answerSet(t *testing.T, atoms []wcoj.Atom, order []string, agg ranking.Aggregate) map[string]float64 {
	t.Helper()
	out, _, err := wcoj.Materialize(atoms, order, agg)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	m := make(map[string]float64, out.Len())
	for i, tp := range out.Tuples {
		m[fmt.Sprint(tp)] = out.Weights[i]
	}
	if len(m) != out.Len() {
		t.Fatalf("fixture has duplicate answers: %d tuples, %d distinct", out.Len(), len(m))
	}
	return m
}

// completeDigraph returns a relation with all ordered pairs (i, j),
// i ≠ j, over 0..n-1, weighted w(i,j) = 10i + j.
func completeDigraph(name string, n int) *relation.Relation {
	r := relation.New(name, "X", "Y")
	for i := int64(0); i < int64(n); i++ {
		for j := int64(0); j < int64(n); j++ {
			if i != j {
				r.AddTuple(relation.Tuple{i, j}, float64(10*i+j))
			}
		}
	}
	return r
}

// chiSquared runs draws and returns the chi-squared statistic of the
// sampled answer frequencies against the uniform expectation, checking
// along the way that every sample is a real answer with the right
// witness weight.
func chiSquared(t *testing.T, s *Sampler, answers map[string]float64, draws int, seed uint64) float64 {
	t.Helper()
	got, err := s.Sample(context.Background(), draws, seed, ranking.SumCost{})
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	if len(got) != draws {
		t.Fatalf("drew %d of %d samples", len(got), draws)
	}
	counts := make(map[string]int, len(answers))
	for _, a := range got {
		key := fmt.Sprint(a.Tuple)
		w, ok := answers[key]
		if !ok {
			t.Fatalf("sampled non-answer %v", a.Tuple)
		}
		if a.Weight != w {
			t.Fatalf("sample %v weight %g, want %g", a.Tuple, a.Weight, w)
		}
		counts[key]++
	}
	exp := float64(draws) / float64(len(answers))
	chi2 := 0.0
	for key := range answers {
		d := float64(counts[key]) - exp
		chi2 += d * d / exp
	}
	return chi2
}

// TestUniformityTriangle: the sampler over the triangle query on a
// complete digraph must be uniform over all 120 answers. With 12000
// draws the statistic is chi-squared with 119 degrees of freedom; its
// 99.9% quantile is ≈171, so a deterministic seeded run below 180 is
// both a correctness check and flake-free.
func TestUniformityTriangle(t *testing.T) {
	rels := []*relation.Relation{
		completeDigraph("R", 6), completeDigraph("S", 6), completeDigraph("T", 6),
	}
	vars := [][]string{{"A", "B"}, {"B", "C"}, {"C", "A"}}
	s, atoms, order := buildSampler(t, rels, vars)
	answers := answerSet(t, atoms, order, ranking.SumCost{})
	if len(answers) != 120 {
		t.Fatalf("fixture has %d answers, want 120", len(answers))
	}
	if chi2 := chiSquared(t, s, answers, 12000, 7); chi2 > 180 {
		t.Fatalf("chi-squared %.1f exceeds the 99.9%% bound 180", chi2)
	}
}

// TestUniformityAcyclicPath covers the acyclic shape: a two-hop path
// with asymmetric fan-outs, where a non-uniform walk (e.g. one
// proportional to candidate counts instead of the λ-weighted bounds)
// would visibly overweight the hub.
func TestUniformityAcyclicPath(t *testing.T) {
	r := relation.New("R", "X", "Y")
	sRel := relation.New("S", "X", "Y")
	// Hub value 0 has many continuations, values 1..4 few.
	for j := int64(0); j < 8; j++ {
		r.AddTuple(relation.Tuple{int64(100 + j), 0}, 1)
		sRel.AddTuple(relation.Tuple{0, int64(200 + j)}, 1)
	}
	for v := int64(1); v <= 4; v++ {
		r.AddTuple(relation.Tuple{100 - v, v}, 1)
		sRel.AddTuple(relation.Tuple{v, 200 - v}, 1)
	}
	vars := [][]string{{"A", "B"}, {"B", "C"}}
	s, atoms, order := buildSampler(t, []*relation.Relation{r, sRel}, vars)
	answers := answerSet(t, atoms, order, ranking.SumCost{})
	if len(answers) != 68 {
		t.Fatalf("fixture has %d answers, want 68", len(answers))
	}
	// df = 67, 99.9% quantile ≈ 111.
	if chi2 := chiSquared(t, s, answers, 6800, 11); chi2 > 115 {
		t.Fatalf("chi-squared %.1f exceeds the 99.9%% bound 115", chi2)
	}
}

// TestEstimatorConfidenceSkewed checks the cardinality estimator on a
// Zipf-like skewed join: the estimate must land within six binomial
// standard deviations of the true count (the run is seeded, so this is
// deterministic; six sigma makes the bound honest rather than tuned).
func TestEstimatorConfidenceSkewed(t *testing.T) {
	r := relation.New("R", "X", "Y")
	sRel := relation.New("S", "X", "Y")
	// Value v appears ~60/v times on the join column: heavy head at 1.
	row := int64(0)
	for v := int64(1); v <= 20; v++ {
		for c := int64(0); c < 60/v; c++ {
			r.AddTuple(relation.Tuple{row, v}, 1)
			sRel.AddTuple(relation.Tuple{v, 10000 + row}, 1)
			row++
		}
	}
	vars := [][]string{{"A", "B"}, {"B", "C"}}
	s, atoms, order := buildSampler(t, []*relation.Relation{r, sRel}, vars)
	truth := float64(len(answerSet(t, atoms, order, ranking.SumCost{})))
	s.MaxTrials = 200000
	if _, err := s.Sample(context.Background(), 1<<30, 3, ranking.SumCost{}); err != nil && !errors.Is(err, ErrTrialBudget) {
		t.Fatalf("Sample: %v", err)
	}
	est, trials, accepts := s.Estimate()
	if trials == 0 || accepts == 0 {
		t.Fatalf("no accepted trials (trials=%d)", trials)
	}
	p := truth / s.Bound()
	sd := s.Bound() * math.Sqrt(p*(1-p)/float64(trials))
	if diff := math.Abs(est - truth); diff > 6*sd {
		t.Fatalf("estimate %.1f vs true %.0f: off by %.1f > 6σ = %.1f (trials=%d)", est, truth, diff, 6*sd, trials)
	}
}

func TestEmptyInputRelation(t *testing.T) {
	r := relation.New("R", "X", "Y")
	sRel := relation.New("S", "X", "Y")
	sRel.AddTuple(relation.Tuple{1, 2}, 1)
	s, _, _ := buildSampler(t, []*relation.Relation{r, sRel}, [][]string{{"A", "B"}, {"B", "C"}})
	if s.Bound() != 0 {
		t.Fatalf("Bound() = %g, want 0 for an empty input", s.Bound())
	}
	got, err := s.Sample(context.Background(), 5, 1, ranking.SumCost{})
	if err != nil || len(got) != 0 {
		t.Fatalf("Sample on empty join: got %d answers, err %v", len(got), err)
	}
	if est, _, _ := s.Estimate(); est != 0 {
		t.Fatalf("Estimate() = %g, want 0", est)
	}
}

// TestBudgetOnEmptyIntersection: non-empty inputs with zero join
// answers keep rejecting until the budget runs out, reported as
// ErrTrialBudget with the estimate converging to 0.
func TestBudgetOnEmptyIntersection(t *testing.T) {
	r := relation.New("R", "X", "Y")
	sRel := relation.New("S", "X", "Y")
	for i := int64(0); i < 10; i++ {
		r.AddTuple(relation.Tuple{i, i + 100}, 1)
		sRel.AddTuple(relation.Tuple{i + 200, i}, 1)
	}
	s, _, _ := buildSampler(t, []*relation.Relation{r, sRel}, [][]string{{"A", "B"}, {"B", "C"}})
	s.MaxTrials = 100
	got, err := s.Sample(context.Background(), 3, 1, ranking.SumCost{})
	if !errors.Is(err, ErrTrialBudget) {
		t.Fatalf("err = %v, want ErrTrialBudget", err)
	}
	if len(got) != 0 {
		t.Fatalf("sampled %d answers from an empty join", len(got))
	}
	if est, trials, _ := s.Estimate(); est != 0 || trials != 100 {
		t.Fatalf("Estimate() = %g after %d trials, want 0 after 100", est, trials)
	}
}

func TestContextCancellation(t *testing.T) {
	r := completeDigraph("R", 6)
	s, _, _ := buildSampler(t, []*relation.Relation{r}, [][]string{{"A", "B"}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Sample(ctx, 10, 1, ranking.SumCost{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestNewValidation(t *testing.T) {
	r := completeDigraph("R", 3)
	atoms := []wcoj.Atom{{Rel: r, Vars: []string{"A", "B"}}}
	if _, err := New(atoms, []string{"A", "B"}, []float64{1, 1}); err == nil {
		t.Fatal("lambda length mismatch not rejected")
	}
	if _, err := New(atoms, []string{"A", "B"}, []float64{-1}); err == nil {
		t.Fatal("negative lambda not rejected")
	}
	if _, err := New(atoms, []string{"A", "B"}, []float64{0.5}); err == nil {
		t.Fatal("under-covering lambda not rejected")
	}
	if _, err := New(atoms, []string{"A", "B", "C"}, []float64{1}); err == nil {
		t.Fatal("uncovered variable not rejected")
	}
	// LP round-off just below 1 is repaired, not rejected.
	s, err := New(atoms, []string{"A", "B"}, []float64{1 - 1e-9})
	if err != nil {
		t.Fatalf("round-off lambda rejected: %v", err)
	}
	if s.Bound() < float64(r.Len()) {
		t.Fatalf("Bound() = %g below relation size %d", s.Bound(), r.Len())
	}
}

// TestSeedDeterminism: equal seeds reproduce equal draws; different
// seeds draw differently.
func TestSeedDeterminism(t *testing.T) {
	rels := []*relation.Relation{
		completeDigraph("R", 6), completeDigraph("S", 6), completeDigraph("T", 6),
	}
	vars := [][]string{{"A", "B"}, {"B", "C"}, {"C", "A"}}
	s, _, _ := buildSampler(t, rels, vars)
	a, err := s.Sample(context.Background(), 40, 99, ranking.SumCost{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Sample(context.Background(), 40, 99, ranking.SumCost{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("equal seeds drew different samples")
	}
	c, err := s.Sample(context.Background(), 40, 100, ranking.SumCost{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds drew identical samples")
	}
}
