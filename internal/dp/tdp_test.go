package dp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hypergraph"
	"repro/internal/ranking"
	"repro/internal/relation"
	"repro/internal/yannakakis"
)

var sum = ranking.SumCost{}

func mustBuild(t *testing.T, h *hypergraph.Hypergraph, rels []*relation.Relation, agg ranking.Aggregate) *TDP {
	t.Helper()
	q, err := yannakakis.NewQuery(h, rels)
	if err != nil {
		t.Fatal(err)
	}
	tdp, err := Build(q, agg)
	if err != nil {
		t.Fatal(err)
	}
	return tdp
}

func pathRels(data ...[][3]float64) []*relation.Relation {
	rels := make([]*relation.Relation, len(data))
	for i, d := range data {
		r := relation.New("R"+string(rune('1'+i)), "X", "Y")
		for _, row := range d {
			r.AddWeighted(row[2], relation.Value(row[0]), relation.Value(row[1]))
		}
		rels[i] = r
	}
	return rels
}

func TestBuildPathShape(t *testing.T) {
	rels := pathRels(
		[][3]float64{{1, 10, 1}, {2, 20, 2}},
		[][3]float64{{10, 100, 3}, {20, 200, 4}},
	)
	tdp := mustBuild(t, hypergraph.Path(2), rels, sum)
	if len(tdp.Nodes) != 2 {
		t.Fatalf("nodes = %d, want 2", len(tdp.Nodes))
	}
	if tdp.Nodes[0].Parent != -1 {
		t.Error("first preorder node must be the root")
	}
	if tdp.Nodes[1].Parent != 0 {
		t.Error("second node's parent must be the root")
	}
	if len(tdp.OutAttrs) != 3 {
		t.Errorf("OutAttrs = %v, want 3 vars", tdp.OutAttrs)
	}
}

func TestTopWeightSimple(t *testing.T) {
	// Best solution: (1,10) w=1 + (10,101) w=1 → 2.
	rels := pathRels(
		[][3]float64{{1, 10, 1}, {1, 11, 5}},
		[][3]float64{{10, 100, 10}, {10, 101, 1}, {11, 100, 0}},
	)
	tdp := mustBuild(t, hypergraph.Path(2), rels, sum)
	if tdp.Empty() {
		t.Fatal("should not be empty")
	}
	if got := tdp.TopWeight(); got != 2 {
		t.Fatalf("TopWeight = %g, want 2", got)
	}
}

func TestTopWeightMaxAggregate(t *testing.T) {
	// min-max: best solution minimises the max weight: (1,10)+(10,101)
	// has max(1,1)=1... weights: R1(1,10) w=1; R2(10,101) w=1 → 1.
	rels := pathRels(
		[][3]float64{{1, 10, 1}, {1, 11, 0.5}},
		[][3]float64{{10, 101, 1}, {11, 100, 3}},
	)
	tdp := mustBuild(t, hypergraph.Path(2), rels, ranking.MaxCost{})
	if got := tdp.TopWeight(); got != 1 {
		t.Fatalf("TopWeight(max) = %g, want 1", got)
	}
}

func TestGreedyCompleteProducesTopSolution(t *testing.T) {
	rels := pathRels(
		[][3]float64{{1, 10, 1}, {1, 11, 5}, {2, 10, 2}},
		[][3]float64{{10, 100, 10}, {10, 101, 1}, {11, 100, 0}},
	)
	tdp := mustBuild(t, hypergraph.Path(2), rels, sum)
	rows := make([]int32, 2)
	g := &tdp.Nodes[0].Groups[0]
	rows[0] = g.Rows[g.BestIdx]
	tdp.GreedyComplete(rows, 1)
	w := tdp.SolutionWeight(rows)
	if math.Abs(w-tdp.TopWeight()) > 1e-12 {
		t.Fatalf("greedy solution weight %g != TopWeight %g", w, tdp.TopWeight())
	}
}

func TestEmptyTDP(t *testing.T) {
	rels := pathRels(
		[][3]float64{{1, 10, 0}},
		[][3]float64{{99, 100, 0}},
	)
	tdp := mustBuild(t, hypergraph.Path(2), rels, sum)
	if !tdp.Empty() {
		t.Error("disconnected instance should be empty")
	}
	if tdp.NumSolutions() != 0 {
		t.Error("NumSolutions should be 0")
	}
}

func TestGroupsPartitionRows(t *testing.T) {
	rels := pathRels(
		[][3]float64{{1, 10, 0}, {2, 10, 0}, {3, 11, 0}},
		[][3]float64{{10, 5, 0}, {10, 6, 0}, {11, 7, 0}},
	)
	tdp := mustBuild(t, hypergraph.Path(2), rels, sum)
	for pos, n := range tdp.Nodes {
		seen := make(map[int32]bool)
		total := 0
		for gi, g := range n.Groups {
			for _, r := range g.Rows {
				if seen[r] {
					t.Fatalf("node %d: row %d in two groups", pos, r)
				}
				seen[r] = true
				if n.GroupOfRow[r] != int32(gi) {
					t.Fatalf("node %d: GroupOfRow mismatch", pos)
				}
				total++
			}
		}
		if total != n.Rel.Len() {
			t.Fatalf("node %d: groups cover %d of %d rows", pos, total, n.Rel.Len())
		}
	}
}

func TestChildGroupConsistency(t *testing.T) {
	// Star: every child's group must match the parent row's key.
	h := hypergraph.Star(3)
	rels := make([]*relation.Relation, 3)
	for i := range rels {
		r := relation.New("R", "X", "Y")
		for j := relation.Value(0); j < 9; j++ {
			r.AddWeighted(float64(j), j%3, j+relation.Value(i)*10)
		}
		rels[i] = r
	}
	tdp := mustBuild(t, h, rels, sum)
	root := tdp.Nodes[0]
	for row, tp := range root.Rel.Tuples {
		for ci, c := range root.Children {
			child := tdp.Nodes[c]
			gi := root.ChildGroup[ci][row]
			shared := root.Rel.SharedAttrs(child.Rel)
			pCols, _ := root.Rel.AttrIndexes(shared)
			cCols, _ := child.Rel.AttrIndexes(shared)
			for _, crow := range child.Groups[gi].Rows {
				for k := range shared {
					if child.Rel.Tuples[crow][cCols[k]] != tp[pCols[k]] {
						t.Fatalf("child group row does not join with parent row")
					}
				}
			}
		}
	}
}

// Property: π of a row equals the true minimum solution weight of the
// subtree rooted there (verified by brute force on small paths).
func TestPiIsSubtreeOptimumProperty(t *testing.T) {
	f := func(d1, d2 []uint8) bool {
		if len(d1) == 0 || len(d2) == 0 {
			return true
		}
		r1 := relation.New("R1", "X", "Y")
		for i, v := range d1 {
			r1.AddWeighted(float64(i%7), relation.Value(v%3), relation.Value(v%4))
		}
		r2 := relation.New("R2", "X", "Y")
		for i, v := range d2 {
			r2.AddWeighted(float64(i%5), relation.Value(v%4), relation.Value(v%3))
		}
		q, err := yannakakis.NewQuery(hypergraph.Path(2), []*relation.Relation{r1, r2})
		if err != nil {
			return false
		}
		tdp, err := Build(q, sum)
		if err != nil {
			return false
		}
		// For the leaf node (preorder position 1), π must equal the tuple
		// weight; for the root, π = w + best joining leaf π.
		leaf := tdp.Nodes[1]
		for row := range leaf.Rel.Tuples {
			if leaf.Pi[row] != leaf.Rel.Weights[row] {
				return false
			}
		}
		root := tdp.Nodes[0]
		for row := range root.Rel.Tuples {
			gi := root.ChildGroup[0][row]
			best := math.Inf(1)
			for _, crow := range leaf.Groups[gi].Rows {
				if leaf.Pi[crow] < best {
					best = leaf.Pi[crow]
				}
			}
			want := root.Rel.Weights[row] + best
			if math.Abs(root.Pi[row]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBuildRejectsCartesianTreeEdge(t *testing.T) {
	// Two relations with no shared vars: hypergraph R(A,B), S(C,D) is
	// technically "acyclic" per GYO only if an edge contains the other's
	// shared vars — here shared = ∅, so the witness check passes
	// trivially and the tree edge would be cartesian. Build must reject.
	h := hypergraph.New(hypergraph.E("R", "A", "B"), hypergraph.E("S", "C", "D"))
	r := relation.New("R", "X", "Y")
	r.Add(1, 2)
	s := relation.New("S", "X", "Y")
	s.Add(3, 4)
	q, err := yannakakis.NewQuery(h, []*relation.Relation{r, s})
	if err != nil {
		t.Skip("query building rejected disconnected hypergraph")
	}
	if _, err := Build(q, sum); err == nil {
		t.Error("Build should reject cartesian tree edges")
	}
}

func TestEmitAlignsWithOutAttrs(t *testing.T) {
	rels := pathRels(
		[][3]float64{{7, 8, 0}},
		[][3]float64{{8, 9, 0}},
	)
	tdp := mustBuild(t, hypergraph.Path(2), rels, sum)
	rows := []int32{0, 0}
	tdp.GreedyComplete(rows, 1)
	tup := tdp.Emit(rows)
	vals := map[string]relation.Value{}
	for i, a := range tdp.OutAttrs {
		vals[a] = tup[i]
	}
	if vals["A0"] != 7 || vals["A1"] != 8 || vals["A2"] != 9 {
		t.Fatalf("Emit = %v with attrs %v", tup, tdp.OutAttrs)
	}
}

func TestPlanInstantiatePerAggregate(t *testing.T) {
	rels := pathRels(
		[][3]float64{{1, 10, 1}, {1, 11, 5}},
		[][3]float64{{10, 100, 10}, {10, 101, 1}, {11, 100, 0}},
	)
	q, err := yannakakis.NewQuery(hypergraph.Path(2), rels)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.OutAttrs()) != 3 {
		t.Fatalf("plan OutAttrs = %v", plan.OutAttrs())
	}

	tSum, err := plan.Instantiate(ranking.SumCost{})
	if err != nil {
		t.Fatal(err)
	}
	tMax, err := plan.Instantiate(ranking.MaxCost{})
	if err != nil {
		t.Fatal(err)
	}
	// Instantiations share the reduced relations and groupings but carry
	// independent π / group-best state.
	if tSum.Nodes[0].Rel != tMax.Nodes[0].Rel {
		t.Error("instantiations should share reduced relations")
	}
	if got := tSum.TopWeight(); got != 2 {
		t.Fatalf("sum TopWeight = %g, want 2", got)
	}
	if got := tMax.TopWeight(); got != 1 {
		t.Fatalf("max TopWeight = %g, want 1 (bottleneck of 1⊕1)", got)
	}
	// A later instantiation must not have disturbed the first.
	if got := tSum.TopWeight(); got != 2 {
		t.Fatalf("sum TopWeight changed after max instantiation: %g", got)
	}
	// Both must agree with Build on the same aggregate.
	ref := mustBuild(t, hypergraph.Path(2), rels, sum)
	if ref.TopWeight() != tSum.TopWeight() {
		t.Fatal("Instantiate disagrees with Build")
	}
}
