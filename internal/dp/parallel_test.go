package dp

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/ranking"
	"repro/internal/workload"
	"repro/internal/yannakakis"
)

// planFixtures builds one aggregate-independent plan per interesting
// tree shape: a wide star (maximum level width), a random bushy tree
// (mixed widths and depths), and a path (minimum width — the worst
// case for level parallelism, so the degenerate schedule is covered
// too).
func planFixtures(t *testing.T) map[string]*Plan {
	t.Helper()
	out := make(map[string]*Plan)
	for name, inst := range map[string]*workload.Instance{
		"star":       workload.Star(6, 200, 12, workload.UniformWeights(), 7),
		"randomtree": workload.RandomTree(9, 150, 10, workload.UniformWeights(), 11),
		"path":       workload.Path(4, 180, 14, workload.UniformWeights(), 13),
	} {
		q, err := yannakakis.NewQuery(inst.H, inst.Rels)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p, err := NewPlan(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = p
	}
	return out
}

// assertSameTDP compares two instantiations bit for bit: π arrays,
// group partitions with their BestIdx/BestPi, child maps, and the
// derived top weight and solution count.
func assertSameTDP(t *testing.T, label string, got, want *TDP) {
	t.Helper()
	if len(got.Nodes) != len(want.Nodes) {
		t.Fatalf("%s: %d nodes, want %d", label, len(got.Nodes), len(want.Nodes))
	}
	for pos := range want.Nodes {
		g, w := got.Nodes[pos], want.Nodes[pos]
		if !reflect.DeepEqual(g.Pi, w.Pi) {
			t.Fatalf("%s: node %d Pi differs", label, pos)
		}
		if !reflect.DeepEqual(g.Groups, w.Groups) {
			t.Fatalf("%s: node %d Groups (Rows/BestIdx/BestPi) differ", label, pos)
		}
		if !reflect.DeepEqual(g.GroupOfRow, w.GroupOfRow) || !reflect.DeepEqual(g.ChildGroup, w.ChildGroup) {
			t.Fatalf("%s: node %d grouping maps differ", label, pos)
		}
	}
	if !want.Empty() {
		if got.TopWeight() != want.TopWeight() {
			t.Fatalf("%s: TopWeight %g != %g", label, got.TopWeight(), want.TopWeight())
		}
	}
	if got.NumSolutions() != want.NumSolutions() {
		t.Fatalf("%s: NumSolutions %d != %d", label, got.NumSolutions(), want.NumSolutions())
	}
}

// TestInstantiateParallelBitIdentical checks the dp-level contract: the
// level-synchronized parallel π pass produces exactly the sequential
// instantiation — same π arrays, BestIdx/BestPi, counts — for worker
// counts {1, 2, GOMAXPROCS} under every ranking aggregate.
func TestInstantiateParallelBitIdentical(t *testing.T) {
	aggs := []ranking.Aggregate{
		ranking.SumCost{}, ranking.SumBenefit{}, ranking.MaxCost{},
		ranking.MinBenefit{}, ranking.ProductCost{},
	}
	for name, plan := range planFixtures(t) {
		for _, agg := range aggs {
			want, err := plan.Instantiate(agg)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
				got, err := plan.Instantiate(agg, WithWorkers(workers))
				if err != nil {
					t.Fatal(err)
				}
				assertSameTDP(t, name+"/"+agg.Name(), got, want)
			}
		}
	}
}

// TestNewPlanParallelBitIdentical checks that a plan built with the
// per-node grouping fan-out equals the sequential build: same reduced
// relations, groupings, child maps, and schema.
func TestNewPlanParallelBitIdentical(t *testing.T) {
	for name, inst := range map[string]*workload.Instance{
		"star":       workload.Star(6, 200, 12, workload.UniformWeights(), 7),
		"randomtree": workload.RandomTree(9, 150, 10, workload.UniformWeights(), 11),
	} {
		q, err := yannakakis.NewQuery(inst.H, inst.Rels)
		if err != nil {
			t.Fatal(err)
		}
		want, err := NewPlan(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
			got, err := NewPlan(q, WithWorkers(workers))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.outAttrs, want.outAttrs) || !reflect.DeepEqual(got.levels, want.levels) {
				t.Fatalf("%s/w=%d: schema or levels differ", name, workers)
			}
			for pos := range want.nodes {
				g, w := got.nodes[pos], want.nodes[pos]
				if !reflect.DeepEqual(g.Rel.Attrs, w.Rel.Attrs) ||
					!reflect.DeepEqual(g.Rel.Tuples, w.Rel.Tuples) ||
					!reflect.DeepEqual(g.Rel.Weights, w.Rel.Weights) {
					t.Fatalf("%s/w=%d: node %d reduced relation differs", name, workers, pos)
				}
				if !reflect.DeepEqual(g.Groups, w.Groups) ||
					!reflect.DeepEqual(g.GroupOfRow, w.GroupOfRow) ||
					!reflect.DeepEqual(g.ChildGroup, w.ChildGroup) {
					t.Fatalf("%s/w=%d: node %d grouping differs", name, workers, pos)
				}
			}
		}
	}
}

// countdownCtx reports cancellation after Err has been consulted a
// fixed number of times — deterministic mid-pass cancellation.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestInstantiateCancellation checks that both build steps honor their
// context: pre-canceled and mid-pass countdown cancellation each fail
// with context.Canceled and return no result, at several worker counts.
func TestInstantiateCancellation(t *testing.T) {
	inst := workload.RandomTree(9, 150, 10, workload.UniformWeights(), 11)
	q, err := yannakakis.NewQuery(inst.H, inst.Rels)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		if _, err := plan.Instantiate(ranking.SumCost{}, WithContext(canceled), WithWorkers(workers)); !errors.Is(err, context.Canceled) {
			t.Fatalf("pre-canceled Instantiate (w=%d): got %v, want context.Canceled", workers, err)
		}
		if _, err := NewPlan(q, WithContext(canceled), WithWorkers(workers)); !errors.Is(err, context.Canceled) {
			t.Fatalf("pre-canceled NewPlan (w=%d): got %v, want context.Canceled", workers, err)
		}

		// Mid-pass: allow a few checks, then cancel between node tasks.
		mid := &countdownCtx{Context: context.Background()}
		mid.remaining.Store(3)
		if _, err := plan.Instantiate(ranking.SumCost{}, WithContext(mid), WithWorkers(workers)); !errors.Is(err, context.Canceled) {
			t.Fatalf("mid-pass Instantiate cancel (w=%d): got %v, want context.Canceled", workers, err)
		}
		mid = &countdownCtx{Context: context.Background()}
		mid.remaining.Store(3)
		if _, err := NewPlan(q, WithContext(mid), WithWorkers(workers)); !errors.Is(err, context.Canceled) {
			t.Fatalf("mid-pass NewPlan cancel (w=%d): got %v, want context.Canceled", workers, err)
		}
	}
}

// TestTotalTuples checks the threshold input: the sum of reduced node
// sizes.
func TestTotalTuples(t *testing.T) {
	rels := pathRels(
		[][3]float64{{1, 10, 1}, {2, 20, 2}},
		[][3]float64{{10, 100, 3}, {20, 200, 4}},
	)
	q, err := yannakakis.NewQuery(hypergraph.Path(2), rels)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, n := range plan.nodes {
		want += n.Rel.Len()
	}
	if got := plan.TotalTuples(); got != want || got != 4 {
		t.Fatalf("TotalTuples = %d, want %d (= 4: nothing dangles)", got, want)
	}
}

// benchPlan builds the instantiate benchmark's plan once: a wide star
// whose leaves all sit on one level, so the π pass fans out fully.
func benchPlan(b *testing.B) *Plan {
	b.Helper()
	inst := workload.Star(8, 20000, 400, workload.UniformWeights(), 3)
	q, err := yannakakis.NewQuery(inst.H, inst.Rels)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := NewPlan(q)
	if err != nil {
		b.Fatal(err)
	}
	return plan
}

func benchInstantiate(b *testing.B, workers int) {
	plan := benchPlan(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Instantiate(ranking.SumCost{}, WithWorkers(workers)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInstantiateSequential(b *testing.B) { benchInstantiate(b, 1) }
func BenchmarkInstantiateParallel(b *testing.B)   { benchInstantiate(b, 0) }
