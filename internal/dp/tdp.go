// Package dp builds the tree-based dynamic program (T-DP) that underlies
// the any-k algorithms of Part 3 of the tutorial. Given an acyclic join
// query, the relations are full-reduced and arranged along the join tree
// in DFS preorder. Each tree node's tuples are partitioned into
// *candidate groups* by their join key with the parent; every group
// carries the suffix-optimal weight π of its best member, where
//
//	π(u, t) = w(t) ⊕ Σ_{c ∈ children(u)} bestπ(group of c selected by t)
//
// computed bottom-up (⊕ is the ranking aggregate's combine). A solution
// assigns one tuple to every node such that adjacent tuples join; its
// weight is the aggregate of all node weights. The top-1 solution falls
// out of a greedy descent, and the enumeration algorithms in
// internal/core produce all remaining solutions in weight order.
package dp

import (
	"context"
	"fmt"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/ranking"
	"repro/internal/relation"
	"repro/internal/yannakakis"
)

// Plan is the aggregate-independent part of the compiled dynamic
// program: the full-reduced relations arranged along the join tree, the
// candidate grouping, and the parent→child group maps. Building it is
// the expensive step (semi-join sweeps plus hash grouping); Instantiate
// then derives a TDP for any ranking aggregate with a single bottom-up
// π pass. A Plan is immutable after NewPlan and safe to share across
// goroutines and instantiations.
//
// Both steps accept Options: WithWorkers(n) fans the per-node work out
// on a bounded pool (the grouping of NewPlan across all nodes at once;
// the π pass of Instantiate one depth level at a time), and
// WithContext(ctx) makes them cancelable between node tasks. Parallel
// builds are bit-identical to sequential ones — each node's computation
// runs unchanged on exactly one goroutine, only the interleaving across
// nodes varies — so π arrays, group bests, and every downstream
// enumeration are the same for any worker count.
type Plan struct {
	nodes    []*Node // Pi and Group bests left zero; filled per instantiation
	outAttrs []string
	emits    []emitSpec
	// levels partitions preorder positions by tree depth (levels[0] is
	// the root). Nodes of one level are pairwise unrelated, so a
	// level-synchronized sweep only reads π state finalised by deeper
	// levels — the invariant the parallel Instantiate relies on.
	levels [][]int
	// red keeps the reducer's bottom-up intermediates (aligned with
	// tree node ids, not preorder positions) so NewPlanDelta can re-run
	// semi-joins only along the paths a delta reached.
	red *yannakakis.Reduction
}

// config collects the per-call options of NewPlan and Instantiate.
type config struct {
	ctx     context.Context
	workers int
}

// Option configures one NewPlan or Instantiate call. The defaults are
// fully sequential execution under context.Background().
type Option func(*config)

// WithWorkers sets how many workers the per-node tasks fan out on;
// n <= 0 selects GOMAXPROCS. The result is bit-identical to the
// sequential build for any worker count.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = parallel.Degree(n) }
}

// WithContext attaches a cancellation context: cancellation is checked
// between node tasks, and a canceled call returns ctx.Err() and no
// result.
func WithContext(ctx context.Context) Option {
	return func(c *config) { c.ctx = ctx }
}

func newConfig(opts []Option) config {
	//anykvet:allow ctxplumb -- documented option default; callers attach cancellation via WithContext
	c := config{ctx: context.Background(), workers: 1}
	for _, o := range opts {
		o(&c)
	}
	return c
}

// OutAttrs is the output schema every instantiated TDP will use.
func (p *Plan) OutAttrs() []string { return p.outAttrs }

// TotalTuples is the number of tuples across all reduced relations of
// the plan — the input size of one Instantiate pass. The facade's
// default-parallelism threshold consults it to decide whether fanning
// the π computation out is worth the scheduling overhead.
func (p *Plan) TotalTuples() int {
	total := 0
	for _, n := range p.nodes {
		total += n.Rel.Len()
	}
	return total
}

// Empty reports whether the compiled query has no results.
func (p *Plan) Empty() bool { return p.nodes[0].Rel.Len() == 0 }

// NumSolutions counts the query's results from the reduced plan alone —
// no ranking instantiation needed.
func (p *Plan) NumSolutions() int { return countSolutions(p.nodes) }

// TDP is the compiled dynamic program for one acyclic query instance.
type TDP struct {
	Agg ranking.Aggregate
	// Nodes in DFS preorder: Nodes[0] is the root; every node's parent
	// precedes it.
	Nodes []*Node
	// OutAttrs is the output schema (query variables in first-appearance
	// order over the preorder).
	OutAttrs []string
	emits    []emitSpec
}

// Node is one join-tree node of the T-DP.
type Node struct {
	// Rel is the full-reduced relation, renamed to query variables.
	Rel *relation.Relation
	// Parent is the preorder position of the parent (-1 for the root).
	Parent int
	// Children are preorder positions of children.
	Children []int
	// Groups partitions Rel's rows by their join key with the parent.
	// The root has exactly one group holding every row.
	Groups []Group
	// GroupOfRow maps each row to its group index.
	GroupOfRow []int32
	// ChildGroup[ci][row] is the group index in child Children[ci]
	// selected by this node's row (-1 never occurs after full reduction).
	ChildGroup [][]int32
	// Pi[row] is the suffix-optimal weight of the subtree rooted here
	// when this node picks row.
	Pi []float64
}

// Group is a candidate set: the rows of a node sharing one parent key.
type Group struct {
	Rows []int32
	// BestIdx is the position within Rows of the row minimising Pi
	// (by the aggregate's order); BestPi is that value.
	BestIdx int32
	BestPi  float64
}

type emitSpec struct {
	node   int
	col    int
	outPos int
}

// Build compiles the T-DP for the query with the given ranking aggregate.
// The query result is empty iff the root node ends up with zero rows.
// It is NewPlan followed by Instantiate; prepared execution keeps the
// Plan and re-instantiates per aggregate instead.
func Build(q *yannakakis.Query, agg ranking.Aggregate) (*TDP, error) {
	p, err := NewPlan(q)
	if err != nil {
		return nil, err
	}
	return p.Instantiate(agg)
}

// NewPlan runs the aggregate-independent compilation: full reduction,
// preorder layout along the join tree, candidate grouping by parent key,
// and the parent-row → child-group maps. With WithWorkers(n) the full
// reducer's semi-join sweeps run level-synchronized and the per-node
// grouping — independent across nodes: each task hashes its own rows
// and writes only its own node's Groups/GroupOfRow plus its private
// ChildGroup slot on the parent — fans out across all nodes at once.
func NewPlan(q *yannakakis.Query, opts ...Option) (*Plan, error) {
	cfg := newConfig(opts)
	var sp *obs.Span
	cfg.ctx, sp = obs.StartSpan(cfg.ctx, "plan-build")
	defer sp.End()
	red, err := q.ReduceKeep(cfg.ctx, cfg.workers)
	if err != nil {
		return nil, err
	}
	tree := q.Tree
	m := len(tree.Order)

	// posOf maps hypergraph edge index -> preorder position.
	posOf := make([]int, m)
	for pos, edge := range tree.Order {
		posOf[edge] = pos
	}

	t := &Plan{nodes: make([]*Node, m), red: red}
	for pos, edge := range tree.Order {
		n := &Node{Rel: red.Final[edge], Parent: -1}
		if p := tree.Parent[edge]; p >= 0 {
			n.Parent = posOf[p]
		}
		for _, c := range tree.Children[edge] {
			n.Children = append(n.Children, posOf[c])
		}
		if len(n.Children) > 0 {
			// Preallocated so concurrent grouping tasks write disjoint
			// ChildGroup slots without racing on the slice header.
			n.ChildGroup = make([][]int32, len(n.Children))
		}
		t.nodes[pos] = n
	}

	// Depth levels, mapped from tree-node ids to preorder positions
	// (each level stays in preorder sequence, i.e. ascending positions).
	for _, lv := range tree.Levels() {
		poss := make([]int, len(lv))
		for i, u := range lv {
			poss[i] = posOf[u]
		}
		t.levels = append(t.levels, poss)
	}

	// Output schema and emit map.
	seen := make(map[string]bool)
	for pos, n := range t.nodes {
		for col, v := range n.Rel.Attrs {
			if !seen[v] {
				seen[v] = true
				t.emits = append(t.emits, emitSpec{node: pos, col: col, outPos: len(t.outAttrs)})
				t.outAttrs = append(t.outAttrs, v)
			}
		}
	}

	// Group rows by parent key, one independent task per node.
	gctx, gsp := obs.StartSpan(cfg.ctx, "group")
	err = parallel.ForEach(gctx, cfg.workers, m, func(pos int) error {
		return groupNode(t.nodes, pos)
	})
	gsp.End()
	if err != nil {
		return nil, err
	}
	return t, nil
}

// groupNode partitions node pos's rows into candidate groups by their
// join key with the parent and resolves the parent's rows to those
// groups. It writes only pos's own Groups/GroupOfRow and the
// ChildGroup slot the parent reserves for pos, so tasks for different
// nodes never touch the same memory.
func groupNode(nodes []*Node, pos int) error {
	n := nodes[pos]
	if n.Parent < 0 {
		rows := make([]int32, n.Rel.Len())
		for i := range rows {
			rows[i] = int32(i)
		}
		n.Groups = []Group{{Rows: rows}}
		n.GroupOfRow = make([]int32, n.Rel.Len())
		return nil
	}
	parent := nodes[n.Parent]
	shared := parent.Rel.SharedAttrs(n.Rel)
	if len(shared) == 0 {
		return fmt.Errorf("dp: node %d shares no attributes with its parent (tree edge would be a cartesian product)", pos)
	}
	selfCols, err := n.Rel.AttrIndexes(shared)
	if err != nil {
		return err
	}
	groupIndex := make(map[string]int32)
	n.GroupOfRow = make([]int32, n.Rel.Len())
	var buf []byte
	key := make([]relation.Value, len(selfCols))
	for row, tp := range n.Rel.Tuples {
		for k, c := range selfCols {
			key[k] = tp[c]
		}
		buf = relation.AppendKey(buf[:0], key)
		gi, ok := groupIndex[string(buf)]
		if !ok {
			gi = int32(len(n.Groups))
			groupIndex[string(buf)] = gi
			n.Groups = append(n.Groups, Group{})
		}
		n.Groups[gi].Rows = append(n.Groups[gi].Rows, int32(row))
		n.GroupOfRow[row] = gi
	}
	// Parent rows resolve to this node's groups.
	pCols, err := parent.Rel.AttrIndexes(shared)
	if err != nil {
		return err
	}
	cg := make([]int32, parent.Rel.Len())
	for row, tp := range parent.Rel.Tuples {
		for k, c := range pCols {
			key[k] = tp[c]
		}
		buf = relation.AppendKey(buf[:0], key)
		gi, ok := groupIndex[string(buf)]
		if !ok {
			gi = -1 // dangling parent row: impossible after full reduction
		}
		cg[row] = gi
	}
	// Locate this child's index within the parent's Children.
	for i, c := range parent.Children {
		if c == pos {
			parent.ChildGroup[i] = cg
			break
		}
	}
	return nil
}

// Instantiate derives the T-DP for one ranking aggregate: it copies the
// plan's skeleton (sharing the reduced relations, groupings, and child
// maps) and runs the bottom-up π computation. The cost is linear in the
// reduced database — no hypergraph analysis, reduction, or hashing is
// repeated. The plan itself is not modified, so instantiations for
// different aggregates may proceed from one plan.
//
// With WithWorkers(n) the π pass is level-synchronized: the tree is
// processed bottom-up one depth level at a time, and the nodes of a
// level — whose π values depend only on deeper levels, already
// finalised behind a barrier — fan out on the worker pool. Every node's
// π array and group bests are computed by exactly one task running the
// unchanged sequential loop, so the result is bit-identical to the
// sequential instantiation for any worker count and any schedule.
// WithContext makes the pass cancelable between node tasks; a canceled
// Instantiate returns ctx.Err() and no TDP.
func (p *Plan) Instantiate(agg ranking.Aggregate, opts ...Option) (*TDP, error) {
	cfg := newConfig(opts)
	var sp *obs.Span
	cfg.ctx, sp = obs.StartSpan(cfg.ctx, "instantiate")
	sp.SetAttr("ranking", agg.Name())
	defer sp.End()
	m := len(p.nodes)
	t := &TDP{Agg: agg, Nodes: make([]*Node, m), OutAttrs: p.outAttrs, emits: p.emits}
	for pos, sn := range p.nodes {
		n := &Node{
			Rel:        sn.Rel,
			Parent:     sn.Parent,
			Children:   sn.Children,
			GroupOfRow: sn.GroupOfRow,
			ChildGroup: sn.ChildGroup,
			// Groups are value structs: copying the slice shares each
			// group's Rows but gives this instantiation its own
			// BestIdx/BestPi fields.
			Groups: append([]Group(nil), sn.Groups...),
		}
		t.Nodes[pos] = n
	}

	// Bottom-up π computation, deepest level first (children of a node
	// always sit exactly one level deeper, so their group bests are
	// final when the node's level runs).
	for li := len(p.levels) - 1; li >= 0; li-- {
		lv := p.levels[li]
		if err := parallel.ForEach(cfg.ctx, cfg.workers, len(lv), func(i int) error {
			return instantiateNode(t, agg, lv[i])
		}); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// instantiateNode computes node pos's π array and per-group bests. It
// reads only the group bests of pos's children (one level deeper,
// finalised behind the previous level's barrier) and writes only pos's
// own state.
func instantiateNode(t *TDP, agg ranking.Aggregate, pos int) error {
	n := t.Nodes[pos]
	n.Pi = make([]float64, n.Rel.Len())
	for row := range n.Rel.Tuples {
		pi := n.Rel.Weights[row]
		for ci, c := range n.Children {
			gi := n.ChildGroup[ci][row]
			if gi < 0 {
				return fmt.Errorf("dp: dangling row survived full reduction at node %d", pos)
			}
			pi = agg.Combine(pi, t.Nodes[c].Groups[gi].BestPi)
		}
		n.Pi[row] = pi
	}
	for gi := range n.Groups {
		g := &n.Groups[gi]
		if len(g.Rows) == 0 {
			continue
		}
		g.BestIdx = 0
		g.BestPi = n.Pi[g.Rows[0]]
		for i := 1; i < len(g.Rows); i++ {
			if agg.Less(n.Pi[g.Rows[i]], g.BestPi) {
				g.BestIdx = int32(i)
				g.BestPi = n.Pi[g.Rows[i]]
			}
		}
	}
	return nil
}

// Empty reports whether the query has no results.
func (t *TDP) Empty() bool { return t.Nodes[0].Rel.Len() == 0 }

// TopWeight returns the weight of the best solution. It must not be
// called when Empty.
func (t *TDP) TopWeight() float64 { return t.Nodes[0].Groups[0].BestPi }

// GroupFor returns the group index of node pos selected by the current
// assignment of its parent (rows must have the parent's row filled in).
// For the root it is always 0.
func (t *TDP) GroupFor(pos int, rows []int32) int32 {
	n := t.Nodes[pos]
	if n.Parent < 0 {
		return 0
	}
	parent := t.Nodes[n.Parent]
	ci := 0
	for i, c := range parent.Children {
		if c == pos {
			ci = i
			break
		}
	}
	return parent.ChildGroup[ci][rows[n.Parent]]
}

// ChildIndex returns the position of child c within parent p's Children.
func (t *TDP) ChildIndex(p, c int) int {
	for i, cc := range t.Nodes[p].Children {
		if cc == c {
			return i
		}
	}
	panic("dp: not a child")
}

// GreedyComplete fills rows[from..] with each node's group-best row,
// descending in preorder. rows[0..from-1] must already be assigned.
func (t *TDP) GreedyComplete(rows []int32, from int) {
	for pos := from; pos < len(t.Nodes); pos++ {
		n := t.Nodes[pos]
		gi := t.GroupFor(pos, rows)
		g := &n.Groups[gi]
		rows[pos] = g.Rows[g.BestIdx]
	}
}

// SolutionWeight computes the aggregate weight of a full assignment.
func (t *TDP) SolutionWeight(rows []int32) float64 {
	w := t.Agg.Identity()
	for pos, n := range t.Nodes {
		w = t.Agg.Combine(w, n.Rel.Weights[rows[pos]])
	}
	return w
}

// Emit renders a full assignment as an output tuple.
func (t *TDP) Emit(rows []int32) relation.Tuple {
	out := make(relation.Tuple, len(t.OutAttrs))
	for _, sp := range t.emits {
		out[sp.outPos] = t.Nodes[sp.node].Rel.Tuples[rows[sp.node]][sp.col]
	}
	return out
}

// NumSolutions counts the solutions of the T-DP (for tests and the batch
// baseline's pre-sizing) by a bottom-up counting pass.
func (t *TDP) NumSolutions() int { return countSolutions(t.Nodes) }

func countSolutions(nodes []*Node) int {
	m := len(nodes)
	counts := make([][]int, m)
	for pos := m - 1; pos >= 0; pos-- {
		n := nodes[pos]
		counts[pos] = make([]int, n.Rel.Len())
		for row := range n.Rel.Tuples {
			c := 1
			for ci, child := range n.Children {
				gi := n.ChildGroup[ci][row]
				sub := 0
				for _, r := range nodes[child].Groups[gi].Rows {
					sub += counts[child][r]
				}
				c *= sub
			}
			counts[pos][row] = c
		}
	}
	total := 0
	for _, c := range counts[0] {
		total += c
	}
	return total
}
