package dp

import (
	"fmt"
	"strconv"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/ranking"
	"repro/internal/relation"
	"repro/internal/yannakakis"
)

// DeltaStats reports how much of an incremental rebuild was reused.
type DeltaStats struct {
	// Nodes is the join-tree size; Regrouped counts the nodes whose
	// candidate grouping had to be rebuilt (the rest share the old
	// plan's groupings and reduced relations).
	Nodes     int
	Regrouped int
	// Changed flags, per preorder position, the nodes whose full-reduced
	// content differs from the old plan — the seed set InstantiateDelta
	// propagates π recomputation from.
	Changed []bool
}

// NewPlanDelta recompiles the aggregate-independent plan for q — the
// same query shape whose relations received delta batches — reusing the
// old plan wherever the delta provably didn't reach. changedBase flags,
// per tree node (hyperedge index), the base relations whose content
// differs from the ones old was built on; the semi-join sweeps then
// re-run only along paths through changed relations, stopping as soon
// as a recomputed result matches the old epoch's (see
// yannakakis.ReduceDelta). The expensive per-node hash grouping is
// redone only for nodes whose reduced content changed, or whose
// parent's did (the parent-row → child-group map hangs off both
// endpoints). Unchanged nodes share the old plan's relations,
// groupings, and child maps, so the result is bit-identical to a cold
// NewPlan on the updated inputs. A nil changedBase (or an old plan
// whose tree no longer matches q's) falls back to a full reduction
// with every node treated as changed-unless-content-equal.
func NewPlanDelta(q *yannakakis.Query, old *Plan, changedBase []bool, opts ...Option) (*Plan, *DeltaStats, error) {
	cfg := newConfig(opts)
	var sp *obs.Span
	cfg.ctx, sp = obs.StartSpan(cfg.ctx, "plan-delta")
	defer sp.End()
	tree := q.Tree
	m := len(tree.Order)

	posOf := make([]int, m)
	for pos, edge := range tree.Order {
		posOf[edge] = pos
	}

	match := planMatchesTree(old, q, posOf)
	var red *yannakakis.Reduction
	var dirty []bool // by tree node id; nil means diff by content below
	var err error
	if match && old.red != nil && len(changedBase) == m {
		red, dirty, err = q.ReduceDelta(cfg.ctx, cfg.workers, old.red, changedBase)
	} else {
		red, err = q.ReduceKeep(cfg.ctx, cfg.workers)
	}
	if err != nil {
		return nil, nil, err
	}

	t := &Plan{nodes: make([]*Node, m), red: red}
	for pos, edge := range tree.Order {
		n := &Node{Rel: red.Final[edge], Parent: -1}
		if p := tree.Parent[edge]; p >= 0 {
			n.Parent = posOf[p]
		}
		for _, c := range tree.Children[edge] {
			n.Children = append(n.Children, posOf[c])
		}
		if len(n.Children) > 0 {
			n.ChildGroup = make([][]int32, len(n.Children))
		}
		t.nodes[pos] = n
	}
	for _, lv := range tree.Levels() {
		poss := make([]int, len(lv))
		for i, u := range lv {
			poss[i] = posOf[u]
		}
		t.levels = append(t.levels, poss)
	}
	seen := make(map[string]bool)
	for pos, n := range t.nodes {
		for col, v := range n.Rel.Attrs {
			if !seen[v] {
				seen[v] = true
				t.emits = append(t.emits, emitSpec{node: pos, col: col, outPos: len(t.outAttrs)})
				t.outAttrs = append(t.outAttrs, v)
			}
		}
	}

	st := &DeltaStats{Nodes: m, Changed: make([]bool, m)}
	if !match {
		// No old plan to diff against (or the tree changed shape, which a
		// pure data delta cannot cause): group everything.
		for pos := range st.Changed {
			st.Changed[pos] = true
		}
		st.Regrouped = m
		if err := parallel.ForEach(cfg.ctx, cfg.workers, m, func(pos int) error {
			return groupNode(t.nodes, pos)
		}); err != nil {
			return nil, nil, err
		}
		return t, st, nil
	}

	for pos, edge := range tree.Order {
		changed := false
		if dirty != nil {
			// The incremental reducer already proved clean nodes equal.
			changed = dirty[edge]
		} else {
			changed = !sameRelation(t.nodes[pos].Rel, old.nodes[pos].Rel)
		}
		if changed {
			st.Changed[pos] = true
		} else {
			// Identical content: share the old reduced relation so clean
			// subtrees alias one allocation across epochs.
			t.nodes[pos].Rel = old.nodes[pos].Rel
		}
	}

	var regroup []int
	for pos, n := range t.nodes {
		if st.Changed[pos] || (n.Parent >= 0 && st.Changed[n.Parent]) {
			regroup = append(regroup, pos)
			continue
		}
		on := old.nodes[pos]
		t.nodes[pos].Groups = on.Groups
		t.nodes[pos].GroupOfRow = on.GroupOfRow
		// This node's slot on its parent is reused too: copy it up front
		// so a concurrent groupNode for a sibling never reads a nil slot.
		if p := t.nodes[pos].Parent; p >= 0 {
			for ci, c := range t.nodes[p].Children {
				if c == pos {
					t.nodes[p].ChildGroup[ci] = old.nodes[p].ChildGroup[ci]
					break
				}
			}
		}
	}
	st.Regrouped = len(regroup)
	if err := parallel.ForEach(cfg.ctx, cfg.workers, len(regroup), func(i int) error {
		return groupNode(t.nodes, regroup[i])
	}); err != nil {
		return nil, nil, err
	}
	sp.SetAttr("nodes", strconv.Itoa(st.Nodes))
	sp.SetAttr("regrouped", strconv.Itoa(st.Regrouped))
	return t, st, nil
}

// planMatchesTree reports whether old lays out exactly the join tree
// of q (same preorder positions, parent/child wiring, and attribute
// names) — the precondition for position-wise delta comparison and for
// reusing old's reduction intermediates.
func planMatchesTree(old *Plan, q *yannakakis.Query, posOf []int) bool {
	tree := q.Tree
	if old == nil || len(old.nodes) != len(tree.Order) {
		return false
	}
	for pos, edge := range tree.Order {
		n := old.nodes[pos]
		wantParent := -1
		if p := tree.Parent[edge]; p >= 0 {
			wantParent = posOf[p]
		}
		if n.Parent != wantParent || len(n.Children) != len(tree.Children[edge]) {
			return false
		}
		for i, c := range tree.Children[edge] {
			if n.Children[i] != posOf[c] {
				return false
			}
		}
		vars := q.H.Edges[edge].Vars
		if len(n.Rel.Attrs) != len(vars) {
			return false
		}
		for i, v := range vars {
			if n.Rel.Attrs[i] != v {
				return false
			}
		}
	}
	return true
}

// sameRelation reports exact content equality: same attribute order,
// same tuples in the same row order, bit-equal weights. Row order
// matters — groupings index rows by position.
func sameRelation(a, b *relation.Relation) bool {
	if a.Len() != b.Len() || a.Arity() != b.Arity() {
		return false
	}
	for i := range a.Tuples {
		if a.Weights[i] != b.Weights[i] {
			return false
		}
		bt := b.Tuples[i]
		for j, v := range a.Tuples[i] {
			if v != bt[j] {
				return false
			}
		}
	}
	return true
}

// InstantiateDelta derives the T-DP for agg the way Instantiate does,
// but patches the old instantiation instead of recomputing every π
// array: starting from the nodes whose reduced content changed, the
// bottom-up level-synchronized pass recomputes π only where needed and
// stops propagating upward as soon as a recomputed node's per-group
// bests come out bit-identical to the old epoch's — the parent's π
// inputs are then provably unchanged. changed must be the Changed
// vector of the NewPlanDelta call that produced p, and old an
// instantiation of the plan p was diffed against, for the same
// aggregate. It returns the new T-DP plus the number of nodes whose π
// pass actually ran.
func (p *Plan) InstantiateDelta(agg ranking.Aggregate, old *TDP, changed []bool, opts ...Option) (*TDP, int, error) {
	if old == nil {
		t, err := p.Instantiate(agg, opts...)
		return t, len(p.nodes), err
	}
	m := len(p.nodes)
	if len(old.Nodes) != m || len(changed) != m {
		return nil, 0, fmt.Errorf("dp: InstantiateDelta shape mismatch (%d plan nodes, %d old, %d changed flags)", m, len(old.Nodes), len(changed))
	}
	cfg := newConfig(opts)
	var sp *obs.Span
	cfg.ctx, sp = obs.StartSpan(cfg.ctx, "instantiate-delta")
	sp.SetAttr("ranking", agg.Name())
	defer sp.End()
	t := &TDP{Agg: agg, Nodes: make([]*Node, m), OutAttrs: p.outAttrs, emits: p.emits}
	dirty := make([]bool, m)
	copy(dirty, changed)
	bestsChanged := make([]bool, m)
	recomputed := 0

	for li := len(p.levels) - 1; li >= 0; li-- {
		lv := p.levels[li]
		var work []int
		for _, pos := range lv {
			for _, c := range p.nodes[pos].Children {
				if bestsChanged[c] {
					dirty[pos] = true
				}
			}
			if dirty[pos] {
				n := &Node{
					Rel:        p.nodes[pos].Rel,
					Parent:     p.nodes[pos].Parent,
					Children:   p.nodes[pos].Children,
					GroupOfRow: p.nodes[pos].GroupOfRow,
					ChildGroup: p.nodes[pos].ChildGroup,
					Groups:     append([]Group(nil), p.nodes[pos].Groups...),
				}
				t.Nodes[pos] = n
				work = append(work, pos)
			} else {
				// Clean subtree: the old node (π array, bests, maps) is
				// immutable after its build and identical to what a
				// recompute would produce — share it wholesale.
				t.Nodes[pos] = old.Nodes[pos]
			}
		}
		recomputed += len(work)
		if err := parallel.ForEach(cfg.ctx, cfg.workers, len(work), func(i int) error {
			pos := work[i]
			if err := instantiateNode(t, agg, pos); err != nil {
				return err
			}
			bestsChanged[pos] = groupBestsDiffer(t.Nodes[pos], old.Nodes[pos], changed[pos])
			return nil
		}); err != nil {
			return nil, 0, err
		}
	}
	sp.SetAttr("recomputed", strconv.Itoa(recomputed))
	sp.SetAttr("reused", strconv.Itoa(m-recomputed))
	return t, recomputed, nil
}

// groupBestsDiffer reports whether a recomputed node presents different
// π inputs to its parent than the old epoch's node did. When the node's
// reduced content changed, its group structure may have shifted, so the
// parent must recompute regardless; otherwise group indices align and
// only the per-group BestPi values matter.
func groupBestsDiffer(fresh, old *Node, contentChanged bool) bool {
	if contentChanged || len(fresh.Groups) != len(old.Groups) {
		return true
	}
	for gi := range fresh.Groups {
		if fresh.Groups[gi].BestPi != old.Groups[gi].BestPi {
			return true
		}
	}
	return false
}
