package yannakakis

import (
	"repro/internal/ranking"
	"repro/internal/relation"
)

// Result is one join result: the flat output tuple plus its aggregated
// weight.
type Result struct {
	Tuple  relation.Tuple
	Weight float64
}

// Enumerator produces the results of an acyclic query one at a time in
// unspecified order with constant delay (in data complexity) after linear
// preprocessing. This is the constant-delay enumeration baseline the
// tutorial connects to in §4: Õ(tprep + r) total time, but no ranking.
type Enumerator struct {
	q        *Query
	agg      ranking.Aggregate
	red      []*relation.Relation
	order    []int
	idx      []*relation.Index // per node: index on attrs shared with parent
	pCols    [][]int           // per node: parent's columns for those attrs
	outAttrs []string
	emits    []emitSpec

	// Iteration state: one candidate cursor per order position.
	cand    [][]int32
	pos     []int
	started bool
	done    bool
	key     []relation.Value
}

type emitSpec struct {
	orderPos int // position in DFS order
	col      int // column in that node's reduced relation
	outPos   int // position in the output tuple
}

// NewEnumerator prepares constant-delay enumeration: full reduction plus
// one hash index per tree edge.
func NewEnumerator(q *Query, agg ranking.Aggregate) *Enumerator {
	red := q.FullReduce()
	n := len(red)
	e := &Enumerator{
		q:     q,
		agg:   agg,
		red:   red,
		order: q.Tree.Order,
		idx:   make([]*relation.Index, n),
		pCols: make([][]int, n),
		cand:  make([][]int32, len(q.Tree.Order)),
		pos:   make([]int, len(q.Tree.Order)),
		key:   make([]relation.Value, 8),
	}
	for _, u := range e.order {
		p := q.Tree.Parent[u]
		if p < 0 {
			continue
		}
		shared := red[p].SharedAttrs(red[u])
		e.idx[u] = relation.MustIndex(red[u], shared...)
		cols, err := red[p].AttrIndexes(shared)
		if err != nil {
			panic(err)
		}
		e.pCols[u] = cols
	}
	// Output schema and emit map: each variable is emitted by the first
	// node (in DFS preorder) whose edge contains it.
	seen := make(map[string]bool)
	for opos, u := range e.order {
		for col, v := range red[u].Attrs {
			if !seen[v] {
				seen[v] = true
				e.emits = append(e.emits, emitSpec{orderPos: opos, col: col, outPos: len(e.outAttrs)})
				e.outAttrs = append(e.outAttrs, v)
			}
		}
	}
	return e
}

// OutputAttrs returns the output schema.
func (e *Enumerator) OutputAttrs() []string { return e.outAttrs }

// nodeAt returns the tree node at order position opos.
func (e *Enumerator) nodeAt(opos int) int { return e.order[opos] }

// orderPosOfParent maps an order position to its parent's order position.
func (e *Enumerator) orderPosOfParent(opos int) int {
	p := e.q.Tree.Parent[e.nodeAt(opos)]
	for i, u := range e.order {
		if u == p {
			return i
		}
	}
	return -1
}

// fill recomputes candidate lists for order positions from start onward,
// descending greedily. It reports false if some list is empty (possible
// only when a relation is empty, since full reduction guarantees global
// consistency).
func (e *Enumerator) fill(start int) bool {
	for opos := start; opos < len(e.order); opos++ {
		u := e.nodeAt(opos)
		if e.q.Tree.Parent[u] < 0 {
			rows := make([]int32, e.red[u].Len())
			for i := range rows {
				rows[i] = int32(i)
			}
			e.cand[opos] = rows
		} else {
			pp := e.orderPosOfParent(opos)
			parentRel := e.red[e.nodeAt(pp)]
			parentRow := e.cand[pp][e.pos[pp]]
			pt := parentRel.Tuples[parentRow]
			cols := e.pCols[u]
			if cap(e.key) < len(cols) {
				e.key = make([]relation.Value, len(cols))
			}
			key := e.key[:len(cols)]
			for k, c := range cols {
				key[k] = pt[c]
			}
			e.cand[opos] = e.idx[u].Lookup(key)
		}
		if len(e.cand[opos]) == 0 {
			return false
		}
		e.pos[opos] = 0
	}
	return true
}

// Next returns the next result. It reports false when enumeration is
// complete.
func (e *Enumerator) Next() (Result, bool) {
	if e.done {
		return Result{}, false
	}
	if !e.started {
		e.started = true
		if !e.fill(0) {
			e.done = true
			return Result{}, false
		}
		return e.emit(), true
	}
	// Odometer: advance the deepest position that still has candidates;
	// everything after it is refilled.
	for opos := len(e.order) - 1; opos >= 0; opos-- {
		if e.pos[opos]+1 < len(e.cand[opos]) {
			e.pos[opos]++
			if e.fill(opos + 1) {
				return e.emit(), true
			}
			// Full reduction guarantees fill succeeds; reaching here
			// means an empty relation, i.e. no results at all.
			e.done = true
			return Result{}, false
		}
	}
	e.done = true
	return Result{}, false
}

func (e *Enumerator) emit() Result {
	out := make(relation.Tuple, len(e.outAttrs))
	w := e.agg.Identity()
	for opos, u := range e.order {
		row := e.cand[opos][e.pos[opos]]
		w = e.agg.Combine(w, e.red[u].Weights[row])
	}
	for _, sp := range e.emits {
		u := e.nodeAt(sp.orderPos)
		row := e.cand[sp.orderPos][e.pos[sp.orderPos]]
		out[sp.outPos] = e.red[u].Tuples[row][sp.col]
	}
	return Result{Tuple: out, Weight: w}
}

// Drain collects at most limit results (limit ≤ 0 means all).
func (e *Enumerator) Drain(limit int) []Result {
	var out []Result
	for {
		r, ok := e.Next()
		if !ok {
			return out
		}
		out = append(out, r)
		if limit > 0 && len(out) >= limit {
			return out
		}
	}
}
