package yannakakis

import (
	"context"

	"repro/internal/join"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/relation"
)

// Reduction is the full reducer's output with the bottom-up
// intermediates kept, both aligned with tree node ids. Keeping the
// intermediates is what makes incremental re-reduction possible:
// BottomUp[u] depends only on u's base relation and its children's
// BottomUp values, and Final[u] only on BottomUp[u] and the parent's
// Final, so a delta to one base relation invalidates exactly the
// nodes on paths through it — everything else aliases the old epoch.
type Reduction struct {
	// BottomUp[u] is node u's relation after the bottom-up semi-join
	// sweep (reduced by its subtree, not yet by its ancestors).
	BottomUp []*relation.Relation
	// Final[u] is node u's fully reduced relation, identical to what
	// FullReduceWith returns.
	Final []*relation.Relation
}

// ReduceKeep is FullReduceWith keeping the bottom-up intermediates.
// Final is element-wise identical to FullReduceWith's result; the
// extra cost is one slice of relation headers (tuples are shared).
func (q *Query) ReduceKeep(ctx context.Context, workers int) (*Reduction, error) {
	ctx, sp := obs.StartSpan(ctx, "reduce")
	defer sp.End()
	n := len(q.Rels)
	bu := make([]*relation.Relation, n)
	for i := 0; i < n; i++ {
		bu[i] = q.queryRel(i)
	}
	levels := q.Tree.Levels()
	for li := len(levels) - 1; li >= 0; li-- {
		lv := levels[li]
		err := parallel.ForEach(ctx, workers, len(lv), func(i int) error {
			u := lv[i]
			for _, c := range q.Tree.Children[u] {
				bu[u] = join.SemiJoin(bu[u], bu[c])
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	fin := make([]*relation.Relation, n)
	copy(fin, bu)
	for _, lv := range levels {
		err := parallel.ForEach(ctx, workers, len(lv), func(i int) error {
			u := lv[i]
			if p := q.Tree.Parent[u]; p >= 0 {
				fin[u] = join.SemiJoin(bu[u], fin[p])
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return &Reduction{BottomUp: bu, Final: fin}, nil
}

// ReduceDelta re-runs the full reducer only along paths the delta
// actually reached. changedBase flags, per tree node, the base
// relations whose content differs from the run that produced old
// (which must come from ReduceKeep or ReduceDelta over the same join
// tree). A node's semi-joins are redone only while the propagated
// inputs differ from the old epoch's: the bottom-up sweep recomputes a
// node when its base changed or a child's bottom-up result changed,
// and stops propagating upward as soon as a recomputed result comes
// out content-identical to the old one; the top-down sweep mirrors
// that from the root. Everything untouched aliases the old epoch's
// relations, so the returned Final is bit-identical to a cold
// ReduceKeep over the new inputs.
//
// The returned dirty vector flags the nodes whose Final content
// differs from old.Final — the seed set for downstream incremental
// recomputation.
func (q *Query) ReduceDelta(ctx context.Context, workers int, old *Reduction, changedBase []bool) (*Reduction, []bool, error) {
	ctx, sp := obs.StartSpan(ctx, "reduce-delta")
	defer sp.End()
	n := len(q.Rels)
	if old == nil || len(old.BottomUp) != n || len(old.Final) != n || len(changedBase) != n {
		red, err := q.ReduceKeep(ctx, workers)
		if err != nil {
			return nil, nil, err
		}
		dirty := make([]bool, n)
		for i := range dirty {
			dirty[i] = true
		}
		return red, dirty, nil
	}

	bu := make([]*relation.Relation, n)
	buDirty := make([]bool, n)
	levels := q.Tree.Levels()
	for li := len(levels) - 1; li >= 0; li-- {
		lv := levels[li]
		var work []int
		for _, u := range lv {
			d := changedBase[u]
			for _, c := range q.Tree.Children[u] {
				d = d || buDirty[c]
			}
			if !d {
				bu[u] = old.BottomUp[u]
				continue
			}
			buDirty[u] = true
			work = append(work, u)
		}
		// Recomputed nodes of one level are pairwise unrelated: each
		// reads only bu slots finalised by deeper levels and writes only
		// its own bu/buDirty slot.
		err := parallel.ForEach(ctx, workers, len(work), func(i int) error {
			u := work[i]
			r := q.queryRel(u)
			for _, c := range q.Tree.Children[u] {
				r = join.SemiJoin(r, bu[c])
			}
			if sameContent(r, old.BottomUp[u]) {
				// The delta didn't reach this node's output (appends that
				// dangle, deletes of dangling rows, or changes absorbed by
				// a child's semi-join): alias the old epoch and stop the
				// upward propagation here.
				bu[u] = old.BottomUp[u]
				buDirty[u] = false
			} else {
				bu[u] = r
			}
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
	}

	fin := make([]*relation.Relation, n)
	dirty := make([]bool, n)
	for _, lv := range levels {
		var work []int
		for _, u := range lv {
			d := buDirty[u]
			if p := q.Tree.Parent[u]; p >= 0 {
				d = d || dirty[p]
			}
			if !d {
				fin[u] = old.Final[u]
				continue
			}
			dirty[u] = true
			work = append(work, u)
		}
		err := parallel.ForEach(ctx, workers, len(work), func(i int) error {
			u := work[i]
			r := bu[u]
			if p := q.Tree.Parent[u]; p >= 0 {
				r = join.SemiJoin(bu[u], fin[p])
			}
			if sameContent(r, old.Final[u]) {
				fin[u] = old.Final[u]
				dirty[u] = false
			} else {
				fin[u] = r
			}
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
	}
	return &Reduction{BottomUp: bu, Final: fin}, dirty, nil
}

// sameContent reports exact content equality — same tuples in the same
// row order, bit-equal weights — which is the right notion here
// because semi-joins preserve left row order, so equal inputs always
// reproduce the old output verbatim. Shared backing arrays (epochs
// alias unchanged relations) short-circuit the scan.
func sameContent(a, b *relation.Relation) bool {
	if a == b {
		return true
	}
	if a.Len() != b.Len() || a.Arity() != b.Arity() {
		return false
	}
	if a.Len() == 0 {
		return true
	}
	if &a.Tuples[0] == &b.Tuples[0] && &a.Weights[0] == &b.Weights[0] {
		return true
	}
	for i, at := range a.Tuples {
		if a.Weights[i] != b.Weights[i] {
			return false
		}
		bt := b.Tuples[i]
		if len(at) > 0 && &at[0] == &bt[0] {
			continue // rows are shared slices across epochs
		}
		for j, v := range at {
			if v != bt[j] {
				return false
			}
		}
	}
	return true
}
