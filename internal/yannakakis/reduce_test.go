package yannakakis

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/relation"
)

// applyBatch returns rels with a delta applied to relation i: drop
// rows whose index is in del, then append app rows. The original
// relations are shared for every other index (the aliasing ApplyDelta
// relies on).
func applyBatch(rels []*relation.Relation, i int, del map[int]bool, app [][2]relation.Value, appW []float64) ([]*relation.Relation, []bool) {
	out := append([]*relation.Relation(nil), rels...)
	r := relation.New(rels[i].Name, rels[i].Attrs...)
	for j, t := range rels[i].Tuples {
		if !del[j] {
			r.AddTuple(t, rels[i].Weights[j])
		}
	}
	for j, t := range app {
		r.AddWeighted(appW[j], t[0], t[1])
	}
	out[i] = r
	changed := make([]bool, len(rels))
	changed[i] = true
	return out, changed
}

// TestReduceDeltaMatchesReduceKeep drives random append/delete batches
// through ReduceDelta and asserts the result is element-wise
// content-identical to a cold ReduceKeep on the updated relations —
// including danglers that a batch revives or kills — on path and star
// trees, sequentially and on a worker pool.
func TestReduceDeltaMatchesReduceKeep(t *testing.T) {
	ctx := context.Background()
	shapes := []struct {
		name string
		h    *hypergraph.Hypergraph
	}{
		{"path5", hypergraph.Path(5)},
		{"star4", hypergraph.Star(4)},
	}
	for _, sh := range shapes {
		for _, workers := range []int{1, 4} {
			rng := rand.New(rand.NewSource(11))
			l := len(sh.h.Edges)
			rels := make([]*relation.Relation, l)
			for i, e := range sh.h.Edges {
				r := relation.New("R"+string(rune('1'+i)), "a", "b")
				for j := 0; j < 40; j++ {
					r.AddWeighted(rng.Float64(), relation.Value(rng.Intn(12)), relation.Value(rng.Intn(12)))
				}
				rels[i] = r
				_ = e
			}
			old, err := mustQuery(t, sh.h, rels).ReduceKeep(ctx, workers)
			if err != nil {
				t.Fatal(err)
			}
			for step := 0; step < 8; step++ {
				i := rng.Intn(l)
				del := map[int]bool{}
				for d := rng.Intn(4); d > 0; d-- {
					del[rng.Intn(rels[i].Len())] = true
				}
				var app [][2]relation.Value
				var appW []float64
				for a := rng.Intn(4); a > 0; a-- {
					app = append(app, [2]relation.Value{relation.Value(rng.Intn(14)), relation.Value(rng.Intn(14))})
					appW = append(appW, rng.Float64())
				}
				newRels, changed := applyBatch(rels, i, del, app, appW)
				q := mustQuery(t, sh.h, newRels)
				got, dirty, err := q.ReduceDelta(ctx, workers, old, changed)
				if err != nil {
					t.Fatal(err)
				}
				want, err := q.ReduceKeep(ctx, workers)
				if err != nil {
					t.Fatal(err)
				}
				for u := 0; u < l; u++ {
					if !sameContent(got.BottomUp[u], want.BottomUp[u]) {
						t.Fatalf("%s workers=%d step %d: bottom-up relation %d differs from cold reduce", sh.name, workers, step, u)
					}
					if !sameContent(got.Final[u], want.Final[u]) {
						t.Fatalf("%s workers=%d step %d: final relation %d differs from cold reduce", sh.name, workers, step, u)
					}
					if !dirty[u] && got.Final[u] != old.Final[u] {
						t.Fatalf("%s workers=%d step %d: clean node %d does not alias the old epoch", sh.name, workers, step, u)
					}
					if dirty[u] && sameContent(got.Final[u], old.Final[u]) {
						t.Fatalf("%s workers=%d step %d: node %d flagged dirty but content is unchanged", sh.name, workers, step, u)
					}
				}
				rels, old = newRels, got
			}
		}
	}
}

// TestReduceDeltaStopsCleanPaths pins the short-circuit: an append
// that dangles (its join value exists nowhere else) must leave every
// node but the appended one aliasing the old epoch.
func TestReduceDeltaStopsCleanPaths(t *testing.T) {
	h := hypergraph.Path(4)
	rels := make([]*relation.Relation, 4)
	for i := 0; i < 4; i++ {
		r := relation.New("R"+string(rune('1'+i)), "a", "b")
		for v := relation.Value(0); v < 10; v++ {
			r.AddWeighted(float64(v), v, v)
		}
		rels[i] = r
	}
	old, err := mustQuery(t, h, rels).ReduceKeep(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Value 99 appears only in the appended row of relation 0: the row
	// is dangling, so every reduced relation is unchanged.
	newRels, changed := applyBatch(rels, 0, nil, [][2]relation.Value{{99, 99}}, []float64{1})
	q := mustQuery(t, h, newRels)
	got, dirty, err := q.ReduceDelta(context.Background(), 1, old, changed)
	if err != nil {
		t.Fatal(err)
	}
	want, err := q.ReduceKeep(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 4; u++ {
		if !sameContent(got.Final[u], want.Final[u]) {
			t.Fatalf("final relation %d differs from cold reduce", u)
		}
		if u == 0 {
			// Node 0's own final may keep the dangler (root) or shed it
			// (non-root); either way the dirty flag must agree.
			if dirty[u] != !sameContent(got.Final[u], old.Final[u]) {
				t.Error("appended node's dirty flag disagrees with its content")
			}
			continue
		}
		if dirty[u] {
			t.Errorf("node %d dirty after a dangling append", u)
		}
		if got.Final[u] != old.Final[u] {
			t.Errorf("node %d does not alias the old epoch after a dangling append", u)
		}
	}
}
