package yannakakis

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hypergraph"
	"repro/internal/relation"
)

func one(_, _ int, _ float64) float64 { return 1 }

func starQueryForAgg(t *testing.T, seedData [][3][2]relation.Value) *Query {
	t.Helper()
	h := hypergraph.Star(2)
	r1 := relation.New("R1", "X", "Y")
	r2 := relation.New("R2", "X", "Y")
	for _, d := range seedData {
		r1.AddWeighted(float64(d[0][0]+d[0][1]), d[0][0], d[0][1])
		r2.AddWeighted(float64(d[1][0]+d[1][1]), d[1][0], d[1][1])
	}
	return mustQuery(t, h, []*relation.Relation{r1, r2})
}

func TestCountingSemiringMatchesCount(t *testing.T) {
	q := starQueryForAgg(t, [][3][2]relation.Value{
		{{1, 10}, {1, 20}}, {{1, 11}, {2, 21}}, {{2, 12}, {1, 22}},
	})
	got := q.AnnotatedEval(CountingSemiring(), one)
	want := float64(q.Count())
	if got != want {
		t.Fatalf("semiring count = %g, Count() = %g", got, want)
	}
}

func TestMinTropicalMatchesBestResult(t *testing.T) {
	h := hypergraph.Path(2)
	r1 := relation.New("R1", "X", "Y")
	r1.AddWeighted(1, 1, 10)
	r1.AddWeighted(5, 1, 11)
	r2 := relation.New("R2", "X", "Y")
	r2.AddWeighted(10, 10, 100)
	r2.AddWeighted(1, 10, 101)
	r2.AddWeighted(0, 11, 100)
	q := mustQuery(t, h, []*relation.Relation{r1, r2})
	got := q.AnnotatedEval(MinTropicalSemiring(), nil)
	// Best: (1,10) w=1 + (10,101) w=1 = 2.
	if got != 2 {
		t.Fatalf("min-sum = %g, want 2", got)
	}
	gotMax := q.AnnotatedEval(MaxTropicalSemiring(), nil)
	// Worst: (1,10)+(10,100) = 11? vs (1,11)+(11,100) = 5 → 11.
	if gotMax != 11 {
		t.Fatalf("max-sum = %g, want 11", gotMax)
	}
}

func TestSumProductSemiring(t *testing.T) {
	h := hypergraph.Path(2)
	r1 := relation.New("R1", "X", "Y")
	r1.AddWeighted(2, 1, 10)
	r2 := relation.New("R2", "X", "Y")
	r2.AddWeighted(3, 10, 100)
	r2.AddWeighted(5, 10, 101)
	q := mustQuery(t, h, []*relation.Relation{r1, r2})
	// Results: (2·3) + (2·5) = 16.
	got := q.AnnotatedEval(SumWeightSemiring(), nil)
	if got != 16 {
		t.Fatalf("sum-product = %g, want 16", got)
	}
}

func TestAnnotatedEvalEmptyQuery(t *testing.T) {
	h := hypergraph.Path(2)
	r1 := relation.New("R1", "X", "Y")
	r1.Add(1, 2)
	r2 := relation.New("R2", "X", "Y")
	r2.Add(3, 4)
	q := mustQuery(t, h, []*relation.Relation{r1, r2})
	if got := q.AnnotatedEval(CountingSemiring(), one); got != 0 {
		t.Fatalf("count of empty = %g", got)
	}
	if got := q.AnnotatedEval(MinTropicalSemiring(), nil); !math.IsInf(got, 1) {
		t.Fatalf("min-sum of empty = %g, want +Inf", got)
	}
}

// Property: semiring count equals materialised count on random paths.
func TestSemiringCountProperty(t *testing.T) {
	f := func(d1, d2 []uint8) bool {
		r1 := relation.New("R1", "X", "Y")
		for i, v := range d1 {
			r1.AddWeighted(float64(i), relation.Value(v%4), relation.Value(v%5))
		}
		r2 := relation.New("R2", "X", "Y")
		for i, v := range d2 {
			r2.AddWeighted(float64(i), relation.Value(v%5), relation.Value(v%3))
		}
		q, err := NewQuery(hypergraph.Path(2), []*relation.Relation{r1, r2})
		if err != nil {
			return false
		}
		return q.AnnotatedEval(CountingSemiring(), one) == float64(q.Evaluate(sum).Len())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: min-tropical equals the minimum weight of the materialised
// result set.
func TestMinTropicalProperty(t *testing.T) {
	f := func(d1, d2 []uint8) bool {
		r1 := relation.New("R1", "X", "Y")
		for i, v := range d1 {
			r1.AddWeighted(float64(i%7), relation.Value(v%4), relation.Value(v%5))
		}
		r2 := relation.New("R2", "X", "Y")
		for i, v := range d2 {
			r2.AddWeighted(float64(i%5), relation.Value(v%5), relation.Value(v%3))
		}
		q, err := NewQuery(hypergraph.Path(2), []*relation.Relation{r1, r2})
		if err != nil {
			return false
		}
		out := q.Evaluate(sum)
		want := math.Inf(1)
		for _, w := range out.Weights {
			want = math.Min(want, w)
		}
		got := q.AnnotatedEval(MinTropicalSemiring(), nil)
		if math.IsInf(want, 1) {
			return math.IsInf(got, 1)
		}
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
