// Package yannakakis implements the Yannakakis algorithm for acyclic
// join queries (§3 of the tutorial): a full reducer built from two
// semi-join sweeps over a join tree, followed by either full-output
// evaluation in O(n + r) or constant-delay enumeration of the results.
//
// The full reducer leaves the database globally consistent: every tuple
// that survives participates in at least one result, so the join phase
// never generates dangling intermediate tuples.
package yannakakis

import (
	"context"
	"fmt"

	"repro/internal/hypergraph"
	"repro/internal/join"
	"repro/internal/parallel"
	"repro/internal/ranking"
	"repro/internal/relation"
)

// Query is an acyclic join query: relations aligned one-to-one with the
// hypergraph's edges, plus a join tree over them.
type Query struct {
	Rels []*relation.Relation
	H    *hypergraph.Hypergraph
	Tree *hypergraph.JoinTree
}

// NewQuery validates that rels match the hypergraph's edges (names and
// arities) and that the hypergraph is acyclic, then returns the query
// with its join tree.
func NewQuery(h *hypergraph.Hypergraph, rels []*relation.Relation) (*Query, error) {
	if len(rels) != len(h.Edges) {
		return nil, fmt.Errorf("yannakakis: %d relations for %d hyperedges", len(rels), len(h.Edges))
	}
	for i, e := range h.Edges {
		if len(e.Vars) != rels[i].Arity() {
			return nil, fmt.Errorf("yannakakis: edge %s has %d vars but relation %s arity %d",
				e.Name, len(e.Vars), rels[i].Name, rels[i].Arity())
		}
	}
	tree, ok := h.BuildJoinTree()
	if !ok {
		return nil, fmt.Errorf("yannakakis: query %s is cyclic", h)
	}
	return &Query{Rels: rels, H: h, Tree: tree}, nil
}

// queryRel returns the relation for tree node i with its attributes
// renamed to the hypergraph's variables, so joins are by query variable
// rather than by the relation's own attribute names. The tuples are
// shared with the input relation.
func (q *Query) queryRel(i int) *relation.Relation {
	e := q.H.Edges[i]
	r := q.Rels[i]
	out := relation.New(r.Name, e.Vars...)
	out.Tuples = r.Tuples
	out.Weights = r.Weights
	return out
}

// FullReduce runs the full reducer and returns the reduced relations
// (renamed to query variables), aligned with tree nodes. The input
// relations are not modified.
func (q *Query) FullReduce() []*relation.Relation {
	//anykvet:allow ctxplumb -- sequential reference path; the cancelable variant is FullReduceWith
	red, err := q.FullReduceWith(context.Background(), 1)
	if err != nil {
		// Unreachable: a background context never cancels and the sweeps
		// report no other errors.
		panic(err)
	}
	return red
}

// FullReduceWith is FullReduce on a bounded worker pool: each semi-join
// sweep processes the tree one depth level at a time, and the nodes of a
// level — which are pairwise unrelated, so each reads only relations
// finalised by an earlier level and writes only its own slot — fan out
// on at most workers goroutines. The reduced relations are identical to
// the sequential ones for any worker count (each node's semi-join chain
// runs unchanged; only the interleaving across nodes varies).
// Cancellation is checked between nodes; a canceled reduction returns
// ctx.Err() and no relations.
func (q *Query) FullReduceWith(ctx context.Context, workers int) ([]*relation.Relation, error) {
	n := len(q.Rels)
	red := make([]*relation.Relation, n)
	for i := 0; i < n; i++ {
		red[i] = q.queryRel(i)
	}
	levels := q.Tree.Levels()
	// Bottom-up pass: children reduce parents (deepest level first so
	// every node's children have already been processed).
	for li := len(levels) - 1; li >= 0; li-- {
		lv := levels[li]
		err := parallel.ForEach(ctx, workers, len(lv), func(i int) error {
			u := lv[i]
			for _, c := range q.Tree.Children[u] {
				red[u] = join.SemiJoin(red[u], red[c])
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	// Top-down pass: parents reduce children (root level first).
	for _, lv := range levels {
		err := parallel.ForEach(ctx, workers, len(lv), func(i int) error {
			u := lv[i]
			if p := q.Tree.Parent[u]; p >= 0 {
				red[u] = join.SemiJoin(red[u], red[p])
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return red, nil
}

// Evaluate computes the full join result with the Yannakakis algorithm:
// full reduction followed by joins along the tree. Tuple weights combine
// with agg. The output schema lists query variables in first-appearance
// order over the tree's DFS preorder.
func (q *Query) Evaluate(agg ranking.Aggregate) *relation.Relation {
	red := q.FullReduce()
	order := q.Tree.Order
	// Join children into parents bottom-up. After full reduction every
	// partial join is a subset of the final output projected onto the
	// subtree's variables, so intermediates stay output-bounded.
	acc := make([]*relation.Relation, len(red))
	copy(acc, red)
	for oi := len(order) - 1; oi >= 0; oi-- {
		u := order[oi]
		for _, c := range q.Tree.Children[u] {
			acc[u] = join.HashJoin(acc[u], acc[c], agg, nil)
		}
	}
	return acc[q.Tree.Root]
}

// Count returns the number of join results without materialising them,
// via a bottom-up counting pass over the reduced relations (the standard
// aggregate-over-join-tree trick).
func (q *Query) Count() int {
	red := q.FullReduce()
	order := q.Tree.Order
	// counts[u][row] = number of results of u's subtree consistent with
	// that row of u's reduced relation.
	counts := make([][]int, len(red))
	for i, r := range red {
		counts[i] = make([]int, r.Len())
		for j := range counts[i] {
			counts[i][j] = 1
		}
	}
	for oi := len(order) - 1; oi >= 0; oi-- {
		u := order[oi]
		for _, c := range q.Tree.Children[u] {
			shared := red[u].SharedAttrs(red[c])
			idx := relation.MustIndex(red[c], shared...)
			uCols, _ := red[u].AttrIndexes(shared)
			key := make([]relation.Value, len(uCols))
			for j, tp := range red[u].Tuples {
				for k, col := range uCols {
					key[k] = tp[col]
				}
				sum := 0
				for _, row := range idx.Lookup(key) {
					sum += counts[c][row]
				}
				counts[u][j] *= sum
			}
		}
	}
	total := 0
	for _, v := range counts[q.Tree.Root] {
		total += v
	}
	return total
}

// IsEmpty reports whether the query has no results, in O(n) after the
// bottom-up semi-join pass (the Boolean query of §1).
func (q *Query) IsEmpty() bool {
	n := len(q.Rels)
	red := make([]*relation.Relation, n)
	for i := 0; i < n; i++ {
		red[i] = q.queryRel(i)
	}
	order := q.Tree.Order
	for oi := len(order) - 1; oi >= 0; oi-- {
		u := order[oi]
		for _, c := range q.Tree.Children[u] {
			red[u] = join.SemiJoin(red[u], red[c])
		}
	}
	return red[q.Tree.Root].Len() == 0
}

// OutputAttrs returns the output schema: query variables in
// first-appearance order over the tree's DFS preorder.
func (q *Query) OutputAttrs() []string {
	seen := make(map[string]bool)
	var attrs []string
	for _, u := range q.Tree.Order {
		for _, v := range q.H.Edges[u].Vars {
			if !seen[v] {
				seen[v] = true
				attrs = append(attrs, v)
			}
		}
	}
	return attrs
}
