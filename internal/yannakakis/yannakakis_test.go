package yannakakis

import (
	"testing"
	"testing/quick"

	"repro/internal/hypergraph"
	"repro/internal/join"
	"repro/internal/ranking"
	"repro/internal/relation"
)

var sum = ranking.SumCost{}

// pathData builds relations for Path(l) with the given edge lists.
func pathData(l int, edges [][][2]relation.Value) []*relation.Relation {
	rels := make([]*relation.Relation, l)
	for i := 0; i < l; i++ {
		r := relation.New("R"+string(rune('1'+i)), "X", "Y")
		for _, e := range edges[i] {
			r.AddWeighted(float64(e[0]+e[1]), e[0], e[1])
		}
		rels[i] = r
	}
	return rels
}

func mustQuery(t *testing.T, h *hypergraph.Hypergraph, rels []*relation.Relation) *Query {
	t.Helper()
	q, err := NewQuery(h, rels)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestNewQueryValidation(t *testing.T) {
	h := hypergraph.Path(2)
	r := relation.New("R1", "X", "Y")
	if _, err := NewQuery(h, []*relation.Relation{r}); err == nil {
		t.Error("relation count mismatch should fail")
	}
	bad := relation.New("R2", "X")
	if _, err := NewQuery(h, []*relation.Relation{r, bad}); err == nil {
		t.Error("arity mismatch should fail")
	}
	ch := hypergraph.Cycle(3)
	r2 := relation.New("R2", "X", "Y")
	r3 := relation.New("R3", "X", "Y")
	if _, err := NewQuery(ch, []*relation.Relation{r, r2, r3}); err == nil {
		t.Error("cyclic query should fail")
	}
}

func TestEvaluateTwoPath(t *testing.T) {
	h := hypergraph.Path(2) // R1(A0,A1), R2(A1,A2)
	rels := pathData(2, [][][2]relation.Value{
		{{1, 10}, {2, 20}},
		{{10, 100}, {10, 101}, {30, 300}},
	})
	q := mustQuery(t, h, rels)
	out := q.Evaluate(sum)
	if out.Len() != 2 {
		t.Fatalf("output size = %d, want 2", out.Len())
	}
	// Weights: (1,10,100): (1+10)+(10+100)=121; (1,10,101): 11+111=122.
	total := out.Weights[0] + out.Weights[1]
	if total != 243 {
		t.Errorf("total weight = %g, want 243", total)
	}
}

func TestEvaluateMatchesBinaryPlan(t *testing.T) {
	h := hypergraph.Path(3)
	rels := pathData(3, [][][2]relation.Value{
		{{1, 2}, {1, 3}, {4, 5}},
		{{2, 6}, {3, 6}, {3, 7}, {5, 8}},
		{{6, 9}, {7, 9}, {8, 10}, {11, 12}},
	})
	q := mustQuery(t, h, rels)
	got := q.Evaluate(sum)

	// Reference: binary plan over renamed relations.
	renamed := make([]*relation.Relation, 3)
	for i := range rels {
		renamed[i] = relation.New(rels[i].Name, h.Edges[i].Vars...)
		renamed[i].Tuples = rels[i].Tuples
		renamed[i].Weights = rels[i].Weights
	}
	want, _ := join.NewPlan(sum, renamed[0], renamed[1], renamed[2]).Execute()
	if got.Len() != want.Len() {
		t.Fatalf("Yannakakis size %d != plan size %d", got.Len(), want.Len())
	}
	// The two evaluators may order output attributes differently; compare
	// after projecting onto a common order (Project preserves weights).
	gotAligned, err := got.Project(want.Attrs...)
	if err != nil {
		t.Fatal(err)
	}
	if !gotAligned.EqualAsSet(want) {
		t.Errorf("result sets differ:\n%v\n%v", gotAligned, want)
	}
}

func TestFullReduceRemovesDanglingTuples(t *testing.T) {
	h := hypergraph.Path(2)
	rels := pathData(2, [][][2]relation.Value{
		{{1, 10}, {2, 99}}, // (2,99) dangles
		{{10, 100}, {55, 500}},
	})
	q := mustQuery(t, h, rels)
	red := q.FullReduce()
	if red[0].Len() != 1 || red[1].Len() != 1 {
		t.Fatalf("reduced sizes = %d,%d, want 1,1", red[0].Len(), red[1].Len())
	}
	if red[0].Tuples[0][0] != 1 || red[1].Tuples[0][1] != 100 {
		t.Error("wrong tuples survived reduction")
	}
}

// Global consistency: every tuple surviving the full reducer participates
// in at least one result.
func TestFullReduceGlobalConsistencyProperty(t *testing.T) {
	f := func(e1, e2, e3 []uint8) bool {
		mk := func(name string, data []uint8, mod relation.Value) *relation.Relation {
			r := relation.New(name, "X", "Y")
			for i, v := range data {
				r.AddWeighted(float64(i), relation.Value(v)%mod, relation.Value(v/3)%mod)
			}
			return r
		}
		rels := []*relation.Relation{mk("R1", e1, 5), mk("R2", e2, 5), mk("R3", e3, 5)}
		h := hypergraph.Path(3)
		q, err := NewQuery(h, rels)
		if err != nil {
			return false
		}
		red := q.FullReduce()
		out := q.Evaluate(sum)
		// Project output onto each node's vars; reduced relation must be a
		// subset of it (as value sets).
		for i := range red {
			if out.Len() == 0 {
				if red[i].Len() != 0 {
					return false
				}
				continue
			}
			proj, err := out.Project(h.Edges[i].Vars...)
			if err != nil {
				return false
			}
			present := make(map[string]bool)
			var buf []byte
			for _, tp := range proj.Tuples {
				buf = relation.AppendKey(buf[:0], tp)
				present[string(buf)] = true
			}
			for _, tp := range red[i].Tuples {
				buf = relation.AppendKey(buf[:0], tp)
				if !present[string(buf)] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCountMatchesEvaluate(t *testing.T) {
	h := hypergraph.Star(3)
	r1 := relation.New("R1", "X", "Y")
	r2 := relation.New("R2", "X", "Y")
	r3 := relation.New("R3", "X", "Y")
	for i := relation.Value(0); i < 6; i++ {
		r1.Add(i%3, i)
		r2.Add(i%3, i+10)
		r3.Add(i%2, i+20)
	}
	q := mustQuery(t, h, []*relation.Relation{r1, r2, r3})
	if got, want := q.Count(), q.Evaluate(sum).Len(); got != want {
		t.Fatalf("Count = %d, Evaluate size = %d", got, want)
	}
}

func TestIsEmpty(t *testing.T) {
	h := hypergraph.Path(2)
	rels := pathData(2, [][][2]relation.Value{
		{{1, 10}},
		{{11, 100}}, // no join partner
	})
	q := mustQuery(t, h, rels)
	if !q.IsEmpty() {
		t.Error("disconnected path should be empty")
	}
	rels2 := pathData(2, [][][2]relation.Value{
		{{1, 10}},
		{{10, 100}},
	})
	q2 := mustQuery(t, h, rels2)
	if q2.IsEmpty() {
		t.Error("connected path should be non-empty")
	}
}

func TestEnumeratorMatchesEvaluate(t *testing.T) {
	h := hypergraph.Star(3)
	r1 := relation.New("R1", "X", "Y")
	r2 := relation.New("R2", "X", "Y")
	r3 := relation.New("R3", "X", "Y")
	for i := relation.Value(0); i < 8; i++ {
		r1.AddWeighted(float64(i), i%4, i)
		r2.AddWeighted(float64(2*i), i%4, i+10)
		r3.AddWeighted(float64(3*i), i%3, i+20)
	}
	q := mustQuery(t, h, []*relation.Relation{r1, r2, r3})
	want := q.Evaluate(sum)

	e := NewEnumerator(q, sum)
	results := e.Drain(0)
	if len(results) != want.Len() {
		t.Fatalf("enumerated %d results, Evaluate has %d", len(results), want.Len())
	}
	got := relation.New("enum", e.OutputAttrs()...)
	for _, r := range results {
		got.AddTuple(r.Tuple, r.Weight)
	}
	// Align schemas: project Evaluate output onto enumerator's order.
	wantProj, err := want.Project(e.OutputAttrs()...)
	if err != nil {
		t.Fatal(err)
	}
	wantProj.Weights = want.Weights
	if !got.EqualAsSet(wantProj) {
		t.Errorf("enumerator results differ from Evaluate\n%v\n%v", got, wantProj)
	}
}

func TestEnumeratorEmptyResult(t *testing.T) {
	h := hypergraph.Path(2)
	rels := pathData(2, [][][2]relation.Value{{{1, 2}}, {{3, 4}}})
	q := mustQuery(t, h, rels)
	e := NewEnumerator(q, sum)
	if _, ok := e.Next(); ok {
		t.Error("empty join should yield nothing")
	}
	if _, ok := e.Next(); ok {
		t.Error("Next after exhaustion should keep returning false")
	}
}

func TestEnumeratorDrainLimit(t *testing.T) {
	h := hypergraph.Path(2)
	r1 := relation.New("R1", "X", "Y")
	r2 := relation.New("R2", "X", "Y")
	for i := relation.Value(0); i < 10; i++ {
		r1.Add(0, i)
		r2.Add(i, i)
	}
	q := mustQuery(t, h, []*relation.Relation{r1, r2})
	e := NewEnumerator(q, sum)
	if got := e.Drain(3); len(got) != 3 {
		t.Fatalf("Drain(3) = %d results", len(got))
	}
}

// Property: enumerator yields exactly Count() results on random star data.
func TestEnumeratorCountProperty(t *testing.T) {
	f := func(d1, d2 []uint8) bool {
		r1 := relation.New("R1", "X", "Y")
		for i, v := range d1 {
			r1.AddWeighted(float64(i), relation.Value(v%4), relation.Value(v%7))
		}
		r2 := relation.New("R2", "X", "Y")
		for i, v := range d2 {
			r2.AddWeighted(float64(i), relation.Value(v%4), relation.Value(v%5))
		}
		h := hypergraph.Star(2)
		q, err := NewQuery(h, []*relation.Relation{r1, r2})
		if err != nil {
			return false
		}
		return len(NewEnumerator(q, sum).Drain(0)) == q.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Yannakakis intermediates stay output-bounded on the skewed instance
// where binary plans blow up: R(A,B) with hub, S(B,C) fanout, T(C,D)
// selective.
func TestYannakakisAvoidsBlowup(t *testing.T) {
	n := relation.Value(200)
	r1 := relation.New("R1", "A", "B")
	r2 := relation.New("R2", "B", "C")
	r3 := relation.New("R3", "C", "D")
	for i := relation.Value(0); i < n; i++ {
		r1.Add(i, 0)   // all point at hub 0
		r2.Add(0, i)   // hub fans out
		r3.Add(n+7, i) // none of r2's C values match
	}
	h := hypergraph.Path(3)
	q := mustQuery(t, h, []*relation.Relation{r1, r2, r3})
	if !q.IsEmpty() {
		t.Fatal("query should be empty")
	}
	red := q.FullReduce()
	for i, r := range red {
		if r.Len() != 0 {
			t.Errorf("reduced relation %d has %d tuples, want 0", i, r.Len())
		}
	}
	// Contrast: the binary plan materialises n² intermediate tuples.
	renamed := make([]*relation.Relation, 3)
	for i, r := range []*relation.Relation{r1, r2, r3} {
		renamed[i] = relation.New(r.Name, h.Edges[i].Vars...)
		renamed[i].Tuples = r.Tuples
		renamed[i].Weights = r.Weights
	}
	_, stats := join.NewPlan(sum, renamed[0], renamed[1], renamed[2]).Execute()
	if stats.MaxIntermediate != int(n)*int(n) {
		t.Errorf("binary plan max intermediate = %d, want %d", stats.MaxIntermediate, int(n)*int(n))
	}
}

func TestOutputAttrsCoverAllVars(t *testing.T) {
	h := hypergraph.Star(4)
	rels := make([]*relation.Relation, 4)
	for i := range rels {
		rels[i] = relation.New("R", "X", "Y")
		rels[i].Add(1, relation.Value(i))
	}
	q := mustQuery(t, h, rels)
	attrs := q.OutputAttrs()
	if len(attrs) != 5 {
		t.Fatalf("OutputAttrs = %v, want 5 vars", attrs)
	}
}
