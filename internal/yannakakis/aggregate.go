package yannakakis

import (
	"math"

	"repro/internal/relation"
)

// Semiring defines a commutative semiring (⊕, ⊗) for aggregate
// evaluation over join trees — the FAQ/AJAR-style extension of Part 2
// of the tutorial ("support for aggregates"): each input tuple carries
// an annotation; a join result's annotation is the ⊗ of its tuples'
// annotations; the query aggregate is the ⊕ over all results. The
// evaluation below runs in O(n) after the full reducer, never touching
// the (possibly huge) result set.
type Semiring struct {
	Name string
	// Zero is the ⊕ identity, One the ⊗ identity.
	Zero, One float64
	Add       func(a, b float64) float64 // ⊕
	Mul       func(a, b float64) float64 // ⊗
}

// CountingSemiring counts results: annotations 1, ⊕ = +, ⊗ = ×.
func CountingSemiring() *Semiring {
	return &Semiring{
		Name: "count", Zero: 0, One: 1,
		Add: func(a, b float64) float64 { return a + b },
		Mul: func(a, b float64) float64 { return a * b },
	}
}

// SumWeightSemiring sums result weights over all results when tuples
// are annotated with their weights under (⊕,⊗) = (+,×) on the expanded
// polynomial — note this computes Σ_results Π_tuples w(t), i.e. the
// product aggregate summed; to sum *additive* result weights use
// AnnotatedEval with the tropical semiring per result instead.
func SumWeightSemiring() *Semiring {
	return &Semiring{
		Name: "sum-product", Zero: 0, One: 1,
		Add: func(a, b float64) float64 { return a + b },
		Mul: func(a, b float64) float64 { return a * b },
	}
}

// MinTropicalSemiring computes the minimum additive result weight (the
// top-1 of SumCost ranking) without enumeration: ⊕ = min, ⊗ = +.
func MinTropicalSemiring() *Semiring {
	return &Semiring{
		Name: "min-sum", Zero: math.Inf(1), One: 0,
		Add: math.Min,
		Mul: func(a, b float64) float64 { return a + b },
	}
}

// MaxTropicalSemiring computes the maximum additive result weight.
func MaxTropicalSemiring() *Semiring {
	return &Semiring{
		Name: "max-sum", Zero: math.Inf(-1), One: 0,
		Add: math.Max,
		Mul: func(a, b float64) float64 { return a + b },
	}
}

// AnnotatedEval evaluates the semiring aggregate over all join results,
// annotating each input tuple with annotate(nodeIndex, row, weight).
// Passing nil annotates every tuple with its weight. Runs one full
// reduction plus one bottom-up pass: O(n) data complexity.
func (q *Query) AnnotatedEval(s *Semiring, annotate func(node, row int, w float64) float64) float64 {
	if annotate == nil {
		annotate = func(_, _ int, w float64) float64 { return w }
	}
	red := q.FullReduce()
	order := q.Tree.Order
	// ann[u][row] aggregates the subtree rooted at u for that row.
	ann := make([][]float64, len(red))
	for oi := len(order) - 1; oi >= 0; oi-- {
		u := order[oi]
		r := red[u]
		ann[u] = make([]float64, r.Len())
		for row := range r.Tuples {
			ann[u][row] = annotate(u, row, r.Weights[row])
		}
		for _, c := range q.Tree.Children[u] {
			shared := r.SharedAttrs(red[c])
			idx := relation.MustIndex(red[c], shared...)
			uCols, err := r.AttrIndexes(shared)
			if err != nil {
				panic(err)
			}
			key := make([]relation.Value, len(uCols))
			for row, tp := range r.Tuples {
				for k, col := range uCols {
					key[k] = tp[col]
				}
				sub := s.Zero
				for _, crow := range idx.Lookup(key) {
					sub = s.Add(sub, ann[c][crow])
				}
				ann[u][row] = s.Mul(ann[u][row], sub)
			}
		}
	}
	total := s.Zero
	for _, v := range ann[q.Tree.Root] {
		total = s.Add(total, v)
	}
	return total
}
