package workload

import (
	"repro/internal/hypergraph"
	"repro/internal/relation"
)

// ZipfRelation generates a binary relation with n tuples whose columns
// are drawn independently over [0, domain): column X from a Zipf
// distribution with exponent sX, column Y with exponent sY, either
// falling back to uniform when its exponent is 0. The skewed columns
// produce the heavy join values (a few hub values carrying a large
// fraction of the rows) that separate cost-based planning from the
// structural heuristics.
func ZipfRelation(name string, n, domain int, sX, sY float64, w WeightFn, seed uint64) *relation.Relation {
	rng := NewRand(seed)
	var zx, zy *Zipf
	if sX > 0 {
		zx = NewZipf(rng, sX, domain)
	}
	if sY > 0 {
		zy = NewZipf(rng, sY, domain)
	}
	draw := func(z *Zipf) relation.Value {
		if z != nil {
			return relation.Value(z.Next())
		}
		return relation.Value(rng.Intn(domain))
	}
	r := relation.New(name, "X", "Y")
	for t := 0; t < n; t++ {
		x := draw(zx)
		y := draw(zy)
		r.AddWeighted(w(rng), x, y)
	}
	return r
}

// SkewedChordedCycle builds the chorded 5-cycle query
//
//	R1(A,B), R2(B,C), R3(C,D), R4(D,E), R5(E,A), R6(B,E)
//
// over data skewed at variable B: R1 and R2 draw their B column from
// Zipf(s) while every other column is uniform, and R2 carries fanout×n
// tuples against n everywhere else. The shape's generalized hypertree
// decompositions tie on width, so the structural search falls back to
// its fewer-bags tie-break — which happens to charge the heavy,
// high-fanout B values into one large bag. The per-column heavy-hitter
// sketches see the skew and steer the costed search to a decomposition
// whose bags stay small, making this the canonical workload for the
// optimizer-on/off comparison (cmd/anyk-bench, CI).
func SkewedChordedCycle(n, domain, fanout int, s float64, w WeightFn, seed uint64) *Instance {
	h := hypergraph.New(
		hypergraph.E("R1", "A", "B"),
		hypergraph.E("R2", "B", "C"),
		hypergraph.E("R3", "C", "D"),
		hypergraph.E("R4", "D", "E"),
		hypergraph.E("R5", "E", "A"),
		hypergraph.E("R6", "B", "E"),
	)
	rels := []*relation.Relation{
		ZipfRelation("R1", n, domain, 0, s, w, seed+1),        // R1(A,B): B skewed
		ZipfRelation("R2", n*fanout, domain, s, 0, w, seed+2), // R2(B,C): B skewed, high fanout
		ZipfRelation("R3", n, domain, 0, 0, w, seed+3),
		ZipfRelation("R4", n, domain, 0, 0, w, seed+4),
		ZipfRelation("R5", n, domain, 0, 0, w, seed+5),
		ZipfRelation("R6", n, domain, 0, 0, w, seed+6),
	}
	return &Instance{H: h, Rels: rels}
}
