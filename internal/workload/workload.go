// Package workload generates the deterministic synthetic inputs used by
// the experiments: path/star/cycle query instances, the AGM-hard
// triangle instance from §3 of the tutorial, hub-skewed graphs for the
// 4-cycle experiments, weighted random graphs, and ranked score lists
// for the top-k middleware experiments (correlated, independent,
// anti-correlated).
//
// All generators take an explicit seed and use splitmix64, so every
// experiment is exactly reproducible.
package workload

import (
	"fmt"

	"repro/internal/hypergraph"
	"repro/internal/relation"
)

// Rand is a splitmix64 pseudo-random generator. The zero value is a
// valid generator seeded with 0.
type Rand struct {
	state uint64
}

// NewRand returns a generator with the given seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next pseudo-random 64-bit value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Zipf samples from an approximate Zipf distribution over [0, n) with
// exponent s > 0 using inverse-CDF on a precomputed table.
type Zipf struct {
	cdf []float64
	rng *Rand
}

// NewZipf builds a Zipf sampler over [0, n) with exponent s.
func NewZipf(rng *Rand, s float64, n int) *Zipf {
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / powF(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Next returns a Zipf-distributed value in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// powF is a small positive-base power (avoids importing math in the hot
// path; exactness is irrelevant for workload shaping).
func powF(base, exp float64) float64 {
	// exp is typically 0.5..2; use exp/log via Newton is overkill —
	// handle the common integer-ish cases and fall back to repeated
	// square root composition.
	switch exp {
	case 1:
		return base
	case 2:
		return base * base
	}
	// General: base^exp = e^(exp·ln base); implement with math since this
	// is not hot after table construction.
	return mathPow(base, exp)
}

// Instance is a query instance: a hypergraph and matching relations.
type Instance struct {
	H    *hypergraph.Hypergraph
	Rels []*relation.Relation
}

// WeightFn draws a tuple weight.
type WeightFn func(r *Rand) float64

// UniformWeights returns weights uniform in [0, 1).
func UniformWeights() WeightFn { return func(r *Rand) float64 { return r.Float64() } }

// ZeroWeights returns constant-zero weights.
func ZeroWeights() WeightFn { return func(*Rand) float64 { return 0 } }

// Path generates an l-relation path query instance: each relation has n
// tuples with endpoints uniform in [0, domain).
func Path(l, n, domain int, w WeightFn, seed uint64) *Instance {
	rng := NewRand(seed)
	h := hypergraph.Path(l)
	rels := make([]*relation.Relation, l)
	for i := 0; i < l; i++ {
		r := relation.New(fmt.Sprintf("R%d", i+1), "X", "Y")
		for t := 0; t < n; t++ {
			r.AddWeighted(w(rng), relation.Value(rng.Intn(domain)), relation.Value(rng.Intn(domain)))
		}
		rels[i] = r
	}
	return &Instance{H: h, Rels: rels}
}

// Star generates an l-relation star query instance R_i(A0, A_i).
func Star(l, n, domain int, w WeightFn, seed uint64) *Instance {
	rng := NewRand(seed)
	h := hypergraph.Star(l)
	rels := make([]*relation.Relation, l)
	for i := 0; i < l; i++ {
		r := relation.New(fmt.Sprintf("R%d", i+1), "X", "Y")
		for t := 0; t < n; t++ {
			r.AddWeighted(w(rng), relation.Value(rng.Intn(domain)), relation.Value(rng.Intn(domain)))
		}
		rels[i] = r
	}
	return &Instance{H: h, Rels: rels}
}

// Cycle generates an l-relation cycle query instance over a single random
// directed graph with nEdges edges on nVertices vertices: every relation
// is a copy of the edge list (a self-join), matching the graph-pattern
// framing of §1.
func Cycle(l, nEdges, nVertices int, w WeightFn, seed uint64) *Instance {
	rng := NewRand(seed)
	h := hypergraph.Cycle(l)
	edges := relation.New("E", "src", "dst")
	for t := 0; t < nEdges; t++ {
		edges.AddWeighted(w(rng), relation.Value(rng.Intn(nVertices)), relation.Value(rng.Intn(nVertices)))
	}
	rels := make([]*relation.Relation, l)
	for i := range rels {
		c := edges.Clone()
		c.Name = fmt.Sprintf("R%d", i+1)
		rels[i] = c
	}
	return &Instance{H: h, Rels: rels}
}

// HardTriangle builds the AGM-hard triangle instance of §3:
// R = S = T = {(i,1) : i ∈ [n/2]} ∪ {(1,j) : j ∈ [n/2]}. Every binary
// join order produces Θ(n²) intermediate tuples while the output is Θ(n).
func HardTriangle(n int, w WeightFn, seed uint64) *Instance {
	rng := NewRand(seed)
	h := hypergraph.Cycle(3)
	mk := func(name string) *relation.Relation {
		r := relation.New(name, "src", "dst")
		for i := 1; i <= n/2; i++ {
			r.AddWeighted(w(rng), relation.Value(i), 1)
			r.AddWeighted(w(rng), 1, relation.Value(i))
		}
		return r
	}
	return &Instance{H: h, Rels: []*relation.Relation{mk("R1"), mk("R2"), mk("R3")}}
}

// FourCycleHub builds the Boolean-4-cycle separator instance: a directed
// hub with n/2 in-edges and n/2 out-edges. Every pairwise join of the
// edge relation with itself is Θ(n²) (all length-2 paths run through the
// hub), yet the graph has no directed 4-cycle at all, so output-sensitive
// algorithms finish in near-linear time.
func FourCycleHub(n int, w WeightFn, seed uint64) *Instance {
	rng := NewRand(seed)
	h := hypergraph.Cycle(4)
	half := n / 2
	hub := relation.Value(0)
	edges := relation.New("E", "src", "dst")
	for i := 1; i <= half; i++ {
		edges.AddWeighted(w(rng), relation.Value(i), hub)           // i → hub
		edges.AddWeighted(w(rng), hub, relation.Value(half+int(i))) // hub → j
	}
	rels := make([]*relation.Relation, 4)
	for i := range rels {
		c := edges.Clone()
		c.Name = fmt.Sprintf("R%d", i+1)
		rels[i] = c
	}
	return &Instance{H: h, Rels: rels}
}

// Graph is a weighted directed graph represented as an edge relation
// E(src, dst) with per-edge weights.
type Graph struct {
	Edges    *relation.Relation
	Vertices int
}

// RandomGraph samples a directed graph with nEdges edges over nVertices
// vertices, weights drawn from w.
func RandomGraph(nVertices, nEdges int, w WeightFn, seed uint64) *Graph {
	rng := NewRand(seed)
	e := relation.New("E", "src", "dst")
	for i := 0; i < nEdges; i++ {
		e.AddWeighted(w(rng), relation.Value(rng.Intn(nVertices)), relation.Value(rng.Intn(nVertices)))
	}
	return &Graph{Edges: e, Vertices: nVertices}
}

// SkewedGraph samples a graph whose source vertices follow a Zipf
// distribution, creating the heavy hubs that exercise heavy/light
// decompositions.
func SkewedGraph(nVertices, nEdges int, zipfS float64, w WeightFn, seed uint64) *Graph {
	rng := NewRand(seed)
	z := NewZipf(rng, zipfS, nVertices)
	e := relation.New("E", "src", "dst")
	for i := 0; i < nEdges; i++ {
		e.AddWeighted(w(rng), relation.Value(z.Next()), relation.Value(rng.Intn(nVertices)))
	}
	return &Graph{Edges: e, Vertices: nVertices}
}

// CycleQueryOn builds the l-cycle self-join query over a graph's edges.
func CycleQueryOn(g *Graph, l int) *Instance {
	h := hypergraph.Cycle(l)
	rels := make([]*relation.Relation, l)
	for i := range rels {
		c := g.Edges.Clone()
		c.Name = fmt.Sprintf("R%d", i+1)
		rels[i] = c
	}
	return &Instance{H: h, Rels: rels}
}

// RandomTree generates a random tree-shaped acyclic query with nRels
// binary relations: relation i ≥ 1 shares one variable with a randomly
// chosen earlier relation and introduces one fresh variable. Used by
// fuzz-style tests to exercise arbitrary join-tree shapes (deep chains,
// wide stars and everything between).
func RandomTree(nRels, tuplesPerRel, domain int, w WeightFn, seed uint64) *Instance {
	if nRels < 1 {
		panic("workload: RandomTree needs at least one relation")
	}
	rng := NewRand(seed)
	edges := make([]hypergraph.Edge, nRels)
	edges[0] = hypergraph.E("R1", "V0", "V1")
	fresh := 2
	for i := 1; i < nRels; i++ {
		parent := edges[rng.Intn(i)]
		shared := parent.Vars[rng.Intn(len(parent.Vars))]
		nv := fmt.Sprintf("V%d", fresh)
		fresh++
		vars := []string{shared, nv}
		if rng.Intn(2) == 0 { // randomise column order
			vars = []string{nv, shared}
		}
		edges[i] = hypergraph.Edge{Name: fmt.Sprintf("R%d", i+1), Vars: vars}
	}
	h := hypergraph.New(edges...)
	rels := make([]*relation.Relation, nRels)
	for i := range rels {
		r := relation.New(edges[i].Name, "X", "Y")
		for t := 0; t < tuplesPerRel; t++ {
			r.AddWeighted(w(rng), relation.Value(rng.Intn(domain)), relation.Value(rng.Intn(domain)))
		}
		rels[i] = r
	}
	return &Instance{H: h, Rels: rels}
}

// PreferentialGraph samples a directed graph by preferential attachment
// (Barabási–Albert flavour): each new edge's source is drawn
// proportionally to current out-degree + 1, its target uniformly. The
// resulting heavy-tailed degree distribution mimics the real graphs
// (social networks, citation graphs) used in the companion paper's
// evaluation, exercising the heavy cases of the decompositions harder
// than uniform graphs do.
func PreferentialGraph(nVertices, nEdges int, w WeightFn, seed uint64) *Graph {
	rng := NewRand(seed)
	e := relation.New("E", "src", "dst")
	// endpoints repeats every chosen source so sampling from it is
	// degree-proportional; seeded with one appearance per vertex.
	endpoints := make([]int, 0, nVertices+nEdges)
	for v := 0; v < nVertices; v++ {
		endpoints = append(endpoints, v)
	}
	for i := 0; i < nEdges; i++ {
		src := endpoints[rng.Intn(len(endpoints))]
		dst := rng.Intn(nVertices)
		e.AddWeighted(w(rng), relation.Value(src), relation.Value(dst))
		endpoints = append(endpoints, src)
	}
	return &Graph{Edges: e, Vertices: nVertices}
}
