package workload

import (
	"math"
	"sort"
)

// mathPow wraps math.Pow for the Zipf table construction.
func mathPow(a, b float64) float64 { return math.Pow(a, b) }

// ScoredList is one ranked input of the top-k middleware model: object
// identifiers with grades, to be accessed in descending-grade order.
type ScoredList struct {
	// IDs[i] is the object at rank i (0 = best), Grades[i] its grade.
	IDs    []int
	Grades []float64
}

// Correlation shapes how an object's grades relate across lists.
type Correlation int

const (
	// Independent grades are drawn independently per list.
	Independent Correlation = iota
	// Correlated grades share a per-object quality with small noise, so
	// top objects cluster near the top of every list (TA's best case).
	Correlated
	// AntiCorrelated grades trade off across lists: objects good in one
	// list are bad in the others (TA's hard case).
	AntiCorrelated
)

// Lists generates m ranked lists over n objects with the given
// correlation structure. Each list is sorted by descending grade.
func Lists(m, n int, corr Correlation, seed uint64) []*ScoredList {
	rng := NewRand(seed)
	grades := make([][]float64, m)
	for l := range grades {
		grades[l] = make([]float64, n)
	}
	for o := 0; o < n; o++ {
		switch corr {
		case Independent:
			for l := 0; l < m; l++ {
				grades[l][o] = rng.Float64()
			}
		case Correlated:
			q := rng.Float64()
			for l := 0; l < m; l++ {
				g := q + (rng.Float64()-0.5)*0.1
				grades[l][o] = clamp01(g)
			}
		case AntiCorrelated:
			// Points near the simplex surface: grades sum to ~1.
			q := rng.Float64()
			for l := 0; l < m; l++ {
				var g float64
				if l%2 == 0 {
					g = q + (rng.Float64()-0.5)*0.05
				} else {
					g = 1 - q + (rng.Float64()-0.5)*0.05
				}
				grades[l][o] = clamp01(g)
			}
		}
	}
	out := make([]*ScoredList, m)
	for l := 0; l < m; l++ {
		sl := &ScoredList{IDs: make([]int, n), Grades: make([]float64, n)}
		order := argsortDesc(grades[l])
		for rank, o := range order {
			sl.IDs[rank] = o
			sl.Grades[rank] = grades[l][o]
		}
		out[l] = sl
	}
	return out
}

// HiddenTopLists builds the adversarial middleware input of §2: the
// object with the best aggregate score sits at the *bottom* of every
// list. Every other object has one high grade and one low grade, so
// their aggregates are mediocre, while the hidden winner has grade
// just-below-median everywhere, placing it deep in each sorted list.
func HiddenTopLists(m, n int, seed uint64) []*ScoredList {
	rng := NewRand(seed)
	grades := make([][]float64, m)
	for l := range grades {
		grades[l] = make([]float64, n)
	}
	for o := 0; o < n-1; o++ {
		hot := o % m // one list where this object shines
		for l := 0; l < m; l++ {
			if l == hot {
				grades[l][o] = 0.9 + 0.1*rng.Float64()
			} else {
				grades[l][o] = 0.1 * rng.Float64()
			}
		}
	}
	// The hidden winner: 0.85 everywhere — aggregate m·0.85 beats
	// 0.9 + (m-1)·0.1, but rank-wise it is below every hot object.
	winner := n - 1
	for l := 0; l < m; l++ {
		grades[l][winner] = 0.85
	}
	out := make([]*ScoredList, m)
	for l := 0; l < m; l++ {
		sl := &ScoredList{IDs: make([]int, n), Grades: make([]float64, n)}
		order := argsortDesc(grades[l])
		for rank, o := range order {
			sl.IDs[rank] = o
			sl.Grades[rank] = grades[l][o]
		}
		out[l] = sl
	}
	return out
}

func clamp01(g float64) float64 {
	if g < 0 {
		return 0
	}
	if g > 1 {
		return 1
	}
	return g
}

// argsortDesc returns the indices of xs sorted by descending value
// (stable).
func argsortDesc(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	// Insertion-free approach: simple merge sort via sort.SliceStable is
	// unavailable here without importing sort — use it.
	stableSort(idx, func(a, b int) bool { return xs[a] > xs[b] })
	return idx
}

// stableSort sorts idx with the given less predicate.
func stableSort(idx []int, less func(a, b int) bool) {
	sort.SliceStable(idx, func(i, j int) bool { return less(idx[i], idx[j]) })
}
