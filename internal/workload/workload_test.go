package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRand(43)
	same := true
	a2 := NewRand(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should give different streams")
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", f)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestZipfSkew(t *testing.T) {
	rng := NewRand(11)
	z := NewZipf(rng, 1.2, 1000)
	counts := make([]int, 1000)
	for i := 0; i < 20000; i++ {
		counts[z.Next()]++
	}
	// Rank 0 should be sampled far more often than rank 100.
	if counts[0] < 5*counts[100]+1 {
		t.Errorf("Zipf not skewed: counts[0]=%d counts[100]=%d", counts[0], counts[100])
	}
}

func TestPathInstanceShape(t *testing.T) {
	inst := Path(4, 100, 20, UniformWeights(), 1)
	if len(inst.Rels) != 4 || len(inst.H.Edges) != 4 {
		t.Fatalf("path instance has %d rels, %d edges", len(inst.Rels), len(inst.H.Edges))
	}
	for _, r := range inst.Rels {
		if r.Len() != 100 {
			t.Errorf("relation %s has %d tuples, want 100", r.Name, r.Len())
		}
		for _, tp := range r.Tuples {
			if tp[0] < 0 || tp[0] >= 20 || tp[1] < 0 || tp[1] >= 20 {
				t.Fatalf("value out of domain: %v", tp)
			}
		}
	}
	if !inst.H.IsAcyclic() {
		t.Error("path hypergraph must be acyclic")
	}
}

func TestStarInstanceShape(t *testing.T) {
	inst := Star(3, 50, 10, ZeroWeights(), 2)
	if len(inst.Rels) != 3 {
		t.Fatal("wrong relation count")
	}
	for _, r := range inst.Rels {
		for _, w := range r.Weights {
			if w != 0 {
				t.Fatal("ZeroWeights should yield zero weights")
			}
		}
	}
}

func TestCycleInstanceSelfJoin(t *testing.T) {
	inst := Cycle(4, 60, 15, UniformWeights(), 3)
	if len(inst.Rels) != 4 {
		t.Fatal("wrong relation count")
	}
	for i := 1; i < 4; i++ {
		if !inst.Rels[i].EqualAsSet(relCopyName(inst.Rels[0], inst.Rels[i].Name)) {
			t.Error("cycle query must self-join the same edge list")
		}
	}
	if inst.H.IsAcyclic() {
		t.Error("cycle hypergraph must be cyclic")
	}
}

func relCopyName(r *relation.Relation, name string) *relation.Relation {
	c := r.Clone()
	c.Name = name
	return c
}

func TestHardTriangleStructure(t *testing.T) {
	inst := HardTriangle(100, ZeroWeights(), 0)
	for _, r := range inst.Rels {
		if r.Len() != 100 {
			t.Fatalf("hard triangle relation size = %d, want 100", r.Len())
		}
	}
	// Every tuple touches value 1.
	for _, tp := range inst.Rels[0].Tuples {
		if tp[0] != 1 && tp[1] != 1 {
			t.Fatalf("tuple %v does not touch the hub", tp)
		}
	}
}

func TestFourCycleHubHasNoDirectedCycle(t *testing.T) {
	inst := FourCycleHub(200, ZeroWeights(), 0)
	e := inst.Rels[0]
	// Out-neighbours of second-half vertices must be empty: no directed
	// 4-cycle can exist because flow is first-half → hub → second-half.
	outOfSecondHalf := 0
	for _, tp := range e.Tuples {
		if tp[0] > 100 {
			outOfSecondHalf++
		}
	}
	if outOfSecondHalf != 0 {
		t.Errorf("second-half vertices have %d out-edges, want 0", outOfSecondHalf)
	}
	// The hub makes pairwise joins quadratic: check hub in-degree and
	// out-degree are both n/2.
	in, out := 0, 0
	for _, tp := range e.Tuples {
		if tp[1] == 0 {
			in++
		}
		if tp[0] == 0 {
			out++
		}
	}
	if in != 100 || out != 100 {
		t.Errorf("hub degrees in=%d out=%d, want 100,100", in, out)
	}
}

func TestRandomGraphShape(t *testing.T) {
	g := RandomGraph(50, 300, UniformWeights(), 9)
	if g.Edges.Len() != 300 {
		t.Fatalf("edges = %d, want 300", g.Edges.Len())
	}
	for _, tp := range g.Edges.Tuples {
		if tp[0] < 0 || tp[0] >= 50 || tp[1] < 0 || tp[1] >= 50 {
			t.Fatal("vertex out of range")
		}
	}
}

func TestSkewedGraphHasHubs(t *testing.T) {
	g := SkewedGraph(1000, 5000, 1.5, UniformWeights(), 4)
	ix := relation.MustIndex(g.Edges, "src")
	if ix.MaxFanout() < 50 {
		t.Errorf("skewed graph max out-degree = %d, expected a heavy hub", ix.MaxFanout())
	}
}

func TestCycleQueryOn(t *testing.T) {
	g := RandomGraph(10, 20, UniformWeights(), 5)
	inst := CycleQueryOn(g, 3)
	if len(inst.Rels) != 3 {
		t.Fatal("wrong relation count")
	}
	if inst.Rels[0].Len() != 20 {
		t.Fatal("edges not copied")
	}
}

func TestListsSortedDescending(t *testing.T) {
	for _, corr := range []Correlation{Independent, Correlated, AntiCorrelated} {
		lists := Lists(3, 200, corr, 6)
		if len(lists) != 3 {
			t.Fatal("wrong list count")
		}
		for _, l := range lists {
			if len(l.IDs) != 200 {
				t.Fatal("wrong list length")
			}
			for i := 1; i < len(l.Grades); i++ {
				if l.Grades[i] > l.Grades[i-1] {
					t.Fatalf("list not sorted at %d", i)
				}
			}
		}
	}
}

func TestListsArePermutations(t *testing.T) {
	lists := Lists(2, 100, Independent, 8)
	for _, l := range lists {
		seen := make(map[int]bool)
		for _, id := range l.IDs {
			if seen[id] || id < 0 || id >= 100 {
				t.Fatal("IDs must be a permutation of [0,n)")
			}
			seen[id] = true
		}
	}
}

func TestCorrelatedListsAgreeAtTop(t *testing.T) {
	lists := Lists(2, 1000, Correlated, 10)
	// The top-20 of both lists should share many objects.
	top := make(map[int]bool)
	for _, id := range lists[0].IDs[:20] {
		top[id] = true
	}
	shared := 0
	for _, id := range lists[1].IDs[:20] {
		if top[id] {
			shared++
		}
	}
	if shared < 8 {
		t.Errorf("correlated lists share only %d of top-20", shared)
	}
}

func TestHiddenTopListsBuriesWinner(t *testing.T) {
	m, n := 2, 500
	lists := HiddenTopLists(m, n, 3)
	winner := n - 1
	for li, l := range lists {
		rank := -1
		for i, id := range l.IDs {
			if id == winner {
				rank = i
				break
			}
		}
		if rank < n/4 {
			t.Errorf("list %d: winner at rank %d, should be deep", li, rank)
		}
	}
	// And the winner really does have the best aggregate.
	agg := make(map[int]float64)
	for _, l := range lists {
		for i, id := range l.IDs {
			agg[id] += l.Grades[i]
		}
	}
	best, bestScore := -1, -1.0
	for id, s := range agg {
		if s > bestScore {
			best, bestScore = id, s
		}
	}
	if best != winner {
		t.Errorf("best aggregate object = %d, want %d", best, winner)
	}
}

// Property: generators are deterministic in their seed.
func TestGeneratorDeterminismProperty(t *testing.T) {
	f := func(seed uint32) bool {
		a := Path(3, 30, 10, UniformWeights(), uint64(seed))
		b := Path(3, 30, 10, UniformWeights(), uint64(seed))
		for i := range a.Rels {
			if !a.Rels[i].EqualAsSet(b.Rels[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPreferentialGraphHeavyTail(t *testing.T) {
	g := PreferentialGraph(2000, 10000, UniformWeights(), 7)
	if g.Edges.Len() != 10000 {
		t.Fatalf("edges = %d", g.Edges.Len())
	}
	ix := relation.MustIndex(g.Edges, "src")
	// Preferential attachment should produce a hub far above the uniform
	// expectation (10000/2000 = 5 per vertex; a uniform graph's max is
	// ~15 at this size).
	if ix.MaxFanout() < 30 {
		t.Errorf("max out-degree = %d, expected a heavy tail", ix.MaxFanout())
	}
	for _, tp := range g.Edges.Tuples {
		if tp[0] < 0 || tp[0] >= 2000 || tp[1] < 0 || tp[1] >= 2000 {
			t.Fatal("vertex out of range")
		}
	}
}

func TestPreferentialGraphDeterministic(t *testing.T) {
	a := PreferentialGraph(100, 500, UniformWeights(), 9)
	b := PreferentialGraph(100, 500, UniformWeights(), 9)
	if !a.Edges.EqualAsSet(b.Edges) {
		t.Error("same seed must give same graph")
	}
}
