package workload

import (
	"fmt"

	"repro/internal/hypergraph"
	"repro/internal/relation"
)

// RandomCQ generates a random conjunctive query with data — the input
// of the randomized parity harness that checks skew-aware parallel,
// sequential, and brute-force evaluation against each other. The seed
// fully determines both shape and data.
//
// Shapes rotate through the planner's compile paths: random join trees
// (acyclic), pure cycles of length 3..6 (the dedicated triangle/
// 4-cycle/fan plans), and chorded cycles (the generic GHD planner).
// nRels is an upper bound; small shapes use fewer relations.
//
// zipfS > 0 skews every join column's value distribution with a
// Zipf(s) draw over the domain, concentrating tuples on few heavy
// values — the regime the heavy/light partitioning must load-balance.
// zipfS = 0 draws uniformly.
func RandomCQ(nRels, tuplesPerRel, domain int, zipfS float64, w WeightFn, seed uint64) *Instance {
	if nRels < 1 {
		panic("workload: RandomCQ needs at least one relation")
	}
	rng := NewRand(seed)
	var edges []hypergraph.Edge
	fresh := 0
	newVar := func() string {
		v := fmt.Sprintf("V%d", fresh)
		fresh++
		return v
	}
	relName := func(i int) string { return fmt.Sprintf("R%d", i+1) }
	// addEdge appends a binary edge, randomising the column order so
	// flipped declarations (R(x,y) vs R(y,x)) stay covered.
	addEdge := func(a, b string) {
		vars := []string{a, b}
		if rng.Intn(2) == 0 {
			vars = []string{b, a}
		}
		edges = append(edges, hypergraph.Edge{Name: relName(len(edges)), Vars: vars})
	}

	switch shape := rng.Intn(3); {
	case shape == 0 || nRels < 3:
		// Random join tree: each new relation shares one variable with
		// an earlier one (RandomTree's topology).
		v0, v1 := newVar(), newVar()
		addEdge(v0, v1)
		for len(edges) < nRels {
			parent := edges[rng.Intn(len(edges))]
			addEdge(parent.Vars[rng.Intn(2)], newVar())
		}
	case shape == 1:
		// Pure cycle of length 3..min(6, nRels).
		l := 3 + rng.Intn(4)
		if l > nRels {
			l = nRels
		}
		vars := make([]string, l)
		for i := range vars {
			vars[i] = newVar()
		}
		for i := 0; i < l; i++ {
			addEdge(vars[i], vars[(i+1)%l])
		}
	default:
		// Cycle plus chords/pendants: the generic GHD path.
		l := 3 + rng.Intn(3)
		if l > nRels {
			l = nRels
		}
		vars := make([]string, l)
		for i := range vars {
			vars[i] = newVar()
		}
		for i := 0; i < l; i++ {
			addEdge(vars[i], vars[(i+1)%l])
		}
		for len(edges) < nRels {
			a := vars[rng.Intn(l)]
			if rng.Intn(2) == 0 { // chord
				b := vars[rng.Intn(l)]
				if b == a {
					b = vars[(rng.Intn(l-1)+1+indexOf(vars, a))%l]
				}
				addEdge(a, b)
			} else { // pendant
				addEdge(a, newVar())
			}
		}
	}

	var zipf *Zipf
	if zipfS > 0 {
		zipf = NewZipf(rng, zipfS, domain)
	}
	draw := func() relation.Value {
		if zipf != nil {
			return relation.Value(zipf.Next())
		}
		return relation.Value(rng.Intn(domain))
	}
	rels := make([]*relation.Relation, len(edges))
	for i, e := range edges {
		r := relation.New(e.Name, "X", "Y")
		for t := 0; t < tuplesPerRel; t++ {
			r.AddWeighted(w(rng), draw(), draw())
		}
		rels[i] = r
	}
	return &Instance{H: hypergraph.New(edges...), Rels: rels}
}

func indexOf(vars []string, v string) int {
	for i, x := range vars {
		if x == v {
			return i
		}
	}
	return 0
}
