package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryTask(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		n := 37
		hits := make([]int32, n)
		err := ForEach(context.Background(), workers, n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachZeroTasks(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForEachLowestIndexError(t *testing.T) {
	// Every task past 10 fails; the reported error must be task 11's —
	// the one a sequential loop would have surfaced first — on every
	// worker count.
	for _, workers := range []int{1, 4} {
		err := ForEach(context.Background(), workers, 20, func(i int) error {
			if i > 10 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 11 failed" {
			t.Fatalf("workers=%d: got %v, want task 11's error", workers, err)
		}
	}
}

func TestForEachErrorDoesNotStopSweep(t *testing.T) {
	var ran atomic.Int32
	err := ForEach(context.Background(), 2, 10, func(i int) error {
		ran.Add(1)
		return errors.New("boom")
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := ran.Load(); got != 10 {
		t.Fatalf("ran %d of 10 tasks; task errors must not cancel the sweep", got)
	}
}

func TestForEachCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := ForEach(ctx, 2, 1000, func(i int) error {
		if ran.Add(1) == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= 1000 {
		t.Fatalf("all %d tasks ran despite cancellation", got)
	}
}

func TestForEachPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := ForEach(ctx, 2, 10, func(i int) error { ran.Add(1); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatal("tasks ran under a pre-canceled context")
	}
}

func TestDegree(t *testing.T) {
	if got := Degree(3); got != 3 {
		t.Fatalf("Degree(3) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Degree(0); got != want {
		t.Fatalf("Degree(0) = %d, want GOMAXPROCS = %d", got, want)
	}
	if got := Degree(-5); got != want {
		t.Fatalf("Degree(-5) = %d, want GOMAXPROCS = %d", got, want)
	}
}
