// Package parallel provides the small bounded worker pool that the
// prepare phase of the library fans out on: decomposition bags are
// independent of each other (internal/decomp materialises one bag per
// task), Generic-Join decomposes over the first variable's domain
// (internal/wcoj partitions it across tasks), and join-tree sweeps are
// independent within a depth level (internal/dp and
// internal/yannakakis run the T-DP π pass and the full reducer's
// semi-joins level-synchronized, one ForEach barrier per level), so
// every level reduces to "run n independent, index-addressed tasks on
// at most w goroutines".
//
// The pool is deliberately deterministic: tasks write results into
// index-addressed slots owned by the caller, every task runs regardless
// of other tasks' failures (only context cancellation stops the sweep),
// and the reported error is the lowest-indexed task error — so a
// parallel sweep is observationally identical to the sequential loop it
// replaces, whatever the goroutine interleaving.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Degree resolves a requested parallelism degree: n if positive,
// otherwise GOMAXPROCS. Callers treat 1 as "fully sequential".
func Degree(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on at most workers
// goroutines (clamped to [1, n]). It blocks until every dispatched task
// has finished — results published by tasks into caller-owned,
// index-addressed slots are safe to read without further
// synchronisation once ForEach returns.
//
// Cancellation is checked before each task is dispatched: once ctx is
// done no further tasks start, in-flight tasks finish, and ForEach
// reports ctx.Err(). A task error does not stop the sweep (so the set
// of executed tasks stays deterministic); after the barrier the error
// of the lowest-indexed failed task is returned, matching what the
// equivalent sequential loop would have surfaced first.
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	var canceled atomic.Bool
	run := func() {
		for {
			if ctx.Err() != nil {
				canceled.Store(true)
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			errs[i] = fn(i)
		}
	}
	if workers == 1 {
		run()
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				run()
			}()
		}
		wg.Wait()
	}
	if canceled.Load() {
		return ctx.Err()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
