package experiments

import (
	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/topk"
	"repro/internal/workload"
)

func toLists(ws []*workload.ScoredList) []*topk.List {
	out := make([]*topk.List, len(ws))
	for i, w := range ws {
		l, err := topk.NewList(w.IDs, w.Grades)
		if err != nil {
			panic(err)
		}
		out[i] = l
	}
	return out
}

// E4 — the middleware cost model of §2: sorted/random access counts for
// TA, FA and NRA across correlation regimes and k. Expected shape: TA
// accesses ≪ FA ≪ full scan on correlated inputs; the advantage shrinks
// on anti-correlated inputs; and on the hidden-winner instance TA's
// accesses approach the full scan — instance optimality does not mean
// fast on adversarial data.
func E4(n int, ks []int) *stats.Table {
	t := stats.NewTable("E4: TA vs FA vs NRA — middleware access counts (m=2 lists)",
		"input", "k", "TA_sorted", "TA_random", "FA_sorted", "FA_random", "NRA_sorted", "NRA_buffered")
	type regime struct {
		name  string
		lists []*topk.List
	}
	regimes := []regime{
		{"correlated", toLists(workload.Lists(2, n, workload.Correlated, 42))},
		{"independent", toLists(workload.Lists(2, n, workload.Independent, 42))},
		{"anti-correlated", toLists(workload.Lists(2, n, workload.AntiCorrelated, 42))},
		{"hidden-winner", toLists(workload.HiddenTopLists(2, n, 42))},
	}
	agg := topk.SumAgg{}
	for _, rg := range regimes {
		for _, k := range ks {
			want := topk.BruteForce(rg.lists, k, agg)
			taRes, taStats := topk.TA(rg.lists, k, agg)
			if !sameScores(taRes, want) {
				panic("TA incorrect in experiment E4")
			}
			_, faStats := topk.FA(rg.lists, k, agg)
			_, nraStats := topk.NRA(rg.lists, k)
			t.Add(rg.name, k, taStats.Sorted, taStats.Random, faStats.Sorted, faStats.Random, nraStats.Sorted, nraStats.Buffered)
		}
	}
	return t
}

func sameScores(a, b []topk.Candidate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if diff := a[i].Score - b[i].Score; diff > 1e-9 || diff < -1e-9 {
			return false
		}
	}
	return true
}

// E5 — §2's RAM-model critique of rank join: on friendly inputs (join
// partners near the tops) HRJN stops after a handful of pulls; on the
// adversarial instance (partners at the bottoms) it pulls nearly
// everything and buffers large intermediate state, even for k = 1.
func E5(n int, ks []int) *stats.Table {
	t := stats.NewTable("E5: rank join — HRJN and J* on friendly vs adversarial inputs",
		"input", "k", "hrjn_pulled", "hrjn_buffered", "hrjn_queue", "jstar_expanded", "jstar_queue")
	for _, k := range ks {
		rF, sF := rankJoinInstance(n, false)
		opF := topk.NewHRJN(topk.NewScan(rF), topk.NewScan(sF))
		topk.TopK(opF, k)
		jF := topk.NewJStar(rF, sF)
		topk.TopK(jF, k)
		t.Add("friendly", k, opF.Stats.PulledLeft+opF.Stats.PulledRight, opF.Stats.Joined, opF.Stats.MaxQueue,
			jF.Stats.Expanded, jF.Stats.MaxQueue)

		rA, sA := rankJoinInstance(n, true)
		opA := topk.NewHRJN(topk.NewScan(rA), topk.NewScan(sA))
		topk.TopK(opA, k)
		// J* explores Θ(n²) partial-match states on this instance (its
		// documented worst case — looser bounds than HRJN's corner
		// threshold), so skip it beyond moderate n to keep the harness
		// responsive; -1 marks the skip.
		jExp, jQ := -1, -1
		if n <= 25000 {
			jA := topk.NewJStar(rA, sA)
			topk.TopK(jA, k)
			jExp, jQ = jA.Stats.Expanded, jA.Stats.MaxQueue
		}
		t.Add("adversarial", k, opA.Stats.PulledLeft+opA.Stats.PulledRight, opA.Stats.Joined, opA.Stats.MaxQueue,
			jExp, jQ)
	}
	return t
}

// rankJoinInstance builds R(A,B), S(B,C) with scores descending in rank.
// In the friendly version tuple i joins tuple i (tops join tops); in the
// adversarial version R's i-th best joins S's i-th worst.
func rankJoinInstance(n int, adversarial bool) (*relation.Relation, *relation.Relation) {
	r := relation.New("R", "A", "B")
	s := relation.New("S", "B", "C")
	for i := 0; i < n; i++ {
		w := 1 - float64(i)/float64(n)
		r.AddWeighted(w, relation.Value(i), relation.Value(i))
		key := relation.Value(i)
		if adversarial {
			key = relation.Value(n - 1 - i)
		}
		s.AddWeighted(w, key, relation.Value(i))
	}
	return r, s
}
