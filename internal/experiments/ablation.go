package experiments

import (
	"context"

	"runtime"

	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/factorized"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/yannakakis"
)

// E13 — the delay ablation of §4: "a direct application of the
// [Lawler–Murty] procedure that solves each partition from scratch leads
// to a delay that is polynomial in the size of the input [61]. However
// … the delay can be reduced to O(log k) [90]." NaiveLawler recomputes
// the DP per partition; Lazy reuses suffix-optimal weights through
// incremental successor structures. Both produce identical output.
func E13(ctx context.Context, ns []int, k int) *stats.Table {
	t := stats.NewTable("E13: Lawler delay ablation — naive (recompute) vs Lazy (incremental)",
		"n", "k", "naive_TTK", "naive_maxdelay", "lazy_TTK", "lazy_maxdelay", "delay_ratio")
	for _, n := range ns {
		inst := workload.Path(4, n, n/5+1, workload.UniformWeights(), 17)
		q, err := yannakakis.NewQuery(inst.H, inst.Rels)
		if err != nil {
			panic(err)
		}

		naiveRec := stats.NewDelayRecorder()
		tn, err := dp.Build(q, sum)
		if err != nil {
			panic(err)
		}
		itN := core.NewNaiveLawler(ctx, tn)
		for i := 0; i < k; i++ {
			if _, ok := itN.Next(); !ok {
				break
			}
			naiveRec.Mark()
		}
		itN.Close()

		lazyRec := stats.NewDelayRecorder()
		tl, err := dp.Build(q, sum)
		if err != nil {
			panic(err)
		}
		itL, err := core.New(ctx, tl, core.Lazy)
		if err != nil {
			panic(err)
		}
		for i := 0; i < k; i++ {
			if _, ok := itL.Next(); !ok {
				break
			}
			lazyRec.Mark()
		}
		itL.Close()

		ratio := float64(naiveRec.TTK(k)) / float64(maxDuration(lazyRec.TTK(k), 1))
		t.Add(n, k, naiveRec.TTK(k), naiveRec.MaxDelay(), lazyRec.TTK(k), lazyRec.MaxDelay(), ratio)
	}
	return t
}

func maxDuration[T ~int64](a T, b T) T {
	if a > b {
		return a
	}
	return b
}

// E14 — memory ablation (Part 3's PART-vs-REC tradeoff): PART
// materialises every emitted solution (O(k·|Q|) extra memory); REC
// shares ranked suffixes across prefixes (factorised memory growing
// with the materialised state lists instead). Measured as the heap
// growth over a full enumeration.
func E14(ctx context.Context, n int) *stats.Table {
	t := stats.NewTable("E14: allocation footprint (path l=4) — full vs top-1000 enumeration",
		"variant", "mode", "results", "alloc_MB", "time")
	inst := workload.Path(4, n, n/5+1, workload.UniformWeights(), 19)
	q, err := yannakakis.NewQuery(inst.H, inst.Rels)
	if err != nil {
		panic(err)
	}
	for _, mode := range []struct {
		name  string
		limit int
	}{{"full", 0}, {"top-1000", 1000}} {
		for _, v := range []core.Variant{core.Lazy, core.All, core.Rec, core.Batch} {
			runtime.GC()
			var before runtime.MemStats
			runtime.ReadMemStats(&before)
			rec := stats.NewDelayRecorder()
			tdp, err := dp.Build(q, sum)
			if err != nil {
				panic(err)
			}
			it, err := core.New(ctx, tdp, v)
			if err != nil {
				panic(err)
			}
			count := 0
			for {
				if _, ok := it.Next(); !ok {
					break
				}
				rec.Mark()
				count++
				if mode.limit > 0 && count >= mode.limit {
					break
				}
			}
			it.Close()
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			allocMB := float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20)
			t.Add(string(v), mode.name, count, allocMB, rec.TTL())
		}
	}
	return t
}

// E15 — factorized databases (Part 2): the d-representation of a join
// result over the join tree is bounded by the input size, while the
// flat output grows with the result count — "cleverly representing
// (intermediate) results in a factorised format". Compression is the
// flat cell count divided by the representation's singletons.
func E15(ns []int) *stats.Table {
	t := stats.NewTable("E15: factorized result representation (path l=4)",
		"n", "results", "flat_cells", "singletons", "compression", "build_time")
	for _, n := range ns {
		inst := workload.Path(4, n, n/5+1, workload.UniformWeights(), 23)
		q, err := yannakakis.NewQuery(inst.H, inst.Rels)
		if err != nil {
			panic(err)
		}
		timer := stats.StartTimer()
		d, err := factorized.Build(q)
		if err != nil {
			panic(err)
		}
		build := timer.Elapsed()
		t.Add(n, d.Count(), d.FlatCells(), d.Singletons(), d.CompressionRatio(), build)
	}
	return t
}
