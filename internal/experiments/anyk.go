package experiments

import (
	"context"

	"time"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/dp"
	"repro/internal/ranking"
	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/yannakakis"
)

// runVariant builds the T-DP from scratch (preprocessing is part of the
// measured time, as in the companion paper), enumerates up to k results
// (k ≤ 0 = all) and returns the delay recorder plus the result count.
func runVariant(ctx context.Context, inst *workload.Instance, agg ranking.Aggregate, v core.Variant, k int) (*stats.DelayRecorder, int) {
	rec := stats.NewDelayRecorder()
	q, err := yannakakis.NewQuery(inst.H, inst.Rels)
	if err != nil {
		panic(err)
	}
	t, err := dp.Build(q, agg)
	if err != nil {
		panic(err)
	}
	it, err := core.New(ctx, t, v)
	if err != nil {
		panic(err)
	}
	defer it.Close()
	count := 0
	for {
		_, ok := it.Next()
		if !ok {
			break
		}
		rec.Mark()
		count++
		if k > 0 && count >= k {
			break
		}
	}
	if err := it.Err(); err != nil {
		panic(err)
	}
	return rec, count
}

// E6 — any-k over 4-relation path queries: time-to-first, time-to-k,
// time-to-last and maximum delay per variant, across input sizes. The
// expected shape (from the companion paper): every any-k variant has
// TTF orders of magnitude below Batch's TTL-equal TTF; Lazy leads the
// PART family; Rec has the best TTL.
func E6(ctx context.Context, ns []int, k int) *stats.Table {
	t := stats.NewTable("E6: any-k on path query (l=4) — TTF/TTK/TTL/max-delay",
		"n", "variant", "results", "TTF", "TTK(k)", "TTL", "max_delay")
	for _, n := range ns {
		inst := workload.Path(4, n, n/5+1, workload.UniformWeights(), 7)
		for _, v := range core.Variants() {
			rec, count := runVariant(ctx, inst, sum, v, 0)
			t.Add(n, string(v), count, rec.TTF(), rec.TTK(k), rec.TTL(), rec.MaxDelay())
		}
	}
	return t
}

// E7 — "neither approach dominates" (§4): checkpoint times for PART
// (Lazy) vs REC vs Batch on a longer path query. PART variants win early
// checkpoints; REC catches up and wins time-to-last; Batch pays
// everything upfront.
func E7(ctx context.Context, n int) *stats.Table {
	t := stats.NewTable("E7: PART vs REC vs Batch on path query (l=6) — checkpoint times",
		"variant", "results", "TTF", "TT(10)", "TT(100)", "TT(1000)", "TT(10000)", "TTL")
	inst := workload.Path(6, n, n/3+1, workload.UniformWeights(), 13)
	for _, v := range []core.Variant{core.Eager, core.Lazy, core.Quick, core.All, core.Take2, core.Rec, core.Batch} {
		rec, count := runVariant(ctx, inst, sum, v, 0)
		t.Add(string(v), count, rec.TTF(), rec.TTK(10), rec.TTK(100), rec.TTK(1000), rec.TTK(10000), rec.TTL())
	}
	return t
}

// E8 — any-k over star queries (non-serial T-DP, §4): same metrics as
// E6 on a 3-relation star.
func E8(ctx context.Context, ns []int, k int) *stats.Table {
	t := stats.NewTable("E8: any-k on star query (l=3) — TTF/TTK/TTL/max-delay",
		"n", "variant", "results", "TTF", "TTK(k)", "TTL", "max_delay")
	for _, n := range ns {
		inst := workload.Star(3, n, n/5+1, workload.UniformWeights(), 11)
		for _, v := range core.Variants() {
			rec, count := runVariant(ctx, inst, sum, v, 0)
			t.Add(n, string(v), count, rec.TTF(), rec.TTK(k), rec.TTL(), rec.MaxDelay())
		}
	}
	return t
}

// E9 — the tutorial's §1 running example: the k lightest 4-cycles of a
// weighted graph, via the submodular-width decomposition with ranked
// enumeration, against the batch baseline (materialise every 4-cycle
// with the single-tree plan, sort, report). TTF of the submodular
// any-k stays near its O(n^1.5) preprocessing; batch pays the full
// output.
func E9(ctx context.Context, ns []int, k int) *stats.Table {
	t := stats.NewTable("E9: top-k lightest 4-cycles — submodular any-k vs batch",
		"edges", "cycles", "subw_TTF", "subw_TTK(k)", "subw_bags", "batch_time", "single_bags")
	for _, n := range ns {
		// Dense preferential-attachment graphs give cycle counts well above
		// the O(n^1.5) bag sizes, so the batch baseline pays for the output
		// while the any-k TTF tracks only the preprocessing.
		g := workload.PreferentialGraph(n/20+1, n, workload.UniformWeights(), 3)
		var rels [4]*relation.Relation
		for i := range rels {
			rels[i] = g.Edges
		}

		rec := stats.NewDelayRecorder()
		it, st, err := decomp.FourCycleSubmodular(ctx, rels, sum, core.Lazy)
		if err != nil {
			panic(err)
		}
		got := 0
		for got < k {
			if _, ok := it.Next(); !ok {
				break
			}
			rec.Mark()
			got++
		}
		it.Close()

		bt := stats.StartTimer()
		itB, stSingle, err := decomp.FourCycleSingleTree(ctx, rels, sum, core.Batch)
		if err != nil {
			panic(err)
		}
		cycles := 0
		for {
			if _, ok := itB.Next(); !ok {
				break
			}
			cycles++
		}
		itB.Close()
		batchTime := bt.Elapsed()

		t.Add(n, cycles, rec.TTF(), rec.TTK(k), st.TotalMaterialized, batchTime, stSingle.TotalMaterialized)
	}
	return t
}

// E11 — the any-k vs batch crossover (§1/§4): total time to the k-th
// result for Lazy vs Batch as k sweeps toward the full output. Batch's
// cost is flat (it always pays everything); Lazy grows with k and the
// curves cross only near k = r.
func E11(ctx context.Context, n int, ks []int) *stats.Table {
	t := stats.NewTable("E11: time-to-k crossover on path query (l=4) — Lazy vs Batch",
		"k", "lazy_time", "batch_time", "output_r")
	inst := workload.Path(4, n, n/5+1, workload.UniformWeights(), 5)
	// Total output size for context.
	_, r := runVariant(ctx, inst, sum, core.Batch, 0)
	for _, k := range ks {
		lazyRec, _ := runVariant(ctx, inst, sum, core.Lazy, k)
		batchRec, _ := runVariant(ctx, inst, sum, core.Batch, k)
		t.Add(k, lazyRec.TTK(min(k, r)), batchRec.TTK(min(k, r)), r)
	}
	return t
}

// E12 — ranking functions (§4): the any-k machinery is agnostic to the
// monotone ranking function; sum, max, descending-sum and the
// lexicographic encoding all enumerate at the same asymptotic cost.
func E12(ctx context.Context, n int) *stats.Table {
	t := stats.NewTable("E12: ranking functions on path query (l=4) — Lazy",
		"ranking", "results", "TTF", "TTK(100)", "TTL")
	aggs := []ranking.Aggregate{ranking.SumCost{}, ranking.MaxCost{}, ranking.SumBenefit{}, ranking.ProductCost{}}
	inst := workload.Path(4, n, n/5+1, workload.UniformWeights(), 9)
	for _, agg := range aggs {
		rec, count := runVariant(ctx, inst, agg, core.Lazy, 0)
		t.Add(agg.Name(), count, rec.TTF(), rec.TTK(100), rec.TTL())
	}
	// Lexicographic: the same instance with per-stage keys encoded into
	// the weights (clone so the other rows are unaffected).
	enc := ranking.LexEncoder{Base: int64(n), Stages: 4}
	lexInst := &workload.Instance{H: inst.H, Rels: make([]*relation.Relation, len(inst.Rels))}
	for si, r := range inst.Rels {
		c := r.Clone()
		for i := range c.Tuples {
			c.Weights[i] = enc.Encode(si, c.Tuples[i][0])
		}
		lexInst.Rels[si] = c
	}
	rec, count := runVariant(ctx, lexInst, ranking.SumCost{}, core.Lazy, 0)
	t.Add("lexicographic", count, rec.TTF(), rec.TTK(100), rec.TTL())
	return t
}

// timeDecompSingle runs the single-tree 4-cycle decomposition to
// completion of its first Next (Boolean check) and reports elapsed time
// and materialised bag tuples.
func timeDecompSingle(ctx context.Context, rels [4]*relation.Relation) (time.Duration, int) {
	t := stats.StartTimer()
	it, st, err := decomp.FourCycleSingleTree(ctx, rels, sum, core.Lazy)
	if err != nil {
		panic(err)
	}
	defer it.Close()
	it.Next()
	return t.Elapsed(), st.TotalMaterialized
}

// timeDecompSub does the same for the submodular-width decomposition.
func timeDecompSub(ctx context.Context, rels [4]*relation.Relation) (time.Duration, int) {
	t := stats.StartTimer()
	it, st, err := decomp.FourCycleSubmodular(ctx, rels, sum, core.Lazy)
	if err != nil {
		panic(err)
	}
	defer it.Close()
	it.Next()
	return t.Elapsed(), st.TotalMaterialized
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
