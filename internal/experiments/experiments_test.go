package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

// The experiment functions are exercised at small scale: each must run,
// produce the advertised columns, and exhibit the qualitative shape the
// corresponding claim predicts.

func parseIntCell(t *testing.T, cell string) int {
	t.Helper()
	v, err := strconv.Atoi(cell)
	if err != nil {
		t.Fatalf("cell %q is not an int: %v", cell, err)
	}
	return v
}

func TestE1Shape(t *testing.T) {
	tb := E1([]int{200, 400})
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Binary intermediates are quadratic: at least (n/2)² (the hub value
	// 1 contributes a few extra matches beyond the grid).
	for i, n := range []int{200, 400} {
		interm := parseIntCell(t, tb.Rows[i][3])
		if interm < (n/2)*(n/2) {
			t.Errorf("n=%d: binary intermediate = %d, want >= %d", n, interm, (n/2)*(n/2))
		}
		// GJ seeks well below the quadratic intermediate.
		seeks := parseIntCell(t, tb.Rows[i][5])
		if seeks >= interm {
			t.Errorf("n=%d: GJ seeks %d not below binary intermediate %d", n, seeks, interm)
		}
	}
}

func TestE2Shape(t *testing.T) {
	tb := E2(context.Background(), []int{200})
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	binaryInterm := parseIntCell(t, tb.Rows[0][2])
	singleBags := parseIntCell(t, tb.Rows[0][4])
	subBags := parseIntCell(t, tb.Rows[0][6])
	if binaryInterm < 100*100 {
		t.Errorf("binary intermediate = %d, expected quadratic", binaryInterm)
	}
	if singleBags < 100*100 {
		t.Errorf("single-tree bags = %d, expected quadratic", singleBags)
	}
	if subBags > 200 {
		t.Errorf("submodular bags = %d, expected near-zero on hub instance", subBags)
	}
}

func TestE3Shape(t *testing.T) {
	tb := E3([]int{300})
	out := parseIntCell(t, tb.Rows[0][1])
	interm := parseIntCell(t, tb.Rows[0][4])
	if out != 0 {
		t.Errorf("output = %d, want 0", out)
	}
	if interm != 300*300 {
		t.Errorf("binary intermediate = %d, want %d", interm, 300*300)
	}
}

func TestE4Shape(t *testing.T) {
	tb := E4(400, []int{1, 10})
	if len(tb.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(tb.Rows))
	}
	// Row 0: correlated k=1 — TA sorted accesses must be far below 2n.
	taSorted := parseIntCell(t, tb.Rows[0][2])
	if taSorted > 400 {
		t.Errorf("correlated TA sorted = %d, expected early stop", taSorted)
	}
	// Hidden-winner rows: TA must scan deep.
	for _, row := range tb.Rows {
		if row[0] == "hidden-winner" {
			deep := parseIntCell(t, row[2])
			if deep < 400 {
				t.Errorf("hidden-winner TA sorted = %d, expected deep scan", deep)
			}
		}
	}
}

func TestE5Shape(t *testing.T) {
	tb := E5(400, []int{1})
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	friendly := parseIntCell(t, tb.Rows[0][2])
	adversarial := parseIntCell(t, tb.Rows[1][2])
	if friendly*10 > adversarial {
		t.Errorf("friendly pulls %d vs adversarial %d: expected a large gap", friendly, adversarial)
	}
}

func TestE6Runs(t *testing.T) {
	tb := E6(context.Background(), []int{200}, 10)
	if len(tb.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 variants", len(tb.Rows))
	}
	// All variants enumerate the same count.
	count := tb.Rows[0][2]
	for _, row := range tb.Rows {
		if row[2] != count {
			t.Errorf("variant %s enumerated %s, others %s", row[1], row[2], count)
		}
	}
}

func TestE7Runs(t *testing.T) {
	tb := E7(context.Background(), 150)
	if len(tb.Rows) != 7 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestE8Runs(t *testing.T) {
	tb := E8(context.Background(), []int{150}, 10)
	if len(tb.Rows) != 7 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestE9Runs(t *testing.T) {
	tb := E9(context.Background(), []int{300}, 5)
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestE10Shape(t *testing.T) {
	tb := E10(200)
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if !strings.HasPrefix(tb.Rows[0][1], "1.5") {
		t.Errorf("triangle rho* = %s, want 1.5", tb.Rows[0][1])
	}
	if tb.Rows[1][1] != "2" {
		t.Errorf("4-cycle rho* = %s, want 2", tb.Rows[1][1])
	}
}

func TestE11Runs(t *testing.T) {
	tb := E11(context.Background(), 150, []int{1, 10, 100})
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestE12Runs(t *testing.T) {
	tb := E12(context.Background(), 150)
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 ranking functions", len(tb.Rows))
	}
	// Every ranking function enumerates the same number of results.
	for _, row := range tb.Rows[1:] {
		if row[1] != tb.Rows[0][1] {
			t.Errorf("ranking %s enumerated %s results, others %s", row[0], row[1], tb.Rows[0][1])
		}
	}
}

func TestE13Shape(t *testing.T) {
	tb := E13(context.Background(), []int{300}, 50)
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	ratio, err := strconv.ParseFloat(tb.Rows[0][6], 64)
	if err != nil {
		t.Fatalf("ratio cell: %v", err)
	}
	if ratio < 1 {
		t.Errorf("naive/lazy delay ratio = %g, expected >= 1", ratio)
	}
}

func TestE14Runs(t *testing.T) {
	tb := E14(context.Background(), 150)
	if len(tb.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 (4 variants × 2 modes)", len(tb.Rows))
	}
	// All variants in full mode enumerate the same count.
	for _, row := range tb.Rows[1:4] {
		if row[2] != tb.Rows[0][2] {
			t.Errorf("variant %s count %s != %s", row[0], row[2], tb.Rows[0][2])
		}
	}
}

func TestE15Shape(t *testing.T) {
	tb := E15([]int{300})
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	flat := parseIntCell(t, tb.Rows[0][2])
	singles := parseIntCell(t, tb.Rows[0][3])
	if singles > 4*300 {
		t.Errorf("singletons = %d, must be bounded by input 4n", singles)
	}
	if flat <= singles {
		t.Errorf("flat cells %d should exceed singletons %d on this workload", flat, singles)
	}
}
