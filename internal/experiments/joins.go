// Package experiments implements the reproduction harness: one function
// per experiment in DESIGN.md's index (E1–E12), each returning a text
// table with the same rows/series the paper's claims describe. The
// cmd/anyk-bench binary and the root-level benchmarks both drive these
// functions; EXPERIMENTS.md records the measured outcomes.
package experiments

import (
	"context"

	"repro/internal/hypergraph"
	"repro/internal/join"
	"repro/internal/ranking"
	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/wcoj"
	"repro/internal/workload"
	"repro/internal/yannakakis"
)

var sum = ranking.SumCost{}

// E1 — §3's headline separation: on the AGM-hard triangle instance,
// every binary join plan materialises Θ(n²) intermediate tuples, while
// worst-case-optimal joins run in Õ(n^1.5). All three binary orders are
// symmetric on this instance, so a single left-deep order is
// representative.
func E1(ns []int) *stats.Table {
	t := stats.NewTable("E1: triangle on AGM-hard instance — binary plan vs WCOJ",
		"n", "output", "binary_time", "binary_interm", "gj_time", "gj_seeks", "lftj_time")
	for _, n := range ns {
		inst := workload.HardTriangle(n, workload.UniformWeights(), 1)
		renamed := renameToVars(inst)

		bt := stats.StartTimer()
		_, st := join.NewPlan(sum, renamed...).Execute()
		binaryTime := bt.Elapsed()

		atoms := instanceAtoms(inst)
		gt := stats.StartTimer()
		out, instr, err := wcoj.Materialize(atoms, inst.H.Vars(), sum)
		if err != nil {
			panic(err)
		}
		gjTime := gt.Elapsed()

		lt := stats.StartTimer()
		if _, err := wcoj.LeapfrogTriejoin(atoms, inst.H.Vars(), sum,
			func(relation.Tuple, float64) bool { return true }); err != nil {
			panic(err)
		}
		lftjTime := lt.Elapsed()

		t.Add(n, out.Len(), binaryTime, st.MaxIntermediate, gjTime, instr.Seeks, lftjTime)
	}
	return t
}

// E2 — the Boolean 4-cycle separation of §1/§3 on the directed-hub
// instance: every pairwise join is Θ(n²) and the fhtw-2 single-tree
// decomposition materialises Θ(n²) bags, while the submodular-width
// decomposition materialises O(n^1.5) (here: almost nothing) and
// output-sensitive WCOJ search also stays small. The graph has no
// directed 4-cycle, making the query Boolean-false.
func E2(ctx context.Context, ns []int) *stats.Table {
	t := stats.NewTable("E2: Boolean 4-cycle on hub instance — binary vs single-tree vs submodular",
		"n", "binary_time", "binary_interm", "single_time", "single_bags", "subw_time", "subw_bags", "gj_bool_time")
	for _, n := range ns {
		inst := workload.FourCycleHub(n, workload.UniformWeights(), 1)
		var rels4 [4]*relation.Relation
		copy(rels4[:], inst.Rels)

		renamed := renameToVars(inst)
		bt := stats.StartTimer()
		res, st := join.NewPlan(sum, renamed...).Execute()
		binaryTime := bt.Elapsed()
		if res.Len() != 0 {
			panic("hub instance must have no 4-cycles")
		}

		sgT, sgBags := timeDecompSingle(ctx, rels4)
		subT, subBags := timeDecompSub(ctx, rels4)

		atoms := instanceAtoms(inst)
		gt := stats.StartTimer()
		if empty, _, err := wcoj.IsEmpty(atoms, inst.H.Vars()); err != nil || !empty {
			panic("expected empty boolean 4-cycle")
		}
		gjTime := gt.Elapsed()

		t.Add(n, binaryTime, st.MaxIntermediate, sgT, sgBags, subT, subBags, gjTime)
	}
	return t
}

// E3 — Yannakakis achieves Õ(n + r) on acyclic queries (§3): on a
// skewed 3-path whose output is empty, the full reducer finishes in
// linear time while the binary plan materialises a quadratic
// intermediate.
func E3(ns []int) *stats.Table {
	t := stats.NewTable("E3: acyclic 3-path with hub skew — Yannakakis vs binary plan",
		"n", "output", "yan_time", "binary_time", "binary_interm")
	for _, n := range ns {
		r1 := relation.New("R1", "X", "Y")
		r2 := relation.New("R2", "X", "Y")
		r3 := relation.New("R3", "X", "Y")
		for i := 0; i < n; i++ {
			v := relation.Value(i)
			r1.AddWeighted(0, v, 0)                   // everything points at hub 0
			r2.AddWeighted(0, 0, v)                   // hub fans out
			r3.AddWeighted(0, relation.Value(n)+7, v) // breaks the chain: empty output
		}
		h := hypergraph.Path(3)
		q, err := yannakakis.NewQuery(h, []*relation.Relation{r1, r2, r3})
		if err != nil {
			panic(err)
		}
		yt := stats.StartTimer()
		out := q.Evaluate(sum)
		yanTime := yt.Elapsed()

		renamed := renameRels(h, []*relation.Relation{r1, r2, r3})
		bt := stats.StartTimer()
		_, st := join.NewPlan(sum, renamed...).Execute()
		binaryTime := bt.Elapsed()

		t.Add(n, out.Len(), yanTime, binaryTime, st.MaxIntermediate)
	}
	return t
}

// E10 — the AGM bound (§3): fractional edge covers and bounds for the
// canonical query shapes, with the hard-instance output showing
// tightness for the triangle.
func E10(n int) *stats.Table {
	t := stats.NewTable("E10: fractional edge covers and AGM bounds",
		"query", "rho*", "agm_bound", "hard_output", "note")
	nf := float64(n)

	tri := hypergraph.Cycle(3)
	_, rho3, err := tri.FractionalEdgeCover()
	if err != nil {
		panic(err)
	}
	agm3, _ := tri.AGMBound([]float64{nf, nf, nf})
	inst := workload.HardTriangle(n, workload.ZeroWeights(), 0)
	out, _, err := wcoj.Materialize(instanceAtoms(inst), inst.H.Vars(), sum)
	if err != nil {
		panic(err)
	}
	t.Add("triangle", rho3, agm3, out.Len(), "output Θ(n) ≪ bound n^1.5; bound tight on other instances")

	c4 := hypergraph.Cycle(4)
	_, rho4, _ := c4.FractionalEdgeCover()
	agm4, _ := c4.AGMBound([]float64{nf, nf, nf, nf})
	grid := workload.HardTriangle(n, workload.ZeroWeights(), 0) // reuse star-shaped edges
	c4out, _, err := wcoj.Materialize([]wcoj.Atom{
		{Rel: grid.Rels[0], Vars: []string{"A0", "A1"}},
		{Rel: grid.Rels[1], Vars: []string{"A1", "A2"}},
		{Rel: grid.Rels[2], Vars: []string{"A2", "A3"}},
		{Rel: grid.Rels[0], Vars: []string{"A3", "A0"}},
	}, []string{"A0", "A1", "A2", "A3"}, sum)
	if err != nil {
		panic(err)
	}
	t.Add("4-cycle", rho4, agm4, c4out.Len(), "hub instance output Θ(n²) matches bound n²")

	p3 := hypergraph.Path(3)
	_, rhoP, _ := p3.FractionalEdgeCover()
	agmP, _ := p3.AGMBound([]float64{nf, nf, nf})
	t.Add("3-path", rhoP, agmP, "-", "acyclic: Yannakakis gives Õ(n+r) regardless")

	s3 := hypergraph.Star(3)
	_, rhoS, _ := s3.FractionalEdgeCover()
	agmS, _ := s3.AGMBound([]float64{nf, nf, nf})
	t.Add("3-star", rhoS, agmS, "-", "acyclic")
	return t
}

// renameToVars renames an instance's relations to their hypergraph
// variables so binary plans join on query variables.
func renameToVars(inst *workload.Instance) []*relation.Relation {
	return renameRels(inst.H, inst.Rels)
}

func renameRels(h *hypergraph.Hypergraph, rels []*relation.Relation) []*relation.Relation {
	out := make([]*relation.Relation, len(rels))
	for i, r := range rels {
		nr := relation.New(r.Name, h.Edges[i].Vars...)
		nr.Tuples = r.Tuples
		nr.Weights = r.Weights
		out[i] = nr
	}
	return out
}

func instanceAtoms(inst *workload.Instance) []wcoj.Atom {
	atoms := make([]wcoj.Atom, len(inst.Rels))
	for i, r := range inst.Rels {
		atoms[i] = wcoj.Atom{Rel: r, Vars: inst.H.Edges[i].Vars}
	}
	return atoms
}
