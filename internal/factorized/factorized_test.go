package factorized

import (
	"testing"
	"testing/quick"

	"repro/internal/hypergraph"
	"repro/internal/ranking"
	"repro/internal/relation"
	"repro/internal/workload"
	"repro/internal/yannakakis"
)

var sum = ranking.SumCost{}

func mustDRep(t *testing.T, inst *workload.Instance) (*DRep, *yannakakis.Query) {
	t.Helper()
	q, err := yannakakis.NewQuery(inst.H, inst.Rels)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Build(q)
	if err != nil {
		t.Fatal(err)
	}
	return d, q
}

func TestCountMatchesYannakakis(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		inst := workload.Path(3, 60, 8, workload.UniformWeights(), seed)
		d, q := mustDRep(t, inst)
		if got, want := d.Count(), q.Count(); got != want {
			t.Fatalf("seed %d: DRep.Count = %d, Yannakakis Count = %d", seed, got, want)
		}
	}
}

func TestEnumerateMatchesEvaluate(t *testing.T) {
	inst := workload.Star(3, 30, 5, workload.UniformWeights(), 4)
	d, q := mustDRep(t, inst)
	tuples := d.Enumerate(0)
	want := q.Evaluate(sum)
	if len(tuples) != want.Len() {
		t.Fatalf("enumerated %d, Evaluate %d", len(tuples), want.Len())
	}
	got := relation.New("drep", d.OutAttrs...)
	for _, tp := range tuples {
		got.AddTuple(tp, 0)
	}
	wantProj, err := want.Project(d.OutAttrs...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantProj.Weights {
		wantProj.Weights[i] = 0
	}
	if !got.EqualAsSet(wantProj) {
		t.Fatal("enumerated tuples differ from Evaluate")
	}
}

func TestEnumerateLimit(t *testing.T) {
	inst := workload.Path(2, 40, 4, workload.UniformWeights(), 7)
	d, _ := mustDRep(t, inst)
	if d.Count() < 5 {
		t.Skip("instance too small")
	}
	if got := d.Enumerate(5); len(got) != 5 {
		t.Fatalf("Enumerate(5) = %d tuples", len(got))
	}
}

func TestEmptyResult(t *testing.T) {
	r1 := relation.New("R1", "X", "Y")
	r1.Add(1, 2)
	r2 := relation.New("R2", "X", "Y")
	r2.Add(3, 4)
	inst := &workload.Instance{H: hypergraph.Path(2), Rels: []*relation.Relation{r1, r2}}
	d, _ := mustDRep(t, inst)
	if d.Count() != 0 || d.Singletons() != 0 || len(d.Enumerate(0)) != 0 {
		t.Fatal("empty result should have empty representation")
	}
}

// The headline property of factorized databases: on the full cross
// product (every tuple joins every tuple through a single key), the
// flat result has n^l tuples while the d-representation stays at l·n
// singletons — an exponential gap.
func TestExponentialCompression(t *testing.T) {
	l, n := 4, 10
	h := hypergraph.Path(l)
	rels := make([]*relation.Relation, l)
	for i := range rels {
		r := relation.New("R", "X", "Y")
		for j := relation.Value(0); j < relation.Value(n); j++ {
			r.AddWeighted(float64(j), 0, 0) // every tuple is (0,0): full cross join
		}
		rels[i] = r
	}
	inst := &workload.Instance{H: h, Rels: rels}
	d, _ := mustDRep(t, inst)
	if got, want := d.Count(), pow(n, l); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	if s := d.Singletons(); s != l*n {
		t.Fatalf("Singletons = %d, want %d", s, l*n)
	}
	if ratio := d.CompressionRatio(); ratio < 100 {
		t.Fatalf("compression ratio = %g, expected exponential gap", ratio)
	}
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

// Sharing: distinct parent tuples with the same join key reference the
// same child union, so singletons never exceed total input tuples.
func TestSingletonsBoundedByInput(t *testing.T) {
	f := func(seed uint16) bool {
		inst := workload.Path(3, 40, 5, workload.UniformWeights(), uint64(seed))
		q, err := yannakakis.NewQuery(inst.H, inst.Rels)
		if err != nil {
			return false
		}
		d, err := Build(q)
		if err != nil {
			return false
		}
		totalInput := 0
		for _, r := range inst.Rels {
			totalInput += r.Len()
		}
		return d.Singletons() <= totalInput
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Count equals Enumerate length on random bushy instances.
func TestCountEnumerateAgreeProperty(t *testing.T) {
	f := func(seed uint16) bool {
		inst := workload.RandomTree(3, 25, 4, workload.UniformWeights(), uint64(seed))
		q, err := yannakakis.NewQuery(inst.H, inst.Rels)
		if err != nil {
			return false
		}
		d, err := Build(q)
		if err != nil {
			return false
		}
		return d.Count() == len(d.Enumerate(0))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCompressionRatioOnEmptyIsOne(t *testing.T) {
	r1 := relation.New("R1", "X", "Y")
	r1.Add(1, 2)
	r2 := relation.New("R2", "X", "Y")
	r2.Add(9, 9)
	inst := &workload.Instance{H: hypergraph.Path(2), Rels: []*relation.Relation{r1, r2}}
	d, _ := mustDRep(t, inst)
	if d.CompressionRatio() != 1 {
		t.Fatalf("ratio on empty = %g, want 1", d.CompressionRatio())
	}
}
