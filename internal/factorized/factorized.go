// Package factorized implements factorized (d-)representations of join
// results — the Part 2 topic of the tutorial ("factorised databases aim
// to reduce query complexity by cleverly representing (intermediate)
// results in a factorised format", Olteanu & Závodný). A join result
// set is stored as a DAG of union and product nodes over tuple
// singletons: unions range over the tuples of one candidate group,
// products combine a tuple with its children's sub-results, and
// sharing (the "d" in d-representation) arises because distinct parent
// tuples with the same join key point at the same child union.
//
// For tree-shaped queries the representation has size O(Σ|R_i|)
// regardless of the flat output size, which can be exponentially larger
// — the gap package tests and experiment E15 measure.
package factorized

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/yannakakis"
)

// DRep is a factorized representation of an acyclic query's result.
type DRep struct {
	tree   *treeInfo
	unions map[unionKey]*unionNode
	root   *unionNode
	// OutAttrs is the output schema of Enumerate.
	OutAttrs []string
	emits    []emitSpec
}

type treeInfo struct {
	red      []*relation.Relation
	order    []int
	parent   []int
	children [][]int
	// childKeyCols[u][ci] = columns of u's relation forming the join key
	// with child children[u][ci].
	childKeyCols [][][]int
	// selfKeyCols[u] = columns of u's relation forming the key by which
	// u's tuples group under their parent.
	selfKeyCols [][]int
}

type unionKey struct {
	node int
	key  string
}

// unionNode is a union over the tuples of one candidate group; each
// member is implicitly a product of its singleton with the child unions
// selected by its join keys.
type unionNode struct {
	node int
	rows []int32
	// childUnions[i][ci] is the union for rows[i]'s ci-th child.
	childUnions [][]*unionNode
	count       int // memoized result count of this sub-DAG
}

type emitSpec struct {
	node   int
	col    int
	outPos int
}

// Build constructs the d-representation of q's result: full reduction,
// then one pass creating shared union nodes per (tree node, join key).
func Build(q *yannakakis.Query) (*DRep, error) {
	red := q.FullReduce()
	t := q.Tree
	n := len(red)
	info := &treeInfo{
		red:          red,
		order:        t.Order,
		parent:       make([]int, n),
		children:     make([][]int, n),
		childKeyCols: make([][][]int, n),
		selfKeyCols:  make([][]int, n),
	}
	for u := 0; u < n; u++ {
		info.parent[u] = t.Parent[u]
		info.children[u] = t.Children[u]
	}
	for u := 0; u < n; u++ {
		info.childKeyCols[u] = make([][]int, len(info.children[u]))
		for ci, c := range info.children[u] {
			shared := red[u].SharedAttrs(red[c])
			if len(shared) == 0 {
				return nil, fmt.Errorf("factorized: tree edge %d-%d shares no attributes", u, c)
			}
			cols, err := red[u].AttrIndexes(shared)
			if err != nil {
				return nil, err
			}
			info.childKeyCols[u][ci] = cols
			selfCols, err := red[c].AttrIndexes(shared)
			if err != nil {
				return nil, err
			}
			info.selfKeyCols[c] = selfCols
		}
	}
	d := &DRep{tree: info, unions: make(map[unionKey]*unionNode)}

	// Group every node's rows by self key so unions can be created by key.
	groups := make([]map[string][]int32, n)
	var buf []byte
	for u := 0; u < n; u++ {
		groups[u] = make(map[string][]int32)
		for row, tp := range red[u].Tuples {
			buf = keyOf(buf[:0], tp, info.selfKeyCols[u])
			groups[u][string(buf)] = append(groups[u][string(buf)], int32(row))
		}
	}

	// Build unions bottom-up (reverse preorder ensures children exist).
	for oi := len(info.order) - 1; oi >= 0; oi-- {
		u := info.order[oi]
		for key, rows := range groups[u] {
			un := &unionNode{node: u, rows: rows, count: -1}
			un.childUnions = make([][]*unionNode, len(rows))
			for i, row := range rows {
				tp := red[u].Tuples[row]
				cus := make([]*unionNode, len(info.children[u]))
				for ci, c := range info.children[u] {
					buf = keyOf(buf[:0], tp, info.childKeyCols[u][ci])
					child := d.unions[unionKey{node: c, key: string(buf)}]
					if child == nil {
						return nil, fmt.Errorf("factorized: dangling tuple survived reduction at node %d", u)
					}
					cus[ci] = child
				}
				un.childUnions[i] = cus
			}
			d.unions[unionKey{node: u, key: key}] = un
		}
	}
	root := info.order[0]
	d.root = d.unions[unionKey{node: root, key: ""}]

	// Output schema (first appearance over preorder).
	seen := make(map[string]bool)
	for _, u := range info.order {
		for col, v := range red[u].Attrs {
			if !seen[v] {
				seen[v] = true
				d.emits = append(d.emits, emitSpec{node: u, col: col, outPos: len(d.OutAttrs)})
				d.OutAttrs = append(d.OutAttrs, v)
			}
		}
	}
	return d, nil
}

func keyOf(buf []byte, tp relation.Tuple, cols []int) []byte {
	key := make([]relation.Value, len(cols))
	for i, c := range cols {
		key[i] = tp[c]
	}
	return relation.AppendKey(buf, key)
}

// Count returns the number of flat results, computed over the DAG with
// memoization (each union counted once).
func (d *DRep) Count() int {
	if d.root == nil {
		return 0
	}
	return d.countUnion(d.root)
}

func (d *DRep) countUnion(u *unionNode) int {
	if u.count >= 0 {
		return u.count
	}
	total := 0
	for i := range u.rows {
		c := 1
		for _, cu := range u.childUnions[i] {
			c *= d.countUnion(cu)
		}
		total += c
	}
	u.count = total
	return total
}

// Singletons counts the tuple singletons of the representation — its
// size in the factorized-database sense. Shared sub-DAGs count once.
func (d *DRep) Singletons() int {
	seen := make(map[*unionNode]bool)
	total := 0
	var visit func(*unionNode)
	visit = func(u *unionNode) {
		if seen[u] {
			return
		}
		seen[u] = true
		total += len(u.rows)
		for _, cus := range u.childUnions {
			for _, cu := range cus {
				visit(cu)
			}
		}
	}
	if d.root != nil {
		visit(d.root)
	}
	return total
}

// FlatCells returns the number of value cells a flat materialisation
// would need: Count() × output arity.
func (d *DRep) FlatCells() int { return d.Count() * len(d.OutAttrs) }

// CompressionRatio is FlatCells / Singletons (≥ 1 whenever results
// exist; grows with sharing).
func (d *DRep) CompressionRatio() float64 {
	s := d.Singletons()
	if s == 0 {
		return 1
	}
	return float64(d.FlatCells()) / float64(s)
}

// Enumerate materialises up to limit flat results from the DAG
// (limit ≤ 0 = all), in unspecified order.
func (d *DRep) Enumerate(limit int) []relation.Tuple {
	if d.root == nil {
		return nil
	}
	var out []relation.Tuple
	rows := make(map[int]int32, len(d.tree.red))
	var rec func(stack []*unionNode) bool
	rec = func(stack []*unionNode) bool {
		if len(stack) == 0 {
			tup := make(relation.Tuple, len(d.OutAttrs))
			for _, sp := range d.emits {
				tup[sp.outPos] = d.tree.red[sp.node].Tuples[rows[sp.node]][sp.col]
			}
			out = append(out, tup)
			return limit <= 0 || len(out) < limit
		}
		u := stack[0]
		rest := stack[1:]
		for i, row := range u.rows {
			rows[u.node] = row
			next := append(append([]*unionNode{}, u.childUnions[i]...), rest...)
			if !rec(next) {
				return false
			}
		}
		return true
	}
	rec([]*unionNode{d.root})
	return out
}
