// Package wcoj implements worst-case-optimal multiway join algorithms
// (Part 3 of the tutorial, PAPER.md): Generic-Join and Leapfrog
// Triejoin. Instead of joining two relations at a time, they proceed
// one *variable* at a time, intersecting the candidate values of every
// relation containing that variable — which is what bounds their
// running time by the AGM bound of the query.
//
// Relations are accessed through implicit tries: each atom's tuples are
// sorted lexicographically by its variables in the global variable
// order, and a trie node is an interval of that sorted array.
//
// Because Generic-Join decomposes over the first variable's domain
// (the observation behind the skew analysis of "Skew Strikes Back",
// Ngo–Ré–Rudra), MaterializeParallel partitions the top-level
// intersection across a bounded worker pool (internal/parallel) while
// staying bit-identical to the sequential Materialize — same output
// order, same Instr totals. See docs/ARCHITECTURE.md for the
// determinism invariants.
package wcoj

import (
	"fmt"
	"sort"

	"repro/internal/relation"
)

// Atom binds a relation to query variables: Vars[i] names the variable
// of the relation's i-th column. Within one atom, variables must be
// distinct.
type Atom struct {
	Rel  *relation.Relation
	Vars []string
}

// atomState is the per-atom trie cursor used during the join.
type atomState struct {
	rel  *relation.Relation
	cols []int // relation columns ordered by global variable order
	rows []int32
	// iv[d] is the row interval after this atom's first d variables have
	// been bound; iv[0] = [0, len).
	iv [][2]int32
	// globalPos[d] is the global variable position of the atom's d-th
	// variable (strictly increasing).
	globalPos []int
}

// newAtomState sorts the atom's tuples by its variables in global order.
func newAtomState(a Atom, orderIndex map[string]int) (*atomState, error) {
	if len(a.Vars) != a.Rel.Arity() {
		return nil, fmt.Errorf("wcoj: atom %s has %d vars for arity %d", a.Rel.Name, len(a.Vars), a.Rel.Arity())
	}
	seen := make(map[string]bool)
	type cv struct {
		col int
		pos int
	}
	cvs := make([]cv, 0, len(a.Vars))
	for col, v := range a.Vars {
		if seen[v] {
			return nil, fmt.Errorf("wcoj: atom %s repeats variable %s", a.Rel.Name, v)
		}
		seen[v] = true
		pos, ok := orderIndex[v]
		if !ok {
			return nil, fmt.Errorf("wcoj: atom %s variable %s missing from variable order", a.Rel.Name, v)
		}
		cvs = append(cvs, cv{col: col, pos: pos})
	}
	sort.Slice(cvs, func(i, j int) bool { return cvs[i].pos < cvs[j].pos })
	st := &atomState{rel: a.Rel}
	for _, x := range cvs {
		st.cols = append(st.cols, x.col)
		st.globalPos = append(st.globalPos, x.pos)
	}
	st.rows = make([]int32, a.Rel.Len())
	for i := range st.rows {
		st.rows[i] = int32(i)
	}
	sort.Slice(st.rows, func(i, j int) bool {
		ti, tj := a.Rel.Tuples[st.rows[i]], a.Rel.Tuples[st.rows[j]]
		for _, c := range st.cols {
			if ti[c] != tj[c] {
				return ti[c] < tj[c]
			}
		}
		return false
	})
	st.iv = make([][2]int32, len(st.cols)+1)
	st.iv[0] = [2]int32{0, int32(len(st.rows))}
	return st, nil
}

// valueAt returns the value of the atom's depth-d variable in sorted row r.
func (st *atomState) valueAt(r int32, d int) relation.Value {
	return st.rel.Tuples[st.rows[r]][st.cols[d]]
}

// narrow binds the atom's depth-d variable to v within the current
// interval, returning false if no rows match.
func (st *atomState) narrow(d int, v relation.Value) bool {
	lo, hi := st.iv[d][0], st.iv[d][1]
	// Binary search for the [first, last) block with value v at depth d.
	first := lo + int32(sort.Search(int(hi-lo), func(i int) bool {
		return st.valueAt(lo+int32(i), d) >= v
	}))
	if first == hi || st.valueAt(first, d) != v {
		return false
	}
	last := lo + int32(sort.Search(int(hi-lo), func(i int) bool {
		return st.valueAt(lo+int32(i), d) > v
	}))
	st.iv[d+1] = [2]int32{first, last}
	return true
}

// seekGE positions within the current depth-d interval at the first row
// whose value is ≥ v, returning that row or hi when exhausted.
func (st *atomState) seekGE(d int, from int32, v relation.Value) int32 {
	hi := st.iv[d][1]
	return from + int32(sort.Search(int(hi-from), func(i int) bool {
		return st.valueAt(from+int32(i), d) >= v
	}))
}

// nextBlock returns the first row after the block of rows sharing the
// depth-d value of row r.
func (st *atomState) nextBlock(d int, r int32) int32 {
	v := st.valueAt(r, d)
	hi := st.iv[d][1]
	return r + int32(sort.Search(int(hi-r), func(i int) bool {
		return st.valueAt(r+int32(i), d) > v
	}))
}

// depthOfGlobal returns the atom's depth for global position pos, or -1.
func (st *atomState) depthOfGlobal(pos int) int {
	for d, p := range st.globalPos {
		if p == pos {
			return d
		}
	}
	return -1
}
