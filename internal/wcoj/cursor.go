package wcoj

import "repro/internal/relation"

// Trie exposes the package's implicit sorted-array trie cursor to
// external consumers — internal/sample's random walks need the same
// per-atom intervals, narrows, and block iteration the join driver
// uses, without re-implementing (and re-sorting) the structure. A Trie
// wraps one atom; the immutable sorted order is shared across Clones,
// so building once and cloning per goroutine is cheap.
type Trie struct {
	st *atomState
}

// NewTrie sorts the atom's tuples by its variables in the global
// variable order and returns a cursor positioned at the root.
func NewTrie(a Atom, varOrder []string) (*Trie, error) {
	orderIndex := make(map[string]int, len(varOrder))
	for i, v := range varOrder {
		orderIndex[v] = i
	}
	st, err := newAtomState(a, orderIndex)
	if err != nil {
		return nil, err
	}
	return &Trie{st: st}, nil
}

// Clone returns an independent cursor over the same sorted data.
func (t *Trie) Clone() *Trie { return &Trie{st: t.st.clone()} }

// Depth returns the number of trie levels (the atom's arity).
func (t *Trie) Depth() int { return len(t.st.cols) }

// GlobalPos returns the global variable position of the atom's depth-d
// variable; positions are strictly increasing in d.
func (t *Trie) GlobalPos(d int) int { return t.st.globalPos[d] }

// Len returns the size of the current interval at depth d: the number
// of rows compatible with the first d bound variables (d == 0 is the
// whole relation, d == Depth() the fully-bound match block).
func (t *Trie) Len(d int) int {
	return int(t.st.iv[d][1] - t.st.iv[d][0])
}

// Narrow binds the depth-d variable to v within the current interval,
// returning false (and leaving deeper levels stale) when no rows match.
func (t *Trie) Narrow(d int, v relation.Value) bool { return t.st.narrow(d, v) }

// Interval returns the current row interval [lo, hi) at depth d.
func (t *Trie) Interval(d int) (lo, hi int32) {
	return t.st.iv[d][0], t.st.iv[d][1]
}

// ValueAt returns the depth-d value of sorted row r.
func (t *Trie) ValueAt(r int32, d int) relation.Value { return t.st.valueAt(r, d) }

// NextBlock returns the first row after the block sharing row r's
// depth-d value, for iterating the distinct values of an interval.
func (t *Trie) NextBlock(d int, r int32) int32 { return t.st.nextBlock(d, r) }

// RowWeight returns the weight of sorted row r.
func (t *Trie) RowWeight(r int32) float64 {
	return t.st.rel.Weights[t.st.rows[r]]
}
