package wcoj

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/ranking"
	"repro/internal/relation"
)

// randomEdges returns a deterministic pseudo-random edge list.
func randomEdges(n, domain int, seed uint64) [][2]relation.Value {
	state := seed
	next := func() relation.Value {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return relation.Value(state % uint64(domain))
	}
	edges := make([][2]relation.Value, n)
	for i := range edges {
		edges[i] = [2]relation.Value{next(), next()}
	}
	return edges
}

// parallelFixtures covers the shapes the decomposition layer feeds into
// Materialize: the triangle, a path (acyclic bag), a higher-arity mixed
// join, and an empty intersection.
func parallelFixtures() map[string]struct {
	atoms []Atom
	order []string
} {
	tri := triangleAtoms(randomEdges(300, 25, 7))
	path := []Atom{
		{Rel: edgeRel("R", randomEdges(200, 30, 1)), Vars: []string{"A", "B"}},
		{Rel: edgeRel("S", randomEdges(200, 30, 2)), Vars: []string{"B", "C"}},
		{Rel: edgeRel("T", randomEdges(200, 30, 3)), Vars: []string{"C", "D"}},
	}
	wide := relation.New("W", "A", "B", "C")
	for i, e := range randomEdges(150, 12, 9) {
		wide.AddWeighted(float64(i), e[0], e[1], (e[0]+e[1])%12)
	}
	mixed := []Atom{
		{Rel: wide, Vars: []string{"A", "B", "C"}},
		{Rel: edgeRel("S", randomEdges(150, 12, 11)), Vars: []string{"B", "C"}},
	}
	empty := []Atom{
		{Rel: edgeRel("R", [][2]relation.Value{{1, 2}}), Vars: []string{"A", "B"}},
		{Rel: edgeRel("S", [][2]relation.Value{{3, 4}}), Vars: []string{"A", "B"}},
	}
	return map[string]struct {
		atoms []Atom
		order []string
	}{
		"triangle": {tri, []string{"A", "B", "C"}},
		"path":     {path, []string{"B", "A", "C", "D"}},
		"mixed":    {mixed, []string{"A", "B", "C"}},
		"empty":    {empty, []string{"A", "B"}},
	}
}

// TestMaterializeParallelBitIdentical is the core determinism contract:
// for every fixture and worker count, the parallel materialisation must
// produce the same relation — same tuples in the same order, same
// weights — and the same Instr totals as the sequential one.
func TestMaterializeParallelBitIdentical(t *testing.T) {
	for name, fx := range parallelFixtures() {
		want, wantInstr, err := Materialize(fx.atoms, fx.order, sum)
		if err != nil {
			t.Fatalf("%s: sequential: %v", name, err)
		}
		for _, workers := range []int{1, 2, 3, 8, 16} {
			got, gotInstr, err := MaterializeParallel(context.Background(), fx.atoms, fx.order, sum, workers)
			if err != nil {
				t.Fatalf("%s/workers=%d: %v", name, workers, err)
			}
			assertSameRelation(t, fmt.Sprintf("%s/workers=%d", name, workers), got, want)
			if *gotInstr != *wantInstr {
				t.Errorf("%s/workers=%d: Instr = %+v, want %+v", name, workers, *gotInstr, *wantInstr)
			}
		}
	}
}

func assertSameRelation(t *testing.T, name string, got, want *relation.Relation) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d tuples, want %d", name, got.Len(), want.Len())
	}
	for i := range want.Tuples {
		if got.Weights[i] != want.Weights[i] {
			t.Fatalf("%s: weight[%d] = %v, want %v", name, i, got.Weights[i], want.Weights[i])
		}
		for c := range want.Tuples[i] {
			if got.Tuples[i][c] != want.Tuples[i][c] {
				t.Fatalf("%s: tuple[%d] = %v, want %v", name, i, got.Tuples[i], want.Tuples[i])
			}
		}
	}
}

// TestMaterializeParallelAggregates checks parity holds under every
// ranking aggregate, not just SumCost (the aggregate shapes the leaf
// weights the workers emit).
func TestMaterializeParallelAggregates(t *testing.T) {
	atoms := triangleAtoms(randomEdges(200, 20, 13))
	order := []string{"A", "B", "C"}
	for _, agg := range []ranking.Aggregate{ranking.SumCost{}, ranking.SumBenefit{}, ranking.MaxCost{}, ranking.MinBenefit{}, ranking.ProductCost{}} {
		want, wantInstr, err := Materialize(atoms, order, agg)
		if err != nil {
			t.Fatal(err)
		}
		got, gotInstr, err := MaterializeParallel(context.Background(), atoms, order, agg, 4)
		if err != nil {
			t.Fatal(err)
		}
		assertSameRelation(t, agg.Name(), got, want)
		if *gotInstr != *wantInstr {
			t.Errorf("%s: Instr = %+v, want %+v", agg.Name(), *gotInstr, *wantInstr)
		}
	}
}

func TestMaterializeParallelPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	atoms := triangleAtoms(randomEdges(100, 15, 3))
	_, _, err := MaterializeParallel(ctx, atoms, []string{"A", "B", "C"}, sum, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// countdownCtx is a context that reports cancellation after its Err
// method has been consulted a fixed number of times — a deterministic
// way to cancel in the middle of a partition sweep (cancellation is
// only ever checked between partitions).
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestMaterializeParallelMidCancel cancels after a few partition-
// boundary checks; the call must surface ctx.Err() rather than a
// partial relation.
func TestMaterializeParallelMidCancel(t *testing.T) {
	ctx := &countdownCtx{Context: context.Background()}
	ctx.remaining.Store(3)
	atoms := triangleAtoms(randomEdges(400, 30, 21))
	out, _, err := MaterializeParallel(ctx, atoms, []string{"A", "B", "C"}, sum, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if out != nil {
		t.Fatal("canceled materialisation must not return a partial relation")
	}
}

// TestMaterializeParallelGOMAXPROCS1 pins GOMAXPROCS to 1: the worker
// pool degrades to interleaved goroutines on one P and the output must
// still be bit-identical.
func TestMaterializeParallelGOMAXPROCS1(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	atoms := triangleAtoms(randomEdges(250, 22, 5))
	order := []string{"A", "B", "C"}
	want, wantInstr, err := Materialize(atoms, order, sum)
	if err != nil {
		t.Fatal(err)
	}
	got, gotInstr, err := MaterializeParallel(context.Background(), atoms, order, sum, 4)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRelation(t, "gomaxprocs1", got, want)
	if *gotInstr != *wantInstr {
		t.Errorf("Instr = %+v, want %+v", *gotInstr, *wantInstr)
	}
}
