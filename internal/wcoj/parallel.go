package wcoj

import (
	"context"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/ranking"
	"repro/internal/relation"
)

// chunkFactor oversubscribes the partition count relative to the worker
// count so that moderate skew in per-value subtree sizes still
// load-balances across workers even before the heavy/light split kicks
// in.
const chunkFactor = 4

// SkewHints reports externally known heavy-hitter values for a query
// variable — typically the catalog's Misra–Gries sketch entries for the
// columns bound to that variable. The planner treats hinted values as
// heavy at a lower local-weight threshold than unhinted ones, since a
// value that is frequent in the base data tends to own a deep join
// subtree even when its top-level interval product looks moderate. A
// nil function (or nil result) disables hinting; hints never change
// results, only the partition shapes.
type SkewHints func(variable string) []relation.Value

// clone returns an independent trie cursor over the same sorted atom
// data: the sorted row order, column mapping, and global positions are
// immutable after newAtomState and shared; only the mutable interval
// stack is fresh.
func (st *atomState) clone() *atomState {
	c := &atomState{rel: st.rel, cols: st.cols, rows: st.rows, globalPos: st.globalPos}
	c.iv = make([][2]int32, len(st.iv))
	c.iv[0] = st.iv[0]
	return c
}

// clone returns an independent driver over cloned atom cursors, so
// several workers can descend disjoint subtrees of one join
// concurrently. Each clone counts work into its own Instr.
func (j *driver) clone(emit Emit) *driver {
	c := &driver{
		varOrder: j.varOrder,
		byVar:    make([][]atomDepth, len(j.varOrder)),
		agg:      j.agg,
		emit:     emit,
		instr:    &Instr{},
		assigned: make(relation.Tuple, len(j.varOrder)),
		leapfrog: j.leapfrog,
	}
	clones := make(map[*atomState]*atomState, len(j.atoms))
	for _, st := range j.atoms {
		cs := st.clone()
		clones[st] = cs
		c.atoms = append(c.atoms, cs)
	}
	for pos, parts := range j.byVar {
		for _, p := range parts {
			c.byVar[pos] = append(c.byVar[pos], atomDepth{atom: clones[p.atom], depth: p.depth})
		}
	}
	return c
}

// lvlVal is one surviving value of a coordinator intersection pass,
// together with a work proxy: the product of the narrowed interval
// sizes across the atoms containing the variable. The proxy is free
// (narrow already computed the intervals) and upper-bounds the number
// of row combinations the value's subtree can touch at this level.
type lvlVal struct {
	v relation.Value
	w float64
}

// levelValues runs exactly the position-pos loop of the sequential
// Generic-Join solve — same driver-atom selection, same narrow and
// nextBlock sequence, same Seeks accounting — but records the surviving
// values (with their interval-product work proxies) instead of
// recursing. Any variables before pos must already be bound on this
// driver's cursors. The recorded values, replayed on driver clones,
// reproduce the sequential emission order; the Seeks charged here plus
// the clones' subtree Seeks reproduce the sequential totals.
func (j *driver) levelValues(pos int) []lvlVal {
	parts := j.byVar[pos]
	drv := parts[0]
	size := drv.atom.iv[drv.depth][1] - drv.atom.iv[drv.depth][0]
	for _, p := range parts[1:] {
		if s := p.atom.iv[p.depth][1] - p.atom.iv[p.depth][0]; s < size {
			drv, size = p, s
		}
	}
	var vals []lvlVal
	lo, hi := drv.atom.iv[drv.depth][0], drv.atom.iv[drv.depth][1]
	for r := lo; r < hi; {
		v := drv.atom.valueAt(r, drv.depth)
		ok := true
		w := 1.0
		for _, p := range parts {
			j.instr.Seeks++
			if !p.atom.narrow(p.depth, v) {
				ok = false
				break
			}
			w *= float64(p.atom.iv[p.depth+1][1] - p.atom.iv[p.depth+1][0])
		}
		if ok {
			vals = append(vals, lvlVal{v: v, w: w})
		}
		r = drv.atom.nextBlock(drv.depth, r)
		j.instr.Seeks++
	}
	return vals
}

// bindUncounted binds the pos-th variable to an already-intersected
// value without touching Instr: the narrows replay work a coordinator
// pass already charged, so summing the coordinator's and the workers'
// counters reproduces the sequential totals exactly.
func (j *driver) bindUncounted(pos int, v relation.Value) {
	for _, p := range j.byVar[pos] {
		if !p.atom.narrow(p.depth, v) {
			panic("wcoj: parallel narrow must succeed on intersected value")
		}
	}
	j.assigned[pos] = v
}

// task is one unit of parallel work, in sequential output order: either
// a contiguous run of light first-variable values, or one sub-range of
// a heavy value's second-variable domain.
type task struct {
	light []relation.Value // light run (sub == nil)
	heavy relation.Value   // bound first variable when sub != nil
	sub   []relation.Value // second-variable values owned by this task
}

// run materializes the task's subtrees on a worker-local driver clone.
func (t *task) run(w *driver) {
	if t.sub == nil {
		for _, v := range t.light {
			w.bindUncounted(0, v)
			w.solve(1)
		}
		return
	}
	w.bindUncounted(0, t.heavy)
	for _, u := range t.sub {
		w.bindUncounted(1, u)
		w.solve(2)
	}
}

// planTasks splits the surviving first-variable values into balanced
// tasks following the heavy/light recipe of "Skew Strikes Back"
// (Ngo–Ré–Rudra): a value whose work proxy exceeds the per-task budget
// (total/chunks) is heavy, and instead of pinning its whole subtree to
// one worker the coordinator descends one more level — replaying the
// first-variable narrows uncounted, then running the sequential
// position-1 loop with its Seeks charged to the coordinator, exactly as
// solve(1) would — and spreads the surviving second-variable values
// over several tasks. Light values are packed greedily into contiguous
// runs of roughly one budget each. Hinted values (catalog heavy
// hitters) qualify as heavy at half the local threshold. Tasks are
// emitted in sequential traversal order, so concatenating their outputs
// by task index reproduces the sequential output bit-for-bit, and the
// Seeks charged here are precisely the ones the workers skip.
func (j *driver) planTasks(vals []lvlVal, chunks int, hints SkewHints) []task {
	total := 0.0
	for _, lv := range vals {
		total += lv.w
	}
	budget := total / float64(chunks)
	var hinted []relation.Value
	if hints != nil && len(j.varOrder) >= 2 {
		hinted = append(hinted, hints(j.varOrder[0])...)
		sort.Slice(hinted, func(a, b int) bool { return hinted[a] < hinted[b] })
	}
	isHinted := func(v relation.Value) bool {
		i := sort.Search(len(hinted), func(k int) bool { return hinted[k] >= v })
		return i < len(hinted) && hinted[i] == v
	}
	var tasks []task
	var run []relation.Value
	runW := 0.0
	flush := func() {
		if len(run) > 0 {
			tasks = append(tasks, task{light: run})
			run, runW = nil, 0
		}
	}
	for _, lv := range vals {
		heavy := len(j.varOrder) >= 2 && chunks > 1 &&
			(lv.w > budget || (lv.w*2 > budget && isHinted(lv.v)))
		if !heavy {
			if runW+lv.w > budget {
				flush()
			}
			run = append(run, lv.v)
			runW += lv.w
			continue
		}
		flush()
		// The first-variable narrows were already charged by the
		// top-level pass; the position-1 pass charges what sequential
		// solve(1) would for this value.
		j.bindUncounted(0, lv.v)
		subs := j.levelValues(1)
		if len(subs) == 0 {
			continue
		}
		subW := 0.0
		for _, s := range subs {
			subW += s.w
		}
		parts := int(subW / budget)
		if parts < 2 {
			parts = 2
		}
		if parts > chunks {
			parts = chunks
		}
		if parts > len(subs) {
			parts = len(subs)
		}
		target := subW / float64(parts)
		var sub []relation.Value
		acc := 0.0
		for _, s := range subs {
			if len(sub) > 0 && acc+s.w > target {
				tasks = append(tasks, task{heavy: lv.v, sub: sub})
				sub, acc = nil, 0
			}
			sub = append(sub, s.v)
			acc += s.w
		}
		if len(sub) > 0 {
			tasks = append(tasks, task{heavy: lv.v, sub: sub})
		}
	}
	flush()
	return tasks
}

// MaterializeParallel is Materialize with the top of the join
// partitioned across workers, exploiting that Generic-Join decomposes
// over the first variable's domain. A coordinator pass intersects the
// top level once; planTasks then splits the surviving values into
// heavy/light tasks — heavy values are subdivided at the second
// variable across workers instead of pinned to one — and each task runs
// the existing sequential driver on an independent cursor clone.
//
// The result is bit-identical to Materialize — same tuples in the same
// order (task outputs are concatenated by index) and the same Instr
// totals (the coordinator charges the intersection passes once; workers
// replay those narrows uncounted and sum their subtree counters after
// the barrier) — whatever the worker count, hinting, or scheduling.
//
// workers <= 0 selects GOMAXPROCS; workers == 1 falls back to the
// sequential Materialize. Cancellation is checked between tasks: when
// ctx is done mid-materialisation no further tasks start and ctx.Err()
// is returned with a nil relation.
func MaterializeParallel(ctx context.Context, atoms []Atom, varOrder []string, agg ranking.Aggregate, workers int) (*relation.Relation, *Instr, error) {
	return MaterializeParallelHinted(ctx, atoms, varOrder, agg, workers, nil)
}

// MaterializeParallelHinted is MaterializeParallel with catalog skew
// hints: hinted first-variable values are treated as heavy at a lower
// threshold (see planTasks). Hints affect only load balance, never
// results or Instr totals.
func MaterializeParallelHinted(ctx context.Context, atoms []Atom, varOrder []string, agg ranking.Aggregate, workers int, hints SkewHints) (*relation.Relation, *Instr, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	ctx, sp := obs.StartSpan(ctx, "generic-join")
	defer sp.End()
	if sp != nil {
		sp.SetAttr("order", strings.Join(varOrder, ","))
		sp.SetAttr("workers", strconv.Itoa(parallel.Degree(workers)))
	}
	workers = parallel.Degree(workers)
	if workers <= 1 || len(varOrder) == 0 {
		return Materialize(atoms, varOrder, agg)
	}
	base, err := newJoin(atoms, varOrder, agg, nil, false)
	if err != nil {
		return nil, nil, err
	}
	vals := base.levelValues(0)
	tasks := base.planTasks(vals, workers*chunkFactor, hints)
	outs := make([]*relation.Relation, len(tasks))
	instrs := make([]*Instr, len(tasks))
	err = parallel.ForEach(ctx, workers, len(tasks), func(ti int) error {
		out := relation.New("GJ", varOrder...)
		w := base.clone(func(t relation.Tuple, wt float64) bool {
			out.AddTuple(t, wt)
			return true
		})
		tasks[ti].run(w)
		outs[ti] = out
		instrs[ti] = w.instr
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	out := relation.New("GJ", varOrder...)
	instr := base.instr
	for ti := range outs {
		out.Tuples = append(out.Tuples, outs[ti].Tuples...)
		out.Weights = append(out.Weights, outs[ti].Weights...)
		instr.Seeks += instrs[ti].Seeks
		instr.Emits += instrs[ti].Emits
	}
	return out, instr, nil
}

// TaskShares reports the parallel load balance of the two partitioning
// strategies on one query: for each, the fraction of the total measured
// join work (Seeks + Emits, counted by executing every task) that the
// single largest task owns. With idle workers, wall-clock is bounded
// below by the critical share, so on a skewed input legacy
// first-variable chunking sits near the heavy hitter's share of the
// join while the skew-aware planner approaches 1/(workers·chunkFactor)
// — a machine-independent record of the speedup the heavy/light split
// buys, meaningful even when measured on a single-core box.
func TaskShares(atoms []Atom, varOrder []string, workers int, hints SkewHints) (chunked, skewAware float64, err error) {
	workers = parallel.Degree(workers)
	if workers < 2 {
		workers = 2
	}
	// Clones share only the immutable sorted tries, so one driver per
	// strategy measures every task from a pristine cursor stack.
	taskWork := func(base *driver, run func(*driver)) float64 {
		w := base.clone(func(relation.Tuple, float64) bool { return true })
		run(w)
		return float64(w.instr.Seeks + w.instr.Emits)
	}
	maxShare := func(works []float64) float64 {
		total, max := 0.0, 0.0
		for _, w := range works {
			total += w
			if w > max {
				max = w
			}
		}
		if total == 0 {
			return 0
		}
		return max / total
	}

	base, jerr := newJoin(atoms, varOrder, ranking.SumCost{}, func(relation.Tuple, float64) bool { return true }, false)
	if jerr != nil {
		return 0, 0, jerr
	}
	vals := base.levelValues(0)
	if len(vals) == 0 || len(varOrder) == 0 {
		return 0, 0, nil
	}

	chunks := workers * chunkFactor
	nChunks := chunks
	if nChunks > len(vals) {
		nChunks = len(vals)
	}
	chunkWorks := make([]float64, nChunks)
	for ci := range chunkWorks {
		lo, hi := ci*len(vals)/nChunks, (ci+1)*len(vals)/nChunks
		chunkWorks[ci] = taskWork(base, func(w *driver) {
			for _, lv := range vals[lo:hi] {
				w.bindUncounted(0, lv.v)
				w.solve(1)
			}
		})
	}

	planBase, jerr := newJoin(atoms, varOrder, ranking.SumCost{}, func(relation.Tuple, float64) bool { return true }, false)
	if jerr != nil {
		return 0, 0, jerr
	}
	tasks := planBase.planTasks(planBase.levelValues(0), chunks, hints)
	taskWorks := make([]float64, len(tasks))
	for ti := range tasks {
		taskWorks[ti] = taskWork(planBase, func(w *driver) { tasks[ti].run(w) })
	}
	return maxShare(chunkWorks), maxShare(taskWorks), nil
}

// MaterializeParallelChunked is the pre-skew-aware parallel strategy:
// the surviving first-variable values are split into contiguous
// equal-count chunks, each pinned to one task regardless of subtree
// size, so one heavy hitter pins most of the work to a single worker —
// the pathology "Skew Strikes Back" names. It is kept only as the
// baseline for the worker-imbalance regression benchmark. Results and
// Instr totals are bit-identical to Materialize, exactly as for
// MaterializeParallel.
func MaterializeParallelChunked(ctx context.Context, atoms []Atom, varOrder []string, agg ranking.Aggregate, workers int) (*relation.Relation, *Instr, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	workers = parallel.Degree(workers)
	if workers <= 1 || len(varOrder) == 0 {
		return Materialize(atoms, varOrder, agg)
	}
	base, err := newJoin(atoms, varOrder, agg, nil, false)
	if err != nil {
		return nil, nil, err
	}
	lvl := base.levelValues(0)
	vals := make([]relation.Value, len(lvl))
	for i, lv := range lvl {
		vals[i] = lv.v
	}
	chunks := workers * chunkFactor
	if chunks > len(vals) {
		chunks = len(vals)
	}
	outs := make([]*relation.Relation, chunks)
	instrs := make([]*Instr, chunks)
	err = parallel.ForEach(ctx, workers, chunks, func(ci int) error {
		out := relation.New("GJ", varOrder...)
		w := base.clone(func(t relation.Tuple, wt float64) bool {
			out.AddTuple(t, wt)
			return true
		})
		for _, v := range vals[ci*len(vals)/chunks : (ci+1)*len(vals)/chunks] {
			w.bindUncounted(0, v)
			w.solve(1)
		}
		outs[ci] = out
		instrs[ci] = w.instr
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	out := relation.New("GJ", varOrder...)
	instr := base.instr
	for ci := range outs {
		out.Tuples = append(out.Tuples, outs[ci].Tuples...)
		out.Weights = append(out.Weights, outs[ci].Weights...)
		instr.Seeks += instrs[ci].Seeks
		instr.Emits += instrs[ci].Emits
	}
	return out, instr, nil
}
