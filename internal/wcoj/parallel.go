package wcoj

import (
	"context"

	"repro/internal/parallel"
	"repro/internal/ranking"
	"repro/internal/relation"
)

// chunkFactor oversubscribes the partition count relative to the worker
// count so that skew in per-value subtree sizes (one hub value owning
// most of the output) still load-balances across workers.
const chunkFactor = 4

// clone returns an independent trie cursor over the same sorted atom
// data: the sorted row order, column mapping, and global positions are
// immutable after newAtomState and shared; only the mutable interval
// stack is fresh.
func (st *atomState) clone() *atomState {
	c := &atomState{rel: st.rel, cols: st.cols, rows: st.rows, globalPos: st.globalPos}
	c.iv = make([][2]int32, len(st.iv))
	c.iv[0] = st.iv[0]
	return c
}

// clone returns an independent driver over cloned atom cursors, so
// several workers can descend disjoint subtrees of one join
// concurrently. Each clone counts work into its own Instr.
func (j *driver) clone(emit Emit) *driver {
	c := &driver{
		varOrder: j.varOrder,
		byVar:    make([][]atomDepth, len(j.varOrder)),
		agg:      j.agg,
		emit:     emit,
		instr:    &Instr{},
		assigned: make(relation.Tuple, len(j.varOrder)),
		leapfrog: j.leapfrog,
	}
	clones := make(map[*atomState]*atomState, len(j.atoms))
	for _, st := range j.atoms {
		cs := st.clone()
		clones[st] = cs
		c.atoms = append(c.atoms, cs)
	}
	for pos, parts := range j.byVar {
		for _, p := range parts {
			c.byVar[pos] = append(c.byVar[pos], atomDepth{atom: clones[p.atom], depth: p.depth})
		}
	}
	return c
}

// firstVarValues runs exactly the position-0 loop of the sequential
// Generic-Join solve — same driver-atom selection, same narrow and
// nextBlock sequence, same Seeks accounting — but records the surviving
// values of the first variable instead of recursing. The recorded
// values, handed to solveFirst on driver clones, therefore reproduce
// the sequential emission order and the sequential Seeks total.
func (j *driver) firstVarValues() []relation.Value {
	parts := j.byVar[0]
	drv := parts[0]
	size := drv.atom.iv[drv.depth][1] - drv.atom.iv[drv.depth][0]
	for _, p := range parts[1:] {
		if s := p.atom.iv[p.depth][1] - p.atom.iv[p.depth][0]; s < size {
			drv, size = p, s
		}
	}
	var vals []relation.Value
	lo, hi := drv.atom.iv[drv.depth][0], drv.atom.iv[drv.depth][1]
	for r := lo; r < hi; {
		v := drv.atom.valueAt(r, drv.depth)
		ok := true
		for _, p := range parts {
			j.instr.Seeks++
			if !p.atom.narrow(p.depth, v) {
				ok = false
				break
			}
		}
		if ok {
			vals = append(vals, v)
		}
		r = drv.atom.nextBlock(drv.depth, r)
		j.instr.Seeks++
	}
	return vals
}

// solveFirst binds the first variable to an already-intersected value
// and solves the remaining variables sequentially. The narrows replay
// work the coordinator's firstVarValues pass already counted, so they
// deliberately do not touch Instr — summing the coordinator's and the
// workers' counters then reproduces the sequential totals exactly.
func (j *driver) solveFirst(v relation.Value) {
	for _, p := range j.byVar[0] {
		if !p.atom.narrow(p.depth, v) {
			panic("wcoj: parallel narrow must succeed on intersected value")
		}
	}
	j.assigned[0] = v
	j.solve(1)
}

// MaterializeParallel is Materialize with the first variable of the
// order partitioned across workers, exploiting that Generic-Join
// decomposes over the first variable's domain ("Skew Strikes Back",
// Ngo–Ré–Rudra): a coordinator pass intersects the top level once, the
// surviving values are split into contiguous chunks, and each chunk
// runs the existing sequential driver on an independent cursor clone.
//
// The result is bit-identical to Materialize — same tuples in the same
// order (chunks are concatenated by partition index) and the same Instr
// totals (the coordinator counts the top-level seeks once; workers
// replay those narrows uncounted and sum their subtree counters after
// the barrier) — whatever the worker count or scheduling.
//
// workers <= 0 selects GOMAXPROCS; workers == 1 falls back to the
// sequential Materialize. Cancellation is checked between partitions:
// when ctx is done mid-materialisation no further partitions start and
// ctx.Err() is returned with a nil relation.
func MaterializeParallel(ctx context.Context, atoms []Atom, varOrder []string, agg ranking.Aggregate, workers int) (*relation.Relation, *Instr, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	workers = parallel.Degree(workers)
	if workers <= 1 || len(varOrder) == 0 {
		return Materialize(atoms, varOrder, agg)
	}
	base, err := newJoin(atoms, varOrder, agg, nil, false)
	if err != nil {
		return nil, nil, err
	}
	vals := base.firstVarValues()
	chunks := workers * chunkFactor
	if chunks > len(vals) {
		chunks = len(vals)
	}
	outs := make([]*relation.Relation, chunks)
	instrs := make([]*Instr, chunks)
	err = parallel.ForEach(ctx, workers, chunks, func(ci int) error {
		out := relation.New("GJ", varOrder...)
		w := base.clone(func(t relation.Tuple, wt float64) bool {
			out.AddTuple(t, wt)
			return true
		})
		for _, v := range vals[ci*len(vals)/chunks : (ci+1)*len(vals)/chunks] {
			w.solveFirst(v)
		}
		outs[ci] = out
		instrs[ci] = w.instr
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	out := relation.New("GJ", varOrder...)
	instr := base.instr
	for ci := range outs {
		out.Tuples = append(out.Tuples, outs[ci].Tuples...)
		out.Weights = append(out.Weights, outs[ci].Weights...)
		instr.Seeks += instrs[ci].Seeks
		instr.Emits += instrs[ci].Emits
	}
	return out, instr, nil
}
