package wcoj

import (
	"testing"
	"testing/quick"

	"repro/internal/join"
	"repro/internal/ranking"
	"repro/internal/relation"
)

var sum = ranking.SumCost{}

func edgeRel(name string, edges [][2]relation.Value) *relation.Relation {
	r := relation.New(name, "src", "dst")
	for _, e := range edges {
		r.AddWeighted(float64(e[0])+float64(e[1])/1000, e[0], e[1])
	}
	return r
}

// triangleAtoms builds the triangle query R(A,B), S(B,C), T(C,A) over
// three copies of the same edge list.
func triangleAtoms(edges [][2]relation.Value) []Atom {
	return []Atom{
		{Rel: edgeRel("R", edges), Vars: []string{"A", "B"}},
		{Rel: edgeRel("S", edges), Vars: []string{"B", "C"}},
		{Rel: edgeRel("T", edges), Vars: []string{"C", "A"}},
	}
}

func TestGenericJoinTriangleBasic(t *testing.T) {
	// Graph with exactly the directed triangles (1,2,3) and (1,2,4).
	edges := [][2]relation.Value{{1, 2}, {2, 3}, {3, 1}, {2, 4}, {4, 1}}
	atoms := triangleAtoms(edges)
	out, instr, err := Materialize(atoms, []string{"A", "B", "C"}, sum)
	if err != nil {
		t.Fatal(err)
	}
	// Directed triangle query: every rotation of a triangle is a result.
	if out.Len() != 6 {
		t.Fatalf("triangles found = %d, want 6 (2 triangles × 3 rotations)\n%v", out.Len(), out)
	}
	if instr.Emits != 6 {
		t.Errorf("Emits = %d, want 6", instr.Emits)
	}
}

func TestGenericJoinMatchesBinaryPlan(t *testing.T) {
	edges := [][2]relation.Value{
		{1, 2}, {2, 3}, {3, 1}, {2, 4}, {4, 1}, {3, 4}, {4, 5}, {5, 3}, {1, 5}, {5, 1},
	}
	atoms := triangleAtoms(edges)
	got, _, err := Materialize(atoms, []string{"A", "B", "C"}, sum)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: binary plan over renamed relations.
	ra := relation.New("R", "A", "B")
	ra.Tuples, ra.Weights = atoms[0].Rel.Tuples, atoms[0].Rel.Weights
	rb := relation.New("S", "B", "C")
	rb.Tuples, rb.Weights = atoms[1].Rel.Tuples, atoms[1].Rel.Weights
	rc := relation.New("T", "C", "A")
	rc.Tuples, rc.Weights = atoms[2].Rel.Tuples, atoms[2].Rel.Weights
	want, _ := join.NewPlan(sum, ra, rb, rc).Execute()
	aligned, err := got.Project(want.Attrs...)
	if err != nil {
		t.Fatal(err)
	}
	if !aligned.EqualAsSet(want) {
		t.Fatalf("GenericJoin differs from binary plan:\ngot %v\nwant %v", aligned, want)
	}
}

func TestLeapfrogMatchesGenericJoin(t *testing.T) {
	edges := [][2]relation.Value{
		{1, 2}, {2, 3}, {3, 1}, {2, 4}, {4, 1}, {3, 4}, {4, 5}, {5, 3}, {1, 5}, {5, 1}, {2, 5}, {5, 2},
	}
	atoms := triangleAtoms(edges)
	gj, _, err := Materialize(atoms, []string{"A", "B", "C"}, sum)
	if err != nil {
		t.Fatal(err)
	}
	lf := relation.New("LF", "A", "B", "C")
	if _, err := LeapfrogTriejoin(atoms, []string{"A", "B", "C"}, sum, func(tp relation.Tuple, w float64) bool {
		lf.AddTuple(tp, w)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !gj.EqualAsSet(lf) {
		t.Fatalf("LFTJ differs from GenericJoin:\n%v\n%v", gj, lf)
	}
}

// Property: GenericJoin equals the binary plan on random path queries
// R(A,B) ⋈ S(B,C).
func TestGenericJoinPathProperty(t *testing.T) {
	f := func(d1, d2 []uint8) bool {
		r := relation.New("R", "A", "B")
		for i, v := range d1 {
			r.AddWeighted(float64(i), relation.Value(v%6), relation.Value(v%4))
		}
		s := relation.New("S", "B", "C")
		for i, v := range d2 {
			s.AddWeighted(float64(i), relation.Value(v%4), relation.Value(v%5))
		}
		atoms := []Atom{{Rel: r, Vars: []string{"A", "B"}}, {Rel: s, Vars: []string{"B", "C"}}}
		got, _, err := Materialize(atoms, []string{"A", "B", "C"}, sum)
		if err != nil {
			return false
		}
		want := join.HashJoin(r.Clone(), s.Clone(), sum, nil)
		// Rename for comparison: HashJoin keeps R's attr names.
		want.Attrs = []string{"A", "B", "C"}
		return got.EqualAsSet(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: LFTJ and GJ agree on random triangle instances.
func TestLeapfrogEqualsGenericJoinProperty(t *testing.T) {
	f := func(data []uint8) bool {
		var edges [][2]relation.Value
		for _, v := range data {
			edges = append(edges, [2]relation.Value{relation.Value(v % 7), relation.Value((v / 7) % 7)})
		}
		atoms := triangleAtoms(edges)
		gj, _, err1 := Materialize(atoms, []string{"A", "B", "C"}, sum)
		if err1 != nil {
			return false
		}
		lf := relation.New("LF", "A", "B", "C")
		_, err2 := LeapfrogTriejoin(atoms, []string{"A", "B", "C"}, sum, func(tp relation.Tuple, w float64) bool {
			lf.AddTuple(tp, w)
			return true
		})
		return err2 == nil && gj.EqualAsSet(lf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBagSemantics(t *testing.T) {
	// Duplicate edges multiply results.
	r := relation.New("R", "src", "dst")
	r.AddWeighted(1, 1, 2)
	r.AddWeighted(2, 1, 2) // duplicate with different weight
	s := relation.New("S", "src", "dst")
	s.AddWeighted(10, 2, 3)
	atoms := []Atom{
		{Rel: r, Vars: []string{"A", "B"}},
		{Rel: s, Vars: []string{"B", "C"}},
	}
	out, _, err := Materialize(atoms, []string{"A", "B", "C"}, sum)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("bag join size = %d, want 2", out.Len())
	}
	if out.Weights[0]+out.Weights[1] != 23 {
		t.Errorf("weights = %v, want sum 23", out.Weights)
	}
}

func TestIsEmptyEarlyExit(t *testing.T) {
	// Large graph with a triangle early in value order: IsEmpty must not
	// scan everything.
	var edges [][2]relation.Value
	edges = append(edges, [2]relation.Value{1, 2}, [2]relation.Value{2, 3}, [2]relation.Value{3, 1})
	for i := relation.Value(10); i < 2000; i++ {
		edges = append(edges, [2]relation.Value{i, i + 10000}) // no triangles
	}
	atoms := triangleAtoms(edges)
	empty, instr, err := IsEmpty(atoms, []string{"A", "B", "C"})
	if err != nil {
		t.Fatal(err)
	}
	if empty {
		t.Fatal("graph has a triangle")
	}
	if instr.Emits != 1 {
		t.Errorf("Emits = %d, want 1 (early exit)", instr.Emits)
	}
	if instr.Seeks > 100 {
		t.Errorf("Seeks = %d, expected early termination to keep this tiny", instr.Seeks)
	}
}

func TestIsEmptyTrue(t *testing.T) {
	edges := [][2]relation.Value{{1, 2}, {2, 3}, {3, 4}}
	empty, _, err := IsEmpty(triangleAtoms(edges), []string{"A", "B", "C"})
	if err != nil {
		t.Fatal(err)
	}
	if !empty {
		t.Error("acyclic edge set should have no triangles")
	}
}

func TestErrorCases(t *testing.T) {
	r := relation.New("R", "x", "y")
	r.Add(1, 2)
	if _, err := GenericJoin([]Atom{{Rel: r, Vars: []string{"A", "A"}}}, []string{"A"}, sum, nil); err == nil {
		t.Error("repeated variable in atom should fail")
	}
	if _, err := GenericJoin([]Atom{{Rel: r, Vars: []string{"A", "B"}}}, []string{"A", "B", "C"}, sum, emitNothing); err == nil {
		t.Error("uncovered variable should fail")
	}
	if _, err := GenericJoin([]Atom{{Rel: r, Vars: []string{"A", "B"}}}, []string{"A", "A"}, sum, emitNothing); err == nil {
		t.Error("duplicate variable in order should fail")
	}
	if _, err := GenericJoin([]Atom{{Rel: r, Vars: []string{"A"}}}, []string{"A"}, sum, emitNothing); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := GenericJoin([]Atom{{Rel: r, Vars: []string{"A", "Z"}}}, []string{"A"}, sum, emitNothing); err == nil {
		t.Error("variable missing from order should fail")
	}
}

func emitNothing(relation.Tuple, float64) bool { return true }

// The §3 hard instance: binary plans do Θ(n²) work while GenericJoin's
// seek count stays near-linear (the output itself is Θ(n)).
func TestHardInstanceWorkGap(t *testing.T) {
	n := 400
	var edges [][2]relation.Value
	for i := 1; i <= n/2; i++ {
		edges = append(edges, [2]relation.Value{relation.Value(i), 1})
		edges = append(edges, [2]relation.Value{1, relation.Value(i)})
	}
	atoms := triangleAtoms(edges)
	out, instr, err := Materialize(atoms, []string{"A", "B", "C"}, sum)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("hard instance should have triangles")
	}
	// Binary plan intermediate is (n/2)² = 40000; GJ seeks should be far
	// below that (roughly n^1.5·log n at worst).
	quad := (n / 2) * (n / 2)
	if instr.Seeks >= quad/4 {
		t.Errorf("GenericJoin Seeks = %d, not clearly below quadratic %d", instr.Seeks, quad)
	}
}

func TestSingleAtomEnumeration(t *testing.T) {
	r := relation.New("R", "x", "y")
	r.AddWeighted(5, 1, 2)
	r.AddWeighted(6, 3, 4)
	out, _, err := Materialize([]Atom{{Rel: r, Vars: []string{"A", "B"}}}, []string{"A", "B"}, sum)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("single atom enumeration size = %d, want 2", out.Len())
	}
}

func TestVariableOrderIndependence(t *testing.T) {
	edges := [][2]relation.Value{{1, 2}, {2, 3}, {3, 1}, {2, 4}, {4, 1}}
	atoms := triangleAtoms(edges)
	a, _, _ := Materialize(atoms, []string{"A", "B", "C"}, sum)
	b, _, err := Materialize(atoms, []string{"C", "A", "B"}, sum)
	if err != nil {
		t.Fatal(err)
	}
	bAligned, err := b.Project("A", "B", "C")
	if err != nil {
		t.Fatal(err)
	}
	if !a.EqualAsSet(bAligned) {
		t.Error("results must not depend on the variable order")
	}
}

func BenchmarkGenericJoinTriangleHard(b *testing.B) {
	n := 1000
	var edges [][2]relation.Value
	for i := 1; i <= n/2; i++ {
		edges = append(edges, [2]relation.Value{relation.Value(i), 1})
		edges = append(edges, [2]relation.Value{1, relation.Value(i)})
	}
	atoms := triangleAtoms(edges)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Materialize(atoms, []string{"A", "B", "C"}, sum); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSuggestOrderCoversAllVars(t *testing.T) {
	edges := [][2]relation.Value{{1, 2}, {2, 3}, {3, 1}}
	atoms := triangleAtoms(edges)
	order := SuggestOrder(atoms)
	if len(order) != 3 {
		t.Fatalf("order = %v, want 3 vars", order)
	}
	seen := map[string]bool{}
	for _, v := range order {
		seen[v] = true
	}
	for _, v := range []string{"A", "B", "C"} {
		if !seen[v] {
			t.Fatalf("order %v missing %s", order, v)
		}
	}
}

func TestSuggestOrderPrefersSmallAtoms(t *testing.T) {
	big := relation.New("Big", "x", "y")
	for i := relation.Value(0); i < 1000; i++ {
		big.Add(i, i)
	}
	small := relation.New("Small", "x", "y")
	small.Add(1, 2)
	atoms := []Atom{
		{Rel: big, Vars: []string{"A", "B"}},
		{Rel: small, Vars: []string{"B", "C"}},
	}
	order := SuggestOrder(atoms)
	// C appears only in the small atom; it should come first.
	if order[0] != "C" {
		t.Errorf("order = %v, expected C first", order)
	}
}

func TestSuggestOrderIsValidForGenericJoin(t *testing.T) {
	edges := [][2]relation.Value{{1, 2}, {2, 3}, {3, 1}, {2, 4}, {4, 1}}
	atoms := triangleAtoms(edges)
	order := SuggestOrder(atoms)
	got, _, err := Materialize(atoms, order, sum)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := Materialize(atoms, []string{"A", "B", "C"}, sum)
	if err != nil {
		t.Fatal(err)
	}
	gotAligned, err := got.Project("A", "B", "C")
	if err != nil {
		t.Fatal(err)
	}
	if !gotAligned.EqualAsSet(want) {
		t.Error("suggested order changes results")
	}
}

func TestNPRRMatchesGenericJoin(t *testing.T) {
	edges := [][2]relation.Value{
		{1, 2}, {2, 3}, {3, 1}, {2, 4}, {4, 1}, {3, 4}, {4, 5}, {5, 3}, {1, 5}, {5, 1}, {2, 5}, {5, 2},
	}
	atoms := triangleAtoms(edges)
	want, _, err := Materialize(atoms, []string{"A", "B", "C"}, sum)
	if err != nil {
		t.Fatal(err)
	}
	got := relation.New("NPRR", "A", "B", "C")
	TriangleNPRR(atoms[0].Rel, atoms[1].Rel, atoms[2].Rel, sum, func(tp relation.Tuple, w float64) bool {
		got.AddTuple(tp, w)
		return true
	})
	if !got.EqualAsSet(want) {
		t.Fatalf("NPRR differs from GenericJoin:\n%v\n%v", got, want)
	}
}

// Property: NPRR equals GJ on random graphs (exercises both the light
// and heavy branches via skew).
func TestNPRREqualsGJProperty(t *testing.T) {
	f := func(data []uint8, skew bool) bool {
		var edges [][2]relation.Value
		for _, v := range data {
			a := relation.Value(v % 9)
			if skew && v%3 == 0 {
				a = 0 // heavy hub
			}
			edges = append(edges, [2]relation.Value{a, relation.Value((v / 9) % 9)})
		}
		atoms := triangleAtoms(edges)
		want, _, err := Materialize(atoms, []string{"A", "B", "C"}, sum)
		if err != nil {
			return false
		}
		got := relation.New("NPRR", "A", "B", "C")
		TriangleNPRR(atoms[0].Rel, atoms[1].Rel, atoms[2].Rel, sum, func(tp relation.Tuple, w float64) bool {
			got.AddTuple(tp, w)
			return true
		})
		return got.EqualAsSet(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNPRRHeavyBranch(t *testing.T) {
	// One hub with fanout far above √n forces the heavy branch.
	var edges [][2]relation.Value
	for i := relation.Value(1); i <= 60; i++ {
		edges = append(edges, [2]relation.Value{0, i}) // hub 0 → i
		edges = append(edges, [2]relation.Value{i, 0}) // i → hub 0
	}
	atoms := triangleAtoms(edges)
	want, _, err := Materialize(atoms, []string{"A", "B", "C"}, sum)
	if err != nil {
		t.Fatal(err)
	}
	got := relation.New("NPRR", "A", "B", "C")
	TriangleNPRR(atoms[0].Rel, atoms[1].Rel, atoms[2].Rel, sum, func(tp relation.Tuple, w float64) bool {
		got.AddTuple(tp, w)
		return true
	})
	if !got.EqualAsSet(want) {
		t.Fatalf("NPRR heavy branch differs: %d vs %d tuples", got.Len(), want.Len())
	}
}

func TestNPRREarlyStop(t *testing.T) {
	edges := [][2]relation.Value{{1, 2}, {2, 3}, {3, 1}}
	atoms := triangleAtoms(edges)
	count := 0
	instr := TriangleNPRR(atoms[0].Rel, atoms[1].Rel, atoms[2].Rel, sum, func(relation.Tuple, float64) bool {
		count++
		return false
	})
	if count != 1 || instr.Emits != 1 {
		t.Fatalf("early stop: count=%d emits=%d, want 1,1", count, instr.Emits)
	}
}

func BenchmarkNPRRTriangleHard(b *testing.B) {
	n := 1000
	var edges [][2]relation.Value
	for i := 1; i <= n/2; i++ {
		edges = append(edges, [2]relation.Value{relation.Value(i), 1})
		edges = append(edges, [2]relation.Value{1, relation.Value(i)})
	}
	atoms := triangleAtoms(edges)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TriangleNPRR(atoms[0].Rel, atoms[1].Rel, atoms[2].Rel, sum, emitNothing)
	}
}
