package wcoj

import (
	"fmt"

	"repro/internal/ranking"
	"repro/internal/relation"
)

// Instr counts the RAM-model work a join performed.
type Instr struct {
	// Seeks counts trie narrowing/seek operations (each O(log n)).
	Seeks int
	// Emits counts produced results.
	Emits int
}

// Emit receives one join result: the tuple of values aligned with the
// variable order and its aggregated weight. Returning false stops the
// join early (used by Boolean queries and top-k cutoffs).
type Emit func(t relation.Tuple, w float64) bool

// join is the shared driver for GenericJoin and LeapfrogTriejoin.
type driver struct {
	varOrder []string
	atoms    []*atomState
	// byVar[pos] lists (atom, its depth) for each atom containing the
	// pos-th variable.
	byVar    [][]atomDepth
	agg      ranking.Aggregate
	emit     Emit
	instr    *Instr
	assigned relation.Tuple
	leapfrog bool
	stopped  bool
}

type atomDepth struct {
	atom  *atomState
	depth int
}

func newJoin(atoms []Atom, varOrder []string, agg ranking.Aggregate, emit Emit, leapfrog bool) (*driver, error) {
	orderIndex := make(map[string]int, len(varOrder))
	for i, v := range varOrder {
		if _, dup := orderIndex[v]; dup {
			return nil, fmt.Errorf("wcoj: duplicate variable %s in order", v)
		}
		orderIndex[v] = i
	}
	j := &driver{
		varOrder: varOrder,
		byVar:    make([][]atomDepth, len(varOrder)),
		agg:      agg,
		emit:     emit,
		instr:    &Instr{},
		assigned: make(relation.Tuple, len(varOrder)),
		leapfrog: leapfrog,
	}
	covered := make([]bool, len(varOrder))
	for _, a := range atoms {
		st, err := newAtomState(a, orderIndex)
		if err != nil {
			return nil, err
		}
		j.atoms = append(j.atoms, st)
		for d, pos := range st.globalPos {
			j.byVar[pos] = append(j.byVar[pos], atomDepth{atom: st, depth: d})
			covered[pos] = true
		}
	}
	for pos, ok := range covered {
		if !ok {
			return nil, fmt.Errorf("wcoj: variable %s not covered by any atom", varOrder[pos])
		}
	}
	return j, nil
}

// GenericJoin runs the Generic-Join algorithm of Ngo, Ré and Rudra over
// the given atoms with the given global variable order, invoking emit for
// every result. It returns instrumentation counters.
func GenericJoin(atoms []Atom, varOrder []string, agg ranking.Aggregate, emit Emit) (*Instr, error) {
	j, err := newJoin(atoms, varOrder, agg, emit, false)
	if err != nil {
		return nil, err
	}
	j.solve(0)
	return j.instr, nil
}

// LeapfrogTriejoin runs Veldhuizen's Leapfrog Triejoin: at each variable,
// all participating atoms leapfrog to their next common value instead of
// one atom driving and the others probing.
func LeapfrogTriejoin(atoms []Atom, varOrder []string, agg ranking.Aggregate, emit Emit) (*Instr, error) {
	j, err := newJoin(atoms, varOrder, agg, emit, true)
	if err != nil {
		return nil, err
	}
	j.solve(0)
	return j.instr, nil
}

// solve extends the current partial assignment at variable position pos.
func (j *driver) solve(pos int) {
	if j.stopped {
		return
	}
	if pos == len(j.varOrder) {
		j.emitLeaf()
		return
	}
	parts := j.byVar[pos]
	if j.leapfrog {
		j.leapfrogVar(pos, parts)
		return
	}
	// Generic-Join: the atom with the smallest candidate interval drives;
	// the others narrow by binary search.
	driver := parts[0]
	size := driver.atom.iv[driver.depth][1] - driver.atom.iv[driver.depth][0]
	for _, p := range parts[1:] {
		if s := p.atom.iv[p.depth][1] - p.atom.iv[p.depth][0]; s < size {
			driver, size = p, s
		}
	}
	lo, hi := driver.atom.iv[driver.depth][0], driver.atom.iv[driver.depth][1]
	for r := lo; r < hi; {
		v := driver.atom.valueAt(r, driver.depth)
		ok := true
		for _, p := range parts {
			j.instr.Seeks++
			if !p.atom.narrow(p.depth, v) {
				ok = false
				break
			}
		}
		if ok {
			j.assigned[pos] = v
			j.solve(pos + 1)
			if j.stopped {
				return
			}
		}
		r = driver.atom.nextBlock(driver.depth, r)
		j.instr.Seeks++
	}
}

// leapfrogVar intersects the candidate values of all participants at pos
// by leapfrogging.
func (j *driver) leapfrogVar(pos int, parts []atomDepth) {
	// cursors[i] is participant i's current row within its interval.
	cursors := make([]int32, len(parts))
	for i, p := range parts {
		cursors[i] = p.atom.iv[p.depth][0]
		if cursors[i] >= p.atom.iv[p.depth][1] {
			return
		}
	}
	for {
		// Find the maximum current value.
		maxV := parts[0].atom.valueAt(cursors[0], parts[0].depth)
		argMax := 0
		for i := 1; i < len(parts); i++ {
			if v := parts[i].atom.valueAt(cursors[i], parts[i].depth); v > maxV {
				maxV, argMax = v, i
			}
		}
		// Seek everyone to ≥ maxV.
		agree := true
		for i, p := range parts {
			if i == argMax {
				continue
			}
			if p.atom.valueAt(cursors[i], p.depth) < maxV {
				cursors[i] = p.atom.seekGE(p.depth, cursors[i], maxV)
				j.instr.Seeks++
				if cursors[i] >= p.atom.iv[p.depth][1] {
					return
				}
				if p.atom.valueAt(cursors[i], p.depth) != maxV {
					agree = false
				}
			}
		}
		if agree {
			// All participants sit on maxV: narrow and recurse.
			for _, p := range parts {
				j.instr.Seeks++
				if !p.atom.narrow(p.depth, maxV) {
					panic("wcoj: leapfrog narrow must succeed on agreed value")
				}
			}
			j.assigned[pos] = maxV
			j.solve(pos + 1)
			if j.stopped {
				return
			}
			// Advance the first participant past maxV.
			p := parts[0]
			cursors[0] = p.atom.nextBlock(p.depth, cursors[0])
			j.instr.Seeks++
			if cursors[0] >= p.atom.iv[p.depth][1] {
				return
			}
		}
	}
}

// emitLeaf produces results for the full assignment: one per combination
// of matching rows across atoms (bag semantics).
func (j *driver) emitLeaf() {
	j.emitAtom(0, j.agg.Identity())
}

func (j *driver) emitAtom(ai int, w float64) {
	if j.stopped {
		return
	}
	if ai == len(j.atoms) {
		j.instr.Emits++
		out := make(relation.Tuple, len(j.assigned))
		copy(out, j.assigned)
		if !j.emit(out, w) {
			j.stopped = true
		}
		return
	}
	st := j.atoms[ai]
	d := len(st.cols)
	lo, hi := st.iv[d][0], st.iv[d][1]
	for r := lo; r < hi; r++ {
		j.emitAtom(ai+1, j.agg.Combine(w, st.rel.Weights[st.rows[r]]))
	}
}

// Materialize runs GenericJoin and collects the full output relation with
// schema varOrder.
func Materialize(atoms []Atom, varOrder []string, agg ranking.Aggregate) (*relation.Relation, *Instr, error) {
	out := relation.New("GJ", varOrder...)
	instr, err := GenericJoin(atoms, varOrder, agg, func(t relation.Tuple, w float64) bool {
		out.AddTuple(t, w)
		return true
	})
	return out, instr, err
}

// IsEmpty answers the Boolean query "does the join have any result?"
// with early termination at the first witness.
func IsEmpty(atoms []Atom, varOrder []string) (bool, *Instr, error) {
	found := false
	instr, err := GenericJoin(atoms, varOrder, ranking.SumCost{}, func(relation.Tuple, float64) bool {
		found = true
		return false
	})
	return !found, instr, err
}

// SuggestOrder returns a variable order for the given atoms using the
// standard cardinality heuristic: repeatedly pick the variable whose
// covering atoms have the smallest total size, preferring variables
// already connected to chosen ones. Any order is correct (results are
// order-independent); a good order shrinks intersection work.
func SuggestOrder(atoms []Atom) []string {
	type varInfo struct {
		name string
		size int
	}
	infos := map[string]*varInfo{}
	adj := map[string]map[string]bool{}
	for _, a := range atoms {
		for _, v := range a.Vars {
			if infos[v] == nil {
				infos[v] = &varInfo{name: v}
				adj[v] = map[string]bool{}
			}
			infos[v].size += a.Rel.Len()
		}
		for _, v := range a.Vars {
			for _, w := range a.Vars {
				if v != w {
					adj[v][w] = true
				}
			}
		}
	}
	var order []string
	chosen := map[string]bool{}
	connected := func(v string) bool {
		if len(order) == 0 {
			return true
		}
		for _, o := range order {
			if adj[v][o] {
				return true
			}
		}
		return false
	}
	for len(order) < len(infos) {
		var best *varInfo
		bestConn := false
		for _, vi := range infos {
			if chosen[vi.name] {
				continue
			}
			conn := connected(vi.name)
			switch {
			case best == nil,
				conn && !bestConn,
				conn == bestConn && vi.size < best.size,
				conn == bestConn && vi.size == best.size && vi.name < best.name:
				best = vi
				bestConn = conn
			}
		}
		order = append(order, best.name)
		chosen[best.name] = true
	}
	return order
}
