package wcoj

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/relation"
)

// hubEdges builds a graph with one heavy hitter: vertex 0 links to and
// from every other vertex, the rest form a sparse ring with chords, so
// the triangle join's subtree under A=0 dwarfs every other value's.
func hubEdges(n int) [][2]relation.Value {
	var edges [][2]relation.Value
	for j := int64(1); j < int64(n); j++ {
		edges = append(edges, [2]relation.Value{0, j}, [2]relation.Value{j, 0})
	}
	for j := int64(1); j < int64(n); j++ {
		k := j%int64(n-1) + 1
		edges = append(edges, [2]relation.Value{j, k})
		edges = append(edges, [2]relation.Value{j, (j*7)%int64(n-1) + 1})
	}
	return edges
}

// TestSkewAwareHeavyHitterBitIdentical: on the hub fixture both the
// skew-aware strategy and the legacy first-variable chunking must stay
// bit-identical to sequential Materialize for every worker count —
// tuple order, weights, and Instr totals.
func TestSkewAwareHeavyHitterBitIdentical(t *testing.T) {
	atoms := triangleAtoms(hubEdges(60))
	order := []string{"A", "B", "C"}
	want, wantInstr, err := Materialize(atoms, order, sum)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 4, 8} {
		got, gotInstr, err := MaterializeParallel(context.Background(), atoms, order, sum, workers)
		if err != nil {
			t.Fatalf("skew-aware workers=%d: %v", workers, err)
		}
		assertSameRelation(t, fmt.Sprintf("skew-aware/workers=%d", workers), got, want)
		if *gotInstr != *wantInstr {
			t.Errorf("skew-aware/workers=%d: Instr = %+v, want %+v", workers, *gotInstr, *wantInstr)
		}
		got, gotInstr, err = MaterializeParallelChunked(context.Background(), atoms, order, sum, workers)
		if err != nil {
			t.Fatalf("chunked workers=%d: %v", workers, err)
		}
		assertSameRelation(t, fmt.Sprintf("chunked/workers=%d", workers), got, want)
		if *gotInstr != *wantInstr {
			t.Errorf("chunked/workers=%d: Instr = %+v, want %+v", workers, *gotInstr, *wantInstr)
		}
	}
}

// TestPlanTasksSubdividesHeavyValue is the worker-imbalance regression
// test at the planning level: on the hub fixture the heavy hitter owns
// more than a per-task budget of work, the legacy chunking necessarily
// pins it whole onto one chunk, and the skew-aware planner must instead
// spread it over several second-variable tasks.
func TestPlanTasksSubdividesHeavyValue(t *testing.T) {
	atoms := triangleAtoms(hubEdges(60))
	order := []string{"A", "B", "C"}
	const chunks = 16

	base, err := newJoin(atoms, order, sum, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	vals := base.levelValues(0)
	total, maxW := 0.0, 0.0
	var maxV relation.Value
	for _, lv := range vals {
		total += lv.w
		if lv.w > maxW {
			maxW, maxV = lv.w, lv.v
		}
	}
	if maxV != 0 {
		t.Fatalf("heaviest first-variable value is %d, fixture wants the hub 0", maxV)
	}
	// The pathology premise: the hub exceeds the per-task budget, so
	// any strategy keeping it whole is at least maxW/total ≈
	// sequential.
	if maxW <= total/chunks {
		t.Fatalf("fixture not skewed enough: hub weight %.0f ≤ budget %.0f", maxW, total/chunks)
	}

	tasks := base.planTasks(vals, chunks, nil)
	hubTasks := 0
	for _, tk := range tasks {
		if tk.sub != nil && tk.heavy == maxV {
			hubTasks++
		}
		for _, v := range tk.light {
			if v == maxV {
				t.Fatal("hub value planned as light")
			}
		}
	}
	if hubTasks < 2 {
		t.Fatalf("hub subdivided into %d tasks, want ≥ 2", hubTasks)
	}

	// Executing the plan must reproduce the sequential output exactly
	// (order included) when concatenated by task index.
	want, _, err := Materialize(atoms, order, sum)
	if err != nil {
		t.Fatal(err)
	}
	got := relation.New("GJ", order...)
	for i := range tasks {
		w := base.clone(func(tp relation.Tuple, wt float64) bool {
			got.AddTuple(tp, wt)
			return true
		})
		tasks[i].run(w)
	}
	assertSameRelation(t, "planTasks replay", got, want)
}

// TestSkewHintsLowerThreshold: a value below the local heavy threshold
// but above half of it is subdivided only when the catalog hints it,
// and hinting never changes results.
func TestSkewHintsLowerThreshold(t *testing.T) {
	// R(A,B): value 7 has a moderate fan-out, values 100.. are single.
	var edges [][2]relation.Value
	for j := int64(0); j < 40; j++ {
		edges = append(edges, [2]relation.Value{7, j})
	}
	for v := int64(100); v < 200; v++ {
		edges = append(edges, [2]relation.Value{v, v})
	}
	atoms := []Atom{{Rel: edgeRel("R", edges), Vars: []string{"A", "B"}}}
	order := []string{"A", "B"}
	base, err := newJoin(atoms, order, sum, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	vals := base.levelValues(0)
	// Total weight 140 over 2 chunks → budget 70: value 7's weight 40
	// sits between budget/2 and budget, the hint-sensitive band.
	plain := base.planTasks(vals, 2, nil)
	for _, tk := range plain {
		if tk.sub != nil {
			t.Fatalf("value %d subdivided without a hint", tk.heavy)
		}
	}
	base2, _ := newJoin(atoms, order, sum, nil, false)
	vals2 := base2.levelValues(0)
	hints := func(v string) []relation.Value {
		if v == "A" {
			return []relation.Value{7}
		}
		return nil
	}
	hintedTasks := base2.planTasks(vals2, 2, hints)
	found := false
	for _, tk := range hintedTasks {
		if tk.sub != nil && tk.heavy == 7 {
			found = true
		}
	}
	if !found {
		t.Fatal("hinted value 7 not subdivided")
	}

	want, wantInstr, err := Materialize(atoms, order, sum)
	if err != nil {
		t.Fatal(err)
	}
	got, gotInstr, err := MaterializeParallelHinted(context.Background(), atoms, order, sum, 2, hints)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRelation(t, "hinted", got, want)
	if *gotInstr != *wantInstr {
		t.Errorf("hinted: Instr = %+v, want %+v", *gotInstr, *wantInstr)
	}
}

// TestSkewSingleVariableOrder: with a one-variable order there is no
// second level to subdivide, so every value stays light and results
// still match.
func TestSkewSingleVariableOrder(t *testing.T) {
	r := relation.New("U", "X")
	for i := int64(0); i < 50; i++ {
		r.AddTuple(relation.Tuple{i % 7}, float64(i))
	}
	atoms := []Atom{{Rel: r, Vars: []string{"A"}}}
	order := []string{"A"}
	want, wantInstr, err := Materialize(atoms, order, sum)
	if err != nil {
		t.Fatal(err)
	}
	got, gotInstr, err := MaterializeParallel(context.Background(), atoms, order, sum, 4)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRelation(t, "unary", got, want)
	if *gotInstr != *wantInstr {
		t.Errorf("unary: Instr = %+v, want %+v", *gotInstr, *wantInstr)
	}
}
