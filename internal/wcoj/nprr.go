package wcoj

import (
	"math"
	"sort"

	"repro/internal/ranking"
	"repro/internal/relation"
)

// TriangleNPRR enumerates the triangle join R1(A,B) ⋈ R2(B,C) ⋈ R3(C,A)
// with the NPRR-style heavy/light strategy (Ngo–Porat–Ré–Rudra, the
// other worst-case-optimal algorithm §3 names alongside Generic-Join):
// values of A are *heavy* when their fanout in R1 exceeds √|R2|.
//
//   - Light a: enumerate its ≤ √|R2| partners b and probe R2's (b,·)
//     lists against a hash of R3's (·,a) partners — work bounded by
//     Σ_light deg(a)·deg(b) ≤ ... |R1|·√|R2| plus output.
//   - Heavy a (≤ |R1|/√|R2| of them): scan all of R2 once per heavy
//     value and probe R1/R3 by hash — |R1|/√|R2| · |R2| = |R1|·√|R2|.
//
// Total O(n^1.5 + out) for |R_i| = n, matching the AGM bound like
// Generic-Join but through data partitioning instead of per-variable
// intersection. Results go to emit in unspecified order; weights
// combine with agg.
func TriangleNPRR(r1, r2, r3 *relation.Relation, agg ranking.Aggregate, emit Emit) *Instr {
	instr := &Instr{}
	// Index structures: R1 by A, R2 by B and by (B,C), R3 by its A column.
	r1byA := relation.MustIndex(r1, r1.Attrs[0])
	r2byB := relation.MustIndex(r2, r2.Attrs[0])
	r2byBC := relation.MustIndex(r2, r2.Attrs[0], r2.Attrs[1])
	r3byA := relation.MustIndex(r3, r3.Attrs[1])

	threshold := int(math.Sqrt(float64(r2.Len()))) + 1

	// Distinct A values, split by heaviness of their R1 fanout.
	seen := map[relation.Value]bool{}
	var avals []relation.Value
	for _, t := range r1.Tuples {
		if !seen[t[0]] {
			seen[t[0]] = true
			avals = append(avals, t[0])
		}
	}
	sort.Slice(avals, func(i, j int) bool { return avals[i] < avals[j] })

	stopped := false
	emitTriangle := func(a, b, c relation.Value, w float64) {
		instr.Emits++
		if !emit(relation.Tuple{a, b, c}, w) {
			stopped = true
		}
	}

	for _, a := range avals {
		if stopped {
			return instr
		}
		r1rows := r1byA.Lookup([]relation.Value{a})
		r3rows := r3byA.Lookup([]relation.Value{a}) // (c, a) partners
		if len(r3rows) == 0 {
			continue
		}
		// Hash of c-values closing back to a, with their r3 rows.
		cBack := make(map[relation.Value][]int32, len(r3rows))
		for _, row := range r3rows {
			c := r3.Tuples[row][0]
			cBack[c] = append(cBack[c], row)
		}
		if len(r1rows) <= threshold {
			// Light: walk a's partners b, then close the triangle through
			// the *smaller* of b's forward list and a's backward list —
			// the min-side probing NPRR's n^1.5 analysis relies on.
			for _, row1 := range r1rows {
				b := r1.Tuples[row1][1]
				r2rows := r2byB.Lookup([]relation.Value{b})
				if len(r2rows) <= len(cBack) {
					for _, row2 := range r2rows {
						instr.Seeks++
						c := r2.Tuples[row2][1]
						for _, row3 := range cBack[c] {
							w := agg.Combine(agg.Combine(r1.Weights[row1], r2.Weights[row2]), r3.Weights[row3])
							emitTriangle(a, b, c, w)
							if stopped {
								return instr
							}
						}
					}
				} else {
					for c, rows3 := range cBack {
						instr.Seeks++
						for _, row2 := range r2byBC.Lookup([]relation.Value{b, c}) {
							for _, row3 := range rows3 {
								w := agg.Combine(agg.Combine(r1.Weights[row1], r2.Weights[row2]), r3.Weights[row3])
								emitTriangle(a, b, c, w)
								if stopped {
									return instr
								}
							}
						}
					}
				}
			}
		} else {
			// Heavy: scan R2 once, probing b against a's partners and c
			// against the closing set.
			bFwd := make(map[relation.Value][]int32, len(r1rows))
			for _, row := range r1rows {
				bFwd[r1.Tuples[row][1]] = append(bFwd[r1.Tuples[row][1]], row)
			}
			for row2, t2 := range r2.Tuples {
				instr.Seeks++
				rows1 := bFwd[t2[0]]
				if len(rows1) == 0 {
					continue
				}
				rows3 := cBack[t2[1]]
				if len(rows3) == 0 {
					continue
				}
				for _, row1 := range rows1 {
					for _, row3 := range rows3 {
						w := agg.Combine(agg.Combine(r1.Weights[row1], r2.Weights[int32(row2)]), r3.Weights[row3])
						emitTriangle(a, t2[0], t2[1], w)
						if stopped {
							return instr
						}
					}
				}
			}
		}
	}
	return instr
}
