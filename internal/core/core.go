// Package core implements ranked enumeration over join queries — the
// "any-k" algorithms at the centre of Part 3 of the tutorial. Given the
// T-DP of an acyclic query (internal/dp), the iterators here return join
// results one by one in ranking order, without knowing k in advance:
//
//   - ANYK-PART (NewPart): the Lawler–Murty partitioning procedure with
//     pluggable successor structures — variants Eager, Lazy, All, Take2
//     and Quick, mirroring the companion paper's taxonomy.
//   - ANYK-REC (NewRec): recursive enumeration à la Hoffman–Pavley /
//     Jiménez–Marzal (REA), with per-(node, group) memoized solution
//     lists shared across prefixes.
//   - Batch (NewBatch): the non-any-k baseline — materialise the full
//     output, sort, then iterate.
//
// Cyclic queries are handled by internal/decomp, which unions several
// T-DPs and merges their iterators with Merge. Enumeration itself is
// single-threaded and deterministic: all parallelism in the library
// lives in the prepare phase upstream (internal/decomp bag
// materialisation over internal/parallel), which is why an iterator,
// once constructed, yields the same sequence whatever parallelism
// prepared its plan. See PAPER.md for the tutorial this reproduces and
// docs/ARCHITECTURE.md for the full data flow.
package core

import (
	"context"
	"fmt"

	"repro/internal/dp"
	"repro/internal/relation"
)

// Result is one join result in ranking order.
type Result struct {
	// Tuple is the output tuple, aligned with the T-DP's OutAttrs.
	Tuple relation.Tuple
	// Weight is the aggregated weight under the T-DP's ranking function.
	Weight float64
}

// Iterator yields join results in non-decreasing ranking order.
//
// The contract follows database cursors: pull with Next until it reports
// false, then consult Err to distinguish natural exhaustion (nil) from
// early termination — ErrClosed after Close, or the context's error
// after cancellation. Close releases resources, is idempotent, and is
// safe after exhaustion. Iterators are not safe for concurrent use.
type Iterator interface {
	// Next returns the next-ranked result; ok is false when enumeration
	// is complete, the iterator was closed, or its context was canceled.
	Next() (r Result, ok bool)
	// Err reports why Next returned false before exhaustion (nil after a
	// full natural drain).
	Err() error
	// Close terminates enumeration and releases resources. It always
	// returns nil and may be called more than once.
	Close() error
}

// Variant names an any-k algorithm.
type Variant string

// The supported algorithm variants.
const (
	// Eager pre-sorts every candidate list at first touch.
	Eager Variant = "Eager"
	// Lazy sorts candidate lists incrementally with a heap (the
	// best-overall PART variant in the companion paper).
	Lazy Variant = "Lazy"
	// Quick sorts candidate lists incrementally with lazy quicksort.
	Quick Variant = "Quick"
	// All pushes every alternative of a deviation at once (no per-list
	// structure; the global queue does the sorting).
	All Variant = "All"
	// Take2 heapifies candidate lists; each candidate has at most two
	// successors (its heap children).
	Take2 Variant = "Take2"
	// Rec is recursive enumeration (ANYK-REC), sharing ranked suffix
	// solutions across prefixes.
	Rec Variant = "Rec"
	// Batch is the full-join-then-sort baseline.
	Batch Variant = "Batch"
)

// Variants lists all variants in canonical report order.
func Variants() []Variant {
	return []Variant{Eager, Lazy, Quick, All, Take2, Rec, Batch}
}

// New returns the iterator implementing the given variant over t. The
// context cancels enumeration: after ctx is done, Next returns false and
// Err returns the context's error. A nil ctx means context.Background().
// The T-DP itself is only read, so many iterators (across variants and
// goroutines) may share one t.
func New(ctx context.Context, t *dp.TDP, v Variant) (Iterator, error) {
	switch v {
	case Eager, Lazy, Quick, All, Take2:
		return NewPart(ctx, t, v)
	case Rec:
		return NewRec(ctx, t), nil
	case Batch:
		return NewBatch(ctx, t), nil
	default:
		return nil, fmt.Errorf("core: unknown variant %q", v)
	}
}

// Collect drains up to k results from it (k ≤ 0 collects everything).
func Collect(it Iterator, k int) []Result {
	var out []Result
	for {
		r, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, r)
		if k > 0 && len(out) >= k {
			return out
		}
	}
}
