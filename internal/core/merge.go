package core

import (
	"context"

	"repro/internal/heap"
	"repro/internal/ranking"
	"repro/internal/relation"
)

// Merge combines several ranked iterators into one ranked iterator — the
// union step for cyclic queries decomposed into multiple trees (§3's
// submodular-width decompositions route disjoint subsets of the input to
// different trees, so their outputs interleave by weight).
type mergeIter struct {
	*Lifecycle
	agg   ranking.Aggregate
	pq    *heap.Heap[mergeHead]
	srcs  []Iterator
	dedup map[string]bool
	buf   []byte
}

type mergeHead struct {
	r   Result
	src Iterator
}

// Merge returns an iterator yielding the union of the inputs in ranking
// order. When dedup is true, results with identical output tuples are
// emitted once (needed when the union's branches can overlap; the
// 4-cycle decomposition produces disjoint branches, so it passes false).
// Closing the merge closes every source; a source error (including
// cancellation surfaced by a source) is latched and reported from Err.
func Merge(ctx context.Context, agg ranking.Aggregate, dedup bool, iters ...Iterator) Iterator {
	m := &mergeIter{
		Lifecycle: NewLifecycle(ctx),
		agg:       agg,
		pq:        heap.New(func(a, b mergeHead) bool { return agg.Less(a.r.Weight, b.r.Weight) }),
		srcs:      iters,
	}
	if dedup {
		m.dedup = make(map[string]bool)
	}
	m.OnRelease(func() { m.pq = nil })
	for _, it := range iters {
		if r, ok := it.Next(); ok {
			m.pq.Push(mergeHead{r: r, src: it})
		} else if err := it.Err(); err != nil {
			m.Fail(err)
			return m
		}
	}
	return m
}

func (m *mergeIter) Next() (Result, bool) {
	if !m.Proceed() {
		return Result{}, false
	}
	defer m.End()
	for {
		head, ok := m.pq.Pop()
		if !ok {
			m.Exhaust()
			return Result{}, false
		}
		if r, ok := head.src.Next(); ok {
			m.pq.Push(mergeHead{r: r, src: head.src})
		} else if err := head.src.Err(); err != nil {
			m.Fail(err)
			return Result{}, false
		}
		if m.dedup != nil {
			m.buf = relation.AppendKey(m.buf[:0], head.r.Tuple)
			k := string(m.buf)
			if m.dedup[k] {
				// Long duplicate runs must still notice a concurrent Close
				// or cancellation between pops.
				if m.Interrupted() {
					return Result{}, false
				}
				continue
			}
			m.dedup[k] = true
		}
		return head.r, true
	}
}

// Close terminates the merge and closes every source iterator. Like all
// lifecycle-backed Closes it is safe concurrently with Next: the merge
// queue is released once no Next body is in flight, and each source's
// own lifecycle serialises its shutdown.
func (m *mergeIter) Close() error {
	for _, s := range m.srcs {
		s.Close()
	}
	m.Lifecycle.Close()
	return nil
}

// Limit wraps an iterator to stop after k results. Err and Close
// delegate to the wrapped iterator.
func Limit(it Iterator, k int) Iterator { return &limitIter{it: it, left: k} }

type limitIter struct {
	it   Iterator
	left int
}

func (l *limitIter) Next() (Result, bool) {
	if l.left <= 0 {
		return Result{}, false
	}
	l.left--
	return l.it.Next()
}

func (l *limitIter) Err() error   { return l.it.Err() }
func (l *limitIter) Close() error { return l.it.Close() }
