package core

import (
	"context"

	"repro/internal/dp"
	"repro/internal/heap"
)

// NewNaiveLawler returns a correct but deliberately *polynomial-delay*
// ranked enumerator: the Lawler–Murty procedure implemented the way
// pre-any-k systems did (Kimelfeld–Sagiv style, [61] in the tutorial) —
// every partition's champion is found by recomputing the bottom-up
// dynamic program from scratch over the full reduced database, instead
// of reusing suffix-optimal weights through incremental successor
// structures. Each emitted result therefore costs O(|D|·|Q|) instead of
// O(log) — exactly the gap §4 of the tutorial highlights ("a delay that
// is polynomial in the size of the input … reduced to O(log k)").
//
// It exists for the E13 ablation; use NewPart for real workloads.
func NewNaiveLawler(ctx context.Context, t *dp.TDP) Iterator {
	it := &naiveIter{
		Lifecycle: NewLifecycle(ctx),
		t:         t,
		pq: heap.New(func(a, b *naiveItem) bool {
			return t.Agg.Less(a.weight, b.weight)
		}),
	}
	it.OnRelease(func() { it.pq = nil })
	if t.Empty() {
		return it
	}
	if item, ok := it.champion(nil, 0, nil); ok {
		it.pq.Push(item)
	}
	return it
}

// naiveItem is one Lawler subspace together with its champion solution:
// rows agree with the champion everywhere; solutions of the subspace fix
// positions < devPos, exclude excl at devPos, and are free after it.
type naiveItem struct {
	weight float64
	rows   []int32
	devPos int
	excl   []int32
}

type naiveIter struct {
	*Lifecycle
	t  *dp.TDP
	pq *heap.Heap[*naiveItem]
}

// champion finds the best solution with rows[0..devPos) fixed to prefix
// and rows[devPos] not in excl, by recomputing π bottom-up from scratch
// (the deliberate inefficiency) and then descending greedily.
func (it *naiveIter) champion(prefix []int32, devPos int, excl []int32) (*naiveItem, bool) {
	t := it.t
	m := len(t.Nodes)

	// Fresh bottom-up pass: π and per-group best, recomputed in full.
	pi := make([][]float64, m)
	groupBestPi := make([][]float64, m)
	groupBestRow := make([][]int32, m)
	for pos := m - 1; pos >= 0; pos-- {
		n := t.Nodes[pos]
		pi[pos] = make([]float64, n.Rel.Len())
		for row := range n.Rel.Tuples {
			p := n.Rel.Weights[row]
			for ci, c := range n.Children {
				gi := n.ChildGroup[ci][row]
				p = t.Agg.Combine(p, groupBestPi[c][gi])
			}
			pi[pos][row] = p
		}
		groupBestPi[pos] = make([]float64, len(n.Groups))
		groupBestRow[pos] = make([]int32, len(n.Groups))
		for gi := range n.Groups {
			g := &n.Groups[gi]
			if len(g.Rows) == 0 {
				continue
			}
			best := g.Rows[0]
			for _, r := range g.Rows[1:] {
				if t.Agg.Less(pi[pos][r], pi[pos][best]) {
					best = r
				}
			}
			groupBestPi[pos][gi] = pi[pos][best]
			groupBestRow[pos][gi] = best
		}
	}

	rows := make([]int32, m)
	copy(rows, prefix[:devPos])

	// Best allowed candidate at the deviation position.
	n := t.Nodes[devPos]
	gi := t.GroupFor(devPos, rows)
	var bestRow int32 = -1
	for _, r := range n.Groups[gi].Rows {
		if contains(excl, r) {
			continue
		}
		if bestRow < 0 || t.Agg.Less(pi[devPos][r], pi[devPos][bestRow]) {
			bestRow = r
		}
	}
	if bestRow < 0 {
		return nil, false
	}
	rows[devPos] = bestRow

	// Greedy completion with the freshly computed per-group bests.
	for pos := devPos + 1; pos < m; pos++ {
		g := t.GroupFor(pos, rows)
		rows[pos] = groupBestRow[pos][g]
	}
	return &naiveItem{
		weight: t.SolutionWeight(rows),
		rows:   rows,
		devPos: devPos,
		excl:   excl,
	}, true
}

func contains(xs []int32, x int32) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Next pops the best champion and partitions its subspace, running one
// full DP recomputation per new subspace.
func (it *naiveIter) Next() (Result, bool) {
	if !it.Proceed() {
		return Result{}, false
	}
	defer it.End()
	item, ok := it.pq.Pop()
	if !ok {
		it.Exhaust()
		return Result{}, false
	}
	m := len(it.t.Nodes)
	// Sibling subspace at the deviation position: exclude this champion's
	// choice as well.
	sibExcl := append(append([]int32(nil), item.excl...), item.rows[item.devPos])
	if sib, ok := it.champion(item.rows, item.devPos, sibExcl); ok {
		it.pq.Push(sib)
	}
	// Child subspaces at every later position.
	for j := item.devPos + 1; j < m; j++ {
		if child, ok := it.champion(item.rows, j, []int32{item.rows[j]}); ok {
			it.pq.Push(child)
		}
	}
	return Result{Tuple: it.t.Emit(item.rows), Weight: item.weight}, true
}
