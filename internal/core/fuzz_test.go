package core

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dp"
	"repro/internal/ranking"
	"repro/internal/workload"
	"repro/internal/yannakakis"
)

// Fuzz-style cross-validation on random tree-shaped queries: every
// variant must agree with Batch on arbitrary join-tree shapes, not just
// the path/star workloads of the experiments.

func runInstanceVariant(inst *workload.Instance, agg ranking.Aggregate, v Variant, k int) ([]Result, error) {
	q, err := yannakakis.NewQuery(inst.H, inst.Rels)
	if err != nil {
		return nil, err
	}
	t, err := dp.Build(q, agg)
	if err != nil {
		return nil, err
	}
	it, err := New(context.Background(), t, v)
	if err != nil {
		return nil, err
	}
	return Collect(it, k), nil
}

func TestRandomTreeShapesAllVariants(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		nRels := int(seed%4) + 2 // 2..5 relations
		inst := workload.RandomTree(nRels, 35, 5, workload.UniformWeights(), seed*31+7)
		ref, err := runInstanceVariant(inst, sum, Batch, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range Variants() {
			if v == Batch {
				continue
			}
			got, err := runInstanceVariant(inst, sum, v, 0)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, v, err)
			}
			if len(got) != len(ref) {
				t.Fatalf("seed %d %s: %d results, batch %d (query %s)", seed, v, len(got), len(ref), inst.H)
			}
			for i := range got {
				if math.Abs(got[i].Weight-ref[i].Weight) > 1e-9 {
					t.Fatalf("seed %d %s rank %d: %g vs %g (query %s)", seed, v, i, got[i].Weight, ref[i].Weight, inst.H)
				}
			}
		}
		// NaiveLawler too.
		q, _ := yannakakis.NewQuery(inst.H, inst.Rels)
		tdp, err := dp.Build(q, sum)
		if err != nil {
			t.Fatal(err)
		}
		got := Collect(NewNaiveLawler(context.Background(), tdp), 0)
		if len(got) != len(ref) {
			t.Fatalf("seed %d NaiveLawler: %d results, batch %d", seed, len(got), len(ref))
		}
		for i := range got {
			if math.Abs(got[i].Weight-ref[i].Weight) > 1e-9 {
				t.Fatalf("seed %d NaiveLawler rank %d: %g vs %g", seed, i, got[i].Weight, ref[i].Weight)
			}
		}
	}
}

// Property: on random tree queries, partial enumeration (top-k) agrees
// with the full enumeration prefix for every variant.
func TestRandomTreePrefixProperty(t *testing.T) {
	f := func(seed uint16, vIdx, kRaw uint8) bool {
		variants := Variants()
		v := variants[int(vIdx)%len(variants)]
		k := int(kRaw)%20 + 1
		inst := workload.RandomTree(3, 25, 4, workload.UniformWeights(), uint64(seed))
		full, err := runInstanceVariant(inst, sum, Batch, 0)
		if err != nil {
			return false
		}
		got, err := runInstanceVariant(inst, sum, v, k)
		if err != nil {
			return false
		}
		want := k
		if want > len(full) {
			want = len(full)
		}
		if len(got) != want {
			return false
		}
		for i := range got {
			if math.Abs(got[i].Weight-full[i].Weight) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Deep chains (path of 8 relations) stress the DFS-preorder machinery.
func TestDeepChainAllVariants(t *testing.T) {
	inst := workload.Path(8, 12, 6, workload.UniformWeights(), 3)
	ref, err := runInstanceVariant(inst, sum, Batch, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range Variants() {
		if v == Batch {
			continue
		}
		got, err := runInstanceVariant(inst, sum, v, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("%s: %d vs %d", v, len(got), len(ref))
		}
		for i := range got {
			if math.Abs(got[i].Weight-ref[i].Weight) > 1e-9 {
				t.Fatalf("%s rank %d mismatch", v, i)
			}
		}
	}
}

// Wide stars (7 children) stress multi-child successor generation.
func TestWideStarAllVariants(t *testing.T) {
	inst := workload.Star(7, 12, 4, workload.UniformWeights(), 5)
	ref, err := runInstanceVariant(inst, sum, Batch, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) == 0 {
		t.Skip("empty star instance")
	}
	for _, v := range Variants() {
		if v == Batch {
			continue
		}
		got, err := runInstanceVariant(inst, sum, v, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("%s: %d vs %d", v, len(got), len(ref))
		}
		for i := range got {
			if math.Abs(got[i].Weight-ref[i].Weight) > 1e-9 {
				t.Fatalf("%s rank %d mismatch", v, i)
			}
		}
	}
}
