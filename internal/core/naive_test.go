package core

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dp"
	"repro/internal/ranking"
	"repro/internal/relation"
	"repro/internal/workload"
)

func TestNaiveLawlerTinyPath(t *testing.T) {
	tdp := buildTDP(t, tinyPath(), sum)
	got := Collect(NewNaiveLawler(context.Background(), tdp), 0)
	want := []float64{2, 3, 5, 11, 12}
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i, r := range got {
		if r.Weight != want[i] {
			t.Errorf("rank %d weight = %g, want %g", i, r.Weight, want[i])
		}
	}
}

func TestNaiveLawlerMatchesBatch(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		inst := workload.Path(3, 40, 6, workload.UniformWeights(), seed)
		ref := Collect(NewBatch(context.Background(), buildTDP(t, inst, sum)), 0)
		got := Collect(NewNaiveLawler(context.Background(), buildTDP(t, inst, sum)), 0)
		if len(got) != len(ref) {
			t.Fatalf("seed %d: %d results, batch %d", seed, len(got), len(ref))
		}
		for i := range got {
			if math.Abs(got[i].Weight-ref[i].Weight) > 1e-9 {
				t.Fatalf("seed %d rank %d: %g vs %g", seed, i, got[i].Weight, ref[i].Weight)
			}
		}
	}
}

func TestNaiveLawlerBushyTree(t *testing.T) {
	inst := bushyInstance(123)
	ref := Collect(NewBatch(context.Background(), buildTDP(t, inst, sum)), 0)
	got := Collect(NewNaiveLawler(context.Background(), buildTDP(t, inst, sum)), 0)
	if len(got) != len(ref) {
		t.Fatalf("%d results, batch %d", len(got), len(ref))
	}
	for i := range got {
		if math.Abs(got[i].Weight-ref[i].Weight) > 1e-9 {
			t.Fatalf("rank %d: %g vs %g", i, got[i].Weight, ref[i].Weight)
		}
	}
}

func TestNaiveLawlerEmpty(t *testing.T) {
	inst := workload.Path(2, 5, 2, workload.UniformWeights(), 1)
	// Force emptiness: disjoint domains.
	inst.Rels[1] = inst.Rels[1].Select(func(tp relation.Tuple, _ float64) bool { return false })
	tdp := buildTDP(t, inst, sum)
	if _, ok := NewNaiveLawler(context.Background(), tdp).Next(); ok {
		t.Error("empty query yielded a result")
	}
}

func TestNaiveLawlerMaxAggregate(t *testing.T) {
	inst := workload.Path(3, 30, 5, workload.UniformWeights(), 4)
	ref := Collect(NewBatch(context.Background(), buildTDP(t, inst, ranking.MaxCost{})), 0)
	got := Collect(NewNaiveLawler(context.Background(), buildTDP(t, inst, ranking.MaxCost{})), 0)
	if len(got) != len(ref) {
		t.Fatalf("%d vs %d", len(got), len(ref))
	}
	for i := range got {
		if math.Abs(got[i].Weight-ref[i].Weight) > 1e-9 {
			t.Fatalf("rank %d: %g vs %g", i, got[i].Weight, ref[i].Weight)
		}
	}
}

// Property: naive Lawler agrees with Lazy on random instances.
func TestNaiveLawlerAgreesWithLazyProperty(t *testing.T) {
	f := func(seed uint16) bool {
		inst := workload.Path(3, 25, 4, workload.UniformWeights(), uint64(seed))
		q := mustQ(inst)
		t1, err := dp.Build(q, sum)
		if err != nil {
			return false
		}
		t2, err := dp.Build(q, sum)
		if err != nil {
			return false
		}
		lazy, err := NewPart(context.Background(), t1, Lazy)
		if err != nil {
			return false
		}
		a := Collect(lazy, 0)
		b := Collect(NewNaiveLawler(context.Background(), t2), 0)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if math.Abs(a[i].Weight-b[i].Weight) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
