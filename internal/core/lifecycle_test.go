package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/workload"
)

// raceInstance is a path query with enough results that a draining
// goroutine is still mid-enumeration when the closer strikes.
func raceInstance() *workload.Instance {
	return workload.Path(3, 400, 40, workload.UniformWeights(), 7)
}

// TestCloseConcurrentWithNext drains each variant's iterator on one
// goroutine while another calls Close mid-stream. Run under -race this
// is the audit for the server's disconnect path: a watchdog goroutine
// closes the iterator the handler is still pulling from. The iterator
// must never panic, must stop yielding soon after Close, and must
// report either ErrClosed or nil (when the drain won the race and
// exhausted first).
func TestCloseConcurrentWithNext(t *testing.T) {
	inst := raceInstance()
	for _, v := range Variants() {
		t.Run(string(v), func(t *testing.T) {
			for trial := 0; trial < 20; trial++ {
				tdp := buildTDP(t, inst, sum)
				it, err := New(context.Background(), tdp, v)
				if err != nil {
					t.Fatal(err)
				}
				results := make(chan int, 1)
				closed := make(chan struct{})
				go func() {
					n := 0
					for {
						if _, ok := it.Next(); !ok {
							break
						}
						n++
						if n == 10 {
							close(closed) // signal the closer mid-stream
						}
					}
					results <- n
				}()
				<-closed
				it.Close()
				n := <-results
				if err := it.Err(); err != nil && !errors.Is(err, ErrClosed) {
					t.Fatalf("trial %d: Err() = %v, want nil or ErrClosed", trial, err)
				}
				// After Close has returned and the drain goroutine exited,
				// Next must stay terminal.
				if _, ok := it.Next(); ok {
					t.Fatalf("trial %d: Next yielded after Close (drained %d)", trial, n)
				}
			}
		})
	}
}

// TestCloseConcurrentWithNextHammer has many goroutines closing while
// one drains — Close must be idempotent and race-free from any number
// of goroutines.
func TestCloseConcurrentWithNextHammer(t *testing.T) {
	inst := raceInstance()
	tdp := buildTDP(t, inst, sum)
	it, err := New(context.Background(), tdp, Lazy)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			it.Close()
		}()
	}
	go func() {
		// Unblock the closers once the drain is under way.
		for i := 0; i < 5; i++ {
			if _, ok := it.Next(); !ok {
				break
			}
		}
		close(start)
		for {
			if _, ok := it.Next(); !ok {
				return
			}
		}
	}()
	wg.Wait()
	if err := it.Err(); err != nil && !errors.Is(err, ErrClosed) {
		t.Fatalf("Err() = %v, want nil or ErrClosed", err)
	}
}

// TestCancelConcurrentWithNext cancels the iterator's context from
// another goroutine mid-drain: Next must stop and Err must surface the
// context error (or ErrClosed/nil if a later Close or exhaustion beat
// the cancellation to the latch).
func TestCancelConcurrentWithNext(t *testing.T) {
	inst := raceInstance()
	for trial := 0; trial < 20; trial++ {
		tdp := buildTDP(t, inst, sum)
		ctx, cancel := context.WithCancel(context.Background())
		it, err := New(ctx, tdp, Lazy)
		if err != nil {
			t.Fatal(err)
		}
		fired := make(chan struct{})
		done := make(chan int)
		go func() {
			n := 0
			for {
				if _, ok := it.Next(); !ok {
					break
				}
				n++
				if n == 5 {
					close(fired)
				}
			}
			done <- n
		}()
		<-fired
		cancel()
		n := <-done
		err = it.Err()
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("trial %d: Err() = %v after %d results, want nil or context.Canceled", trial, err, n)
		}
		it.Close()
	}
}

// TestMergeCloseConcurrentWithNext exercises the multi-tree union path:
// closing the merge closes every source while the drain goroutine may
// be pulling from one of them.
func TestMergeCloseConcurrentWithNext(t *testing.T) {
	inst := raceInstance()
	for trial := 0; trial < 20; trial++ {
		a, err := New(context.Background(), buildTDP(t, inst, sum), Lazy)
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(context.Background(), buildTDP(t, inst, sum), Lazy)
		if err != nil {
			t.Fatal(err)
		}
		m := Merge(context.Background(), sum, true, a, b)
		mid := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			n := 0
			for {
				if _, ok := m.Next(); !ok {
					return
				}
				n++
				if n == 10 {
					close(mid)
				}
			}
		}()
		<-mid
		m.Close()
		<-done
		if err := m.Err(); err != nil && !errors.Is(err, ErrClosed) {
			t.Fatalf("trial %d: merge Err() = %v, want nil or ErrClosed", trial, err)
		}
	}
}

// TestReleaseAfterExhaustion checks the deferred-release bookkeeping:
// a clean drain ends with Err nil and further Next/Close calls are
// stable no-ops (the release hook must not fire twice or wedge the
// latch).
func TestReleaseAfterExhaustion(t *testing.T) {
	inst := tinyPath()
	for _, v := range Variants() {
		it, err := New(context.Background(), buildTDP(t, inst, sum), v)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for {
			if _, ok := it.Next(); !ok {
				break
			}
			n++
		}
		if n != 5 {
			t.Fatalf("%s: drained %d results, want 5", v, n)
		}
		if err := it.Err(); err != nil {
			t.Fatalf("%s: Err() = %v after clean drain", v, err)
		}
		it.Close()
		it.Close()
		if err := it.Err(); err != nil {
			t.Fatalf("%s: Err() = %v after post-exhaustion Close", v, err)
		}
		if _, ok := it.Next(); ok {
			t.Fatalf("%s: Next yielded after exhaustion", v)
		}
	}
}
