package core

import (
	"context"

	"repro/internal/dp"
	"repro/internal/heap"
)

// recSol is the j-th best subtree solution of one (node, group) state:
// the node picks `row` and each child subtree uses its childRanks[ci]-th
// best solution. Solutions are expanded to full assignments only when a
// top-level result is emitted, so ranked suffixes are shared across
// every prefix that reaches the same state — the factorised
// representation that gives ANYK-REC its time-to-last advantage.
type recSol struct {
	row        int32
	childRanks []int32
	weight     float64
}

// recCand is a frontier candidate of one state's lattice. frozen is the
// child index that produced it; only children ≥ frozen may advance,
// which enumerates each rank vector exactly once.
type recCand struct {
	row        int32
	childRanks []int32
	frozen     int32
	weight     float64
}

// recState enumerates the ranked subtree solutions of one (node, group).
type recState struct {
	pos      int
	produced []recSol
	pq       *heap.Heap[recCand]
}

// recIter implements ANYK-REC over a T-DP.
type recIter struct {
	*Lifecycle
	t *dp.TDP
	// states[node][group], created lazily.
	states [][]*recState
	root   *recState
	k      int
}

// NewRec returns the ANYK-REC iterator.
func NewRec(ctx context.Context, t *dp.TDP) Iterator {
	it := &recIter{Lifecycle: NewLifecycle(ctx), t: t, states: make([][]*recState, len(t.Nodes))}
	for pos, n := range t.Nodes {
		it.states[pos] = make([]*recState, len(n.Groups))
	}
	it.OnRelease(func() { it.states = nil; it.root = nil })
	if !t.Empty() {
		it.root = it.stateAt(0, 0)
	}
	return it
}

// stateAt returns (creating lazily) the state for a node's group. Its
// initial frontier holds one candidate per row, each paired with every
// child's best solution — whose combined weight is exactly π(row), so no
// recursive calls are needed to seed the frontier.
func (it *recIter) stateAt(pos int, group int32) *recState {
	if s := it.states[pos][group]; s != nil {
		return s
	}
	t := it.t
	n := t.Nodes[pos]
	g := &n.Groups[group]
	cands := make([]recCand, len(g.Rows))
	nc := len(n.Children)
	for i, row := range g.Rows {
		var ranks []int32
		if nc > 0 {
			ranks = make([]int32, nc)
		}
		cands[i] = recCand{row: row, childRanks: ranks, weight: n.Pi[row]}
	}
	s := &recState{
		pos: pos,
		pq:  heap.NewFromSlice(func(a, b recCand) bool { return t.Agg.Less(a.weight, b.weight) }, cands),
	}
	it.states[pos][group] = s
	return s
}

// ensure materialises state solutions up to rank j, returning false when
// the state has fewer than j+1 solutions.
func (it *recIter) ensure(s *recState, j int) bool {
	t := it.t
	n := t.Nodes[s.pos]
	for len(s.produced) <= j {
		cand, ok := s.pq.Pop()
		if !ok {
			return false
		}
		s.produced = append(s.produced, recSol{row: cand.row, childRanks: cand.childRanks, weight: cand.weight})
		// Successors: advance one child rank, children ≥ frozen only.
		for ci := int(cand.frozen); ci < len(n.Children); ci++ {
			child := n.Children[ci]
			cg := n.ChildGroup[ci][cand.row]
			cs := it.stateAt(child, cg)
			nextRank := int(cand.childRanks[ci]) + 1
			if !it.ensure(cs, nextRank) {
				continue
			}
			ranks := make([]int32, len(cand.childRanks))
			copy(ranks, cand.childRanks)
			ranks[ci] = int32(nextRank)
			// Weight: node weight ⊕ every child's chosen solution weight.
			// Sibling ranks come from cand, but their solutions may not be
			// materialised yet when cand was seeded directly from π, so
			// ensure each (rank 0 is always available after reduction).
			w := n.Rel.Weights[cand.row]
			feasible := true
			for cj := range n.Children {
				ccs := it.stateAt(n.Children[cj], n.ChildGroup[cj][cand.row])
				if !it.ensure(ccs, int(ranks[cj])) {
					feasible = false
					break
				}
				w = t.Agg.Combine(w, ccs.produced[ranks[cj]].weight)
			}
			if !feasible {
				continue
			}
			s.pq.Push(recCand{row: cand.row, childRanks: ranks, frozen: int32(ci), weight: w})
		}
	}
	return true
}

// expand recursively writes the full assignment of state solution solIdx
// into rows.
func (it *recIter) expand(s *recState, solIdx int, rows []int32) {
	sol := s.produced[solIdx]
	rows[s.pos] = sol.row
	n := it.t.Nodes[s.pos]
	for ci, child := range n.Children {
		cs := it.stateAt(child, n.ChildGroup[ci][sol.row])
		it.expand(cs, int(sol.childRanks[ci]), rows)
	}
}

// Next returns the k-th best solution overall. Close (promoted from
// Lifecycle, safe to call concurrently) releases the memoized states
// once no Next body is in flight.
func (it *recIter) Next() (Result, bool) {
	if !it.Proceed() {
		return Result{}, false
	}
	defer it.End()
	if it.root == nil {
		it.Exhaust()
		return Result{}, false
	}
	if !it.ensure(it.root, it.k) {
		it.Exhaust()
		return Result{}, false
	}
	rows := make([]int32, len(it.t.Nodes))
	it.expand(it.root, it.k, rows)
	w := it.root.produced[it.k].weight
	it.k++
	return Result{Tuple: it.t.Emit(rows), Weight: w}, true
}
