package core

import (
	"context"

	"repro/internal/dp"
	"repro/internal/heap"
)

// partItem is one entry of the global priority queue: it represents the
// sub-space of solutions that agree with its parent solution before
// devPos, pick exactly `row` (structure position candIdx) at devPos, and
// are free afterwards. Its weight is the weight of the best solution in
// that sub-space (prefix ⊕ π(row) ⊕ re-optimised open subtrees), so the
// global queue pops sub-spaces in the order of their champions — the
// Lawler–Murty invariant.
type partItem struct {
	weight  float64
	parent  *partItem
	devPos  int32
	candIdx int32
	row     int32
	// rows is the materialised full assignment, filled when popped.
	rows []int32
}

// partIter implements ANYK-PART over a T-DP.
type partIter struct {
	*Lifecycle
	t  *dp.TDP
	pq *heap.Heap[*partItem]
	// structs[node][group] is the candidate structure, created lazily.
	structs  [][]candStruct
	mkStruct makeStructFn
	m        int
	// scratch buffers reused across Next calls.
	sucBuf   []int32
	prefixW  []float64
	openSum  []float64
	groupBuf []int32
}

// NewPart returns the ANYK-PART iterator with the given successor
// structure variant (Eager, Lazy, Quick, All or Take2).
func NewPart(ctx context.Context, t *dp.TDP, v Variant) (Iterator, error) {
	mk := structFactory(v, t.Agg)
	m := len(t.Nodes)
	it := &partIter{
		Lifecycle: NewLifecycle(ctx),
		t:         t,
		pq:        heap.New(func(a, b *partItem) bool { return t.Agg.Less(a.weight, b.weight) }),
		structs:   make([][]candStruct, m),
		mkStruct:  mk,
		m:         m,
		prefixW:   make([]float64, m+1),
		openSum:   make([]float64, m),
		groupBuf:  make([]int32, m),
	}
	for pos, n := range t.Nodes {
		it.structs[pos] = make([]candStruct, len(n.Groups))
	}
	it.OnRelease(func() { it.pq = nil; it.structs = nil })
	if t.Empty() {
		return it, nil
	}
	st := it.structAt(0, 0)
	row, pi, ok := st.at(0)
	if !ok {
		return it, nil
	}
	it.pq.Push(&partItem{weight: pi, devPos: 0, candIdx: 0, row: row})
	return it, nil
}

func (it *partIter) structAt(pos int, group int32) candStruct {
	s := it.structs[pos][group]
	if s == nil {
		s = it.mkStruct(it.t.Nodes[pos], &it.t.Nodes[pos].Groups[group])
		it.structs[pos][group] = s
	}
	return s
}

// Next pops the best unseen solution, materialises it, and pushes its
// Lawler successors. Close (promoted from Lifecycle, safe to call
// concurrently) releases the queue and successor structures once no
// Next body is in flight.
func (it *partIter) Next() (Result, bool) {
	if !it.Proceed() {
		return Result{}, false
	}
	defer it.End()
	item, ok := it.pq.Pop()
	if !ok {
		it.Exhaust()
		return Result{}, false
	}
	t := it.t
	// Materialise: prefix from the parent chain, deviation row, then a
	// greedy descent using each group's structure-best (position 0).
	rows := make([]int32, it.m)
	if item.parent != nil {
		copy(rows[:item.devPos], item.parent.rows[:item.devPos])
	}
	rows[item.devPos] = item.row
	groups := it.groupBuf
	if item.devPos == 0 {
		groups[0] = 0
	}
	for pos := int(item.devPos) + 1; pos < it.m; pos++ {
		gi := t.GroupFor(pos, rows)
		groups[pos] = gi
		st := it.structAt(pos, gi)
		row, _, ok := st.at(0)
		if !ok {
			panic("core: empty candidate group after full reduction")
		}
		rows[pos] = row
	}
	// Record group ids for prefix positions too (needed by pushes).
	for pos := 1; pos <= int(item.devPos); pos++ {
		groups[pos] = t.GroupFor(pos, rows)
	}
	item.rows = rows

	// prefixW[j] = ⊕_{i<j} w(rows[i]).
	it.prefixW[0] = t.Agg.Identity()
	for pos := 0; pos < it.m; pos++ {
		it.prefixW[pos+1] = t.Agg.Combine(it.prefixW[pos], t.Nodes[pos].Rel.Weights[rows[pos]])
	}
	// openSum[j] = ⊕ over open subtree roots after deviating at j of
	// their group-best π: openSum[j] = openSum[parent(j)] ⊕ later
	// siblings' bests. No subtraction needed, so any monotone dioid works.
	for pos := 0; pos < it.m; pos++ {
		n := t.Nodes[pos]
		var base float64
		if n.Parent < 0 {
			base = t.Agg.Identity()
		} else {
			base = it.openSum[n.Parent]
			parent := t.Nodes[n.Parent]
			seen := false
			for ci, c := range parent.Children {
				if c == pos {
					seen = true
					continue
				}
				if seen {
					gi := parent.ChildGroup[ci][rows[n.Parent]]
					base = t.Agg.Combine(base, t.Nodes[c].Groups[gi].BestPi)
				}
			}
		}
		it.openSum[pos] = base
	}

	// Push Lawler successors: at devPos, the candidates following this
	// item's candIdx; at every later position, the candidates following
	// structure position 0.
	for j := int(item.devPos); j < it.m; j++ {
		st := it.structAt(j, groups[j])
		from := int32(0)
		if j == int(item.devPos) {
			from = item.candIdx
		}
		it.sucBuf = st.successors(from, it.sucBuf[:0])
		for _, sIdx := range it.sucBuf {
			row, pi, ok := st.at(sIdx)
			if !ok {
				continue
			}
			w := t.Agg.Combine(t.Agg.Combine(it.prefixW[j], pi), it.openSum[j])
			it.pq.Push(&partItem{
				weight:  w,
				parent:  item,
				devPos:  int32(j),
				candIdx: sIdx,
				row:     row,
			})
		}
	}
	return Result{Tuple: t.Emit(rows), Weight: item.weight}, true
}
