package core

import (
	"context"
	"sort"

	"repro/internal/dp"
)

// batchIter is the non-any-k baseline of the tutorial's comparison:
// materialise the entire join output (constant-delay, unordered), sort
// it by weight, then iterate. Time-to-first is Θ(r log r); time-to-last
// is asymptotically optimal but pays the full sort even for k = 1.
type batchIter struct {
	*Lifecycle
	t       *dp.TDP
	rows    []int32 // all solutions, flattened (m per solution)
	weights []float64
	order   []int32
	m       int
	k       int
}

// NewBatch materialises and sorts the full result set eagerly (at
// construction), so the first Next call already reflects batch cost.
// Cancellation is checked periodically during materialisation: if ctx is
// done, construction stops and the returned iterator reports the
// context's error from Err.
func NewBatch(ctx context.Context, t *dp.TDP) Iterator {
	it := &batchIter{Lifecycle: NewLifecycle(ctx), t: t, m: len(t.Nodes)}
	it.OnRelease(func() { it.rows, it.weights, it.order = nil, nil, nil })
	if t.Empty() {
		return it
	}
	// Odometer enumeration over candidate groups (constant delay).
	m := it.m
	rows := make([]int32, m)
	cand := make([][]int32, m)
	pos := make([]int, m)
	fill := func(from int) bool {
		for p := from; p < m; p++ {
			n := t.Nodes[p]
			gi := t.GroupFor(p, rows)
			cand[p] = n.Groups[gi].Rows
			if len(cand[p]) == 0 {
				return false
			}
			pos[p] = 0
			rows[p] = cand[p][0]
		}
		return true
	}
	if fill(0) {
		for {
			if len(it.weights)%4096 == 0 && it.Interrupted() {
				it.rows, it.weights = nil, nil
				return it
			}
			it.rows = append(it.rows, rows...)
			it.weights = append(it.weights, t.SolutionWeight(rows))
			// Advance odometer.
			p := m - 1
			for ; p >= 0; p-- {
				if pos[p]+1 < len(cand[p]) {
					pos[p]++
					rows[p] = cand[p][pos[p]]
					if !fill(p + 1) {
						panic("core: refill failed after full reduction")
					}
					break
				}
			}
			if p < 0 {
				break
			}
		}
	}
	it.order = make([]int32, len(it.weights))
	for i := range it.order {
		it.order[i] = int32(i)
	}
	sort.SliceStable(it.order, func(a, b int) bool {
		return t.Agg.Less(it.weights[it.order[a]], it.weights[it.order[b]])
	})
	return it
}

// Next yields the next solution in sorted order. Close (promoted from
// Lifecycle, safe to call concurrently) releases the materialised
// output once no Next body is in flight.
func (it *batchIter) Next() (Result, bool) {
	if !it.Proceed() {
		return Result{}, false
	}
	defer it.End()
	if it.k >= len(it.order) {
		it.Exhaust()
		return Result{}, false
	}
	idx := it.order[it.k]
	it.k++
	sol := it.rows[int(idx)*it.m : (int(idx)+1)*it.m]
	return Result{Tuple: it.t.Emit(sol), Weight: it.weights[idx]}, true
}

// Size reports the number of materialised solutions (for tests).
func (it *batchIter) Size() int { return len(it.order) }
