package core

import (
	"context"
	"errors"
	"sync"
)

// ErrClosed is reported by Err after Close terminates an iterator before
// enumeration was exhausted.
var ErrClosed = errors.New("core: iterator closed")

// Lifecycle is the shared state machine behind the Iterator contract:
// it tracks whether enumeration is still live, latches the first error
// (context cancellation or early Close), and provides the Err/Close
// methods every iterator promotes by embedding it (as a pointer, so one
// state machine is shared by every copy of the iterator header).
//
// All methods are safe for concurrent use. In particular Close (and
// Err) may be called from any goroutine while another goroutine is
// inside the iterator's Next — the pattern a server needs when a
// client disconnects mid-stream and a watchdog closes the iterator the
// handler is still draining. The iterator contract stays single-
// consumer: only one goroutine may call Next, but Close can come from
// anywhere. A Close racing an in-flight Next lets that Next finish (it
// may still deliver its result); every later Next observes the latch
// and returns false with Err() == ErrClosed.
//
// Iterators bracket each Next body between Proceed and End. The busy
// window this opens is what makes concurrent Close memory-safe: bulky
// resources registered with OnRelease are freed only when enumeration
// has terminated AND no Next body is in flight, so a closing goroutine
// never yanks a heap or memo table out from under a running Next.
type Lifecycle struct {
	ctx context.Context

	mu        sync.Mutex
	err       error
	stopped   bool // Close was called or an error latched
	exhausted bool // Next ran out of results naturally
	busy      bool // a Next body runs between a true Proceed and End
	release   func()
	released  bool
}

// NewLifecycle returns a live lifecycle observing ctx (nil means
// context.Background()).
func NewLifecycle(ctx context.Context) *Lifecycle {
	if ctx == nil {
		//anykvet:allow ctxplumb -- leaf default for the documented nil-means-uncancelable contract
		ctx = context.Background()
	}
	return &Lifecycle{ctx: ctx}
}

// OnRelease registers f to free the iterator's bulky resources (queues,
// memo tables, materialised output). It is called at most once, as soon
// as enumeration has terminated — by Close, cancellation, or natural
// exhaustion — and no Next body is in flight. Register it at
// construction time, before the iterator escapes to other goroutines;
// f must not call back into the lifecycle.
func (lc *Lifecycle) OnRelease(f func()) {
	lc.mu.Lock()
	lc.release = f
	lc.maybeReleaseLocked()
	lc.mu.Unlock()
}

// Proceed reports whether Next may produce another result. It returns
// false once the iterator is closed, exhausted, or its context is done
// (latching the context's error). When it returns true the lifecycle is
// marked busy and the caller must pair the call with End (typically
// `defer it.End()`), delimiting the Next body concurrent Closes must
// not free resources under.
func (lc *Lifecycle) Proceed() bool {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.stopped || lc.exhausted {
		return false
	}
	select {
	case <-lc.ctx.Done():
		lc.failLocked(lc.ctx.Err())
		return false
	default:
		lc.busy = true
		return true
	}
}

// End closes the busy window a true Proceed opened. If enumeration
// terminated while the Next body ran (a concurrent Close, cancellation,
// or the body calling Exhaust/Fail), the pending resource release runs
// now.
func (lc *Lifecycle) End() {
	lc.mu.Lock()
	lc.busy = false
	lc.maybeReleaseLocked()
	lc.mu.Unlock()
}

// Interrupted polls for termination without opening a busy window:
// long-running loops (constructors materialising output, merge drains)
// call it to notice a concurrent Close or cancellation mid-body. Like
// Proceed it latches the context's error on cancellation.
func (lc *Lifecycle) Interrupted() bool {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.stopped {
		return true
	}
	if lc.exhausted {
		return false
	}
	select {
	case <-lc.ctx.Done():
		lc.failLocked(lc.ctx.Err())
		return true
	default:
		return false
	}
}

// Exhaust marks natural completion: Err stays nil and Close is a no-op.
func (lc *Lifecycle) Exhaust() {
	lc.mu.Lock()
	lc.exhausted = true
	lc.maybeReleaseLocked()
	lc.mu.Unlock()
}

// Fail latches err and stops enumeration.
func (lc *Lifecycle) Fail(err error) {
	lc.mu.Lock()
	lc.failLocked(err)
	lc.mu.Unlock()
}

func (lc *Lifecycle) failLocked(err error) {
	if !lc.stopped {
		lc.stopped = true
		lc.err = err
	}
	lc.maybeReleaseLocked()
}

// Err explains why Next returned false before exhaustion: nil after
// natural completion, ErrClosed after an early Close, or the context's
// error after cancellation.
func (lc *Lifecycle) Err() error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.err
}

// Close terminates enumeration. Closing mid-enumeration latches
// ErrClosed; closing after exhaustion (or twice) is a no-op. It always
// returns nil so callers can defer it unconditionally, and it may be
// called concurrently with Next: it never blocks on an in-flight Next
// body, whose resources are released when that body ends.
func (lc *Lifecycle) Close() error {
	lc.mu.Lock()
	if !lc.stopped && !lc.exhausted {
		lc.stopped = true
		lc.err = ErrClosed
	}
	lc.maybeReleaseLocked()
	lc.mu.Unlock()
	return nil
}

// maybeReleaseLocked runs the registered release hook once enumeration
// has terminated and no Next body is in flight. Callers hold lc.mu; the
// hook only writes iterator-private fields, which no other goroutine
// can touch (Proceed returns false from here on), so running it under
// the lock is safe and keeps the released latch race-free.
func (lc *Lifecycle) maybeReleaseLocked() {
	if (lc.stopped || lc.exhausted) && !lc.busy && !lc.released && lc.release != nil {
		lc.released = true
		f := lc.release
		lc.release = nil
		f()
	}
}
