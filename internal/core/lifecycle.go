package core

import (
	"context"
	"errors"
)

// ErrClosed is reported by Err after Close terminates an iterator before
// enumeration was exhausted.
var ErrClosed = errors.New("core: iterator closed")

// Lifecycle is the shared state machine behind the Iterator contract:
// it tracks whether enumeration is still live, latches the first error
// (context cancellation or early Close), and provides the Err/Close
// methods every iterator promotes by embedding it.
type Lifecycle struct {
	ctx       context.Context
	err       error
	stopped   bool // Close was called or an error latched
	exhausted bool // Next ran out of results naturally
}

func NewLifecycle(ctx context.Context) Lifecycle {
	if ctx == nil {
		ctx = context.Background()
	}
	return Lifecycle{ctx: ctx}
}

// Proceed reports whether Next may produce another result. It returns
// false once the iterator is closed, exhausted, or its context is done
// (latching the context's error).
func (lc *Lifecycle) Proceed() bool {
	if lc.stopped || lc.exhausted {
		return false
	}
	select {
	case <-lc.ctx.Done():
		lc.Fail(lc.ctx.Err())
		return false
	default:
		return true
	}
}

// Exhaust marks natural completion: Err stays nil and Close is a no-op.
func (lc *Lifecycle) Exhaust() { lc.exhausted = true }

// Fail latches err and stops enumeration.
func (lc *Lifecycle) Fail(err error) {
	if !lc.stopped {
		lc.stopped = true
		lc.err = err
	}
}

// Err explains why Next returned false before exhaustion: nil after
// natural completion, ErrClosed after an early Close, or the context's
// error after cancellation.
func (lc *Lifecycle) Err() error { return lc.err }

// Close terminates enumeration. Closing mid-enumeration latches
// ErrClosed; closing after exhaustion (or twice) is a no-op. It always
// returns nil so callers can defer it unconditionally.
func (lc *Lifecycle) Close() error {
	if !lc.stopped && !lc.exhausted {
		lc.stopped = true
		lc.err = ErrClosed
	}
	return nil
}
