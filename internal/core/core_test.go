package core

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dp"
	"repro/internal/hypergraph"
	"repro/internal/ranking"
	"repro/internal/relation"
	"repro/internal/workload"
	"repro/internal/yannakakis"
)

var sum = ranking.SumCost{}

func buildTDP(t *testing.T, inst *workload.Instance, agg ranking.Aggregate) *dp.TDP {
	t.Helper()
	q, err := yannakakis.NewQuery(inst.H, inst.Rels)
	if err != nil {
		t.Fatal(err)
	}
	tdp, err := dp.Build(q, agg)
	if err != nil {
		t.Fatal(err)
	}
	return tdp
}

// tinyPath builds a hand-checkable 2-path instance.
//
//	R1: (1,10) w=1, (1,11) w=5, (2,10) w=2
//	R2: (10,100) w=10, (10,101) w=1, (11,100) w=0
//
// Join results (A0,A1,A2) with sum weights:
//
//	(1,10,101): 2   (2,10,101): 3  (1,11,100): 5
//	(1,10,100): 11  (2,10,100): 12
func tinyPath() *workload.Instance {
	r1 := relation.New("R1", "X", "Y")
	r1.AddWeighted(1, 1, 10)
	r1.AddWeighted(5, 1, 11)
	r1.AddWeighted(2, 2, 10)
	r2 := relation.New("R2", "X", "Y")
	r2.AddWeighted(10, 10, 100)
	r2.AddWeighted(1, 10, 101)
	r2.AddWeighted(0, 11, 100)
	return &workload.Instance{H: hypergraph.Path(2), Rels: []*relation.Relation{r1, r2}}
}

func TestAllVariantsTinyPathExactOrder(t *testing.T) {
	wantWeights := []float64{2, 3, 5, 11, 12}
	for _, v := range Variants() {
		tdp := buildTDP(t, tinyPath(), sum)
		it, err := New(context.Background(), tdp, v)
		if err != nil {
			t.Fatal(err)
		}
		got := Collect(it, 0)
		if len(got) != len(wantWeights) {
			t.Fatalf("%s: %d results, want %d", v, len(got), len(wantWeights))
		}
		for i, r := range got {
			if r.Weight != wantWeights[i] {
				t.Errorf("%s: rank %d weight = %g, want %g", v, i, r.Weight, wantWeights[i])
			}
		}
		// Spot-check the top tuple: (A0,A1,A2) = (1,10,101). The output
		// attribute order depends on where GYO roots the tree, so look up
		// positions by name.
		pos := map[string]int{}
		for i, a := range tdp.OutAttrs {
			pos[a] = i
		}
		top := got[0].Tuple
		if top[pos["A0"]] != 1 || top[pos["A1"]] != 10 || top[pos["A2"]] != 101 {
			t.Errorf("%s: top tuple = %v (attrs %v), want A0=1 A1=10 A2=101", v, top, tdp.OutAttrs)
		}
	}
}

func TestEmptyQueryAllVariants(t *testing.T) {
	r1 := relation.New("R1", "X", "Y")
	r1.Add(1, 2)
	r2 := relation.New("R2", "X", "Y")
	r2.Add(3, 4) // no join partner
	inst := &workload.Instance{H: hypergraph.Path(2), Rels: []*relation.Relation{r1, r2}}
	for _, v := range Variants() {
		tdp := buildTDP(t, inst, sum)
		it, err := New(context.Background(), tdp, v)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := it.Next(); ok {
			t.Errorf("%s: empty query yielded a result", v)
		}
		if _, ok := it.Next(); ok {
			t.Errorf("%s: Next after exhaustion yielded a result", v)
		}
	}
}

// checkVariantAgainstBatch enumerates fully with the variant and checks
// (a) weights are non-decreasing, (b) the multiset of (tuple, weight)
// matches Batch, (c) per-result weights match the solution's true weight.
func checkVariantAgainstBatch(t *testing.T, inst *workload.Instance, v Variant, agg ranking.Aggregate) {
	t.Helper()
	tdp := buildTDP(t, inst, agg)
	ref := Collect(NewBatch(context.Background(), tdp), 0)

	tdp2 := buildTDP(t, inst, agg)
	it, err := New(context.Background(), tdp2, v)
	if err != nil {
		t.Fatal(err)
	}
	got := Collect(it, 0)
	if len(got) != len(ref) {
		t.Fatalf("%s: %d results, batch has %d", v, len(got), len(ref))
	}
	for i := 1; i < len(got); i++ {
		if agg.Less(got[i].Weight, got[i-1].Weight) {
			t.Fatalf("%s: weights not sorted at %d: %g then %g", v, i-1, got[i-1].Weight, got[i].Weight)
		}
	}
	// Weight multisets must match exactly.
	for i := range got {
		if math.Abs(got[i].Weight-ref[i].Weight) > 1e-9 {
			t.Fatalf("%s: rank %d weight = %g, batch %g", v, i, got[i].Weight, ref[i].Weight)
		}
	}
	// Tuple multisets must match (order may differ among ties): compare
	// as relations.
	ra := relation.New("a", tdp.OutAttrs...)
	rb := relation.New("b", tdp.OutAttrs...)
	for i := range got {
		ra.AddTuple(got[i].Tuple, round9(got[i].Weight))
		rb.AddTuple(ref[i].Tuple, round9(ref[i].Weight))
	}
	if !ra.EqualAsSet(rb) {
		t.Fatalf("%s: result multiset differs from batch", v)
	}
}

func round9(w float64) float64 { return math.Round(w*1e9) / 1e9 }

func TestVariantsMatchBatchOnRandomPaths(t *testing.T) {
	for _, l := range []int{2, 3, 4} {
		inst := workload.Path(l, 60, 8, workload.UniformWeights(), uint64(l)*7)
		for _, v := range Variants() {
			if v == Batch {
				continue
			}
			checkVariantAgainstBatch(t, inst, v, sum)
		}
	}
}

func TestVariantsMatchBatchOnRandomStars(t *testing.T) {
	for _, l := range []int{2, 3, 4} {
		inst := workload.Star(l, 40, 6, workload.UniformWeights(), uint64(l)*13)
		for _, v := range Variants() {
			if v == Batch {
				continue
			}
			checkVariantAgainstBatch(t, inst, v, sum)
		}
	}
}

// A bushy tree: R1(A,B) with children R2(B,C), R3(B,D); R2 has child
// R4(C,E) — exercises multi-child nodes with grandchildren.
func bushyInstance(seed uint64) *workload.Instance {
	h := hypergraph.New(
		hypergraph.E("R1", "A", "B"),
		hypergraph.E("R2", "B", "C"),
		hypergraph.E("R3", "B", "D"),
		hypergraph.E("R4", "C", "E"),
	)
	rng := workload.NewRand(seed)
	mk := func(name string, a1, a2 string) *relation.Relation {
		r := relation.New(name, a1, a2)
		for i := 0; i < 50; i++ {
			r.AddWeighted(rng.Float64(), relation.Value(rng.Intn(6)), relation.Value(rng.Intn(6)))
		}
		return r
	}
	return &workload.Instance{H: h, Rels: []*relation.Relation{
		mk("R1", "A", "B"), mk("R2", "B", "C"), mk("R3", "B", "D"), mk("R4", "C", "E"),
	}}
}

func TestVariantsMatchBatchOnBushyTree(t *testing.T) {
	inst := bushyInstance(99)
	for _, v := range Variants() {
		if v == Batch {
			continue
		}
		checkVariantAgainstBatch(t, inst, v, sum)
	}
}

func TestVariantsWithMaxCostAggregate(t *testing.T) {
	inst := workload.Path(3, 50, 6, workload.UniformWeights(), 5)
	for _, v := range Variants() {
		if v == Batch {
			continue
		}
		checkVariantAgainstBatch(t, inst, v, ranking.MaxCost{})
	}
}

func TestVariantsWithDescendingAggregate(t *testing.T) {
	inst := workload.Path(2, 40, 5, workload.UniformWeights(), 21)
	for _, v := range Variants() {
		if v == Batch {
			continue
		}
		checkVariantAgainstBatch(t, inst, v, ranking.SumBenefit{})
	}
}

// Property: on random instances, every variant's full enumeration yields
// identical weight sequences.
func TestVariantAgreementProperty(t *testing.T) {
	f := func(seed uint16, lRaw uint8) bool {
		l := int(lRaw)%3 + 2
		inst := workload.Path(l, 30, 5, workload.UniformWeights(), uint64(seed))
		var ref []Result
		for _, v := range Variants() {
			tdp, err := dp.Build(mustQ(inst), sum)
			if err != nil {
				return false
			}
			it, err := New(context.Background(), tdp, v)
			if err != nil {
				return false
			}
			got := Collect(it, 0)
			if ref == nil {
				ref = got
				continue
			}
			if len(got) != len(ref) {
				return false
			}
			for i := range got {
				if math.Abs(got[i].Weight-ref[i].Weight) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func mustQ(inst *workload.Instance) *yannakakis.Query {
	q, err := yannakakis.NewQuery(inst.H, inst.Rels)
	if err != nil {
		panic(err)
	}
	return q
}

func TestNumSolutionsMatchesEnumeration(t *testing.T) {
	inst := workload.Path(3, 80, 9, workload.UniformWeights(), 3)
	tdp := buildTDP(t, inst, sum)
	n := tdp.NumSolutions()
	got := Collect(NewBatch(context.Background(), tdp), 0)
	if len(got) != n {
		t.Fatalf("NumSolutions = %d, batch enumerated %d", n, len(got))
	}
}

func TestTopWeightMatchesFirstResult(t *testing.T) {
	inst := workload.Path(4, 70, 8, workload.UniformWeights(), 17)
	tdp := buildTDP(t, inst, sum)
	if tdp.Empty() {
		t.Skip("instance is empty")
	}
	want := tdp.TopWeight()
	it, _ := New(context.Background(), tdp, Lazy)
	r, ok := it.Next()
	if !ok {
		t.Fatal("no result despite non-empty TDP")
	}
	if math.Abs(r.Weight-want) > 1e-9 {
		t.Fatalf("first weight = %g, TopWeight = %g", r.Weight, want)
	}
}

func TestPartialEnumerationConsistent(t *testing.T) {
	// Drawing k results then stopping must give the same prefix as full
	// enumeration.
	inst := workload.Path(3, 60, 7, workload.UniformWeights(), 8)
	tdp := buildTDP(t, inst, sum)
	full := Collect(NewBatch(context.Background(), tdp), 0)
	for _, v := range []Variant{Lazy, Rec} {
		tdp2 := buildTDP(t, inst, sum)
		it, _ := New(context.Background(), tdp2, v)
		k := 10
		if k > len(full) {
			k = len(full)
		}
		got := Collect(it, k)
		for i := 0; i < k; i++ {
			if math.Abs(got[i].Weight-full[i].Weight) > 1e-9 {
				t.Fatalf("%s: rank %d weight %g != %g", v, i, got[i].Weight, full[i].Weight)
			}
		}
	}
}

func TestMergeInterleavesByWeight(t *testing.T) {
	// Two disjoint instances merged must come out globally sorted.
	instA := workload.Path(2, 40, 5, workload.UniformWeights(), 1)
	instB := workload.Path(2, 40, 5, workload.UniformWeights(), 2)
	ta := buildTDP(t, instA, sum)
	tb := buildTDP(t, instB, sum)
	ia, _ := New(context.Background(), ta, Lazy)
	ib, _ := New(context.Background(), tb, Lazy)
	merged := Collect(Merge(context.Background(), sum, false, ia, ib), 0)
	na := len(Collect(NewBatch(context.Background(), buildTDP(t, instA, sum)), 0))
	nb := len(Collect(NewBatch(context.Background(), buildTDP(t, instB, sum)), 0))
	if len(merged) != na+nb {
		t.Fatalf("merged %d results, want %d", len(merged), na+nb)
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].Weight < merged[i-1].Weight {
			t.Fatal("merged sequence not sorted")
		}
	}
}

func TestMergeDedup(t *testing.T) {
	// The same instance twice with dedup=true yields each tuple once.
	inst := workload.Path(2, 30, 4, workload.UniformWeights(), 3)
	t1 := buildTDP(t, inst, sum)
	t2 := buildTDP(t, inst, sum)
	i1, _ := New(context.Background(), t1, Lazy)
	i2, _ := New(context.Background(), t2, Lazy)
	merged := Collect(Merge(context.Background(), sum, true, i1, i2), 0)
	single := Collect(NewBatch(context.Background(), buildTDP(t, inst, sum)), 0)
	// The instance may itself contain duplicate tuples (bag); dedup
	// collapses those too, so compare against distinct tuples.
	distinct := make(map[string]bool)
	var buf []byte
	for _, r := range single {
		buf = relation.AppendKey(buf[:0], r.Tuple)
		distinct[string(buf)] = true
	}
	if len(merged) != len(distinct) {
		t.Fatalf("dedup merge: %d results, want %d distinct", len(merged), len(distinct))
	}
}

func TestLimit(t *testing.T) {
	inst := workload.Path(2, 40, 5, workload.UniformWeights(), 4)
	tdp := buildTDP(t, inst, sum)
	it, _ := New(context.Background(), tdp, Lazy)
	got := Collect(Limit(it, 5), 0)
	if len(got) != 5 {
		t.Fatalf("Limit(5) yielded %d", len(got))
	}
}

func TestUnknownVariant(t *testing.T) {
	tdp := buildTDP(t, tinyPath(), sum)
	if _, err := New(context.Background(), tdp, Variant("bogus")); err == nil {
		t.Error("unknown variant should error")
	}
}

// Ties: many solutions with identical weights must all be enumerated.
func TestTiedWeights(t *testing.T) {
	// R1(A0,A1) = (i, 0), R2(A1,A2) = (0, j): all 25 combinations join on
	// A1 = 0 with identical weight 2.
	r1 := relation.New("R1", "X", "Y")
	r2 := relation.New("R2", "X", "Y")
	for i := relation.Value(0); i < 5; i++ {
		r1.AddWeighted(1, i, 0)
		r2.AddWeighted(1, 0, i)
	}
	inst := &workload.Instance{H: hypergraph.Path(2), Rels: []*relation.Relation{r1, r2}}
	for _, v := range Variants() {
		tdp := buildTDP(t, inst, sum)
		it, _ := New(context.Background(), tdp, v)
		got := Collect(it, 0)
		if len(got) != 25 {
			t.Errorf("%s: %d results with ties, want 25", v, len(got))
		}
		for _, r := range got {
			if r.Weight != 2 {
				t.Errorf("%s: weight = %g, want 2", v, r.Weight)
			}
		}
	}
}

func BenchmarkLazyTop10PathL4(b *testing.B) {
	inst := workload.Path(4, 2000, 200, workload.UniformWeights(), 1)
	q := mustQ(inst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tdp, err := dp.Build(q, sum)
		if err != nil {
			b.Fatal(err)
		}
		it, _ := New(context.Background(), tdp, Lazy)
		Collect(it, 10)
	}
}

func BenchmarkRecTop10PathL4(b *testing.B) {
	inst := workload.Path(4, 2000, 200, workload.UniformWeights(), 1)
	q := mustQ(inst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tdp, err := dp.Build(q, sum)
		if err != nil {
			b.Fatal(err)
		}
		Collect(NewRec(context.Background(), tdp), 10)
	}
}

func TestExhaustionIsStableAcrossVariants(t *testing.T) {
	inst := workload.Path(2, 10, 3, workload.UniformWeights(), 6)
	for _, v := range Variants() {
		tdp := buildTDP(t, inst, sum)
		it, err := New(context.Background(), tdp, v)
		if err != nil {
			t.Fatal(err)
		}
		Collect(it, 0)
		for i := 0; i < 3; i++ {
			if _, ok := it.Next(); ok {
				t.Fatalf("%s: Next returned a result after exhaustion", v)
			}
		}
	}
}

func TestSingleRelationQuery(t *testing.T) {
	// One-atom query: enumeration = sorting the relation.
	r := relation.New("R", "X", "Y")
	r.AddWeighted(3, 1, 2)
	r.AddWeighted(1, 3, 4)
	r.AddWeighted(2, 5, 6)
	inst := &workload.Instance{
		H:    hypergraph.New(hypergraph.E("R", "A", "B")),
		Rels: []*relation.Relation{r},
	}
	for _, v := range Variants() {
		tdp := buildTDP(t, inst, sum)
		it, err := New(context.Background(), tdp, v)
		if err != nil {
			t.Fatal(err)
		}
		got := Collect(it, 0)
		if len(got) != 3 {
			t.Fatalf("%s: %d results, want 3", v, len(got))
		}
		want := []float64{1, 2, 3}
		for i := range got {
			if got[i].Weight != want[i] {
				t.Fatalf("%s: rank %d weight %g, want %g", v, i, got[i].Weight, want[i])
			}
		}
	}
}
